package pidcan

import (
	"fmt"
	"sort"

	"pidcan/internal/core"
	"pidcan/internal/metrics"
	"pidcan/internal/netmodel"
	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

// ClusterConfig parameterizes a standalone PID-CAN cluster.
type ClusterConfig struct {
	// Nodes is the initial population (>= 2).
	Nodes int
	// CMax scales resource vectors into the CAN space; its length
	// sets the dimensionality. Defaults to the paper's Table-I cmax.
	CMax Vec
	// Seed drives all randomness.
	Seed uint64
	// Core tunes the protocol (defaults to the paper's setting).
	Core CoreConfig
	// Net is the LAN/WAN model (defaults to Table I).
	Net netmodel.Config
}

// Cluster is PID-CAN as a reusable component: an in-process,
// deterministically simulated set of nodes that publish availability
// vectors and answer best-fit multi-dimensional range queries. It is
// the library surface for embedding the paper's index outside the
// full cloud simulation (see examples/rangequery).
//
// A Cluster is single-goroutine: drive it with Step and the
// synchronous query helpers.
type Cluster struct {
	cfg   ClusterConfig
	eng   *sim.Engine
	rng   *sim.RNG
	net   *netmodel.Model
	nw    *overlay.Network
	p     *core.PIDCAN
	rec   *metrics.Recorder
	live  map[NodeID]bool
	avail map[NodeID]Vec
	next  NodeID
}

var _ proto.Env = (*Cluster)(nil)

// NewCluster builds and starts a cluster: all nodes join the overlay
// and the protocol's periodic machinery is installed. Call Step to
// let state updates and index diffusion run before querying.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("pidcan: cluster needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.CMax == nil {
		cfg.CMax = CMax()
	}
	if !cfg.CMax.IsNonNegative() || cfg.CMax.Sum() == 0 {
		return nil, fmt.Errorf("pidcan: invalid CMax %v", cfg.CMax)
	}
	if cfg.Core.L == 0 { // zero value: take the paper defaults
		cfg.Core = core.Default()
	}
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if cfg.Net.LANSize == 0 {
		cfg.Net = netmodel.Default()
	}
	dims := cfg.CMax.Dim()
	if cfg.Core.VirtualDim {
		dims++
	}
	c := &Cluster{
		cfg:   cfg,
		eng:   sim.New(),
		rng:   sim.NewRNG(cfg.Seed, sim.StreamProtocol),
		rec:   metrics.NewRecorder(),
		live:  make(map[NodeID]bool),
		avail: make(map[NodeID]Vec),
	}
	c.net = netmodel.New(cfg.Net, cfg.Nodes, sim.NewRNG(cfg.Seed, sim.StreamNetwork))
	c.nw = overlay.New(dims, 0, sim.NewRNG(cfg.Seed, sim.StreamOverlay))
	for i := 0; i < cfg.Nodes; i++ {
		id := NodeID(i)
		if i > 0 {
			if _, err := c.nw.Join(id); err != nil {
				return nil, err
			}
		}
		c.live[id] = true
		c.avail[id] = vector.New(cfg.CMax.Dim())
	}
	c.next = NodeID(cfg.Nodes)
	p, err := core.New(c, cfg.Core)
	if err != nil {
		return nil, err
	}
	c.p = p
	p.Start()
	return c, nil
}

// --- proto.Env --------------------------------------------------------------

// Engine implements proto.Env.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// ProtoRNG implements proto.Env.
func (c *Cluster) ProtoRNG() *sim.RNG { return c.rng }

// Overlay implements proto.Env.
func (c *Cluster) Overlay() *overlay.Network { return c.nw }

// CMax implements proto.Env.
func (c *Cluster) CMax() Vec { return c.cfg.CMax }

// Alive implements proto.Env.
func (c *Cluster) Alive(id NodeID) bool { return c.live[id] }

// AliveNodes implements proto.Env.
func (c *Cluster) AliveNodes() []NodeID {
	out := make([]NodeID, 0, len(c.live))
	for id, up := range c.live {
		if up {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Availability implements proto.Env.
func (c *Cluster) Availability(id NodeID) Vec {
	if a, ok := c.avail[id]; ok {
		return a.Clone()
	}
	return vector.New(c.cfg.CMax.Dim())
}

// Send implements proto.Env using the LAN/WAN latency model.
func (c *Cluster) Send(from, to NodeID, kind MsgKind, size int, deliver func(), onDrop func()) {
	if !c.live[from] {
		return
	}
	c.rec.Message(kind)
	lat := c.net.Latency(int(from), int(to), size)
	c.eng.After(lat, func() {
		if c.live[to] {
			deliver()
		} else if onDrop != nil {
			onDrop()
		}
	})
}

// SendPath implements proto.Env.
func (c *Cluster) SendPath(from NodeID, path []NodeID, kind MsgKind, size int, deliver func(), onDrop func()) {
	if !c.live[from] || len(path) == 0 {
		return
	}
	c.rec.Messages(kind, int64(len(path)))
	var lat sim.Time
	prev := from
	for _, hop := range path {
		lat += c.net.Latency(int(prev), int(hop), size)
		prev = hop
	}
	final := path[len(path)-1]
	c.eng.After(lat, func() {
		if c.live[final] {
			deliver()
		} else if onDrop != nil {
			onDrop()
		}
	})
}

// --- public cluster API -------------------------------------------------------

// Nodes returns the alive node IDs in ascending order.
func (c *Cluster) Nodes() []NodeID { return c.AliveNodes() }

// Now returns the cluster's simulation clock.
func (c *Cluster) Now() Time { return c.eng.Now() }

// SetAvailability publishes a node's availability vector. It takes
// effect at the node's next state-update cycle; use Announce to push
// immediately.
func (c *Cluster) SetAvailability(id NodeID, avail Vec) error {
	if !c.live[id] {
		return fmt.Errorf("pidcan: node %d not in cluster", id)
	}
	if avail.Dim() != c.cfg.CMax.Dim() {
		return fmt.Errorf("pidcan: availability dim %d, want %d", avail.Dim(), c.cfg.CMax.Dim())
	}
	c.avail[id] = avail.Clone()
	return nil
}

// Announce pushes a node's current availability into the index right
// away (an out-of-cycle state update).
func (c *Cluster) Announce(id NodeID) error {
	if !c.live[id] {
		return fmt.Errorf("pidcan: node %d not in cluster", id)
	}
	c.p.StateUpdateNow(id)
	return nil
}

// Step advances the cluster by d of simulated time, letting state
// updates, index diffusion and in-flight messages progress.
func (c *Cluster) Step(d Time) {
	c.eng.Run(c.eng.Now() + d)
}

// Query performs one best-fit multi-dimensional range query from the
// given node: find up to k nodes whose advertised availability
// dominates demand. It drives the simulation until the query
// resolves (or the internal deadline passes) and returns the
// qualified records plus the number of messages spent.
func (c *Cluster) Query(from NodeID, demand Vec, k int) ([]Record, int, error) {
	if !c.live[from] {
		return nil, 0, fmt.Errorf("pidcan: node %d not in cluster", from)
	}
	var out proto.QueryResult
	resolved := false
	c.p.Query(from, demand, k, func(r proto.QueryResult) {
		out = r
		resolved = true
	})
	deadline := c.eng.Now() + 10*sim.Minute
	for !resolved && c.eng.Now() < deadline {
		if !c.eng.Step() {
			break
		}
	}
	if !resolved {
		return nil, 0, fmt.Errorf("pidcan: query from %d did not resolve", from)
	}
	return out.Candidates, out.Hops, nil
}

// RangeQueryAll performs the exhaustive INSCAN-RQ query: every
// record in the range [demand, cmax] is returned, at flooding cost.
func (c *Cluster) RangeQueryAll(from NodeID, demand Vec) ([]Record, int, error) {
	if !c.live[from] {
		return nil, 0, fmt.Errorf("pidcan: node %d not in cluster", from)
	}
	var out proto.QueryResult
	resolved := false
	c.p.RangeQueryAll(from, demand, func(r proto.QueryResult) {
		out = r
		resolved = true
	})
	deadline := c.eng.Now() + 10*sim.Minute
	for !resolved && c.eng.Now() < deadline {
		if !c.eng.Step() {
			break
		}
	}
	if !resolved {
		return nil, 0, fmt.Errorf("pidcan: range query from %d did not resolve", from)
	}
	return out.Candidates, out.Hops, nil
}

// Join adds a new node to the cluster and returns its ID.
func (c *Cluster) Join() (NodeID, error) {
	id := c.next
	if _, err := c.nw.Join(id); err != nil {
		return 0, err
	}
	c.next++
	idx := c.net.AddNode()
	if idx != int(id) {
		panic("pidcan: netmodel index diverged")
	}
	c.live[id] = true
	c.avail[id] = vector.New(c.cfg.CMax.Dim())
	c.p.NodeJoined(id)
	return id, nil
}

// SeedNextID advances the cluster's id sequence to next without
// materializing the nodes in between, extending the latency model by
// exactly the slots the skipped live joins would have added (so the
// model's RNG stream stays aligned with a live history). It is the
// serving engine's optional recovery extension (serve.IDSeeder):
// checkpoint restore uses it to skip dead ids, making a warm restart
// O(alive nodes) instead of O(lifetime joins).
func (c *Cluster) SeedNextID(next NodeID) error {
	if next < c.next {
		return fmt.Errorf("pidcan: seed id %d below next id %d", next, c.next)
	}
	for c.net.Nodes() < int(next) {
		c.net.AddNode()
	}
	c.next = next
	return nil
}

// Leave removes a node; its cached records and indexes die with it.
func (c *Cluster) Leave(id NodeID) error {
	if !c.live[id] {
		return fmt.Errorf("pidcan: node %d not in cluster", id)
	}
	c.live[id] = false
	delete(c.avail, id)
	if _, err := c.nw.Leave(id); err != nil {
		return err
	}
	c.p.NodeLeft(id)
	return nil
}

// Metrics exposes the cluster's message counters.
func (c *Cluster) Metrics() *Recorder { return c.rec }

// Size returns the alive population.
func (c *Cluster) Size() int { return c.nw.Size() }
