package pidcan_test

import (
	"fmt"
	"log"

	"pidcan"
	"pidcan/internal/vector"
)

// ExampleRun executes a miniature Self-Organizing Cloud day and
// reads the paper's metrics off the recorder.
func ExampleRun() {
	cfg := pidcan.DefaultConfig(pidcan.HIDCAN, 64, 0.25)
	cfg.Duration = 2 * pidcan.Hour
	cfg.Seed = 7
	cfg.MeanInterarrivalSec = 1200
	cfg.MeanDurationSec = 600

	res, err := pidcan.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol: %s\n", res.Protocol)
	fmt.Printf("all tasks accounted: %v\n", res.Rec.Accounted() <= res.Rec.Generated)
	fmt.Printf("messages flowed: %v\n", res.Rec.MessageTotal() > 0)
	// Output:
	// protocol: HID-CAN
	// all tasks accounted: true
	// messages flowed: true
}

// ExampleNewCluster embeds the PID-CAN index as a library: publish
// availability vectors, let the index diffuse, then range-query.
func ExampleNewCluster() {
	c, err := pidcan.NewCluster(pidcan.ClusterConfig{
		Nodes: 128,
		CMax:  vector.Of(10, 10, 10),
		Seed:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, id := range c.Nodes() {
		f := 1 + 8*float64(i)/128
		if err := c.SetAvailability(id, vector.Of(f, f, f)); err != nil {
			log.Fatal(err)
		}
	}
	c.Step(30 * pidcan.Minute) // state updates + index diffusion

	recs, _, err := c.Query(c.Nodes()[0], vector.Of(5, 5, 5), 2)
	if err != nil {
		log.Fatal(err)
	}
	qualified := true
	for _, r := range recs {
		qualified = qualified && r.Avail.Dominates(vector.Of(5, 5, 5))
	}
	fmt.Printf("found qualified candidates: %v\n", len(recs) > 0 && qualified)
	// Output:
	// found qualified candidates: true
}
