// Package pidcan is a Go implementation of PID-CAN — the
// Proactive Index-Diffusion CAN protocol for probabilistic best-fit
// multi-dimensional range queries in a Self-Organizing Cloud (Di,
// Wang, Zhang, Cheng; ICPP 2011) — together with the full simulation
// apparatus of the paper's evaluation: the CAN/INSCAN overlay, the
// proportional-share host model, the synthetic SOC workload, the
// Newscast and KHDN-CAN baselines, node churn, and the metrics
// (T-Ratio, F-Ratio, Jain fairness, message delivery cost).
//
// Two entry points:
//
//   - Run executes a complete Self-Organizing Cloud simulation — the
//     unit behind every figure and table of the paper — and returns
//     its metrics.
//
//   - NewCluster exposes the protocol itself as a reusable
//     in-process component: a deterministic simulated cluster whose
//     nodes publish availability vectors and answer best-fit
//     multi-dimensional range queries, without the cloud workload on
//     top. This is the API to use when embedding the index in other
//     simulations.
//
// Everything is deterministic per seed and uses only the standard
// library.
package pidcan

import (
	"net/http"

	"pidcan/internal/cloud"
	"pidcan/internal/core"
	"pidcan/internal/metrics"
	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/psm"
	"pidcan/internal/serve"
	"pidcan/internal/serve/capture"
	"pidcan/internal/serve/fed"
	"pidcan/internal/serve/repl"
	"pidcan/internal/serve/wire"
	"pidcan/internal/sim"
	"pidcan/internal/task"
	"pidcan/internal/trace"
	"pidcan/internal/vector"
)

// Vec is a d-dimensional resource vector (CPU, I/O, network, disk,
// memory in the standard layout).
type Vec = vector.Vec

// Time is a simulation timestamp/duration in microseconds.
type Time = sim.Time

// Time unit re-exports.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
	Day         = sim.Day
)

// NodeID identifies a node of the overlay.
type NodeID = overlay.NodeID

// Record is a resource-state record: a node's advertised
// availability with freshness bounds.
type Record = proto.Record

// Config parameterizes a full SOC simulation run.
type Config = cloud.Config

// Result is the outcome of a simulation run.
type Result = cloud.Result

// Protocol selects the discovery protocol under test.
type Protocol = cloud.Protocol

// Discovery protocols of the paper's evaluation.
const (
	HIDCAN    = cloud.HIDCAN
	SIDCAN    = cloud.SIDCAN
	HIDCANSoS = cloud.HIDCANSoS
	SIDCANSoS = cloud.SIDCANSoS
	SIDCANVD  = cloud.SIDCANVD
	Newscast  = cloud.Newscast
	KHDNCAN   = cloud.KHDNCAN
)

// SelectionPolicy picks among qualified candidates.
type SelectionPolicy = cloud.SelectionPolicy

// Candidate selection policies.
const (
	BestFit  = cloud.BestFit
	FirstFit = cloud.FirstFit
	MaxShare = cloud.MaxShare
)

// CoreConfig tunes the PID-CAN protocol itself.
type CoreConfig = core.Config

// DiffusionMode selects hopping (HID) or spreading (SID) diffusion.
type DiffusionMode = core.DiffusionMode

// Index-diffusion methods.
const (
	Hopping   = core.Hopping
	Spreading = core.Spreading
)

// MsgKind classifies counted protocol messages.
type MsgKind = metrics.MsgKind

// Recorder accumulates run metrics.
type Recorder = metrics.Recorder

// MetricSample is one point of the hourly metric series.
type MetricSample = metrics.Sample

// TraceLog is the structured event log of a traced run.
type TraceLog = trace.Log

// TraceEvent is one recorded trace event.
type TraceEvent = trace.Event

// TraceKind classifies trace events.
type TraceKind = trace.Kind

// DefaultConfig returns the paper's §IV.A setting for protocol p
// with n nodes at demand ratio lambda.
func DefaultConfig(p Protocol, n int, lambda float64) Config {
	return cloud.DefaultConfig(p, n, lambda)
}

// Run executes one Self-Organizing Cloud simulation to completion.
// Equal configs (including Seed) reproduce results bit-for-bit.
func Run(cfg Config) (*Result, error) {
	s, err := cloud.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// CMax returns the system-wide maximum capacity vector of the
// standard five-dimensional resource layout (Table I).
func CMax() Vec { return task.CMax() }

// Dims is the standard resource dimensionality.
const Dims = task.Dims

// WorkDims is the number of leading rate-like dimensions.
const WorkDims = task.WorkDims

// DefaultOverhead returns the paper's per-VM maintenance overhead.
func DefaultOverhead() psm.Overhead { return psm.DefaultOverhead() }

// --- concurrent serving engine (internal/serve) ------------------------------

// Engine is the concurrent, shard-parallel query service built on
// top of Cluster: per-shard goroutines apply batched writes while
// best-fit range queries run lock-free on immutable copy-on-write
// snapshots of the record index. Nodes migrate between shards
// (Engine.Migrate) behind a stable external identity, and an
// adaptive rebalancer (EngineConfig.RebalanceInterval,
// Engine.Rebalance) keeps shard populations level under skewed
// traffic. With EngineConfig.DataDir set, every write is logged to a
// per-shard op-log before it is acknowledged, checkpoints
// (Engine.Checkpoint, EngineConfig.CheckpointEvery) serialize the
// engine's state, and NewEngine warm-restarts from checkpoint + log
// so a restart serves exactly what its predecessor acknowledged.
// See internal/serve and examples/serving.
type Engine = serve.Engine

// EngineConfig parameterizes NewEngine.
type EngineConfig = serve.Config

// QueryRequest is one best-fit range query against an Engine.
type QueryRequest = serve.QueryRequest

// QueryResponse is the outcome of an Engine query.
type QueryResponse = serve.QueryResponse

// Consistent-query scopes (QueryRequest.Scope): ScopeAll
// scatter-gathers through every shard's protocol and merges the
// partial views (the default); ScopeOne routes through a single
// shard round-robin, the paper-faithful behavior.
const (
	ScopeAll = serve.ScopeAll
	ScopeOne = serve.ScopeOne
)

// Candidate is one qualified node of a QueryResponse.
type Candidate = serve.Candidate

// GlobalNodeID addresses a node across Engine shards.
type GlobalNodeID = serve.GlobalID

// EngineStats is a point-in-time view of Engine counters.
type EngineStats = serve.Stats

// RebalanceResult describes one adaptive rebalance pass
// (Engine.Rebalance).
type RebalanceResult = serve.RebalanceResult

// CheckpointResult describes one durable checkpoint pass
// (Engine.Checkpoint; engines built with EngineConfig.DataDir).
type CheckpointResult = serve.CheckpointResult

// Engine errors.
var (
	ErrEngineClosed   = serve.ErrClosed
	ErrBadDemand      = serve.ErrBadDemand
	ErrBadScope       = serve.ErrBadScope
	ErrNoShard        = serve.ErrNoShard
	ErrScatterTimeout = serve.ErrScatterTimeout
	ErrNoNodes        = serve.ErrNoNodes
	ErrLastNode       = serve.ErrLastNode
	ErrNotDurable     = serve.ErrNotDurable
	ErrRecovery       = serve.ErrRecovery
	ErrReadOnly       = serve.ErrReadOnly
	ErrFenced         = serve.ErrFenced
	ErrNotFollower    = serve.ErrNotFollower
	ErrWAL            = serve.ErrWAL
)

// --- op-log replication (internal/serve/repl) --------------------------------

// ReplServer streams a durable primary Engine's op-log to follower
// sessions: handshake negotiates shard shape and per-shard (segment,
// record) positions, stale followers bootstrap by checkpoint
// shipping, live ones tail every logged batch. Run it next to the
// HTTP front-end on its own listener (pidcan-serve -repl-addr).
type ReplServer = repl.Server

// ReplServerConfig tunes a ReplServer.
type ReplServerConfig = repl.ServerConfig

// ReplClient keeps a follower Engine fed from its primary: it
// mirrors the op-log byte for byte, applies every record through the
// same batch path recovery uses (join ids verified), reconnects with
// backoff, and performs promotion (drain + seal epoch+1) on demand.
type ReplClient = repl.Client

// ReplClientConfig parameterizes a ReplClient.
type ReplClientConfig = repl.ClientConfig

// ReplPos is one shard's op-log position (segment, record ordinal).
type ReplPos = serve.ReplPos

// NewReplServer attaches a replication server to a durable primary
// engine (it becomes the engine's replication sink).
func NewReplServer(e *Engine, cfg ReplServerConfig) (*ReplServer, error) {
	return repl.NewServer(e, cfg)
}

// NewReplClient builds a follower's replication client; run it with
// Run and wire Engine.SetPromoter to Promote for HTTP fail-over.
func NewReplClient(cfg ReplClientConfig) (*ReplClient, error) {
	return repl.NewClient(cfg)
}

// --- binary wire protocol (internal/serve/wire) -------------------------------

// WireServer serves an Engine over the compact binary wire protocol:
// persistent TCP connections with pipelined in-order responses, plus
// an optional single-packet UDP fast path for queries. Run it next to
// the HTTP front-end on its own listener (pidcan-serve -wire-addr);
// attach its Stats to the engine with Engine.SetWireStats.
type WireServer = wire.Server

// WireServerConfig tunes a WireServer.
type WireServerConfig = wire.ServerConfig

// WireClient is a synchronous or pipelined client for the wire
// protocol (one connection; see the package docs for the sanctioned
// sender/reader goroutine split).
type WireClient = wire.Client

// WireUDPClient is the single-packet query client for the UDP fast
// path.
type WireUDPClient = wire.UDPClient

// WireQuery is a wire query request.
type WireQuery = wire.Query

// WireQueryResult is a decoded wire query response.
type WireQueryResult = wire.QueryResult

// WireError is a typed server-side rejection (wire.Code* constants;
// read-only followers carry the primary's address and a retry hint).
type WireError = wire.Error

// WireStats is the gauge set a WireServer feeds into Engine.Stats.
type WireStats = serve.WireStats

// NewWireServer builds a wire server over an engine getter (the
// getter indirection lets a follower re-bootstrap swap engines under
// a live listener; return nil while not ready).
func NewWireServer(engine func() *Engine, cfg WireServerConfig) *WireServer {
	return wire.NewServer(func() serve.Service {
		if e := engine(); e != nil {
			return e
		}
		return nil // avoid a typed-nil Service from a nil *Engine
	}, cfg)
}

// NewServiceWireServer builds a wire server over any Service — an
// Engine or a federation Router — for front-ends that are not
// engine-backed.
func NewServiceWireServer(svc func() Service, cfg WireServerConfig) *WireServer {
	return wire.NewServer(svc, cfg)
}

// DialWire connects a wire client to a pidcan-serve -wire-addr
// listener.
func DialWire(addr string) (*WireClient, error) { return wire.Dial(addr) }

// DialWireUDP connects a UDP query client to a pidcan-serve
// -wire-udp listener.
func DialWireUDP(addr string) (*WireUDPClient, error) { return wire.DialUDP(addr) }

// A Cluster is the shard backend of the serving engine, including
// the id-seeding recovery extension (checkpoint restore in O(alive
// nodes)).
var (
	_ serve.Backend  = (*Cluster)(nil)
	_ serve.IDSeeder = (*Cluster)(nil)
)

// NewEngine builds a serving engine whose shards are independent
// PID-CAN Clusters (shard i runs on seed Seed⊕mix(i), so shards stay
// deterministic per seed but mutually uncorrelated) and starts the
// shard goroutines. Callers must Close the engine when done.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	return serve.New(cfg, func(i int, rc serve.Config) (serve.Backend, error) {
		return NewCluster(ClusterConfig{
			Nodes: rc.NodesPerShard,
			CMax:  rc.CMax,
			Seed:  rc.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15),
			Core:  rc.Core,
			Net:   rc.Net,
		})
	})
}

// NewEngineHandler exposes an Engine over HTTP (the JSON API of
// cmd/pidcan-serve): POST /query, /update, /join, /leave and GET
// /nodes, /stats, /healthz.
func NewEngineHandler(e *Engine) http.Handler { return serve.NewHandler(e) }

// NewCaptureHandler exposes the traffic-capture control surface
// (internal/serve/capture): POST /capture/start and /capture/stop
// attach/detach a trace recorder on the current engine, GET
// /capture/status reports it, GET /capture/trace downloads the last
// finished trace. engine is a getter because followers swap engines
// across re-bootstraps.
func NewCaptureHandler(engine func() *Engine) http.Handler { return capture.NewHTTP(engine) }

// --- federation (internal/serve/fed) ------------------------------------------

// Service is the query/update/join/leave surface shared by an Engine
// and a federation Router: anything that serves the PID-CAN API,
// local or scatter-gathered across processes.
type Service = serve.Service

// NewServiceHandler exposes any Service over the same HTTP JSON API
// as NewEngineHandler (minus the engine-only admin routes).
func NewServiceHandler(s Service) http.Handler { return serve.NewServiceHandler(s) }

// FedMap partitions the 64-bit placement keyspace across federation
// members (primary processes); see fed.Map.
type FedMap = fed.Map

// FedMember is one entry of a FedMap: a member's address list
// (primary first, promotable followers after) and keyspace slice.
type FedMember = fed.Member

// FedRouter scatter-gathers the Service API across federation
// members over the wire protocol, exactly as an Engine scatters
// across in-process shards.
type FedRouter = fed.Router

// FedRouterConfig parameterizes NewFedRouter.
type FedRouterConfig = fed.Config

// FedRouterStats is the counter set behind FedRouter.StatsPayload.
type FedRouterStats = fed.Stats

// NewFedRouter connects a router to its federation members and
// exchanges the initial map.
func NewFedRouter(cfg FedRouterConfig) (*FedRouter, error) { return fed.New(cfg) }

// FedEvenSplit builds a version-1 federation map dividing the
// keyspace evenly across the given members' address lists.
func FedEvenSplit(addrs [][]string) FedMap { return fed.EvenSplit(addrs) }
