// Package pidcan is a Go implementation of PID-CAN — the
// Proactive Index-Diffusion CAN protocol for probabilistic best-fit
// multi-dimensional range queries in a Self-Organizing Cloud (Di,
// Wang, Zhang, Cheng; ICPP 2011) — together with the full simulation
// apparatus of the paper's evaluation: the CAN/INSCAN overlay, the
// proportional-share host model, the synthetic SOC workload, the
// Newscast and KHDN-CAN baselines, node churn, and the metrics
// (T-Ratio, F-Ratio, Jain fairness, message delivery cost).
//
// Two entry points:
//
//   - Run executes a complete Self-Organizing Cloud simulation — the
//     unit behind every figure and table of the paper — and returns
//     its metrics.
//
//   - NewCluster exposes the protocol itself as a reusable
//     in-process component: a deterministic simulated cluster whose
//     nodes publish availability vectors and answer best-fit
//     multi-dimensional range queries, without the cloud workload on
//     top. This is the API to use when embedding the index in other
//     simulations.
//
// Everything is deterministic per seed and uses only the standard
// library.
package pidcan

import (
	"pidcan/internal/cloud"
	"pidcan/internal/core"
	"pidcan/internal/metrics"
	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/psm"
	"pidcan/internal/sim"
	"pidcan/internal/task"
	"pidcan/internal/trace"
	"pidcan/internal/vector"
)

// Vec is a d-dimensional resource vector (CPU, I/O, network, disk,
// memory in the standard layout).
type Vec = vector.Vec

// Time is a simulation timestamp/duration in microseconds.
type Time = sim.Time

// Time unit re-exports.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
	Day         = sim.Day
)

// NodeID identifies a node of the overlay.
type NodeID = overlay.NodeID

// Record is a resource-state record: a node's advertised
// availability with freshness bounds.
type Record = proto.Record

// Config parameterizes a full SOC simulation run.
type Config = cloud.Config

// Result is the outcome of a simulation run.
type Result = cloud.Result

// Protocol selects the discovery protocol under test.
type Protocol = cloud.Protocol

// Discovery protocols of the paper's evaluation.
const (
	HIDCAN    = cloud.HIDCAN
	SIDCAN    = cloud.SIDCAN
	HIDCANSoS = cloud.HIDCANSoS
	SIDCANSoS = cloud.SIDCANSoS
	SIDCANVD  = cloud.SIDCANVD
	Newscast  = cloud.Newscast
	KHDNCAN   = cloud.KHDNCAN
)

// SelectionPolicy picks among qualified candidates.
type SelectionPolicy = cloud.SelectionPolicy

// Candidate selection policies.
const (
	BestFit  = cloud.BestFit
	FirstFit = cloud.FirstFit
	MaxShare = cloud.MaxShare
)

// CoreConfig tunes the PID-CAN protocol itself.
type CoreConfig = core.Config

// DiffusionMode selects hopping (HID) or spreading (SID) diffusion.
type DiffusionMode = core.DiffusionMode

// Index-diffusion methods.
const (
	Hopping   = core.Hopping
	Spreading = core.Spreading
)

// MsgKind classifies counted protocol messages.
type MsgKind = metrics.MsgKind

// Recorder accumulates run metrics.
type Recorder = metrics.Recorder

// MetricSample is one point of the hourly metric series.
type MetricSample = metrics.Sample

// TraceLog is the structured event log of a traced run.
type TraceLog = trace.Log

// TraceEvent is one recorded trace event.
type TraceEvent = trace.Event

// TraceKind classifies trace events.
type TraceKind = trace.Kind

// DefaultConfig returns the paper's §IV.A setting for protocol p
// with n nodes at demand ratio lambda.
func DefaultConfig(p Protocol, n int, lambda float64) Config {
	return cloud.DefaultConfig(p, n, lambda)
}

// Run executes one Self-Organizing Cloud simulation to completion.
// Equal configs (including Seed) reproduce results bit-for-bit.
func Run(cfg Config) (*Result, error) {
	s, err := cloud.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// CMax returns the system-wide maximum capacity vector of the
// standard five-dimensional resource layout (Table I).
func CMax() Vec { return task.CMax() }

// Dims is the standard resource dimensionality.
const Dims = task.Dims

// WorkDims is the number of leading rate-like dimensions.
const WorkDims = task.WorkDims

// DefaultOverhead returns the paper's per-VM maintenance overhead.
func DefaultOverhead() psm.Overhead { return psm.DefaultOverhead() }
