package pidcan

import (
	"testing"

	"pidcan/internal/vector"
)

func newTestCluster(t *testing.T, n int, seed uint64) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Nodes: n,
		CMax:  vector.Of(10, 10, 10),
		Seed:  seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Nodes: 1}); err == nil {
		t.Error("1-node cluster accepted")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 4, CMax: vector.Of(0, 0)}); err == nil {
		t.Error("zero CMax accepted")
	}
	bad := ClusterConfig{Nodes: 4}
	bad.Core.L = -1
	if _, err := NewCluster(bad); err == nil {
		t.Error("invalid core config accepted")
	}
	// Defaults fill in.
	c, err := NewCluster(ClusterConfig{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.CMax().Dim() != Dims {
		t.Errorf("default CMax dim = %d", c.CMax().Dim())
	}
}

func TestClusterPublishAndQuery(t *testing.T) {
	c := newTestCluster(t, 200, 1)
	nodes := c.Nodes()
	if len(nodes) != 200 {
		t.Fatalf("Nodes = %d", len(nodes))
	}
	// Scatter availabilities; high half qualifies for demand (5,5,5).
	for i, id := range nodes {
		f := 1 + 8*float64(i)/float64(len(nodes))
		if err := c.SetAvailability(id, vector.Of(f, f, f)); err != nil {
			t.Fatal(err)
		}
	}
	// Let two state/diffusion cycles pass.
	c.Step(20 * Minute)
	if c.Now() != 20*Minute {
		t.Errorf("Now = %v", c.Now())
	}

	recs, hops, err := c.Query(nodes[0], vector.Of(5, 5, 5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("query found nothing")
	}
	if hops == 0 {
		t.Error("query spent no messages")
	}
	for _, r := range recs {
		if !r.Avail.Dominates(vector.Of(5, 5, 5)) {
			t.Errorf("unqualified record %+v", r)
		}
	}
	if c.Metrics().MessageTotal() == 0 {
		t.Error("no messages recorded")
	}
}

func TestClusterAnnounce(t *testing.T) {
	c := newTestCluster(t, 64, 2)
	id := c.Nodes()[5]
	if err := c.SetAvailability(id, vector.Of(9, 9, 9)); err != nil {
		t.Fatal(err)
	}
	if err := c.Announce(id); err != nil {
		t.Fatal(err)
	}
	c.Step(5 * Second) // deliver the pushed record
	recs, _, err := c.Query(c.Nodes()[0], vector.Of(8.5, 8.5, 8.5), 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Node == id {
			found = true
		}
	}
	if !found {
		t.Errorf("announced record not discovered: %+v", recs)
	}
}

func TestClusterRangeQueryAll(t *testing.T) {
	c := newTestCluster(t, 128, 3)
	nodes := c.Nodes()
	for i, id := range nodes {
		f := 1 + 8*float64(i)/float64(len(nodes))
		c.SetAvailability(id, vector.Of(f, f, f))
	}
	c.Step(20 * Minute)
	all, floodHops, err := c.RangeQueryAll(nodes[0], vector.Of(5, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	few, fewHops, err := c.Query(nodes[1], vector.Of(5, 5, 5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < len(few) {
		t.Errorf("INSCAN-RQ found %d < single-message %d", len(all), len(few))
	}
	if len(all) > 0 && floodHops <= fewHops {
		t.Logf("note: flood hops %d vs single %d", floodHops, fewHops)
	}
}

func TestClusterJoinLeave(t *testing.T) {
	c := newTestCluster(t, 32, 4)
	id, err := c.Join()
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 33 {
		t.Errorf("Size = %d", c.Size())
	}
	if err := c.SetAvailability(id, vector.Of(9, 9, 9)); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(id); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 32 {
		t.Errorf("Size after leave = %d", c.Size())
	}
	if err := c.Leave(id); err == nil {
		t.Error("double leave accepted")
	}
	if err := c.SetAvailability(id, vector.Of(1, 1, 1)); err == nil {
		t.Error("SetAvailability on dead node accepted")
	}
	if err := c.Announce(id); err == nil {
		t.Error("Announce on dead node accepted")
	}
	if _, _, err := c.Query(id, vector.Of(1, 1, 1), 1); err == nil {
		t.Error("Query from dead node accepted")
	}
	if _, _, err := c.RangeQueryAll(id, vector.Of(1, 1, 1)); err == nil {
		t.Error("RangeQueryAll from dead node accepted")
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() (int, int64) {
		c := newTestCluster(t, 100, 7)
		for i, id := range c.Nodes() {
			f := 1 + 8*float64(i)/100
			c.SetAvailability(id, vector.Of(f, f, f))
		}
		c.Step(30 * Minute)
		recs, _, err := c.Query(c.Nodes()[0], vector.Of(5, 5, 5), 3)
		if err != nil {
			t.Fatal(err)
		}
		return len(recs), c.Metrics().MessageTotal()
	}
	n1, m1 := run()
	n2, m2 := run()
	if n1 != n2 || m1 != m2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", n1, m1, n2, m2)
	}
}

func TestRunFacade(t *testing.T) {
	cfg := DefaultConfig(HIDCAN, 64, 0.25)
	cfg.Duration = 1 * Hour
	cfg.MeanInterarrivalSec = 600
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rec.Generated == 0 {
		t.Error("facade run generated nothing")
	}
	if _, err := Run(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestFacadeConstants(t *testing.T) {
	if CMax().Dim() != Dims || Dims != 5 || WorkDims != 3 {
		t.Error("dimension constants wrong")
	}
	oh := DefaultOverhead()
	if oh.Frac.Dim() != Dims {
		t.Error("overhead dims wrong")
	}
	names := map[Protocol]string{HIDCAN: "HID-CAN", Newscast: "Newscast"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%v != %s", p, want)
		}
	}
}
