// Command pidcan-figures regenerates the paper's tables and figures:
// it executes the run matrix behind a figure (in parallel across CPU
// cores) and prints the same series/rows the paper reports.
//
// Examples:
//
//	pidcan-figures -fig fig5 -scale 0.25        # Fig. 5 at quarter scale
//	pidcan-figures -fig t3 -scale 1             # Table III, paper scale
//	pidcan-figures -fig all -scale 0.15         # everything, laptop scale
//	pidcan-figures -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pidcan/internal/experiment"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure ID (see -list), or \"all\"")
		scale   = flag.Float64("scale", 0.25, "node-count scale factor (1 = paper scale)")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "parallel runs (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list figure IDs and exit")
		reps    = flag.Int("seeds", 1, "seed replications (report mean ± sd when > 1)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			f, _ := experiment.Get(id, 1, 1)
			fmt.Printf("%-6s %s (%d runs)\n", id, f.Title, len(f.Runs))
		}
		return
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "pidcan-figures: -fig required (or -list)")
		os.Exit(2)
	}
	ids := []string{*fig}
	if *fig == "all" {
		ids = experiment.IDs()
	}
	for _, id := range ids {
		id := id
		start := time.Now()
		if *reps > 1 {
			seeds := make([]uint64, *reps)
			for i := range seeds {
				seeds[i] = *seed + uint64(i)
			}
			rep, err := experiment.ExecuteReplicated(func(s uint64) (experiment.Figure, error) {
				return experiment.Get(id, s, *scale)
			}, seeds, *workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pidcan-figures:", err)
				os.Exit(1)
			}
			rep.Render(os.Stdout)
			fmt.Printf("(%d runs × %d seeds at scale %.2f in %v)\n\n",
				len(rep.Runs), *reps, *scale, time.Since(start).Round(time.Millisecond))
			continue
		}
		f, err := experiment.Get(id, *seed, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pidcan-figures:", err)
			os.Exit(2)
		}
		fr, err := experiment.Execute(f, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pidcan-figures:", err)
			os.Exit(1)
		}
		fr.Render(os.Stdout)
		fmt.Printf("(%d runs at scale %.2f in %v)\n\n", len(f.Runs), *scale, time.Since(start).Round(time.Millisecond))
	}
}
