// Command pidcan-router fronts a federation of pidcan-serve primary
// processes with one serving surface: queries scatter-gather across
// every member (each a primary engine with its own WAL and follower
// set) exactly as one engine scatters across its shards, joins are
// placed by hashing into the federation map's keyspace slices, and
// writes chase nodes migrated between members through a forwarding
// table — every id a node was ever known by stays routable.
//
//	pidcan-router -addr :8090 -members "hostA:9001,hostB:9001|hostB2:9001"
//
// -members is comma-separated; each member lists its wire addresses
// pipe-separated, primary first, promotable followers after. When a
// member's primary dies the router rotates onto the fallback
// addresses, and once a promoted follower answers with a higher
// replication epoch the router bumps the federation map version and
// pushes the map to every member — other routers converge on their
// next stale-flagged query.
//
// Endpoints: the standard JSON API (POST /query /update /join
// /leave /take, GET /nodes /stats /healthz) plus GET /map (the
// current federation map) and POST /migrate {"node":N,"member":M}
// (cross-process node migration). -wire-addr adds the binary wire
// edge over the same router.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pidcan"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "HTTP listen address")
		wireAddr = flag.String("wire-addr", "", "binary wire-protocol listen address (empty disables)")
		members  = flag.String("members", "", "federation members: comma-separated, each a pipe-separated wire address list (primary first)")
		scatter  = flag.Duration("scatter-timeout", 2*time.Second, "whole-gather deadline of cross-member scatter queries")
		grace    = flag.Duration("forward-grace", time.Minute, "how long a migrated-away id stays routable after its move")
		pool     = flag.Int("pool", 0, "pipelined wire connections per member (0 = default 1)")
		unpiped  = flag.Bool("unpipelined", false, "synchronous one-call-per-connection member transport (benchmark baseline)")
		sumTTL   = flag.Duration("summary-ttl", time.Second, "max availability-summary age that may still prune a scatter leg")
		sumEvery = flag.Duration("summary-refresh", 250*time.Millisecond, "background summary exchange period (<0 disables)")
		noPrune  = flag.Bool("no-prune", false, "disable demand-region pruning (always full fan-out)")
	)
	flag.Parse()

	var lists [][]string
	for _, m := range strings.Split(*members, ",") {
		var addrs []string
		for _, a := range strings.Split(m, "|") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) > 0 {
			lists = append(lists, addrs)
		}
	}
	if len(lists) == 0 {
		log.Fatal("no federation members (-members \"hostA:9001,hostB:9001|hostB2:9001\")")
	}

	router, err := pidcan.NewFedRouter(pidcan.FedRouterConfig{
		Members:        lists,
		ScatterTimeout: *scatter,
		ForwardGrace:   *grace,
		PoolSize:       *pool,
		Unpipelined:    *unpiped,
		SummaryTTL:     *sumTTL,
		SummaryRefresh: *sumEvery,
		DisablePruning: *noPrune,
	})
	if err != nil {
		log.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", pidcan.NewServiceHandler(router))
	mux.HandleFunc("GET /map", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(router.Map())
	})
	mux.HandleFunc("POST /migrate", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Node   uint64 `json:"node"`
			Member int    `json:"member"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
			return
		}
		if err := router.Migrate(pidcan.GlobalNodeID(req.Node), req.Member); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}` + "\n"))
	})

	var ws *pidcan.WireServer
	if *wireAddr != "" {
		ws = pidcan.NewServiceWireServer(func() pidcan.Service { return router }, pidcan.WireServerConfig{})
		ln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("wire protocol on %s", *wireAddr)
		go func() {
			if err := ws.Serve(ln); err != nil {
				log.Printf("wire server: %v", err)
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		if ws != nil {
			ws.Close()
		}
		srv.Close()
	}()

	log.Printf("routing %d members on %s", len(lists), *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	router.Close()
}
