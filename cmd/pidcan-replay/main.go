// Command pidcan-replay is the traffic record/replay driver:
//
//	pidcan-replay -list
//	pidcan-replay -scenario flash-crowd [-seed 42] [-out trace.bin]
//	pidcan-replay -trace trace.bin [-pace recorded] [-strict]
//	pidcan-replay -record -url http://localhost:8080 -duration 10s -out trace.bin
//
// -scenario compiles a named scenario from the CI corpus and replays
// it against a fresh engine with a linear-scan reference refereeing
// every response, asserting the scenario's invariant set (exit 1 on
// any violation). -trace replays a recorded trace file the same way
// (invariants: zero acked-write loss and digest equivalence against
// the reference; -strict additionally compares against the digests
// captured live, which is only sound for sequentially recorded
// traces). -record drives a live pidcan-serve's /capture endpoints:
// start a capture, wait, stop, download the trace — run the load
// (e.g. pidcan-loadgen) against the server in the meantime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"pidcan"
	"pidcan/internal/serve/capture"
	"pidcan/internal/serve/replay"
	"pidcan/internal/serve/replay/scenario"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the scenario corpus and exit")
		scen     = flag.String("scenario", "", "compile and replay a named scenario from the corpus")
		seed     = flag.Uint64("seed", 42, "scenario seed (same name+seed compiles the identical trace)")
		out      = flag.String("out", "", "write the compiled scenario / downloaded recording to this trace file")
		traceIn  = flag.String("trace", "", "replay this trace file against a fresh engine")
		pace     = flag.String("pace", "max", "replay pacing: max (back-to-back) or recorded (reproduce arrival deltas)")
		strict   = flag.Bool("strict", false, "also compare replayed digests against the digests captured live")
		record   = flag.Bool("record", false, "record a trace from a live server's /capture endpoints")
		url      = flag.String("url", "http://localhost:8080", "server base URL (-record)")
		duration = flag.Duration("duration", 10*time.Second, "capture window (-record)")
		dir      = flag.String("dir", "", "scratch dir for durable replay state (default: a temp dir)")
		jsonOut  = flag.Bool("json", false, "print the replay result as JSON")
	)
	flag.Parse()

	switch {
	case *list:
		for _, name := range scenario.Names() {
			sc, err := scenario.Build(name, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s %s\n", name, sc.Description)
		}
	case *scen != "":
		runScenario(*scen, *seed, *out, *dir, *jsonOut)
	case *traceIn != "":
		runTrace(*traceIn, *pace, *strict, *jsonOut)
	case *record:
		runRecord(*url, *duration, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runScenario(name string, seed uint64, out, dir string, jsonOut bool) {
	sc, err := scenario.Build(name, seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("scenario %s (seed %d): %d events — %s", name, seed, len(sc.Events), sc.Description)
	if out != "" {
		if err := scenario.WriteTraceFile(out, sc); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", out)
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pidcan-replay-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	res, viol, err := scenario.Run(sc, dir, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	report(res, viol, jsonOut)
}

func runTrace(path, pace string, strict, jsonOut bool) {
	hdr, events, torn, err := capture.ReadTraceFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if torn > 0 {
		log.Printf("trace has a torn tail: %d trailing bytes dropped", torn)
	}
	log.Printf("trace %s: %d events, %d shards × %d nodes, seed %d", path, len(events), hdr.Shards, hdr.NodesPerShard, hdr.Seed)
	refCfg := replay.EngineConfig(hdr)
	refCfg.IndexDisabled = true
	refCfg.CacheDisabled = true
	ref, err := pidcan.NewEngine(refCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ref.Close()
	sut, err := pidcan.NewEngine(replay.EngineConfig(hdr))
	if err != nil {
		log.Fatal(err)
	}
	defer sut.Close()
	opts := replay.Options{Strict: strict, Reference: ref, Logf: log.Printf}
	switch pace {
	case "max":
	case "recorded":
		opts.Pace = replay.PaceRecorded
	default:
		log.Fatalf("unknown -pace %q (want max or recorded)", pace)
	}
	res, err := replay.Run(sut, hdr, events, opts)
	if err != nil {
		log.Fatal(err)
	}
	viol := res.Check(replay.Invariants{ZeroAckedWriteLoss: true, DigestEquivalence: true})
	report(res, viol, jsonOut)
}

func runRecord(url string, d time.Duration, out string) {
	if out == "" {
		log.Fatal("-record needs -out trace.bin")
	}
	post := func(p string) map[string]any {
		resp, err := http.Post(url+p, "application/json", nil)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s: %v", p, m)
		}
		return m
	}
	post("/capture/start")
	log.Printf("capturing on %s for %v — drive your load now", url, d)
	time.Sleep(d)
	st := post("/capture/stop")
	log.Printf("captured %v records (%v dropped, %v bytes)", st["records"], st["dropped"], st["bytes"])
	resp, err := http.Get(url + "/capture/trace")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("/capture/trace: %s", resp.Status)
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d bytes); replay with: pidcan-replay -trace %s", out, n, out)
}

func report(res *replay.Result, viol []string, jsonOut bool) {
	if jsonOut {
		data, _ := json.MarshalIndent(res, "", "  ")
		fmt.Println(string(data))
	} else {
		fmt.Printf("replayed %d events (%d queries, %d mutations, %d faults) in %v\n",
			res.Events, res.Queries, res.Mutations, res.Faults, res.Wall)
		fmt.Printf("writes: %d acked, %d rejected-on-halted, %d errors; digests: %d vs-recorded, %d vs-reference mismatches\n",
			res.AckedWrites, res.RejectedOnHalted, res.WriteErrors, res.DigestMismatches, res.RefMismatches)
		fmt.Printf("final state: %d lost writes, %d extra nodes, imbalance %.2f; query p50 %v p99 %v\n",
			res.LostWrites, res.ExtraNodes, res.Imbalance, res.P50, res.P99)
	}
	if len(viol) > 0 {
		for _, v := range viol {
			fmt.Fprintf(os.Stderr, "INVARIANT VIOLATED: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("all invariants hold")
}
