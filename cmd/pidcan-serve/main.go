// Command pidcan-serve runs the concurrent PID-CAN query service:
// a sharded snapshot engine (internal/serve) behind an HTTP JSON
// API.
//
//	pidcan-serve -addr :8080 -shards 4 -nodes 64 -seed 1
//
// Endpoints: POST /query /update /join /leave /rebalance
// /checkpoint /promote, GET /nodes /stats /healthz. With -data-dir
// the service is durable: every write lands in a per-shard op-log
// before it is acknowledged, a clean shutdown writes a checkpoint,
// and the next start with the same -data-dir (and shard/seed shape)
// recovers every join, update and migration it ever acknowledged —
// kill -9 included, minus nothing but unacknowledged requests.
// Consistent queries ({"consistent":true})
// scatter-gather through every shard's protocol by default;
// {"scope":"one"} keeps the paper-faithful single-shard routing.
// With -rebalance-interval set, an adaptive rebalancer migrates
// nodes between shards whenever populations skew past
// -rebalance-threshold (joins targeted with {"shard":S} are how
// skew happens on purpose). Drive it with cmd/pidcan-loadgen — its
// -skew flag zipf-concentrates joins and updates onto a few shards
// — to watch populations converge in /stats.
//
// Wire protocol: -wire-addr adds the compact binary serving edge
// (internal/serve/wire) next to the JSON API — persistent TCP
// connections, pipelined in-order responses, epoch-fenced writes —
// and -wire-udp a single-packet UDP fast path for queries. JSON
// stays up as the debug surface; drive the binary edge with
// cmd/pidcan-loadgen -proto wire.
//
// Replication: a durable primary with -repl-addr streams its op-log
// to followers; a second process started with -role follower
// -primary host:replport mirrors it and serves read-only traffic
// (writes 503 to the primary's address). When the primary dies,
// POST /promote on the follower seals a new epoch and opens it for
// writes; -repl-addr on the follower then starts serving the stream
// to the next generation of followers. The shard/seed shape must
// match the primary's.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pidcan"
	"pidcan/internal/vector"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", 4, "number of cluster shards")
		nodes    = flag.Int("nodes", 64, "initial nodes per shard")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		warmup   = flag.Duration("warmup", 30*time.Minute, "simulated warmup per shard (state updates + index diffusion settle)")
		flush    = flag.Duration("flush", 100*time.Millisecond, "idle snapshot-refresh cadence")
		cacheTTL = flag.Duration("cache-ttl", 25*time.Millisecond, "query-cache freshness bound")
		noCache  = flag.Bool("no-cache", false, "disable the query cache")
		adaptEvr = flag.Int("cache-adapt-every", 4096, "adaptive cache-controller window in lookups (0 freezes TTL/quantum/epoch-bound at their configured values)")
		noIndex  = flag.Bool("no-index", false, "rank queries by linear snapshot scan instead of the flat dominance index")
		populate = flag.Bool("populate", true, "publish a random initial availability per node")
		scatter  = flag.Duration("scatter-timeout", 5*time.Second, "whole-gather deadline of scatter-gather consistent queries")
		rebal    = flag.Duration("rebalance-interval", 0, "adaptive shard-rebalancer cadence (0 disables; POST /rebalance still triggers single passes)")
		rebalThr = flag.Float64("rebalance-threshold", 1.25, "max/min shard-population ratio that triggers migration")
		rebalMax = flag.Int("rebalance-moves", 8, "migration cap per rebalance pass")
		dataDir  = flag.String("data-dir", "", "durable state directory (op-log + checkpoints); empty serves purely in-memory")
		ckptEvry = flag.Duration("checkpoint-every", 0, "background checkpoint cadence (0: only on shutdown and POST /checkpoint)")
		fsync    = flag.Int("fsync-every", 1, "fsync the op-log once per N applied write batches (negative: never fsync)")
		role     = flag.String("role", "primary", "serving role: primary, or follower (read replica of -primary)")
		primary  = flag.String("primary", "", "primary's replication address host:port (follower role)")
		replAddr = flag.String("repl-addr", "", "replication listen address for followers (needs -data-dir; on a follower it activates at promotion)")
		wireAddr = flag.String("wire-addr", "", "binary wire-protocol listen address (persistent TCP, pipelined; empty disables)")
		wireUDP  = flag.String("wire-udp", "", "single-packet UDP query listen address of the wire protocol (empty disables)")
	)
	flag.Parse()

	cfg := pidcan.EngineConfig{
		Shards:             *shards,
		NodesPerShard:      *nodes,
		Seed:               *seed,
		Warmup:             pidcan.Time(warmup.Microseconds()),
		FlushInterval:      *flush,
		CacheTTL:           *cacheTTL,
		CacheDisabled:      *noCache,
		CacheAdaptEvery:    *adaptEvr,
		IndexDisabled:      *noIndex,
		ScatterTimeout:     *scatter,
		RebalanceInterval:  *rebal,
		RebalanceThreshold: *rebalThr,
		RebalanceMaxMoves:  *rebalMax,
		DataDir:            *dataDir,
		CheckpointEvery:    *ckptEvry,
		FsyncEvery:         *fsync,
	}

	var h dynHandler
	h.capture = pidcan.NewCaptureHandler(h.engine)

	// The wire edge starts before the engine: its listeners answer
	// CodeNotReady until the role setup mounts one through h.set
	// (exactly the follower re-bootstrap contract). JSON/HTTP stays up
	// as the debug surface next to it.
	var ws *pidcan.WireServer
	if *wireAddr != "" || *wireUDP != "" {
		ws = pidcan.NewWireServer(h.engine, pidcan.WireServerConfig{})
		h.wire = ws
		if *wireAddr != "" {
			ln, err := net.Listen("tcp", *wireAddr)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("wire protocol on %s", *wireAddr)
			go func() {
				if err := ws.Serve(ln); err != nil {
					log.Printf("wire server: %v", err)
				}
			}()
		}
		if *wireUDP != "" {
			ua, err := net.ResolveUDPAddr("udp", *wireUDP)
			if err != nil {
				log.Fatal(err)
			}
			uc, err := net.ListenUDP("udp", ua)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("wire udp fast path on %s", *wireUDP)
			go func() {
				if err := ws.ServeUDP(uc); err != nil {
					log.Printf("wire udp server: %v", err)
				}
			}()
		}
	}

	srv := &http.Server{Addr: *addr, Handler: &h}
	stop := func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		if ws != nil {
			ws.Close()
		}
		srv.Close()
	}

	// shutdown runs after the HTTP listener stops: it flushes and
	// fsyncs the op-log and (primary) writes the clean-shutdown
	// checkpoint — without it a graceful exit could drop acked
	// writes still buffered under -fsync-every > 1.
	var shutdown func()
	switch *role {
	case "follower":
		shutdown = runFollower(cfg, &h, *primary, *replAddr)
	case "primary":
		shutdown = runPrimary(cfg, &h, *populate, *seed, *replAddr, *rebal, *rebalThr, *rebalMax)
	default:
		log.Fatalf("unknown -role %q (want primary or follower)", *role)
	}

	go stop()
	log.Printf("serving on %s (role %s)", *addr, *role)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	shutdown()
}

// dynHandler routes HTTP to the current engine — which a follower
// can swap when a re-bootstrap rebuilds it.
type dynHandler struct {
	mu      sync.RWMutex
	eng     *pidcan.Engine
	h       http.Handler
	wire    *pidcan.WireServer
	capture http.Handler
}

func (d *dynHandler) set(e *pidcan.Engine) {
	d.mu.Lock()
	d.eng, d.h = e, pidcan.NewEngineHandler(e)
	w := d.wire
	d.mu.Unlock()
	if w != nil {
		e.SetWireStats(w.Stats)
	}
}

// engine is the wire server's view of the current engine (nil until
// the first set; the wire edge answers CodeNotReady meanwhile).
func (d *dynHandler) engine() *pidcan.Engine {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.eng
}

func (d *dynHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// The capture control surface rides next to the engine API and
	// follows engine swaps through the same getter the wire edge uses.
	if strings.HasPrefix(r.URL.Path, "/capture/") {
		d.capture.ServeHTTP(w, r)
		return
	}
	d.mu.RLock()
	h := d.h
	d.mu.RUnlock()
	if h == nil {
		http.Error(w, `{"error":"engine not ready (follower still bootstrapping)"}`, http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// startReplServer exposes eng's op-log stream on replAddr.
func startReplServer(eng *pidcan.Engine, replAddr string) *pidcan.ReplServer {
	rs, err := pidcan.NewReplServer(eng, pidcan.ReplServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", replAddr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("replicating on %s", replAddr)
	go func() {
		if err := rs.Serve(ln); err != nil {
			log.Printf("replication server: %v", err)
		}
	}()
	return rs
}

// runPrimary builds the engine the PR-4 way and, with -repl-addr,
// starts streaming its op-log to followers.
func runPrimary(cfg pidcan.EngineConfig, h *dynHandler, populate bool, seed uint64,
	replAddr string, rebal time.Duration, rebalThr float64, rebalMax int) (shutdown func()) {
	log.Printf("building engine: %d shard(s) x %d nodes, seed %d", cfg.Shards, cfg.NodesPerShard, cfg.Seed)
	start := time.Now()
	eng, err := pidcan.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("engine up in %v (epoch %d)", time.Since(start).Round(time.Millisecond), eng.Epoch())
	if rebal > 0 {
		log.Printf("rebalancer on: every %v, threshold %.2f, <= %d moves/pass", rebal, rebalThr, rebalMax)
	}

	warm := false
	if cfg.DataDir != "" {
		st := eng.Stats()
		warm = st.WarmStart
		if warm {
			log.Printf("warm restart from %s: %d nodes, %d log records replayed in %.1fms",
				cfg.DataDir, st.TotalNodes, st.RecoveredRecords, st.LastRecoveryMS)
		} else {
			log.Printf("durable serving: op-log + checkpoints under %s (fsync every %d batches)",
				cfg.DataDir, cfg.FsyncEvery)
		}
	}

	// A warm restart already carries its recovered availabilities;
	// re-populating would overwrite real state with synthetic data.
	if populate && !warm {
		if err := populateAvailability(eng, seed); err != nil {
			log.Fatal(err)
		}
	}
	var rs *pidcan.ReplServer
	if replAddr != "" {
		rs = startReplServer(eng, replAddr)
	}
	h.set(eng)
	return func() {
		if rs != nil {
			rs.Close()
		}
		if err := eng.Close(); err != nil {
			log.Printf("engine close: %v", err)
		}
	}
}

// runFollower mirrors a primary: the replication client owns the
// engine lifecycle (bootstrap can rebuild it), POST /promote drains
// and seals, and -repl-addr starts this node's own stream once
// promoted.
func runFollower(cfg pidcan.EngineConfig, h *dynHandler, primary, replAddr string) (shutdown func()) {
	if primary == "" || cfg.DataDir == "" {
		log.Fatal("follower role needs -primary and -data-dir")
	}
	cfg.Follower = true
	cfg.PrimaryAddr = primary

	var cl *pidcan.ReplClient
	var promoted atomic.Bool
	mount := func() (*pidcan.Engine, error) {
		eng, err := pidcan.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		eng.SetPromoter(func() (uint64, error) {
			epoch, err := cl.Promote()
			if err != nil {
				return 0, err
			}
			if replAddr != "" && promoted.CompareAndSwap(false, true) {
				startReplServer(cl.Engine(), replAddr)
			}
			return epoch, nil
		})
		h.set(eng)
		st := eng.Stats()
		log.Printf("follower engine up: %d nodes, epoch %d (warm=%v)", st.TotalNodes, st.Epoch, st.WarmStart)
		return eng, nil
	}
	cl, err := pidcan.NewReplClient(pidcan.ReplClientConfig{
		Primary: primary,
		DataDir: cfg.DataDir,
		Shards:  cfg.Shards,
		Mount:   mount,
		Logf:    log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("follower of %s: mirroring into %s", primary, cfg.DataDir)
	go cl.Run()
	return func() {
		cl.Close()
		if eng := cl.Engine(); eng != nil {
			if err := eng.Close(); err != nil {
				log.Printf("engine close: %v", err)
			}
		}
	}
}

// populateAvailability gives every node a deterministic pseudo-random
// availability in [0.2, 1.0]·cmax so queries have something to find.
func populateAvailability(eng *pidcan.Engine, seed uint64) error {
	cmax := eng.Config().CMax
	rng := rand.New(rand.NewPCG(seed, 0xda7a))
	n := 0
	for _, id := range eng.Nodes() {
		avail := make(vector.Vec, cmax.Dim())
		for k := range avail {
			avail[k] = cmax[k] * (0.2 + 0.8*rng.Float64())
		}
		if err := eng.Update(id, avail, true); err != nil {
			return fmt.Errorf("populate %v: %w", id, err)
		}
		n++
	}
	log.Printf("populated %d nodes", n)
	return nil
}
