// Command pidcan-serve runs the concurrent PID-CAN query service:
// a sharded snapshot engine (internal/serve) behind an HTTP JSON
// API.
//
//	pidcan-serve -addr :8080 -shards 4 -nodes 64 -seed 1
//
// Endpoints: POST /query /update /join /leave /rebalance
// /checkpoint, GET /nodes /stats /healthz. With -data-dir the
// service is durable: every write lands in a per-shard op-log before
// it is acknowledged, a clean shutdown writes a checkpoint, and the
// next start with the same -data-dir (and shard/seed shape) recovers
// every join, update and migration it ever acknowledged — kill -9
// included, minus nothing but unacknowledged requests.
// Consistent queries ({"consistent":true})
// scatter-gather through every shard's protocol by default;
// {"scope":"one"} keeps the paper-faithful single-shard routing.
// With -rebalance-interval set, an adaptive rebalancer migrates
// nodes between shards whenever populations skew past
// -rebalance-threshold (joins targeted with {"shard":S} are how
// skew happens on purpose). Drive it with cmd/pidcan-loadgen — its
// -skew flag zipf-concentrates joins and updates onto a few shards
// — to watch populations converge in /stats.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pidcan"
	"pidcan/internal/vector"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		shards   = flag.Int("shards", 4, "number of cluster shards")
		nodes    = flag.Int("nodes", 64, "initial nodes per shard")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		warmup   = flag.Duration("warmup", 30*time.Minute, "simulated warmup per shard (state updates + index diffusion settle)")
		flush    = flag.Duration("flush", 100*time.Millisecond, "idle snapshot-refresh cadence")
		cacheTTL = flag.Duration("cache-ttl", 25*time.Millisecond, "query-cache freshness bound")
		noCache  = flag.Bool("no-cache", false, "disable the query cache")
		populate = flag.Bool("populate", true, "publish a random initial availability per node")
		scatter  = flag.Duration("scatter-timeout", 5*time.Second, "whole-gather deadline of scatter-gather consistent queries")
		rebal    = flag.Duration("rebalance-interval", 0, "adaptive shard-rebalancer cadence (0 disables; POST /rebalance still triggers single passes)")
		rebalThr = flag.Float64("rebalance-threshold", 1.25, "max/min shard-population ratio that triggers migration")
		rebalMax = flag.Int("rebalance-moves", 8, "migration cap per rebalance pass")
		dataDir  = flag.String("data-dir", "", "durable state directory (op-log + checkpoints); empty serves purely in-memory")
		ckptEvry = flag.Duration("checkpoint-every", 0, "background checkpoint cadence (0: only on shutdown and POST /checkpoint)")
		fsync    = flag.Int("fsync-every", 1, "fsync the op-log once per N applied write batches (negative: never fsync)")
	)
	flag.Parse()

	cfg := pidcan.EngineConfig{
		Shards:             *shards,
		NodesPerShard:      *nodes,
		Seed:               *seed,
		Warmup:             pidcan.Time(warmup.Microseconds()),
		FlushInterval:      *flush,
		CacheTTL:           *cacheTTL,
		CacheDisabled:      *noCache,
		ScatterTimeout:     *scatter,
		RebalanceInterval:  *rebal,
		RebalanceThreshold: *rebalThr,
		RebalanceMaxMoves:  *rebalMax,
		DataDir:            *dataDir,
		CheckpointEvery:    *ckptEvry,
		FsyncEvery:         *fsync,
	}
	log.Printf("building engine: %d shard(s) x %d nodes, seed %d", *shards, *nodes, *seed)
	start := time.Now()
	eng, err := pidcan.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	log.Printf("engine up in %v", time.Since(start).Round(time.Millisecond))
	if *rebal > 0 {
		log.Printf("rebalancer on: every %v, threshold %.2f, <= %d moves/pass", *rebal, *rebalThr, *rebalMax)
	}

	warm := false
	if *dataDir != "" {
		st := eng.Stats()
		warm = st.WarmStart
		if warm {
			log.Printf("warm restart from %s: %d nodes, %d log records replayed in %.1fms",
				*dataDir, st.TotalNodes, st.RecoveredRecords, st.LastRecoveryMS)
		} else {
			log.Printf("durable serving: op-log + checkpoints under %s (fsync every %d batches)", *dataDir, *fsync)
		}
	}

	// A warm restart already carries its recovered availabilities;
	// re-populating would overwrite real state with synthetic data.
	if *populate && !warm {
		if err := populateAvailability(eng, *seed); err != nil {
			log.Fatal(err)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: pidcan.NewEngineHandler(eng)}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		srv.Close()
	}()
	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

// populateAvailability gives every node a deterministic pseudo-random
// availability in [0.2, 1.0]·cmax so queries have something to find.
func populateAvailability(eng *pidcan.Engine, seed uint64) error {
	cmax := eng.Config().CMax
	rng := rand.New(rand.NewPCG(seed, 0xda7a))
	n := 0
	for _, id := range eng.Nodes() {
		avail := make(vector.Vec, cmax.Dim())
		for k := range avail {
			avail[k] = cmax[k] * (0.2 + 0.8*rng.Float64())
		}
		if err := eng.Update(id, avail, true); err != nil {
			return fmt.Errorf("populate %v: %w", id, err)
		}
		n++
	}
	log.Printf("populated %d nodes", n)
	return nil
}
