// Command pidcan-overlay inspects the CAN/INSCAN overlay substrate:
// it builds an overlay, reports zone statistics, and measures routing
// hop counts for indexed (INSCAN) vs adjacent-only (plain CAN)
// greedy routing — the empirical check of the paper's Theorem 1
// (O(log2 n) delivery with 2^k index links vs O(n^{1/d}) without).
//
// Example:
//
//	pidcan-overlay -nodes 4096 -dims 5 -routes 2000
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"pidcan/internal/overlay"
	"pidcan/internal/sim"
	"pidcan/internal/space"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 2048, "overlay size")
		dims   = flag.Int("dims", 5, "space dimensionality")
		routes = flag.Int("routes", 1000, "random routing trials")
		seed   = flag.Uint64("seed", 1, "random seed")
		churn  = flag.Int("churn", 0, "leave/join pairs to apply before measuring")
	)
	flag.Parse()

	rng := sim.NewRNG(*seed, sim.StreamOverlay)
	nw := overlay.New(*dims, 0, rng)
	for i := 1; i < *nodes; i++ {
		if _, err := nw.Join(overlay.NodeID(i)); err != nil {
			fmt.Fprintln(os.Stderr, "join:", err)
			os.Exit(1)
		}
	}
	next := overlay.NodeID(*nodes)
	ids := nw.Nodes()
	for i := 0; i < *churn; i++ {
		victim := ids[rng.IntN(len(ids))]
		if nw.Contains(victim) {
			if _, err := nw.Leave(victim); err != nil {
				fmt.Fprintln(os.Stderr, "leave:", err)
				os.Exit(1)
			}
			if _, err := nw.Join(next); err != nil {
				fmt.Fprintln(os.Stderr, "join:", err)
				os.Exit(1)
			}
			next++
			ids = nw.Nodes()
		}
	}
	if err := nw.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "overlay invalid:", err)
		os.Exit(1)
	}

	// Zone statistics.
	vols := make([]float64, 0, nw.Size())
	nw.Nodes()
	for _, id := range nw.Nodes() {
		z, _ := nw.ZoneOf(id)
		vols = append(vols, z.Volume())
	}
	sort.Float64s(vols)
	fmt.Printf("overlay             n=%d d=%d (K=%d index exponents)\n", nw.Size(), *dims, nw.MaxIndexExponent())
	fmt.Printf("zone volume         min %.3g  median %.3g  max %.3g (uniform would be %.3g)\n",
		vols[0], vols[len(vols)/2], vols[len(vols)-1], 1/float64(nw.Size()))

	// Routing statistics.
	ids = nw.Nodes()
	routeRNG := sim.NewRNG(*seed, 99)
	var idxHops, adjHops []int
	for i := 0; i < *routes; i++ {
		origin := ids[routeRNG.IntN(len(ids))]
		target := make(space.Point, *dims)
		for k := range target {
			target[k] = routeRNG.Float64()
		}
		p1, err := nw.Route(origin, target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "route:", err)
			os.Exit(1)
		}
		p2, err := nw.RouteAdjacent(origin, target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "route:", err)
			os.Exit(1)
		}
		idxHops = append(idxHops, p1.Len())
		adjHops = append(adjHops, p2.Len())
	}
	report := func(name string, hops []int) {
		sort.Ints(hops)
		sum := 0
		for _, h := range hops {
			sum += h
		}
		fmt.Printf("%-19s mean %.2f  p50 %d  p99 %d  max %d\n", name,
			float64(sum)/float64(len(hops)), hops[len(hops)/2], hops[len(hops)*99/100], hops[len(hops)-1])
	}
	report("indexed routing", idxHops)
	report("adjacent routing", adjHops)
	fmt.Printf("theorem-1 yardstick log2(n)=%.1f  d·log2(n^(1/d))=%.1f  n^(1/d)=%.1f\n",
		math.Log2(float64(nw.Size())),
		float64(*dims)*math.Log2(math.Pow(float64(nw.Size()), 1/float64(*dims))),
		math.Pow(float64(nw.Size()), 1/float64(*dims)))
}
