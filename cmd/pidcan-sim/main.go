// Command pidcan-sim runs one Self-Organizing Cloud simulation and
// prints the paper's metrics: end-of-run summary plus the hourly
// T-Ratio / F-Ratio / fairness series as CSV.
//
// Example:
//
//	pidcan-sim -protocol HID-CAN -nodes 2000 -lambda 0.5 -hours 24 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pidcan"
)

var protocols = map[string]pidcan.Protocol{
	"HID-CAN":     pidcan.HIDCAN,
	"SID-CAN":     pidcan.SIDCAN,
	"HID-CAN+SoS": pidcan.HIDCANSoS,
	"SID-CAN+SoS": pidcan.SIDCANSoS,
	"SID-CAN+VD":  pidcan.SIDCANVD,
	"Newscast":    pidcan.Newscast,
	"KHDN-CAN":    pidcan.KHDNCAN,
}

func protocolNames() string {
	names := make([]string, 0, len(protocols))
	for n := range protocols {
		names = append(names, n)
	}
	return strings.Join(names, ", ")
}

func main() {
	var (
		protoName = flag.String("protocol", "HID-CAN", "discovery protocol: "+protocolNames())
		nodes     = flag.Int("nodes", 2000, "initial node count")
		lambda    = flag.Float64("lambda", 0.5, "demand ratio λ (Table II)")
		hours     = flag.Float64("hours", 24, "simulated duration in hours")
		seed      = flag.Uint64("seed", 1, "random seed (equal seeds reproduce runs)")
		churnDeg  = flag.Float64("churn", 0, "dynamic degree: churned node fraction per 3000s")
		delta     = flag.Int("k", 3, "qualified results per query (δ)")
		validate  = flag.Bool("validate-placement", false, "re-check Inequality (2) at the host (ablation)")
		csv       = flag.Bool("csv", false, "emit the hourly series as CSV")
	)
	flag.Parse()

	p, ok := protocols[*protoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown protocol %q; have: %s\n", *protoName, protocolNames())
		os.Exit(2)
	}
	cfg := pidcan.DefaultConfig(p, *nodes, *lambda)
	cfg.Duration = pidcan.Time(float64(pidcan.Hour) * *hours)
	cfg.Seed = *seed
	cfg.Churn.Degree = *churnDeg
	cfg.ResultsWanted = *delta
	cfg.ValidatePlacement = *validate
	if *validate {
		cfg.QueryRetries = 2
	}

	res, err := pidcan.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pidcan-sim:", err)
		os.Exit(1)
	}
	rec := res.Rec
	fmt.Printf("protocol            %s\n", res.Protocol)
	fmt.Printf("nodes               %d (final %d)\n", *nodes, res.FinalNodes)
	fmt.Printf("simulated           %.1f h   (wall %v, %d events)\n",
		cfg.Duration.Hours(), res.Wall.Round(1e6), res.Events)
	fmt.Printf("tasks               generated %d, finished %d, failed %d, lost %d\n",
		rec.Generated, rec.Finished, rec.Failed, rec.Lost)
	fmt.Printf("T-Ratio             %.3f\n", rec.TRatio())
	fmt.Printf("F-Ratio             %.3f\n", rec.FRatio())
	fmt.Printf("fairness index      %.3f   (Eq.4 literal %.3f)\n", rec.Fairness(), rec.FairnessEq4())
	fmt.Printf("msg delivery cost   %.0f msgs/node\n", rec.DeliveryCostPerNode(res.FinalNodes))
	fmt.Printf("mean query hops     %.1f over %d queries\n", rec.MeanQueryHops(), rec.Queries())
	fmt.Printf("message breakdown  ")
	for _, kc := range rec.MessageBreakdown() {
		fmt.Printf(" %s=%d", kc.Kind, kc.Count)
	}
	fmt.Println()

	if *csv {
		fmt.Println("\nhour,t_ratio,f_ratio,fairness")
		for _, s := range rec.Series() {
			fmt.Printf("%.0f,%.4f,%.4f,%.4f\n", s.At.Hours(), s.TRatio, s.FRatio, s.Fairness)
		}
	}
}
