// Command pidcan-loadgen drives cmd/pidcan-serve with an open-loop
// arrival process and reports sustained throughput and latency
// percentiles.
//
// Open-loop means arrivals are scheduled by the target rate, not by
// response times (DEPAS-style): when the server lags, requests queue
// and latency percentiles show it — the generator never slows down
// to flatter the system under test. The report counts both shed
// sends (the dispatcher's queue was full) and late sends (a worker
// started an op more than 1ms after its scheduled arrival): a run
// with material shed or late counts was not actually offered at the
// target rate, and its percentiles undersell the backlog.
//
//	pidcan-loadgen -url http://localhost:8080 -rate 20000 -duration 10s
//	pidcan-loadgen -url http://localhost:8080 -arrivals bursty -burst 4
//
// -proto picks the serving edge: "http" posts the JSON API, "wire"
// drives the binary wire protocol (-wire host:port, the server's
// -wire-addr) over persistent pipelined connections — one connection
// per worker, a sender/reader goroutine pair keeping deep bursts in
// flight. A rate of 0 runs closed-loop, which on the wire edge
// measures the server's pipelined ceiling. -compare reruns the same
// load on the other protocol afterward and prints a one-line
// wire-vs-http comparison.
//
// The traffic mix is query-dominated by default; tune with
// -mix query=90,update=6,join=2,leave=2. A -consistent fraction of
// queries routes through the PID-CAN protocol itself;
// -consistent-scope picks between the scatter-gather merge of every
// shard ("all") and the paper-faithful single shard ("one").
//
// -skew Z (Z > 1) zipf-concentrates joins and updates onto a few
// shards (exponent Z over the shard indexes, shard 0 hottest):
// joins carry an explicit {"shard":S} target, and updates pick
// their victim among the nodes originally homed on the skewed shard
// (ids stay valid after the server migrates a node away — the write
// then follows it, so update skew fades as rebalancing digests the
// hot shard, which is the point). Point it at a server running with
// -rebalance-interval to watch the adaptive rebalancer pull the
// max/min shard-population ratio back down — the generator prints
// the server's per-shard populations, migrations and last sampled
// imbalance after the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand/v2"
	"net/http"
	neturl "net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pidcan"
)

type opClass int

const (
	clQuery opClass = iota
	clUpdate
	clJoin
	clLeave
	numClasses
)

var classNames = [numClasses]string{"query", "update", "join", "leave"}

type job struct {
	class opClass
	due   time.Time
}

type sample struct {
	class opClass
	lat   time.Duration
	err   bool
}

func main() {
	var (
		baseURL  = flag.String("url", "http://localhost:8080", "pidcan-serve base URL (discovery and the http protocol)")
		proto    = flag.String("proto", "http", "serving edge to drive: http (JSON API) or wire (binary protocol; needs -wire)")
		wireTgt  = flag.String("wire", "", "wire-protocol address host:port (the server's -wire-addr; required by -proto wire and -compare)")
		compare  = flag.Bool("compare", false, "rerun the same load on the other protocol afterward and print a wire-vs-http comparison line")
		rate     = flag.Float64("rate", 20000, "target arrival rate (requests/sec)")
		duration = flag.Duration("duration", 10*time.Second, "generation window")
		workers  = flag.Int("workers", 64, "concurrent request workers (wire: one pipelined connection each)")
		arrivals = flag.String("arrivals", "poisson", "arrival process: poisson|bursty|uniform")
		burst    = flag.Float64("burst", 4, "bursty mode: on-period rate multiplier")
		period   = flag.Duration("period", 500*time.Millisecond, "bursty mode: mean on/off period")
		mix      = flag.String("mix", "query=92,update=5,join=2,leave=1", "traffic mix weights")
		k        = flag.Int("k", 3, "candidates per query")
		profiles = flag.Int("profiles", 64, "distinct demand profiles (0 = every query draws a fresh random demand)")
		consist  = flag.Float64("consistent", 0, "fraction of queries routed through the PID-CAN protocol instead of the snapshot path")
		conScope = flag.String("consistent-scope", "all", "consistent-query scope: all (scatter-gather every shard) or one (single shard)")
		skew     = flag.Float64("skew", 0, "zipf exponent (> 1) concentrating joins and updates onto low shard indexes; 0 = uniform")
		seed     = flag.Uint64("seed", 1, "generator seed")
		router   = flag.Bool("router", false, "target is a pidcan-router: the server: line and JSON report scatter legs/query, pruned legs, and pipeline depth from its /stats")
		jsonOut  = flag.String("json", "", "also write the summary as JSON to this file")
	)
	flag.Parse()

	if *skew != 0 && *skew <= 1 {
		log.Fatalf("-skew %v: zipf exponent must be > 1 (or 0 to disable)", *skew)
	}
	if *proto != "http" && *proto != "wire" {
		log.Fatalf("unknown -proto %q (want http or wire)", *proto)
	}
	if (*proto == "wire" || *compare) && *wireTgt == "" {
		log.Fatal("-proto wire and -compare need -wire host:port (the server's -wire-addr)")
	}
	weights, err := parseMix(*mix)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *workers * 2,
		MaxIdleConnsPerHost: *workers * 2,
	}}
	// Discovery always goes over HTTP: the JSON API is the debug and
	// control surface regardless of which edge takes the load.
	cmax, shardCount, err := fetchStats(client, *baseURL)
	if err != nil {
		log.Fatalf("cannot reach %s: %v", *baseURL, err)
	}
	nodes, err := fetchNodes(client, *baseURL)
	if err != nil {
		log.Fatal(err)
	}
	// Nodes grouped by shard back the skewed-update victim pick.
	nodesByShard := make([][]uint64, shardCount)
	for _, id := range nodes {
		if s := int(id >> 32); s < shardCount {
			nodesByShard[s] = append(nodesByShard[s], id)
		}
	}
	log.Printf("target %s (proto %s): %d nodes on %d shard(s), %d dims; offering %.0f req/s (%s) for %v with %d workers",
		*baseURL, *proto, len(nodes), shardCount, len(cmax), *rate, *arrivals, *duration, *workers)
	if *skew > 1 {
		log.Printf("zipf skew %.2f: joins target explicit shards, updates hit nodes originally homed there", *skew)
	}

	rc := runCfg{
		proto: *proto, baseURL: *baseURL, wireAddr: *wireTgt,
		rate: *rate, duration: *duration, workers: *workers,
		arrivals: *arrivals, burst: *burst, period: *period,
		weights: weights, k: *k, profiles: *profiles,
		consist: *consist, conScope: *conScope, skew: *skew, seed: *seed,
		client: client, cmax: cmax, nodes: nodes,
		nodesByShard: nodesByShard, shardCount: shardCount,
	}
	probe0, probeErr := fetchServerProbe(client, *baseURL)
	sum := runLoad(rc)
	if probeErr == nil {
		if probe1, err := fetchServerProbe(client, *baseURL); err == nil {
			sum.Server = probe1.diff(probe0)
			sum.Server.Router = *router
		}
	}
	report(sum, *jsonOut)
	if *skew > 1 {
		reportBalance(client, *baseURL)
	}
	if *compare {
		other := rc
		if rc.proto == "wire" {
			other.proto = "http"
		} else {
			other.proto = "wire"
		}
		log.Printf("comparison run: same load on -proto %s", other.proto)
		sum2 := runLoad(other)
		report(sum2, "")
		printComparison(sum, sum2)
	}
}

// runCfg is one load run, fully resolved: flags plus the discovered
// target shape. A -compare rerun copies it and flips proto.
type runCfg struct {
	proto    string
	baseURL  string
	wireAddr string
	rate     float64
	duration time.Duration
	workers  int
	arrivals string
	burst    float64
	period   time.Duration
	weights  [numClasses]float64
	k        int
	profiles int
	consist  float64
	conScope string
	skew     float64
	seed     uint64

	client       *http.Client
	cmax         []float64
	nodes        []uint64
	nodesByShard [][]uint64
	shardCount   int
}

// runState is the cross-worker shared state of one run.
type runState struct {
	mu      sync.Mutex
	samples []sample
	joined  []uint64 // nodes this run added, eligible for leave
	late    atomic.Int64
}

func (st *runState) record(local []sample) {
	st.mu.Lock()
	st.samples = append(st.samples, local...)
	st.mu.Unlock()
}

func (st *runState) pushJoined(id uint64) {
	st.mu.Lock()
	st.joined = append(st.joined, id)
	st.mu.Unlock()
}

func (st *runState) popJoined() (uint64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.joined) == 0 {
		return 0, false
	}
	id := st.joined[len(st.joined)-1]
	st.joined = st.joined[:len(st.joined)-1]
	return id, true
}

// holdUntilDue delays an open-loop job to its scheduled arrival and
// returns the measurement origin. Open-loop latency runs from the
// scheduled arrival, so time spent queued behind a lagging server is
// part of the measurement, as it must be; a job picked up more than
// 1ms past its arrival is counted late — the report's signal that
// the offered rate was not actually sustained.
func holdUntilDue(j job, st *runState) time.Time {
	if j.due.IsZero() {
		return time.Now()
	}
	if d := time.Until(j.due); d > 0 {
		time.Sleep(d)
	} else if -d > time.Millisecond {
		st.late.Add(1)
	}
	return j.due
}

// runLoad executes one complete load run and returns its summary.
func runLoad(rc runCfg) summary {
	// Demand profiles are drawn once: recurring demand shapes are what
	// real tenants issue, and they are what makes the server's
	// quantized query cache earn its keep.
	var demands [][]float64
	if rc.profiles > 0 {
		rng := rand.New(rand.NewPCG(rc.seed, 0xf0f))
		for i := 0; i < rc.profiles; i++ {
			demands = append(demands, randVec(rng, rc.cmax, 0, 0.6))
		}
	}
	// The HTTP path additionally pre-marshals its JSON bodies.
	var queryBodies, consistentBodies [][]byte
	if rc.proto == "http" {
		for _, demand := range demands {
			body, err := json.Marshal(struct {
				Demand []float64 `json:"demand"`
				K      int       `json:"k"`
			}{demand, rc.k})
			if err != nil {
				log.Fatal(err)
			}
			queryBodies = append(queryBodies, body)
			body, err = json.Marshal(struct {
				Demand     []float64 `json:"demand"`
				K          int       `json:"k"`
				Consistent bool      `json:"consistent"`
				Scope      string    `json:"scope,omitempty"`
			}{demand, rc.k, true, rc.conScope})
			if err != nil {
				log.Fatal(err)
			}
			consistentBodies = append(consistentBodies, body)
		}
	}

	// Open-loop arrival schedule feeding a worker pool. The queue is
	// deep so a lagging server delays service (visible as latency),
	// not arrivals; only a pathological backlog sheds load. Pacing
	// is batched: the dispatcher sleeps only once it is >1ms ahead
	// of schedule, so high rates do not burn a core on micro-sleeps.
	// A rate <= 0 means closed-loop: workers fire back to back, which
	// measures the server's ceiling instead of a fixed offered load.
	closedLoop := rc.rate <= 0
	deadline := time.Now().Add(rc.duration)
	jobs := make(chan job, 1<<16)
	var shed atomic.Int64
	go func() {
		defer close(jobs)
		rng := rand.New(rand.NewPCG(rc.seed, 0xa11))
		if closedLoop {
			for time.Now().Before(deadline) {
				for i := 0; i < 256; i++ {
					jobs <- job{class: pickClass(rng, rc.weights)} // zero due: closed loop
				}
			}
			return
		}
		next := time.Now()
		burstOn, burstFlip := true, next.Add(expDur(rng, rc.period))
		for next.Before(deadline) {
			r := rc.rate
			switch rc.arrivals {
			case "bursty":
				for !next.Before(burstFlip) {
					burstOn = !burstOn
					burstFlip = burstFlip.Add(expDur(rng, rc.period))
				}
				if burstOn {
					r *= rc.burst
				} else {
					r *= 0.1
				}
				fallthrough
			case "poisson":
				next = next.Add(expDur(rng, time.Duration(float64(time.Second)/r)))
			case "uniform":
				next = next.Add(time.Duration(float64(time.Second) / r))
			default:
				log.Fatalf("unknown arrival process %q", rc.arrivals)
			}
			if d := time.Until(next); d > time.Millisecond {
				time.Sleep(d)
			}
			j := job{class: pickClass(rng, rc.weights), due: next}
			select {
			case jobs <- j:
			default:
				shed.Add(1)
			}
		}
	}()

	st := &runState{}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < rc.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if rc.proto == "wire" {
				runWireWorker(rc, w, jobs, deadline, closedLoop, demands, st)
			} else {
				runHTTPWorker(rc, w, jobs, deadline, closedLoop, queryBodies, consistentBodies, st)
			}
		}(w)
	}
	wg.Wait()
	return buildSummary(rc.proto, rc.seed, st.samples, time.Since(start), rc.rate,
		int(shed.Load()), int(st.late.Load()))
}

// runHTTPWorker serves jobs against the JSON API, one synchronous
// request at a time.
func runHTTPWorker(rc runCfg, w int, jobs <-chan job, deadline time.Time, closedLoop bool,
	queryBodies, consistentBodies [][]byte, st *runState) {
	rng := rand.New(rand.NewPCG(rc.seed, uint64(w)+0xbee))
	var zipf *rand.Zipf
	if rc.skew > 1 && rc.shardCount > 1 {
		zipf = rand.NewZipf(rng, rc.skew, 1, uint64(rc.shardCount-1))
	}
	local := make([]sample, 0, 4096)
	for j := range jobs {
		if closedLoop && !time.Now().Before(deadline) {
			break
		}
		t0 := holdUntilDue(j, st)
		s := sample{class: j.class}
		switch j.class {
		case clQuery:
			consistent := rc.consist > 0 && rng.Float64() < rc.consist
			bodies := queryBodies
			if consistent {
				bodies = consistentBodies
			}
			if len(bodies) > 0 {
				s.err = postRaw(rc.client, rc.baseURL+"/query", bodies[rng.IntN(len(bodies))]) != nil
			} else {
				// -profiles 0: fresh random demand per query,
				// honoring the consistent fraction and scope.
				s.err = doQuery(rc.client, rc.baseURL, rng, rc.cmax, rc.k, consistent, rc.conScope) != nil
			}
		case clUpdate:
			s.err = doUpdate(rc.client, rc.baseURL, rng, rc.cmax, pickUpdateNode(rc, rng, zipf)) != nil
		case clJoin:
			shard := -1
			if zipf != nil {
				shard = int(zipf.Uint64())
			}
			id, err := doJoin(rc.client, rc.baseURL, rng, rc.cmax, shard)
			if err != nil {
				s.err = true
			} else {
				st.pushJoined(id)
			}
		case clLeave:
			id, ok := st.popJoined()
			if !ok {
				continue // nothing safe to remove yet
			}
			s.err = doLeave(rc.client, rc.baseURL, id) != nil
		}
		s.lat = time.Since(t0)
		local = append(local, s)
	}
	st.record(local)
}

// pickUpdateNode picks an update victim, honoring zipf shard skew.
func pickUpdateNode(rc runCfg, rng *rand.Rand, zipf *rand.Zipf) uint64 {
	id := rc.nodes[rng.IntN(len(rc.nodes))]
	if zipf != nil {
		if pool := rc.nodesByShard[zipf.Uint64()]; len(pool) > 0 {
			id = pool[rng.IntN(len(pool))]
		}
	}
	return id
}

// wirePending tracks one in-flight pipelined request; the protocol
// answers strictly in order, so a FIFO queue pairs responses back to
// their send records.
type wirePending struct {
	class opClass
	t0    time.Time
}

// wireFlushBatch bounds how many requests buffer client-side before
// a flush; one write syscall then carries the whole burst.
const wireFlushBatch = 256

// runWireWorker serves jobs over one persistent wire connection,
// split into the protocol's sanctioned pipeline halves: this
// goroutine enqueues and flushes requests, a paired reader goroutine
// consumes in-order responses and records the samples.
func runWireWorker(rc runCfg, w int, jobs <-chan job, deadline time.Time, closedLoop bool,
	demands [][]float64, st *runState) {
	c, err := pidcan.DialWire(rc.wireAddr)
	if err != nil {
		log.Fatalf("worker %d: dial wire %s: %v", w, rc.wireAddr, err)
	}
	defer c.Close()
	rng := rand.New(rand.NewPCG(rc.seed, uint64(w)+0xbee))
	var zipf *rand.Zipf
	if rc.skew > 1 && rc.shardCount > 1 {
		zipf = rand.NewZipf(rng, rc.skew, 1, uint64(rc.shardCount-1))
	}

	inflight := make(chan wirePending, 16*wireFlushBatch)
	var rdone sync.WaitGroup
	rdone.Add(1)
	go func() {
		defer rdone.Done()
		local := make([]sample, 0, 4096)
		dead := false
		for p := range inflight {
			s := sample{class: p.class}
			if dead {
				s.err = true
			} else if r, err := c.ReadResponse(); err != nil {
				dead = true // connection lost: everything in flight failed
				s.err = true
			} else if r.Errored {
				s.err = true
			} else if p.class == clJoin {
				st.pushJoined(r.Node)
			}
			s.lat = time.Since(p.t0)
			local = append(local, s)
		}
		st.record(local)
	}()

	var q pidcan.WireQuery
	q.K = rc.k
	unflushed := 0
	for j := range jobs {
		if closedLoop && !time.Now().Before(deadline) {
			break
		}
		t0 := holdUntilDue(j, st)
		switch j.class {
		case clQuery:
			consistent := rc.consist > 0 && rng.Float64() < rc.consist
			if len(demands) > 0 {
				q.Demand = demands[rng.IntN(len(demands))]
			} else {
				q.Demand = randVec(rng, rc.cmax, 0, 0.6)
			}
			q.Consistent = consistent
			q.ScopeOne = consistent && rc.conScope == "one"
			c.EnqueueQuery(&q)
		case clUpdate:
			c.EnqueueUpdate(pickUpdateNode(rc, rng, zipf), randVec(rng, rc.cmax, 0.1, 1), rng.IntN(4) == 0)
		case clJoin:
			shard := -1
			if zipf != nil {
				shard = int(zipf.Uint64())
			}
			c.EnqueueJoin(shard, randVec(rng, rc.cmax, 0.1, 1))
		case clLeave:
			id, ok := st.popJoined()
			if !ok {
				continue // nothing safe to remove yet
			}
			c.EnqueueLeave(id)
		}
		unflushed++
		// Flush whenever the job feed is momentarily dry (responses
		// are owed and nothing else is coming) or the batch is full.
		if unflushed >= wireFlushBatch || len(jobs) == 0 {
			if err := c.Flush(); err != nil {
				log.Printf("worker %d: wire flush: %v", w, err)
				inflight <- wirePending{class: j.class, t0: t0}
				break
			}
			unflushed = 0
		}
		inflight <- wirePending{class: j.class, t0: t0}
	}
	c.Flush()
	close(inflight)
	rdone.Wait()
}

// printComparison emits the one-line wire-vs-http verdict after a
// -compare rerun.
func printComparison(a, b summary) {
	wsum, hsum := a, b
	if wsum.Proto != "wire" {
		wsum, hsum = b, a
	}
	if wsum.Proto != "wire" || hsum.Proto != "http" {
		return
	}
	speedup := math.Inf(1)
	if hsum.AchievedQPS > 0 {
		speedup = wsum.AchievedQPS / hsum.AchievedQPS
	}
	wa, ha := wsum.Classes["all"], hsum.Classes["all"]
	fmt.Printf("\nwire vs http: %.0f vs %.0f req/s (%.1fx), p50 %.2fms vs %.2fms, p99 %.2fms vs %.2fms, errors %d vs %d\n",
		wsum.AchievedQPS, hsum.AchievedQPS, speedup,
		wa.P50ms, ha.P50ms, wa.P99ms, ha.P99ms, wsum.Errors, hsum.Errors)
}

// reportBalance prints the server's per-shard populations and
// rebalancer counters after a skewed run, so convergence (or the
// lack of a rebalancer) is visible without a second tool.
func reportBalance(client *http.Client, base string) {
	r, err := client.Get(base + "/stats")
	if err != nil {
		log.Printf("post-run stats: %v", err)
		return
	}
	defer r.Body.Close()
	var st struct {
		Shards []struct {
			Shard int `json:"shard"`
			Nodes int `json:"nodes"`
		} `json:"shards"`
		Migrations    uint64  `json:"migrations"`
		Rebalances    uint64  `json:"rebalances"`
		LastImbalance float64 `json:"last_imbalance"`
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		log.Printf("post-run stats: %v", err)
		return
	}
	if len(st.Shards) == 0 {
		return
	}
	min, max := st.Shards[0].Nodes, st.Shards[0].Nodes
	var pops []string
	for _, sh := range st.Shards {
		pops = append(pops, strconv.Itoa(sh.Nodes))
		if sh.Nodes < min {
			min = sh.Nodes
		}
		if sh.Nodes > max {
			max = sh.Nodes
		}
	}
	ratio := math.Inf(1)
	if min > 0 {
		ratio = float64(max) / float64(min)
	}
	fmt.Printf("\nshard populations after run: [%s] (max/min %.2f); server ran %d rebalance passes, %d migrations (last sampled imbalance %.2f)\n",
		strings.Join(pops, " "), ratio, st.Rebalances, st.Migrations, st.LastImbalance)
}

func parseMix(s string) ([numClasses]float64, error) {
	var w [numClasses]float64
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return w, fmt.Errorf("bad mix element %q", part)
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil || x < 0 {
			return w, fmt.Errorf("bad mix weight %q", part)
		}
		found := false
		for c, n := range classNames {
			if n == name {
				w[c] = x
				found = true
			}
		}
		if !found {
			return w, fmt.Errorf("unknown mix class %q", name)
		}
	}
	total := 0.0
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		return w, fmt.Errorf("mix %q has no positive weight", s)
	}
	return w, nil
}

func pickClass(rng *rand.Rand, w [numClasses]float64) opClass {
	total := 0.0
	for _, x := range w {
		total += x
	}
	r := rng.Float64() * total
	for c, x := range w {
		if r < x {
			return opClass(c)
		}
		r -= x
	}
	return clQuery
}

func expDur(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// --- HTTP ops ---------------------------------------------------------------

// postRaw posts a pre-marshaled body and drains the response.
func postRaw(client *http.Client, url string, body []byte) error {
	r, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	io.Copy(io.Discard, r.Body)
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, r.Status)
	}
	return nil
}

// post sends one JSON request. A 503 naming a primary — a read-only
// replication follower redirecting writes — is followed once against
// that address; anything else surfaces as-is.
func post(client *http.Client, url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	primary, err := postOnce(client, url, body, resp)
	if err != nil && primary != "" {
		if u := retarget(url, primary); u != "" {
			if _, err2 := postOnce(client, u, body, resp); err2 == nil {
				return nil
			}
		}
	}
	return err
}

func postOnce(client *http.Client, url string, body []byte, resp any) (primary string, err error) {
	r, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e struct {
			Error   string `json:"error"`
			Primary string `json:"primary"`
		}
		json.NewDecoder(r.Body).Decode(&e)
		if r.StatusCode == http.StatusServiceUnavailable {
			primary = e.Primary
		}
		return primary, fmt.Errorf("%s: %s (%s)", url, r.Status, e.Error)
	}
	if resp != nil {
		return "", json.NewDecoder(r.Body).Decode(resp)
	}
	// Drain so the connection goes back to the keep-alive pool.
	io.Copy(io.Discard, r.Body)
	return "", nil
}

// retarget swaps url's host (and scheme, when the primary names one)
// for the primary a 503 carried. Best-effort: followers usually
// advertise a bare host:port.
func retarget(rawURL, primary string) string {
	u, err := neturl.Parse(rawURL)
	if err != nil {
		return ""
	}
	if strings.Contains(primary, "://") {
		p, err := neturl.Parse(primary)
		if err != nil || p.Host == "" {
			return ""
		}
		u.Scheme, u.Host = p.Scheme, p.Host
	} else {
		u.Host = primary
	}
	return u.String()
}

func fetchStats(client *http.Client, base string) (cmax []float64, shards int, err error) {
	r, err := client.Get(base + "/stats")
	if err != nil {
		return nil, 0, err
	}
	defer r.Body.Close()
	var st struct {
		CMax   []float64 `json:"cmax"`
		Shards []struct {
			Shard int `json:"shard"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		return nil, 0, err
	}
	if len(st.CMax) == 0 {
		return nil, 0, fmt.Errorf("%s/stats returned no cmax", base)
	}
	return st.CMax, len(st.Shards), nil
}

func fetchNodes(client *http.Client, base string) ([]uint64, error) {
	r, err := client.Get(base + "/nodes")
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	var out struct {
		Nodes []uint64 `json:"nodes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		return nil, err
	}
	if len(out.Nodes) == 0 {
		return nil, fmt.Errorf("%s/nodes returned no nodes", base)
	}
	return out.Nodes, nil
}

func randVec(rng *rand.Rand, cmax []float64, lo, hi float64) []float64 {
	v := make([]float64, len(cmax))
	for i, c := range cmax {
		v[i] = c * (lo + (hi-lo)*rng.Float64())
	}
	return v
}

func doQuery(client *http.Client, base string, rng *rand.Rand, cmax []float64, k int, consistent bool, scope string) error {
	req := struct {
		Demand     []float64 `json:"demand"`
		K          int       `json:"k"`
		Consistent bool      `json:"consistent,omitempty"`
		Scope      string    `json:"scope,omitempty"`
	}{randVec(rng, cmax, 0, 0.6), k, consistent, ""}
	if consistent {
		req.Scope = scope
	}
	return post(client, base+"/query", req, nil)
}

func doUpdate(client *http.Client, base string, rng *rand.Rand, cmax []float64, node uint64) error {
	req := struct {
		Node     uint64    `json:"node"`
		Avail    []float64 `json:"avail"`
		Announce bool      `json:"announce"`
	}{node, randVec(rng, cmax, 0.1, 1), rng.IntN(4) == 0}
	return post(client, base+"/update", req, nil)
}

// doJoin joins a node; shard >= 0 targets that shard explicitly
// (the skewed-traffic mode), -1 leaves placement to the server's
// round-robin.
func doJoin(client *http.Client, base string, rng *rand.Rand, cmax []float64, shard int) (uint64, error) {
	var resp struct {
		Node uint64 `json:"node"`
	}
	req := struct {
		Avail []float64 `json:"avail"`
		Shard *int      `json:"shard,omitempty"`
	}{Avail: randVec(rng, cmax, 0.1, 1)}
	if shard >= 0 {
		req.Shard = &shard
	}
	if err := post(client, base+"/join", req, &resp); err != nil {
		return 0, err
	}
	return resp.Node, nil
}

func doLeave(client *http.Client, base string, node uint64) error {
	req := struct {
		Node uint64 `json:"node"`
	}{node}
	return post(client, base+"/leave", req, nil)
}

// --- reporting --------------------------------------------------------------

type classSummary struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50ms  float64 `json:"p50_ms"`
	P90ms  float64 `json:"p90_ms"`
	P99ms  float64 `json:"p99_ms"`
	P999ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

type summary struct {
	Proto string `json:"proto"`
	// Seed is the generator seed the run used — stamped into the
	// summary so a recorded run can be regenerated (or replayed
	// against a capture trace) bit-for-bit.
	Seed        uint64                  `json:"seed"`
	OfferedQPS  float64                 `json:"offered_qps"`
	AchievedQPS float64                 `json:"achieved_qps"`
	DurationSec float64                 `json:"duration_sec"`
	Requests    int                     `json:"requests"`
	Errors      int                     `json:"errors"`
	Shed        int                     `json:"shed"`
	Late        int                     `json:"late"`
	Classes     map[string]classSummary `json:"classes"`
	// Server is the read-path view from the server's /stats,
	// differenced across the run: how the query cache and the
	// snapshot dominance index behaved under this load.
	Server *serverProbe `json:"server,omitempty"`
}

// serverProbe mirrors the cache/index counters of the server's
// /stats endpoint. Counter fields are deltas over the run; the knob
// fields (TTL, quantum, population) are the post-run values, which is
// what makes the adaptive controller's drift visible.
type serverProbe struct {
	TotalNodes      int     `json:"total_nodes"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	CacheStale      uint64  `json:"cache_stale"`
	CacheAdaptions  uint64  `json:"cache_adaptions"`
	CacheTTLMS      float64 `json:"cache_ttl_ms"`
	CacheQuantum    float64 `json:"cache_quantum"`
	IndexSearches   uint64  `json:"index_searches"`
	IndexScanned    uint64  `json:"index_scanned_records"`
	ScannedPerQuery float64 `json:"index_scanned_per_search"`
	IndexBuilds     uint64  `json:"index_builds"`
	IndexDeltas     uint64  `json:"index_delta_builds"`
	IndexReuses     uint64  `json:"index_reuses"`

	// Router-mode fields (-router, a pidcan-router target): scatter
	// legs actually sent vs pruned by demand-region summaries, and
	// the mean pipeline depth on the shared member connections.
	// LegsPerQuery is derived from the run's deltas.
	Router           bool    `json:"-"`
	Queries          uint64  `json:"queries"`
	FedLegsSent      uint64  `json:"fed_legs_sent"`
	FedLegsPruned    uint64  `json:"fed_legs_pruned"`
	FedLegsPerQuery  float64 `json:"fed_legs_per_query"`
	FedPipelineDepth float64 `json:"fed_pipeline_depth"`
}

// fetchServerProbe reads the read-path counters from /stats.
func fetchServerProbe(client *http.Client, base string) (*serverProbe, error) {
	r, err := client.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	var p serverProbe
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		return nil, err
	}
	return &p, nil
}

// diff returns the counter deltas of after over before, keeping
// after's knob values.
func (p *serverProbe) diff(before *serverProbe) *serverProbe {
	d := *p
	d.CacheHits -= before.CacheHits
	d.CacheMisses -= before.CacheMisses
	d.CacheStale -= before.CacheStale
	d.CacheAdaptions -= before.CacheAdaptions
	d.IndexSearches -= before.IndexSearches
	d.IndexScanned -= before.IndexScanned
	d.IndexBuilds -= before.IndexBuilds
	d.IndexDeltas -= before.IndexDeltas
	d.IndexReuses -= before.IndexReuses
	d.Queries -= before.Queries
	d.FedLegsSent -= before.FedLegsSent
	d.FedLegsPruned -= before.FedLegsPruned
	d.FedLegsPerQuery = 0
	if d.Queries > 0 {
		d.FedLegsPerQuery = float64(d.FedLegsSent) / float64(d.Queries)
	}
	if lookups := d.CacheHits + d.CacheMisses; lookups > 0 {
		d.CacheHitRate = float64(d.CacheHits) / float64(lookups)
	}
	if d.IndexSearches > 0 {
		d.ScannedPerQuery = float64(d.IndexScanned) / float64(d.IndexSearches)
	}
	return &d
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func summarize(lats []time.Duration, count, errs int) classSummary {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	var max time.Duration
	if len(lats) > 0 {
		max = lats[len(lats)-1]
	}
	return classSummary{
		Count:  count,
		Errors: errs,
		P50ms:  ms(percentile(lats, 0.50)),
		P90ms:  ms(percentile(lats, 0.90)),
		P99ms:  ms(percentile(lats, 0.99)),
		P999ms: ms(percentile(lats, 0.999)),
		MaxMs:  ms(max),
	}
}

// buildSummary aggregates one run's samples.
func buildSummary(proto string, seed uint64, samples []sample, elapsed time.Duration, offered float64, shed, late int) summary {
	var all []time.Duration
	perClass := map[opClass][]time.Duration{}
	counts := map[opClass]int{}
	errsPer := map[opClass]int{}
	errs := 0
	for _, s := range samples {
		counts[s.class]++
		if s.err {
			errs++
			errsPer[s.class]++
			continue
		}
		all = append(all, s.lat)
		perClass[s.class] = append(perClass[s.class], s.lat)
	}
	sum := summary{
		Proto:       proto,
		Seed:        seed,
		OfferedQPS:  offered,
		AchievedQPS: float64(len(samples)) / elapsed.Seconds(),
		DurationSec: elapsed.Seconds(),
		Requests:    len(samples),
		Errors:      errs,
		Shed:        shed,
		Late:        late,
		Classes:     map[string]classSummary{},
	}
	sum.Classes["all"] = summarize(all, len(samples), errs)
	for c, lats := range perClass {
		sum.Classes[classNames[c]] = summarize(lats, counts[c], errsPer[c])
	}
	return sum
}

func report(sum summary, jsonOut string) {
	fmt.Printf("\n[%s seed=%d] %d requests in %.2fs: %.0f req/s achieved (%.0f offered), %d errors, %d shed, %d late\n",
		sum.Proto, sum.Seed, sum.Requests, sum.DurationSec, sum.AchievedQPS, sum.OfferedQPS, sum.Errors, sum.Shed, sum.Late)
	fmt.Printf("%-8s %10s %8s %9s %9s %9s %9s %9s\n",
		"class", "count", "errors", "p50", "p90", "p99", "p99.9", "max")
	order := []string{"all", "query", "update", "join", "leave"}
	for _, name := range order {
		cs, ok := sum.Classes[name]
		if !ok {
			continue
		}
		fmt.Printf("%-8s %10d %8d %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms\n",
			name, cs.Count, cs.Errors, cs.P50ms, cs.P90ms, cs.P99ms, cs.P999ms, cs.MaxMs)
	}
	if p := sum.Server; p != nil && p.Router {
		fmt.Printf("server:  router: %.2f legs/query (%d sent, %d pruned over %d queries); pipeline depth %.1f\n",
			p.FedLegsPerQuery, p.FedLegsSent, p.FedLegsPruned, p.Queries, p.FedPipelineDepth)
	} else if p != nil {
		fmt.Printf("server:  %d nodes; cache %.1f%% hits (%d stale, %d adaptions; ttl %.0fms, quantum %.4f); index %.1f records/search over %d searches (%d builds, %d deltas, %d reuses)\n",
			p.TotalNodes, 100*p.CacheHitRate, p.CacheStale, p.CacheAdaptions,
			p.CacheTTLMS, p.CacheQuantum,
			p.ScannedPerQuery, p.IndexSearches,
			p.IndexBuilds, p.IndexDeltas, p.IndexReuses)
	}

	if jsonOut != "" {
		data, _ := json.MarshalIndent(sum, "", "  ")
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", jsonOut)
	}
}
