// Command pidcan-loadgen drives cmd/pidcan-serve with an open-loop
// arrival process and reports sustained throughput and latency
// percentiles.
//
// Open-loop means arrivals are scheduled by the target rate, not by
// response times (DEPAS-style): when the server lags, requests queue
// and latency percentiles show it — the generator never slows down
// to flatter the system under test.
//
//	pidcan-loadgen -url http://localhost:8080 -rate 20000 -duration 10s
//	pidcan-loadgen -url http://localhost:8080 -arrivals bursty -burst 4
//
// The traffic mix is query-dominated by default; tune with
// -mix query=90,update=6,join=2,leave=2. A -consistent fraction of
// queries routes through the PID-CAN protocol itself;
// -consistent-scope picks between the scatter-gather merge of every
// shard ("all") and the paper-faithful single shard ("one").
//
// -skew Z (Z > 1) zipf-concentrates joins and updates onto a few
// shards (exponent Z over the shard indexes, shard 0 hottest):
// joins carry an explicit {"shard":S} target, and updates pick
// their victim among the nodes originally homed on the skewed shard
// (ids stay valid after the server migrates a node away — the write
// then follows it, so update skew fades as rebalancing digests the
// hot shard, which is the point). Point it at a server running with
// -rebalance-interval to watch the adaptive rebalancer pull the
// max/min shard-population ratio back down — the generator prints
// the server's per-shard populations, migrations and last sampled
// imbalance after the run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type opClass int

const (
	clQuery opClass = iota
	clUpdate
	clJoin
	clLeave
	numClasses
)

var classNames = [numClasses]string{"query", "update", "join", "leave"}

type job struct {
	class opClass
	due   time.Time
}

type sample struct {
	class opClass
	lat   time.Duration
	err   bool
}

func main() {
	var (
		baseURL  = flag.String("url", "http://localhost:8080", "pidcan-serve base URL")
		rate     = flag.Float64("rate", 20000, "target arrival rate (requests/sec)")
		duration = flag.Duration("duration", 10*time.Second, "generation window")
		workers  = flag.Int("workers", 64, "concurrent request workers")
		arrivals = flag.String("arrivals", "poisson", "arrival process: poisson|bursty|uniform")
		burst    = flag.Float64("burst", 4, "bursty mode: on-period rate multiplier")
		period   = flag.Duration("period", 500*time.Millisecond, "bursty mode: mean on/off period")
		mix      = flag.String("mix", "query=92,update=5,join=2,leave=1", "traffic mix weights")
		k        = flag.Int("k", 3, "candidates per query")
		profiles = flag.Int("profiles", 64, "distinct demand profiles (0 = every query draws a fresh random demand)")
		consist  = flag.Float64("consistent", 0, "fraction of queries routed through the PID-CAN protocol instead of the snapshot path")
		conScope = flag.String("consistent-scope", "all", "consistent-query scope: all (scatter-gather every shard) or one (single shard)")
		skew     = flag.Float64("skew", 0, "zipf exponent (> 1) concentrating joins and updates onto low shard indexes; 0 = uniform")
		seed     = flag.Uint64("seed", 1, "generator seed")
		jsonOut  = flag.String("json", "", "also write the summary as JSON to this file")
	)
	flag.Parse()

	if *skew != 0 && *skew <= 1 {
		log.Fatalf("-skew %v: zipf exponent must be > 1 (or 0 to disable)", *skew)
	}
	weights, err := parseMix(*mix)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *workers * 2,
		MaxIdleConnsPerHost: *workers * 2,
	}}
	cmax, shardCount, err := fetchStats(client, *baseURL)
	if err != nil {
		log.Fatalf("cannot reach %s: %v", *baseURL, err)
	}
	nodes, err := fetchNodes(client, *baseURL)
	if err != nil {
		log.Fatal(err)
	}
	// Nodes grouped by shard back the skewed-update victim pick.
	nodesByShard := make([][]uint64, shardCount)
	for _, id := range nodes {
		if s := int(id >> 32); s < shardCount {
			nodesByShard[s] = append(nodesByShard[s], id)
		}
	}
	log.Printf("target %s: %d nodes on %d shard(s), %d dims; offering %.0f req/s (%s) for %v with %d workers",
		*baseURL, len(nodes), shardCount, len(cmax), *rate, *arrivals, *duration, *workers)
	if *skew > 1 {
		log.Printf("zipf skew %.2f: joins target explicit shards, updates hit nodes originally homed there", *skew)
	}

	// Query bodies for the demand profiles are marshaled once:
	// recurring demand shapes are what real tenants issue, and they
	// are what makes the server's quantized query cache earn its
	// keep.
	var queryBodies, consistentBodies [][]byte
	if *profiles > 0 {
		rng := rand.New(rand.NewPCG(*seed, 0xf0f))
		for i := 0; i < *profiles; i++ {
			demand := randVec(rng, cmax, 0, 0.6)
			body, err := json.Marshal(struct {
				Demand []float64 `json:"demand"`
				K      int       `json:"k"`
			}{demand, *k})
			if err != nil {
				log.Fatal(err)
			}
			queryBodies = append(queryBodies, body)
			body, err = json.Marshal(struct {
				Demand     []float64 `json:"demand"`
				K          int       `json:"k"`
				Consistent bool      `json:"consistent"`
				Scope      string    `json:"scope,omitempty"`
			}{demand, *k, true, *conScope})
			if err != nil {
				log.Fatal(err)
			}
			consistentBodies = append(consistentBodies, body)
		}
	}

	// Open-loop arrival schedule feeding a worker pool. The queue is
	// deep so a lagging server delays service (visible as latency),
	// not arrivals; only a pathological backlog sheds load. Pacing
	// is batched: the dispatcher sleeps only once it is >1ms ahead
	// of schedule, so high rates do not burn a core on micro-sleeps.
	// A rate <= 0 means closed-loop: workers fire back to back, which
	// measures the server's ceiling instead of a fixed offered load.
	closedLoop := *rate <= 0
	deadline := time.Now().Add(*duration)
	jobs := make(chan job, 1<<16)
	var shed int
	go func() {
		defer close(jobs)
		if closedLoop {
			rng := rand.New(rand.NewPCG(*seed, 0xa11))
			for time.Now().Before(deadline) {
				for i := 0; i < 256; i++ {
					jobs <- job{class: pickClass(rng, weights)} // zero due: closed loop
				}
			}
			return
		}
		rng := rand.New(rand.NewPCG(*seed, 0xa11))
		next := time.Now()
		burstOn, burstFlip := true, next.Add(expDur(rng, *period))
		for next.Before(deadline) {
			r := *rate
			switch *arrivals {
			case "bursty":
				for !next.Before(burstFlip) {
					burstOn = !burstOn
					burstFlip = burstFlip.Add(expDur(rng, *period))
				}
				if burstOn {
					r *= *burst
				} else {
					r *= 0.1
				}
				fallthrough
			case "poisson":
				next = next.Add(expDur(rng, time.Duration(float64(time.Second)/r)))
			case "uniform":
				next = next.Add(time.Duration(float64(time.Second) / r))
			default:
				log.Fatalf("unknown arrival process %q", *arrivals)
			}
			if d := time.Until(next); d > time.Millisecond {
				time.Sleep(d)
			}
			j := job{class: pickClass(rng, weights), due: next}
			select {
			case jobs <- j:
			default:
				shed++
			}
		}
	}()

	var (
		mu      sync.Mutex
		samples []sample
		joined  []uint64 // nodes this run added, eligible for leave
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(*seed, uint64(w)+0xbee))
			var zipf *rand.Zipf
			if *skew > 1 && shardCount > 1 {
				zipf = rand.NewZipf(rng, *skew, 1, uint64(shardCount-1))
			}
			local := make([]sample, 0, 4096)
			for j := range jobs {
				if closedLoop && !time.Now().Before(deadline) {
					break
				}
				// Open-loop latency runs from the scheduled arrival,
				// so time spent queued behind a lagging server is
				// part of the measurement, as it must be. (The
				// dispatcher can run up to ~1ms ahead of schedule;
				// hold the job until its arrival time.)
				t0 := time.Now()
				if !j.due.IsZero() {
					if d := time.Until(j.due); d > 0 {
						time.Sleep(d)
					}
					t0 = j.due
				}
				s := sample{class: j.class}
				switch j.class {
				case clQuery:
					consistent := *consist > 0 && rng.Float64() < *consist
					bodies := queryBodies
					if consistent {
						bodies = consistentBodies
					}
					if len(bodies) > 0 {
						s.err = postRaw(client, *baseURL+"/query", bodies[rng.IntN(len(bodies))]) != nil
					} else {
						// -profiles 0: fresh random demand per query,
						// honoring the consistent fraction and scope.
						s.err = doQuery(client, *baseURL, rng, cmax, *k, consistent, *conScope) != nil
					}
				case clUpdate:
					id := nodes[rng.IntN(len(nodes))]
					if zipf != nil {
						if pool := nodesByShard[zipf.Uint64()]; len(pool) > 0 {
							id = pool[rng.IntN(len(pool))]
						}
					}
					s.err = doUpdate(client, *baseURL, rng, cmax, id) != nil
				case clJoin:
					shard := -1
					if zipf != nil {
						shard = int(zipf.Uint64())
					}
					id, err := doJoin(client, *baseURL, rng, cmax, shard)
					if err != nil {
						s.err = true
					} else {
						mu.Lock()
						joined = append(joined, id)
						mu.Unlock()
					}
				case clLeave:
					mu.Lock()
					var id uint64
					ok := len(joined) > 0
					if ok {
						id = joined[len(joined)-1]
						joined = joined[:len(joined)-1]
					}
					mu.Unlock()
					if !ok {
						continue // nothing safe to remove yet
					}
					s.err = doLeave(client, *baseURL, id) != nil
				}
				s.lat = time.Since(t0)
				local = append(local, s)
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	report(samples, time.Since(start), *rate, shed, *jsonOut)
	if *skew > 1 {
		reportBalance(client, *baseURL)
	}
}

// reportBalance prints the server's per-shard populations and
// rebalancer counters after a skewed run, so convergence (or the
// lack of a rebalancer) is visible without a second tool.
func reportBalance(client *http.Client, base string) {
	r, err := client.Get(base + "/stats")
	if err != nil {
		log.Printf("post-run stats: %v", err)
		return
	}
	defer r.Body.Close()
	var st struct {
		Shards []struct {
			Shard int `json:"shard"`
			Nodes int `json:"nodes"`
		} `json:"shards"`
		Migrations    uint64  `json:"migrations"`
		Rebalances    uint64  `json:"rebalances"`
		LastImbalance float64 `json:"last_imbalance"`
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		log.Printf("post-run stats: %v", err)
		return
	}
	if len(st.Shards) == 0 {
		return
	}
	min, max := st.Shards[0].Nodes, st.Shards[0].Nodes
	var pops []string
	for _, sh := range st.Shards {
		pops = append(pops, strconv.Itoa(sh.Nodes))
		if sh.Nodes < min {
			min = sh.Nodes
		}
		if sh.Nodes > max {
			max = sh.Nodes
		}
	}
	ratio := math.Inf(1)
	if min > 0 {
		ratio = float64(max) / float64(min)
	}
	fmt.Printf("\nshard populations after run: [%s] (max/min %.2f); server ran %d rebalance passes, %d migrations (last sampled imbalance %.2f)\n",
		strings.Join(pops, " "), ratio, st.Rebalances, st.Migrations, st.LastImbalance)
}

func parseMix(s string) ([numClasses]float64, error) {
	var w [numClasses]float64
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return w, fmt.Errorf("bad mix element %q", part)
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil || x < 0 {
			return w, fmt.Errorf("bad mix weight %q", part)
		}
		found := false
		for c, n := range classNames {
			if n == name {
				w[c] = x
				found = true
			}
		}
		if !found {
			return w, fmt.Errorf("unknown mix class %q", name)
		}
	}
	total := 0.0
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		return w, fmt.Errorf("mix %q has no positive weight", s)
	}
	return w, nil
}

func pickClass(rng *rand.Rand, w [numClasses]float64) opClass {
	total := 0.0
	for _, x := range w {
		total += x
	}
	r := rng.Float64() * total
	for c, x := range w {
		if r < x {
			return opClass(c)
		}
		r -= x
	}
	return clQuery
}

func expDur(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// --- HTTP ops ---------------------------------------------------------------

// postRaw posts a pre-marshaled body and drains the response.
func postRaw(client *http.Client, url string, body []byte) error {
	r, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	io.Copy(io.Discard, r.Body)
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, r.Status)
	}
	return nil
}

func post(client *http.Client, url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(r.Body).Decode(&e)
		return fmt.Errorf("%s: %s (%s)", url, r.Status, e.Error)
	}
	if resp != nil {
		return json.NewDecoder(r.Body).Decode(resp)
	}
	// Drain so the connection goes back to the keep-alive pool.
	io.Copy(io.Discard, r.Body)
	return nil
}

func fetchStats(client *http.Client, base string) (cmax []float64, shards int, err error) {
	r, err := client.Get(base + "/stats")
	if err != nil {
		return nil, 0, err
	}
	defer r.Body.Close()
	var st struct {
		CMax   []float64 `json:"cmax"`
		Shards []struct {
			Shard int `json:"shard"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		return nil, 0, err
	}
	if len(st.CMax) == 0 {
		return nil, 0, fmt.Errorf("%s/stats returned no cmax", base)
	}
	return st.CMax, len(st.Shards), nil
}

func fetchNodes(client *http.Client, base string) ([]uint64, error) {
	r, err := client.Get(base + "/nodes")
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	var out struct {
		Nodes []uint64 `json:"nodes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		return nil, err
	}
	if len(out.Nodes) == 0 {
		return nil, fmt.Errorf("%s/nodes returned no nodes", base)
	}
	return out.Nodes, nil
}

func randVec(rng *rand.Rand, cmax []float64, lo, hi float64) []float64 {
	v := make([]float64, len(cmax))
	for i, c := range cmax {
		v[i] = c * (lo + (hi-lo)*rng.Float64())
	}
	return v
}

func doQuery(client *http.Client, base string, rng *rand.Rand, cmax []float64, k int, consistent bool, scope string) error {
	req := struct {
		Demand     []float64 `json:"demand"`
		K          int       `json:"k"`
		Consistent bool      `json:"consistent,omitempty"`
		Scope      string    `json:"scope,omitempty"`
	}{randVec(rng, cmax, 0, 0.6), k, consistent, ""}
	if consistent {
		req.Scope = scope
	}
	return post(client, base+"/query", req, nil)
}

func doUpdate(client *http.Client, base string, rng *rand.Rand, cmax []float64, node uint64) error {
	req := struct {
		Node     uint64    `json:"node"`
		Avail    []float64 `json:"avail"`
		Announce bool      `json:"announce"`
	}{node, randVec(rng, cmax, 0.1, 1), rng.IntN(4) == 0}
	return post(client, base+"/update", req, nil)
}

// doJoin joins a node; shard >= 0 targets that shard explicitly
// (the skewed-traffic mode), -1 leaves placement to the server's
// round-robin.
func doJoin(client *http.Client, base string, rng *rand.Rand, cmax []float64, shard int) (uint64, error) {
	var resp struct {
		Node uint64 `json:"node"`
	}
	req := struct {
		Avail []float64 `json:"avail"`
		Shard *int      `json:"shard,omitempty"`
	}{Avail: randVec(rng, cmax, 0.1, 1)}
	if shard >= 0 {
		req.Shard = &shard
	}
	if err := post(client, base+"/join", req, &resp); err != nil {
		return 0, err
	}
	return resp.Node, nil
}

func doLeave(client *http.Client, base string, node uint64) error {
	req := struct {
		Node uint64 `json:"node"`
	}{node}
	return post(client, base+"/leave", req, nil)
}

// --- reporting --------------------------------------------------------------

type classSummary struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50ms  float64 `json:"p50_ms"`
	P90ms  float64 `json:"p90_ms"`
	P99ms  float64 `json:"p99_ms"`
	P999ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

type summary struct {
	OfferedQPS  float64                 `json:"offered_qps"`
	AchievedQPS float64                 `json:"achieved_qps"`
	DurationSec float64                 `json:"duration_sec"`
	Requests    int                     `json:"requests"`
	Errors      int                     `json:"errors"`
	Shed        int                     `json:"shed"`
	Classes     map[string]classSummary `json:"classes"`
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func summarize(lats []time.Duration, count, errs int) classSummary {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	var max time.Duration
	if len(lats) > 0 {
		max = lats[len(lats)-1]
	}
	return classSummary{
		Count:  count,
		Errors: errs,
		P50ms:  ms(percentile(lats, 0.50)),
		P90ms:  ms(percentile(lats, 0.90)),
		P99ms:  ms(percentile(lats, 0.99)),
		P999ms: ms(percentile(lats, 0.999)),
		MaxMs:  ms(max),
	}
}

func report(samples []sample, elapsed time.Duration, offered float64, shed int, jsonOut string) {
	var all []time.Duration
	perClass := map[opClass][]time.Duration{}
	counts := map[opClass]int{}
	errsPer := map[opClass]int{}
	errs := 0
	for _, s := range samples {
		counts[s.class]++
		if s.err {
			errs++
			errsPer[s.class]++
			continue
		}
		all = append(all, s.lat)
		perClass[s.class] = append(perClass[s.class], s.lat)
	}
	sum := summary{
		OfferedQPS:  offered,
		AchievedQPS: float64(len(samples)) / elapsed.Seconds(),
		DurationSec: elapsed.Seconds(),
		Requests:    len(samples),
		Errors:      errs,
		Shed:        shed,
		Classes:     map[string]classSummary{},
	}
	overall := summarize(all, len(samples), errs)
	sum.Classes["all"] = overall
	for c, lats := range perClass {
		sum.Classes[classNames[c]] = summarize(lats, counts[c], errsPer[c])
	}

	fmt.Printf("\n%d requests in %.2fs: %.0f req/s achieved (%.0f offered), %d errors, %d shed\n",
		sum.Requests, sum.DurationSec, sum.AchievedQPS, sum.OfferedQPS, sum.Errors, sum.Shed)
	fmt.Printf("%-8s %10s %8s %9s %9s %9s %9s %9s\n",
		"class", "count", "errors", "p50", "p90", "p99", "p99.9", "max")
	order := []string{"all", "query", "update", "join", "leave"}
	for _, name := range order {
		cs, ok := sum.Classes[name]
		if !ok {
			continue
		}
		fmt.Printf("%-8s %10d %8d %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms\n",
			name, cs.Count, cs.Errors, cs.P50ms, cs.P90ms, cs.P99ms, cs.P999ms, cs.MaxMs)
	}

	if jsonOut != "" {
		data, _ := json.MarshalIndent(sum, "", "  ")
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", jsonOut)
	}
}
