// Command pidcan-trace runs one traced simulation and dumps the
// structured event log as TSV — task lifecycles (submitted, query
// resolved, placed, rejected, finished, …) and membership events,
// ready for ad-hoc analysis with standard tools.
//
// Example:
//
//	pidcan-trace -nodes 300 -hours 2 -churn 0.25 | awk -F'\t' '$2=="recovered"'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pidcan"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 300, "node count")
		lambda = flag.Float64("lambda", 0.5, "demand ratio λ")
		hours  = flag.Float64("hours", 2, "simulated hours")
		churn  = flag.Float64("churn", 0, "dynamic degree")
		ckpt   = flag.Float64("checkpoint", 0, "checkpoint interval seconds (0 = off)")
		seed   = flag.Uint64("seed", 1, "seed")
		events = flag.Int("events", 1<<18, "trace ring capacity (most recent events kept)")
	)
	flag.Parse()

	cfg := pidcan.DefaultConfig(pidcan.HIDCAN, *nodes, *lambda)
	cfg.Duration = pidcan.Time(float64(pidcan.Hour) * *hours)
	cfg.Seed = *seed
	cfg.Churn.Degree = *churn
	cfg.CheckpointSec = *ckpt
	cfg.TraceCapacity = *events

	res, err := pidcan.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pidcan-trace:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := res.Trace.WriteTSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "pidcan-trace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "retained %d of %d events; generated=%d finished=%d failed=%d lost=%d recovered=%d\n",
		res.Trace.Len(), res.Trace.Count(0)+res.Trace.Count(1), res.Rec.Generated,
		res.Rec.Finished, res.Rec.Failed, res.Rec.Lost, res.Rec.Recovered)
}
