#!/bin/sh
# Run the serving-engine benchmarks — including the durable
# write-path overhead (BenchmarkServeDurable*), warm-restart
# recovery time (BenchmarkServeRecovery), the binary wire
# protocol vs HTTP (BenchmarkWire*, BenchmarkServeHTTPQuery),
# the snapshot-index population sweep
# (BenchmarkServeQueryNoCache/pop=*, sub-linear scaling to 100k
# nodes) and the fixed-vs-adaptive cache drift replay
# (BenchmarkServeAdaptiveCache) — and collect their results
# as BENCH_serve.json (one JSON object per line) for the perf
# trajectory across PRs.
#
#   scripts/bench_serve.sh [output-file] [benchtime]
#
# Defaults: BENCH_serve.json in the repo root, 1s per benchmark.
# The benchmarks themselves emit the JSON (see emitServeBench in
# bench_test.go), so no output parsing is involved.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_serve.json}"
benchtime="${2:-1s}"

tmp="$out.tmp"
rm -f "$tmp"
PIDCAN_BENCH_SERVE_JSON="$tmp" \
	go test -run '^$' -bench 'BenchmarkServe|BenchmarkWire|BenchmarkFed' -benchtime "$benchtime" .

# The harness ramps b.N, emitting one line per calibration run; keep
# only the final (longest, most accurate) run of each benchmark.
awk -F'"' '{ last[$4] = $0 } END { for (b in last) print last[b] }' "$tmp" | sort > "$out"
rm -f "$tmp"
echo "wrote $(wc -l < "$out") results to $out"
