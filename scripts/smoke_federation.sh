#!/bin/sh
# Federation smoke test: two primary processes (one replicated to a
# streaming follower) behind a pidcan-router, loadgen driven through
# the router, a cross-process node migration, then kill -9 of the
# replicated primary and promotion of its follower — verifying zero
# acked-write loss through the router and router convergence onto the
# promoted member's epoch.
#
#   scripts/smoke_federation.sh [first-port] [router-qps-floor]
#
# Also asserts the router's scatter-pruning path: a second federation
# (fresh members C and D — members hold their federation's map, so
# federations cannot share a member) with a maximally skewed
# population (C populated, D's nodes all zeroed to no availability)
# must prune scatter legs (nonzero fed_legs_pruned) while sustaining
# a query qps floor (default 1500) through the pipelined transport.
#
# Uses thirteen consecutive ports starting at first-port (default 18591).
set -eu

cd "$(dirname "$0")/.."
base="${1:-18591}"
qpsfloor="${2:-1500}"
ahttp=$base
awire=$((base + 1))
bhttp=$((base + 2))
bwire=$((base + 3))
brepl=$((base + 4))
fhttp=$((base + 5))
fwire=$((base + 6))
rhttp=$((base + 7))
chttp=$((base + 8))
cwire=$((base + 9))
dhttp=$((base + 10))
dwire=$((base + 11))
r2http=$((base + 12))
rbase="http://127.0.0.1:$rhttp"
r2base="http://127.0.0.1:$r2http"

work=$(mktemp -d)
pids=""
cleanup() {
	for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "building pidcan-serve, pidcan-router, pidcan-loadgen..."
go build -o "$work/pidcan-serve" ./cmd/pidcan-serve
go build -o "$work/pidcan-router" ./cmd/pidcan-router
go build -o "$work/pidcan-loadgen" ./cmd/pidcan-loadgen

wait_healthy() {
	i=0
	until curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "server on port $1 did not come up; log:" >&2
			cat "$2" >&2
			exit 1
		fi
		sleep 0.1
	done
}

post() { curl -sf -X POST -d "$2" "$rbase$1"; }

echo "starting primary A (in-memory) and primary B (durable, repl on :$brepl)..."
"$work/pidcan-serve" -addr "127.0.0.1:$ahttp" -wire-addr "127.0.0.1:$awire" \
	-shards 2 -nodes 8 -seed 3 -warmup 1m >"$work/a.log" 2>&1 &
pids="$pids $!"
"$work/pidcan-serve" -addr "127.0.0.1:$bhttp" -wire-addr "127.0.0.1:$bwire" \
	-shards 2 -nodes 8 -seed 4 -warmup 1m -data-dir "$work/b" \
	-repl-addr "127.0.0.1:$brepl" >"$work/b.log" 2>&1 &
bpid=$!
pids="$pids $bpid"
wait_healthy "$ahttp" "$work/a.log"
wait_healthy "$bhttp" "$work/b.log"

echo "starting follower B2..."
"$work/pidcan-serve" -addr "127.0.0.1:$fhttp" -wire-addr "127.0.0.1:$fwire" \
	-shards 2 -nodes 8 -seed 4 -warmup 1m -data-dir "$work/b2" \
	-role follower -primary "127.0.0.1:$brepl" >"$work/b2.log" 2>&1 &
pids="$pids $!"
wait_healthy "$fhttp" "$work/b2.log"

echo "starting router (members: A; B with B2 fallback)..."
"$work/pidcan-router" -addr "127.0.0.1:$rhttp" \
	-members "127.0.0.1:$awire,127.0.0.1:$bwire|127.0.0.1:$fwire" \
	>"$work/router.log" 2>&1 &
pids="$pids $!"
wait_healthy "$rhttp" "$work/router.log"

echo "driving load through the router..."
"$work/pidcan-loadgen" -url "$rbase" -rate 2000 -duration 2s -workers 16 \
	-mix "query=80,update=12,join=6,leave=2" -seed 7 >"$work/loadgen.out" 2>&1 || {
	echo "FAIL: loadgen through the router failed" >&2
	cat "$work/loadgen.out" "$work/router.log" >&2
	exit 1
}

echo "starting members C (populated) and D (zeroed) and the pruning router..."
"$work/pidcan-serve" -addr "127.0.0.1:$chttp" -wire-addr "127.0.0.1:$cwire" \
	-shards 2 -nodes 8 -seed 5 -warmup 1m >"$work/c.log" 2>&1 &
pids="$pids $!"
"$work/pidcan-serve" -addr "127.0.0.1:$dhttp" -wire-addr "127.0.0.1:$dwire" \
	-shards 2 -nodes 2 -seed 6 -warmup 1m >"$work/d.log" 2>&1 &
pids="$pids $!"
wait_healthy "$chttp" "$work/c.log"
wait_healthy "$dhttp" "$work/d.log"
# Zero every availability on member D: its summary max becomes the
# zero vector, which dominates no positive demand, so D's scatter
# leg must be pruned on every query.
for n in $(curl -sf "http://127.0.0.1:$dhttp/nodes" | tr -c '0-9' '\n'); do
	if [ -n "$n" ]; then
		curl -sf -X POST -d "{\"node\":$n,\"avail\":[0,0,0,0,0]}" \
			"http://127.0.0.1:$dhttp/update" >/dev/null
	fi
done
"$work/pidcan-router" -addr "127.0.0.1:$r2http" \
	-members "127.0.0.1:$cwire,127.0.0.1:$dwire" \
	-summary-refresh 100ms >"$work/router2.log" 2>&1 &
pids="$pids $!"
wait_healthy "$r2http" "$work/router2.log"

echo "driving query-only load through the pruning router..."
sleep 0.5 # a few summary-refresh periods: member C's emptiness is provable
"$work/pidcan-loadgen" -url "$r2base" -router -rate 4000 -duration 2s -workers 16 \
	-mix "query=100" -seed 8 -json "$work/prune.json" >"$work/prune.out" 2>&1 || {
	echo "FAIL: loadgen through the pruning router failed" >&2
	cat "$work/prune.out" "$work/router2.log" >&2
	exit 1
}
pruned=$(curl -sf "$r2base/stats" | sed 's/.*"fed_legs_pruned":\([0-9]*\).*/\1/')
if [ -z "$pruned" ] || [ "$pruned" -eq 0 ]; then
	echo "FAIL: skewed population pruned no scatter legs (fed_legs_pruned=$pruned)" >&2
	cat "$work/prune.out" >&2
	curl -sf "$r2base/stats" >&2 || true
	exit 1
fi
qps=$(awk -F': *|,' '/"achieved_qps"/ {printf "%d", $2; exit}' "$work/prune.json")
if [ -z "$qps" ] || [ "$qps" -lt "$qpsfloor" ]; then
	echo "FAIL: pruning router sustained $qps qps, floor $qpsfloor" >&2
	cat "$work/prune.out" >&2
	exit 1
fi
echo "pruning router: $qps qps (floor $qpsfloor), $pruned legs pruned"

# A federation id tags its owning member in bits 48-63 (member+1):
# pick one node per member from the routable set.
nodes_json=$(curl -sf "$rbase/nodes")
m0node=$(printf '%s' "$nodes_json" | tr -c '0-9' '\n' | awk '$0 != "" && int($0/281474976710656) == 1 {print; exit}')
m1node=$(printf '%s' "$nodes_json" | tr -c '0-9' '\n' | awk '$0 != "" && int($0/281474976710656) == 2 {print; exit}')
if [ -z "$m0node" ] || [ -z "$m1node" ]; then
	echo "FAIL: could not find one node per member in $nodes_json" >&2
	exit 1
fi

echo "migrating node $m0node from member 0 to member 1..."
mig=$(post /migrate "{\"node\":$m0node,\"member\":1}")
case "$mig" in
*'"ok":true'*) ;;
*)
	echo "FAIL: migrate response: $mig" >&2
	exit 1
	;;
esac
post /update "{\"node\":$m0node,\"avail\":[210,42,420,63,1.5]}" >/dev/null

echo "waiting for the follower to drain the stream..."
i=0
while :; do
	bn=$(curl -sf "http://127.0.0.1:$bhttp/nodes")
	fn=$(curl -sf "http://127.0.0.1:$fhttp/nodes")
	[ "$bn" = "$fn" ] && break
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "FAIL: follower never converged" >&2
		echo "primary B: $bn" >&2
		echo "follower:  $fn" >&2
		cat "$work/b2.log" >&2
		exit 1
	fi
	sleep 0.1
done

query='{"demand":[100,10,100,10,0.5],"k":4,"no_cache":true}'
curl -sf "$rbase/nodes" >"$work/nodes.acked"
post /query "$query" >"$work/query.acked"

echo "killing primary B (SIGKILL) and promoting B2..."
kill -9 "$bpid"
wait "$bpid" 2>/dev/null || true
promo=$(curl -sf -X POST "http://127.0.0.1:$fhttp/promote")
case "$promo" in
*'"role":"primary"'*) ;;
*)
	echo "FAIL: promote response: $promo" >&2
	cat "$work/b2.log" >&2
	exit 1
	;;
esac

echo "waiting for the router to converge onto the promoted member's epoch..."
i=0
while :; do
	# Traffic is what carries epoch evidence; queries keep flowing
	# while the router walks dead primary -> fallback follower.
	post /query "$query" >/dev/null 2>&1 || true
	epoch=$(curl -sf "$rbase/map" | sed 's/.*"index":1[^}]*"epoch":\([0-9]*\).*/\1/')
	[ "$epoch" = "2" ] && break
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "FAIL: router never observed epoch 2 (last: $epoch)" >&2
		curl -sf "$rbase/map" >&2 || true
		cat "$work/router.log" >&2
		exit 1
	fi
	sleep 0.1
done

curl -sf "$rbase/nodes" >"$work/nodes.after"
post /query "$query" >"$work/query.after"

fail=0
if ! cmp -s "$work/nodes.acked" "$work/nodes.after"; then
	echo "FAIL: acked node set lost across member fail-over" >&2
	diff "$work/nodes.acked" "$work/nodes.after" >&2 || true
	fail=1
fi
if ! cmp -s "$work/query.acked" "$work/query.after"; then
	echo "FAIL: acked query results lost across member fail-over" >&2
	diff "$work/query.acked" "$work/query.after" >&2 || true
	fail=1
fi
# Writes to both members still land through the router — including
# the migrated node's original id, now served by the promoted B2.
for n in $m1node $m0node; do
	code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
		-d "{\"node\":$n,\"avail\":[250,45,430,65,1.5]}" "$rbase/update")
	if [ "$code" != "200" ]; then
		echo "FAIL: post-fail-over update of node $n returned $code, want 200" >&2
		fail=1
	fi
done
[ "$fail" -eq 0 ] || exit 1
echo "OK: zero acked-write loss across member kill -9 + promotion, router converged to epoch 2; pruning router held $qps qps with $pruned legs pruned"
