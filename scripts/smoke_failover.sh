#!/bin/sh
# Fail-over smoke test for op-log replication: start a primary and a
# streaming follower as two processes, drive acknowledged writes,
# let the follower drain, kill the primary hard (SIGKILL), promote
# the follower over HTTP, and verify the promoted node serves every
# write the primary acknowledged — plus accepts new writes under the
# sealed epoch.
#
#   scripts/smoke_failover.sh [http-port] [repl-port] [follower-port]
#
# Exits non-zero (with a diff) on any acked-write loss.
set -eu

cd "$(dirname "$0")/.."
pport="${1:-18571}"
rport="${2:-18572}"
fport="${3:-18573}"
pbase="http://127.0.0.1:$pport"
fbase="http://127.0.0.1:$fport"

work=$(mktemp -d)
ppid=""
fpid=""
cleanup() {
	[ -n "$ppid" ] && kill -9 "$ppid" 2>/dev/null || true
	[ -n "$fpid" ] && kill -9 "$fpid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "building pidcan-serve..."
go build -o "$work/pidcan-serve" ./cmd/pidcan-serve

wait_healthy() {
	base="$1"
	log="$2"
	i=0
	until curl -sf "$base/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "server at $base did not come up; log:" >&2
			cat "$log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

post() { curl -sf -X POST -d "$3" "$1$2"; }

echo "starting primary (repl on :$rport)..."
"$work/pidcan-serve" -addr "127.0.0.1:$pport" -shards 2 -nodes 8 -seed 3 \
	-warmup 1m -data-dir "$work/primary" -repl-addr "127.0.0.1:$rport" \
	>"$work/primary.log" 2>&1 &
ppid=$!
wait_healthy "$pbase" "$work/primary.log"

echo "starting follower..."
"$work/pidcan-serve" -addr "127.0.0.1:$fport" -shards 2 -nodes 8 -seed 3 \
	-warmup 1m -data-dir "$work/follower" -role follower \
	-primary "127.0.0.1:$rport" >"$work/follower.log" 2>&1 &
fpid=$!
wait_healthy "$fbase" "$work/follower.log"

echo "driving acknowledged writes (joins, updates, checkpoint, post-checkpoint writes)..."
join=$(post "$pbase" /join '{"avail":[300,50,500,80,2]}')
node=$(printf '%s' "$join" | sed 's/[^0-9]*\([0-9]*\).*/\1/')
i=0
while [ "$i" -lt 20 ]; do
	post "$pbase" /update "{\"node\":$node,\"avail\":[2$i,40,400,60,1],\"announce\":true}" >/dev/null
	i=$((i + 1))
done
post "$pbase" /checkpoint '' >/dev/null
# These live only in the post-checkpoint log tail + the stream.
post "$pbase" /join '{"avail":[111,11,111,11,1]}' >/dev/null
post "$pbase" /update "{\"node\":$node,\"avail\":[210,42,420,63,1.5],\"announce\":true}" >/dev/null

echo "waiting for the follower to drain the stream..."
i=0
while :; do
	pn=$(curl -sf "$pbase/nodes")
	fn=$(curl -sf "$fbase/nodes")
	[ "$pn" = "$fn" ] && break
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "FAIL: follower never converged" >&2
		echo "primary:  $pn" >&2
		echo "follower: $fn" >&2
		cat "$work/follower.log" >&2
		exit 1
	fi
	sleep 0.1
done

# Reads serve on the follower; writes are refused with 503.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
	-d "{\"node\":$node,\"avail\":[1,1,1,1,1]}" "$fbase/update")
if [ "$code" != "503" ]; then
	echo "FAIL: follower write returned $code, want 503" >&2
	exit 1
fi

query='{"demand":[100,10,100,10,0.5],"k":4,"no_cache":true}'
curl -sf "$pbase/nodes" >"$work/nodes.acked"
post "$pbase" "/query" "$query" >"$work/query.acked"

echo "killing the primary (SIGKILL) and promoting the follower..."
kill -9 "$ppid"
wait "$ppid" 2>/dev/null || true
ppid=""
promo=$(post "$fbase" /promote '')
case "$promo" in
*'"role":"primary"'*) ;;
*)
	echo "FAIL: promote response: $promo" >&2
	cat "$work/follower.log" >&2
	exit 1
	;;
esac

curl -sf "$fbase/nodes" >"$work/nodes.after"
post "$fbase" "/query" "$query" >"$work/query.after"

fail=0
if ! cmp -s "$work/nodes.acked" "$work/nodes.after"; then
	echo "FAIL: acked node set lost across fail-over" >&2
	diff "$work/nodes.acked" "$work/nodes.after" >&2 || true
	fail=1
fi
if ! cmp -s "$work/query.acked" "$work/query.after"; then
	echo "FAIL: acked query results lost across fail-over" >&2
	diff "$work/query.acked" "$work/query.after" >&2 || true
	fail=1
fi
# The promoted node accepts writes under the sealed epoch.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
	-d "{\"node\":$node,\"avail\":[250,45,430,65,1.5],\"announce\":true}" "$fbase/update")
if [ "$code" != "200" ]; then
	echo "FAIL: write on promoted node returned $code, want 200" >&2
	fail=1
fi
epoch=$(curl -sf "$fbase/stats" | sed 's/.*"epoch":\([0-9]*\).*/\1/')
if [ "$epoch" != "2" ]; then
	echo "FAIL: promoted epoch $epoch, want 2" >&2
	fail=1
fi
[ "$fail" -eq 0 ] || exit 1
echo "OK: zero acked-write loss across kill -9 + promotion (epoch $epoch), promoted node writable"
