#!/bin/sh
# Wire-protocol smoke test: start pidcan-serve with the binary wire
# edge enabled, drive a closed-loop query load over it with
# pidcan-loadgen -proto wire, and assert the edge sustains at least
# the threshold throughput with zero protocol errors (client-side
# errors and server-side rejected frames both count).
#
#   scripts/smoke_wire.sh [http-port] [wire-port] [min-qps]
#
# The default threshold is 200000 qps — the serving-edge target the
# wire protocol exists to hit (the JSON API peaks an order of
# magnitude lower on the same container).
set -eu

cd "$(dirname "$0")/.."
hport="${1:-18581}"
wport="${2:-18582}"
minqps="${3:-200000}"
base="http://127.0.0.1:$hport"

work=$(mktemp -d)
spid=""
cleanup() {
	[ -n "$spid" ] && kill -9 "$spid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "building pidcan-serve and pidcan-loadgen..."
go build -o "$work/pidcan-serve" ./cmd/pidcan-serve
go build -o "$work/pidcan-loadgen" ./cmd/pidcan-loadgen

echo "starting server (wire on :$wport)..."
"$work/pidcan-serve" -addr "127.0.0.1:$hport" -wire-addr "127.0.0.1:$wport" \
	-shards 2 -nodes 32 -seed 7 -warmup 1m >"$work/serve.log" 2>&1 &
spid=$!

i=0
until curl -sf "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "server did not come up; log:" >&2
		cat "$work/serve.log" >&2
		exit 1
	fi
	sleep 0.1
done

echo "driving closed-loop queries over the wire edge..."
"$work/pidcan-loadgen" -url "$base" -proto wire -wire "127.0.0.1:$wport" \
	-rate 0 -duration 5s -workers 4 -mix query=100 -seed 9 \
	-json "$work/summary.json"

flat=$(tr -d ' \t\n' < "$work/summary.json")
qps=$(printf '%s' "$flat" | sed 's/.*"achieved_qps":\([0-9.]*\).*/\1/')
errors=$(printf '%s' "$flat" | sed 's/.*"errors":\([0-9]*\),"shed".*/\1/')
stats=$(curl -sf "$base/stats")
rejected=$(printf '%s' "$stats" | sed 's/.*"wire_rejected":\([0-9]*\).*/\1/')
case "$rejected" in *[!0-9]*) rejected=0 ;; esac # omitempty: absent means 0

fail=0
# The indexed read path and adaptive cache report through /stats —
# that is where pidcan-loadgen's end-of-run server probe reads them,
# so every counter must be present, and a query-only load must have
# driven searches through the snapshot index.
for key in index_searches index_builds cache_stale cache_adaptions cache_ttl_ms cache_quantum; do
	case "$stats" in
	*"\"$key\":"*) ;;
	*)
		echo "FAIL: /stats is missing the $key counter" >&2
		fail=1
		;;
	esac
done
searches=$(printf '%s' "$stats" | sed 's/.*"index_searches":\([0-9]*\).*/\1/')
case "$searches" in '' | *[!0-9]*) searches=0 ;; esac
if [ "$searches" -eq 0 ]; then
	echo "FAIL: index_searches is 0 after a query load — the read path is not using the snapshot index" >&2
	fail=1
fi
if [ "$errors" != "0" ]; then
	echo "FAIL: $errors loadgen errors over the wire protocol" >&2
	fail=1
fi
if [ "$rejected" != "0" ]; then
	echo "FAIL: server rejected $rejected wire frames" >&2
	fail=1
fi
if ! awk -v q="$qps" -v m="$minqps" 'BEGIN { exit !(q + 0 >= m + 0) }'; then
	echo "FAIL: wire throughput $qps qps below the $minqps floor" >&2
	fail=1
fi
[ "$fail" -eq 0 ] || { cat "$work/serve.log" >&2; exit 1; }
echo "OK: wire edge sustained $qps qps (floor $minqps), zero protocol errors"
