#!/bin/sh
# Recovery smoke test for the durable serving path: start
# pidcan-serve with -data-dir, load it with a join, updates and a
# checkpoint plus a post-checkpoint write, kill it hard (SIGKILL — a
# crash, not a shutdown), restart it on the same directory, and
# verify the node set, the population and a deterministic best-fit
# query all survived.
#
#   scripts/smoke_recovery.sh [port]
#
# Exits non-zero (with a diff) when recovered state diverges.
set -eu

cd "$(dirname "$0")/.."
port="${1:-18463}"
base="http://127.0.0.1:$port"

work=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "building pidcan-serve..."
go build -o "$work/pidcan-serve" ./cmd/pidcan-serve

start_server() {
	"$work/pidcan-serve" -addr "127.0.0.1:$port" -shards 2 -nodes 8 -seed 3 \
		-warmup 1m -data-dir "$work/data" >"$work/server.log" 2>&1 &
	pid=$!
	i=0
	until curl -sf "$base/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "server did not come up; log:" >&2
			cat "$work/server.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

post() { curl -sf -X POST -d "$2" "$base$1"; }

echo "starting server (cold, -data-dir $work/data)..."
start_server

echo "writing: join + updates + checkpoint + post-checkpoint update..."
join=$(post /join '{"avail":[300,50,500,80,2]}')
node=$(printf '%s' "$join" | sed 's/[^0-9]*\([0-9]*\).*/\1/')
post /update "{\"node\":$node,\"avail\":[200,40,400,60,1],\"announce\":true}" >/dev/null
post /checkpoint '' >/dev/null
# This one lives only in the op-log tail — replay must carry it.
post /update "{\"node\":$node,\"avail\":[210,42,420,63,1.5],\"announce\":true}" >/dev/null

query='{"demand":[100,10,100,10,0.5],"k":4,"no_cache":true}'
curl -sf "$base/nodes" >"$work/nodes.before"
post /query "$query" >"$work/query.before"
before_total=$(curl -sf "$base/stats" | sed 's/.*"total_nodes":\([0-9]*\).*/\1/')

echo "killing server (SIGKILL) and restarting on the same data dir..."
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
start_server

warm=$(curl -sf "$base/stats" | grep -o '"warm_start":true' || true)
if [ -z "$warm" ]; then
	echo "FAIL: restarted server did not report warm_start" >&2
	exit 1
fi
after_total=$(curl -sf "$base/stats" | sed 's/.*"total_nodes":\([0-9]*\).*/\1/')
curl -sf "$base/nodes" >"$work/nodes.after"
post /query "$query" >"$work/query.after"

fail=0
if ! cmp -s "$work/nodes.before" "$work/nodes.after"; then
	echo "FAIL: node sets diverged" >&2
	diff "$work/nodes.before" "$work/nodes.after" >&2 || true
	fail=1
fi
if ! cmp -s "$work/query.before" "$work/query.after"; then
	echo "FAIL: query results diverged" >&2
	diff "$work/query.before" "$work/query.after" >&2 || true
	fail=1
fi
if [ "$before_total" != "$after_total" ]; then
	echo "FAIL: total_nodes $before_total -> $after_total" >&2
	fail=1
fi
[ "$fail" -eq 0 ] || exit 1
echo "OK: $after_total nodes, node set and best-fit query identical after kill -9 + warm restart"
