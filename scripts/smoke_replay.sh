#!/bin/sh
# Record/replay smoke test, both halves of the subsystem:
#
#  1. Scenario corpus: compile the flash-crowd and correlated-death
#     scenarios, replay each against a fresh engine with a linear-scan
#     reference refereeing every response, and assert their invariant
#     sets (pidcan-replay exits non-zero on any violation). The
#     flash-crowd trace also round-trips through a trace file.
#  2. Live capture: start pidcan-serve, begin a capture over HTTP,
#     drive mixed load with pidcan-loadgen (seeded; the summary line
#     must echo the seed), stop the capture, check the capture_*
#     gauges in /stats, download the trace, and replay it into a
#     fresh engine asserting zero acked-write loss and digest
#     equivalence against the reference.
#
#   scripts/smoke_replay.sh [http-port]
#
set -eu

cd "$(dirname "$0")/.."
port="${1:-18591}"
base="http://127.0.0.1:$port"

work=$(mktemp -d)
spid=""
cleanup() {
	[ -n "$spid" ] && kill -9 "$spid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "building pidcan-serve, pidcan-loadgen, pidcan-replay..."
go build -o "$work/pidcan-serve" ./cmd/pidcan-serve
go build -o "$work/pidcan-loadgen" ./cmd/pidcan-loadgen
go build -o "$work/pidcan-replay" ./cmd/pidcan-replay

echo "--- scenario corpus ---"
"$work/pidcan-replay" -scenario flash-crowd -seed 42 -out "$work/flash.bin" >"$work/flash.out" 2>&1 ||
	{ cat "$work/flash.out" >&2; exit 1; }
grep -q "all invariants hold" "$work/flash.out" ||
	{ echo "FAIL: flash-crowd did not assert its invariants" >&2; cat "$work/flash.out" >&2; exit 1; }
"$work/pidcan-replay" -scenario correlated-death -seed 42 >"$work/death.out" 2>&1 ||
	{ cat "$work/death.out" >&2; exit 1; }
grep -q "all invariants hold" "$work/death.out" ||
	{ echo "FAIL: correlated-death did not assert its invariants" >&2; cat "$work/death.out" >&2; exit 1; }
echo "flash-crowd + correlated-death replayed, invariants hold"

echo "replaying the compiled flash-crowd trace file (strict digests)..."
"$work/pidcan-replay" -trace "$work/flash.bin" -strict >"$work/flashfile.out" 2>&1 ||
	{ cat "$work/flashfile.out" >&2; exit 1; }
grep -q "all invariants hold" "$work/flashfile.out" ||
	{ echo "FAIL: flash-crowd trace-file replay" >&2; cat "$work/flashfile.out" >&2; exit 1; }

echo "--- live capture ---"
echo "starting pidcan-serve on :$port..."
"$work/pidcan-serve" -addr "127.0.0.1:$port" -shards 4 -nodes 32 -seed 7 \
	-warmup 1m >"$work/serve.log" 2>&1 &
spid=$!
i=0
until curl -sf "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "server never came up; log:" >&2
		cat "$work/serve.log" >&2
		exit 1
	fi
	sleep 0.1
done

echo "starting capture..."
start=$(curl -sf -X POST "$base/capture/start")
case "$start" in
*'"ok":true'*) ;;
*)
	echo "FAIL: /capture/start: $start" >&2
	exit 1
	;;
esac

echo "driving seeded load (pidcan-loadgen -seed 42)..."
"$work/pidcan-loadgen" -url "$base" -rate 3000 -duration 3s -workers 16 \
	-seed 42 >"$work/loadgen.out" 2>&1 ||
	{ cat "$work/loadgen.out" >&2; exit 1; }
grep -q "seed=42" "$work/loadgen.out" ||
	{ echo "FAIL: loadgen summary does not echo the seed" >&2; cat "$work/loadgen.out" >&2; exit 1; }

echo "checking capture_* gauges in /stats..."
stats=$(curl -sf "$base/stats")
for gauge in capture_records capture_dropped capture_bytes; do
	case "$stats" in
	*"\"$gauge\""*) ;;
	*)
		echo "FAIL: /stats missing $gauge: $stats" >&2
		exit 1
		;;
	esac
done
case "$stats" in
*'"capture_records":0,'*)
	echo "FAIL: capture recorded nothing under load: $stats" >&2
	exit 1
	;;
esac

echo "stopping capture..."
stop=$(curl -sf -X POST "$base/capture/stop")
case "$stop" in
*'"dropped":0'*) ;;
*)
	echo "FAIL: capture dropped events (or stop failed): $stop" >&2
	exit 1
	;;
esac

echo "downloading the trace and replaying it into a fresh engine..."
curl -sf "$base/capture/trace" -o "$work/live.bin"
[ -s "$work/live.bin" ] || { echo "FAIL: empty trace download" >&2; exit 1; }
"$work/pidcan-replay" -trace "$work/live.bin" >"$work/live.out" 2>&1 ||
	{ cat "$work/live.out" >&2; exit 1; }
grep -q "all invariants hold" "$work/live.out" ||
	{ echo "FAIL: live-trace replay" >&2; cat "$work/live.out" >&2; exit 1; }
grep "replayed" "$work/live.out" || true
echo "OK: scenario corpus asserted; live record -> replay round trip holds invariants"
