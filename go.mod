module pidcan

go 1.24
