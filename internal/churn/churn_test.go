package churn

import (
	"testing"

	"pidcan/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	if err := (Config{Degree: -0.1, Window: sim.Second}).Validate(); err == nil {
		t.Error("negative degree validated")
	}
	if err := (Config{Degree: 1.1, Window: sim.Second}).Validate(); err == nil {
		t.Error("degree > 1 validated")
	}
	if err := (Config{Degree: 0.5, Window: 0}).Validate(); err == nil {
		t.Error("zero window validated")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	eng := sim.New()
	rng := sim.NewRNG(1, sim.StreamChurn)
	if _, err := New(eng, rng, Config{Degree: 2, Window: sim.Second}, 10, func() {}, func() {}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(eng, rng, Default(), -1, func() {}, func() {}); err == nil {
		t.Error("negative population accepted")
	}
}

func TestQuota(t *testing.T) {
	eng := sim.New()
	rng := sim.NewRNG(1, sim.StreamChurn)
	s, err := New(eng, rng, Config{Degree: 0.25, Window: 3000 * sim.Second}, 100, func() {}, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.QuotaPerWindow(); got != 25 {
		t.Errorf("quota = %d, want 25", got)
	}
}

func TestZeroDegreeNoEvents(t *testing.T) {
	eng := sim.New()
	rng := sim.NewRNG(1, sim.StreamChurn)
	calls := 0
	s, err := New(eng, rng, Default(), 100, func() { calls++ }, func() { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.Run(2 * sim.Hour)
	if calls != 0 {
		t.Errorf("zero-degree churn fired %d events", calls)
	}
}

func TestEventRate(t *testing.T) {
	eng := sim.New()
	rng := sim.NewRNG(2, sim.StreamChurn)
	leaves, joins := 0, 0
	cfg := Config{Degree: 0.5, Window: 3000 * sim.Second}
	s, err := New(eng, rng, cfg, 200, func() { leaves++ }, func() { joins++ })
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	// 4 full windows.
	eng.Run(4 * 3000 * sim.Second)
	want := 4 * 100
	if leaves < want-100 || leaves > want+100 {
		t.Errorf("leaves = %d, want ≈%d", leaves, want)
	}
	if joins < want-100 || joins > want+100 {
		t.Errorf("joins = %d, want ≈%d", joins, want)
	}
	// Balanced population drift.
	if leaves != joins {
		// The counts may differ only by events past the horizon.
		diff := leaves - joins
		if diff < -100 || diff > 100 {
			t.Errorf("unbalanced churn: %d leaves vs %d joins", leaves, joins)
		}
	}
}

func TestEventsSpreadOverWindow(t *testing.T) {
	eng := sim.New()
	rng := sim.NewRNG(3, sim.StreamChurn)
	var times []sim.Time
	cfg := Config{Degree: 1, Window: 1000 * sim.Second}
	s, err := New(eng, rng, cfg, 100, func() { times = append(times, eng.Now()) }, func() {})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.Run(1000 * sim.Second)
	if len(times) < 90 {
		t.Fatalf("only %d events in first window", len(times))
	}
	// Events must not be bunched at the window start: at least a
	// third in the second half.
	late := 0
	for _, at := range times {
		if at > 500*sim.Second {
			late++
		}
	}
	if late < len(times)/3 {
		t.Errorf("events bunched early: %d/%d in second half", late, len(times))
	}
}

func TestStop(t *testing.T) {
	eng := sim.New()
	rng := sim.NewRNG(4, sim.StreamChurn)
	calls := 0
	cfg := Config{Degree: 0.5, Window: 1000 * sim.Second}
	s, err := New(eng, rng, cfg, 100, func() { calls++ }, func() { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	eng.Run(500 * sim.Second)
	s.Stop()
	at := calls
	eng.Run(1 * sim.Hour)
	if calls != at {
		t.Errorf("events after Stop: %d -> %d", at, calls)
	}
}
