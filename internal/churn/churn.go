// Package churn schedules node arrival/departure events for the
// dynamic experiments of the paper (§IV.B, Fig. 8): the dynamic
// degree is the fraction of nodes that churn per task lifetime
// (3000 s on average) — e.g. degree 0.25 means about 25% of the
// nodes disconnect every 3000 s while the same number of new nodes
// join, with events uniformly spread over time.
package churn

import (
	"fmt"
	"math"

	"pidcan/internal/sim"
)

// Config parameterizes the churn process.
type Config struct {
	// Degree is the churned fraction per window, in [0, 1].
	Degree float64
	// Window is the churn accounting window (the mean task
	// lifetime, 3000 s).
	Window sim.Time
}

// Default returns the paper's churn window with no churn.
func Default() Config { return Config{Degree: 0, Window: 3000 * sim.Second} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Degree < 0 || c.Degree > 1 {
		return fmt.Errorf("churn: degree %v outside [0,1]", c.Degree)
	}
	if c.Window <= 0 {
		return fmt.Errorf("churn: non-positive window %v", c.Window)
	}
	return nil
}

// Scheduler drives the churn process on a simulation engine. Leave
// and join callbacks fire at uniformly distributed instants, one
// leave and one join per churn slot, so the population stays
// balanced in expectation.
type Scheduler struct {
	cfg     Config
	eng     *sim.Engine
	rng     *sim.RNG
	n       int // baseline population for the per-window quota
	leave   func()
	join    func()
	stopped bool
	windowT *sim.Timer
}

// New builds a scheduler over the engine; n is the baseline node
// count used to size the per-window churn quota. leave and join are
// invoked once per churn slot; leave always fires before the paired
// join is scheduled independently.
func New(eng *sim.Engine, rng *sim.RNG, cfg Config, n int, leave, join func()) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("churn: negative population %d", n)
	}
	return &Scheduler{cfg: cfg, eng: eng, rng: rng, n: n, leave: leave, join: join}, nil
}

// QuotaPerWindow returns the number of leave (and join) events per
// window: round(degree·n).
func (s *Scheduler) QuotaPerWindow() int {
	return int(math.Round(s.cfg.Degree * float64(s.n)))
}

// Start begins scheduling windows. A zero-degree scheduler is a
// no-op.
func (s *Scheduler) Start() {
	if s.QuotaPerWindow() == 0 {
		return
	}
	s.scheduleWindow()
}

// Stop halts the process after the current window's events.
func (s *Scheduler) Stop() {
	s.stopped = true
	if s.windowT != nil {
		s.windowT.Stop()
	}
}

// scheduleWindow lays out one window's events and re-arms itself.
func (s *Scheduler) scheduleWindow() {
	if s.stopped {
		return
	}
	q := s.QuotaPerWindow()
	w := float64(s.cfg.Window)
	for i := 0; i < q; i++ {
		s.eng.After(sim.Time(s.rng.Uniform(0, w)), func() {
			if !s.stopped {
				s.leave()
			}
		})
		s.eng.After(sim.Time(s.rng.Uniform(0, w)), func() {
			if !s.stopped {
				s.join()
			}
		})
	}
	s.windowT = s.eng.After(s.cfg.Window, s.scheduleWindow)
}
