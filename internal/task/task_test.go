package task

import (
	"math"
	"testing"

	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

func newGen(t *testing.T, lambda float64) *Generator {
	t.Helper()
	g, err := NewGenerator(DefaultGenConfig(lambda), sim.NewRNG(1, sim.StreamWorkload))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidate(t *testing.T) {
	good := DefaultGenConfig(0.5)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []GenConfig{
		{DemandRatio: 0, MeanInterarrivalSec: 1, MeanDurationSec: 1},
		{DemandRatio: 1.5, MeanInterarrivalSec: 1, MeanDurationSec: 1},
		{DemandRatio: 0.5, MeanInterarrivalSec: 0, MeanDurationSec: 1},
		{DemandRatio: 0.5, MeanInterarrivalSec: 1, MeanDurationSec: 0},
		{DemandRatio: 0.5, MeanInterarrivalSec: 1, MeanDurationSec: 1, DurationSpread: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if _, err := NewGenerator(bad[0], sim.NewRNG(1, 1)); err == nil {
		t.Error("NewGenerator accepted invalid config")
	}
}

func TestCapacityWithinTableI(t *testing.T) {
	g := newGen(t, 1)
	cmax := CMax()
	for i := 0; i < 500; i++ {
		c := g.Capacity()
		if c.Dim() != Dims {
			t.Fatalf("capacity dim = %d", c.Dim())
		}
		if !cmax.Dominates(c) {
			t.Fatalf("capacity %v exceeds cmax %v", c, cmax)
		}
		if !c.IsNonNegative() || c[0] < 1 || c[1] < 20 || c[2] < 5 || c[3] < 20 || c[4] < 512 {
			t.Fatalf("capacity %v below Table I minima", c)
		}
	}
}

func TestCapacityHitsDiscreteLevels(t *testing.T) {
	g := newGen(t, 1)
	mems := map[float64]bool{}
	for i := 0; i < 2000; i++ {
		mems[g.Capacity()[4]] = true
	}
	for _, m := range []float64{512, 1024, 2048, 4096} {
		if !mems[m] {
			t.Errorf("memory level %v never drawn", m)
		}
	}
	if len(mems) != 4 {
		t.Errorf("unexpected memory levels: %v", mems)
	}
}

func TestDemandScalesWithLambda(t *testing.T) {
	for _, lambda := range []float64{1, 0.5, 0.25} {
		g := newGen(t, lambda)
		cmaxScaled := CMax().Scale(lambda)
		for i := 0; i < 300; i++ {
			d := g.Demand()
			if !cmaxScaled.Dominates(d) {
				t.Fatalf("λ=%v: demand %v exceeds λ·cmax %v", lambda, d, cmaxScaled)
			}
			for k := range d {
				if d[k] < demandLo[k]*lambda {
					t.Fatalf("λ=%v: demand %v below Table II lower bound", lambda, d)
				}
			}
		}
	}
}

func TestDurationStatistics(t *testing.T) {
	g := newGen(t, 1)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		d := g.Duration()
		if d < 1500 || d > 4500 {
			t.Fatalf("duration %v outside [1500,4500]", d)
		}
		sum += d
	}
	if mean := sum / n; math.Abs(mean-3000) > 30 {
		t.Errorf("duration mean = %v, want ≈3000", mean)
	}
}

func TestInterarrivalMean(t *testing.T) {
	g := newGen(t, 1)
	var sum sim.Time
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Interarrival()
	}
	mean := (sum / n).Seconds()
	if math.Abs(mean-3000) > 60 {
		t.Errorf("inter-arrival mean = %v s, want ≈3000", mean)
	}
}

func TestNextAssignsSequentialIDs(t *testing.T) {
	g := newGen(t, 0.5)
	s1 := g.Next(3, 10*sim.Second)
	s2 := g.Next(4, 20*sim.Second)
	if s1.ID != 1 || s2.ID != 2 {
		t.Errorf("IDs = %d, %d", s1.ID, s2.ID)
	}
	if s1.Origin != 3 || s1.Submitted != 10*sim.Second {
		t.Errorf("spec = %+v", s1)
	}
	if g.Generated() != 2 {
		t.Errorf("Generated = %d", g.Generated())
	}
}

func TestNewPSMTask(t *testing.T) {
	g := newGen(t, 0.5)
	s := g.Next(0, 0)
	pt := s.NewPSMTask()
	if pt.ID != s.ID || !pt.Expect.Equal(s.Demand) {
		t.Error("psm task does not match spec")
	}
	// Work is demand·duration on the first WorkDims dims, zero after.
	for k := 0; k < WorkDims; k++ {
		want := s.Demand[k] * s.NominalSeconds
		if math.Abs(pt.Work[k]-want) > 1e-9 {
			t.Errorf("work[%d] = %v, want %v", k, pt.Work[k], want)
		}
	}
	for k := WorkDims; k < Dims; k++ {
		if pt.Work[k] != 0 {
			t.Errorf("space dim %d has work %v", k, pt.Work[k])
		}
	}
}

func TestExpectedSeconds(t *testing.T) {
	s := &Spec{
		Demand:         vector.Of(10, 20, 1, 100, 1024),
		NominalSeconds: 3000,
	}
	avg := vector.Of(10, 40, 5, 120, 2048)
	// max(10/10, 20/40, 1/5)·3000 = 3000.
	if got := s.ExpectedSeconds(avg); math.Abs(got-3000) > 1e-9 {
		t.Errorf("ExpectedSeconds = %v", got)
	}
	// Bigger average capacity → smaller expected time.
	avg2 := vector.Of(20, 80, 10, 120, 2048)
	if got := s.ExpectedSeconds(avg2); math.Abs(got-1500) > 1e-9 {
		t.Errorf("ExpectedSeconds = %v", got)
	}
	// Degenerate average falls back to the nominal duration.
	if got := s.ExpectedSeconds(vector.New(5)); got != 3000 {
		t.Errorf("degenerate ExpectedSeconds = %v", got)
	}
	zero := &Spec{Demand: vector.New(5), NominalSeconds: 100}
	if got := zero.ExpectedSeconds(avg); got != 100 {
		t.Errorf("zero-demand ExpectedSeconds = %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	a := newGen(t, 0.5)
	g2, _ := NewGenerator(DefaultGenConfig(0.5), sim.NewRNG(1, sim.StreamWorkload))
	for i := 0; i < 50; i++ {
		if !a.Demand().Equal(g2.Demand()) {
			t.Fatal("equal seeds diverged")
		}
	}
}

func BenchmarkDemand(b *testing.B) {
	g, _ := NewGenerator(DefaultGenConfig(0.5), sim.NewRNG(1, sim.StreamWorkload))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Demand()
	}
}
