// Package task generates the paper's synthetic workload (§IV.A):
// node capacity vectors per Table I, task demand vectors per Table
// II scaled by the demand ratio λ, task durations with a 3000-second
// mean, and Poisson arrivals with 3000-second mean inter-arrival per
// node.
//
// Dimension layout (5 dimensions, the first 3 rate-like):
//
//	0: CPU rate        (processors × per-processor rate, ≤ 25.6)
//	1: I/O speed       (≤ 80 MbPS)
//	2: network bw      (≤ 10 Mbps, the node's LAN bandwidth)
//	3: disk size       (≤ 240 GB)
//	4: memory size     (≤ 4096 MB)
package task

import (
	"fmt"

	"pidcan/internal/psm"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

// Dims is the standard dimensionality of the SOC resource model.
const Dims = 5

// WorkDims is the number of leading rate-like dimensions ("execution
// time is only related to the first three resource types").
const WorkDims = 3

// CMax returns the system-wide maximum capacity vector — the scale
// that embeds resource amounts into the CAN unit cube and the cmax
// of the Slack-on-Submission bound (Formula 3).
func CMax() vector.Vec {
	return vector.Of(25.6, 80, 10, 240, 4096)
}

// Table I attribute sets.
var (
	processorCounts = []float64{1, 2, 4, 8}
	processorRates  = []float64{1, 2, 2.4, 3.2}
	ioSpeeds        = []float64{20, 40, 60, 80}
	diskSizes       = []float64{20, 60, 120, 240}
	memorySizes     = []float64{512, 1024, 2048, 4096}
)

// Table II demand bounds: demand_k ~ U(λ·lo_k, λ·hi_k).
var (
	demandLo = vector.Of(1, 20, 0.1, 20, 512)
	demandHi = vector.Of(25.6, 80, 10, 240, 4096)
)

// GenConfig parameterizes the generator.
type GenConfig struct {
	// DemandRatio is the paper's λ ∈ {1, 0.84, 0.5, 0.25, …}.
	DemandRatio float64
	// MeanInterarrivalSec is the per-node Poisson mean (3000 s).
	MeanInterarrivalSec float64
	// MeanDurationSec is the mean nominal execution time (3000 s).
	MeanDurationSec float64
	// DurationSpread draws durations uniformly from
	// [1−spread, 1+spread]·mean; 0 < spread < 1.
	DurationSpread float64
}

// DefaultGenConfig returns the paper's §IV.A setting at the given λ.
func DefaultGenConfig(lambda float64) GenConfig {
	return GenConfig{
		DemandRatio:         lambda,
		MeanInterarrivalSec: 3000,
		MeanDurationSec:     3000,
		DurationSpread:      0.5,
	}
}

// Validate reports configuration errors.
func (c GenConfig) Validate() error {
	if c.DemandRatio <= 0 || c.DemandRatio > 1 {
		return fmt.Errorf("task: demand ratio %v outside (0,1]", c.DemandRatio)
	}
	if c.MeanInterarrivalSec <= 0 {
		return fmt.Errorf("task: non-positive mean inter-arrival %v", c.MeanInterarrivalSec)
	}
	if c.MeanDurationSec <= 0 {
		return fmt.Errorf("task: non-positive mean duration %v", c.MeanDurationSec)
	}
	if c.DurationSpread < 0 || c.DurationSpread >= 1 {
		return fmt.Errorf("task: duration spread %v outside [0,1)", c.DurationSpread)
	}
	return nil
}

// Spec is one generated task before placement.
type Spec struct {
	ID             psm.TaskID
	Origin         int // index of the submitting node
	Demand         vector.Vec
	NominalSeconds float64
	Submitted      sim.Time
	// Remaining, when non-nil, is the residual work vector of a task
	// recovered from a checkpoint after its execution node churned
	// away (the paper's §VI future-work extension). NewPSMTask uses
	// it instead of the full Demand·NominalSeconds work.
	Remaining vector.Vec
}

// Generator draws capacities, demands, durations and inter-arrival
// gaps from the run's workload RNG stream.
type Generator struct {
	cfg    GenConfig
	rng    *sim.RNG
	nextID psm.TaskID
}

// NewGenerator builds a generator. The config must validate.
func NewGenerator(cfg GenConfig, rng *sim.RNG) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, rng: rng, nextID: 1}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() GenConfig { return g.cfg }

// Capacity draws a node capacity vector per Table I. The network
// bandwidth dimension is the node's LAN bandwidth, uniform in
// [5, 10] Mbps.
func (g *Generator) Capacity() vector.Vec {
	cpu := sim.Pick(g.rng, processorCounts) * sim.Pick(g.rng, processorRates)
	return vector.Of(
		cpu,
		sim.Pick(g.rng, ioSpeeds),
		g.rng.Uniform(5, 10),
		sim.Pick(g.rng, diskSizes),
		sim.Pick(g.rng, memorySizes),
	)
}

// Demand draws a task expectation vector per Table II at the
// configured λ: componentwise uniform in [λ·lo, λ·hi].
func (g *Generator) Demand() vector.Vec {
	d := make(vector.Vec, Dims)
	for k := 0; k < Dims; k++ {
		d[k] = g.rng.Uniform(demandLo[k]*g.cfg.DemandRatio, demandHi[k]*g.cfg.DemandRatio)
	}
	return d
}

// Duration draws a nominal task duration in seconds.
func (g *Generator) Duration() float64 {
	s := g.cfg.DurationSpread
	return g.cfg.MeanDurationSec * g.rng.Uniform(1-s, 1+s)
}

// Interarrival draws the next Poisson gap in simulation time.
func (g *Generator) Interarrival() sim.Time {
	return sim.Seconds(g.rng.Exponential(g.cfg.MeanInterarrivalSec))
}

// Next builds the next task submitted by origin at the given time.
func (g *Generator) Next(origin int, at sim.Time) *Spec {
	id := g.nextID
	g.nextID++
	return &Spec{
		ID:             id,
		Origin:         origin,
		Demand:         g.Demand(),
		NominalSeconds: g.Duration(),
		Submitted:      at,
	}
}

// Generated returns how many tasks have been drawn so far.
func (g *Generator) Generated() int64 { return int64(g.nextID - 1) }

// InitialWork returns the task's full work vector
// (Demand·NominalSeconds on the rate dimensions).
func (s *Spec) InitialWork() vector.Vec {
	w := vector.New(s.Demand.Dim())
	for k := 0; k < WorkDims && k < s.Demand.Dim(); k++ {
		w[k] = s.Demand[k] * s.NominalSeconds
	}
	return w
}

// NewPSMTask converts a spec into a runnable PSM task. A recovered
// spec resumes from its checkpointed remaining work.
func (s *Spec) NewPSMTask() *psm.Task {
	t := psm.NewTask(s.ID, s.Demand, s.NominalSeconds, WorkDims, s.Submitted)
	if s.Remaining != nil {
		t.Work = s.Remaining.Clone()
	}
	return t
}

// ExpectedSeconds estimates the task's expected execution time per
// the paper's fairness definition: "estimated using its load amount
// and the system-wide average node capacity" — the time the task's
// work would take at avgCap shares: max_k work_k / avgCap_k over
// rate dimensions. The work amount is Demand·NominalSeconds.
func (s *Spec) ExpectedSeconds(avgCap vector.Vec) float64 {
	exp := 0.0
	for k := 0; k < WorkDims; k++ {
		if s.Demand[k] <= 0 {
			continue
		}
		if avgCap[k] <= 0 {
			return s.NominalSeconds
		}
		if t := s.Demand[k] * s.NominalSeconds / avgCap[k]; t > exp {
			exp = t
		}
	}
	if exp == 0 {
		return s.NominalSeconds
	}
	return exp
}
