// Package netmodel simulates the Internet underneath the SOC overlay
// per the paper's experimental setting (§IV.A, Table I): nodes are
// grouped into LANs; two nodes in the same LAN communicate at LAN
// bandwidth/latency, nodes in different LANs communicate over the
// WAN ("each network delay takes about 200 milliseconds on the WAN").
package netmodel

import (
	"fmt"

	"pidcan/internal/sim"
)

// Config parameterizes the network model. Zero fields are filled by
// Default().
type Config struct {
	// LANSize is the average number of nodes per LAN group.
	LANSize int
	// Bandwidth ranges in Mbps (uniform draws), per Table I.
	LANBandwidthMbps [2]float64
	WANBandwidthMbps [2]float64
	// Propagation latency ranges.
	LANLatency [2]sim.Time
	WANLatency [2]sim.Time
}

// Default returns the paper's Table I network setting.
func Default() Config {
	return Config{
		LANSize:          50,
		LANBandwidthMbps: [2]float64{5, 10},
		WANBandwidthMbps: [2]float64{0.2, 2},
		LANLatency:       [2]sim.Time{500 * sim.Microsecond, 5 * sim.Millisecond},
		WANLatency:       [2]sim.Time{50 * sim.Millisecond, 200 * sim.Millisecond},
	}
}

// Model assigns nodes to LANs and samples per-message delivery
// delays. It is driven by the run's network RNG stream, so delays
// are deterministic per seed.
type Model struct {
	cfg   Config
	rng   *sim.RNG
	lanOf []int // node index -> LAN id
	lanBW []float64
	nLAN  int
}

// New builds a model for n initial nodes. More nodes can join later
// via AddNode (churn).
func New(cfg Config, n int, rng *sim.RNG) *Model {
	if cfg.LANSize <= 0 {
		panic("netmodel: LANSize must be positive")
	}
	m := &Model{cfg: cfg, rng: rng}
	m.nLAN = (n + cfg.LANSize - 1) / cfg.LANSize
	if m.nLAN == 0 {
		m.nLAN = 1
	}
	for l := 0; l < m.nLAN; l++ {
		m.lanBW = append(m.lanBW, rng.Uniform(cfg.LANBandwidthMbps[0], cfg.LANBandwidthMbps[1]))
	}
	m.lanOf = make([]int, n)
	for i := range m.lanOf {
		m.lanOf[i] = rng.IntN(m.nLAN)
	}
	return m
}

// AddNode assigns a LAN to a newly joined node and returns its index.
func (m *Model) AddNode() int {
	id := len(m.lanOf)
	m.lanOf = append(m.lanOf, m.rng.IntN(m.nLAN))
	return id
}

// Nodes returns the number of nodes the model knows about.
func (m *Model) Nodes() int { return len(m.lanOf) }

// LANCount returns the number of LAN groups.
func (m *Model) LANCount() int { return m.nLAN }

// LANOf returns the LAN group of node i.
func (m *Model) LANOf(i int) int {
	m.check(i)
	return m.lanOf[i]
}

// SameLAN reports whether a and b share a LAN.
func (m *Model) SameLAN(a, b int) bool {
	m.check(a)
	m.check(b)
	return m.lanOf[a] == m.lanOf[b]
}

func (m *Model) check(i int) {
	if i < 0 || i >= len(m.lanOf) {
		panic(fmt.Sprintf("netmodel: unknown node %d (have %d)", i, len(m.lanOf)))
	}
}

// Latency samples the end-to-end delivery delay of a sizeBytes
// message from a to b: propagation latency plus transmission time at
// the path bandwidth. Loopback (a == b) is free.
func (m *Model) Latency(a, b, sizeBytes int) sim.Time {
	if a == b {
		return 0
	}
	var prop sim.Time
	var bwMbps float64
	if m.SameLAN(a, b) {
		prop = sim.Time(m.rng.Uniform(float64(m.cfg.LANLatency[0]), float64(m.cfg.LANLatency[1])))
		bwMbps = m.lanBW[m.lanOf[a]]
	} else {
		prop = sim.Time(m.rng.Uniform(float64(m.cfg.WANLatency[0]), float64(m.cfg.WANLatency[1])))
		bwMbps = m.rng.Uniform(m.cfg.WANBandwidthMbps[0], m.cfg.WANBandwidthMbps[1])
	}
	// Mbps -> bytes/µs: 1 Mbps = 0.125 bytes/µs.
	bytesPerUs := bwMbps * 0.125
	tx := sim.Time(float64(sizeBytes) / bytesPerUs)
	return prop + tx
}
