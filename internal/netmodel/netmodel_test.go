package netmodel

import (
	"testing"

	"pidcan/internal/sim"
)

func newTestModel(n int) *Model {
	return New(Default(), n, sim.NewRNG(1, sim.StreamNetwork))
}

func TestLANAssignment(t *testing.T) {
	m := newTestModel(200)
	if m.Nodes() != 200 {
		t.Fatalf("Nodes = %d", m.Nodes())
	}
	if m.LANCount() != 4 {
		t.Errorf("LANCount = %d, want 4", m.LANCount())
	}
	for i := 0; i < 200; i++ {
		if l := m.LANOf(i); l < 0 || l >= m.LANCount() {
			t.Fatalf("LANOf(%d) = %d", i, l)
		}
	}
}

func TestSameLANConsistency(t *testing.T) {
	m := newTestModel(100)
	for i := 0; i < 100; i++ {
		if !m.SameLAN(i, i) {
			t.Fatal("node not in same LAN as itself")
		}
	}
	if m.SameLAN(0, 1) != (m.LANOf(0) == m.LANOf(1)) {
		t.Error("SameLAN inconsistent with LANOf")
	}
}

func TestLatencyBounds(t *testing.T) {
	m := newTestModel(300)
	cfg := Default()
	var sawLAN, sawWAN bool
	for a := 0; a < 50; a++ {
		for b := 50; b < 100; b++ {
			lat := m.Latency(a, b, 256)
			if lat <= 0 {
				t.Fatalf("non-positive latency between distinct nodes: %v", lat)
			}
			if m.SameLAN(a, b) {
				sawLAN = true
				if lat < cfg.LANLatency[0] {
					t.Errorf("LAN latency %v below floor", lat)
				}
				// Propagation cap + generous transmission allowance.
				if lat > cfg.LANLatency[1]+10*sim.Millisecond {
					t.Errorf("LAN latency %v too large", lat)
				}
			} else {
				sawWAN = true
				if lat < cfg.WANLatency[0] {
					t.Errorf("WAN latency %v below floor", lat)
				}
				if lat > cfg.WANLatency[1]+100*sim.Millisecond {
					t.Errorf("WAN latency %v too large", lat)
				}
			}
		}
	}
	if !sawLAN || !sawWAN {
		t.Skipf("degenerate LAN assignment (LAN=%v WAN=%v)", sawLAN, sawWAN)
	}
}

func TestLoopbackFree(t *testing.T) {
	m := newTestModel(10)
	if m.Latency(3, 3, 1<<20) != 0 {
		t.Error("loopback should be free")
	}
}

func TestTransmissionGrowsWithSize(t *testing.T) {
	m := newTestModel(100)
	// Average over many samples to beat jitter.
	var small, large sim.Time
	for i := 0; i < 500; i++ {
		small += m.Latency(0, 1, 100)
	}
	for i := 0; i < 500; i++ {
		large += m.Latency(0, 1, 1<<20)
	}
	if large <= small {
		t.Errorf("1MB avg latency %v not larger than 100B avg %v", large/500, small/500)
	}
}

func TestAddNode(t *testing.T) {
	m := newTestModel(10)
	id := m.AddNode()
	if id != 10 {
		t.Errorf("AddNode id = %d", id)
	}
	if m.Nodes() != 11 {
		t.Errorf("Nodes = %d", m.Nodes())
	}
	_ = m.LANOf(id) // must not panic
}

func TestUnknownNodePanics(t *testing.T) {
	m := newTestModel(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.LANOf(99)
}

func TestDeterminism(t *testing.T) {
	a := New(Default(), 50, sim.NewRNG(9, sim.StreamNetwork))
	b := New(Default(), 50, sim.NewRNG(9, sim.StreamNetwork))
	for i := 0; i < 200; i++ {
		if a.Latency(i%50, (i*7)%50, 512) != b.Latency(i%50, (i*7)%50, 512) {
			t.Fatal("equal seeds produced different latencies")
		}
	}
}

func BenchmarkLatency(b *testing.B) {
	m := newTestModel(2000)
	for i := 0; i < b.N; i++ {
		_ = m.Latency(i%2000, (i*13)%2000, 512)
	}
}
