package trace

import (
	"strings"
	"testing"

	"pidcan/internal/psm"
	"pidcan/internal/sim"
)

func TestDisabledLog(t *testing.T) {
	var l *Log
	l.Record(Event{Kind: TaskSubmitted}) // nil-safe
	if l.Enabled() || l.Len() != 0 || l.Count(TaskSubmitted) != 0 {
		t.Error("nil log should be inert")
	}
	zero := &Log{}
	zero.Record(Event{Kind: TaskSubmitted})
	if zero.Enabled() || zero.Len() != 0 {
		t.Error("zero log should retain nothing")
	}
	if zero.Count(TaskSubmitted) != 1 {
		t.Error("zero log should still count")
	}
	if New(0).Enabled() {
		t.Error("New(0) should be disabled")
	}
}

func TestRecordAndOrder(t *testing.T) {
	l := New(10)
	if !l.Enabled() {
		t.Fatal("log disabled")
	}
	for i := 0; i < 5; i++ {
		l.Record(Event{At: sim.Time(i) * sim.Second, Kind: TaskSubmitted, Task: psm.TaskID(i)})
	}
	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("Len = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestRingEviction(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Record(Event{At: sim.Time(i) * sim.Second, Kind: TaskFinished, Task: psm.TaskID(i)})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	evs := l.Events()
	// Retains the most recent four, chronological.
	if evs[0].Task != 6 || evs[3].Task != 9 {
		t.Errorf("retained = %+v", evs)
	}
	// Counters see everything.
	if l.Count(TaskFinished) != 10 {
		t.Errorf("Count = %d", l.Count(TaskFinished))
	}
}

func TestFilterAndHistory(t *testing.T) {
	l := New(16)
	l.Record(Event{At: 1 * sim.Second, Kind: TaskSubmitted, Task: 7, Node: 3})
	l.Record(Event{At: 2 * sim.Second, Kind: QueryResolved, Task: 7, Node: 3, Arg: 2})
	l.Record(Event{At: 3 * sim.Second, Kind: TaskPlaced, Task: 7, Node: 3, Arg: 9})
	l.Record(Event{At: 4 * sim.Second, Kind: TaskSubmitted, Task: 8, Node: 4})
	l.Record(Event{At: 5 * sim.Second, Kind: TaskFinished, Task: 7, Node: 9})

	if got := l.Filter(TaskSubmitted); len(got) != 2 {
		t.Errorf("Filter(submitted) = %d", len(got))
	}
	hist := l.TaskHistory(7)
	if len(hist) != 4 {
		t.Fatalf("history = %+v", hist)
	}
	if hist[0].Kind != TaskSubmitted || hist[3].Kind != TaskFinished {
		t.Errorf("history order wrong: %+v", hist)
	}
}

func TestWriteTSVAndStrings(t *testing.T) {
	l := New(8)
	l.Record(Event{At: sim.Second, Kind: TaskPlaced, Task: 1, Node: 2, Arg: 5})
	var b strings.Builder
	if err := l.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "placed") || !strings.Contains(out, "seconds\tkind") {
		t.Errorf("TSV = %q", out)
	}
	if s := (Event{Kind: TaskLost}).String(); !strings.Contains(s, "lost") {
		t.Errorf("Event.String = %q", s)
	}
	if Kind(99).String() == "" || TaskRecovered.String() != "recovered" {
		t.Error("kind names wrong")
	}
}
