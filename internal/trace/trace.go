// Package trace is a bounded structured event log for simulation
// runs: the cloud layer emits task-lifecycle and membership events
// into a ring buffer that tools and tests can filter, count and
// export. Tracing is opt-in (cloud.Config.TraceCapacity) and costs
// nothing when disabled.
package trace

import (
	"fmt"
	"io"

	"pidcan/internal/overlay"
	"pidcan/internal/psm"
	"pidcan/internal/sim"
)

// Kind classifies an event.
type Kind int

// Event kinds emitted by the cloud layer.
const (
	TaskSubmitted Kind = iota
	QueryResolved
	TaskPlaced
	PlacementRejected
	TaskFinished
	TaskFailed
	TaskUnplaced
	TaskLost
	TaskRecovered
	NodeJoined
	NodeLeft
	numKinds
)

var kindNames = [...]string{
	"submitted", "query-resolved", "placed", "rejected", "finished",
	"failed", "unplaced", "lost", "recovered", "node-joined", "node-left",
}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Time
	Kind Kind
	Node overlay.NodeID // the node the event happened at (or joined/left)
	Task psm.TaskID     // 0 for membership events
	// Arg carries a kind-specific number: candidates for
	// QueryResolved, the executing node for TaskPlaced, the dynamic
	// count for membership events.
	Arg int64
}

func (e Event) String() string {
	return fmt.Sprintf("%10.1fs %-14s node=%d task=%d arg=%d",
		e.At.Seconds(), e.Kind, e.Node, e.Task, e.Arg)
}

// Log is a fixed-capacity ring buffer of events with per-kind
// counters. The zero value is a disabled log that drops everything;
// use New for a recording log. Not safe for concurrent use (runs are
// single-goroutine).
type Log struct {
	buf    []Event
	next   int
	filled bool
	counts [numKinds]int64
}

// New returns a log holding the most recent capacity events.
func New(capacity int) *Log {
	if capacity <= 0 {
		return &Log{}
	}
	return &Log{buf: make([]Event, capacity)}
}

// Enabled reports whether the log records anything.
func (l *Log) Enabled() bool { return l != nil && len(l.buf) > 0 }

// Record stores an event (dropping the oldest beyond capacity).
func (l *Log) Record(ev Event) {
	if l == nil {
		return
	}
	if ev.Kind >= 0 && ev.Kind < numKinds {
		l.counts[ev.Kind]++
	}
	if len(l.buf) == 0 {
		return
	}
	l.buf[l.next] = ev
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.filled = true
	}
}

// Count returns how many events of the kind were recorded over the
// whole run (including ones evicted from the ring).
func (l *Log) Count(kind Kind) int64 {
	if l == nil || kind < 0 || kind >= numKinds {
		return 0
	}
	return l.counts[kind]
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	if l.filled {
		return len(l.buf)
	}
	return l.next
}

// Events returns the retained events in chronological order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, l.Len())
	if l.filled {
		out = append(out, l.buf[l.next:]...)
	}
	out = append(out, l.buf[:l.next]...)
	return out
}

// Filter returns the retained events of one kind, in order.
func (l *Log) Filter(kind Kind) []Event {
	var out []Event
	for _, ev := range l.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// TaskHistory returns the retained events of one task, in order.
func (l *Log) TaskHistory(id psm.TaskID) []Event {
	var out []Event
	for _, ev := range l.Events() {
		if ev.Task == id {
			out = append(out, ev)
		}
	}
	return out
}

// WriteTSV exports the retained events as tab-separated values.
func (l *Log) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "seconds\tkind\tnode\ttask\targ"); err != nil {
		return err
	}
	for _, ev := range l.Events() {
		if _, err := fmt.Fprintf(w, "%.3f\t%s\t%d\t%d\t%d\n",
			ev.At.Seconds(), ev.Kind, ev.Node, ev.Task, ev.Arg); err != nil {
			return err
		}
	}
	return nil
}
