package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"pidcan/internal/cloud"
)

// FigureResult couples a figure with its executed runs.
type FigureResult struct {
	Figure
	Results []*cloud.Result
}

// Execute runs the figure's simulations on a worker pool of the
// given width (<= 0 means GOMAXPROCS). Each simulation is fully
// independent — its own engine, RNG streams and overlay — so the
// fan-out is embarrassingly parallel; results land in run order.
func Execute(f Figure, workers int) (*FigureResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]*cloud.Result, len(f.Runs))
	errs := make([]error, len(f.Runs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range f.Runs {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			s, err := cloud.New(f.Runs[i].Cfg)
			if err != nil {
				errs[i] = fmt.Errorf("run %q: %w", f.Runs[i].Label, err)
				return
			}
			results[i] = s.Run()
			if err := s.CheckInvariants(); err != nil {
				errs[i] = fmt.Errorf("run %q: %w", f.Runs[i].Label, err)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &FigureResult{Figure: f, Results: results}, nil
}
