// Package experiment regenerates every table and figure of the
// paper's evaluation (§IV): it builds the run matrix behind each
// figure, executes the runs in parallel across CPU cores (each run
// is an independent deterministic simulation), and renders the same
// rows/series the paper reports.
//
// Scale: figures can be generated at a fraction of the paper's node
// count. A scale of 1 is the paper's setting (n = 2000 … 12000, one
// simulated day); benches default to smaller scales so the whole
// suite completes on a laptop. Shapes — protocol ordering, λ trends,
// churn robustness — are stable across scales (n ≳ 300); absolute
// values drift, which EXPERIMENTS.md quantifies.
package experiment

import (
	"fmt"
	"sort"

	"pidcan/internal/cloud"
	"pidcan/internal/sim"
)

// Run is one simulation of a figure's run matrix.
type Run struct {
	Label string
	Cfg   cloud.Config
}

// Figure is a regenerable table or figure of the paper.
type Figure struct {
	ID    string
	Title string
	// Kind selects the renderer: "series" (T/F/fairness over time),
	// "table3" (scalability table) or "ablation".
	Kind string
	Runs []Run
}

// scaleNodes applies the node-count scale with a floor that keeps
// the index structure meaningful.
func scaleNodes(n int, scale float64) int {
	s := int(float64(n) * scale)
	if s < 64 {
		s = 64
	}
	return s
}

// fig457Protocols is the six-protocol matrix of Figs. 5–7.
var fig457Protocols = []cloud.Protocol{
	cloud.SIDCAN, cloud.HIDCAN, cloud.SIDCANSoS, cloud.HIDCANSoS,
	cloud.SIDCANVD, cloud.Newscast,
}

// Fig4 builds Fig. 4 (a: λ=0.84, b: λ=0.25): Newscast vs SID-CAN vs
// KHDN-CAN throughput ratio over one day.
func Fig4(sub string, seed uint64, scale float64) Figure {
	lambda := 0.84
	if sub == "b" {
		lambda = 0.25
	}
	f := Figure{
		ID:    "fig4" + sub,
		Title: fmt.Sprintf("Fig. 4(%s): T-Ratio under demand ratio %.2f (Newscast vs SID-CAN vs KHDN-CAN)", sub, lambda),
		Kind:  "series",
	}
	for _, p := range []cloud.Protocol{cloud.Newscast, cloud.SIDCAN, cloud.KHDNCAN} {
		cfg := cloud.DefaultConfig(p, scaleNodes(2000, scale), lambda)
		cfg.Seed = seed
		f.Runs = append(f.Runs, Run{Label: p.String(), Cfg: cfg})
	}
	return f
}

// Fig567 builds Figs. 5, 6 and 7: the six-protocol comparison at
// λ = 1, 0.5 and 0.25 over throughput ratio, failed-task ratio and
// fairness.
func Fig567(fig int, seed uint64, scale float64) Figure {
	var lambda float64
	switch fig {
	case 5:
		lambda = 1
	case 6:
		lambda = 0.5
	case 7:
		lambda = 0.25
	default:
		panic(fmt.Sprintf("experiment: Fig567(%d)", fig))
	}
	f := Figure{
		ID:    fmt.Sprintf("fig%d", fig),
		Title: fmt.Sprintf("Fig. %d: discovery protocols at λ=%.2g (T-Ratio / F-Ratio / fairness)", fig, lambda),
		Kind:  "series",
	}
	for _, p := range fig457Protocols {
		cfg := cloud.DefaultConfig(p, scaleNodes(2000, scale), lambda)
		cfg.Seed = seed
		f.Runs = append(f.Runs, Run{Label: p.String(), Cfg: cfg})
	}
	return f
}

// Table3 builds Table III: HID-CAN scalability at λ=0.5 across
// system scales 2000 … 12000.
func Table3(seed uint64, scale float64) Figure {
	f := Figure{
		ID:    "t3",
		Title: "Table III: system scalability of HID-CAN (λ=0.5)",
		Kind:  "table3",
	}
	for _, n := range []int{2000, 4000, 6000, 8000, 10000, 12000} {
		cfg := cloud.DefaultConfig(cloud.HIDCAN, scaleNodes(n, scale), 0.5)
		cfg.Seed = seed
		f.Runs = append(f.Runs, Run{Label: fmt.Sprintf("%d", cfg.Nodes), Cfg: cfg})
	}
	return f
}

// Fig8 builds Fig. 8: HID-CAN under node churn (dynamic degree 0,
// 25%, 50%, 75%, 95%) at λ=0.5.
func Fig8(seed uint64, scale float64) Figure {
	f := Figure{
		ID:    "fig8",
		Title: "Fig. 8: HID-CAN under different node churning rates (λ=0.5)",
		Kind:  "series",
	}
	for _, deg := range []float64{0, 0.25, 0.50, 0.75, 0.95} {
		cfg := cloud.DefaultConfig(cloud.HIDCAN, scaleNodes(2000, scale), 0.5)
		cfg.Seed = seed
		cfg.Churn.Degree = deg
		label := "static"
		if deg > 0 {
			label = fmt.Sprintf("dynamic %.0f%%", deg*100)
		}
		f.Runs = append(f.Runs, Run{Label: label, Cfg: cfg})
	}
	return f
}

// AblationL builds ablation A2: diffusion fan-out L ∈ {1,2,3} for
// both diffusion methods at λ=0.5.
func AblationL(seed uint64, scale float64) Figure {
	f := Figure{
		ID:    "a2",
		Title: "Ablation A2: index-diffusion fan-out L and method (λ=0.5)",
		Kind:  "ablation",
	}
	for _, p := range []cloud.Protocol{cloud.HIDCAN, cloud.SIDCAN} {
		for _, l := range []int{1, 2, 3} {
			cfg := cloud.DefaultConfig(p, scaleNodes(1000, scale), 0.5)
			cfg.Seed = seed
			cfg.Core.L = l
			f.Runs = append(f.Runs, Run{Label: fmt.Sprintf("%s L=%d", p, l), Cfg: cfg})
		}
	}
	return f
}

// AblationSelection builds ablation A3: candidate selection policy.
func AblationSelection(seed uint64, scale float64) Figure {
	f := Figure{
		ID:    "a3",
		Title: "Ablation A3: best-fit vs first-fit vs max-share selection (HID-CAN, λ=0.5)",
		Kind:  "ablation",
	}
	for _, pol := range []cloud.SelectionPolicy{cloud.BestFit, cloud.FirstFit, cloud.MaxShare} {
		cfg := cloud.DefaultConfig(cloud.HIDCAN, scaleNodes(1000, scale), 0.5)
		cfg.Seed = seed
		cfg.Selection = pol
		f.Runs = append(f.Runs, Run{Label: pol.String(), Cfg: cfg})
	}
	return f
}

// AblationKHDN builds the KHDN hop-radius sweep referenced from
// khdn.Default.
func AblationKHDN(seed uint64, scale float64) Figure {
	f := Figure{
		ID:    "aK",
		Title: "Ablation: KHDN-CAN hop radius K (λ=0.25)",
		Kind:  "ablation",
	}
	for _, k := range []int{1, 2, 3, 4} {
		cfg := cloud.DefaultConfig(cloud.KHDNCAN, scaleNodes(1000, scale), 0.25)
		cfg.Seed = seed
		cfg.KHDN.K = k
		f.Runs = append(f.Runs, Run{Label: fmt.Sprintf("K=%d", k), Cfg: cfg})
	}
	return f
}

// AblationPlacement builds the placement-semantics ablation: the
// paper's dispatch-and-dilute model vs host-side re-validation.
func AblationPlacement(seed uint64, scale float64) Figure {
	f := Figure{
		ID:    "aP",
		Title: "Ablation: placement semantics (dispatch vs re-validate, HID-CAN λ=0.5)",
		Kind:  "ablation",
	}
	for _, validate := range []bool{true, false} {
		cfg := cloud.DefaultConfig(cloud.HIDCAN, scaleNodes(1000, scale), 0.5)
		cfg.Seed = seed
		cfg.ValidatePlacement = validate
		label := "re-validate (default)"
		if !validate {
			label = "dispatch-and-dilute"
		}
		f.Runs = append(f.Runs, Run{Label: label, Cfg: cfg})
	}
	return f
}

// AblationDutyCache builds the duty-cache interpretation ablation:
// the repaired Algorithm 3 (local γ search) vs the literal
// pseudo-code.
func AblationDutyCache(seed uint64, scale float64) Figure {
	f := Figure{
		ID:    "aD",
		Title: "Ablation: duty-node cache search (repaired vs literal Alg. 3, HID-CAN λ=0.5)",
		Kind:  "ablation",
	}
	for _, skip := range []bool{false, true} {
		cfg := cloud.DefaultConfig(cloud.HIDCAN, scaleNodes(1000, scale), 0.5)
		cfg.Seed = seed
		cfg.Core.SkipDutyCache = skip
		label := "search duty γ (repaired)"
		if skip {
			label = "skip duty γ (literal)"
		}
		f.Runs = append(f.Runs, Run{Label: label, Cfg: cfg})
	}
	return f
}

// AblationCheckpoint builds the §VI future-work ablation: HID-CAN
// under 50% churn with and without checkpoint-based task recovery.
func AblationCheckpoint(seed uint64, scale float64) Figure {
	f := Figure{
		ID:    "aC",
		Title: "Ablation: checkpoint fault-tolerance under 50% churn (HID-CAN, λ=0.5)",
		Kind:  "ablation",
	}
	for _, ckpt := range []float64{0, 600} {
		cfg := cloud.DefaultConfig(cloud.HIDCAN, scaleNodes(1000, scale), 0.5)
		cfg.Seed = seed
		cfg.Churn.Degree = 0.5
		cfg.CheckpointSec = ckpt
		label := "no checkpointing"
		if ckpt > 0 {
			label = fmt.Sprintf("checkpoint %.0fs", ckpt)
		}
		f.Runs = append(f.Runs, Run{Label: label, Cfg: cfg})
	}
	return f
}

// AblationAggregate builds the SoS cmax-source ablation: the static
// Table-I maximum versus the gossip-aggregated per-node estimate of
// paper ref [23].
func AblationAggregate(seed uint64, scale float64) Figure {
	f := Figure{
		ID:    "aS",
		Title: "Ablation: SoS slack bound — static cmax vs gossip-aggregated estimate (HID-CAN+SoS, λ=0.5)",
		Kind:  "ablation",
	}
	for _, agg := range []bool{false, true} {
		cfg := cloud.DefaultConfig(cloud.HIDCANSoS, scaleNodes(1000, scale), 0.5)
		cfg.Seed = seed
		cfg.AggregatedCMax = agg
		label := "static cmax"
		if agg {
			label = "aggregated cmax"
		}
		f.Runs = append(f.Runs, Run{Label: label, Cfg: cfg})
	}
	return f
}

// builders maps figure IDs to constructors.
var builders = map[string]func(seed uint64, scale float64) Figure{
	"fig4a": func(s uint64, sc float64) Figure { return Fig4("a", s, sc) },
	"fig4b": func(s uint64, sc float64) Figure { return Fig4("b", s, sc) },
	"fig5":  func(s uint64, sc float64) Figure { return Fig567(5, s, sc) },
	"fig6":  func(s uint64, sc float64) Figure { return Fig567(6, s, sc) },
	"fig7":  func(s uint64, sc float64) Figure { return Fig567(7, s, sc) },
	"t3":    Table3,
	"fig8":  Fig8,
	"a2":    AblationL,
	"a3":    AblationSelection,
	"aK":    AblationKHDN,
	"aP":    AblationPlacement,
	"aD":    AblationDutyCache,
	"aC":    AblationCheckpoint,
	"aS":    AblationAggregate,
}

// IDs returns all known figure IDs in stable order.
func IDs() []string {
	out := make([]string, 0, len(builders))
	for id := range builders {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Get builds the figure with the given ID.
func Get(id string, seed uint64, scale float64) (Figure, error) {
	b, ok := builders[id]
	if !ok {
		return Figure{}, fmt.Errorf("experiment: unknown figure %q (have %v)", id, IDs())
	}
	if scale <= 0 || scale > 1 {
		return Figure{}, fmt.Errorf("experiment: scale %v outside (0,1]", scale)
	}
	return b(seed, scale), nil
}

// ShortenFor reduces every run's duration (used by unit tests and
// smoke benches; the paper's day-long duration stays the default).
func (f Figure) ShortenFor(d sim.Time) Figure {
	for i := range f.Runs {
		f.Runs[i].Cfg.Duration = d
	}
	return f
}
