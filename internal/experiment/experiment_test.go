package experiment

import (
	"math"
	"strings"
	"testing"

	"pidcan/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"a2", "a3", "aC", "aD", "aK", "aP", "aS", "fig4a", "fig4b", "fig5", "fig6", "fig7", "fig8", "t3"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestGetValidatesAllFigures(t *testing.T) {
	for _, id := range IDs() {
		f, err := Get(id, 1, 0.1)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if f.ID != id {
			t.Errorf("figure %s has ID %s", id, f.ID)
		}
		if len(f.Runs) == 0 || f.Title == "" {
			t.Errorf("figure %s degenerate: %+v", id, f)
		}
		for _, r := range f.Runs {
			if err := r.Cfg.Validate(); err != nil {
				t.Errorf("figure %s run %q invalid: %v", id, r.Label, err)
			}
		}
	}
}

func TestGetErrors(t *testing.T) {
	if _, err := Get("nope", 1, 0.5); err == nil {
		t.Error("unknown ID accepted")
	}
	if _, err := Get("fig5", 1, 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Get("fig5", 1, 1.5); err == nil {
		t.Error("over-scale accepted")
	}
}

func TestScaleFloorsNodes(t *testing.T) {
	f, err := Get("fig5", 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f.Runs {
		if r.Cfg.Nodes < 64 {
			t.Errorf("run %q has %d nodes, floor is 64", r.Label, r.Cfg.Nodes)
		}
	}
}

func TestFigureContents(t *testing.T) {
	f, _ := Get("fig4a", 1, 0.1)
	if len(f.Runs) != 3 {
		t.Errorf("fig4a runs = %d", len(f.Runs))
	}
	if f.Runs[0].Cfg.Lambda != 0.84 {
		t.Errorf("fig4a lambda = %v", f.Runs[0].Cfg.Lambda)
	}
	f, _ = Get("fig4b", 1, 0.1)
	if f.Runs[0].Cfg.Lambda != 0.25 {
		t.Errorf("fig4b lambda = %v", f.Runs[0].Cfg.Lambda)
	}
	f, _ = Get("fig6", 1, 0.1)
	if len(f.Runs) != 6 || f.Runs[0].Cfg.Lambda != 0.5 {
		t.Errorf("fig6 = %+v", f)
	}
	f, _ = Get("t3", 1, 0.1)
	if len(f.Runs) != 6 || f.Kind != "table3" {
		t.Errorf("t3 = %+v", f)
	}
	// Scaled node counts keep the 1:2:…:6 progression shape.
	if f.Runs[5].Cfg.Nodes <= f.Runs[0].Cfg.Nodes {
		t.Error("t3 scales not increasing")
	}
	f, _ = Get("fig8", 1, 0.1)
	if len(f.Runs) != 5 {
		t.Errorf("fig8 runs = %d", len(f.Runs))
	}
	if f.Runs[0].Cfg.Churn.Degree != 0 || f.Runs[4].Cfg.Churn.Degree != 0.95 {
		t.Error("fig8 churn degrees wrong")
	}
}

func TestExecuteAndRenderSmallFigure(t *testing.T) {
	f, err := Get("fig4b", 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	f = f.ShortenFor(2 * sim.Hour)
	fr, err := Execute(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Results) != 3 {
		t.Fatalf("results = %d", len(fr.Results))
	}
	for i, res := range fr.Results {
		if res.Rec.Generated == 0 {
			t.Errorf("run %d generated nothing", i)
		}
	}
	var b strings.Builder
	fr.Render(&b)
	out := b.String()
	for _, want := range []string{"T-Ratio", "F-Ratio", "Fairness", "Newscast", "SID-CAN", "KHDN-CAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if fr.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestExecuteTable3Render(t *testing.T) {
	f, err := Get("t3", 3, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	f = f.ShortenFor(1 * sim.Hour)
	// Trim to two scales for test speed.
	f.Runs = f.Runs[:2]
	fr, err := Execute(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fr.Render(&b)
	out := b.String()
	for _, want := range []string{"throughput ratio", "failed task ratio", "fairness index", "msg delivery cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 render missing %q:\n%s", want, out)
		}
	}
}

func TestExecutePropagatesErrors(t *testing.T) {
	f, _ := Get("fig8", 1, 0.05)
	f.Runs[0].Cfg.Nodes = 1 // invalid
	if _, err := Execute(f, 0); err == nil {
		t.Error("invalid run config did not surface")
	}
}

// Determinism across parallel execution: run order must not affect
// results (each run is hermetic).
func TestParallelDeterminism(t *testing.T) {
	build := func() Figure {
		f, _ := Get("fig4b", 5, 0.05)
		return f.ShortenFor(1 * sim.Hour)
	}
	fr1, err := Execute(build(), 1)
	if err != nil {
		t.Fatal(err)
	}
	fr2, err := Execute(build(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fr1.Results {
		a, b := fr1.Results[i].Rec, fr2.Results[i].Rec
		if a.Generated != b.Generated || a.Finished != b.Finished || a.MessageTotal() != b.MessageTotal() {
			t.Errorf("run %d diverged across pool widths", i)
		}
	}
}

func TestExecuteReplicated(t *testing.T) {
	build := func(seed uint64) (Figure, error) {
		f, err := Get("fig4b", seed, 0.05)
		if err != nil {
			return Figure{}, err
		}
		return f.ShortenFor(1 * sim.Hour), nil
	}
	rep, err := ExecuteReplicated(build, []uint64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerSeed) != 3 || len(rep.PerSeed[0]) != 3 {
		t.Fatalf("shape = %dx%d", len(rep.PerSeed), len(rep.PerSeed[0]))
	}
	// Different seeds must yield different workloads.
	if rep.PerSeed[0][0].Rec.Generated == rep.PerSeed[1][0].Rec.Generated &&
		rep.PerSeed[0][0].Rec.MessageTotal() == rep.PerSeed[1][0].Rec.MessageTotal() {
		t.Error("seed replications look identical")
	}
	var b strings.Builder
	rep.Render(&b)
	if !strings.Contains(b.String(), "±") || !strings.Contains(b.String(), "3 seed replications") {
		t.Errorf("render missing stats:\n%s", b.String())
	}
	// Error paths.
	if _, err := ExecuteReplicated(build, nil, 0); err == nil {
		t.Error("no seeds accepted")
	}
	badBuild := func(seed uint64) (Figure, error) {
		f, _ := build(seed)
		f.Runs[0].Cfg.Nodes = 1
		return f, nil
	}
	if _, err := ExecuteReplicated(badBuild, []uint64{1}, 0); err == nil {
		t.Error("invalid config not surfaced")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 6})
	if m != 4 || math.Abs(s-2) > 1e-12 {
		t.Errorf("meanStd = %v, %v", m, s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty meanStd wrong")
	}
	if m, s := meanStd([]float64{5}); m != 5 || s != 0 {
		t.Error("single meanStd wrong")
	}
}
