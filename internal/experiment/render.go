package experiment

import (
	"fmt"
	"io"
	"strings"

	"pidcan/internal/metrics"
)

// Render writes the figure's data in the paper's presentation:
// per-protocol hourly series for the figures, the metric×scale grid
// for Table III, and a summary grid for ablations.
func (fr *FigureResult) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", fr.Title)
	switch fr.Kind {
	case "table3":
		fr.renderTable3(w)
	case "ablation":
		fr.renderSummary(w)
	default:
		fr.renderSeries(w, "T-Ratio", func(s metrics.Sample) float64 { return s.TRatio })
		fr.renderSeries(w, "F-Ratio", func(s metrics.Sample) float64 { return s.FRatio })
		fr.renderSeries(w, "Fairness", func(s metrics.Sample) float64 { return s.Fairness })
		fr.renderSummary(w)
	}
}

// renderSeries prints one metric as rows of hourly values, one row
// per run — the textual equivalent of the paper's line plots.
func (fr *FigureResult) renderSeries(w io.Writer, name string, pick func(metrics.Sample) float64) {
	fmt.Fprintf(w, "-- %s over time (hours) --\n", name)
	// Header from the first run's sample times.
	if len(fr.Results) == 0 {
		return
	}
	ref := fr.Results[0].Rec.Series()
	fmt.Fprintf(w, "%-18s", "protocol\\hour")
	for _, s := range ref {
		fmt.Fprintf(w, "%7.0f", s.At.Hours())
	}
	fmt.Fprintln(w)
	for i, res := range fr.Results {
		fmt.Fprintf(w, "%-18s", fr.Runs[i].Label)
		for _, s := range res.Rec.Series() {
			fmt.Fprintf(w, "%7.3f", pick(s))
		}
		fmt.Fprintln(w)
	}
}

// renderTable3 prints Table III's grid: metrics down, scales across.
func (fr *FigureResult) renderTable3(w io.Writer) {
	fmt.Fprintf(w, "%-20s", "metric\\scale")
	for i := range fr.Results {
		fmt.Fprintf(w, "%10s", fr.Runs[i].Label)
	}
	fmt.Fprintln(w)
	row := func(name string, f func(i int) string) {
		fmt.Fprintf(w, "%-20s", name)
		for i := range fr.Results {
			fmt.Fprintf(w, "%10s", f(i))
		}
		fmt.Fprintln(w)
	}
	row("throughput ratio", func(i int) string {
		return fmt.Sprintf("%.3f", fr.Results[i].Rec.TRatio())
	})
	row("failed task ratio", func(i int) string {
		return fmt.Sprintf("%.1f%%", fr.Results[i].Rec.FRatio()*100)
	})
	row("fairness index", func(i int) string {
		return fmt.Sprintf("%.3f", fr.Results[i].Rec.Fairness())
	})
	row("msg delivery cost", func(i int) string {
		n := fr.Results[i].FinalNodes
		return fmt.Sprintf("%.0f", fr.Results[i].Rec.DeliveryCostPerNode(n))
	})
}

// renderSummary prints the end-of-run scalars for every run.
func (fr *FigureResult) renderSummary(w io.Writer) {
	fmt.Fprintf(w, "-- end-of-run summary --\n")
	fmt.Fprintf(w, "%-22s %8s %8s %9s %9s %9s %9s %10s %11s\n",
		"run", "T-Ratio", "F-Ratio", "unplaced", "fairness", "msg/node", "tasks", "hops/query", "delay-p95/s")
	for i, res := range fr.Results {
		rec := res.Rec
		fmt.Fprintf(w, "%-22s %8.3f %8.4f %9.3f %9.3f %9.0f %9d %10.1f %11.2f\n",
			fr.Runs[i].Label, rec.TRatio(), rec.FRatio(), rec.UnplacedRatio(), rec.Fairness(),
			rec.DeliveryCostPerNode(res.FinalNodes), rec.Generated, rec.MeanQueryHops(),
			rec.QueryDelayStats().P95)
	}
}

// Summary returns the end-of-run scalars as a string (bench output).
func (fr *FigureResult) Summary() string {
	var b strings.Builder
	fr.renderSummary(&b)
	return b.String()
}
