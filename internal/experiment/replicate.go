package experiment

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"pidcan/internal/cloud"
)

// Replicated holds per-run statistics across seed replications.
type Replicated struct {
	Figure
	// Seeds are the replication seeds, in order.
	Seeds []uint64
	// PerSeed[s][r] is the result of run r under seed s.
	PerSeed [][]*cloud.Result
}

// ExecuteReplicated runs the figure once per seed (each replication
// re-derives every run's config with that seed) on a shared worker
// pool and returns all results for statistical summaries. Replicated
// figures quantify the run-to-run variance that a single-seed figure
// hides.
func ExecuteReplicated(build func(seed uint64) (Figure, error), seeds []uint64, workers int) (*Replicated, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	first, err := build(seeds[0])
	if err != nil {
		return nil, err
	}
	rep := &Replicated{
		Figure:  first,
		Seeds:   append([]uint64(nil), seeds...),
		PerSeed: make([][]*cloud.Result, len(seeds)),
	}
	type job struct{ s, r int }
	var jobs []job
	figs := make([]Figure, len(seeds))
	for si, seed := range seeds {
		f, err := build(seed)
		if err != nil {
			return nil, err
		}
		if len(f.Runs) != len(first.Runs) {
			return nil, fmt.Errorf("experiment: replication %d has %d runs, want %d", si, len(f.Runs), len(first.Runs))
		}
		figs[si] = f
		rep.PerSeed[si] = make([]*cloud.Result, len(f.Runs))
		for ri := range f.Runs {
			jobs = append(jobs, job{si, ri})
		}
	}
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ji, j := range jobs {
		ji, j := ji, j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			s, err := cloud.New(figs[j.s].Runs[j.r].Cfg)
			if err != nil {
				errs[ji] = err
				return
			}
			rep.PerSeed[j.s][j.r] = s.Run()
			if err := s.CheckInvariants(); err != nil {
				errs[ji] = err
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// meanStd returns the mean and sample standard deviation of xs.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)-1))
}

// Render writes per-run mean ± sd of the headline metrics across the
// replications.
func (rep *Replicated) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %d seed replications ==\n", rep.Title, len(rep.Seeds))
	fmt.Fprintf(w, "%-22s %17s %17s %17s %17s\n",
		"run", "T-Ratio", "F-Ratio", "unplaced", "fairness")
	for ri := range rep.Runs {
		var ts, fs, us, js []float64
		for si := range rep.Seeds {
			rec := rep.PerSeed[si][ri].Rec
			ts = append(ts, rec.TRatio())
			fs = append(fs, rec.FRatio())
			us = append(us, rec.UnplacedRatio())
			js = append(js, rec.Fairness())
		}
		cell := func(xs []float64) string {
			m, s := meanStd(xs)
			return fmt.Sprintf("%.3f ± %.3f", m, s)
		}
		fmt.Fprintf(w, "%-22s %17s %17s %17s %17s\n",
			rep.Runs[ri].Label, cell(ts), cell(fs), cell(us), cell(js))
	}
}
