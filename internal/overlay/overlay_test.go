package overlay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pidcan/internal/sim"
	"pidcan/internal/space"
)

func build(t testing.TB, dim, n int, seed uint64) *Network {
	t.Helper()
	nw := New(dim, 0, sim.NewRNG(seed, sim.StreamOverlay))
	for i := 1; i < n; i++ {
		if _, err := nw.Join(NodeID(i)); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	return nw
}

func TestJoinLeaveBasics(t *testing.T) {
	nw := build(t, 2, 16, 1)
	if nw.Size() != 16 {
		t.Fatalf("Size = %d", nw.Size())
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	re, err := nw.Leave(7)
	if err != nil {
		t.Fatal(err)
	}
	if re.Departed != 7 {
		t.Errorf("reassignment = %+v", re)
	}
	if nw.Contains(7) || nw.Size() != 15 {
		t.Error("leave did not remove the node")
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(nw.Nodes()) != 15 {
		t.Errorf("Nodes len = %d", len(nw.Nodes()))
	}
}

func TestOwnerAtCoversSpace(t *testing.T) {
	nw := build(t, 3, 64, 2)
	rng := sim.NewRNG(9, 99)
	for i := 0; i < 200; i++ {
		p := make(space.Point, 3)
		for k := range p {
			p[k] = rng.Float64()
		}
		id := nw.OwnerAt(p)
		z, ok := nw.ZoneOf(id)
		if !ok || !z.Contains(p) {
			t.Fatalf("OwnerAt(%v) = %d with zone %v", p, id, z)
		}
	}
}

func TestNeighborsAlong(t *testing.T) {
	nw := build(t, 2, 32, 3)
	for _, id := range nw.Nodes() {
		all := nw.Neighbors(id)
		count := 0
		for dim := 0; dim < 2; dim++ {
			for _, pos := range []bool{true, false} {
				for _, nb := range nw.NeighborsAlong(id, dim, pos) {
					count++
					found := false
					for _, a := range all {
						if a.Owner == nb && a.Adj.Dim == dim && a.Adj.Positive == pos {
							found = true
						}
					}
					if !found {
						t.Fatalf("NeighborsAlong(%d,%d,%v) returned %d not in Neighbors", id, dim, pos, nb)
					}
				}
			}
		}
		if count != len(all) {
			t.Fatalf("node %d: along-count %d != total %d", id, count, len(all))
		}
	}
}

func TestMaxIndexExponent(t *testing.T) {
	nw := New(2, 0, sim.NewRNG(1, sim.StreamOverlay))
	if nw.MaxIndexExponent() != 0 {
		t.Errorf("single node exponent = %d", nw.MaxIndexExponent())
	}
	nw = build(t, 2, 256, 4) // n^(1/2) = 16 → K = 4
	if got := nw.MaxIndexExponent(); got != 4 {
		t.Errorf("K = %d, want 4", got)
	}
}

func TestIndexLinksStructure(t *testing.T) {
	nw := build(t, 2, 256, 5)
	for _, id := range nw.Nodes()[:32] {
		links, ok := nw.IndexLinks(id)
		if !ok {
			t.Fatalf("IndexLinks(%d) not ok", id)
		}
		z, _ := nw.ZoneOf(id)
		for dim := 0; dim < 2; dim++ {
			for _, set := range []struct {
				hops []Hop
				pos  bool
			}{{links.Pos[dim], true}, {links.Neg[dim], false}} {
				wantDist := 1
				for _, h := range set.hops {
					if h.Dist != wantDist {
						t.Fatalf("node %d dim %d: dist %d, want %d", id, dim, h.Dist, wantDist)
					}
					wantDist <<= 1
					hz, ok := nw.ZoneOf(h.ID)
					if !ok {
						t.Fatalf("link target %d gone", h.ID)
					}
					// Link targets lie strictly on the claimed side.
					if set.pos && hz.Lo[dim] < z.Hi[dim] && hz.Hi[dim] <= z.Hi[dim] {
						t.Fatalf("positive link target %d not beyond node %d along dim %d", h.ID, id, dim)
					}
					if !set.pos && hz.Hi[dim] > z.Lo[dim] && hz.Lo[dim] >= z.Lo[dim] {
						t.Fatalf("negative link target %d not below node %d along dim %d", h.ID, id, dim)
					}
				}
			}
		}
	}
	if _, ok := nw.IndexLinks(9999); ok {
		t.Error("IndexLinks of unknown node should fail")
	}
}

func TestWalkDim(t *testing.T) {
	nw := build(t, 2, 64, 6)
	for _, id := range nw.Nodes()[:16] {
		// Walking 0 steps stays put (returns NoNode/0 taken).
		reached, taken := nw.WalkDim(id, 0, true, 0)
		if taken != 0 || reached != NoNode {
			t.Fatalf("0-step walk = %v, %d", reached, taken)
		}
		// A long walk must stop at the edge.
		reached, taken = nw.WalkDim(id, 0, true, 10000)
		if taken == 10000 {
			t.Fatalf("walk never hit the edge")
		}
		if taken > 0 {
			z, ok := nw.ZoneOf(reached)
			if !ok {
				t.Fatalf("walk reached unknown node")
			}
			if z.Hi[0] != 1 {
				t.Fatalf("edge walk ended at %v, not at the boundary", z)
			}
		}
	}
	if reached, taken := nw.WalkDim(9999, 0, true, 3); reached != NoNode || taken != 0 {
		t.Error("WalkDim of unknown node should be empty")
	}
}

func TestRouteReachesTarget(t *testing.T) {
	nw := build(t, 2, 128, 7)
	rng := sim.NewRNG(3, 42)
	nodes := nw.Nodes()
	for i := 0; i < 100; i++ {
		origin := nodes[rng.IntN(len(nodes))]
		target := make(space.Point, 2)
		for k := range target {
			target[k] = rng.Float64()
		}
		path, err := nw.Route(origin, target)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		dest := path.Dest()
		if dest == NoNode {
			dest = origin
		}
		z, _ := nw.ZoneOf(dest)
		if !z.Contains(target) {
			t.Fatalf("route ended at %d whose zone %v misses %v", dest, z, target)
		}
	}
}

func TestRouteAdjacentReachesTarget(t *testing.T) {
	nw := build(t, 3, 64, 8)
	rng := sim.NewRNG(4, 42)
	nodes := nw.Nodes()
	for i := 0; i < 50; i++ {
		origin := nodes[rng.IntN(len(nodes))]
		target := make(space.Point, 3)
		for k := range target {
			target[k] = rng.Float64()
		}
		path, err := nw.RouteAdjacent(origin, target)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		dest := path.Dest()
		if dest == NoNode {
			dest = origin
		}
		z, _ := nw.ZoneOf(dest)
		if !z.Contains(target) {
			t.Fatalf("adjacent route ended off-target")
		}
	}
}

func TestRouteSelfZone(t *testing.T) {
	nw := build(t, 2, 16, 9)
	id := nw.Nodes()[3]
	z, _ := nw.ZoneOf(id)
	path, err := nw.Route(id, z.Center())
	if err != nil || path.Len() != 0 || path.Dest() != NoNode {
		t.Errorf("self-route = %+v, %v", path, err)
	}
}

func TestRouteErrors(t *testing.T) {
	nw := build(t, 2, 8, 10)
	if _, err := nw.Route(999, space.Point{0.5, 0.5}); err == nil {
		t.Error("expected error for unknown origin")
	}
	if _, err := nw.Route(0, space.Point{0.5}); err == nil {
		t.Error("expected error for dimension mismatch")
	}
}

// Index-link routing must beat (or match) adjacent routing on hop
// count on average — the INSCAN speedup.
func TestRouteHopAdvantage(t *testing.T) {
	nw := build(t, 2, 1024, 11)
	rng := sim.NewRNG(5, 42)
	nodes := nw.Nodes()
	var linkHops, adjHops int
	const trials = 200
	for i := 0; i < trials; i++ {
		origin := nodes[rng.IntN(len(nodes))]
		target := space.Point{rng.Float64(), rng.Float64()}
		p1, err := nw.Route(origin, target)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := nw.RouteAdjacent(origin, target)
		if err != nil {
			t.Fatal(err)
		}
		linkHops += p1.Len()
		adjHops += p2.Len()
	}
	if linkHops >= adjHops {
		t.Errorf("index-link routing (%d hops) not faster than adjacent (%d hops)", linkHops, adjHops)
	}
	// Theorem-1 shape: mean indexed hops should be well under the
	// O(n^(1/d)) adjacent mean.
	t.Logf("mean hops: indexed %.2f adjacent %.2f", float64(linkHops)/trials, float64(adjHops)/trials)
}

// Theorem 1: routing delay is O(log2 n). Check that mean hops grow
// sub-linearly in n^(1/d) by comparing two network sizes.
func TestRouteLogarithmicGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	meanHops := func(n int) float64 {
		nw := build(t, 2, n, 12)
		rng := sim.NewRNG(6, 42)
		nodes := nw.Nodes()
		total := 0
		const trials = 150
		for i := 0; i < trials; i++ {
			origin := nodes[rng.IntN(len(nodes))]
			target := space.Point{rng.Float64(), rng.Float64()}
			p, err := nw.Route(origin, target)
			if err != nil {
				t.Fatal(err)
			}
			total += p.Len()
		}
		return float64(total) / trials
	}
	small, large := meanHops(256), meanHops(4096)
	// n grew 16x (n^(1/2) grew 4x); logarithmic hops should grow by
	// far less than 4x.
	if large > small*2.5 {
		t.Errorf("hops grew from %.2f to %.2f — faster than logarithmic", small, large)
	}
	t.Logf("mean hops: n=256 %.2f, n=4096 %.2f", small, large)
}

func TestRangeOwnersDelegation(t *testing.T) {
	nw := build(t, 2, 32, 13)
	owners := nw.RangeOwners(space.Point{0, 0}, space.Point{1, 1})
	if len(owners) != 32 {
		t.Errorf("full-range owners = %d, want 32", len(owners))
	}
}

// Property: under random churn the overlay stays valid and routing
// still terminates at the right zone.
func TestChurnRoutingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nw := New(2, 0, sim.NewRNG(uint64(seed)+1, sim.StreamOverlay))
		next := NodeID(1)
		alive := []NodeID{0}
		for step := 0; step < 150; step++ {
			if len(alive) < 3 || r.Float64() < 0.55 {
				if _, err := nw.Join(next); err != nil {
					return false
				}
				alive = append(alive, next)
				next++
			} else {
				i := r.Intn(len(alive))
				if _, err := nw.Leave(alive[i]); err != nil {
					return false
				}
				alive = append(alive[:i], alive[i+1:]...)
			}
		}
		if nw.Validate() != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			origin := alive[r.Intn(len(alive))]
			target := space.Point{r.Float64(), r.Float64()}
			path, err := nw.Route(origin, target)
			if err != nil {
				return false
			}
			dest := path.Dest()
			if dest == NoNode {
				dest = origin
			}
			z, ok := nw.ZoneOf(dest)
			if !ok || !z.Contains(target) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: every index link target is a genuine 2^k-hop walk result.
func TestIndexLinksMatchWalk(t *testing.T) {
	f := func(seed int64) bool {
		nw := New(3, 0, sim.NewRNG(uint64(seed)%1000+1, sim.StreamOverlay))
		for i := 1; i < 60; i++ {
			if _, err := nw.Join(NodeID(i)); err != nil {
				return false
			}
		}
		for _, id := range nw.Nodes()[:10] {
			links, _ := nw.IndexLinks(id)
			for dim := 0; dim < 3; dim++ {
				for _, h := range links.Pos[dim] {
					got, taken := nw.WalkDim(id, dim, true, h.Dist)
					if taken != h.Dist || got != h.ID {
						return false
					}
				}
				for _, h := range links.Neg[dim] {
					got, taken := nw.WalkDim(id, dim, false, h.Dist)
					if taken != h.Dist || got != h.ID {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHopDistanceStatistics(t *testing.T) {
	// Sanity-check the O(log) claim numerically: with n=1024, d=2,
	// mean indexed hop count should be below 3·log2(n^(1/d)) + d.
	nw := build(t, 2, 1024, 14)
	rng := sim.NewRNG(7, 42)
	nodes := nw.Nodes()
	total := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		origin := nodes[rng.IntN(len(nodes))]
		target := space.Point{rng.Float64(), rng.Float64()}
		p, err := nw.Route(origin, target)
		if err != nil {
			t.Fatal(err)
		}
		total += p.Len()
	}
	mean := float64(total) / trials
	bound := 3*math.Log2(math.Sqrt(1024)) + 2
	if mean > bound {
		t.Errorf("mean hops %.2f above logarithmic bound %.2f", mean, bound)
	}
}

func BenchmarkRouteIndexed(b *testing.B) {
	nw := build(b, 2, 2048, 15)
	rng := sim.NewRNG(8, 42)
	nodes := nw.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		origin := nodes[rng.IntN(len(nodes))]
		target := space.Point{rng.Float64(), rng.Float64()}
		if _, err := nw.Route(origin, target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteAdjacent(b *testing.B) {
	nw := build(b, 2, 2048, 15)
	rng := sim.NewRNG(8, 42)
	nodes := nw.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		origin := nodes[rng.IntN(len(nodes))]
		target := space.Point{rng.Float64(), rng.Float64()}
		if _, err := nw.RouteAdjacent(origin, target); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexLinks(b *testing.B) {
	nw := build(b, 5, 2048, 16)
	nodes := nw.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := nw.IndexLinks(nodes[i%len(nodes)]); !ok {
			b.Fatal("missing links")
		}
	}
}

func BenchmarkJoinLeave(b *testing.B) {
	nw := build(b, 2, 1024, 17)
	next := NodeID(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Join(next); err != nil {
			b.Fatal(err)
		}
		if _, err := nw.Leave(next); err != nil {
			b.Fatal(err)
		}
		next++
	}
}

// RandomWalkDim must move strictly along the requested dimension and
// direction, and repeated walks from the same origin must reach a
// diverse target set (the property index diffusion relies on).
func TestRandomWalkDim(t *testing.T) {
	nw := build(t, 3, 512, 21)
	rng := sim.NewRNG(5, 77)
	// Pick an interior node whose negative dim-0 face actually
	// branches (≥2 adjacent neighbors), so the walk has choices.
	var origin NodeID = -1
	for _, id := range nw.Nodes() {
		z, _ := nw.ZoneOf(id)
		if z.Lo[0] > 0.4 && z.Lo[1] > 0.4 && z.Lo[2] > 0.4 &&
			len(nw.NeighborsAlong(id, 0, false)) >= 2 {
			origin = id
			break
		}
	}
	if origin < 0 {
		t.Skip("no branching interior node found")
	}
	oz, _ := nw.ZoneOf(origin)
	// One-hop walks from a branching face must sample different
	// neighbors (the randomization index diffusion relies on).
	oneHop := map[NodeID]bool{}
	for i := 0; i < 60; i++ {
		id, taken := nw.RandomWalkDim(origin, 0, false, 1, rng)
		if taken != 1 {
			t.Fatalf("one-hop walk took %d steps", taken)
		}
		oneHop[id] = true
	}
	if len(oneHop) < 2 {
		t.Errorf("one-hop walks reached only %d distinct neighbors of a branching face", len(oneHop))
	}
	// Longer walks must move strictly negatively along the dimension.
	for i := 0; i < 30; i++ {
		id, taken := nw.RandomWalkDim(origin, 0, false, 2, rng)
		if taken == 0 {
			continue
		}
		z, ok := nw.ZoneOf(id)
		if !ok {
			t.Fatal("walk reached unknown node")
		}
		if z.Lo[0] >= oz.Lo[0] {
			t.Fatalf("walk did not move negatively: %v vs %v", z, oz)
		}
	}
	if id, taken := nw.RandomWalkDim(9999, 0, false, 2, rng); id != NoNode || taken != 0 {
		t.Error("walk from unknown node should be empty")
	}
}
