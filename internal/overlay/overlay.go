// Package overlay implements the CAN overlay network of the paper
// (§III.A) extended with INSCAN index links: every node owns a zone
// of the bounded d-dimensional space, knows its adjacent neighbors,
// and additionally links to the nodes 2^k zone-hops away along every
// dimension and direction (k = 0 … ⌊log2 n^{1/d}⌋), which gives
// O(log2 n) greedy routing instead of CAN's O(n^{1/d}).
//
// The overlay is the ground-truth structural substrate shared by all
// protocols of the evaluation: PID-CAN (internal/core), KHDN-CAN
// (internal/khdn) and INSCAN-RQ all route on it; Newscast
// (internal/gossip) ignores it by design.
//
// Zone bookkeeping uses the binary partition tree in internal/space;
// joins split the zone containing a random point, departures trigger
// the paper's zone-reassignment keeping node↔zone strictly 1:1.
// Neighbor and index-link lookups are answered from the live tree,
// which models CAN's periodically refreshed neighbor state; the
// *application-level* soft state that the paper's churn experiments
// stress — cached resource records and diffused PIList indexes — is
// modelled with genuine staleness in internal/core.
package overlay

import (
	"fmt"
	"math"

	"pidcan/internal/sim"
	"pidcan/internal/space"
)

// NodeID identifies an overlay node. It doubles as the space.OwnerID
// of the node's zone.
type NodeID = space.OwnerID

// NoNode is the absent-node sentinel.
const NoNode NodeID = space.NoOwner

// Network is the CAN/INSCAN overlay. It is not safe for concurrent
// mutation; each simulation run drives it from one goroutine.
type Network struct {
	dim  int
	tree *space.Tree
	rng  *sim.RNG
}

// New creates an overlay of dimensionality dim whose first node
// (owning the whole space) is first. The RNG drives join-point
// selection and must be a dedicated overlay stream for determinism.
func New(dim int, first NodeID, rng *sim.RNG) *Network {
	return &Network{dim: dim, tree: space.NewTree(dim, first), rng: rng}
}

// Dim returns the dimensionality of the coordinate space.
func (nw *Network) Dim() int { return nw.dim }

// Size returns the number of nodes in the overlay.
func (nw *Network) Size() int { return nw.tree.Len() }

// Contains reports whether id is currently in the overlay.
func (nw *Network) Contains(id NodeID) bool { return nw.tree.Contains(id) }

// Nodes returns all node IDs in ascending order.
func (nw *Network) Nodes() []NodeID { return nw.tree.Owners() }

// ZoneOf returns the zone owned by id.
func (nw *Network) ZoneOf(id NodeID) (space.Zone, bool) { return nw.tree.ZoneOf(id) }

// OwnerAt returns the node whose zone contains p.
func (nw *Network) OwnerAt(p space.Point) NodeID { return nw.tree.OwnerAt(p) }

// RandomPoint draws a uniform point of the space.
func (nw *Network) RandomPoint() space.Point {
	p := make(space.Point, nw.dim)
	for i := range p {
		p[i] = nw.rng.Float64()
	}
	return p
}

// Join adds id to the overlay at a uniformly random point, splitting
// the zone that contains it (the CAN join). It returns the previous
// owner of the split zone — the joiner's bootstrap contact — so the
// caller can account maintenance traffic.
func (nw *Network) Join(id NodeID) (contact NodeID, err error) {
	return nw.JoinAt(id, nw.RandomPoint())
}

// JoinAt is Join with an explicit join point.
func (nw *Network) JoinAt(id NodeID, p space.Point) (contact NodeID, err error) {
	return nw.tree.Split(p, id)
}

// Leave removes id, merging or reassigning zones per the binary
// partition tree (paper §IV.B). The returned reassignment names the
// absorber and the relocated node (if any) for traffic accounting
// and record invalidation.
func (nw *Network) Leave(id NodeID) (space.Reassignment, error) {
	return nw.tree.Remove(id)
}

// Neighbors returns id's adjacent neighbors with adjacency metadata.
func (nw *Network) Neighbors(id NodeID) []space.Neighbor {
	return nw.tree.Neighbors(id)
}

// NeighborsAlong returns the adjacent neighbors of id along one
// dimension and direction (positive neighbors when positive is true).
func (nw *Network) NeighborsAlong(id NodeID, dim int, positive bool) []NodeID {
	var out []NodeID
	for _, nb := range nw.tree.Neighbors(id) {
		if nb.Adj.Dim == dim && nb.Adj.Positive == positive {
			out = append(out, nb.Owner)
		}
	}
	return out
}

// MaxIndexExponent returns K = ⌊log2 n^{1/d}⌋, the largest k for
// which 2^k-hop index links are maintained (paper §III.B), never
// below 0.
func (nw *Network) MaxIndexExponent() int {
	n := float64(nw.Size())
	if n < 2 {
		return 0
	}
	k := int(math.Floor(math.Log2(math.Pow(n, 1/float64(nw.dim)))))
	if k < 0 {
		k = 0
	}
	return k
}

// Hop is one index link: the node reached after walking Dist zone
// hops from the link's origin.
type Hop struct {
	ID   NodeID
	Dist int // 2^k for some k, or fewer if the walk hit the space edge
}

// Links holds a node's index links: Pos[dim] and Neg[dim] list the
// 2^k-hop targets along each dimension in increasing distance (the
// 2^0 entry is the adjacent neighbor on the walk latitude).
type Links struct {
	Pos [][]Hop
	Neg [][]Hop
}

// IndexLinks computes id's current index links by walking adjacent
// zones at the latitude of id's zone center — the INSCAN structure
// each node refreshes periodically. Walks stop at the space edge, so
// edge nodes simply have fewer links (the space is not a torus).
func (nw *Network) IndexLinks(id NodeID) (Links, bool) {
	z, ok := nw.tree.ZoneOf(id)
	if !ok {
		return Links{}, false
	}
	k := nw.MaxIndexExponent()
	maxDist := 1 << uint(k)
	at := z.Center()
	links := Links{
		Pos: make([][]Hop, nw.dim),
		Neg: make([][]Hop, nw.dim),
	}
	for dim := 0; dim < nw.dim; dim++ {
		links.Pos[dim] = nw.walkPowers(z, dim, true, at, maxDist)
		links.Neg[dim] = nw.walkPowers(z, dim, false, at, maxDist)
	}
	return links, true
}

// walkPowers walks up to maxDist adjacent-zone hops along (dim,
// positive) at the fixed latitude, recording the nodes at hop
// distances 1, 2, 4, …, maxDist.
func (nw *Network) walkPowers(z space.Zone, dim int, positive bool, at space.Point, maxDist int) []Hop {
	var out []Hop
	cur := z
	steps := 0
	nextPow := 1
	for steps < maxDist {
		id, nz, ok := nw.tree.AdjacentLeafAcross(cur, dim, positive, at)
		if !ok {
			break // space edge
		}
		cur = nz
		steps++
		if steps == nextPow {
			out = append(out, Hop{ID: id, Dist: steps})
			nextPow <<= 1
		}
	}
	return out
}

// RandomWalkDim walks up to steps zone hops from id along (dim,
// positive), choosing uniformly among the adjacent neighbors on that
// face at every hop. Unlike the fixed-latitude WalkDim (which the
// 2^k routing links use), the random walk samples the whole
// d-1-dimensional cross-section — this is what makes repeated
// index-diffusion rounds reach *different* 2^k-hop index nodes
// (§III.B "the negative-index nodes … are randomly selected").
func (nw *Network) RandomWalkDim(id NodeID, dim int, positive bool, steps int, rng *sim.RNG) (NodeID, int) {
	if !nw.tree.Contains(id) {
		return NoNode, 0
	}
	cur := id
	taken := 0
	for taken < steps {
		nbs := nw.NeighborsAlong(cur, dim, positive)
		if len(nbs) == 0 {
			break
		}
		cur = nbs[rng.IntN(len(nbs))]
		taken++
	}
	if taken == 0 {
		return NoNode, 0
	}
	return cur, taken
}

// WalkDim walks exactly steps zone hops from id along (dim,
// positive) at id's center latitude and returns the node reached and
// the hops actually taken (fewer if the edge intervened).
func (nw *Network) WalkDim(id NodeID, dim int, positive bool, steps int) (NodeID, int) {
	z, ok := nw.tree.ZoneOf(id)
	if !ok {
		return NoNode, 0
	}
	at := z.Center()
	cur := z
	reached := NoNode
	taken := 0
	for taken < steps {
		nid, nz, ok := nw.tree.AdjacentLeafAcross(cur, dim, positive, at)
		if !ok {
			break
		}
		cur, reached = nz, nid
		taken++
	}
	return reached, taken
}

// Path is the outcome of a routing operation: the sequence of nodes
// visited after the origin (the destination is the last entry).
type Path struct {
	Hops []NodeID
}

// Len returns the number of network hops (= messages) on the path.
func (p Path) Len() int { return len(p.Hops) }

// Dest returns the final node of the path, or NoNode for an empty
// path (origin already owned the target point).
func (p Path) Dest() NodeID {
	if len(p.Hops) == 0 {
		return NoNode
	}
	return p.Hops[len(p.Hops)-1]
}

// intervalDistSq returns the squared Euclidean distance from t to
// zone z (0 inside).
func intervalDistSq(z space.Zone, t space.Point) float64 {
	s := 0.0
	for k := range t {
		var d float64
		switch {
		case t[k] < z.Lo[k]:
			d = z.Lo[k] - t[k]
		case t[k] >= z.Hi[k]:
			d = t[k] - z.Hi[k]
		}
		s += d * d
	}
	return s
}

// clampInto returns t clamped into z (using the closed lower and the
// open upper bound; the upper clamp stays strictly inside).
func clampInto(t space.Point, z space.Zone) space.Point {
	p := t.Clone()
	for k := range p {
		if p[k] < z.Lo[k] {
			p[k] = z.Lo[k]
		} else if p[k] >= z.Hi[k] {
			// Strictly inside the half-open zone.
			p[k] = z.Lo[k] + (z.Hi[k]-z.Lo[k])*0.999999
		}
	}
	return p
}

// Route greedily routes from origin to the node owning target using
// index links with binary lifting, falling back to adjacent-zone
// steps toward the target latitude. Adjacent steps strictly decrease
// the cursor's distance to the target (see the termination argument
// in DESIGN.md), so routing always terminates; index links are taken
// only when they also strictly decrease the zone distance, which
// yields the O(log2 n) hop bound of Theorem 1 in the regular case.
func (nw *Network) Route(origin NodeID, target space.Point) (Path, error) {
	return nw.route(origin, target, true)
}

// RouteAdjacent routes using only adjacent neighbors — the original
// CAN greedy routing with O(n^{1/d}) hops, used by baselines and by
// the routing-cost ablation.
func (nw *Network) RouteAdjacent(origin NodeID, target space.Point) (Path, error) {
	return nw.route(origin, target, false)
}

func (nw *Network) route(origin NodeID, target space.Point, useLinks bool) (Path, error) {
	if len(target) != nw.dim {
		return Path{}, fmt.Errorf("overlay: target dimension %d, want %d", len(target), nw.dim)
	}
	z, ok := nw.tree.ZoneOf(origin)
	if !ok {
		return Path{}, fmt.Errorf("overlay: origin %d not in overlay", origin)
	}
	var path Path
	cur := origin
	hopCap := nw.Size() + 4 // adjacent stepping visits each zone at most once
	for hop := 0; hop < hopCap; hop++ {
		if z.Contains(target) {
			return path, nil
		}
		next := NoNode
		var nz space.Zone
		if useLinks {
			next, nz = nw.bestLinkJump(cur, z, target)
		}
		if next == NoNode {
			// Adjacent step toward the target along the dimension
			// with the largest gap, at the target's latitude.
			p := clampInto(target, z)
			bestDim, bestGap := -1, 0.0
			positive := false
			for k := range target {
				var gap float64
				var pos bool
				if target[k] >= z.Hi[k] {
					gap, pos = target[k]-z.Hi[k], true
				} else if target[k] < z.Lo[k] {
					gap, pos = z.Lo[k]-target[k], false
				}
				// The gap can be zero when t[k] == z.Hi[k] (half-open
				// boundary); still a valid crossing dimension.
				if (target[k] >= z.Hi[k] || target[k] < z.Lo[k]) && (bestDim == -1 || gap > bestGap) {
					bestDim, bestGap, positive = k, gap, pos
				}
			}
			if bestDim == -1 {
				return path, fmt.Errorf("overlay: routing stuck at node %d zone %v target %v", cur, z, target)
			}
			id, zz, ok := nw.tree.AdjacentLeafAcross(z, bestDim, positive, p)
			if !ok {
				return path, fmt.Errorf("overlay: routing hit space edge at node %d toward %v", cur, target)
			}
			next, nz = id, zz
		}
		cur, z = next, nz
		path.Hops = append(path.Hops, cur)
	}
	return path, fmt.Errorf("overlay: hop cap exceeded routing to %v", target)
}

// bestLinkJump returns the farthest index link of cur that strictly
// decreases the zone distance to target, or NoNode when no link
// qualifies (adjacent fallback will run).
func (nw *Network) bestLinkJump(cur NodeID, z space.Zone, target space.Point) (NodeID, space.Zone) {
	curDist := intervalDistSq(z, target)
	// Choose the dimension with the largest gap and jump as far as
	// possible along it without overshooting the target coordinate.
	bestDim, bestGap := -1, -1.0
	positive := false
	for k := range target {
		var gap float64
		var pos bool
		switch {
		case target[k] >= z.Hi[k]:
			gap, pos = target[k]-z.Hi[k], true
		case target[k] < z.Lo[k]:
			gap, pos = z.Lo[k]-target[k], false
		default:
			continue
		}
		if gap > bestGap {
			bestDim, bestGap, positive = k, gap, pos
		}
	}
	if bestDim == -1 {
		return NoNode, space.Zone{}
	}
	links, _ := nw.IndexLinks(cur)
	hops := links.Pos[bestDim]
	if !positive {
		hops = links.Neg[bestDim]
	}
	// Scan from the farthest link down; accept the first whose zone
	// does not overshoot along bestDim and strictly improves the
	// distance. Skip the 2^0 link — the fallback handles adjacency
	// at the proper latitude.
	for i := len(hops) - 1; i >= 0; i-- {
		if hops[i].Dist <= 1 {
			break
		}
		lz, ok := nw.tree.ZoneOf(hops[i].ID)
		if !ok {
			continue
		}
		if positive && lz.Lo[bestDim] > target[bestDim] {
			continue // overshoot
		}
		if !positive && lz.Hi[bestDim] <= target[bestDim] {
			continue
		}
		if intervalDistSq(lz, target) < curDist {
			return hops[i].ID, lz
		}
	}
	return NoNode, space.Zone{}
}

// Validate checks the underlying partition tree invariants.
func (nw *Network) Validate() error { return nw.tree.Validate() }

// RangeOwners returns the nodes responsible for any part of the
// closed range [lo, hi] — the flooding set of INSCAN-RQ.
func (nw *Network) RangeOwners(lo, hi space.Point) []NodeID {
	return nw.tree.RangeOwners(lo, hi)
}
