package core

import (
	"sort"

	"pidcan/internal/metrics"
	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/sim"
	"pidcan/internal/space"
	"pidcan/internal/vector"
)

// PIDCAN is the Proactive Index-Diffusion CAN protocol. One instance
// serves a whole simulation run; per-node state (duty cache γ,
// positive-index list) is held in nodeState records keyed by node id.
type PIDCAN struct {
	env proto.Env
	cfg Config

	nodes map[overlay.NodeID]*nodeState

	// cmaxSource, when set, supplies a per-node estimate of the
	// system-wide maximum capacity vector for the SoS bound of
	// Formula (3) — the gossip-aggregated cmax of paper ref [23]
	// (see internal/aggregate). Nil falls back to env.CMax().
	cmaxSource func(overlay.NodeID) vector.Vec
}

// nodeState is the protocol state one peer maintains.
type nodeState struct {
	cache  *proto.Cache                // duty cache γ (records this zone keeps)
	pilist map[overlay.NodeID]sim.Time // PIList: index origin → expiry

	stateTimer *sim.Timer
	diffTimer  *sim.Timer
}

// New builds a PID-CAN instance over env. The config must validate.
func New(env proto.Env, cfg Config) (*PIDCAN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PIDCAN{
		env:   env,
		cfg:   cfg,
		nodes: make(map[overlay.NodeID]*nodeState),
	}, nil
}

// Name implements proto.Discovery.
func (p *PIDCAN) Name() string { return p.cfg.Name() }

// Config returns the active configuration.
func (p *PIDCAN) Config() Config { return p.cfg }

// SetCMaxSource installs a per-node cmax estimator used by the SoS
// slack bound (Formula 3) in place of the static env.CMax().
func (p *PIDCAN) SetCMaxSource(src func(overlay.NodeID) vector.Vec) { p.cmaxSource = src }

// Start installs the periodic state-update and index-diffusion
// behaviour on every alive node, with per-node phase jitter so cycles
// are not synchronized.
func (p *PIDCAN) Start() {
	for _, id := range p.env.AliveNodes() {
		p.NodeJoined(id)
	}
}

// NodeJoined implements proto.Discovery.
func (p *PIDCAN) NodeJoined(id overlay.NodeID) {
	if _, ok := p.nodes[id]; ok {
		return
	}
	st := &nodeState{
		cache:  proto.NewCache(),
		pilist: make(map[overlay.NodeID]sim.Time),
	}
	p.nodes[id] = st
	eng := p.env.Engine()
	rng := p.env.ProtoRNG()
	startS := eng.Now() + sim.Time(rng.Uniform(0, float64(p.cfg.StateCycle)))
	st.stateTimer = eng.Every(startS, p.cfg.StateCycle, func() { p.stateUpdate(id) })
	startD := eng.Now() + sim.Time(rng.Uniform(0, float64(p.cfg.DiffusionCycle)))
	st.diffTimer = eng.Every(startD, p.cfg.DiffusionCycle, func() { p.diffuse(id) })
}

// NodeLeft implements proto.Discovery: the departed node's cached
// records and PIList die with it; indexes pointing *to* it elsewhere
// decay by TTL (modelled staleness).
func (p *PIDCAN) NodeLeft(id overlay.NodeID) {
	st, ok := p.nodes[id]
	if !ok {
		return
	}
	st.stateTimer.Stop()
	st.diffTimer.Stop()
	delete(p.nodes, id)
}

// state returns the protocol state of an alive node, or nil.
func (p *PIDCAN) state(id overlay.NodeID) *nodeState { return p.nodes[id] }

// CacheLen reports the duty-cache size of a node (tests/inspection).
func (p *PIDCAN) CacheLen(id overlay.NodeID) int {
	if st := p.nodes[id]; st != nil {
		return st.cache.Len()
	}
	return 0
}

// PIListLen reports the unexpired PIList size of a node.
func (p *PIDCAN) PIListLen(id overlay.NodeID) int {
	st := p.nodes[id]
	if st == nil {
		return 0
	}
	now := p.env.Engine().Now()
	n := 0
	for _, exp := range st.pilist {
		if exp > now {
			n++
		}
	}
	return n
}

// point maps a resource vector into the CAN space, appending a
// uniform virtual coordinate in VD mode.
func (p *PIDCAN) point(v vector.Vec) space.Point {
	n := v.Normalize(p.env.CMax())
	pt := make(space.Point, 0, len(n)+1)
	for _, x := range n {
		// Keep strictly inside the half-open cube.
		if x >= 1 {
			x = 1 - 1e-9
		}
		pt = append(pt, x)
	}
	if p.cfg.VirtualDim {
		pt = append(pt, p.env.ProtoRNG().Float64())
	}
	return pt
}

// --- state updates ---------------------------------------------------------

// StateUpdateNow forces an out-of-cycle state update for the node —
// the push API of the standalone cluster facade.
func (p *PIDCAN) StateUpdateNow(id overlay.NodeID) { p.stateUpdate(id) }

// stateUpdate detects the node's availability and routes it over
// INSCAN to the duty node whose zone encloses it (§III.A).
func (p *PIDCAN) stateUpdate(id overlay.NodeID) {
	if !p.env.Alive(id) {
		return
	}
	nw := p.env.Overlay()
	now := p.env.Engine().Now()
	avail := p.env.Availability(id)
	rec := proto.Record{
		Node:    id,
		Avail:   avail,
		Stored:  now,
		Expires: now + p.cfg.StateTTL,
	}
	target := p.point(avail)
	path, err := nw.Route(id, target)
	if err != nil {
		return // overlay churned under us this tick; next cycle retries
	}
	duty := path.Dest()
	if duty == overlay.NoNode {
		duty = id
	}
	store := func() {
		if st := p.state(duty); st != nil {
			st.cache.Put(rec)
			st.cache.Purge(p.env.Engine().Now())
		}
	}
	if len(path.Hops) == 0 {
		store()
		return
	}
	p.env.SendPath(id, path.Hops, metrics.MsgStateUpdate, proto.SizeStateUpdate, store, nil)
}

// --- index diffusion (Algorithms 1 and 2) ----------------------------------

// indexMsg is the paper's index message {ID, dim_NO, dim_TTL}.
type indexMsg struct {
	origin overlay.NodeID
	dim    int
	ttl    int
}

// diffuse is the index-sender (Algorithm 1): when the duty cache is
// non-empty the node advertises its own identifier to negative-index
// nodes so that requesters in its negative direction can find it.
func (p *PIDCAN) diffuse(id overlay.NodeID) {
	if !p.env.Alive(id) {
		return
	}
	st := p.state(id)
	if st == nil {
		return
	}
	now := p.env.Engine().Now()
	st.cache.Purge(now)
	p.purgePIList(st, now)
	if st.cache.Len() == 0 {
		return
	}
	switch p.cfg.Mode {
	case Hopping:
		// One message along dimension 0 with TTL L; relays fan out
		// across dimensions (Algorithm 1 line 3-5).
		target := p.ninode(id, 0)
		if target == overlay.NoNode {
			return
		}
		p.sendIndex(id, target, indexMsg{origin: id, dim: 0, ttl: p.cfg.L})
	case Spreading:
		// The origin itself selects L negative-index nodes per
		// dimension (Fig. 3(a)); no relaying.
		d := p.env.Overlay().Dim()
		for dim := 0; dim < d; dim++ {
			for i := 0; i < p.cfg.L; i++ {
				target := p.ninode(id, dim)
				if target == overlay.NoNode {
					continue
				}
				p.sendIndex(id, target, indexMsg{origin: id, dim: dim, ttl: 0})
			}
		}
	}
}

// sendIndex delivers one index message and triggers the receiver's
// index-relay handling.
func (p *PIDCAN) sendIndex(from, to overlay.NodeID, m indexMsg) {
	p.env.Send(from, to, metrics.MsgIndexDiffusion, proto.SizeIndex, func() {
		p.onIndex(to, m)
	}, nil)
}

// onIndex is the index-relay handler (Algorithm 2).
func (p *PIDCAN) onIndex(at overlay.NodeID, m indexMsg) {
	st := p.state(at)
	if st == nil {
		return
	}
	now := p.env.Engine().Now()
	if m.origin != at {
		st.pilist[m.origin] = now + p.cfg.IndexTTL
	}
	if p.cfg.Mode != Hopping {
		return
	}
	// Continue along the same dimension within the residual TTL.
	if m.ttl-1 > 0 {
		if t := p.ninode(at, m.dim); t != overlay.NoNode {
			p.sendIndex(at, t, indexMsg{origin: m.origin, dim: m.dim, ttl: m.ttl - 1})
		}
	}
	// Open the next dimension with a fresh TTL.
	if m.dim < p.env.Overlay().Dim()-1 {
		if t := p.ninode(at, m.dim+1); t != overlay.NoNode {
			p.sendIndex(at, t, indexMsg{origin: m.origin, dim: m.dim + 1, ttl: p.cfg.L})
		}
	}
}

// ninode picks a random negative-index node of id along dim: a node
// 2^k zone-hops away in the negative direction, k uniform in
// 0…⌊log2 n^{1/d}⌋ (§III.A lists k=0,1,2,…), reached by a
// random-neighbor walk so that successive rounds sample different
// index nodes across the face cross-section. Near the space edge the
// walk may stop short; the farthest reached node is used, NoNode if
// none.
func (p *PIDCAN) ninode(id overlay.NodeID, dim int) overlay.NodeID {
	nw := p.env.Overlay()
	rng := p.env.ProtoRNG()
	k := nw.MaxIndexExponent()
	dist := 1 << uint(rng.IntN(k+1))
	reached, taken := nw.RandomWalkDim(id, dim, false, dist, rng)
	if taken == 0 {
		return overlay.NoNode
	}
	return reached
}

func (p *PIDCAN) purgePIList(st *nodeState, now sim.Time) {
	for id, exp := range st.pilist {
		if exp <= now {
			delete(st.pilist, id)
		}
	}
}

// pilistSample returns up to k unexpired PIList entries of st not in
// skip, uniformly sampled, in deterministic order.
func (p *PIDCAN) pilistSample(st *nodeState, now sim.Time, k int, skip map[overlay.NodeID]bool) []overlay.NodeID {
	ids := make([]overlay.NodeID, 0, len(st.pilist))
	for id, exp := range st.pilist {
		if exp > now && !skip[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return sim.Sample(p.env.ProtoRNG(), ids, k)
}

// --- query (Algorithms 3, 4 and 5) -----------------------------------------

// query carries the state of one in-flight resource query. Messages
// reference the query object directly; the simulated network only
// transports control flow and latency.
type query struct {
	p         *PIDCAN
	requester overlay.NodeID
	demand    vector.Vec       // original e(t)
	search    vector.Vec       // e or the SoS-slacked e′
	delta     int              // δ: results still wanted
	agents    []overlay.NodeID // ι
	jumps     []overlay.NodeID // j
	visited   map[overlay.NodeID]bool
	found     []proto.Record
	hops      int
	done      func(proto.QueryResult)
	finished  bool
	sosPhase  bool // true while searching with the slacked vector
}

// Query implements proto.Discovery: the three-phase contention-
// minimized multi-dimensional range query of §III.C.
func (p *PIDCAN) Query(requester overlay.NodeID, demand vector.Vec, k int, done func(proto.QueryResult)) {
	if k < 1 {
		k = 1
	}
	q := &query{
		p:         p,
		requester: requester,
		demand:    demand.Clone(),
		search:    demand.Clone(),
		delta:     k,
		visited:   make(map[overlay.NodeID]bool),
		done:      done,
	}
	if p.cfg.SoS {
		q.sosPhase = true
		q.search = p.slack(requester, demand)
	}
	q.start()
}

// slack draws e′ with e ⪯ e′ ⪯ cmax componentwise (Formula 3). The
// bound is the requester's aggregated cmax estimate when an
// estimator is installed, else the static system cmax.
func (p *PIDCAN) slack(requester overlay.NodeID, e vector.Vec) vector.Vec {
	cmax := p.env.CMax()
	if p.cmaxSource != nil {
		if est := p.cmaxSource(requester); est != nil && est.Dim() == e.Dim() {
			cmax = est
		}
	}
	out := make(vector.Vec, e.Dim())
	rng := p.env.ProtoRNG()
	for i := range out {
		hi := cmax[i]
		if hi < e[i] {
			hi = e[i]
		}
		out[i] = rng.Uniform(e[i], hi)
	}
	return out
}

// start routes the duty-query message to the duty node D1 whose zone
// encloses the expectation vector (Algorithm 3).
func (q *query) start() {
	if !q.p.env.Alive(q.requester) {
		q.finish()
		return
	}
	nw := q.p.env.Overlay()
	target := q.p.point(q.search)
	path, err := nw.Route(q.requester, target)
	if err != nil {
		q.finish()
		return
	}
	duty := path.Dest()
	if duty == overlay.NoNode {
		duty = q.requester
	}
	if len(path.Hops) == 0 {
		q.onDuty(duty)
		return
	}
	q.hops += len(path.Hops)
	q.p.env.SendPath(q.requester, path.Hops, metrics.MsgDutyQuery, proto.SizeQuery,
		func() { q.onDuty(duty) },
		func() { q.shortfall() })
}

// onDuty runs on the duty node: optionally search its own cache,
// then build the index-agent list ι from d positive neighbors (one
// per dimension, chosen uniformly) and dispatch the first agent.
func (q *query) onDuty(duty overlay.NodeID) {
	if q.finished {
		return
	}
	p := q.p
	now := p.env.Engine().Now()
	if !p.cfg.SkipDutyCache {
		if st := p.state(duty); st != nil {
			q.collect(st.cache.QualifiedSample(q.search, now, q.delta, p.env.ProtoRNG()))
			if q.delta <= 0 {
				q.complete(duty)
				return
			}
		}
	}
	nw := p.env.Overlay()
	rng := p.env.ProtoRNG()
	seen := map[overlay.NodeID]bool{duty: true}
	for dim := 0; dim < nw.Dim(); dim++ {
		nbs := nw.NeighborsAlong(duty, dim, true)
		if len(nbs) == 0 {
			continue
		}
		pick := nbs[rng.IntN(len(nbs))]
		if !seen[pick] {
			seen[pick] = true
			q.agents = append(q.agents, pick)
		}
	}
	q.nextAgent(duty)
}

// nextAgent pops a random agent from ι and sends it the index-agent
// message; with ι exhausted the query resolves with what it has.
func (q *query) nextAgent(from overlay.NodeID) {
	if q.finished {
		return
	}
	if len(q.agents) == 0 {
		q.shortfall()
		return
	}
	rng := q.p.env.ProtoRNG()
	i := rng.IntN(len(q.agents))
	agent := q.agents[i]
	q.agents = append(q.agents[:i], q.agents[i+1:]...)
	q.hops++
	q.p.env.Send(from, agent, metrics.MsgIndexAgent, proto.SizeQuery,
		func() { q.onAgent(agent) },
		func() { q.nextAgent(from) })
}

// onAgent runs Algorithm 4: assemble an index-jump list from the
// agent's PIList and start hopping.
func (q *query) onAgent(agent overlay.NodeID) {
	if q.finished {
		return
	}
	p := q.p
	st := p.state(agent)
	if st == nil {
		q.nextAgent(agent)
		return
	}
	now := p.env.Engine().Now()
	q.jumps = p.pilistSample(st, now, p.cfg.JumpListSize, q.visited)
	if len(q.jumps) == 0 {
		q.nextAgent(agent)
		return
	}
	q.nextJump(agent)
}

// nextJump pops a random index node from j and sends the index-jump
// message (Algorithm 4 line 3-4 / Algorithm 5 line 8-9).
func (q *query) nextJump(from overlay.NodeID) {
	if q.finished {
		return
	}
	if len(q.jumps) == 0 {
		q.nextAgent(from)
		return
	}
	rng := q.p.env.ProtoRNG()
	i := rng.IntN(len(q.jumps))
	idx := q.jumps[i]
	q.jumps = append(q.jumps[:i], q.jumps[i+1:]...)
	q.hops++
	q.p.env.Send(from, idx, metrics.MsgIndexJump, proto.SizeQuery,
		func() { q.onJump(idx) },
		func() { q.nextJump(from) })
}

// onJump runs Algorithm 5 on an index node: search its duty cache,
// notify the requester of any qualified records, and continue until
// δ is satisfied or both j and ι are exhausted.
func (q *query) onJump(idx overlay.NodeID) {
	if q.finished {
		return
	}
	q.visited[idx] = true
	p := q.p
	st := p.state(idx)
	if st == nil {
		q.nextJump(idx)
		return
	}
	now := p.env.Engine().Now()
	phi := st.cache.QualifiedSample(q.search, now, q.delta, p.env.ProtoRNG())
	if len(phi) > 0 {
		q.collect(phi)
		// ϕ is sent to the requester immediately (Algorithm 5 line 3).
		q.hops++
		p.env.Send(idx, q.requester, metrics.MsgFoundNotify,
			proto.SizeNotify+proto.SizeRecord*len(phi), func() {}, nil)
	}
	if q.delta <= 0 {
		q.complete(idx)
		return
	}
	q.nextJump(idx)
}

// collect appends qualified records and decrements δ (Algorithm 5
// line 4).
func (q *query) collect(recs []proto.Record) {
	for _, r := range recs {
		if r.Node == q.requester {
			continue // a node does not schedule onto itself via discovery
		}
		q.found = append(q.found, r)
		q.delta--
	}
}

// shortfall handles an exhausted search: under SoS the original
// expectation vector is restored and the whole procedure re-runs
// once (§III.C); otherwise the query resolves with what was found.
func (q *query) shortfall() {
	if q.finished {
		return
	}
	if q.sosPhase && q.delta > 0 {
		q.sosPhase = false
		q.search = q.demand.Clone()
		q.start()
		return
	}
	q.finish()
}

// complete resolves a satisfied query from the node that found the
// last records.
func (q *query) complete(overlay.NodeID) { q.finish() }

// finish invokes done exactly once.
func (q *query) finish() {
	if q.finished {
		return
	}
	q.finished = true
	q.done(proto.QueryResult{
		Candidates: proto.DedupeCandidates(q.found),
		Hops:       q.hops,
	})
}
