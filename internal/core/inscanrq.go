package core

import (
	"pidcan/internal/metrics"
	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/space"
	"pidcan/internal/vector"
)

// RangeQueryAll implements INSCAN-RQ (§III.A): the exhaustive
// delay-bounded range query that first routes to the boundary-corner
// duty node and then floods every responsible node whose zone
// overlaps the query range [demand, cmax], collecting *all*
// qualified records. Query delay is bounded by 2·log2 n but traffic
// is log2 n + N − 1 messages for N responsible nodes — the overhead
// PID-CAN's single-message design avoids. Exposed for the traffic
// ablation (DESIGN.md A1) and the library range-query example.
func (p *PIDCAN) RangeQueryAll(requester overlay.NodeID, demand vector.Vec, done func(proto.QueryResult)) {
	if !p.env.Alive(requester) {
		done(proto.QueryResult{})
		return
	}
	nw := p.env.Overlay()
	lo := p.point(demand)
	hi := make(space.Point, nw.Dim())
	for i := range hi {
		hi[i] = 1
	}
	if p.cfg.VirtualDim {
		// The virtual dimension carries no range semantics: cover it
		// entirely.
		lo[len(lo)-1] = 0
	}

	hops := 0
	var found []proto.Record

	path, err := nw.Route(requester, lo)
	if err != nil {
		done(proto.QueryResult{})
		return
	}
	duty := path.Dest()
	if duty == overlay.NoNode {
		duty = requester
	}
	hops += len(path.Hops)

	flood := func() {
		responsible := nw.RangeOwners(lo, hi)
		now := p.env.Engine().Now()
		pending := 0
		finished := false
		finishIfDone := func() {
			if pending == 0 && !finished {
				finished = true
				done(proto.QueryResult{
					Candidates: proto.DedupeCandidates(found),
					Hops:       hops,
				})
			}
		}
		for _, id := range responsible {
			if id == duty {
				if st := p.state(duty); st != nil {
					found = append(found, st.cache.Qualified(demand, now, 0)...)
				}
				continue
			}
			id := id
			pending++
			hops++
			p.env.Send(duty, id, metrics.MsgDutyQuery, proto.SizeQuery, func() {
				if st := p.state(id); st != nil {
					phi := st.cache.Qualified(demand, p.env.Engine().Now(), 0)
					if len(phi) > 0 {
						found = append(found, phi...)
						hops++
						p.env.Send(id, requester, metrics.MsgFoundNotify,
							proto.SizeNotify+proto.SizeRecord*len(phi), func() {}, nil)
					}
				}
				pending--
				finishIfDone()
			}, func() {
				pending--
				finishIfDone()
			})
		}
		finishIfDone()
	}

	if len(path.Hops) == 0 {
		flood()
		return
	}
	p.env.SendPath(requester, path.Hops, metrics.MsgDutyQuery, proto.SizeQuery,
		flood,
		func() { done(proto.QueryResult{Hops: hops}) })
}
