package core

import (
	"testing"

	"pidcan/internal/metrics"
	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/prototest"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

func testEnv(t testing.TB, dim, n int, seed uint64) *prototest.Env {
	t.Helper()
	cmax := vector.Uniform(dim, 10)
	return prototest.New(dim, n, cmax, seed)
}

func newPIDCAN(t testing.TB, env *prototest.Env, cfg Config) *PIDCAN {
	t.Helper()
	p, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := Default()
	bad.L = 0
	if err := bad.Validate(); err == nil {
		t.Error("L=0 validated")
	}
	bad = Default()
	bad.StateCycle = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cycle validated")
	}
	bad = Default()
	bad.JumpListSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero jump list validated")
	}
	bad = Default()
	bad.Mode = DiffusionMode(9)
	if err := bad.Validate(); err == nil {
		t.Error("bad mode validated")
	}
	if _, err := New(prototest.New(2, 2, vector.Of(1, 1), 1), bad); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestProtocolNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Mode: Hopping}, "HID-CAN"},
		{Config{Mode: Spreading}, "SID-CAN"},
		{Config{Mode: Hopping, SoS: true}, "HID-CAN+SoS"},
		{Config{Mode: Spreading, VirtualDim: true}, "SID-CAN+VD"},
		{Config{Mode: Spreading, SoS: true, VirtualDim: true}, "SID-CAN+SoS+VD"},
	}
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
	if Hopping.String() != "HID" || Spreading.String() != "SID" {
		t.Error("mode strings wrong")
	}
	if DiffusionMode(7).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestStateUpdateStoresAtDutyNode(t *testing.T) {
	env := testEnv(t, 2, 32, 1)
	p := newPIDCAN(t, env, Default())
	p.Start()

	// Give node 5 a distinctive availability and force a state
	// update immediately.
	env.Avail[5] = vector.Of(9, 3)
	p.stateUpdate(5)
	env.Eng.Run(5 * sim.Second) // deliver routed message

	duty := env.Net.OwnerAt(p.point(vector.Of(9, 3)))
	st := p.state(duty)
	if st == nil {
		t.Fatalf("duty node %d has no state", duty)
	}
	recs := st.cache.Records(env.Eng.Now())
	found := false
	for _, r := range recs {
		if r.Node == 5 && r.Avail.Equal(vector.Of(9, 3)) {
			found = true
		}
	}
	if !found {
		t.Errorf("record for node 5 not stored at duty node %d: %+v", duty, recs)
	}
	if env.Rec.MessageCount(metrics.MsgStateUpdate) == 0 {
		// Zero messages is legal only if node 5 is its own duty node.
		if duty != 5 {
			t.Error("no state-update messages counted")
		}
	}
}

func TestStateRecordExpires(t *testing.T) {
	env := testEnv(t, 2, 16, 2)
	cfg := Default()
	cfg.StateTTL = 100 * sim.Second
	p := newPIDCAN(t, env, cfg)
	env.Avail[3] = vector.Of(8, 8)
	duty := env.Net.OwnerAt(p.point(vector.Of(8, 8)))
	p.NodeJoined(3) // only the two participants get protocol state
	p.NodeJoined(duty)
	p.stateUpdate(3)
	env.Eng.Run(2 * sim.Second)
	st := p.state(duty)
	if st == nil || len(st.cache.Qualified(vector.Of(1, 1), env.Eng.Now(), 0)) == 0 {
		t.Fatal("record not stored")
	}
	if got := st.cache.Qualified(vector.Of(1, 1), env.Eng.Now()+200*sim.Second, 0); len(got) != 0 {
		t.Errorf("record survived TTL: %+v", got)
	}
}

// After HID diffusion, the origin's identifier must appear in the
// PILists of negative-direction nodes only.
func TestHoppingDiffusionReachesNegativeNodes(t *testing.T) {
	env := testEnv(t, 2, 64, 3)
	cfg := Default()
	p := newPIDCAN(t, env, cfg)
	p.Start()

	// Plant a record on a node with a high-coordinate zone so it has
	// room to diffuse negatively.
	var origin overlay.NodeID = -1
	for _, id := range env.Net.Nodes() {
		z, _ := env.Net.ZoneOf(id)
		if z.Hi[0] == 1 && z.Hi[1] == 1 {
			origin = id
			break
		}
	}
	if origin < 0 {
		t.Fatal("no corner node found")
	}
	p.state(origin).cache.Put(proto.Record{
		Node: origin, Avail: vector.Of(9, 9),
		Stored: 0, Expires: sim.Hour,
	})
	p.diffuse(origin)
	env.Eng.Run(10 * sim.Second)

	if env.Rec.MessageCount(metrics.MsgIndexDiffusion) == 0 {
		t.Fatal("no diffusion messages sent")
	}
	oz, _ := env.Net.ZoneOf(origin)
	reached := 0
	for _, id := range env.Net.Nodes() {
		if id == origin {
			continue
		}
		st := p.state(id)
		if _, ok := st.pilist[origin]; ok {
			reached++
			z, _ := env.Net.ZoneOf(id)
			if !z.IsNegativeDirectionOf(oz) {
				t.Errorf("index reached non-negative-direction node %d (zone %v vs %v)", id, z, oz)
			}
		}
	}
	if reached == 0 {
		t.Error("diffusion reached no nodes")
	}
	// Traffic bound: ω = L+L²+…+L^d = 6 for L=2, d=2.
	if got := env.Rec.MessageCount(metrics.MsgIndexDiffusion); got > 6 {
		t.Errorf("diffusion sent %d messages, bound 6", got)
	}
}

func TestSpreadingDiffusionBoundedTraffic(t *testing.T) {
	env := testEnv(t, 2, 64, 4)
	cfg := Default()
	cfg.Mode = Spreading
	p := newPIDCAN(t, env, cfg)
	p.Start()
	var origin overlay.NodeID = -1
	for _, id := range env.Net.Nodes() {
		z, _ := env.Net.ZoneOf(id)
		if z.Hi[0] == 1 && z.Hi[1] == 1 {
			origin = id
			break
		}
	}
	p.state(origin).cache.Put(proto.Record{
		Node: origin, Avail: vector.Of(9, 9), Stored: 0, Expires: sim.Hour,
	})
	p.diffuse(origin)
	env.Eng.Run(10 * sim.Second)
	// SID: at most L·d = 4 messages, no relays.
	if got := env.Rec.MessageCount(metrics.MsgIndexDiffusion); got == 0 || got > 4 {
		t.Errorf("SID diffusion sent %d messages, want 1..4", got)
	}
}

func TestDiffusionSkipsEmptyCache(t *testing.T) {
	env := testEnv(t, 2, 16, 5)
	p := newPIDCAN(t, env, Default())
	p.Start()
	p.diffuse(3) // cache empty
	env.Eng.Run(2 * sim.Second)
	if got := env.Rec.MessageCount(metrics.MsgIndexDiffusion); got != 0 {
		t.Errorf("empty-cache node diffused %d messages", got)
	}
}

// End-to-end: run the periodic machinery, then query and find a
// qualified node.
func runProtocol(t *testing.T, cfg Config, seed uint64) (*prototest.Env, *PIDCAN) {
	t.Helper()
	dim := 3
	env := testEnv(t, dim, 256, seed)
	// Scatter availabilities along the diagonal so records land on
	// many distinct duty zones and the index population is dense.
	nodes := env.Net.Nodes()
	for i, id := range nodes {
		f := 1 + 8*float64(i)/float64(len(nodes)) // 1 … 9
		env.Avail[id] = vector.Uniform(dim, f)
	}
	// Keep the index population dense at test scale: the diffusion
	// reach ω = L+…+L^d grows sharply with d, and the paper runs at
	// d=5; at d=3 a slightly larger L compensates.
	cfg.L = 3
	cfg.DiffusionCycle = 100 * sim.Second
	p := newPIDCAN(t, env, cfg)
	p.Start()
	env.Eng.Run(30 * sim.Minute) // several state/diffusion cycles
	return env, p
}

func queryOnce(t *testing.T, env *prototest.Env, p *PIDCAN, from overlay.NodeID, demand vector.Vec, k int) proto.QueryResult {
	t.Helper()
	var res proto.QueryResult
	got := false
	p.Query(from, demand, k, func(r proto.QueryResult) {
		res = r
		got = true
	})
	env.Eng.Run(env.Eng.Now() + 10*sim.Minute)
	if !got {
		t.Fatal("query never resolved")
	}
	return res
}

func TestQueryFindsQualifiedNode(t *testing.T) {
	env, p := runProtocol(t, Default(), 6)
	res := queryOnce(t, env, p, env.Net.Nodes()[1], vector.Uniform(3, 5), 3)
	if len(res.Candidates) == 0 {
		t.Fatal("query found no candidates")
	}
	for _, c := range res.Candidates {
		if !c.Avail.Dominates(vector.Uniform(3, 5)) {
			t.Errorf("unqualified candidate %+v", c)
		}
	}
	if res.Hops == 0 {
		t.Error("query consumed no messages")
	}
}

func TestQueryImpossibleDemand(t *testing.T) {
	env, p := runProtocol(t, Default(), 7)
	res := queryOnce(t, env, p, env.Net.Nodes()[1], vector.Uniform(3, 9.9), 2)
	if len(res.Candidates) != 0 {
		t.Errorf("impossible demand matched: %+v", res.Candidates)
	}
}

func TestQueryNeverReturnsRequester(t *testing.T) {
	env, p := runProtocol(t, Default(), 8)
	for _, id := range env.Net.Nodes()[:8] {
		res := queryOnce(t, env, p, id, vector.Uniform(3, 5), 4)
		for _, c := range res.Candidates {
			if c.Node == id {
				t.Errorf("query returned its own requester %d", id)
			}
		}
	}
}

func TestQuerySoS(t *testing.T) {
	cfg := Default()
	cfg.SoS = true
	env, p := runProtocol(t, cfg, 9)
	res := queryOnce(t, env, p, env.Net.Nodes()[2], vector.Uniform(3, 5), 2)
	for _, c := range res.Candidates {
		if !c.Avail.Dominates(vector.Uniform(3, 5)) {
			t.Errorf("SoS candidate does not dominate the original demand: %+v", c)
		}
	}
}

func TestQuerySpreadingMode(t *testing.T) {
	cfg := Default()
	cfg.Mode = Spreading
	env, p := runProtocol(t, cfg, 10)
	res := queryOnce(t, env, p, env.Net.Nodes()[3], vector.Uniform(3, 5), 2)
	_ = res // SID may or may not find given narrower diffusion; just must resolve
}

func TestQuerySkipDutyCacheAblation(t *testing.T) {
	// The paper-literal variant (no local duty-cache search) must
	// still resolve and only ever return qualified candidates.
	cfg := Default()
	cfg.SkipDutyCache = true
	env, p := runProtocol(t, cfg, 11)
	res := queryOnce(t, env, p, env.Net.Nodes()[1], vector.Uniform(3, 5), 3)
	for _, c := range res.Candidates {
		if !c.Avail.Dominates(vector.Uniform(3, 5)) {
			t.Errorf("unqualified candidate %+v", c)
		}
	}
}

func TestVirtualDimension(t *testing.T) {
	// VD mode: overlay has one extra dimension.
	cmax := vector.Of(10, 10)
	env := prototest.New(3, 48, cmax, 12)
	for i, id := range env.Net.Nodes() {
		if i%3 == 0 {
			env.Avail[id] = vector.Of(8, 8)
		} else {
			env.Avail[id] = vector.Of(1, 1)
		}
	}
	cfg := Default()
	cfg.Mode = Spreading
	cfg.VirtualDim = true
	p := newPIDCAN(t, env, cfg)
	if pt := p.point(vector.Of(5, 5)); len(pt) != 3 {
		t.Fatalf("VD point has %d dims, want 3", len(pt))
	}
	p.Start()
	env.Eng.Run(30 * sim.Minute)
	res := queryOnce(t, env, p, env.Net.Nodes()[1], vector.Of(5, 5), 2)
	for _, c := range res.Candidates {
		if !c.Avail.Dominates(vector.Of(5, 5)) {
			t.Errorf("VD candidate unqualified: %+v", c)
		}
	}
}

func TestNodeLeftCleansState(t *testing.T) {
	env, p := runProtocol(t, Default(), 13)
	id := env.Net.Nodes()[5]
	if p.state(id) == nil {
		t.Fatal("missing state")
	}
	env.Kill(id)
	p.NodeLeft(id)
	if p.state(id) != nil {
		t.Error("state survived NodeLeft")
	}
	p.NodeLeft(id) // idempotent
	// Queries still work afterwards.
	res := queryOnce(t, env, p, env.Net.Nodes()[0], vector.Uniform(3, 5), 2)
	_ = res
}

func TestQueryAfterChurnMidFlight(t *testing.T) {
	env, p := runProtocol(t, Default(), 14)
	// Kill a third of the nodes, then immediately query: in-flight
	// deliveries to dead nodes must take the drop path and the query
	// must still resolve.
	nodes := env.Net.Nodes()
	for i, id := range nodes {
		if i%3 == 0 && i > 0 {
			env.Kill(id)
			p.NodeLeft(id)
		}
	}
	alive := env.AliveNodes()
	res := queryOnce(t, env, p, alive[0], vector.Uniform(3, 5), 2)
	_ = res
}

func TestQueryDeterminism(t *testing.T) {
	run := func() (int, int) {
		env, p := runProtocol(t, Default(), 15)
		res := queryOnce(t, env, p, env.Net.Nodes()[1], vector.Uniform(3, 5), 3)
		return len(res.Candidates), res.Hops
	}
	c1, h1 := run()
	c2, h2 := run()
	if c1 != c2 || h1 != h2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", c1, h1, c2, h2)
	}
}

func TestPIListExpiry(t *testing.T) {
	env := testEnv(t, 2, 32, 16)
	cfg := Default()
	cfg.IndexTTL = 50 * sim.Second
	p := newPIDCAN(t, env, cfg)
	p.Start()
	// Manually insert an index entry and verify sampling honours TTL.
	id := env.Net.Nodes()[3]
	st := p.state(id)
	st.pilist[7] = env.Eng.Now() + 50*sim.Second
	if got := p.PIListLen(id); got != 1 {
		t.Fatalf("PIListLen = %d", got)
	}
	if got := p.pilistSample(st, env.Eng.Now(), 5, nil); len(got) != 1 || got[0] != 7 {
		t.Errorf("sample = %v", got)
	}
	env.Eng.Run(60 * sim.Second)
	if got := p.pilistSample(st, env.Eng.Now(), 5, nil); len(got) != 0 {
		t.Errorf("expired sample = %v", got)
	}
	if got := p.PIListLen(id); got != 0 {
		t.Errorf("PIListLen after expiry = %d", got)
	}
	// skip filter
	st.pilist[9] = env.Eng.Now() + sim.Hour
	if got := p.pilistSample(st, env.Eng.Now(), 5, map[overlay.NodeID]bool{9: true}); len(got) != 0 {
		t.Errorf("skip filter failed: %v", got)
	}
}

func TestCacheLenAccessors(t *testing.T) {
	env := testEnv(t, 2, 8, 17)
	p := newPIDCAN(t, env, Default())
	if p.CacheLen(3) != 0 || p.PIListLen(3) != 0 {
		t.Error("accessors on unknown node should be 0")
	}
	p.Start()
	if p.CacheLen(3) != 0 {
		t.Error("fresh cache should be empty")
	}
}

func TestRangeQueryAllFindsEverything(t *testing.T) {
	env, p := runProtocol(t, Default(), 18)
	var res proto.QueryResult
	got := false
	p.RangeQueryAll(env.Net.Nodes()[0], vector.Uniform(3, 5), func(r proto.QueryResult) {
		res = r
		got = true
	})
	env.Eng.Run(env.Eng.Now() + 10*sim.Minute)
	if !got {
		t.Fatal("range query never resolved")
	}
	// INSCAN-RQ must find at least as many candidates as the
	// single-message query, at higher traffic.
	single := queryOnce(t, env, p, env.Net.Nodes()[0], vector.Uniform(3, 5), 3)
	if len(res.Candidates) < len(single.Candidates) {
		t.Errorf("INSCAN-RQ found %d < single-message %d", len(res.Candidates), len(single.Candidates))
	}
	for _, c := range res.Candidates {
		if !c.Avail.Dominates(vector.Uniform(3, 5)) {
			t.Errorf("unqualified candidate %+v", c)
		}
	}
	// It must have found every rich node with a fresh record.
	if len(res.Candidates) == 0 {
		t.Error("INSCAN-RQ found nothing")
	}
}

func TestRangeQueryDeadRequester(t *testing.T) {
	env, p := runProtocol(t, Default(), 19)
	id := env.Net.Nodes()[4]
	env.Kill(id)
	p.NodeLeft(id)
	got := false
	p.RangeQueryAll(id, vector.Uniform(3, 5), func(r proto.QueryResult) {
		got = true
		if len(r.Candidates) != 0 {
			t.Errorf("dead requester got candidates")
		}
	})
	if !got {
		t.Fatal("range query from dead requester must resolve immediately")
	}
}

func BenchmarkDiffusionCycle(b *testing.B) {
	cmax := vector.Of(10, 10, 10, 10, 10)
	env := prototest.New(5, 512, cmax, 20)
	p, err := New(env, Default())
	if err != nil {
		b.Fatal(err)
	}
	p.Start()
	for _, id := range env.Net.Nodes() {
		p.state(id).cache.Put(proto.Record{Node: id, Avail: cmax.Scale(0.5), Stored: 0, Expires: sim.Day})
	}
	ids := env.Net.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.diffuse(ids[i%len(ids)])
		env.Eng.Run(env.Eng.Now() + sim.Second)
	}
}

func BenchmarkQuery(b *testing.B) {
	cmax := vector.Of(10, 10)
	env := prototest.New(2, 256, cmax, 21)
	for i, id := range env.Net.Nodes() {
		if i%4 == 0 {
			env.Avail[id] = vector.Of(8, 8)
		} else {
			env.Avail[id] = vector.Of(1, 1)
		}
	}
	p, err := New(env, Default())
	if err != nil {
		b.Fatal(err)
	}
	p.Start()
	env.Eng.Run(30 * sim.Minute)
	ids := env.Net.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		p.Query(ids[i%len(ids)], vector.Of(5, 5), 3, func(proto.QueryResult) { done = true })
		env.Eng.Run(env.Eng.Now() + 5*sim.Minute)
		if !done {
			b.Fatal("query did not resolve")
		}
	}
}

// Diffusion coverage must grow across rounds: random NINode walks
// make successive rounds reach different index nodes, so the union
// of PIList holders expands well beyond one round's ω.
func TestDiffusionCoverageGrowsAcrossRounds(t *testing.T) {
	env := testEnv(t, 3, 256, 23)
	cfg := Default()
	p := newPIDCAN(t, env, cfg)
	p.Start()
	// Give one interior node a record and diffuse repeatedly.
	var origin overlay.NodeID = -1
	for _, id := range env.Net.Nodes() {
		z, _ := env.Net.ZoneOf(id)
		if z.Lo[0] > 0.4 && z.Lo[1] > 0.4 && z.Lo[2] > 0.4 {
			origin = id
			break
		}
	}
	if origin < 0 {
		t.Skip("no interior node")
	}
	p.state(origin).cache.Put(proto.Record{
		Node: origin, Avail: vector.Uniform(3, 9), Stored: 0, Expires: sim.Day,
	})
	reachAfter := func(rounds int) int {
		for i := 0; i < rounds; i++ {
			p.diffuse(origin)
			env.Eng.Run(env.Eng.Now() + 10*sim.Second)
		}
		n := 0
		for _, id := range env.Net.Nodes() {
			if st := p.state(id); st != nil {
				if _, ok := st.pilist[origin]; ok {
					n++
				}
			}
		}
		return n
	}
	one := reachAfter(1)
	many := reachAfter(9) // cumulative: 10 rounds total
	if one == 0 {
		t.Fatal("first round reached nobody")
	}
	if many <= one {
		t.Errorf("coverage did not grow: round1=%d rounds10=%d", one, many)
	}
}

// The query must never return expired records even when caches still
// hold them.
func TestQueryIgnoresExpiredRecords(t *testing.T) {
	env := testEnv(t, 2, 32, 24)
	cfg := Default()
	cfg.StateTTL = 60 * sim.Second
	p := newPIDCAN(t, env, cfg)
	p.Start()
	// Plant a record directly and let it expire.
	duty := env.Net.OwnerAt(p.point(vector.Of(9, 9)))
	p.state(duty).cache.Put(proto.Record{
		Node: 3, Avail: vector.Of(9, 9), Stored: 0, Expires: 60 * sim.Second,
	})
	env.Eng.Run(5 * sim.Minute) // past expiry
	res := queryOnce(t, env, p, env.Net.Nodes()[0], vector.Of(8, 8), 2)
	for _, c := range res.Candidates {
		if c.Node == 3 {
			t.Error("expired record returned")
		}
	}
}

func TestAccessorsAndCMaxSource(t *testing.T) {
	env := testEnv(t, 2, 16, 25)
	p := newPIDCAN(t, env, Default())
	if p.Name() != "HID-CAN" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Config().L != 2 {
		t.Errorf("Config.L = %d", p.Config().L)
	}
	// SoS slack with an installed estimator must respect the
	// per-node bound.
	cfgS := Default()
	cfgS.SoS = true
	ps := newPIDCAN(t, env, cfgS)
	ps.SetCMaxSource(func(overlay.NodeID) vector.Vec { return vector.Of(6, 6) })
	e := vector.Of(4, 4)
	for i := 0; i < 50; i++ {
		s := ps.slack(3, e)
		if !s.Dominates(e) || !vector.Of(6, 6).Dominates(s) {
			t.Fatalf("slack %v outside [e, estimate]", s)
		}
	}
	// A nil/size-mismatched estimate falls back to env cmax.
	ps.SetCMaxSource(func(overlay.NodeID) vector.Vec { return nil })
	s := ps.slack(3, e)
	if !s.Dominates(e) || !env.Cmax.Dominates(s) {
		t.Errorf("fallback slack %v outside [e, cmax]", s)
	}
}

func TestStateUpdateNow(t *testing.T) {
	env := testEnv(t, 2, 32, 26)
	p := newPIDCAN(t, env, Default())
	p.Start()
	env.Avail[4] = vector.Of(7, 7)
	duty := env.Net.OwnerAt(p.point(vector.Of(7, 7)))
	p.StateUpdateNow(4)
	env.Eng.Run(5 * sim.Second)
	if st := p.state(duty); st == nil || len(st.cache.Qualified(vector.Of(6, 6), env.Eng.Now(), 0)) == 0 {
		t.Error("StateUpdateNow did not store the record")
	}
	// Dead node: no-op.
	env.Kill(4)
	p.NodeLeft(4)
	p.StateUpdateNow(4)
}

func TestQueryFromDeadRequester(t *testing.T) {
	env, p := runProtocol(t, Default(), 27)
	id := env.Net.Nodes()[7]
	env.Kill(id)
	p.NodeLeft(id)
	got := false
	p.Query(id, vector.Uniform(3, 5), 2, func(r proto.QueryResult) {
		got = true
		if len(r.Candidates) != 0 {
			t.Error("dead requester got candidates")
		}
	})
	if !got {
		t.Fatal("dead-requester query must resolve synchronously")
	}
}

func TestSoSRetriesWithOriginalDemand(t *testing.T) {
	// With an impossible slacked range but a satisfiable original
	// demand, SoS must fall back and still find candidates.
	cfg := Default()
	cfg.SoS = true
	env, p := runProtocol(t, cfg, 28)
	// Demand satisfiable by the top half of the diagonal cluster.
	res := queryOnce(t, env, p, env.Net.Nodes()[1], vector.Uniform(3, 5), 2)
	for _, c := range res.Candidates {
		if !c.Avail.Dominates(vector.Uniform(3, 5)) {
			t.Errorf("unqualified candidate after SoS fallback: %+v", c)
		}
	}
}
