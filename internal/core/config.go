// Package core implements PID-CAN, the paper's contribution (§III):
// proactive index diffusion over the INSCAN overlay (Algorithms 1–2),
// the contention-minimized three-phase range query (Algorithms 3–5),
// the Slack-on-Submission (SoS) and virtual-dimension (VD) variants,
// and the exhaustive INSCAN-RQ range query used as a traffic
// baseline (§III.A).
package core

import (
	"fmt"

	"pidcan/internal/sim"
)

// DiffusionMode selects the index-diffusion method of §III.B.
type DiffusionMode int

const (
	// Hopping forwards indexes from index-node to index-node along
	// each dimension (HID, Fig. 3(b)) — the paper's recommended
	// method. Reach per trigger: L + L² + … + L^d nodes.
	Hopping DiffusionMode = iota
	// Spreading has the origin select all L negative-index nodes
	// per dimension itself (SID, Fig. 3(a)). Fewer hops, narrower
	// reach: L·d nodes per trigger.
	Spreading
)

func (m DiffusionMode) String() string {
	switch m {
	case Hopping:
		return "HID"
	case Spreading:
		return "SID"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config parameterizes PID-CAN. Zero values are filled by Default().
type Config struct {
	// Mode is the index diffusion method (HID or SID).
	Mode DiffusionMode
	// L is the per-dimension diffusion fan-out (paper: "we always
	// set it to 2").
	L int
	// SoS enables Slack-on-Submission: the first query attempt uses
	// a randomly slacked expectation e′ with e ⪯ e′ ⪯ cmax (Formula
	// 3) and retries with the original e on a shortfall.
	SoS bool
	// VirtualDim marks that the overlay carries one extra virtual
	// dimension used only to disperse records and queries (the
	// SID-CAN+VD variant, paper ref [27]). The cloud layer builds
	// the overlay with dim = resource dims + 1 when set.
	VirtualDim bool
	// StateCycle is the state-update period (§IV.A: 400 s).
	StateCycle sim.Time
	// StateTTL is the state-record lifetime (§IV.A: 600 s).
	StateTTL sim.Time
	// DiffusionCycle is the index-sender period of Algorithm 1.
	DiffusionCycle sim.Time
	// IndexTTL is the PIList entry lifetime.
	IndexTTL sim.Time
	// JumpListSize bounds the index-jump list an agent assembles
	// from its PIList (Algorithm 4 line 1, "a few indexes").
	JumpListSize int
	// SkipDutyCache disables searching the duty node's own cache γ
	// before involving index agents. Algorithm 3 as printed never
	// consults it, but the duty node is the boundary-corner node of
	// Fig. 1 whose zone is part of the checked region, and its
	// records are structurally unreachable through the PILists of
	// its positive neighbors (diffusion flows strictly negative) —
	// so the intended protocol must include the local search. The
	// flag reproduces the literal pseudo-code as an ablation.
	SkipDutyCache bool
}

// Default returns the paper's §IV.A configuration.
func Default() Config {
	return Config{
		Mode:           Hopping,
		L:              2,
		StateCycle:     400 * sim.Second,
		StateTTL:       600 * sim.Second,
		DiffusionCycle: 400 * sim.Second,
		IndexTTL:       600 * sim.Second,
		JumpListSize:   8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.L < 1 {
		return fmt.Errorf("core: L %d < 1", c.L)
	}
	if c.StateCycle <= 0 || c.StateTTL <= 0 || c.DiffusionCycle <= 0 || c.IndexTTL <= 0 {
		return fmt.Errorf("core: non-positive cycle or TTL")
	}
	if c.JumpListSize < 1 {
		return fmt.Errorf("core: JumpListSize %d < 1", c.JumpListSize)
	}
	if c.Mode != Hopping && c.Mode != Spreading {
		return fmt.Errorf("core: unknown diffusion mode %d", c.Mode)
	}
	return nil
}

// Name returns the protocol label used in the paper's figures.
func (c Config) Name() string {
	name := c.Mode.String() + "-CAN"
	if c.SoS {
		name += "+SoS"
	}
	if c.VirtualDim {
		name += "+VD"
	}
	return name
}
