package serve

import (
	"slices"

	"pidcan/internal/proto"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

// Snapshot is an immutable copy-on-write view of one shard's record
// index: every alive node's advertised availability with freshness
// bounds, taken at a point of the shard's simulation clock. Shards
// publish snapshots through an atomic pointer; readers never lock,
// never mutate, and never observe a partially built snapshot.
type Snapshot struct {
	// Shard is the owning shard's index.
	Shard int
	// Version increments with every publication.
	Version uint64
	// Taken is the shard-local simulation time of the snapshot.
	Taken sim.Time
	// Records holds one record per alive node, ascending by node id.
	// Records, their Avail vectors, and everything reachable from
	// them are shared and must not be mutated.
	Records []proto.Record
	// idx ranks this snapshot's records for best-fit queries: the
	// flat dominance index built at publication, or the linear-scan
	// fallback (Config.IndexDisabled). Immutable and shared, like
	// everything else here. nil only in hand-rolled test snapshots,
	// which fall back to the linear scan.
	idx QueryIndex
}

// Search appends to dst the candidates needed to rank the k best-fit
// records of this snapshot dominating demand at the snapshot's
// simulation time, delegating to the published QueryIndex (it may
// append a few extra near-tie candidates beyond k; callers rank the
// merged set). The second result counts records visited.
func (s *Snapshot) Search(dst []Candidate, demand, scale vector.Vec, k int) ([]Candidate, int) {
	if s.idx == nil {
		return s.collect(dst, demand, scale, s.Taken), len(s.Records)
	}
	return s.idx.Search(dst, demand, s.Taken, k)
}

// Candidate is one qualified node of a query response.
type Candidate struct {
	// Node is the cross-shard global id — for a migrated node, the
	// stable external id Join handed out (the same id Nodes
	// reports), which stays routable wherever the node lives.
	Node GlobalID `json:"node"`
	// Avail is the advertised availability behind the match.
	Avail vector.Vec `json:"avail"`
	// Surplus is the normalized slack of Avail over the demand the
	// caller actually sent (cached candidate sets are re-scored
	// against it before the response returns); the best fit is the
	// smallest surplus.
	Surplus float64 `json:"surplus"`
}

// collect appends to dst a candidate for every unexpired record that
// dominates demand, computing the best-fit surplus against scale.
func (s *Snapshot) collect(dst []Candidate, demand, scale vector.Vec, now sim.Time) []Candidate {
	for _, r := range s.Records {
		if r.Expired(now) || !r.Avail.Dominates(demand) {
			continue
		}
		dst = append(dst, Candidate{
			Node:    Global(s.Shard, r.Node),
			Avail:   r.Avail,
			Surplus: r.Avail.Surplus(demand, scale),
		})
	}
	return dst
}

// bestFit sorts candidates by ascending surplus (ties broken by
// global id, for deterministic responses) and truncates to k.
// k <= 0 means no limit. (slices.SortFunc, not sort.Slice: the
// comparator is a total order — no two candidates share surplus AND
// node — so the non-stable sort is deterministic, without the
// reflection-based swapping that dominated query-path profiles.)
func bestFit(cands []Candidate, k int) []Candidate {
	slices.SortFunc(cands, func(a, b Candidate) int {
		if a.Surplus != b.Surplus {
			if a.Surplus < b.Surplus {
				return -1
			}
			return 1
		}
		if a.Node != b.Node {
			if a.Node < b.Node {
				return -1
			}
			return 1
		}
		return 0
	})
	if k > 0 && len(cands) > k {
		cands = cands[:k]
	}
	return cands
}
