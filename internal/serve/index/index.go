// Package index implements the flat, immutable multi-dimensional
// dominance index behind the serving engine's snapshot read path.
//
// The structure exploits one algebraic fact about the paper's
// best-fit ranking: the normalized surplus of a record r against a
// demand w, Σ_k (r.Avail[k]-w[k])/cmax[k], separates into
// score(r) - D where score(r) = Σ_k r.Avail[k]/cmax[k] depends only
// on the record and D = Σ_k w[k]/cmax[k] only on the demand. Best-fit
// order is therefore a single demand-independent total order over the
// records — ascending score — computed once per snapshot publication
// instead of once per query.
//
// A Flat index holds the snapshot's records sorted by (score, node):
// a structure-of-arrays layout with the per-entry score array (binary
// searched), a row-major packed availability matrix (scanned for the
// dominance test without touching the record structs), the per-entry
// expiry array, and per-dimension suffix-max arrays over the sorted
// order (consulted every pruneEvery non-matching entries: once no
// later entry can dominate some dimension of the demand, the scan
// stops early).
//
// A query for the k best records dominating demand then:
//
//  1. binary-searches the score array for the first entry with
//     score >= D — a necessary condition for dominance, and exact in
//     floating point because score and D are accumulated with the
//     same per-dimension multiplications in the same order;
//  2. scans ascending, keeping unexpired entries whose availability
//     row dominates the demand — the first k such entries are the k
//     smallest-surplus matches, so the scan stops as soon as the
//     score passes the k-th match's score (plus a tie slack that
//     keeps near-equal-score entries in play: the caller re-ranks by
//     the exactly-computed surplus, so rounding between score
//     subtraction and the reference Σ(a-w)/c summation can never
//     change the reported candidate set).
//
// Rebuilds amortize against the engine's batched write drain: Update
// merges the previous sorted order (minus the batch's dirty nodes)
// with the freshly scored dirty entries in O(n + b·log b) — no
// O(n log n) re-sort — and a publication that changed nothing reuses
// the previous index outright.
package index

import (
	"math"
	"sort"

	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

// pruneEvery is how many consecutive non-matching entries the scan
// visits between suffix-max prune checks. Small enough to cut a
// hopeless tail quickly, large enough that the d-wide check never
// rivals the per-entry dominance test itself.
const pruneEvery = 32

// tieSlack bounds how far apart two scores can be while their
// exactly-computed surpluses could still order the other way. The
// score arithmetic (multiply by 1/cmax, sum) and the reference
// surplus arithmetic (subtract, divide by cmax, sum) agree to ~1e-15
// relative per dimension; 1e-9 absolute over scores in [0, dims] is
// orders of magnitude beyond any reachable discrepancy.
const tieSlack = 1e-9

// Flat is the immutable per-snapshot dominance index. Build it with
// Build or derive it from a predecessor with Update; never mutate it
// afterwards — concurrent readers Search it lock-free.
type Flat struct {
	recs []proto.Record // the indexed records, ascending by node id (shared)

	// Sorted-order arrays, one entry per record, ascending
	// (score, node).
	nodes   []overlay.NodeID
	score   []float64
	expires []sim.Time
	vals    []float64 // row-major: entry i's availability at vals[i*dims : (i+1)*dims]
	sufMax  []float64 // column-major: sufMax[d*n+i] = max of vals[j*dims+d] for j >= i

	inv    []float64 // 1/cmax[d] for cmax[d] > 0, else 0 (dimension unscored)
	dims   int
	expiry bool // any entry with a finite expiry (skip the check otherwise)
}

// Build indexes recs (ascending by node id, as snapshots publish
// them) against the cmax scale. The records and their availability
// vectors are shared, not copied, and must stay immutable.
func Build(recs []proto.Record, cmax vector.Vec) *Flat {
	f := newFlat(recs, cmax)
	n := len(recs)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	scores := make([]float64, n)
	for i := range recs {
		scores[i] = f.scoreOf(recs[i].Avail)
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if scores[i] != scores[j] {
			return scores[i] < scores[j]
		}
		return recs[i].Node < recs[j].Node
	})
	for i, p := range order {
		f.setEntry(i, &recs[p], scores[p])
	}
	f.finish()
	return f
}

// Update derives the index for recs from its predecessor f: entries
// of untouched nodes keep their scored rows (merged in previous
// sorted order), only the dirty nodes are re-scored and re-sorted.
// dirty holds (as keys — the values are ignored) every node whose
// record changed, appeared, or disappeared since f was built; recs
// must already reflect those changes. Cost is O(n·d + b·log b) for b
// dirty nodes.
func (f *Flat) Update(recs []proto.Record, dirty map[overlay.NodeID]bool) *Flat {
	nf := newFlat(recs, nil)
	nf.inv = f.inv
	// Score the dirty survivors (recs is ascending by node, so the
	// fresh entries come out pre-sorted by node — the tie-break —
	// and only need sorting by score).
	type fresh struct {
		rec   *proto.Record
		score float64
	}
	var add []fresh
	for i := range recs {
		if _, touched := dirty[recs[i].Node]; touched {
			add = append(add, fresh{rec: &recs[i], score: nf.scoreOf(recs[i].Avail)})
		}
	}
	sort.SliceStable(add, func(a, b int) bool { return add[a].score < add[b].score })
	// Merge: previous order minus dirty nodes, interleaved with the
	// fresh entries by (score, node).
	out, j := 0, 0
	for i := 0; i < len(f.nodes); i++ {
		if _, touched := dirty[f.nodes[i]]; touched {
			continue
		}
		for j < len(add) && (add[j].score < f.score[i] ||
			(add[j].score == f.score[i] && add[j].rec.Node < f.nodes[i])) {
			nf.setEntry(out, add[j].rec, add[j].score)
			out++
			j++
		}
		nf.copyEntry(out, f, i)
		out++
	}
	for ; j < len(add); j++ {
		nf.setEntry(out, add[j].rec, add[j].score)
		out++
	}
	nf.finish()
	return nf
}

func newFlat(recs []proto.Record, cmax vector.Vec) *Flat {
	f := &Flat{recs: recs}
	if cmax != nil {
		f.dims = cmax.Dim()
		f.inv = make([]float64, f.dims)
		for d, c := range cmax {
			if c > 0 {
				f.inv[d] = 1 / c
			}
		}
	}
	n := len(recs)
	f.nodes = make([]overlay.NodeID, n)
	f.score = make([]float64, n)
	f.expires = make([]sim.Time, n)
	return f
}

// scoreOf computes Σ_d avail[d]*inv[d] over the scored dimensions —
// the same terms, accumulated in the same order, as the D a Search
// computes from its demand, so score >= D is exact for any
// dominating record.
func (f *Flat) scoreOf(avail vector.Vec) float64 {
	s := 0.0
	for d, inv := range f.inv {
		if inv > 0 {
			s += avail[d] * inv
		}
	}
	return s
}

func (f *Flat) setEntry(i int, r *proto.Record, score float64) {
	if f.vals == nil {
		f.dims = len(f.inv)
		f.vals = make([]float64, len(f.nodes)*f.dims)
	}
	f.nodes[i] = r.Node
	f.score[i] = score
	f.expires[i] = r.Expires
	copy(f.vals[i*f.dims:(i+1)*f.dims], r.Avail)
}

func (f *Flat) copyEntry(i int, src *Flat, j int) {
	if f.vals == nil {
		f.dims = src.dims
		f.vals = make([]float64, len(f.nodes)*f.dims)
	}
	f.nodes[i] = src.nodes[j]
	f.score[i] = src.score[j]
	f.expires[i] = src.expires[j]
	copy(f.vals[i*f.dims:(i+1)*f.dims], src.vals[j*src.dims:(j+1)*src.dims])
}

// finish derives the suffix-max pruning arrays and the expiry flag.
func (f *Flat) finish() {
	n := len(f.nodes)
	if f.vals == nil {
		f.dims = len(f.inv)
		f.vals = make([]float64, 0)
	}
	f.sufMax = make([]float64, f.dims*n)
	for d := 0; d < f.dims; d++ {
		col := f.sufMax[d*n : (d+1)*n]
		m := math.Inf(-1)
		for i := n - 1; i >= 0; i-- {
			if v := f.vals[i*f.dims+d]; v > m {
				m = v
			}
			col[i] = m
		}
	}
	const never = sim.Time(1<<63 - 1)
	for _, e := range f.expires {
		if e != never {
			f.expiry = true
			break
		}
	}
}

// Len returns the number of indexed records.
func (f *Flat) Len() int { return len(f.recs) }

// NodeAt returns the node id of the sorted-order entry a Search
// returned.
func (f *Flat) NodeAt(entry int32) overlay.NodeID { return f.nodes[entry] }

// Row returns the availability vector of the sorted-order entry — a
// read-only view into the index's packed matrix, value-identical to
// the indexed record's Avail (capped so an append cannot spill into
// the neighboring row).
func (f *Flat) Row(entry int32) vector.Vec {
	a := int(entry) * f.dims
	return vector.Vec(f.vals[a : a+f.dims : a+f.dims])
}

// Record returns the indexed record of the node (binary search over
// the ascending-by-node record array), or nil for an unknown id.
func (f *Flat) Record(id overlay.NodeID) *proto.Record {
	i := sort.Search(len(f.recs), func(i int) bool { return f.recs[i].Node >= id })
	if i < len(f.recs) && f.recs[i].Node == id {
		return &f.recs[i]
	}
	return nil
}

// Search appends to dst the sorted-order entry positions (resolve
// them with NodeAt/Row) of every record needed to rank the k
// smallest-surplus unexpired records dominating demand: the first k
// matches in score order plus any further match within tieSlack of
// the k-th score (so a caller re-ranking by exact surplus can never
// be missing a true top-k member). k <= 0 returns every match. The
// second result is how many sorted entries the scan visited — the
// sub-linearity measurement the engine aggregates.
func (f *Flat) Search(dst []int32, demand vector.Vec, now sim.Time, k int) ([]int32, int) {
	n := len(f.nodes)
	if n == 0 {
		return dst, 0
	}
	D := f.scoreOf(demand)
	lo := sort.SearchFloat64s(f.score, D)
	found, visited := 0, 0
	cutoff := math.Inf(1)
	misses := 0
	for i := lo; i < n; i++ {
		if f.score[i] > cutoff {
			break
		}
		visited++
		if f.expiry && now >= f.expires[i] {
			continue
		}
		row := f.vals[i*f.dims : (i+1)*f.dims]
		dom := true
		for d, w := range demand {
			if row[d] < w {
				dom = false
				break
			}
		}
		if dom {
			dst = append(dst, int32(i))
			found++
			if k > 0 && found == k {
				cutoff = f.score[i] + tieSlack
			}
			continue
		}
		if misses++; misses >= pruneEvery {
			misses = 0
			for d, w := range demand {
				if f.sufMax[d*n+i] < w {
					return dst, visited
				}
			}
		}
	}
	return dst, visited
}
