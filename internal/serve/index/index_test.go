package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

const never = sim.Time(1<<63 - 1)

// randPopulation builds n records ascending by node id with
// availabilities drawn under cmax; a fraction get finite expiries
// around now so Search sees both live and stale entries.
func randPopulation(rng *rand.Rand, n int, cmax vector.Vec, now sim.Time) []proto.Record {
	recs := make([]proto.Record, n)
	for i := range recs {
		a := vector.New(cmax.Dim())
		for d := range a {
			a[d] = cmax[d] * rng.Float64()
			if rng.Intn(8) == 0 {
				a[d] = 0 // exact-zero edges: score ties, flat dimensions
			}
		}
		exp := never
		switch rng.Intn(4) {
		case 0:
			exp = now - sim.Time(rng.Intn(50)) // already expired
		case 1:
			exp = now + 1 + sim.Time(rng.Intn(100))
		}
		recs[i] = proto.Record{Node: overlay.NodeID(i * 2), Avail: a, Expires: exp}
	}
	return recs
}

// bruteTopK is the reference ranking the engine's linear path
// produces: every unexpired dominating record, sorted by ascending
// (exact surplus, node), truncated to k.
func bruteTopK(recs []proto.Record, demand, cmax vector.Vec, now sim.Time, k int) []overlay.NodeID {
	type cand struct {
		node    overlay.NodeID
		surplus float64
	}
	var cands []cand
	for _, r := range recs {
		if r.Expired(now) || !r.Avail.Dominates(demand) {
			continue
		}
		cands = append(cands, cand{r.Node, r.Avail.Surplus(demand, cmax)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].surplus != cands[j].surplus {
			return cands[i].surplus < cands[j].surplus
		}
		return cands[i].node < cands[j].node
	})
	if k > 0 && len(cands) > k {
		cands = cands[:k]
	}
	out := make([]overlay.NodeID, len(cands))
	for i, c := range cands {
		out[i] = c.node
	}
	return out
}

// rankReturned re-ranks the index's (superset) answer the way the
// engine does — exact surplus, node tie-break — and truncates to k.
func rankReturned(f *Flat, entries []int32, demand, cmax vector.Vec, k int) []overlay.NodeID {
	type cand struct {
		node    overlay.NodeID
		surplus float64
	}
	cands := make([]cand, 0, len(entries))
	for _, e := range entries {
		cands = append(cands, cand{f.NodeAt(e), f.Row(e).Surplus(demand, cmax)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].surplus != cands[j].surplus {
			return cands[i].surplus < cands[j].surplus
		}
		return cands[i].node < cands[j].node
	})
	if k > 0 && len(cands) > k {
		cands = cands[:k]
	}
	out := make([]overlay.NodeID, len(cands))
	for i, c := range cands {
		out[i] = c.node
	}
	return out
}

// TestSearchMatchesLinear is the index-vs-linear property test: over
// randomized populations, demands, expiries, and k, the index's
// re-ranked answer must be identical — same nodes, same order — to
// the brute-force linear ranking.
func TestSearchMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		dims := 1 + rng.Intn(4)
		cmax := vector.New(dims)
		for d := range cmax {
			cmax[d] = 1 + 20*rng.Float64()
		}
		if rng.Intn(6) == 0 {
			cmax[rng.Intn(dims)] = 0 // unscored dimension
		}
		now := sim.Time(1000)
		recs := randPopulation(rng, rng.Intn(120), cmax, now)
		f := Build(recs, cmax)

		for q := 0; q < 20; q++ {
			demand := vector.New(dims)
			for d := range demand {
				demand[d] = cmax[d] * rng.Float64() * 0.9
				if rng.Intn(8) == 0 {
					demand[d] = 0
				}
			}
			// Half the demands copy a record's availability exactly,
			// forcing score == D boundary hits.
			if rng.Intn(2) == 0 && len(recs) > 0 {
				demand = recs[rng.Intn(len(recs))].Avail.Clone()
			}
			k := rng.Intn(12) // 0 = unlimited
			got, visited := f.Search(nil, demand, now, k)
			if visited > len(recs) {
				t.Fatalf("visited %d of %d records", visited, len(recs))
			}
			want := bruteTopK(recs, demand, cmax, now, k)
			ranked := rankReturned(f, got, demand, cmax, k)
			if len(ranked) != len(want) {
				t.Fatalf("trial %d q %d: got %d ranked (%v), want %d (%v)",
					trial, q, len(ranked), ranked, len(want), want)
			}
			for i := range want {
				if ranked[i] != want[i] {
					t.Fatalf("trial %d q %d pos %d: got %v, want %v",
						trial, q, i, ranked, want)
				}
			}
		}
	}
}

// TestUpdateMatchesBuild: applying randomized churn batches through
// Update must yield exactly the index a from-scratch Build produces.
func TestUpdateMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cmax := vector.Of(8, 12, 5)
	now := sim.Time(500)
	recs := randPopulation(rng, 60, cmax, now)
	f := Build(recs, cmax)
	next := overlay.NodeID(1000)

	for batch := 0; batch < 50; batch++ {
		dirty := map[overlay.NodeID]bool{}
		cur := append([]proto.Record(nil), recs...)
		for op := 0; op < 1+rng.Intn(10); op++ {
			switch {
			case rng.Intn(3) == 0 && len(cur) > 0: // leave
				i := rng.Intn(len(cur))
				dirty[cur[i].Node] = false
				cur = append(cur[:i], cur[i+1:]...)
			case rng.Intn(3) == 0: // join
				a := vector.New(cmax.Dim())
				for d := range a {
					a[d] = cmax[d] * rng.Float64()
				}
				r := proto.Record{Node: next, Avail: a, Expires: now + sim.Time(rng.Intn(200))}
				next++
				cur = append(cur, r)
				dirty[r.Node] = true
			default: // re-advertise
				if len(cur) == 0 {
					continue
				}
				i := rng.Intn(len(cur))
				a := vector.New(cmax.Dim())
				for d := range a {
					a[d] = cmax[d] * rng.Float64()
				}
				cur[i].Avail = a
				cur[i].Expires = never
				dirty[cur[i].Node] = true
			}
		}
		sort.Slice(cur, func(i, j int) bool { return cur[i].Node < cur[j].Node })
		f = f.Update(cur, dirty)
		recs = cur

		want := Build(recs, cmax)
		if len(f.nodes) != len(want.nodes) {
			t.Fatalf("batch %d: %d entries after Update, want %d", batch, len(f.nodes), len(want.nodes))
		}
		for i := range want.nodes {
			if f.nodes[i] != want.nodes[i] || f.score[i] != want.score[i] ||
				f.expires[i] != want.expires[i] {
				t.Fatalf("batch %d entry %d: Update (%d,%v,%d) != Build (%d,%v,%d)",
					batch, i, f.nodes[i], f.score[i], f.expires[i],
					want.nodes[i], want.score[i], want.expires[i])
			}
		}
		for i := range want.vals {
			if f.vals[i] != want.vals[i] {
				t.Fatalf("batch %d: vals[%d] = %v, want %v", batch, i, f.vals[i], want.vals[i])
			}
		}
		for i := range want.sufMax {
			if f.sufMax[i] != want.sufMax[i] {
				t.Fatalf("batch %d: sufMax[%d] = %v, want %v", batch, i, f.sufMax[i], want.sufMax[i])
			}
		}
	}
}

// TestSearchSubLinear: on a large uniform population with a demanding
// query, the scan must visit far fewer entries than a linear pass.
func TestSearchSubLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cmax := vector.Of(10, 10, 10, 10)
	n := 20000
	recs := make([]proto.Record, n)
	for i := range recs {
		a := vector.New(4)
		for d := range a {
			a[d] = cmax[d] * rng.Float64()
		}
		recs[i] = proto.Record{Node: overlay.NodeID(i), Avail: a, Expires: never}
	}
	f := Build(recs, cmax)
	total := 0
	for q := 0; q < 100; q++ {
		demand := vector.New(4)
		for d := range demand {
			demand[d] = cmax[d] * rng.Float64() * 0.6
		}
		nodes, visited := f.Search(nil, demand, sim.Time(0), 8)
		total += visited
		want := bruteTopK(recs, demand, cmax, sim.Time(0), 8)
		ranked := rankReturned(f, nodes, demand, cmax, 8)
		for i := range want {
			if i >= len(ranked) || ranked[i] != want[i] {
				t.Fatalf("q %d: ranked %v, want %v", q, ranked, want)
			}
		}
	}
	if avg := float64(total) / 100; avg > float64(n)/5 {
		t.Fatalf("avg %.0f entries visited per query on %d records — not sub-linear", avg, n)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	f := Build(nil, vector.Of(1, 1))
	if got, visited := f.Search(nil, vector.Of(0.5, 0.5), 0, 3); len(got) != 0 || visited != 0 {
		t.Fatalf("empty index returned %v (visited %d)", got, visited)
	}
	if f.Len() != 0 {
		t.Fatalf("empty index Len = %d", f.Len())
	}
	// All-zero cmax: every score is 0, search degenerates to a scan.
	recs := []proto.Record{
		{Node: 1, Avail: vector.Of(3, 3), Expires: never},
		{Node: 2, Avail: vector.Of(1, 1), Expires: never},
	}
	z := Build(recs, vector.Of(0, 0))
	got, _ := z.Search(nil, vector.Of(2, 2), 0, 0)
	if len(got) != 1 || z.NodeAt(got[0]) != 1 {
		t.Fatalf("zero-scale search returned %v, want [node 1]", got)
	}
	if z.Record(2) == nil || z.Record(99) != nil {
		t.Fatal("Record lookup misbehaved")
	}
	if math.IsNaN(z.score[0]) {
		t.Fatal("zero-scale score is NaN")
	}
}
