// Package capture records a serving engine's live operation stream
// into a replayable binary trace: every answered query (demand
// vector, scope flags, arrival delta, response digest) interleaved
// with the engine's mutation stream (the same canonical wal records
// the op-log appends), in one total order. The recorder attaches to
// an engine through serve.SetCapture and never blocks the serving
// path: the capturing goroutine encodes each event into a bounded
// in-memory buffer a background writer flushes to the trace file,
// and a full buffer drops (and counts) instead of stalling a query.
//
// A trace file is a fixed header (the engine shape a replay must
// rebuild: shards, nodes per shard, seed, CMax) followed by
// CRC-framed events — the exact frame format wal segments use, so
// the torn-tail discipline is shared: a crash mid-write truncates
// the trace at the last whole event.
package capture

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/serve/wal"
)

// EventKind types a trace event. On-disk values; do not renumber.
type EventKind uint8

const (
	// EvQuery is one answered query: its request shape and the digest
	// of the ranked candidates it returned.
	EvQuery EventKind = 1
	// EvMutation is one applied mutation, carried as the canonical
	// wal record its shard produced.
	EvMutation EventKind = 2
	// EvFault is a scripted fault a scenario injects at this point of
	// the stream (never emitted by live capture).
	EvFault EventKind = 3
)

// FaultKind enumerates scripted faults. On-disk values.
type FaultKind uint8

const (
	// FaultHaltShard halts shard Target permanently.
	FaultHaltShard FaultKind = 1
	// FaultKillMember kills federation member Target; replayed
	// against a single engine it halts shard Target as the
	// in-process stand-in.
	FaultKillMember FaultKind = 2
	// FaultPromote promotes the replay target (meaningful when it is
	// a follower; skipped otherwise).
	FaultPromote FaultKind = 3
	// FaultRebalance runs one explicit rebalance pass.
	FaultRebalance FaultKind = 4
)

// Event is one trace entry.
type Event struct {
	Kind EventKind
	// At is the event's offset from the trace start — the arrival
	// delta recorded pacing reproduces.
	At time.Duration

	// Query fields (EvQuery).
	Demand     []float64
	K          int
	Consistent bool
	ScopeOne   bool
	NoCache    bool
	// Cached reports the response came from the query cache; strict
	// digest comparison skips cached responses (cell-demand
	// evaluation makes them legitimately differ from a cold replay).
	Cached bool
	// Digest is the response digest (see Digest) captured live.
	Digest uint64
	// NCand is how many candidates the response carried.
	NCand int

	// Mutation fields (EvMutation).
	Shard int
	Rec   wal.Record

	// Fault fields (EvFault).
	Fault  FaultKind
	Target int
}

// Header is the engine shape stamped into a trace so replay can
// rebuild an identically parameterized fresh engine.
type Header struct {
	Shards        int
	NodesPerShard int
	Seed          uint64
	CMax          []float64
}

const (
	traceMagic   = "PIDTRC01"
	traceVersion = 1
)

// query event flag bits (on-disk).
const (
	qfConsistent = 1 << 0
	qfScopeOne   = 1 << 1
	qfNoCache    = 1 << 2
	qfCached     = 1 << 3
)

// Digest is the order-sensitive digest of a ranked candidate list:
// length, then each candidate's node id and the raw bits of its
// surplus, folded FNV-style one word at a time (whole-u64 rounds, not
// per byte — the digest runs on the serving path, inside the capture
// overhead budget). Two responses digest equal iff they carry the
// same candidates, in the same order, with bit-identical surpluses —
// the equivalence the index-vs-linear-scan property tests already
// guarantee across read-path implementations.
func Digest(cands []serve.Candidate) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(len(cands)))
	for i := range cands {
		mix(uint64(cands[i].Node))
		mix(math.Float64bits(cands[i].Surplus))
	}
	return h
}

func encodeHeader(h Header) []byte {
	buf := make([]byte, 0, 28+8*len(h.CMax))
	buf = append(buf, traceMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, traceVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(h.CMax)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Shards))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.NodesPerShard))
	buf = binary.LittleEndian.AppendUint64(buf, h.Seed)
	for _, v := range h.CMax {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func decodeHeader(data []byte) (Header, int, error) {
	if len(data) < 28 || string(data[:8]) != traceMagic {
		return Header{}, 0, fmt.Errorf("capture: not a trace file (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(data[8:]); v != traceVersion {
		return Header{}, 0, fmt.Errorf("capture: trace version %d (want %d)", v, traceVersion)
	}
	dims := int(binary.LittleEndian.Uint16(data[10:]))
	h := Header{
		Shards:        int(binary.LittleEndian.Uint32(data[12:])),
		NodesPerShard: int(binary.LittleEndian.Uint32(data[16:])),
		Seed:          binary.LittleEndian.Uint64(data[20:]),
	}
	n := 28 + 8*dims
	if len(data) < n {
		return Header{}, 0, fmt.Errorf("capture: trace header truncated")
	}
	h.CMax = make([]float64, dims)
	for i := range h.CMax {
		h.CMax[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[28+8*i:]))
	}
	return h, n, nil
}

// appendEvent appends ev's frame payload to dst (rbuf scratches the
// inner wal-record encoding).
func appendEvent(dst []byte, ev *Event, rbuf *bytes.Buffer) ([]byte, error) {
	dst = append(dst, byte(ev.Kind))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(ev.At))
	switch ev.Kind {
	case EvQuery:
		var flags byte
		if ev.Consistent {
			flags |= qfConsistent
		}
		if ev.ScopeOne {
			flags |= qfScopeOne
		}
		if ev.NoCache {
			flags |= qfNoCache
		}
		if ev.Cached {
			flags |= qfCached
		}
		dst = append(dst, flags)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(ev.K))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(ev.NCand))
		dst = binary.LittleEndian.AppendUint64(dst, ev.Digest)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(ev.Demand)))
		for _, v := range ev.Demand {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case EvMutation:
		dst = binary.LittleEndian.AppendUint16(dst, uint16(ev.Shard))
		rbuf.Reset()
		if _, err := wal.EncodeRecords(rbuf, []wal.Record{ev.Rec}); err != nil {
			return dst, err
		}
		dst = append(dst, rbuf.Bytes()...)
	case EvFault:
		dst = append(dst, byte(ev.Fault))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(ev.Target))
	default:
		return dst, fmt.Errorf("capture: unknown event kind %d", ev.Kind)
	}
	return dst, nil
}

// decodeEvent parses one event from a verified frame payload.
func decodeEvent(p []byte) (Event, error) {
	if len(p) < 9 {
		return Event{}, fmt.Errorf("capture: event payload too short (%d bytes)", len(p))
	}
	ev := Event{
		Kind: EventKind(p[0]),
		At:   time.Duration(binary.LittleEndian.Uint64(p[1:])),
	}
	p = p[9:]
	switch ev.Kind {
	case EvQuery:
		if len(p) < 15 {
			return Event{}, fmt.Errorf("capture: query event truncated")
		}
		flags := p[0]
		ev.Consistent = flags&qfConsistent != 0
		ev.ScopeOne = flags&qfScopeOne != 0
		ev.NoCache = flags&qfNoCache != 0
		ev.Cached = flags&qfCached != 0
		ev.K = int(binary.LittleEndian.Uint16(p[1:]))
		ev.NCand = int(binary.LittleEndian.Uint16(p[3:]))
		ev.Digest = binary.LittleEndian.Uint64(p[5:])
		dims := int(binary.LittleEndian.Uint16(p[13:]))
		if len(p) < 15+8*dims {
			return Event{}, fmt.Errorf("capture: query demand truncated")
		}
		ev.Demand = make([]float64, dims)
		for i := range ev.Demand {
			ev.Demand[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[15+8*i:]))
		}
	case EvMutation:
		if len(p) < 2 {
			return Event{}, fmt.Errorf("capture: mutation event truncated")
		}
		ev.Shard = int(binary.LittleEndian.Uint16(p[0:]))
		recs, err := wal.DecodeRecords(p[2:])
		if err != nil || len(recs) != 1 {
			return Event{}, fmt.Errorf("capture: mutation event record: %v (%d records)", err, len(recs))
		}
		ev.Rec = recs[0]
	case EvFault:
		if len(p) < 5 {
			return Event{}, fmt.Errorf("capture: fault event truncated")
		}
		ev.Fault = FaultKind(p[0])
		ev.Target = int(binary.LittleEndian.Uint32(p[1:]))
	default:
		return Event{}, fmt.Errorf("capture: unknown event kind %d", ev.Kind)
	}
	return ev, nil
}

// Writer streams a trace: header first, then one CRC frame per
// event. Not safe for concurrent use; the Recorder serializes writes
// through its background goroutine.
type Writer struct {
	w     io.Writer
	buf   []byte // event payload scratch
	frame []byte // framed-event scratch
	rbuf  bytes.Buffer
	wrote int64
}

// NewWriter writes the trace header for shape h and returns the
// writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	hdr := encodeHeader(h)
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{w: w, wrote: int64(len(hdr))}, nil
}

// WriteEvent frames and writes one event.
func (w *Writer) WriteEvent(ev *Event) error {
	payload, err := appendEvent(w.buf[:0], ev, &w.rbuf)
	w.buf = payload
	if err != nil {
		return err
	}
	w.frame = wal.AppendFrame(w.frame[:0], payload)
	if _, err := w.w.Write(w.frame); err != nil {
		return err
	}
	w.wrote += int64(len(w.frame))
	return nil
}

// Bytes is the trace bytes written so far (header included).
func (w *Writer) Bytes() int64 { return w.wrote }

// DecodeTrace parses a trace image: header, every whole event, and
// how many torn trailing bytes were dropped (a crash mid-write ends
// a trace the same way it ends a wal segment). An event frame that
// verifies its CRC but fails event decoding is corruption, not a
// torn tail, and errors out.
func DecodeTrace(data []byte) (Header, []Event, int64, error) {
	h, off, err := decodeHeader(data)
	if err != nil {
		return Header{}, nil, 0, err
	}
	var events []Event
	for {
		p, n, ok := wal.NextFrame(data[off:])
		if !ok {
			break
		}
		ev, err := decodeEvent(p)
		if err != nil {
			return Header{}, nil, 0, fmt.Errorf("capture: event %d: %w", len(events), err)
		}
		events = append(events, ev)
		off += n
	}
	return h, events, int64(len(data) - off), nil
}

// ReadTraceFile reads and decodes a trace file.
func ReadTraceFile(path string) (Header, []Event, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, 0, err
	}
	return DecodeTrace(data)
}
