package capture

import (
	"bytes"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/serve/wal"
)

// RecorderConfig parameterizes a Recorder.
type RecorderConfig struct {
	// Ring bounds how many captured events may sit encoded in memory
	// waiting for the background writer (default 8192). A full buffer
	// drops the event and counts it; it never blocks serving.
	Ring int
	// Start anchors the trace clock (default: time of NewRecorder).
	Start time.Time
}

// Recorder implements serve.CaptureSink: it turns the engine's live
// operation stream into a trace file. Attach with
// engine.SetCapture(rec); detach (SetCapture(nil)) before Close.
//
// The hot path is a single short mutex: the capturing goroutine
// encodes the event's CRC frame straight into a shared append buffer
// — no per-event allocation, no queue handoff, and the caller's
// demand/avail slices are read synchronously so nothing is copied
// twice. A background writer swaps the buffer out at a short
// interval and writes the pre-encoded blob to the trace file, so
// file I/O never happens under the lock or on the serving path.
type Recorder struct {
	path  string
	f     *os.File
	start time.Time
	max   int // Ring: max events buffered before drop

	mu       sync.Mutex
	buf      []byte // encoded frames pending write (starts with the header)
	spare    []byte // swap target, reused between flushes
	scratch  []byte // payload scratch, reused per event
	rbuf     bytes.Buffer
	buffered int  // events in buf
	stopped  bool // set by Close under mu: reject new events
	// Counter shadows bumped under mu on the hot path; the writer
	// mirrors them into the atomic gauges once per flush so capture
	// pays no per-event atomic RMWs.
	recorded uint64
	appended int64

	quit chan struct{}
	done chan struct{}

	records   atomic.Uint64
	dropped   atomic.Uint64
	bytes     atomic.Int64
	writeErrs atomic.Uint64
	lastErr   error // background writer only; read after <-done
	closed    atomic.Bool
}

// NewRecorder creates the trace file at path under shape h and
// starts the background writer.
func NewRecorder(path string, h Header, cfg RecorderConfig) (*Recorder, error) {
	if cfg.Ring <= 0 {
		cfg.Ring = 8192
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Now()
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		path:  path,
		f:     f,
		start: cfg.Start,
		max:   cfg.Ring,
		buf:   encodeHeader(h),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	r.appended = int64(len(r.buf))
	r.bytes.Store(r.appended)
	go r.run()
	return r, nil
}

// Path returns the trace file's path.
func (r *Recorder) Path() string { return r.path }

// CaptureQuery records one answered query (errored queries are not
// replayable and are skipped). Called on the serving goroutine.
func (r *Recorder) CaptureQuery(req serve.QueryRequest, resp *serve.QueryResponse, err error) {
	if err != nil || r.closed.Load() {
		return
	}
	ev := Event{
		Kind:       EvQuery,
		At:         time.Since(r.start),
		Demand:     req.Demand, // aliased: encoded under the lock, never retained
		K:          req.K,
		Consistent: req.Consistent,
		ScopeOne:   req.Scope == serve.ScopeOne,
		NoCache:    req.NoCache,
		Cached:     resp.Cached,
		Digest:     Digest(resp.Candidates),
		NCand:      len(resp.Candidates),
	}
	r.mu.Lock()
	r.append(&ev)
	r.mu.Unlock()
}

// CaptureMutations records a shard batch's applied mutations, one
// event per record, in application order. Called on the shard
// goroutine; recs aliases the shard's reusable buffer, which stays
// valid for the duration of the call — the events are encoded here,
// synchronously, so nothing is copied.
func (r *Recorder) CaptureMutations(shard int, recs []wal.Record) {
	if r.closed.Load() {
		return
	}
	at := time.Since(r.start)
	r.mu.Lock()
	for i := range recs {
		ev := Event{Kind: EvMutation, At: at, Shard: shard, Rec: recs[i]}
		r.append(&ev)
	}
	r.mu.Unlock()
}

// append encodes ev's frame into the pending buffer. Caller holds mu.
func (r *Recorder) append(ev *Event) {
	if r.stopped {
		return
	}
	if r.buffered >= r.max {
		r.dropped.Add(1)
		return
	}
	payload, err := appendEvent(r.scratch[:0], ev, &r.rbuf)
	r.scratch = payload
	if err != nil {
		r.writeErrs.Add(1)
		return
	}
	n := len(r.buf)
	r.buf = wal.AppendFrame(r.buf, payload)
	r.buffered++
	r.recorded++
	r.appended += int64(len(r.buf) - n)
}

// CaptureStats feeds the engine's capture_* gauges.
func (r *Recorder) CaptureStats() serve.CaptureStats {
	return serve.CaptureStats{
		Records: r.records.Load(),
		Dropped: r.dropped.Load(),
		Bytes:   uint64(r.bytes.Load()),
	}
}

// Stats returns the recorder's own view of the capture gauges.
func (r *Recorder) Stats() serve.CaptureStats { return r.CaptureStats() }

// run is the background writer: at a short interval it swaps the
// pending buffer for an empty one and writes the blob out, so the
// capture path only ever pays the in-memory append.
func (r *Recorder) run() {
	defer close(r.done)
	for {
		r.flushBuf()
		select {
		case <-r.quit:
			r.flushBuf()
			return
		default:
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// flushBuf swaps out the pending buffer, publishes the counter
// shadows, and writes the blob to the file.
func (r *Recorder) flushBuf() {
	r.mu.Lock()
	blob := r.buf
	r.buf = r.spare[:0]
	r.buffered = 0
	r.records.Store(r.recorded)
	r.bytes.Store(r.appended)
	r.mu.Unlock()
	if len(blob) > 0 {
		if _, err := r.f.Write(blob); err != nil {
			r.writeErrs.Add(1)
			r.lastErr = err
		}
	}
	r.spare = blob[:0]
}

// Close stops the writer, drains whatever was already accepted, and
// fsyncs the trace file. Detach the recorder from the engine
// (SetCapture(nil)) before closing: events offered after Close are
// silently ignored. Returns the first write error the background
// writer hit, if any.
func (r *Recorder) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		<-r.done
		return nil
	}
	r.mu.Lock()
	r.stopped = true
	r.mu.Unlock()
	close(r.quit)
	<-r.done
	err := r.f.Sync()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = r.lastErr
	}
	return err
}
