package capture

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/serve/wal"
	"pidcan/internal/vector"
)

func testEvents() []Event {
	return []Event{
		{Kind: EvQuery, At: time.Millisecond, Demand: []float64{1, 2, 3}, K: 3,
			NoCache: true, Digest: 0xdeadbeef, NCand: 2},
		{Kind: EvQuery, At: 2 * time.Millisecond, Demand: []float64{0.5, 0, 9.25}, K: 1,
			Consistent: true, ScopeOne: true, Cached: true, Digest: 1, NCand: 0},
		{Kind: EvMutation, At: 3 * time.Millisecond, Shard: 2,
			Rec: wal.Record{Kind: wal.KindUpdate, Node: 7, Avail: vector.Vec{4, 5, 6}, Announce: true}},
		{Kind: EvMutation, At: 4 * time.Millisecond, Shard: 0,
			Rec: wal.Record{Kind: wal.KindJoin, Node: 12, Avail: vector.Vec{1, 1, 1}}},
		{Kind: EvMutation, At: 5 * time.Millisecond, Shard: 1,
			Rec: wal.Record{Kind: wal.KindLeave, Node: 3}},
		{Kind: EvFault, At: 6 * time.Millisecond, Fault: FaultHaltShard, Target: 1},
		{Kind: EvFault, At: 7 * time.Millisecond, Fault: FaultPromote, Target: 0},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	h := Header{Shards: 4, NodesPerShard: 16, Seed: 0xfeed, CMax: []float64{8, 16, 32}}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	in := testEvents()
	for i := range in {
		if err := w.WriteEvent(&in[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Bytes() != int64(buf.Len()) {
		t.Fatalf("Bytes() %d, wrote %d", w.Bytes(), buf.Len())
	}
	gh, out, torn, err := DecodeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("torn %d on a whole trace", torn)
	}
	if !reflect.DeepEqual(gh, h) {
		t.Fatalf("header mismatch: %+v vs %+v", gh, h)
	}
	if len(out) != len(in) {
		t.Fatalf("%d events out, %d in", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		// The encoder stores nil and empty demand identically; decoded
		// query events always carry a non-nil slice.
		if a.Kind == EvQuery && a.Demand == nil {
			a.Demand = []float64{}
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("event %d: %#v vs %#v", i, a, b)
		}
	}
}

func TestTraceTornTail(t *testing.T) {
	h := Header{Shards: 1, NodesPerShard: 4, Seed: 1, CMax: []float64{1}}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	in := testEvents()
	// boundary[k] = trace length after k whole events.
	boundary := map[int]int{0: int(w.Bytes())}
	for i := range in {
		if err := w.WriteEvent(&in[i]); err != nil {
			t.Fatal(err)
		}
		boundary[i+1] = int(w.Bytes())
	}
	whole := buf.Len()
	// Every strict prefix decodes to a prefix of the events, never an
	// error — a crash mid-write only costs the torn entry. A cut at an
	// exact frame boundary is simply a shorter whole trace (torn 0).
	for cut := whole - 1; cut > whole-60 && cut >= boundary[0]; cut-- {
		_, evs, torn, err := DecodeTrace(buf.Bytes()[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(evs) >= len(in) {
			t.Fatalf("cut %d: torn trace decoded all %d events", cut, len(evs))
		}
		atBoundary := boundary[len(evs)] == cut
		if atBoundary != (torn == 0) || boundary[len(evs)]+int(torn) != cut {
			t.Fatalf("cut %d: decoded %d events, torn %d (boundary %d)", cut, len(evs), torn, boundary[len(evs)])
		}
	}
	// A corrupted (CRC-broken) frame ends decoding at the same place.
	data := append([]byte(nil), buf.Bytes()...)
	data[whole-3] ^= 0xff
	_, evs, torn, err := DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(in)-1 || torn == 0 {
		t.Fatalf("corrupt tail: %d events, torn %d", len(evs), torn)
	}
}

// TestRecorderDropNotBlock fills a tiny ring faster than its writer
// can drain and requires the overflow to be counted as drops while
// the serving path never blocks.
func TestRecorderDropNotBlock(t *testing.T) {
	h := Header{Shards: 1, NodesPerShard: 4, Seed: 1, CMax: []float64{1, 1, 1}}
	rec, err := NewRecorder(filepath.Join(t.TempDir(), "t.bin"), h, RecorderConfig{Ring: 2})
	if err != nil {
		t.Fatal(err)
	}
	req := serve.QueryRequest{Demand: vector.Vec{1, 1, 1}, K: 1}
	resp := serve.QueryResponse{}
	const n = 10000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			rec.CaptureQuery(req, &resp, nil)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("capture blocked the serving path")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Records+st.Dropped != n {
		t.Fatalf("records %d + dropped %d != %d offered", st.Records, st.Dropped, n)
	}
	if st.Records == 0 {
		t.Fatal("everything dropped: writer never ran")
	}
	// And the trace holds exactly the accepted records.
	_, evs, _, err := ReadTraceFile(rec.Path())
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(evs)) != st.Records {
		t.Fatalf("trace has %d events, recorder counted %d", len(evs), st.Records)
	}
}

// TestRecorderAfterClose requires post-Close captures to be ignored.
func TestRecorderAfterClose(t *testing.T) {
	h := Header{Shards: 1, NodesPerShard: 4, Seed: 1, CMax: []float64{1}}
	rec, err := NewRecorder(filepath.Join(t.TempDir(), "t.bin"), h, RecorderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rec.CaptureQuery(serve.QueryRequest{Demand: vector.Vec{1}}, &serve.QueryResponse{}, nil)
	rec.CaptureMutations(0, []wal.Record{{Kind: wal.KindLeave, Node: 1}})
	if st := rec.Stats(); st.Records != 0 || st.Dropped != 0 {
		t.Fatalf("post-close captures counted: %+v", st)
	}
}
