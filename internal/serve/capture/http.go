package capture

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pidcan/internal/serve"
)

// NewHTTP is the capture control surface cmd/pidcan-serve mounts:
//
//	POST /capture/start {"path":"..."} -> {"ok":true,"path":"..."}
//	POST /capture/stop  -> {"path":..,"records":..,"dropped":..,"bytes":..}
//	GET  /capture/status -> {"capturing":..,"records":..,...}
//	GET  /capture/trace  -> last finished trace file (octet-stream)
//
// start attaches a fresh Recorder to the engine (409 if one is
// already attached; path defaults to a temp file); stop detaches and
// finalizes it; trace downloads the most recently finished trace —
// the remote half of `pidcan-replay -record`. engine is a getter
// because pidcan-serve swaps engines across follower re-bootstraps.
func NewHTTP(engine func() *serve.Engine) http.Handler {
	h := &httpCtl{engine: engine}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /capture/start", h.start)
	mux.HandleFunc("POST /capture/stop", h.stop)
	mux.HandleFunc("GET /capture/status", h.status)
	mux.HandleFunc("GET /capture/trace", h.trace)
	return mux
}

type httpCtl struct {
	engine func() *serve.Engine

	mu       sync.Mutex
	rec      *Recorder
	eng      *serve.Engine // the engine rec is attached to
	lastPath string
	started  time.Time
}

func (h *httpCtl) start(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path string `json:"path"`
	}
	if r.Body != nil {
		// An empty body means "default path"; a malformed one is an
		// error.
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		if err := dec.Decode(&req); err != nil && err.Error() != "EOF" {
			jsonErr(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
			return
		}
	}
	e := h.engine()
	if e == nil {
		jsonErr(w, http.StatusServiceUnavailable, "no engine mounted")
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rec != nil {
		jsonErr(w, http.StatusConflict, "capture already running: "+h.rec.Path())
		return
	}
	path := req.Path
	if path == "" {
		path = filepath.Join(os.TempDir(), fmt.Sprintf("pidcan-trace-%d.bin", time.Now().UnixNano()))
	}
	cfg := e.Config()
	rec, err := NewRecorder(path, Header{
		Shards:        cfg.Shards,
		NodesPerShard: cfg.NodesPerShard,
		Seed:          cfg.Seed,
		CMax:          cfg.CMax,
	}, RecorderConfig{})
	if err != nil {
		jsonErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	e.SetCapture(rec)
	h.rec, h.eng, h.started = rec, e, time.Now()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "path": path})
}

func (h *httpCtl) stop(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rec == nil {
		jsonErr(w, http.StatusConflict, "no capture running")
		return
	}
	h.eng.SetCapture(nil)
	// Close before reading the counters: they are final only once the
	// writer has drained.
	err := h.rec.Close()
	st := h.rec.Stats()
	h.lastPath = h.rec.Path()
	h.rec, h.eng = nil, nil
	if err != nil {
		jsonErr(w, http.StatusInternalServerError, fmt.Sprintf("trace finalize: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"path":    h.lastPath,
		"records": st.Records,
		"dropped": st.Dropped,
		"bytes":   st.Bytes,
	})
}

func (h *httpCtl) status(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := map[string]any{"capturing": h.rec != nil, "last_path": h.lastPath}
	if h.rec != nil {
		st := h.rec.Stats()
		out["path"] = h.rec.Path()
		out["records"] = st.Records
		out["dropped"] = st.Dropped
		out["bytes"] = st.Bytes
		out["elapsed_ms"] = time.Since(h.started).Milliseconds()
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *httpCtl) trace(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	path := h.lastPath
	h.mu.Unlock()
	if path == "" {
		jsonErr(w, http.StatusNotFound, "no finished trace (run /capture/start then /capture/stop)")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, path)
}

func jsonErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
