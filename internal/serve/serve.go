// Package serve turns the deterministic, single-goroutine PID-CAN
// cluster (the embedding API of the root package) into a concurrent,
// shard-parallel query service.
//
// The design keeps the paper's determinism intact where it matters:
// every Cluster stays single-goroutine, owned exclusively by one
// shard goroutine that applies batched writes and advances the
// shard-local simulation clock. Concurrency lives strictly above the
// clusters:
//
//   - Each shard publishes an immutable copy-on-write Snapshot of its
//     record index through an atomic pointer, so best-fit
//     multi-dimensional range queries run lock-free on the read path
//     and never touch a cluster or a mutex.
//
//   - Availability updates, announcements, joins and leaves flow
//     through per-shard write queues and are applied in batches; each
//     batch steps the shard's simulation so the protocol's own
//     state-update and index-diffusion machinery keeps running.
//
//   - Recent query results are cached keyed by quantized demand
//     vector with freshness-bound invalidation, so repeated
//     equivalent demands under heavy traffic cost one snapshot scan
//     per freshness window instead of one per request. Cached
//     candidate sets are re-scored against each caller's true demand
//     before they return.
//
//   - Consistent queries route through the paper's three-phase
//     protocol: by default one protocol query is scattered to every
//     shard's write queue concurrently and the partial views are
//     gathered and merged best-fit first (ScopeAll); ScopeOne keeps
//     the paper-faithful single-shard behavior.
//
//   - Nodes migrate between shards (Engine.Migrate): the node Leaves
//     its source shard and re-Joins the destination through both
//     write queues, carrying its availability. A forwarding table
//     keeps every id the node was ever known by routable, so callers
//     holding the original (external) id never notice the move. An
//     adaptive rebalancer (RebalanceInterval) samples per-shard
//     populations and migrates nodes from the most- to the
//     least-loaded shard when the skew exceeds RebalanceThreshold,
//     capped per pass so rebalancing never starves serving.
//
//   - With a DataDir the engine is durable (internal/serve/wal):
//     every applied mutation becomes a typed, CRC-framed op-log
//     record before its writer is acknowledged (fsync batched with
//     the write batches), checkpoints serialize each shard's logical
//     state plus the forwarding table and round-robin counters, and
//     New warm-restarts from the latest checkpoint + log tail,
//     replayed through the exact same batch-application path live
//     writes use. Reads never touch the log.
//
// The Engine is wired to real clusters by pidcan.NewEngine; the HTTP
// front-end lives in http.go (served by cmd/pidcan-serve) and the
// open-loop load generator in cmd/pidcan-loadgen.
package serve

import (
	"errors"
	"fmt"
	"time"

	"pidcan/internal/core"
	"pidcan/internal/netmodel"
	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/sim"
	"pidcan/internal/task"
	"pidcan/internal/vector"
)

// Errors returned by the engine.
var (
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("serve: engine closed")
	// ErrBadDemand is returned for demand vectors of the wrong
	// dimensionality or with non-finite/negative components.
	ErrBadDemand = errors.New("serve: invalid demand vector")
	// ErrBadScope is returned for a QueryRequest whose Scope is not
	// one of "", ScopeAll or ScopeOne.
	ErrBadScope = errors.New("serve: invalid query scope")
	// ErrNoShard is returned for operations addressing a shard index
	// the engine was not built with.
	ErrNoShard = errors.New("serve: no such shard")
	// ErrScatterTimeout is returned when a scatter-gather consistent
	// query's whole-gather deadline (Config.ScatterTimeout) expires
	// before any shard leg answers.
	ErrScatterTimeout = errors.New("serve: consistent scatter deadline exceeded")
	// ErrNoNodes is returned for a consistent query against a shard
	// with no alive nodes to act as the querying agent.
	ErrNoNodes = errors.New("serve: shard has no alive nodes")
	// ErrLastNode is returned by Migrate for a shard's last node: a
	// CAN overlay cannot lose its last owner, so migration never
	// drains a shard below one node.
	ErrLastNode = errors.New("serve: cannot migrate a shard's last node")
	// ErrNotDurable is returned by Checkpoint on an engine built
	// without a DataDir: there is no op-log to checkpoint.
	ErrNotDurable = errors.New("serve: engine has no data dir")
	// ErrRecovery wraps any failure to recover a DataDir's checkpoint
	// and op-log at startup (incompatible configuration, divergent
	// replay, unreadable files). New fails rather than serve from a
	// state it cannot prove matches the log.
	ErrRecovery = errors.New("serve: recovery failed")
	// ErrReadOnly is returned for writes on a replication follower:
	// followers apply their primary's op-log stream and serve reads;
	// writes belong on the primary (the error message names its
	// address when configured). Promotion lifts it.
	ErrReadOnly = errors.New("serve: read-only replication follower")
	// ErrFenced is returned for writes on a primary that has learned
	// of a newer replication epoch (a follower it once fed was
	// promoted): the deposed primary seals itself rather than accept
	// writes the new timeline will never contain.
	ErrFenced = errors.New("serve: fenced by a newer primary epoch")
	// ErrNotFollower is returned by Promote on an engine that is not
	// a replication follower.
	ErrNotFollower = errors.New("serve: engine is not a replication follower")
	// ErrWAL marks a write that was applied in memory but whose
	// op-log append or fsync failed: the write is live until the next
	// restart but is NOT durable, and the caller is told so instead
	// of receiving a silent acknowledgment. Stats.LogErrors counts
	// these.
	ErrWAL = errors.New("serve: op-log write failed (applied in memory, not durable)")
)

// errLegAbandoned unwinds a scatter leg whose query has already
// returned (whole-gather deadline hit); it is never user-visible.
var errLegAbandoned = errors.New("serve: scatter leg abandoned")

// Consistent-query scopes (QueryRequest.Scope).
const (
	// ScopeAll scatter-gathers a consistent query through every
	// shard's protocol and merges the partial views (the default).
	ScopeAll = "all"
	// ScopeOne routes a consistent query through a single shard's
	// protocol (round-robin), like any one querying node of the paper
	// would — the paper-faithful single-index behavior.
	ScopeOne = "one"
)

// GlobalID addresses a node across shards: the shard index in the
// high 32 bits, the shard-local overlay.NodeID in the low 32.
type GlobalID uint64

// Global packs a shard index and a shard-local node id.
func Global(shard int, local overlay.NodeID) GlobalID {
	return GlobalID(uint64(uint32(shard))<<32 | uint64(uint32(local)))
}

// Shard returns the shard index of the id.
func (g GlobalID) Shard() int { return int(uint32(g >> 32)) }

// Local returns the shard-local node id.
func (g GlobalID) Local() overlay.NodeID { return overlay.NodeID(uint32(g)) }

func (g GlobalID) String() string { return fmt.Sprintf("%d/%d", g.Shard(), g.Local()) }

// Backend is the shard-local cluster a shard goroutine owns. It is
// implemented by *pidcan.Cluster (and by fakes in tests). A Backend
// is single-goroutine: after New hands it to its shard, only that
// shard's goroutine may touch it.
type Backend interface {
	// Nodes returns the alive node ids in ascending order.
	Nodes() []overlay.NodeID
	// Availability returns a copy of the node's current availability.
	Availability(id overlay.NodeID) vector.Vec
	// SetAvailability publishes a node's availability vector.
	SetAvailability(id overlay.NodeID, avail vector.Vec) error
	// Announce pushes the node's availability into the index now.
	Announce(id overlay.NodeID) error
	// Join adds a node and returns its shard-local id.
	Join() (overlay.NodeID, error)
	// Leave removes a node.
	Leave(id overlay.NodeID) error
	// Query runs the protocol's probabilistic best-fit range query.
	Query(from overlay.NodeID, demand vector.Vec, k int) ([]proto.Record, int, error)
	// Step advances the shard-local simulation clock.
	Step(d sim.Time)
	// Now returns the shard-local simulation clock.
	Now() sim.Time
	// Size returns the alive population.
	Size() int
}

// IDSeeder is an optional Backend extension used by checkpoint
// recovery: advance the backend's local id sequence (and whatever
// per-node bookkeeping a live join sequence would have grown, e.g.
// the latency model) to next without materializing the dead nodes in
// between. Backends implementing it make checkpoint restore
// O(alive nodes); others get the generic path, which re-joins and
// re-leaves every id ever assigned — O(lifetime joins).
type IDSeeder interface {
	SeedNextID(next overlay.NodeID) error
}

// BackendFactory builds the backend for one shard. cfg is the
// resolved (defaults applied) engine configuration.
type BackendFactory func(shard int, cfg Config) (Backend, error)

// Config parameterizes an Engine. Zero fields take the documented
// defaults.
type Config struct {
	// Shards is the number of independent cluster shards (default 1).
	Shards int
	// NodesPerShard is the initial population per shard (default 64).
	NodesPerShard int
	// Seed drives all randomness; shard i derives its own stream.
	Seed uint64
	// CMax scales resource vectors; its length sets the
	// dimensionality (default: the paper's Table-I cmax).
	CMax vector.Vec
	// Core tunes the PID-CAN protocol (default: paper's setting).
	Core core.Config
	// Net is the LAN/WAN latency model (default: Table I).
	Net netmodel.Config

	// QueueDepth bounds each shard's write queue (default 1024).
	QueueDepth int
	// MaxBatch bounds how many queued ops one batch applies
	// (default 256).
	MaxBatch int
	// FlushInterval is the idle cadence at which a shard advances
	// its simulation and republishes its snapshot even without
	// writes (default 100ms of wall time).
	FlushInterval time.Duration
	// StepQuantum is the simulated time a shard advances per applied
	// batch or idle flush (default 1s of simulated time).
	StepQuantum sim.Time
	// RecordTTL, when positive, is the paper's state-record TTL
	// applied to the serving path: a node whose last explicit
	// availability write (Update/Join) is older than RecordTTL of
	// shard-simulated time is filtered from snapshot-path query
	// results until it writes again. 0 (the default) never expires
	// records: an alive node's availability is read live from the
	// cluster at every snapshot, so it is fresh by construction.
	RecordTTL sim.Time
	// Warmup is simulated time each shard runs before serving, so
	// state updates and index diffusion settle (default 0).
	Warmup sim.Time
	// DataDir, when non-empty, makes the engine durable: every
	// applied mutation is appended to a per-shard op-log under this
	// directory before it is acknowledged, checkpoints serialize the
	// engine's logical state, and New warm-restarts from the latest
	// checkpoint plus the log tail (replayed through the same batch
	// application path live writes use). Empty (the default) keeps
	// the engine purely in-memory. The directory must not be shared
	// between live engines, and recovery requires the same Shards,
	// NodesPerShard, Seed and CMax dimensionality the data was
	// written under.
	DataDir string
	// CheckpointEvery, when positive, runs a background checkpoint on
	// that cadence, bounding both log growth and recovery time. 0
	// (the default) checkpoints only on Close and on explicit
	// Checkpoint calls (POST /checkpoint over HTTP). Ignored without
	// DataDir.
	CheckpointEvery time.Duration
	// SegmentMaxBytes rotates a shard's op-log onto a fresh segment
	// once the current one exceeds this many record bytes, compacting
	// the closed segment (superseded same-node updates dropped) so
	// recovery replay and follower catch-up stay bounded between
	// checkpoints. Default 4 MiB; negative disables size-based
	// rotation (segments then rotate only at checkpoints, which prune
	// them anyway). Followers ignore it: their segments mirror the
	// primary's rotation points.
	SegmentMaxBytes int64
	// Follower starts the engine as a read-only replication
	// follower: writes fail with ErrReadOnly while the replication
	// client (internal/serve/repl) applies the primary's op-log
	// stream through the same batch path, and the DataDir mirrors
	// the primary's segments and checkpoints. Requires DataDir.
	// Promotion (Engine.Promote / POST /promote) lifts the flag,
	// seals a new epoch and starts the deferred background loops.
	Follower bool
	// PrimaryAddr is the replication address of this follower's
	// primary, reported in ErrReadOnly errors and Stats so clients
	// can redirect writes. Informational only.
	PrimaryAddr string
	// FsyncEvery is the durability/throughput knob of the op-log: the
	// log is fsynced once per FsyncEvery applied write batches
	// (default 1: every batch is durable before its writers are
	// acknowledged — note a batch is up to MaxBatch drained ops, so
	// bursts already amortize the fsync). Negative disables fsync
	// entirely: appends reach the OS on the batch cadence but a host
	// crash may lose the recent tail (a process crash does not).
	FsyncEvery int
	// ScatterTimeout is the whole-gather deadline of a scatter-gather
	// consistent query: one timer covers the entire gather, and legs
	// still outstanding when it fires are abandoned and dropped from
	// the merge (default 5s of wall time). A query no leg answered by
	// the deadline fails with ErrScatterTimeout.
	ScatterTimeout time.Duration

	// RebalanceInterval, when positive, runs the adaptive shard
	// rebalancer: every interval the engine samples per-shard
	// populations and migrates nodes from the most- to the
	// least-loaded shard while the max/min population ratio exceeds
	// RebalanceThreshold. 0 (the default) disables the background
	// rebalancer; Engine.Rebalance still runs single passes on
	// demand.
	RebalanceInterval time.Duration
	// RebalanceThreshold is the max/min shard-population ratio above
	// which a rebalance pass migrates nodes (default 1.25; must be
	// > 1).
	RebalanceThreshold float64
	// RebalanceMaxMoves caps the migrations of one rebalance pass so
	// rebalancing never starves serving (default 8).
	RebalanceMaxMoves int

	// CacheTTL is the freshness bound of cached query results
	// (default 25ms). CacheDisabled turns the cache off.
	CacheTTL      time.Duration
	CacheDisabled bool
	// CacheQuantum is the demand-quantization granularity as a
	// fraction of cmax per dimension (default 0.05, i.e. demands are
	// bucketed into a 20-level grid before cache lookup).
	CacheQuantum float64
	// CacheSize bounds the number of cached entries (default 4096).
	CacheSize int
	// CacheEpochBound ties cache freshness to writes: every applied
	// batch that mutated a shard bumps the engine's write epoch, and
	// a cached entry is treated as stale once the epoch has advanced
	// more than this many batches past the entry's fill — so after a
	// burst of writes the cache stops serving pre-write results even
	// inside the TTL window. Default 32 batches; 1 invalidates on any
	// write; negative restores pure TTL expiry.
	CacheEpochBound int

	// CacheAdaptEvery, when positive, turns the fixed cache knobs
	// into an adaptive controller: every CacheAdaptEvery cache
	// lookups the controller inspects the window's hit-rate and
	// staleness-invalidation rate and steers TTL, quantization
	// granularity and the epoch bound within the floors/ceilings
	// below — so the hit-rate survives demand drift (the grid
	// coarsens until moving demands alias onto live cells) and heavy
	// write invalidation (lifetimes extend), then decays back toward
	// the configured baselines when traffic is easy. 0 (the default)
	// keeps every knob fixed at its configured value.
	CacheAdaptEvery int
	// CacheTTLMin/CacheTTLMax bound the adaptive TTL (defaults:
	// CacheTTL/4 and 40*CacheTTL).
	CacheTTLMin time.Duration
	CacheTTLMax time.Duration
	// CacheQuantumMin/CacheQuantumMax bound the adaptive
	// quantization granularity (defaults: CacheQuantum and
	// min(1, 16*CacheQuantum)).
	CacheQuantumMin float64
	CacheQuantumMax float64

	// IndexDisabled turns off the flat dominance index built at
	// snapshot publication and restores the linear full-record scan
	// behind the same QueryIndex interface — the comparison baseline
	// for benchmarks and the escape hatch if an index defect ever
	// needs ruling out in production.
	IndexDisabled bool
}

// withDefaults returns cfg with zero fields resolved.
func (c Config) withDefaults() (Config, error) {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 {
		return c, fmt.Errorf("serve: Shards %d < 1", c.Shards)
	}
	if c.NodesPerShard == 0 {
		c.NodesPerShard = 64
	}
	if c.NodesPerShard < 2 {
		return c, fmt.Errorf("serve: NodesPerShard %d < 2", c.NodesPerShard)
	}
	if c.CMax == nil {
		c.CMax = task.CMax()
	}
	if !c.CMax.IsNonNegative() || c.CMax.Sum() == 0 {
		return c, fmt.Errorf("serve: invalid CMax %v", c.CMax)
	}
	if c.Core.L == 0 {
		c.Core = core.Default()
	}
	if err := c.Core.Validate(); err != nil {
		return c, err
	}
	if c.Net.LANSize == 0 {
		c.Net = netmodel.Default()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 100 * time.Millisecond
	}
	if c.StepQuantum <= 0 {
		c.StepQuantum = sim.Second
	}
	if c.RecordTTL < 0 {
		c.RecordTTL = 0
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.ScatterTimeout <= 0 {
		c.ScatterTimeout = 5 * time.Second
	}
	if c.CheckpointEvery < 0 {
		c.CheckpointEvery = 0
	}
	if c.FsyncEvery == 0 {
		c.FsyncEvery = 1
	}
	if c.SegmentMaxBytes == 0 {
		c.SegmentMaxBytes = 4 << 20
	}
	if c.Follower && c.DataDir == "" {
		return c, fmt.Errorf("serve: Follower requires DataDir (the op-log mirror)")
	}
	if c.RebalanceInterval < 0 {
		c.RebalanceInterval = 0
	}
	if c.RebalanceThreshold == 0 {
		c.RebalanceThreshold = 1.25
	}
	if c.RebalanceThreshold <= 1 {
		return c, fmt.Errorf("serve: RebalanceThreshold %v <= 1", c.RebalanceThreshold)
	}
	if c.RebalanceMaxMoves <= 0 {
		c.RebalanceMaxMoves = 8
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 25 * time.Millisecond
	}
	if c.CacheQuantum <= 0 || c.CacheQuantum > 1 {
		c.CacheQuantum = 0.05
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.CacheEpochBound == 0 {
		c.CacheEpochBound = 32
	}
	if c.CacheAdaptEvery < 0 {
		c.CacheAdaptEvery = 0
	}
	if c.CacheTTLMin <= 0 {
		c.CacheTTLMin = c.CacheTTL / 4
	}
	if c.CacheTTLMax <= 0 {
		c.CacheTTLMax = 40 * c.CacheTTL
	}
	if c.CacheTTLMax < c.CacheTTL {
		c.CacheTTLMax = c.CacheTTL
	}
	if c.CacheTTLMin > c.CacheTTL {
		c.CacheTTLMin = c.CacheTTL
	}
	if c.CacheQuantumMin <= 0 || c.CacheQuantumMin > c.CacheQuantum {
		c.CacheQuantumMin = c.CacheQuantum
	}
	if c.CacheQuantumMax <= 0 || c.CacheQuantumMax < c.CacheQuantum {
		c.CacheQuantumMax = 16 * c.CacheQuantum
	}
	if c.CacheQuantumMax > 1 {
		c.CacheQuantumMax = 1
	}
	return c, nil
}
