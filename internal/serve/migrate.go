package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// fwdTable keeps cross-shard node migration invisible to callers: a
// node's first (external) id and every physical id it ever held stay
// routable after any number of moves. Backends never reuse local
// node ids, so stale ids cannot collide with fresh joins.
type fwdTable struct {
	mu sync.RWMutex
	// to maps every stale id (the external id and each former
	// physical id) of a migrated node to its current physical id.
	to map[GlobalID]GlobalID
	// ext maps a migrated node's physical ids — current AND former,
	// since a concurrent reader's shard snapshot may still show the
	// node at its old home mid-move — back to its external id, so
	// Nodes reports one stable identity however the snapshots
	// interleave with a migration.
	ext map[GlobalID]GlobalID
	// aliases lists the former physical ids per external id, so a
	// later move can repoint all of them in one pass (to stays flat:
	// resolution is always a single lookup).
	aliases map[GlobalID][]GlobalID
	// inflight serializes migrations per node and lets writers wait
	// out a move instead of failing on the vacated source shard.
	inflight map[GlobalID]chan struct{}

	// entries mirrors len(ext) (== 0 iff the whole table is empty,
	// since repoint and forget add/remove to and ext together). The
	// hot read paths load it lock-free and skip the table entirely
	// while no node has ever migrated, keeping snapshot queries on
	// an untouched engine free of shared-lock traffic.
	entries atomic.Int64
}

func newFwdTable() *fwdTable {
	return &fwdTable{
		to:       map[GlobalID]GlobalID{},
		ext:      map[GlobalID]GlobalID{},
		aliases:  map[GlobalID][]GlobalID{},
		inflight: map[GlobalID]chan struct{}{},
	}
}

func (t *fwdTable) resolveLocked(id GlobalID) GlobalID {
	if p, ok := t.to[id]; ok {
		return p
	}
	return id
}

func (t *fwdTable) externalLocked(phys GlobalID) GlobalID {
	if x, ok := t.ext[phys]; ok {
		return x
	}
	return phys
}

// resolve maps any id a node was ever known by to its current
// physical id (identity for never-migrated nodes).
func (t *fwdTable) resolve(id GlobalID) GlobalID {
	if t.entries.Load() == 0 {
		return id
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.resolveLocked(id)
}

// count returns the number of forwarded (stale) ids.
func (t *fwdTable) count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.to)
}

// begin claims the node for migration, waiting out a move already in
// flight. It returns the node's current physical id, its external
// id, and a release function ending the claim. Repointing the table
// is NOT release's job: it happens on the destination shard's
// goroutine (via op.onApplied) before the snapshot carrying the new
// physical id publishes, so no reader can see an unmapped id.
// closing aborts the wait.
func (t *fwdTable) begin(id GlobalID, closing <-chan struct{}) (phys, x GlobalID, release func(), err error) {
	for {
		t.mu.Lock()
		phys = t.resolveLocked(id)
		x = t.externalLocked(phys)
		ch, busy := t.inflight[x]
		if !busy {
			done := make(chan struct{})
			t.inflight[x] = done
			t.mu.Unlock()
			release = func() {
				t.mu.Lock()
				delete(t.inflight, x)
				close(done)
				t.mu.Unlock()
			}
			return phys, x, release, nil
		}
		t.mu.Unlock()
		select {
		case <-ch:
		case <-closing:
			return 0, 0, nil, ErrClosed
		}
	}
}

// repoint records a completed move of external id x from physical
// id old to physical id now. Called from the destination shard's
// goroutine between applying the join and publishing the snapshot,
// under the mover's inflight claim.
func (t *fwdTable) repoint(x, old, now GlobalID) {
	t.mu.Lock()
	t.repointLocked(x, old, now)
	t.mu.Unlock()
}

// repointLocked records a completed move of external id x from
// physical id old to physical id now.
func (t *fwdTable) repointLocked(x, old, now GlobalID) {
	if old != x {
		t.aliases[x] = append(t.aliases[x], old)
	}
	t.to[x] = now
	for _, a := range t.aliases[x] {
		t.to[a] = now
	}
	// The old physical id keeps its ext entry: a snapshot read
	// mid-move may still show the node there, and must map it to the
	// same external identity as the new home.
	t.ext[old] = x
	t.ext[now] = x
	t.entries.Store(int64(len(t.ext)))
}

// waitSettled is the writer-side retry gate: after a backend
// rejected an op for physical id phys (resolved from id), it reports
// whether retrying is worthwhile — a migration in flight was waited
// out, or the id already resolves elsewhere. closing aborts the wait.
func (t *fwdTable) waitSettled(id, phys GlobalID, closing <-chan struct{}) bool {
	t.mu.RLock()
	cur := t.resolveLocked(id)
	ch, busy := t.inflight[t.externalLocked(cur)]
	t.mu.RUnlock()
	if busy {
		select {
		case <-ch:
			return true
		case <-closing:
			return false
		}
	}
	return cur != phys
}

// forget drops all forwarding state of the node currently at
// physical id phys (called after it leaves for good).
func (t *fwdTable) forget(phys GlobalID) {
	if t.entries.Load() == 0 {
		return // nothing ever migrated: no state to clean
	}
	t.mu.Lock()
	x := t.externalLocked(phys)
	for _, a := range t.aliases[x] {
		delete(t.to, a)
		delete(t.ext, a)
	}
	delete(t.to, x)
	delete(t.ext, x)
	delete(t.ext, phys)
	delete(t.aliases, x)
	t.entries.Store(int64(len(t.ext)))
	t.mu.Unlock()
}

// Migrate moves a node to shard `to`: it atomically Leaves the
// node's source shard (capturing its availability) and re-Joins it
// on the destination through both write queues. The node's external
// identity survives the move — every id it was ever known by keeps
// routing to it — and its availability is re-announced on the
// destination shard's index. Migrating a node to its own shard is a
// no-op. Concurrent migrations of the same node serialize;
// concurrent Update/Leave calls wait out the move and retry against
// the new shard.
func (e *Engine) Migrate(node GlobalID, to int) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if to < 0 || to >= len(e.shards) {
		e.errors.Add(1)
		return fmt.Errorf("%w: shard %d (migration destination)", ErrNoShard, to)
	}
	phys, x, release, err := e.fwd.begin(node, e.stop)
	if err != nil {
		return err
	}
	defer release()

	from := phys.Shard()
	if from >= len(e.shards) {
		e.errors.Add(1)
		return fmt.Errorf("%w: shard %d (node %v)", ErrNoShard, from, node)
	}
	if from == to {
		return nil
	}
	src, dst := e.shards[from], e.shards[to]
	take, err := src.submit(op{
		kind:  opTake,
		node:  phys.Local(),
		reply: make(chan opResult, 1),
	}, nil)
	if err == nil {
		err = take.err
	}
	if err != nil {
		if e.closed.Load() {
			// Teardown raced the take (the node may have been lost by
			// an aborted rollback); report the shutdown, not the
			// transient backend state.
			return ErrClosed
		}
		e.errors.Add(1)
		return fmt.Errorf("serve: migrate %v: %w", node, err)
	}
	// The forwarding repoint rides the join op itself: the
	// destination shard goroutine installs it after applying the
	// join and before publishing the snapshot, so no concurrent
	// reader ever sees the new physical id unmapped.
	rejoin := func(home int) op {
		return op{
			kind:  opJoin,
			avail: take.avail,
			reply: make(chan opResult, 1),
			onApplied: func(res opResult) {
				if res.err == nil {
					e.fwd.repoint(x, phys, Global(home, res.node))
				}
			},
		}
	}
	join, err := dst.submit(rejoin(to), nil)
	if err == nil {
		err = join.err
	}
	if err != nil {
		// The node is off its source shard but never landed; try to
		// send it home so it is not lost. A rollback join assigns a
		// fresh local id, so the forwarding table still repoints.
		if back, berr := src.submit(rejoin(from), nil); berr != nil || back.err != nil {
			// The node is gone for good (both shards refused it).
			// Drop its forwarding state so its ids fail fast instead
			// of routing to the vacated shard forever.
			e.fwd.forget(phys)
		}
		if e.closed.Load() {
			return ErrClosed
		}
		e.errors.Add(1)
		return fmt.Errorf("serve: migrate %v to shard %d: %w", node, to, err)
	}
	e.migrations.Add(1)
	return nil
}

// RebalanceResult describes one rebalance pass.
type RebalanceResult struct {
	// Imbalance is the max/min shard-population ratio observed at
	// the start of the pass. Empty shards count as population 1, so
	// the ratio stays finite (JSON-encodable) while still far past
	// any sane threshold.
	Imbalance float64 `json:"imbalance"`
	// From and To are the most- and least-populated shards at the
	// start of the pass — the first pair served. The pass re-samples
	// after every move, so later moves may serve other pairs.
	From int `json:"from"`
	To   int `json:"to"`
	// Moved counts the nodes this pass migrated (across however
	// many shard pairs the re-sampling visited).
	Moved int `json:"moved"`
}

// Rebalance runs one adaptive rebalance pass: it samples per-shard
// populations from the published snapshots and, while the max/min
// ratio exceeds Config.RebalanceThreshold, migrates nodes (newest
// joiners first — the cheapest to move and the likeliest cause of
// targeted-join skew) from the most- to the least-populated shard,
// re-sampling after every move so successive moves spread across
// whichever pair is most skewed. Config.RebalanceMaxMoves caps the
// pass so rebalancing never starves serving. The background
// rebalancer (Config.RebalanceInterval) calls this on its cadence;
// it is also safe to trigger manually (POST /rebalance over HTTP).
// An error is returned only when the pass could not move anything
// it should have.
func (e *Engine) Rebalance() (RebalanceResult, error) {
	if e.closed.Load() {
		return RebalanceResult{}, ErrClosed
	}
	// One pass at a time: a manual trigger racing the background loop
	// must not double the move budget or see each other's half-moved
	// populations and oscillate.
	e.rebalanceMu.Lock()
	defer e.rebalanceMu.Unlock()
	e.rebalances.Add(1)
	sample := func() (maxI, minI, gap int, imb float64) {
		pops := make([]int, len(e.shards))
		for i, s := range e.shards {
			pops[i] = len(s.snapshot().Records)
			if pops[i] > pops[maxI] {
				maxI = i
			}
			if pops[i] < pops[minI] {
				minI = i
			}
		}
		imb = 1.0
		if pops[maxI] > 0 {
			low := pops[minI]
			if low < 1 {
				low = 1 // empty shard: keep the ratio finite for JSON
			}
			imb = float64(pops[maxI]) / float64(low)
		}
		return maxI, minI, pops[maxI] - pops[minI], imb
	}
	maxI, minI, gap, imb := sample()
	e.lastImbalance.Store(math.Float64bits(imb))
	res := RebalanceResult{Imbalance: imb, From: maxI, To: minI}
	if len(e.shards) < 2 {
		return res, nil
	}
	var firstErr error
	// gap > 1: moving one node off a one-node lead only swaps which
	// shard is largest — stop there even when small populations keep
	// the ratio above the threshold, or the pass would ping-pong the
	// same node until the move cap burned out.
	for res.Moved < e.cfg.RebalanceMaxMoves && imb > e.cfg.RebalanceThreshold && gap > 1 {
		recs := e.shards[maxI].snapshot().Records
		moved := false
		for i := len(recs) - 1; i >= 0; i-- {
			if err := e.Migrate(Global(maxI, recs[i].Node), minI); err != nil {
				// The node may have left or moved concurrently; try
				// the next one.
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			moved = true
			break
		}
		if !moved {
			break
		}
		res.Moved++
		maxI, minI, gap, imb = sample()
	}
	if res.Moved == 0 && imb > e.cfg.RebalanceThreshold && gap > 1 && firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// rebalanceLoop is the background rebalancer goroutine, started by
// New when Config.RebalanceInterval > 0 and stopped by Close.
func (e *Engine) rebalanceLoop(interval time.Duration) {
	defer close(e.rebalDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-tick.C:
			e.Rebalance() // errors surface through Stats.Errors
		}
	}
}
