package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/serve/wal"
)

// fwdTable keeps cross-shard node migration invisible to callers: a
// node's first (external) id stays routable for its whole life, and
// the physical ids it held along the way stay routable for a bounded
// grace window. Backends never reuse local node ids, so stale ids
// cannot collide with fresh joins.
//
// Compaction (vs. the PR-3 table, which kept every id forever and
// rewrote all of them on each move): repoint is O(1) — it links only
// the vacated id and the external id to the new home — so former
// physical ids form chains that lookups path-compress on the fly,
// union-find style. Former physical ids are never handed out as
// identities (query responses and Nodes externalize to the stable
// external id); the only holders are snapshots, cache entries and
// in-flight scatter legs, all of which age out within
// CacheTTL/FlushInterval/ScatterTimeout. Aliases therefore expire
// after a grace period comfortably above all three and are
// reclaimed, bounding the table by live migrated nodes (two entries
// each: external id -> current, current -> external) instead of by
// lifetime migrations.
type fwdTable struct {
	mu sync.RWMutex
	// next maps an id one step toward the node's current physical id
	// (the external id always in one hop; former physical ids may
	// chain until a lookup compresses them).
	next map[GlobalID]GlobalID
	// ext maps physical ids — current AND recently former, since a
	// concurrent reader's shard snapshot may still show the node at
	// its old home mid-move — back to the external id, so Nodes and
	// query responses report one stable identity however the
	// snapshots interleave with a migration.
	ext map[GlobalID]GlobalID
	// aliases lists, per external id, the former physical ids and
	// when each may be reclaimed. Expiries are monotone in creation
	// order, so the expired set is always a prefix.
	aliases map[GlobalID][]fwdAlias
	// inflight serializes migrations per node and lets writers wait
	// out a move instead of failing on the vacated source shard.
	inflight map[GlobalID]chan struct{}

	// grace is how long a former physical id stays routable after
	// the move away from it; nowFn is the clock (tests override it).
	grace     time.Duration
	nowFn     func() time.Time
	lastSweep time.Time

	// entries mirrors len(ext) (== 0 iff the whole table is empty).
	// The hot read paths load it lock-free and skip the table
	// entirely while no node has ever migrated, keeping snapshot
	// queries on an untouched engine free of shared-lock traffic.
	entries atomic.Int64
}

type fwdAlias struct {
	id      GlobalID
	expires time.Time
}

func newFwdTable(cfg Config) *fwdTable {
	// A former physical id can be observed via a cached query entry
	// (<= CacheTTL old), a stale snapshot (republished every
	// FlushInterval), or a scatter leg (<= ScatterTimeout). Twice
	// their sum comfortably outlives every holder.
	return newFwdTableGrace(2 * (cfg.CacheTTL + cfg.FlushInterval + cfg.ScatterTimeout))
}

func newFwdTableGrace(grace time.Duration) *fwdTable {
	return &fwdTable{
		next:      map[GlobalID]GlobalID{},
		ext:       map[GlobalID]GlobalID{},
		aliases:   map[GlobalID][]fwdAlias{},
		inflight:  map[GlobalID]chan struct{}{},
		grace:     grace,
		lastSweep: time.Now(),
	}
}

func (t *fwdTable) now() time.Time {
	if t.nowFn != nil {
		return t.nowFn()
	}
	return time.Now()
}

// chaseLocked follows the forwarding chain from id to the node's
// current physical id, returning the hop count.
func (t *fwdTable) chaseLocked(id GlobalID) (GlobalID, int) {
	hops := 0
	for {
		n, ok := t.next[id]
		if !ok || n == id {
			return id, hops
		}
		id = n
		hops++
	}
}

// compressLocked is chaseLocked plus path compression: every id on
// the chain is relinked directly to the terminal, so the next lookup
// is one hop. Requires the write lock.
func (t *fwdTable) compressLocked(id GlobalID) GlobalID {
	cur, hops := t.chaseLocked(id)
	for hops > 1 {
		n := t.next[id]
		t.next[id] = cur
		id = n
		hops--
	}
	return cur
}

func (t *fwdTable) externalLocked(phys GlobalID) GlobalID {
	if x, ok := t.ext[phys]; ok {
		return x
	}
	return phys
}

// resolve maps any id a node was ever known by to its current
// physical id (identity for never-migrated nodes and for reclaimed
// aliases). Multi-hop chains are path-compressed on the way out.
func (t *fwdTable) resolve(id GlobalID) GlobalID {
	if t.entries.Load() == 0 {
		return id
	}
	t.mu.RLock()
	cur, hops := t.chaseLocked(id)
	t.mu.RUnlock()
	if hops > 1 {
		t.mu.Lock()
		cur = t.compressLocked(id)
		t.mu.Unlock()
	}
	return cur
}

// count returns the number of routable forwarded ids, sweeping out
// expired aliases first (Stats is the engine's natural maintenance
// tick alongside repoint itself).
func (t *fwdTable) count() int {
	if t.entries.Load() == 0 {
		return 0
	}
	t.maybeSweep(t.now())
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.next)
}

// begin claims the node for migration, waiting out a move already in
// flight. It returns the node's current physical id, its external
// id, and a release function ending the claim. Repointing the table
// is NOT release's job: it happens on the destination shard's
// goroutine (via op.onApplied) before the snapshot carrying the new
// physical id publishes, so no reader can see an unmapped id.
// closing aborts the wait.
func (t *fwdTable) begin(id GlobalID, closing <-chan struct{}) (phys, x GlobalID, release func(), err error) {
	for {
		t.mu.Lock()
		phys = t.compressLocked(id)
		x = t.externalLocked(phys)
		ch, busy := t.inflight[x]
		if !busy {
			done := make(chan struct{})
			t.inflight[x] = done
			t.mu.Unlock()
			release = func() {
				t.mu.Lock()
				delete(t.inflight, x)
				close(done)
				t.mu.Unlock()
			}
			return phys, x, release, nil
		}
		t.mu.Unlock()
		select {
		case <-ch:
		case <-closing:
			return 0, 0, nil, ErrClosed
		}
	}
}

// repoint records a completed move of external id x from physical
// id old to physical id now. Called from the destination shard's
// goroutine between applying the join and publishing the snapshot,
// under the mover's inflight claim — and again, idempotently, when
// recovery replays the join from the op-log.
func (t *fwdTable) repoint(x, old, now GlobalID) {
	at := t.now()
	t.mu.Lock()
	t.repointLocked(x, old, now, at)
	t.mu.Unlock()
}

// repointLocked links the move in O(1): the external id and the
// vacated physical id point at the new home; older aliases keep
// their one-step links and compress lazily on lookup. The vacated id
// becomes a reclaimable alias, and the node's already-expired
// aliases are pruned on the way through.
func (t *fwdTable) repointLocked(x, old, now GlobalID, at time.Time) {
	if old != x {
		known := false
		for _, a := range t.aliases[x] {
			if a.id == old {
				known = true
				break
			}
		}
		if !known {
			t.aliases[x] = append(t.aliases[x], fwdAlias{id: old, expires: at.Add(t.grace)})
		}
		t.next[old] = now
		// The old physical id keeps an ext entry for its grace
		// window: a snapshot read mid-move may still show the node
		// there, and must map it to the same external identity as
		// the new home.
		t.ext[old] = x
	}
	t.next[x] = now
	t.ext[now] = x
	t.pruneLocked(x, at)
	t.entries.Store(int64(len(t.ext)))
}

// pruneLocked reclaims x's expired aliases (always a prefix of the
// list, since expiries are monotone in creation order — so a pruned
// alias can never be the target of a surviving older link).
func (t *fwdTable) pruneLocked(x GlobalID, at time.Time) {
	as := t.aliases[x]
	i := 0
	for i < len(as) && !as[i].expires.After(at) {
		delete(t.next, as[i].id)
		delete(t.ext, as[i].id)
		i++
	}
	if i == 0 {
		return
	}
	if i == len(as) {
		delete(t.aliases, x)
		return
	}
	t.aliases[x] = append(as[:0:0], as[i:]...)
}

// maybeSweep prunes every node's expired aliases, at most once per
// grace interval.
func (t *fwdTable) maybeSweep(at time.Time) {
	t.mu.RLock()
	due := len(t.aliases) > 0 && at.Sub(t.lastSweep) >= t.grace
	t.mu.RUnlock()
	if !due {
		return
	}
	t.mu.Lock()
	if at.Sub(t.lastSweep) >= t.grace {
		for x := range t.aliases {
			t.pruneLocked(x, at)
		}
		t.lastSweep = at
		t.entries.Store(int64(len(t.ext)))
	}
	t.mu.Unlock()
}

// waitSettled is the writer-side retry gate: after a backend
// rejected an op for physical id phys (resolved from id), it reports
// whether retrying is worthwhile — a migration in flight was waited
// out, or the id already resolves elsewhere. closing aborts the wait.
func (t *fwdTable) waitSettled(id, phys GlobalID, closing <-chan struct{}) bool {
	t.mu.RLock()
	cur, _ := t.chaseLocked(id)
	ch, busy := t.inflight[t.externalLocked(cur)]
	t.mu.RUnlock()
	if busy {
		select {
		case <-ch:
			return true
		case <-closing:
			return false
		}
	}
	return cur != phys
}

// forget drops all forwarding state of the node currently at
// physical id phys (called after it leaves for good), returning
// every id that belonged to the node — recovery records them so a
// replayed migration take of a node that later left is not mistaken
// for an orphaned mid-flight move. Idempotent: recovery replays it
// for every logged leave.
func (t *fwdTable) forget(phys GlobalID) []GlobalID {
	if t.entries.Load() == 0 {
		return nil // nothing ever migrated: no state to clean
	}
	t.mu.Lock()
	x := t.externalLocked(phys)
	cur, _ := t.chaseLocked(x)
	removed := make([]GlobalID, 0, len(t.aliases[x])+3)
	for _, a := range t.aliases[x] {
		removed = append(removed, a.id)
		delete(t.next, a.id)
		delete(t.ext, a.id)
	}
	removed = append(removed, x, cur, phys)
	delete(t.aliases, x)
	delete(t.next, x)
	delete(t.ext, x)
	delete(t.next, cur)
	delete(t.ext, cur)
	delete(t.ext, phys)
	t.entries.Store(int64(len(t.ext)))
	t.mu.Unlock()
	return removed
}

// hasRoute reports whether the table forwards phys anywhere — i.e. a
// migration join away from phys is known.
func (t *fwdTable) hasRoute(phys GlobalID) bool {
	t.mu.RLock()
	_, ok := t.next[phys]
	t.mu.RUnlock()
	return ok
}

// externalOf maps a physical id to its external id (identity when
// unknown).
func (t *fwdTable) externalOf(phys GlobalID) GlobalID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.externalLocked(phys)
}

// export flattens the table for a checkpoint. Chains are exported
// as-is (recovery restores and keeps compressing lazily); alias
// expiry clocks restart on recovery, which only ever errs longer.
func (t *fwdTable) export() wal.ForwardState {
	t.maybeSweep(t.now())
	t.mu.RLock()
	defer t.mu.RUnlock()
	fs := wal.ForwardState{
		Next:    make(map[uint64]uint64, len(t.next)),
		Ext:     make(map[uint64]uint64, len(t.ext)),
		Aliases: make(map[uint64][]uint64, len(t.aliases)),
	}
	for k, v := range t.next {
		fs.Next[uint64(k)] = uint64(v)
	}
	for k, v := range t.ext {
		fs.Ext[uint64(k)] = uint64(v)
	}
	for x, as := range t.aliases {
		ids := make([]uint64, len(as))
		for i, a := range as {
			ids[i] = uint64(a.id)
		}
		fs.Aliases[uint64(x)] = ids
	}
	return fs
}

// restore installs a checkpointed table, stamping every alias a
// fresh grace window.
func (t *fwdTable) restore(fs wal.ForwardState) {
	at := t.now()
	t.mu.Lock()
	for k, v := range fs.Next {
		t.next[GlobalID(k)] = GlobalID(v)
	}
	for k, v := range fs.Ext {
		t.ext[GlobalID(k)] = GlobalID(v)
	}
	for x, ids := range fs.Aliases {
		as := make([]fwdAlias, len(ids))
		for i, id := range ids {
			as[i] = fwdAlias{id: GlobalID(id), expires: at.Add(t.grace)}
		}
		t.aliases[GlobalID(x)] = as
	}
	t.entries.Store(int64(len(t.ext)))
	t.mu.Unlock()
}

// Migrate moves a node to shard `to`: it atomically Leaves the
// node's source shard (capturing its availability) and re-Joins it
// on the destination through both write queues. The node's external
// identity survives the move — the id Join returned keeps routing to
// it for the node's whole life, and any former physical id stays
// routable for the forwarding grace window. The availability is
// re-announced on the destination shard's index. Migrating a node to
// its own shard is a no-op. Concurrent migrations of the same node
// serialize; concurrent Update/Leave calls wait out the move and
// retry against the new shard.
func (e *Engine) Migrate(node GlobalID, to int) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if err := e.writable(); err != nil {
		e.errors.Add(1)
		return err
	}
	if to < 0 || to >= len(e.shards) {
		e.errors.Add(1)
		return fmt.Errorf("%w: shard %d (migration destination)", ErrNoShard, to)
	}
	phys, x, release, err := e.fwd.begin(node, e.stop)
	if err != nil {
		return err
	}
	defer release()
	// The checkpoint barrier: a checkpoint pass must not rotate the
	// shard logs between this migration's take and join, or a crash
	// could leave the take durable in a pruned segment with the join
	// nowhere — an acknowledged node silently lost. Holding the read
	// side for the take+join span means every migration is either
	// entirely inside one checkpoint's coverage or entirely after it
	// (where a lost join is detected and rolled back at recovery).
	e.migMu.RLock()
	defer e.migMu.RUnlock()

	from := phys.Shard()
	if from >= len(e.shards) {
		e.errors.Add(1)
		return fmt.Errorf("%w: shard %d (node %v)", ErrNoShard, from, node)
	}
	if from == to {
		return nil
	}
	src, dst := e.places[from], e.places[to]
	avail, err := src.Take(phys, false)
	var walDegraded error
	if errors.Is(err, ErrWAL) {
		// The take APPLIED — the node is off its source shard, its
		// availability in hand — only its log record is missing.
		// Aborting here would strand the node; completing the move
		// and reporting the degraded durability is the honest
		// outcome (a crash before the next checkpoint may resurrect
		// the node on its source shard).
		walDegraded, err = err, nil
	}
	if err != nil {
		if e.closed.Load() {
			// Teardown raced the take (the node may have been lost by
			// an aborted rollback); report the shutdown, not the
			// transient backend state.
			return ErrClosed
		}
		e.errors.Add(1)
		return fmt.Errorf("serve: migrate %v: %w", node, err)
	}
	// The forwarding repoint rides the join inside
	// CompleteMigration: the destination shard goroutine installs
	// it after applying the join and before publishing the
	// snapshot, so no concurrent reader ever sees the new physical
	// id unmapped. The same metadata is logged with the join
	// (op.mig), so a recovery replaying this op re-installs the
	// identical repoint.
	_, err = dst.CompleteMigration(avail, x, phys)
	if errors.Is(err, ErrWAL) {
		// The join APPLIED (the node lives on the destination, the
		// repoint installed); a rollback would duplicate it. Complete
		// the move and report the degraded durability.
		walDegraded, err = err, nil
	}
	if err != nil {
		// The node is off its source shard but never landed; try to
		// send it home so it is not lost. A rollback join assigns a
		// fresh local id, so the forwarding table still repoints.
		if _, berr := src.CompleteMigration(avail, x, phys); berr != nil && !errors.Is(berr, ErrWAL) {
			// The node is gone for good (both shards refused it).
			// Drop its forwarding state so its ids fail fast instead
			// of routing to the vacated shard forever.
			e.fwd.forget(phys)
		}
		if e.closed.Load() {
			return ErrClosed
		}
		e.errors.Add(1)
		return fmt.Errorf("serve: migrate %v to shard %d: %w", node, to, err)
	}
	e.migrations.Add(1)
	if walDegraded != nil {
		e.errors.Add(1)
		return fmt.Errorf("serve: migrate %v to shard %d completed: %w", node, to, walDegraded)
	}
	return nil
}

// RebalanceResult describes one rebalance pass.
type RebalanceResult struct {
	// Imbalance is the max/min shard-population ratio observed at
	// the start of the pass. Empty shards count as population 1, so
	// the ratio stays finite (JSON-encodable) while still far past
	// any sane threshold.
	Imbalance float64 `json:"imbalance"`
	// From and To are the most- and least-populated shards at the
	// start of the pass — the first pair served. The pass re-samples
	// after every move, so later moves may serve other pairs.
	From int `json:"from"`
	To   int `json:"to"`
	// Moved counts the nodes this pass migrated (across however
	// many shard pairs the re-sampling visited).
	Moved int `json:"moved"`
}

// Rebalance runs one adaptive rebalance pass: it samples per-shard
// populations from the published snapshots and, while the max/min
// ratio exceeds Config.RebalanceThreshold, migrates nodes (newest
// joiners first — the cheapest to move and the likeliest cause of
// targeted-join skew) from the most- to the least-populated shard,
// re-sampling after every move so successive moves spread across
// whichever pair is most skewed. Config.RebalanceMaxMoves caps the
// pass so rebalancing never starves serving. The background
// rebalancer (Config.RebalanceInterval) calls this on its cadence;
// it is also safe to trigger manually (POST /rebalance over HTTP).
// An error is returned only when the pass could not move anything
// it should have.
func (e *Engine) Rebalance() (RebalanceResult, error) {
	if e.closed.Load() {
		return RebalanceResult{}, ErrClosed
	}
	if err := e.writable(); err != nil {
		return RebalanceResult{}, err
	}
	// One pass at a time: a manual trigger racing the background loop
	// must not double the move budget or see each other's half-moved
	// populations and oscillate.
	e.rebalanceMu.Lock()
	defer e.rebalanceMu.Unlock()
	e.rebalances.Add(1)
	sample := func() (maxI, minI, gap int, imb float64) {
		pops := make([]int, len(e.shards))
		for i, s := range e.shards {
			pops[i] = len(s.snapshot().Records)
			if pops[i] > pops[maxI] {
				maxI = i
			}
			if pops[i] < pops[minI] {
				minI = i
			}
		}
		imb = 1.0
		if pops[maxI] > 0 {
			low := pops[minI]
			if low < 1 {
				low = 1 // empty shard: keep the ratio finite for JSON
			}
			imb = float64(pops[maxI]) / float64(low)
		}
		return maxI, minI, pops[maxI] - pops[minI], imb
	}
	maxI, minI, gap, imb := sample()
	e.lastImbalance.Store(math.Float64bits(imb))
	res := RebalanceResult{Imbalance: imb, From: maxI, To: minI}
	if len(e.shards) < 2 {
		return res, nil
	}
	var firstErr error
	// gap > 1: moving one node off a one-node lead only swaps which
	// shard is largest — stop there even when small populations keep
	// the ratio above the threshold, or the pass would ping-pong the
	// same node until the move cap burned out.
	for res.Moved < e.cfg.RebalanceMaxMoves && imb > e.cfg.RebalanceThreshold && gap > 1 {
		recs := e.shards[maxI].snapshot().Records
		moved := false
		for i := len(recs) - 1; i >= 0; i-- {
			if err := e.Migrate(Global(maxI, recs[i].Node), minI); err != nil {
				// The node may have left or moved concurrently; try
				// the next one.
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			moved = true
			break
		}
		if !moved {
			break
		}
		res.Moved++
		maxI, minI, gap, imb = sample()
	}
	if res.Moved == 0 && imb > e.cfg.RebalanceThreshold && gap > 1 && firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// rebalanceLoop is the background rebalancer goroutine, started by
// New when Config.RebalanceInterval > 0 and stopped by Close.
func (e *Engine) rebalanceLoop(interval time.Duration) {
	defer close(e.rebalDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-tick.C:
			e.Rebalance() // errors surface through Stats.Errors
		}
	}
}

// ForwardTable exports the migrated-node id forwarding table for
// placement owners outside the package: the federation router keeps
// one to make nodes migrated between primary processes routable by
// every id they were ever known by, exactly as an Engine does for
// nodes migrated between its shards. The grace period bounds how
// long a vacated id stays routable after its last repoint; pick it
// the way newFwdTable does — twice the longest time any reader can
// hold a stale id.
type ForwardTable struct{ t *fwdTable }

// NewForwardTable builds an empty table with the given alias grace.
func NewForwardTable(grace time.Duration) *ForwardTable {
	return &ForwardTable{t: newFwdTableGrace(grace)}
}

// Resolve follows the forwarding chain from any id the node was ever
// known by to its current physical id (the id itself when it never
// migrated), with lazy path compression.
func (f *ForwardTable) Resolve(id GlobalID) GlobalID { return f.t.resolve(id) }

// Begin claims the node for migration, waiting out a move already in
// flight; it returns the node's current physical id, its stable
// external id, and a release ending the claim. closing aborts the
// wait (ErrClosed).
func (f *ForwardTable) Begin(id GlobalID, closing <-chan struct{}) (phys, ext GlobalID, release func(), err error) {
	return f.t.begin(id, closing)
}

// Repoint links a completed move: ext and the vacated old id now
// route to the node's new physical id.
func (f *ForwardTable) Repoint(ext, old, now GlobalID) { f.t.repoint(ext, old, now) }

// Forget drops all forwarding state of the node currently at phys,
// returning every id that belonged to it.
func (f *ForwardTable) Forget(phys GlobalID) []GlobalID { return f.t.forget(phys) }

// WaitSettled blocks while the node's move is in flight and reports
// whether retrying resolution could see a different physical id.
func (f *ForwardTable) WaitSettled(id, phys GlobalID, closing <-chan struct{}) bool {
	return f.t.waitSettled(id, phys, closing)
}

// Count returns the number of routable forwarded ids.
func (f *ForwardTable) Count() int { return f.t.count() }

// External maps a physical id back to the node's stable external id
// (the id itself when it never migrated).
func (f *ForwardTable) External(phys GlobalID) GlobalID { return f.t.externalOf(phys) }

// Externalize maps every candidate's physical id back to its stable
// external id in place, skipping all lock traffic while nothing has
// ever migrated.
func (f *ForwardTable) Externalize(cands []Candidate) []Candidate {
	t := f.t
	if t.entries.Load() == 0 {
		return cands
	}
	t.mu.RLock()
	for i := range cands {
		cands[i].Node = t.externalLocked(cands[i].Node)
	}
	t.mu.RUnlock()
	return cands
}

// ExternalizeIDs is Externalize for bare ids.
func (f *ForwardTable) ExternalizeIDs(ids []GlobalID) []GlobalID {
	t := f.t
	if t.entries.Load() == 0 {
		return ids
	}
	t.mu.RLock()
	for i := range ids {
		ids[i] = t.externalLocked(ids[i])
	}
	t.mu.RUnlock()
	return ids
}
