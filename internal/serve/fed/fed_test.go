package fed_test

import (
	"math/rand/v2"
	"net"
	"slices"
	"testing"
	"time"

	"pidcan"
	"pidcan/internal/serve"
	"pidcan/internal/serve/fed"
	"pidcan/internal/serve/repl"
	"pidcan/internal/serve/wire"
	"pidcan/internal/vector"
)

func testCfg(seed uint64) serve.Config {
	return serve.Config{
		Shards:        2,
		NodesPerShard: 2,
		Seed:          seed,
		CMax:          vector.Of(10, 10),
		FlushInterval: 5 * time.Millisecond,
		CacheTTL:      10 * time.Millisecond,
	}
}

// member is one federation primary: an engine behind a loopback wire
// listener.
type member struct {
	eng  *serve.Engine
	srv  *wire.Server
	addr string
}

func startMember(t *testing.T, cfg serve.Config) *member {
	t.Helper()
	eng, err := pidcan.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := wire.NewServer(func() serve.Service { return eng }, wire.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return &member{eng: eng, srv: srv, addr: ln.Addr().String()}
}

func newRouter(t *testing.T, cfg fed.Config) *fed.Router {
	t.Helper()
	r, err := fed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func waitFor(t *testing.T, d time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFedIDRoundTrip(t *testing.T) {
	locals := []serve.GlobalID{
		0,
		serve.Global(0, 1),
		serve.Global(3, 7),
		serve.Global(0xFFFF, 0x7FFFFFFF),
	}
	for _, m := range []int{0, 1, 5, 65534} {
		for _, l := range locals {
			id := fed.ID(m, l)
			gm, gl := fed.SplitID(id)
			if gm != m || gl != l {
				t.Fatalf("SplitID(ID(%d, %v)) = (%d, %v)", m, l, gm, gl)
			}
		}
	}
	// Untagged ids (plain engine ids) split to member -1, so mixed
	// deployments can tell federation ids from single-process ones.
	if m, l := fed.SplitID(serve.Global(2, 9)); m != -1 || l != serve.Global(2, 9) {
		t.Fatalf("untagged id split to (%d, %v), want (-1, unchanged)", m, l)
	}
}

func TestEvenSplitOwner(t *testing.T) {
	m := fed.EvenSplit([][]string{{"a:1"}, {"b:1", "b2:1"}, {"c:1"}})
	if m.Version != 1 || len(m.Members) != 3 {
		t.Fatalf("EvenSplit: version %d, %d members", m.Version, len(m.Members))
	}
	if got := m.Members[1].Addrs; !slices.Equal(got, []string{"b:1", "b2:1"}) {
		t.Fatalf("member 1 addrs %v", got)
	}
	// The slices partition the keyspace: every key has exactly one
	// owner, boundaries included, and the last member wraps to 2^64.
	if o := m.Owner(0); o != 0 {
		t.Fatalf("Owner(0) = %d", o)
	}
	if o := m.Owner(^uint64(0)); o != 2 {
		t.Fatalf("Owner(max) = %d", o)
	}
	for i, mem := range m.Members {
		if o := m.Owner(mem.Lo); o != i {
			t.Fatalf("Owner(member %d's Lo) = %d", i, o)
		}
	}
	rng := rand.New(rand.NewPCG(1, 2))
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		o := m.Owner(rng.Uint64())
		if o < 0 || o > 2 {
			t.Fatalf("Owner out of range: %d", o)
		}
		counts[o]++
	}
	for i, c := range counts {
		if c < 500 {
			t.Fatalf("member %d owns only %d of 3000 random keys: %v", i, c, counts)
		}
	}
}

func TestMapEncodeDecodeMerge(t *testing.T) {
	m := fed.EvenSplit([][]string{{"a:1"}, {"b:1"}})
	got, err := fed.DecodeMap(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || len(got.Members) != len(m.Members) {
		t.Fatalf("round trip: %+v", got)
	}
	newer := fed.EvenSplit([][]string{{"a:1"}, {"b2:1"}})
	newer.Version = 5
	if !m.Merge(newer) {
		t.Fatal("merge of a newer map reported no change")
	}
	if m.Version != 5 || m.Members[1].Addrs[0] != "b2:1" {
		t.Fatalf("merge did not adopt the newer map: %+v", m)
	}
	older := fed.EvenSplit([][]string{{"x:1"}, {"y:1"}})
	if m.Merge(older) {
		t.Fatal("merge of an older map reported a change")
	}
}

// TestFederationMatchesReferenceEngine is the acceptance property: a
// 2-primary federation reached through the router answers scatter
// queries identically to one reference engine holding the same nodes,
// over the same op sequence.
func TestFederationMatchesReferenceEngine(t *testing.T) {
	a := startMember(t, testCfg(1))
	b := startMember(t, testCfg(2))
	ref, err := pidcan.NewEngine(serve.Config{
		Shards:        4, // same node count as 2 members x 2 shards
		NodesPerShard: 2,
		Seed:          3,
		CMax:          vector.Of(10, 10),
		FlushInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	router := newRouter(t, fed.Config{
		Members: [][]string{{a.addr}, {b.addr}},
		CMax:    vector.Of(10, 10),
	})

	rng := rand.New(rand.NewPCG(41, 0xfed))
	randAvail := func() vector.Vec {
		return vector.Of(10*(0.2+0.8*rng.Float64()), 10*(0.2+0.8*rng.Float64()))
	}
	check := func(step int) {
		demand := vector.Of(5*rng.Float64(), 5*rng.Float64())
		k := 1 + rng.IntN(8)
		got, err := router.Query(serve.QueryRequest{Demand: demand, K: k, NoCache: true})
		if err != nil {
			t.Fatalf("step %d: federated query: %v", step, err)
		}
		want, err := ref.Query(serve.QueryRequest{Demand: demand, K: k, NoCache: true})
		if err != nil {
			t.Fatalf("step %d: reference query: %v", step, err)
		}
		if len(got.Candidates) != len(want.Candidates) {
			t.Fatalf("step %d: %d candidates, reference %d (demand %v, k %d)",
				step, len(got.Candidates), len(want.Candidates), demand, k)
		}
		// Node ids necessarily differ (different shard layouts), but
		// the ranked (surplus, avail) sequences must match exactly:
		// the wire round-trips f64s bit-for-bit and both sides run
		// the same best-fit merge. Random avails make surplus ties
		// (which rank by id) a measure-zero event.
		for i := range got.Candidates {
			g, w := got.Candidates[i], want.Candidates[i]
			if g.Surplus != w.Surplus || !slices.Equal(g.Avail, w.Avail) {
				t.Fatalf("step %d: candidate %d = (%v, %v), reference (%v, %v)",
					step, i, g.Surplus, g.Avail, w.Surplus, w.Avail)
			}
		}
	}

	type pair struct{ r, f serve.GlobalID }
	var live []pair
	for step := 0; step < 300; step++ {
		switch op := rng.IntN(10); {
		case op < 5 || len(live) == 0:
			av := randAvail()
			rid, err := router.Join(av)
			if err != nil {
				t.Fatalf("step %d: federated join: %v", step, err)
			}
			fid, err := ref.Join(av.Clone())
			if err != nil {
				t.Fatalf("step %d: reference join: %v", step, err)
			}
			live = append(live, pair{rid, fid})
		case op < 8:
			p := live[rng.IntN(len(live))]
			av := randAvail()
			if err := router.Update(p.r, av, true); err != nil {
				t.Fatalf("step %d: federated update: %v", step, err)
			}
			if err := ref.Update(p.f, av.Clone(), true); err != nil {
				t.Fatalf("step %d: reference update: %v", step, err)
			}
		default:
			i := rng.IntN(len(live))
			p := live[i]
			if err := router.Leave(p.r); err != nil {
				t.Fatalf("step %d: federated leave: %v", step, err)
			}
			if err := ref.Leave(p.f); err != nil {
				t.Fatalf("step %d: reference leave: %v", step, err)
			}
			live = slices.Delete(live, i, i+1)
		}
		if step%20 == 19 {
			check(step)
		}
	}
}

// TestCrossProcessMigrationKeepsIDsRoutable is the satellite
// guarantee: a node migrated between primary processes stays routable
// by every id it was ever known by.
func TestCrossProcessMigrationKeepsIDsRoutable(t *testing.T) {
	a := startMember(t, testCfg(1))
	b := startMember(t, testCfg(2))
	router := newRouter(t, fed.Config{
		Members: [][]string{{a.addr}, {b.addr}},
		CMax:    vector.Of(10, 10),
	})

	id, err := router.JoinOn(0, vector.Of(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Migrate(id, 1); err != nil {
		t.Fatalf("migrate to member 1: %v", err)
	}
	// The node physically moved...
	if got := len(b.eng.Nodes()); got != 5 {
		t.Fatalf("destination holds %d nodes, want 5", got)
	}
	if got := len(a.eng.Nodes()); got != 4 {
		t.Fatalf("source still holds %d nodes, want 4", got)
	}
	// ...but its original id keeps working for writes, listings and
	// query results.
	if err := router.Update(id, vector.Of(7, 7), false); err != nil {
		t.Fatalf("update by pre-migration id: %v", err)
	}
	if !slices.Contains(router.Nodes(), id) {
		t.Fatalf("Nodes() lost the migrated node's stable id %v", id)
	}
	resp, err := router.Query(serve.QueryRequest{Demand: vector.Of(6.5, 6.5), K: 4, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range resp.Candidates {
		if c.Node == id {
			found = true
			if !slices.Equal(c.Avail, vector.Of(7, 7)) {
				t.Fatalf("migrated node advertises %v, want the post-move update", c.Avail)
			}
		}
	}
	if !found {
		t.Fatalf("migrated node missing from query candidates: %+v", resp.Candidates)
	}
	// Migrate it back: the alias chain grows but the id still routes.
	if err := router.Migrate(id, 0); err != nil {
		t.Fatalf("migrate back to member 0: %v", err)
	}
	if err := router.Update(id, vector.Of(8, 8), false); err != nil {
		t.Fatalf("update after round-trip migration: %v", err)
	}
	if err := router.Leave(id); err != nil {
		t.Fatalf("leave by original id: %v", err)
	}
	if err := router.Update(id, vector.Of(1, 1), false); err == nil {
		t.Fatal("update of a departed node succeeded")
	}
}

// TestMigrationDestinationCrashRollsBack kills the destination
// primary between a migration's take and its re-join: the router must
// roll the node back to its source, keeping every old id routable.
func TestMigrationDestinationCrashRollsBack(t *testing.T) {
	a := startMember(t, testCfg(1))
	b := startMember(t, testCfg(2))
	crash := false
	router := newRouter(t, fed.Config{
		Members: [][]string{{a.addr}, {b.addr}},
		CMax:    vector.Of(10, 10),
		AfterTake: func() {
			if crash {
				b.srv.Close()
				b.eng.Close()
			}
		},
	})

	id, err := router.JoinOn(0, vector.Of(6, 6))
	if err != nil {
		t.Fatal(err)
	}
	crash = true
	if err := router.Migrate(id, 1); err == nil {
		t.Fatal("migrate into a crashed destination reported success")
	}
	crash = false
	// Rolled back home: the id still routes to member 0.
	if err := router.Update(id, vector.Of(7, 7), false); err != nil {
		t.Fatalf("update after rolled-back migration: %v", err)
	}
	if got := len(a.eng.Nodes()); got != 5 {
		t.Fatalf("source holds %d nodes after rollback, want 5", got)
	}
	if !slices.Contains(router.Nodes(), id) {
		t.Fatalf("Nodes() lost id %v after rollback", id)
	}
	resp, err := router.Query(serve.QueryRequest{Demand: vector.Of(6.5, 6.5), K: 4, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) == 0 || resp.Candidates[0].Node != id {
		t.Fatalf("rolled-back node missing from candidates: %+v", resp.Candidates)
	}
}

// TestFederationFailoverZeroLoss kills one member's primary, promotes
// its follower, and requires the router to converge onto the promoted
// process with every acked write still served — the federation run of
// the repl package's zero-loss promotion contract.
func TestFederationFailoverZeroLoss(t *testing.T) {
	a := startMember(t, testCfg(1))

	// Member B is durable and streams its op-log to follower B2.
	bCfg := testCfg(2)
	bCfg.DataDir = t.TempDir()
	bEng, err := pidcan.NewEngine(bCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bEng.Close() })
	replSrv, err := repl.NewServer(bEng, repl.ServerConfig{Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go replSrv.Serve(replLn)
	t.Cleanup(func() { replSrv.Close() })
	bSrv := wire.NewServer(func() serve.Service { return bEng }, wire.ServerConfig{})
	bLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go bSrv.Serve(bLn)
	t.Cleanup(func() { bSrv.Close() })

	fDir := t.TempDir()
	cl, err := repl.NewClient(repl.ClientConfig{
		Primary: replLn.Addr().String(),
		DataDir: fDir,
		Shards:  bCfg.Shards,
		Mount: func() (*serve.Engine, error) {
			fCfg := bCfg
			fCfg.DataDir = fDir
			fCfg.Follower = true
			fCfg.PrimaryAddr = replLn.Addr().String()
			return pidcan.NewEngine(fCfg)
		},
		RetryMin:         20 * time.Millisecond,
		RetryMax:         100 * time.Millisecond,
		HeartbeatTimeout: 500 * time.Millisecond,
		DrainTimeout:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	go cl.Run()
	t.Cleanup(func() { cl.Close() })
	// B2's wire edge is registered as member B's fallback address; it
	// serves whatever engine the repl client has mounted (the
	// follower pre-promotion, the promoted primary after).
	fSrv := wire.NewServer(func() serve.Service {
		if e := cl.Engine(); e != nil {
			return e
		}
		return nil
	}, wire.ServerConfig{})
	fLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fSrv.Serve(fLn)
	t.Cleanup(func() { fSrv.Close() })
	waitFor(t, 5*time.Second, "follower bootstrap", func() bool { return cl.Engine() != nil })

	router := newRouter(t, fed.Config{
		Members: [][]string{{a.addr}, {bLn.Addr().String(), fLn.Addr().String()}},
		CMax:    vector.Of(10, 10),
	})

	// Drive acked writes through the router onto both members.
	var acked []serve.GlobalID
	for i := 0; i < 10; i++ {
		for m := 0; m < 2; m++ {
			id, err := router.JoinOn(m, vector.Of(1+float64(i)/2, 1+float64(i)/2))
			if err != nil {
				t.Fatalf("join %d on member %d: %v", i, m, err)
			}
			if err := router.Update(id, vector.Of(2+float64(i)/2, 2), false); err != nil {
				t.Fatalf("update %v: %v", id, err)
			}
			acked = append(acked, id)
		}
	}
	before := router.Nodes()
	slices.Sort(before)

	// A sentinel write at the stream's tail: once the follower serves
	// it, every earlier acked write replicated too (single total
	// order).
	sentinel := acked[len(acked)-1] // last member-1 id
	if err := router.Update(sentinel, vector.Of(9.5, 9.5), false); err != nil {
		t.Fatal(err)
	}
	_, sentinelLocal := fed.SplitID(sentinel)
	waitFor(t, 5*time.Second, "follower catch-up", func() bool {
		e := cl.Engine()
		if e == nil {
			return false
		}
		resp, err := e.Query(serve.QueryRequest{Demand: vector.Of(9.4, 9.4), K: 16, NoCache: true})
		if err != nil {
			return false
		}
		for _, c := range resp.Candidates {
			if c.Node == sentinelLocal {
				return true
			}
		}
		return false
	})

	// Kill member B's primary outright and promote its follower.
	bSrv.Close()
	replSrv.Close()
	bEng.Close()
	epoch, err := cl.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if epoch != 2 {
		t.Fatalf("promotion sealed epoch %d, want 2", epoch)
	}

	// The first post-promotion write walks the whole fail-over path:
	// dead primary -> rotate to the follower address -> fenced by the
	// new epoch -> re-stamp and apply.
	if err := router.Update(sentinel, vector.Of(9.6, 9.6), false); err != nil {
		t.Fatalf("first write after fail-over: %v", err)
	}
	// Zero acked-write loss: every id acked before the crash is still
	// listed and writable through the router.
	after := router.Nodes()
	slices.Sort(after)
	if !slices.Equal(before, after) {
		t.Fatalf("node set changed across fail-over:\n before %v\n after  %v", before, after)
	}
	for _, id := range acked {
		if err := router.Update(id, vector.Of(3, 3), false); err != nil {
			t.Fatalf("acked id %v lost across fail-over: %v", id, err)
		}
	}
	// The router's federation map converged onto the new epoch.
	m := router.Map()
	if got := m.Members[1].Epoch; got != 2 {
		t.Fatalf("federation map records epoch %d for the failed-over member, want 2", got)
	}
}
