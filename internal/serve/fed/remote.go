package fed

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/serve/wire"
	"pidcan/internal/vector"
)

// defaultPoolSize is the pipelined connections kept per member.
// Concurrent callers multiplex onto them round-robin. One shared
// connection wins under load: every concurrent leg lands in the same
// flush train, so the syscall amortization is maximal — spreading the
// same traffic over more connections only dilutes the batches.
// Config.PoolSize raises it for deployments where a single reader
// goroutine per member becomes the bottleneck.
const defaultPoolSize = 1

// RemotePrimary adapts one federation member — a whole primary
// process reached over the wire protocol — to the serve.Placement
// interface, so the scatter/migrate machinery written for in-process
// shards drives remote processes unchanged.
//
// The transport is a fixed pool of shared pipelined connections
// (muxConn): concurrent scatter legs and router requests enqueue
// onto the same connection and a single flush carries them all, so a
// leg costs a fraction of an RTT instead of a synchronous exchange.
// The member's address list rotates on transport failure or
// read-only answers — after a fail-over the router converges onto
// the promoted follower without configuration changes — and repeated
// dial failures back off with jitter instead of hammering a dead
// address. Every operation retries over the rotation; writes
// interrupted mid-flight are at-most-once (the retry may find the
// first attempt applied and surface the member's rejection).
type RemotePrimary struct {
	member int

	mu    sync.Mutex
	addrs []string
	cur   int
	conns []*muxConn // fixed slots, dialed lazily
	// Dial backoff: consecutive failures gate redials exponentially
	// (jittered); rotation clears the gate — it belongs to the
	// address that failed, not to its fallback.
	dialFails   int
	nextDial    time.Time
	lastDialErr error
	closed      bool

	poolSize    int
	unpipelined bool

	rr atomic.Uint64 // round-robin slot pick

	// depthSum/depthN sample the pipeline depth seen at submit time
	// (in-flight calls on the chosen conn, this one included) — the
	// feed behind the router's fed_pipeline_depth stat.
	depthSum atomic.Uint64
	depthN   atomic.Uint64

	// fwd is the owning router's forwarding table: Leave drops the
	// node's entries, CompleteMigration repoints them (nil in
	// standalone tests — the forwarding consequences then fall to
	// the caller).
	fwd *serve.ForwardTable

	// Router hooks (any may be nil): mapVer stamps fed queries with
	// the current map version, writeEpoch fences writes with the
	// member's recorded epoch, onEpoch/onStale feed fail-over and
	// map-staleness evidence back to the router, and
	// writeBegin/writeEnd bracket every write routed to this member
	// (the router's summary dirty-tracking).
	mapVer     func() uint64
	writeEpoch func(member int) uint64
	onEpoch    func(member int, epoch uint64)
	onStale    func(member int)
	writeBegin func(member int)
	writeEnd   func(member int)
}

var _ serve.Placement = (*RemotePrimary)(nil)

// NewRemotePrimary builds a standalone member placement (no router
// hooks): addrs is the member's wire address list, primary first;
// fwd may be nil when the caller owns forwarding state itself.
func NewRemotePrimary(member int, addrs []string, fwd *serve.ForwardTable) *RemotePrimary {
	return &RemotePrimary{
		member:   member,
		addrs:    append([]string(nil), addrs...),
		fwd:      fwd,
		poolSize: defaultPoolSize,
	}
}

// Ref is the member's index in the federation map.
func (r *RemotePrimary) Ref() int { return r.member }

// Addr returns the member address currently in use.
func (r *RemotePrimary) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addrs[r.cur]
}

// Close poisons every pooled connection and fails subsequent calls
// with serve.ErrClosed.
func (r *RemotePrimary) Close() {
	r.mu.Lock()
	r.closed = true
	conns := r.conns
	r.conns = nil
	r.mu.Unlock()
	for _, mc := range conns {
		if mc != nil {
			mc.Close()
		}
	}
}

// backoffAfter is the jittered redial gate after fails consecutive
// dial failures: exponential from 25ms, capped at 1.6s, uniformly
// jittered over [d/2, d) so a fleet of routers never reconverges on
// a recovering member in lockstep.
func backoffAfter(fails int) time.Duration {
	shift := fails
	if shift > 6 {
		shift = 6
	}
	d := 25 * time.Millisecond << shift
	return d/2 + time.Duration(rand.Int64N(int64(d/2)))
}

// getConn returns a healthy shared connection to the member's
// current address, replacing a dead or rotated-away slot by dialing
// (outside the lock) — or failing fast while the backoff gate holds.
func (r *RemotePrimary) getConn() (*muxConn, string, error) {
	slot := int(r.rr.Add(1)-1) % r.poolSize
	for tries := 0; tries < 2; tries++ {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return nil, "", serve.ErrClosed
		}
		if r.conns == nil {
			r.conns = make([]*muxConn, r.poolSize)
		}
		addr := r.addrs[r.cur]
		if mc := r.conns[slot]; mc != nil && mc.addr == addr && !mc.dead.Load() {
			r.mu.Unlock()
			return mc, addr, nil
		}
		if now := time.Now(); now.Before(r.nextDial) {
			err := r.lastDialErr
			r.mu.Unlock()
			return nil, addr, fmt.Errorf("dial backoff: %w", err)
		}
		r.mu.Unlock()

		c, err := wire.Dial(addr)

		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			if err == nil {
				c.Close()
			}
			return nil, addr, serve.ErrClosed
		}
		if err != nil {
			r.dialFails++
			r.lastDialErr = err
			r.nextDial = time.Now().Add(backoffAfter(r.dialFails))
			r.mu.Unlock()
			return nil, addr, err
		}
		r.dialFails = 0
		r.nextDial = time.Time{}
		if addr != r.addrs[r.cur] {
			// Rotated away mid-dial: don't install a connection to the
			// abandoned address — loop and re-evaluate.
			r.mu.Unlock()
			c.Close()
			continue
		}
		if mc := r.conns[slot]; mc != nil && mc.addr == addr && !mc.dead.Load() {
			// A concurrent caller already replaced the slot.
			r.mu.Unlock()
			c.Close()
			return mc, addr, nil
		}
		old := r.conns[slot]
		mc := newMuxConn(c, addr, r.unpipelined)
		r.conns[slot] = mc
		r.mu.Unlock()
		if old != nil {
			old.Close()
		}
		return mc, addr, nil
	}
	return nil, "", fmt.Errorf("fed: member %d: address rotated repeatedly mid-dial", r.member)
}

// rotate advances to the member's next fallback address, if addr is
// still the one that failed (concurrent failures rotate once). The
// dial-backoff gate resets: a fresh address deserves an immediate
// dial.
func (r *RemotePrimary) rotate(addr string) {
	r.mu.Lock()
	if !r.closed && addr == r.addrs[r.cur] && len(r.addrs) > 1 {
		r.cur = (r.cur + 1) % len(r.addrs)
		r.nextDial = time.Time{}
		r.dialFails = 0
	}
	r.mu.Unlock()
}

func (r *RemotePrimary) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// beginWrite brackets one write routed to this member for the
// router's summary dirty-tracking; the returned func marks its
// completion. Usage: defer r.beginWrite()().
func (r *RemotePrimary) beginWrite() func() {
	if r.writeBegin != nil {
		r.writeBegin(r.member)
	}
	if r.writeEnd == nil {
		return func() {}
	}
	return func() { r.writeEnd(r.member) }
}

// do runs one request — enq appends the frame, on consumes the
// decoded response — over the shared pipelined transport with
// bounded retries: a transport failure or a read-only/not-ready
// answer rotates the address and tries again, a fenced write
// re-stamps the epoch just observed. Three attempts cover the
// longest fail-over walk: dead primary -> transport error -> rotate
// -> promoted follower -> fenced -> re-stamp with the new epoch ->
// applied.
//
// on runs on the connection's reader goroutine; anything it keeps
// from the response must be copied out of the client's reused
// buffers before it returns.
func (r *RemotePrimary) do(enq func(c *wire.Client) uint32, on func(resp *wire.Response) error) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		mc, addr, err := r.getConn()
		if err != nil {
			if errors.Is(err, serve.ErrClosed) {
				return err
			}
			lastErr = fmt.Errorf("fed: member %d unreachable at %s: %w", r.member, addr, err)
			r.rotate(addr)
			continue
		}
		var we uint64
		if r.writeEpoch != nil {
			we = r.writeEpoch(r.member)
		}
		r.depthSum.Add(uint64(mc.inflight.Load() + 1))
		r.depthN.Add(1)
		var gotEpoch uint64
		err = mc.submit(we, enq, func(resp *wire.Response) error {
			gotEpoch = resp.Epoch
			if resp.Errored {
				e := resp.Err
				return &e
			}
			return on(resp)
		})
		// Every response — rejections included — carries the member's
		// replication epoch; a jump is the first evidence of a
		// promotion and feeds the federation map. (Safe to read after
		// submit: the reader goroutine's write happens-before the
		// done-channel receive.)
		if r.onEpoch != nil && gotEpoch > 0 {
			r.onEpoch(r.member, gotEpoch)
		}
		if err == nil {
			return nil
		}
		var werr *wire.Error
		if errors.As(err, &werr) {
			// The server answered; the shared connection is healthy
			// and stays in the pool.
			switch werr.Code {
			case wire.CodeReadOnly, wire.CodeNotReady:
				lastErr = r.translate(werr)
				r.rotate(addr)
				continue
			case wire.CodeFenced:
				// Our stamped epoch was stale; the observation above
				// recorded the newer one — retry stamps it.
				lastErr = r.translate(werr)
				continue
			}
			return r.translate(werr)
		}
		if errors.Is(err, wire.ErrClosed) && r.isClosed() {
			return serve.ErrClosed
		}
		// Transport error: the mux poisoned the shared connection;
		// the pool replaces it on the next checkout.
		lastErr = fmt.Errorf("fed: member %d: %w", r.member, err)
		r.rotate(addr)
	}
	return lastErr
}

// translate maps a wire rejection onto the serve sentinel the
// engine-facing code paths already branch on, so call sites never
// type-switch local placements against remote ones.
func (r *RemotePrimary) translate(we *wire.Error) error {
	var sentinel error
	switch we.Code {
	case wire.CodeClosed:
		sentinel = serve.ErrClosed
	case wire.CodeWAL:
		sentinel = serve.ErrWAL
	case wire.CodeNoShard:
		sentinel = serve.ErrNoShard
	case wire.CodeScatterTimeout:
		sentinel = serve.ErrScatterTimeout
	case wire.CodeReadOnly:
		sentinel = serve.ErrReadOnly
	case wire.CodeFenced:
		sentinel = serve.ErrFenced
	case wire.CodeBadRequest:
		sentinel = serve.ErrBadDemand
	default:
		return fmt.Errorf("fed: member %d: %w", r.member, we)
	}
	return fmt.Errorf("%w (member %d: %s)", sentinel, r.member, we.Msg)
}

func (r *RemotePrimary) curMapVer() uint64 {
	if r.mapVer != nil {
		return r.mapVer()
	}
	return 0
}

// legWireQuery translates a serve query into its wire form.
func legWireQuery(req serve.QueryRequest) wire.Query {
	wq := wire.Query{
		Demand:     req.Demand,
		K:          req.K,
		Consistent: req.Consistent,
		NoCache:    req.NoCache,
		ScopeOne:   req.Scope == serve.ScopeOne,
	}
	if wq.K > 0xFFFF || wq.K < 0 {
		wq.K = 0xFFFF // wire K is u16; the merge re-truncates anyway
	}
	return wq
}

// legDecoder returns the response callback that decodes a fed-query
// answer into leg, translating candidate ids into the federation
// namespace. It runs on the connection's reader goroutine, so
// everything kept is copied out of the client's reused buffers.
func (r *RemotePrimary) legDecoder(leg *serve.PlacementLeg) func(resp *wire.Response) error {
	return func(resp *wire.Response) error {
		res := &resp.Query
		if res.MapStale && r.onStale != nil {
			r.onStale(r.member)
		}
		leg.Hops, leg.HopsMax, leg.Queried = res.Hops, res.HopsMax, res.ShardsQueried
		if leg.Queried == 0 {
			leg.Queried = 1 // snapshot path: answered without protocol legs
		}
		// The decode buffers behind cd.Avail are reused on the
		// next response; the leg outlives them. One backing array
		// holds every candidate's copy (one alloc per leg, not
		// one per candidate).
		total := 0
		for _, cd := range res.Candidates {
			total += len(cd.Avail)
		}
		backing := make([]float64, 0, total)
		leg.Cands = make([]serve.Candidate, 0, len(res.Candidates))
		for _, cd := range res.Candidates {
			backing = append(backing, cd.Avail...)
			leg.Cands = append(leg.Cands, serve.Candidate{
				Node:    ID(r.member, serve.GlobalID(cd.Node)),
				Avail:   vector.Vec(backing[len(backing)-len(cd.Avail):]),
				Surplus: cd.Surplus,
			})
		}
		return nil
	}
}

// QueryLeg runs one query against the member as a scatter leg,
// translating candidate ids into the federation namespace. The
// member's epoch and map-staleness bit feed the router's fail-over
// and map-propagation hooks.
func (r *RemotePrimary) QueryLeg(req serve.QueryRequest, cancel <-chan struct{}) (serve.PlacementLeg, error) {
	wq := legWireQuery(req)
	var leg serve.PlacementLeg
	err := r.do(
		func(c *wire.Client) uint32 { return c.EnqueueFedQuery(r.curMapVer(), &wq) },
		r.legDecoder(&leg))
	if err != nil {
		return serve.PlacementLeg{}, err
	}
	return leg, nil
}

// QueryLegAsync issues one scatter leg without blocking for its
// response: the frame is enqueued onto a shared pipelined connection
// from the caller's goroutine, and the returned channel delivers the
// leg's outcome exactly once. This lets the router start every leg of
// a scatter and gather them on its own goroutine — no per-leg
// goroutine, no per-leg flush.
//
// done == nil means the fast path could not start (unpipelined
// transport, dial failure/backoff); call collect(nil) and it runs the
// synchronous QueryLeg instead. When done is non-nil, receive from it
// and pass the received error to collect — on any in-flight failure
// collect also falls back to the synchronous path, whose do() owns
// rotation, retries, and error translation (fed queries are
// idempotent, so re-asking is safe). A caller that abandons the wait
// (timeout) must simply not call collect; the reader's buffered send
// completes regardless.
func (r *RemotePrimary) QueryLegAsync(req serve.QueryRequest) (done chan error, collect func(err error) (serve.PlacementLeg, error)) {
	sync := func(error) (serve.PlacementLeg, error) { return r.QueryLeg(req, nil) }
	if r.unpipelined {
		return nil, sync
	}
	mc, _, err := r.getConn()
	if err != nil {
		return nil, sync
	}
	var we uint64
	if r.writeEpoch != nil {
		we = r.writeEpoch(r.member)
	}
	r.depthSum.Add(uint64(mc.inflight.Load() + 1))
	r.depthN.Add(1)
	wq := legWireQuery(req)
	leg := new(serve.PlacementLeg)
	var gotEpoch uint64
	done, err = mc.start(we,
		func(c *wire.Client) uint32 { return c.EnqueueFedQuery(r.curMapVer(), &wq) },
		func(resp *wire.Response) error {
			gotEpoch = resp.Epoch
			if resp.Errored {
				e := resp.Err
				return &e
			}
			return r.legDecoder(leg)(resp)
		})
	if err != nil {
		return nil, sync
	}
	collect = func(err error) (serve.PlacementLeg, error) {
		// Safe to read gotEpoch here: the reader goroutine's write
		// happens-before the caller's done-channel receive.
		if r.onEpoch != nil && gotEpoch > 0 {
			r.onEpoch(r.member, gotEpoch)
		}
		if err == nil {
			return *leg, nil
		}
		if errors.Is(err, wire.ErrClosed) && r.isClosed() {
			return serve.PlacementLeg{}, serve.ErrClosed
		}
		return r.QueryLeg(req, nil)
	}
	return done, collect
}

func (r *RemotePrimary) Update(node serve.GlobalID, avail vector.Vec, announce bool) error {
	defer r.beginWrite()()
	_, local := SplitID(node)
	return r.do(
		func(c *wire.Client) uint32 { return c.EnqueueUpdate(uint64(local), avail, announce) },
		func(resp *wire.Response) error { return nil },
	)
}

func (r *RemotePrimary) Join(avail vector.Vec) (serve.GlobalID, error) {
	defer r.beginWrite()()
	var id serve.GlobalID
	err := r.do(
		func(c *wire.Client) uint32 { return c.EnqueueJoin(-1, avail) },
		func(resp *wire.Response) error {
			id = ID(r.member, serve.GlobalID(resp.Node))
			return nil
		})
	return id, err
}

func (r *RemotePrimary) Leave(node serve.GlobalID) error {
	defer r.beginWrite()()
	_, local := SplitID(node)
	err := r.do(
		func(c *wire.Client) uint32 { return c.EnqueueLeave(uint64(local)) },
		func(resp *wire.Response) error { return nil },
	)
	if err == nil && r.fwd != nil {
		r.fwd.Forget(node) // removed ids only matter to routing
	}
	return err
}

// Take removes a node from the member for re-homing elsewhere. The
// member logs the removal as a plain leave (the out contract — its
// local crash recovery must not resurrect the node), so out is
// implied for a remote placement. A degraded take (applied, not
// durable on the member) surfaces as serve.ErrWAL with the
// availability still valid, matching the in-process contract.
func (r *RemotePrimary) Take(node serve.GlobalID, out bool) (vector.Vec, error) {
	_ = out // always an out-take from the member's point of view
	defer r.beginWrite()()
	_, local := SplitID(node)
	var avail vector.Vec
	var degraded bool
	err := r.do(
		func(c *wire.Client) uint32 { return c.EnqueueFedTake(uint64(local)) },
		func(resp *wire.Response) error {
			avail = vector.Vec(append([]float64(nil), resp.TakeAvail...))
			if len(avail) == 0 {
				avail = nil
			}
			degraded = resp.TakeDegraded
			return nil
		})
	if err != nil {
		return nil, err
	}
	if degraded {
		return avail, fmt.Errorf("%w (member %d)", serve.ErrWAL, r.member)
	}
	return avail, nil
}

// MapExchange offers the member a federation map at version ver
// (blob may be nil to only pull) and returns the newest version and
// blob the member holds — plus the member's availability summary,
// when it sent one — copied out of the connection's buffers.
func (r *RemotePrimary) MapExchange(ver uint64, blob []byte) (uint64, []byte, *wire.Summary, error) {
	var gotVer uint64
	var got []byte
	var sum *wire.Summary
	err := r.do(
		func(c *wire.Client) uint32 { return c.EnqueueMapExchange(ver, blob) },
		func(resp *wire.Response) error {
			gotVer = resp.MapVer
			got = append([]byte(nil), resp.MapBlob...)
			if resp.SumOK {
				sum = &wire.Summary{
					Seq: resp.Summary.Seq,
					Pop: resp.Summary.Pop,
					Max: append([]float64(nil), resp.Summary.Max...),
				}
			}
			return nil
		})
	return gotVer, got, sum, err
}

// CompleteMigration re-joins a taken node on this member and
// repoints the router's forwarding state. Unlike the in-process
// placement, a remote join that fails durability (CodeWAL) is a
// failure, not a degraded success — the acknowledgment crossed a
// process boundary, so the caller must be able to roll back rather
// than leave the node's only copy un-logged in a foreign WAL.
func (r *RemotePrimary) CompleteMigration(avail vector.Vec, ext, old serve.GlobalID) (serve.GlobalID, error) {
	id, err := r.Join(avail)
	if err != nil {
		return 0, err
	}
	if r.fwd != nil {
		r.fwd.Repoint(ext, old, id)
	}
	return id, nil
}

// depthStats returns the cumulative pipeline-depth samples (sum and
// count) taken at submit time.
func (r *RemotePrimary) depthStats() (sum, n uint64) {
	return r.depthSum.Load(), r.depthN.Load()
}
