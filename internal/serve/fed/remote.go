package fed

import (
	"errors"
	"fmt"
	"sync"

	"pidcan/internal/serve"
	"pidcan/internal/serve/wire"
	"pidcan/internal/vector"
)

// poolCap bounds the idle wire connections kept per member.
const poolCap = 8

type pooledConn struct {
	c    *wire.Client
	addr string
}

// RemotePrimary adapts one federation member — a whole primary
// process reached over the wire protocol — to the serve.Placement
// interface, so the scatter/migrate machinery written for in-process
// shards drives remote processes unchanged.
//
// Connections are pooled per member (concurrent scatter legs and
// router requests each check one out), and the member's address list
// is rotated on transport failure or read-only answers: after a
// fail-over the router converges onto the promoted follower without
// configuration changes. Every operation retries once after a
// rotation; writes interrupted mid-flight are at-most-once (the
// retry may find the first attempt applied and surface the member's
// rejection).
type RemotePrimary struct {
	member int

	mu     sync.Mutex
	addrs  []string
	cur    int
	pool   []pooledConn
	closed bool

	// fwd is the owning router's forwarding table: Leave drops the
	// node's entries, CompleteMigration repoints them (nil in
	// standalone tests — the forwarding consequences then fall to
	// the caller).
	fwd *serve.ForwardTable

	// Router hooks (any may be nil): mapVer stamps fed queries with
	// the current map version, writeEpoch fences writes with the
	// member's recorded epoch, onEpoch/onStale feed fail-over and
	// map-staleness evidence back to the router.
	mapVer     func() uint64
	writeEpoch func(member int) uint64
	onEpoch    func(member int, epoch uint64)
	onStale    func(member int)
}

var _ serve.Placement = (*RemotePrimary)(nil)

// NewRemotePrimary builds a standalone member placement (no router
// hooks): addrs is the member's wire address list, primary first;
// fwd may be nil when the caller owns forwarding state itself.
func NewRemotePrimary(member int, addrs []string, fwd *serve.ForwardTable) *RemotePrimary {
	return &RemotePrimary{
		member: member,
		addrs:  append([]string(nil), addrs...),
		fwd:    fwd,
	}
}

// Ref is the member's index in the federation map.
func (r *RemotePrimary) Ref() int { return r.member }

// Addr returns the member address currently in use.
func (r *RemotePrimary) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addrs[r.cur]
}

// Close drops the idle connection pool and fails subsequent calls
// with serve.ErrClosed.
func (r *RemotePrimary) Close() {
	r.mu.Lock()
	r.closed = true
	pool := r.pool
	r.pool = nil
	r.mu.Unlock()
	for _, pc := range pool {
		pc.c.Close()
	}
}

// get checks a connection out of the pool, discarding entries dialed
// before an address rotation, or dials the current address.
func (r *RemotePrimary) get() (*wire.Client, string, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, "", serve.ErrClosed
	}
	addr := r.addrs[r.cur]
	var stale []pooledConn
	var got *wire.Client
	for len(r.pool) > 0 && got == nil {
		pc := r.pool[len(r.pool)-1]
		r.pool = r.pool[:len(r.pool)-1]
		if pc.addr == addr {
			got = pc.c
		} else {
			stale = append(stale, pc)
		}
	}
	r.mu.Unlock()
	for _, pc := range stale {
		pc.c.Close()
	}
	if got != nil {
		return got, addr, nil
	}
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, addr, err
	}
	return c, addr, nil
}

// put returns a healthy connection to the pool (closed instead when
// the pool is full or the address rotated underneath it).
func (r *RemotePrimary) put(c *wire.Client, addr string) {
	r.mu.Lock()
	if !r.closed && addr == r.addrs[r.cur] && len(r.pool) < poolCap {
		r.pool = append(r.pool, pooledConn{c: c, addr: addr})
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	c.Close()
}

// rotate advances to the member's next fallback address, if addr is
// still the one that failed (concurrent failures rotate once).
func (r *RemotePrimary) rotate(addr string) {
	r.mu.Lock()
	if !r.closed && addr == r.addrs[r.cur] && len(r.addrs) > 1 {
		r.cur = (r.cur + 1) % len(r.addrs)
	}
	r.mu.Unlock()
}

// do runs f over a pooled connection with bounded retries: a
// transport failure or a read-only/not-ready answer rotates the
// address and tries again, a fenced write re-stamps the epoch just
// observed. Three attempts cover the longest fail-over walk: dead
// primary -> transport error -> rotate -> promoted follower ->
// fenced -> re-stamp with the new epoch -> applied.
func (r *RemotePrimary) do(f func(c *wire.Client) error) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		c, addr, err := r.get()
		if err != nil {
			if errors.Is(err, serve.ErrClosed) {
				return err
			}
			lastErr = fmt.Errorf("fed: member %d unreachable at %s: %w", r.member, addr, err)
			r.rotate(addr)
			continue
		}
		if r.writeEpoch != nil {
			c.WriteEpoch = r.writeEpoch(r.member)
		}
		err = f(c)
		// Every response — rejections included — carries the
		// member's replication epoch; a jump is the first evidence
		// of a promotion and feeds the federation map.
		if r.onEpoch != nil {
			if ep := c.LastEpoch(); ep > 0 {
				r.onEpoch(r.member, ep)
			}
		}
		if err == nil {
			r.put(c, addr)
			return nil
		}
		var we *wire.Error
		if errors.As(err, &we) {
			// The server answered; the connection is healthy.
			r.put(c, addr)
			switch we.Code {
			case wire.CodeReadOnly, wire.CodeNotReady:
				lastErr = r.translate(we)
				r.rotate(addr)
				continue
			case wire.CodeFenced:
				// Our stamped epoch was stale; the observation above
				// recorded the newer one — retry stamps it.
				lastErr = r.translate(we)
				continue
			}
			return r.translate(we)
		}
		// Transport error mid-exchange: the connection is poisoned.
		c.Close()
		lastErr = fmt.Errorf("fed: member %d: %w", r.member, err)
		r.rotate(addr)
	}
	return lastErr
}

// translate maps a wire rejection onto the serve sentinel the
// engine-facing code paths already branch on, so call sites never
// type-switch local placements against remote ones.
func (r *RemotePrimary) translate(we *wire.Error) error {
	var sentinel error
	switch we.Code {
	case wire.CodeClosed:
		sentinel = serve.ErrClosed
	case wire.CodeWAL:
		sentinel = serve.ErrWAL
	case wire.CodeNoShard:
		sentinel = serve.ErrNoShard
	case wire.CodeScatterTimeout:
		sentinel = serve.ErrScatterTimeout
	case wire.CodeReadOnly:
		sentinel = serve.ErrReadOnly
	case wire.CodeFenced:
		sentinel = serve.ErrFenced
	case wire.CodeBadRequest:
		sentinel = serve.ErrBadDemand
	default:
		return fmt.Errorf("fed: member %d: %w", r.member, we)
	}
	return fmt.Errorf("%w (member %d: %s)", sentinel, r.member, we.Msg)
}

func (r *RemotePrimary) curMapVer() uint64 {
	if r.mapVer != nil {
		return r.mapVer()
	}
	return 0
}

// QueryLeg runs one query against the member as a scatter leg,
// translating candidate ids into the federation namespace. The
// member's epoch and map-staleness bit feed the router's fail-over
// and map-propagation hooks.
func (r *RemotePrimary) QueryLeg(req serve.QueryRequest, cancel <-chan struct{}) (serve.PlacementLeg, error) {
	wq := wire.Query{
		Demand:     req.Demand,
		K:          req.K,
		Consistent: req.Consistent,
		NoCache:    req.NoCache,
		ScopeOne:   req.Scope == serve.ScopeOne,
	}
	if wq.K > 0xFFFF || wq.K < 0 {
		wq.K = 0xFFFF // wire K is u16; the merge re-truncates anyway
	}
	var leg serve.PlacementLeg
	err := r.do(func(c *wire.Client) error {
		var res wire.QueryResult
		_, err := c.FedQuery(r.curMapVer(), &wq, &res) // do() observes the epoch
		if err != nil {
			return err
		}
		if res.MapStale && r.onStale != nil {
			r.onStale(r.member)
		}
		leg.Hops, leg.HopsMax, leg.Queried = res.Hops, res.HopsMax, res.ShardsQueried
		if leg.Queried == 0 {
			leg.Queried = 1 // snapshot path: answered without protocol legs
		}
		leg.Cands = leg.Cands[:0]
		for _, cd := range res.Candidates {
			leg.Cands = append(leg.Cands, serve.Candidate{
				Node: ID(r.member, serve.GlobalID(cd.Node)),
				// The decode buffers behind cd.Avail are reused on the
				// next response; the leg outlives them.
				Avail:   vector.Vec(append([]float64(nil), cd.Avail...)),
				Surplus: cd.Surplus,
			})
		}
		return nil
	})
	if err != nil {
		return serve.PlacementLeg{}, err
	}
	return leg, nil
}

func (r *RemotePrimary) Update(node serve.GlobalID, avail vector.Vec, announce bool) error {
	_, local := SplitID(node)
	return r.do(func(c *wire.Client) error {
		return c.Update(uint64(local), avail, announce)
	})
}

func (r *RemotePrimary) Join(avail vector.Vec) (serve.GlobalID, error) {
	var id serve.GlobalID
	err := r.do(func(c *wire.Client) error {
		raw, err := c.Join(-1, avail)
		if err != nil {
			return err
		}
		id = ID(r.member, serve.GlobalID(raw))
		return nil
	})
	return id, err
}

func (r *RemotePrimary) Leave(node serve.GlobalID) error {
	_, local := SplitID(node)
	err := r.do(func(c *wire.Client) error {
		return c.Leave(uint64(local))
	})
	if err == nil && r.fwd != nil {
		r.fwd.Forget(node) // removed ids only matter to routing
	}
	return err
}

// Take removes a node from the member for re-homing elsewhere. The
// member logs the removal as a plain leave (the out contract — its
// local crash recovery must not resurrect the node), so out is
// implied for a remote placement. A degraded take (applied, not
// durable on the member) surfaces as serve.ErrWAL with the
// availability still valid, matching the in-process contract.
func (r *RemotePrimary) Take(node serve.GlobalID, out bool) (vector.Vec, error) {
	_ = out // always an out-take from the member's point of view
	_, local := SplitID(node)
	var avail vector.Vec
	var degraded bool
	err := r.do(func(c *wire.Client) error {
		a, d, err := c.TakeNode(uint64(local))
		if err != nil {
			return err
		}
		avail, degraded = vector.Vec(a), d
		return nil
	})
	if err != nil {
		return nil, err
	}
	if degraded {
		return avail, fmt.Errorf("%w (member %d)", serve.ErrWAL, r.member)
	}
	return avail, nil
}

// MapExchange offers the member a federation map at version ver
// (blob may be nil to only pull) and returns the newest version and
// blob the member holds, copied out of the connection's buffers.
func (r *RemotePrimary) MapExchange(ver uint64, blob []byte) (uint64, []byte, error) {
	var gotVer uint64
	var got []byte
	err := r.do(func(c *wire.Client) error {
		v, b, err := c.MapExchange(ver, blob)
		if err != nil {
			return err
		}
		gotVer = v
		got = append([]byte(nil), b...)
		return nil
	})
	return gotVer, got, err
}

// CompleteMigration re-joins a taken node on this member and
// repoints the router's forwarding state. Unlike the in-process
// placement, a remote join that fails durability (CodeWAL) is a
// failure, not a degraded success — the acknowledgment crossed a
// process boundary, so the caller must be able to roll back rather
// than leave the node's only copy un-logged in a foreign WAL.
func (r *RemotePrimary) CompleteMigration(avail vector.Vec, ext, old serve.GlobalID) (serve.GlobalID, error) {
	id, err := r.Join(avail)
	if err != nil {
		return 0, err
	}
	if r.fwd != nil {
		r.fwd.Repoint(ext, old, id)
	}
	return id, nil
}
