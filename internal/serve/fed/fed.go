// Package fed federates multiple primary serving processes behind
// one Service: a federation map partitions the placement keyspace
// across members (each a primary engine with its own WAL and
// follower set), a RemotePrimary adapts a member's wire endpoint to
// the serve.Placement interface, and a Router scatter-gathers
// queries across members exactly as an Engine scatters across its
// in-process shards.
//
// The federation map is a versioned document: any member or router
// holding a newer version pushes it opportunistically (OpFedMap
// exchange), so promotion of one member's follower propagates to
// every router without a coordinator. Higher version always wins;
// versions are bumped by whichever router first observes a change
// (a member answering with a higher replication epoch).
package fed

import (
	"encoding/json"
	"fmt"

	"pidcan/internal/serve"
)

// Member is one federation member: a primary process (with optional
// promotable-follower fallback addresses) owning a keyspace slice.
type Member struct {
	// Index is the member's position in Map.Members — stable across
	// map versions so ids stay routable when slices move.
	Index int `json:"index"`
	// Addrs lists the member's wire addresses, primary first; later
	// entries are followers a router may rotate to after fail-over.
	Addrs []string `json:"addrs"`
	// Epoch is the member's last observed replication epoch. A
	// member answering with a higher epoch has failed over; routers
	// bump the map version when they record it.
	Epoch uint64 `json:"epoch"`
	// [Lo, Hi) is the member's slice of the 64-bit placement
	// keyspace. Hi == 0 means wrap: the slice extends to 2^64.
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// Map is the federation map: a versioned partition of the placement
// keyspace across members. Routers place joins by hashing a
// sequence number into the keyspace and asking the owning member.
type Map struct {
	Version uint64   `json:"version"`
	Members []Member `json:"members"`
}

// EvenSplit builds a version-1 map dividing the keyspace evenly:
// member i owns [i*stride, (i+1)*stride), the last member wrapping
// to 2^64.
func EvenSplit(addrs [][]string) Map {
	n := uint64(len(addrs))
	if n == 0 {
		return Map{Version: 1}
	}
	stride := ^uint64(0) / n
	m := Map{Version: 1, Members: make([]Member, len(addrs))}
	for i := range addrs {
		m.Members[i] = Member{
			Index: i,
			Addrs: append([]string(nil), addrs[i]...),
			Lo:    uint64(i) * stride,
			Hi:    uint64(i+1) * stride,
		}
	}
	m.Members[len(addrs)-1].Hi = 0 // wrap
	return m
}

// Owner returns the index of the member owning key, or -1 on an
// empty map.
func (m *Map) Owner(key uint64) int {
	for i := range m.Members {
		mb := &m.Members[i]
		if key >= mb.Lo && (mb.Hi == 0 || key < mb.Hi) {
			return i
		}
	}
	if len(m.Members) > 0 {
		return len(m.Members) - 1 // out-of-slice keys land on the wrap member
	}
	return -1
}

// Encode serializes the map for an OpFedMap exchange.
func (m *Map) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil { // unreachable: Map has no unmarshalable fields
		panic(err)
	}
	return b
}

// DecodeMap parses an OpFedMap blob.
func DecodeMap(blob []byte) (Map, error) {
	var m Map
	if len(blob) == 0 {
		return m, fmt.Errorf("fed: empty map blob")
	}
	if err := json.Unmarshal(blob, &m); err != nil {
		return m, fmt.Errorf("fed: decode map: %w", err)
	}
	return m, nil
}

// Merge folds other into m, keeping whichever version is higher.
// Reports whether m changed.
func (m *Map) Merge(other Map) bool {
	if other.Version <= m.Version {
		return false
	}
	*m = other
	return true
}

// Federation ids tag the owning member into bits 48..63 of a
// serve.GlobalID (member+1, so tag 0 still means "not federated").
// This caps a federation at 65535 members and each member at 2^16
// shards — both comfortably above any deployment this codebase
// targets — and keeps member-local ids bit-identical to what the
// member's own engine issued.
const (
	fedTagShift = 48
	fedTagMask  = uint64(0xFFFF) << fedTagShift
)

// ID tags a member-local id with its owning member.
func ID(member int, local serve.GlobalID) serve.GlobalID {
	return serve.GlobalID(uint64(member+1)<<fedTagShift | uint64(local)&^fedTagMask)
}

// SplitID untags a federation id. member is -1 when id carries no
// federation tag.
func SplitID(id serve.GlobalID) (member int, local serve.GlobalID) {
	tag := uint64(id) & fedTagMask >> fedTagShift
	return int(tag) - 1, serve.GlobalID(uint64(id) &^ fedTagMask)
}

// splitmix64 spreads a join sequence number over the keyspace so
// EvenSplit slices receive joins in proportion to their width.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
