package fed

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/serve/wire"
)

// muxConn is one pipelined wire connection shared by every concurrent
// caller of a RemotePrimary. Callers append their request frame under
// a short mutex and park on a per-call channel; a dedicated flusher
// goroutine batches everything concurrent callers enqueued into one
// write syscall per round; and a single reader goroutine walks the
// strictly-ordered response stream, correlating each response back to
// its caller through a FIFO. This is exactly the wire.Client's one
// sanctioned concurrency split — one enqueuer (serialized by mu), one
// reader — so concurrent router scatter legs ride a shared connection
// instead of paying one synchronous RTT each.
//
// A transport error poisons the whole connection: the sticky error
// fails every in-flight and subsequent call fast (responses on a
// desynced stream can no longer be trusted), and the owning pool
// replaces the conn on its next checkout. Server-side rejections are
// NOT transport errors — they complete their call normally and the
// connection keeps serving.
type muxConn struct {
	c    *wire.Client
	addr string

	mu        sync.Mutex
	unflushed int   // requests enqueued since the last Flush
	err       error // sticky poison; set once, never cleared

	// kick wakes the flusher goroutine (cap 1: wake-ups coalesce).
	// The flusher yields one scheduler round before flushing, so on a
	// saturated machine every runnable submitter gets to append its
	// frame first and the whole train leaves in one write syscall —
	// the batching that makes pipelining pay on busy cores, where a
	// flush-on-enqueue strategy degenerates to one syscall per frame.
	kick chan struct{}

	// pending is the in-flight FIFO: entry order matches frame order
	// on the wire (both happen under mu), which is the whole
	// correlation scheme — the protocol answers strictly in request
	// order, and reqID equality is verified per response.
	pending chan muxCall

	dead     atomic.Bool  // mirrors err != nil for lock-free checks
	inflight atomic.Int64 // submitted minus completed (depth gauge)

	// serial selects the unpipelined fallback transport: one call
	// owns the connection end-to-end (enqueue, flush, read) under
	// serialMu — the pre-pipelining behavior, kept as a benchmark
	// baseline and escape hatch.
	serial   bool
	serialMu sync.Mutex

	closeOnce sync.Once
}

// muxCall is one in-flight request: the reader runs on against the
// decoded response (still aliasing reused client buffers — on must
// copy anything it keeps) and completes done.
type muxCall struct {
	reqID uint32
	on    func(*wire.Response) error
	done  chan error
}

// muxPendingCap bounds the in-flight FIFO. A full FIFO does not drop
// or fail calls: the submitter flushes (so the reader can drain) and
// then blocks for a slot, still in order.
const muxPendingCap = 1024

// donePool recycles the per-call completion channels: a call's
// channel is empty again after its receive, so it is safe to hand to
// the next call instead of allocating one per request.
var donePool = sync.Pool{New: func() any { return make(chan error, 1) }}

func newMuxConn(c *wire.Client, addr string, serial bool) *muxConn {
	// The mux accounts for its own in-flight calls; the client's
	// close-time drain only needs to cover a response mid-read.
	c.DrainTimeout = 10 * time.Millisecond
	m := &muxConn{
		c: c, addr: addr, serial: serial,
		pending: make(chan muxCall, muxPendingCap),
		kick:    make(chan struct{}, 1),
	}
	if !serial {
		go m.readLoop()
		go m.flushLoop()
	}
	return m
}

// submit runs one request over the shared connection: enqueue the
// frame (stamped with writeEpoch) under mu, register the call in the
// FIFO, kick the flusher, and wait for the reader to deliver the
// response to on. The returned error is the transport error that
// poisoned the conn, or whatever on returned.
func (m *muxConn) submit(writeEpoch uint64, enq func(*wire.Client) uint32, on func(*wire.Response) error) error {
	if m.serial {
		return m.submitSerial(writeEpoch, enq, on)
	}
	done, err := m.start(writeEpoch, enq, on)
	if err != nil {
		return err
	}
	err = <-done
	donePool.Put(done)
	return err
}

// start is submit's non-blocking half: enqueue, register, kick the
// flusher, and return the call's completion channel — the reader
// sends its outcome exactly once. Callers that receive from it must
// return the channel to donePool; callers that abandon the wait must
// NOT (the reader's late send still lands in the buffer). Not valid
// in serial mode.
func (m *muxConn) start(writeEpoch uint64, enq func(*wire.Client) uint32, on func(*wire.Response) error) (chan error, error) {
	done := donePool.Get().(chan error)
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		donePool.Put(done)
		return nil, err
	}
	m.c.WriteEpoch = writeEpoch
	id := enq(m.c)
	m.unflushed++
	call := muxCall{reqID: id, on: on, done: done}
	select {
	case m.pending <- call:
	default:
		// FIFO full. Flush first — our frame included — so the reader
		// can drain responses and free a slot, then block for it. The
		// push stays under mu: FIFO order must keep matching frame
		// order on the wire.
		m.flushLocked()
		m.pending <- call
	}
	m.inflight.Add(1)
	m.mu.Unlock()
	select {
	case m.kick <- struct{}{}:
	default: // a wake-up is already pending; it covers this frame too
	}
	return done, nil
}

// flushLoop is the dedicated flusher: woken by the first enqueue of a
// train, it yields one scheduler round — letting every runnable
// submitter append its frame — then flushes the whole batch in one
// write syscall, repeating while more frames keep arriving. Exits
// once the conn is poisoned (Close and fail both kick it awake).
func (m *muxConn) flushLoop() {
	for range m.kick {
		runtime.Gosched()
		m.mu.Lock()
		for m.err == nil && m.unflushed > 0 {
			m.unflushed = 0
			if err := m.c.Flush(); err != nil {
				m.failLocked(err)
			}
		}
		dead := m.err != nil
		m.mu.Unlock()
		if dead {
			return
		}
	}
}

func (m *muxConn) flushLocked() {
	if m.err != nil || m.unflushed == 0 {
		return
	}
	m.unflushed = 0
	if err := m.c.Flush(); err != nil {
		m.failLocked(err)
	}
}

// readLoop is the single reader: one FIFO entry, one ReadResponse,
// in lockstep. Once the conn is poisoned it keeps consuming the FIFO
// — failing calls fast without touching the socket — so submitters
// blocked on a full FIFO always make progress.
func (m *muxConn) readLoop() {
	for call := range m.pending {
		var err error
		if m.dead.Load() {
			m.mu.Lock()
			err = m.err
			m.mu.Unlock()
		} else {
			var r *wire.Response
			r, err = m.c.ReadResponse()
			if err != nil {
				m.fail(err)
			} else if r.ReqID != call.reqID {
				err = fmt.Errorf("wire: pipelined response id %d for request %d (stream desync)", r.ReqID, call.reqID)
				m.fail(err)
			} else {
				err = call.on(r)
			}
		}
		call.done <- err
		m.inflight.Add(-1)
	}
}

// submitSerial is the unpipelined transport: exclusive ownership of
// the connection for the whole enqueue-flush-read exchange.
func (m *muxConn) submitSerial(writeEpoch uint64, enq func(*wire.Client) uint32, on func(*wire.Response) error) error {
	m.serialMu.Lock()
	defer m.serialMu.Unlock()
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return err
	}
	m.mu.Unlock()
	m.c.WriteEpoch = writeEpoch
	reqID := enq(m.c)
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	if err := m.c.Flush(); err != nil {
		m.fail(err)
		return err
	}
	r, err := m.c.ReadResponse()
	if err != nil {
		m.fail(err)
		return err
	}
	if r.ReqID != reqID {
		err = fmt.Errorf("wire: response id %d for request %d", r.ReqID, reqID)
		m.fail(err)
		return err
	}
	return on(r)
}

func (m *muxConn) fail(err error) {
	m.mu.Lock()
	m.failLocked(err)
	m.mu.Unlock()
}

func (m *muxConn) failLocked(err error) {
	if m.err == nil {
		m.err = err
		m.dead.Store(true)
		// Closing the client unblocks a reader mid-ReadResponse; the
		// kick lets an idle-parked flusher observe the poison and exit.
		m.c.Close()
		select {
		case m.kick <- struct{}{}:
		default:
		}
	}
}

// Close poisons the conn and closes the FIFO. Safe against concurrent
// submits: the sticky error is set under mu before the channel
// closes, so no submitter can push afterwards, and the reader drains
// what remains (failing each call fast) before exiting.
func (m *muxConn) Close() {
	m.closeOnce.Do(func() {
		m.fail(wire.ErrClosed)
		close(m.pending)
	})
}
