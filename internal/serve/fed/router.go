package fed

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/serve/wire"
	"pidcan/internal/vector"
)

// Config parameterizes a Router.
type Config struct {
	// Members lists each federation member's wire addresses, primary
	// first; later entries are promotable followers the router
	// rotates to after fail-over. Ignored when Map is set.
	Members [][]string

	// Map, when non-nil, is the starting federation map (addresses
	// and keyspace slices) instead of an EvenSplit over Members.
	Map *Map

	// CMax is the engines' capacity vector. When nil, the router
	// discovers it from the first member that answers a stats call.
	CMax vector.Vec

	// ScatterTimeout bounds a whole cross-member gather (default
	// 2s — remote legs ride real networks, not channel hops).
	ScatterTimeout time.Duration

	// ForwardGrace bounds how long a migrated-away id stays routable
	// after its last repoint (default 1m).
	ForwardGrace time.Duration

	// PoolSize is the number of shared pipelined wire connections
	// kept per member (default 1 — one connection concentrates every
	// concurrent leg into the same flush train). Raising it only
	// helps once a member's single reader goroutine saturates a core.
	PoolSize int

	// Unpipelined reverts members to the synchronous
	// one-call-owns-the-connection transport (the pre-pipelining
	// baseline, kept for benchmarking; PoolSize then caps per-member
	// concurrency).
	Unpipelined bool

	// SummaryTTL bounds how old a member's availability summary may
	// be and still prune that member's scatter leg (default 1s).
	// Stale, missing or write-dirtied summaries force the full
	// fan-out for that member.
	SummaryTTL time.Duration

	// SummaryRefresh is the period of the background summary/map
	// exchange with every member (default 250ms; < 0 disables the
	// loop — tests drive RefreshSummaries directly).
	SummaryRefresh time.Duration

	// DisablePruning turns demand-region pruning off: every query
	// fans out to every member regardless of summaries.
	DisablePruning bool

	// AfterTake, when non-nil, runs between a migration's take and
	// its destination re-join — a crash-injection point for tests.
	AfterTake func()
}

// Stats is the router's /stats (and wire OpStats) document.
type Stats struct {
	CMax         vector.Vec    `json:"cmax"`
	Map          Map           `json:"map"`
	Members      []MemberStats `json:"members"`
	Queries      uint64        `json:"queries"`
	Updates      uint64        `json:"updates"`
	Joins        uint64        `json:"joins"`
	Leaves       uint64        `json:"leaves"`
	Migrations   uint64        `json:"migrations"`
	Errors       uint64        `json:"errors"`
	ForwardedIDs int           `json:"forwarded_ids"`
	// LegsSent counts scatter legs actually dispatched by queries;
	// LegsPruned counts legs skipped because a member's availability
	// summary proved it could not satisfy the demand. Their sum is
	// what an unpruned router would have sent.
	LegsSent   uint64 `json:"fed_legs_sent"`
	LegsPruned uint64 `json:"fed_legs_pruned"`
	// PipelineDepth is the mean in-flight request count observed on
	// the shared member connections at submit time — >1 means
	// concurrent legs are batching onto shared flushes.
	PipelineDepth float64 `json:"fed_pipeline_depth"`
}

// MemberStats describes one member in Stats.
type MemberStats struct {
	Index int    `json:"index"`
	Addr  string `json:"addr"` // address currently in use (rotates on fail-over)
	Epoch uint64 `json:"epoch"`
	// SummaryPop is the record count behind the member's last
	// adopted availability summary (-1: none held), SummaryAgeMS its
	// age — the observability behind "why wasn't this leg pruned".
	SummaryPop   int   `json:"summary_pop"`
	SummaryAgeMS int64 `json:"summary_age_ms"`
}

// fedRetries bounds migration-chase retries on rejected writes,
// matching the engine's in-process migrateRetries.
const fedRetries = 8

// Router federates primary processes behind the serve.Service
// surface: queries scatter-gather across the members through the
// same ScatterQuery loop an Engine runs across its shards, writes
// chase nodes through a forwarding table exactly as in-process
// migrations do, and the versioned federation map propagates
// promotions (a member answering with a higher replication epoch)
// to every member without a coordinator.
type Router struct {
	mu sync.Mutex // guards m (the federation map)
	m  Map

	mapVer  atomic.Uint64 // mirror of m.Version for lock-free stamping
	members []*RemotePrimary
	places  []serve.Placement
	fwd     *serve.ForwardTable
	cmax    vector.Vec

	scatterTimeout time.Duration
	afterTake      func()
	unpipelined    bool

	// Demand-region pruning state: sums holds each member's last
	// adopted availability summary; wstart/wdone count writes routed
	// to each member (bumped at call start and completion) — the
	// dirty-tracking that invalidates a summary the moment a write
	// might have outrun it.
	summaryTTL time.Duration
	noPrune    bool
	sums       []atomic.Pointer[memberSummary]
	wstart     []atomic.Uint64
	wdone      []atomic.Uint64

	stop       chan struct{}
	closed     atomic.Bool
	pushing    atomic.Bool
	pulling    atomic.Bool
	refreshing atomic.Bool

	joinSeq atomic.Uint64
	rrQuery atomic.Uint64

	queries    atomic.Uint64
	updates    atomic.Uint64
	joins      atomic.Uint64
	leaves     atomic.Uint64
	migrations atomic.Uint64
	errors     atomic.Uint64
	legsSent   atomic.Uint64
	legsPruned atomic.Uint64
}

// memberSummary is the router's adopted copy of one member's
// availability summary plus the local anchors that bound its
// validity: at (receipt time, aged against SummaryTTL) and wseq (the
// member's wstart counter when the exchange began — any later write
// to the member shifts the counter and dirties the summary until a
// post-write refresh).
type memberSummary struct {
	max  vector.Vec
	pop  uint32
	seq  uint64
	at   time.Time
	wseq uint64
}

var _ serve.Service = (*Router)(nil)

// New connects a router to its federation members, discovers the
// capacity vector if not configured, and offers the initial map to
// every member (best-effort; members holding a newer map answer
// with it and the router adopts it).
func New(cfg Config) (*Router, error) {
	m := EvenSplit(cfg.Members)
	if cfg.Map != nil {
		m = *cfg.Map
	}
	if len(m.Members) == 0 {
		return nil, fmt.Errorf("fed: no members configured")
	}
	r := &Router{
		m:              m,
		cmax:           cfg.CMax,
		scatterTimeout: cfg.ScatterTimeout,
		afterTake:      cfg.AfterTake,
		unpipelined:    cfg.Unpipelined,
		stop:           make(chan struct{}),
	}
	if r.scatterTimeout <= 0 {
		r.scatterTimeout = 2 * time.Second
	}
	grace := cfg.ForwardGrace
	if grace <= 0 {
		grace = time.Minute
	}
	r.summaryTTL = cfg.SummaryTTL
	if r.summaryTTL <= 0 {
		r.summaryTTL = time.Second
	}
	r.noPrune = cfg.DisablePruning
	r.sums = make([]atomic.Pointer[memberSummary], len(m.Members))
	r.wstart = make([]atomic.Uint64, len(m.Members))
	r.wdone = make([]atomic.Uint64, len(m.Members))
	r.fwd = serve.NewForwardTable(grace)
	r.mapVer.Store(m.Version)
	for i := range m.Members {
		rp := NewRemotePrimary(i, m.Members[i].Addrs, r.fwd)
		if cfg.PoolSize > 0 {
			rp.poolSize = cfg.PoolSize
		}
		rp.unpipelined = cfg.Unpipelined
		rp.mapVer = r.mapVer.Load
		rp.writeEpoch = r.epochOf
		rp.onEpoch = r.observeEpoch
		rp.onStale = r.observeStale
		rp.writeBegin = r.noteWriteStart
		rp.writeEnd = r.noteWriteEnd
		r.members = append(r.members, rp)
		r.places = append(r.places, rp)
	}
	if r.cmax == nil {
		if err := r.discoverCMax(); err != nil {
			r.Close()
			return nil, err
		}
	}
	r.pushMap()
	refresh := cfg.SummaryRefresh
	if refresh == 0 {
		refresh = 250 * time.Millisecond
	}
	if refresh > 0 && !r.noPrune {
		go r.summaryLoop(refresh)
	}
	return r, nil
}

func (r *Router) noteWriteStart(member int) {
	if member < len(r.wstart) {
		r.wstart[member].Add(1)
	}
}

func (r *Router) noteWriteEnd(member int) {
	if member < len(r.wdone) {
		r.wdone[member].Add(1)
	}
}

// discoverCMax reads the capacity vector from the first member whose
// stats call answers.
func (r *Router) discoverCMax() error {
	var lastErr error
	for _, rp := range r.members {
		var st struct {
			CMax []float64 `json:"cmax"`
		}
		err := rp.do(
			func(c *wire.Client) uint32 { return c.EnqueueStats() },
			func(resp *wire.Response) error { return json.Unmarshal(resp.Stats, &st) },
		)
		if err != nil {
			lastErr = err
			continue
		}
		if len(st.CMax) == 0 {
			lastErr = fmt.Errorf("fed: member %d reports no capacity vector", rp.member)
			continue
		}
		r.cmax = vector.Vec(st.CMax)
		return nil
	}
	return fmt.Errorf("fed: capacity discovery failed: %w", lastErr)
}

// Close drops every member's connection pool. In-flight operations
// unwind with serve.ErrClosed.
func (r *Router) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return serve.ErrClosed
	}
	close(r.stop)
	for _, rp := range r.members {
		rp.Close()
	}
	return nil
}

// CMax returns the federation's capacity vector.
func (r *Router) CMax() vector.Vec { return r.cmax }

// Map returns a copy of the current federation map.
func (r *Router) Map() Map {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.m
	m.Members = append([]Member(nil), r.m.Members...)
	return m
}

// epochOf returns the member's recorded replication epoch (stamped
// into its write frames, fencing deposed primaries).
func (r *Router) epochOf(member int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if member < len(r.m.Members) {
		return r.m.Members[member].Epoch
	}
	return 0
}

// observeEpoch records a member answering with a replication epoch
// above the map's: evidence of a promotion. The map version bumps
// and the new map pushes to every member, so other routers pick the
// change up on their next stale-flagged query.
func (r *Router) observeEpoch(member int, epoch uint64) {
	r.mu.Lock()
	if member >= len(r.m.Members) || epoch <= r.m.Members[member].Epoch {
		r.mu.Unlock()
		return
	}
	r.m.Members[member].Epoch = epoch
	r.m.Version++
	r.mapVer.Store(r.m.Version)
	r.mu.Unlock()
	r.pushMap()
}

// observeStale reacts to a member flagging our map version as
// behind: pull its map and adopt it if genuinely newer.
func (r *Router) observeStale(member int) {
	if r.closed.Load() || !r.pulling.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer r.pulling.Store(false)
		ver, blob, _, err := r.members[member].MapExchange(0, nil)
		if err != nil || ver <= r.mapVer.Load() {
			return
		}
		if m, err := DecodeMap(blob); err == nil {
			r.adoptMap(m)
		}
	}()
}

// adoptMap merges a map learned from a member. Member identity is
// positional: a map with a different member count is ignored (the
// router's address lists are configuration, not gossip).
func (r *Router) adoptMap(m Map) {
	r.mu.Lock()
	if len(m.Members) != len(r.m.Members) || !r.m.Merge(m) {
		r.mu.Unlock()
		return
	}
	r.mapVer.Store(r.m.Version)
	r.mu.Unlock()
	r.pushMap()
}

// pushMap offers the current map to every member asynchronously
// (coalesced: one push in flight at a time, re-armed by the next
// version bump). Members holding a newer map answer with it.
func (r *Router) pushMap() {
	if r.closed.Load() || !r.pushing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer r.pushing.Store(false)
		r.mu.Lock()
		ver, blob := r.m.Version, r.m.Encode()
		r.mu.Unlock()
		for _, rp := range r.members {
			gotVer, gotBlob, _, err := rp.MapExchange(ver, blob)
			if err != nil || gotVer <= ver {
				continue
			}
			if m, derr := DecodeMap(gotBlob); derr == nil {
				r.adoptMap(m)
			}
		}
	}()
}

// summaryLoop periodically exchanges the map and availability
// summaries with every member until the router closes.
func (r *Router) summaryLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.RefreshSummaries()
		}
	}
}

// RefreshSummaries runs one synchronous map/summary exchange with
// every member: the current map is offered (members holding a newer
// one answer with it and the router adopts it), and each member's
// availability summary is adopted when no router-routed write to
// that member was in flight around the exchange — a write racing the
// summary could land after the member computed it, and a summary
// that might under-state the member must never prune it. Adopted
// summaries stay valid until SummaryTTL ages them out or a later
// write to the member dirties them. Concurrent calls coalesce.
func (r *Router) RefreshSummaries() {
	if r.closed.Load() || !r.refreshing.CompareAndSwap(false, true) {
		return
	}
	defer r.refreshing.Store(false)
	r.mu.Lock()
	ver, blob := r.m.Version, r.m.Encode()
	r.mu.Unlock()
	for i, rp := range r.members {
		if r.closed.Load() {
			return
		}
		w0 := r.wstart[i].Load()
		clean := w0 == r.wdone[i].Load()
		gotVer, gotBlob, sum, err := rp.MapExchange(ver, blob)
		if err != nil {
			continue
		}
		if gotVer > ver {
			if m, derr := DecodeMap(gotBlob); derr == nil {
				r.adoptMap(m)
			}
		}
		if sum == nil || !clean {
			continue
		}
		if old := r.sums[i].Load(); old != nil && sum.Seq < old.seq {
			continue // never regress to an older member state
		}
		r.sums[i].Store(&memberSummary{
			max:  vector.Vec(sum.Max),
			pop:  sum.Pop,
			seq:  sum.Seq,
			at:   time.Now(),
			wseq: w0,
		})
	}
}

// summaryOf returns member i's currently valid summary, or nil when
// pruning must fall back to the full fan-out for it: none held, aged
// past SummaryTTL, or router-routed writes landed on the member
// since it was taken.
func (r *Router) summaryOf(i int, now time.Time) *memberSummary {
	s := r.sums[i].Load()
	if s == nil || now.Sub(s.at) > r.summaryTTL || r.wstart[i].Load() != s.wseq {
		return nil
	}
	return s
}

// canSatisfy reports whether a member whose summary is s could hold
// a record dominating demand: it has records at all and its
// per-dimension maximum dominates demand in every dimension. The max
// vector is an upper bound over the member's records (expiry
// ignored), so !canSatisfy proves the member contributes no
// candidate for this demand — pruning its leg cannot change the
// merged candidate set.
func canSatisfy(s *memberSummary, demand vector.Vec) bool {
	if s.pop == 0 {
		return false
	}
	if len(s.max) != len(demand) {
		return true // dimension surprise: never prune on it
	}
	return s.max.Dominates(demand)
}

// scatterTargets prunes the scatter list down to the members whose
// summaries do not prove them unable to satisfy demand. Members
// without a valid summary are always kept — stale falls back to full
// fan-out, never to a wrong answer.
func (r *Router) scatterTargets(demand vector.Vec) ([]serve.Placement, int) {
	now := time.Now()
	var keep []serve.Placement
	pruned := 0
	for i, p := range r.places {
		s := r.summaryOf(i, now)
		if s != nil && !canSatisfy(s, demand) {
			if keep == nil {
				keep = append(make([]serve.Placement, 0, len(r.places)), r.places[:i]...)
			}
			pruned++
			continue
		}
		if keep != nil {
			keep = append(keep, p)
		}
	}
	if keep == nil {
		return r.places, 0
	}
	return keep, pruned
}

func (r *Router) checkDemand(demand vector.Vec) error {
	if demand.Dim() != r.cmax.Dim() || !demand.IsFinite() || !demand.IsNonNegative() {
		return fmt.Errorf("%w: %v (want %d non-negative finite dims)",
			serve.ErrBadDemand, demand, r.cmax.Dim())
	}
	return nil
}

// Query answers one best-fit query across the federation: consistent
// ScopeOne round-robins a single member's protocol, everything else
// scatter-gathers every member through the same loop an Engine runs
// across its shards — partial merges when a member is down, one
// whole-gather deadline.
func (r *Router) Query(req serve.QueryRequest) (serve.QueryResponse, error) {
	if r.closed.Load() {
		return serve.QueryResponse{}, serve.ErrClosed
	}
	if err := r.checkDemand(req.Demand); err != nil {
		r.errors.Add(1)
		return serve.QueryResponse{}, err
	}
	switch req.Scope {
	case "", serve.ScopeAll, serve.ScopeOne:
	default:
		r.errors.Add(1)
		return serve.QueryResponse{}, fmt.Errorf("%w: %q (want %q or %q)",
			serve.ErrBadScope, req.Scope, serve.ScopeAll, serve.ScopeOne)
	}
	if req.K <= 0 {
		req.K = 1
	}
	r.queries.Add(1)
	if req.Consistent && req.Scope == serve.ScopeOne {
		p := r.places[(r.rrQuery.Add(1)-1)%uint64(len(r.places))]
		leg, err := p.QueryLeg(req, nil)
		if err != nil {
			r.errors.Add(1)
			return serve.QueryResponse{}, err
		}
		return serve.QueryResponse{
			Candidates:    r.fwd.Externalize(serve.RankCandidates(leg.Cands, req.K)),
			Hops:          leg.Hops,
			HopsMax:       leg.HopsMax,
			ShardsQueried: leg.Queried,
		}, nil
	}
	// Demand-region pruning: skip legs whose summary proves the
	// member cannot satisfy the demand. Consistent queries never
	// prune — they must observe writes still queued behind the
	// members' published snapshots, which summaries cannot bound.
	places := r.places
	pruned := 0
	if !r.noPrune && !req.Consistent {
		places, pruned = r.scatterTargets(req.Demand)
	}
	r.legsSent.Add(uint64(len(places)))
	r.legsPruned.Add(uint64(pruned))
	if len(places) == 0 {
		// Every member provably empty-handed: an honest miss without
		// a single network hop.
		return serve.QueryResponse{ShardsQueried: 0}, nil
	}
	resp, err := r.fedScatter(places, req)
	if err != nil {
		r.errors.Add(1)
		return serve.QueryResponse{}, err
	}
	resp.Candidates = r.fwd.Externalize(resp.Candidates)
	return resp, nil
}

// fedScatter runs one scatter-gather across places entirely on the
// calling goroutine: every leg is enqueued up front through the
// members' shared pipelined connections (QueryLegAsync) — one flush
// train often carries all of them — and then gathered against one
// whole-gather deadline. Compared to serve.ScatterQuery this spends
// zero goroutines per query, which is most of a busy router's
// per-query cost. Error and timeout semantics match ScatterQuery:
// partial gathers merge, the query fails only when no leg succeeds,
// and legs still outstanding at the deadline are abandoned (their
// completion sends land in the calls' buffered channels).
func (r *Router) fedScatter(places []serve.Placement, req serve.QueryRequest) (serve.QueryResponse, error) {
	if r.unpipelined {
		return serve.ScatterQuery(places, req, r.scatterTimeout)
	}
	type legCall struct {
		done    chan error
		collect func(error) (serve.PlacementLeg, error)
	}
	pend := make([]legCall, 0, len(places))
	for _, p := range places {
		rp, ok := p.(*RemotePrimary)
		if !ok {
			// A foreign placement in the list: fall back to the
			// goroutine scatter, which needs nothing beyond QueryLeg.
			return serve.ScatterQuery(places, req, r.scatterTimeout)
		}
		done, collect := rp.QueryLegAsync(req)
		pend = append(pend, legCall{done: done, collect: collect})
	}
	var (
		deadline *time.Timer // created only if a leg makes us block
		cands    []serve.Candidate
		resp     serve.QueryResponse
		firstErr error
		timedOut = false
	)
	for _, lc := range pend {
		var lerr error
		if lc.done != nil {
			select {
			case lerr = <-lc.done:
				// Fast path: the pipelined response already landed —
				// no select against the timer, which under load is
				// where most legs complete.
				donePool.Put(lc.done)
			default:
				if timedOut {
					// Past the deadline: abandon the leg (never return
					// an abandoned channel to the pool — its send is
					// still owed).
					continue
				}
				if deadline == nil {
					deadline = time.NewTimer(r.scatterTimeout)
					defer deadline.Stop()
				}
				select {
				case lerr = <-lc.done:
					donePool.Put(lc.done)
				case <-deadline.C:
					timedOut = true
					if firstErr == nil {
						firstErr = fmt.Errorf("%w: after %v (%d of %d legs gathered)",
							serve.ErrScatterTimeout, r.scatterTimeout, resp.ShardsQueried, len(places))
					}
					continue
				}
			}
		}
		leg, err := lc.collect(lerr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		resp.ShardsQueried += leg.Queried
		resp.Hops += leg.Hops
		if leg.HopsMax > resp.HopsMax {
			resp.HopsMax = leg.HopsMax
		}
		cands = append(cands, leg.Cands...)
	}
	if resp.ShardsQueried == 0 {
		return serve.QueryResponse{}, firstErr
	}
	resp.Candidates = serve.RankCandidates(cands, req.K)
	return resp, nil
}

// resolveApply resolves node through the forwarding table, applies
// do against the owning member, and chases concurrent cross-process
// migrations: a rejected write whose id moved mid-flight retries
// against the node's new home, up to fedRetries times.
func (r *Router) resolveApply(node serve.GlobalID, do func(p serve.Placement, phys serve.GlobalID) error) error {
	if r.closed.Load() {
		return serve.ErrClosed
	}
	for attempt := 0; ; attempt++ {
		phys := r.fwd.Resolve(node)
		mi, _ := SplitID(phys)
		if mi < 0 || mi >= len(r.places) {
			r.errors.Add(1)
			return fmt.Errorf("%w: member %d (node %v)", serve.ErrNoShard, mi, node)
		}
		err := do(r.places[mi], phys)
		if err == nil {
			return nil
		}
		if errors.Is(err, serve.ErrClosed) {
			return err
		}
		if attempt < fedRetries && r.fwd.WaitSettled(node, phys, r.stop) {
			continue
		}
		r.errors.Add(1)
		return fmt.Errorf("fed: node %v: %w", node, err)
	}
}

// Update republishes a node's availability, by any id it was ever
// known by.
func (r *Router) Update(node serve.GlobalID, avail vector.Vec, announce bool) error {
	err := r.resolveApply(node, func(p serve.Placement, phys serve.GlobalID) error {
		return p.Update(phys, avail, announce)
	})
	if err == nil {
		r.updates.Add(1)
	}
	return err
}

// Join places a node on the member owning a hash of the join
// sequence number, so EvenSplit slices receive joins in proportion
// to their keyspace width.
func (r *Router) Join(avail vector.Vec) (serve.GlobalID, error) {
	r.mu.Lock()
	owner := r.m.Owner(splitmix64(r.joinSeq.Add(1)))
	r.mu.Unlock()
	return r.JoinOn(owner, avail)
}

// JoinOn places a node on one member by index.
func (r *Router) JoinOn(member int, avail vector.Vec) (serve.GlobalID, error) {
	if r.closed.Load() {
		return 0, serve.ErrClosed
	}
	if member < 0 || member >= len(r.places) {
		r.errors.Add(1)
		return 0, fmt.Errorf("%w: member %d (join target)", serve.ErrNoShard, member)
	}
	id, err := r.places[member].Join(avail)
	if err != nil {
		r.errors.Add(1)
		return 0, err
	}
	r.joins.Add(1)
	return id, nil
}

// Leave removes a node permanently, by any id it was ever known by.
func (r *Router) Leave(node serve.GlobalID) error {
	err := r.resolveApply(node, func(p serve.Placement, phys serve.GlobalID) error {
		return p.Leave(phys)
	})
	if err == nil {
		r.leaves.Add(1)
	}
	return err
}

// Take removes a node for re-homing outside the federation. An error
// wrapping serve.ErrWAL means applied-but-not-durable on the owning
// member, with the availability still valid.
func (r *Router) Take(node serve.GlobalID) (vector.Vec, error) {
	if r.closed.Load() {
		return nil, serve.ErrClosed
	}
	phys, _, release, err := r.fwd.Begin(node, r.stop)
	if err != nil {
		r.errors.Add(1)
		return nil, err
	}
	defer release()
	mi, _ := SplitID(phys)
	if mi < 0 || mi >= len(r.places) {
		r.errors.Add(1)
		return nil, fmt.Errorf("%w: member %d (node %v)", serve.ErrNoShard, mi, node)
	}
	avail, err := r.places[mi].Take(phys, true)
	if err != nil && !errors.Is(err, serve.ErrWAL) {
		r.errors.Add(1)
		return nil, fmt.Errorf("fed: take %v: %w", node, err)
	}
	r.fwd.Forget(phys)
	r.leaves.Add(1)
	return avail, err
}

// Migrate moves a node to another member: take from its current
// home, re-join at the destination, repoint every id it was ever
// known by — the engine's in-process migration over the wire. A
// destination failure rolls the node back home; only when the
// source also refuses it is the node reported lost.
func (r *Router) Migrate(node serve.GlobalID, to int) error {
	if r.closed.Load() {
		return serve.ErrClosed
	}
	if to < 0 || to >= len(r.places) {
		r.errors.Add(1)
		return fmt.Errorf("%w: member %d (migration destination)", serve.ErrNoShard, to)
	}
	phys, x, release, err := r.fwd.Begin(node, r.stop)
	if err != nil {
		r.errors.Add(1)
		return err
	}
	defer release()
	mi, _ := SplitID(phys)
	if mi < 0 || mi >= len(r.places) {
		r.errors.Add(1)
		return fmt.Errorf("%w: member %d (node %v)", serve.ErrNoShard, mi, node)
	}
	if mi == to {
		return nil
	}
	src, dst := r.places[mi], r.places[to]
	avail, err := src.Take(phys, true)
	var walDegraded error
	if errors.Is(err, serve.ErrWAL) {
		// Applied, availability in hand — only the member's log
		// record is missing. Completing the move is the honest
		// outcome; the degraded durability is reported below.
		walDegraded, err = err, nil
	}
	if err != nil {
		r.errors.Add(1)
		return fmt.Errorf("fed: migrate %v: %w", node, err)
	}
	if r.afterTake != nil {
		r.afterTake()
	}
	if _, err := dst.CompleteMigration(avail, x, phys); err != nil {
		// Roll the node back home under a fresh id (its old one is
		// gone — the take applied).
		if _, berr := src.CompleteMigration(avail, x, phys); berr != nil && !errors.Is(berr, serve.ErrWAL) {
			r.fwd.Forget(phys)
			r.errors.Add(1)
			return fmt.Errorf("fed: migrate %v lost (destination: %v; rollback: %w)", node, err, berr)
		}
		r.errors.Add(1)
		return fmt.Errorf("fed: migrate %v to member %d: %w", node, to, err)
	}
	r.migrations.Add(1)
	if walDegraded != nil {
		return fmt.Errorf("fed: migrate %v to member %d completed: %w", node, to, walDegraded)
	}
	return nil
}

// Nodes lists every alive node across the federation by its stable
// external id: a zero-demand uncached scatter (zero demand is
// dominated by every availability, so every member returns its full
// population).
func (r *Router) Nodes() []serve.GlobalID {
	if r.closed.Load() {
		return nil
	}
	req := serve.QueryRequest{
		Demand:  make(vector.Vec, r.cmax.Dim()),
		K:       0xFFFF,
		NoCache: true,
	}
	resp, err := serve.ScatterQuery(r.places, req, r.scatterTimeout)
	if err != nil {
		r.errors.Add(1)
		return nil
	}
	ids := make([]serve.GlobalID, 0, len(resp.Candidates))
	for _, c := range resp.Candidates {
		ids = append(ids, c.Node)
	}
	r.fwd.ExternalizeIDs(ids)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dedup := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			dedup = append(dedup, id)
		}
	}
	return dedup
}

// Epoch is the router's fencing epoch: the federation map version.
func (r *Router) Epoch() uint64 { return r.mapVer.Load() }

// Fence is a no-op: the router holds no writable state to fence —
// map movement happens through the versioned exchange instead.
func (r *Router) Fence(epoch uint64) {}

// PrimaryAddr returns "": the router accepts writes itself.
func (r *Router) PrimaryAddr() string { return "" }

// StatsPayload assembles the router's stats document.
func (r *Router) StatsPayload() any {
	st := Stats{
		CMax:         r.cmax,
		Map:          r.Map(),
		Queries:      r.queries.Load(),
		Updates:      r.updates.Load(),
		Joins:        r.joins.Load(),
		Leaves:       r.leaves.Load(),
		Migrations:   r.migrations.Load(),
		Errors:       r.errors.Load(),
		ForwardedIDs: r.fwd.Count(),
		LegsSent:     r.legsSent.Load(),
		LegsPruned:   r.legsPruned.Load(),
	}
	var dsum, dn uint64
	now := time.Now()
	for i, rp := range r.members {
		s, n := rp.depthStats()
		dsum += s
		dn += n
		ms := MemberStats{
			Index:      i,
			Addr:       rp.Addr(),
			Epoch:      st.Map.Members[i].Epoch,
			SummaryPop: -1,
		}
		if sum := r.sums[i].Load(); sum != nil {
			ms.SummaryPop = int(sum.pop)
			ms.SummaryAgeMS = now.Sub(sum.at).Milliseconds()
		}
		st.Members = append(st.Members, ms)
	}
	if dn > 0 {
		st.PipelineDepth = float64(dsum) / float64(dn)
	}
	return st
}
