package fed_test

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/serve/fed"
	"pidcan/internal/vector"
)

// prunePair is the property-test harness: two routers over the SAME
// member processes — one pruning with manually-driven summaries, one
// with pruning disabled (the ground-truth full fan-out). Any demand
// answered differently by the two is a pruning soundness bug.
type prunePair struct {
	members []*member
	pruner  *fed.Router
	full    *fed.Router
}

func newPrunePair(t *testing.T, n int, ttl time.Duration) *prunePair {
	t.Helper()
	p := &prunePair{}
	addrs := make([][]string, n)
	for i := 0; i < n; i++ {
		m := startMember(t, testCfg(uint64(100+i)))
		p.members = append(p.members, m)
		addrs[i] = []string{m.addr}
	}
	p.pruner = newRouter(t, fed.Config{
		Members:        addrs,
		SummaryTTL:     ttl,
		SummaryRefresh: -1, // the test drives RefreshSummaries itself
	})
	p.full = newRouter(t, fed.Config{
		Members:        addrs,
		SummaryRefresh: -1,
		DisablePruning: true,
	})
	return p
}

// askBoth queries both routers with an uncached request and demands
// byte-identical responses: same candidates, same order, same
// availabilities and surpluses. Pruning only ever removes members
// provably unable to contribute a candidate, and the merge sort is a
// total order, so ANY divergence is a soundness violation.
func (p *prunePair) askBoth(t *testing.T, demand vector.Vec, k int) serve.QueryResponse {
	t.Helper()
	req := serve.QueryRequest{Demand: demand, K: k, NoCache: true}
	got, err := p.pruner.Query(req)
	if err != nil {
		t.Fatalf("pruning router: query %v: %v", demand, err)
	}
	want, err := p.full.Query(req)
	if err != nil {
		t.Fatalf("full-fanout router: query %v: %v", demand, err)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("demand %v: pruned scatter returned %d candidates, full fan-out %d\npruned: %+v\nfull:   %+v",
			demand, len(got.Candidates), len(want.Candidates), got.Candidates, want.Candidates)
	}
	for i := range got.Candidates {
		g, w := got.Candidates[i], want.Candidates[i]
		if g.Node != w.Node || g.Surplus != w.Surplus || !g.Avail.Equal(w.Avail) {
			t.Fatalf("demand %v: candidate %d diverged\npruned: %+v\nfull:   %+v", demand, i, g, w)
		}
	}
	return got
}

func (p *prunePair) prunerStats() fed.Stats { return p.pruner.StatsPayload().(fed.Stats) }

// TestPrunedScatterEquivalence is the pruning soundness property
// test: across randomized skewed populations and randomized demands,
// a pruned scatter answers byte-identically to the full fan-out —
// while actually pruning legs (the skew guarantees demands no
// low-capacity member can satisfy).
func TestPrunedScatterEquivalence(t *testing.T) {
	p := newPrunePair(t, 3, time.Hour)
	rng := rand.New(rand.NewPCG(42, 7))

	// Skewed populations: member 0 publishes high availabilities,
	// member 1 only low ones, member 2 mid-range — so demands above a
	// member's ceiling are provably unsatisfiable there.
	ceil := []float64{10, 3, 6}
	for mi, c := range ceil {
		for j := 0; j < 12; j++ {
			avail := vector.Of(rng.Float64()*c, rng.Float64()*c)
			if _, err := p.full.JoinOn(mi, avail); err != nil {
				t.Fatalf("join member %d: %v", mi, err)
			}
		}
	}
	p.pruner.RefreshSummaries()

	for trial := 0; trial < 300; trial++ {
		demand := vector.Of(rng.Float64()*11, rng.Float64()*11)
		p.askBoth(t, demand, 1+rng.IntN(8))
	}
	// Demands beyond every member's ceiling: every leg pruned, an
	// honest zero-candidate miss with zero network hops.
	p.askBoth(t, vector.Of(10.5, 10.5), 4)

	st := p.prunerStats()
	if st.LegsPruned == 0 {
		t.Fatalf("skewed populations produced no pruned legs: %+v", st)
	}
	if st.LegsSent == 0 {
		t.Fatalf("no legs sent: %+v", st)
	}
	t.Logf("legs sent %d, pruned %d", st.LegsSent, st.LegsPruned)
}

// TestPruneStaleSummaryFallsBack pins the staleness fallback: with a
// nanosecond TTL every summary is expired by query time, so nothing
// may be pruned and results still match the full fan-out.
func TestPruneStaleSummaryFallsBack(t *testing.T) {
	p := newPrunePair(t, 2, time.Nanosecond)
	rng := rand.New(rand.NewPCG(3, 9))
	for mi, c := range []float64{9, 2} {
		for j := 0; j < 6; j++ {
			if _, err := p.full.JoinOn(mi, vector.Of(rng.Float64()*c, rng.Float64()*c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	p.pruner.RefreshSummaries()
	time.Sleep(time.Millisecond) // comfortably past the 1ns TTL
	for trial := 0; trial < 50; trial++ {
		p.askBoth(t, vector.Of(rng.Float64()*11, rng.Float64()*11), 4)
	}
	if st := p.prunerStats(); st.LegsPruned != 0 {
		t.Fatalf("stale summaries still pruned %d legs", st.LegsPruned)
	}
}

// TestPruneWriteDirtiesSummary pins the write-invalidation path: a
// write routed to a member after its summary was adopted must dirty
// the summary, so a record the summary never saw is still found.
func TestPruneWriteDirtiesSummary(t *testing.T) {
	p := newPrunePair(t, 2, time.Hour)
	// Member 1 starts low-capacity; its summary proves it useless for
	// big demands.
	if _, err := p.pruner.JoinOn(0, vector.Of(4, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.pruner.JoinOn(1, vector.Of(2, 2)); err != nil {
		t.Fatal(err)
	}
	p.pruner.RefreshSummaries()
	if resp := p.askBoth(t, vector.Of(8, 8), 4); len(resp.Candidates) != 0 {
		t.Fatalf("unexpected candidates before the big join: %+v", resp.Candidates)
	}
	if st := p.prunerStats(); st.LegsPruned == 0 {
		t.Fatalf("expected pruning before the dirtying write: %+v", st)
	}
	// Now a big node joins member 1 THROUGH THE PRUNING ROUTER, with
	// no refresh afterwards. The stale summary says member 1 tops out
	// at (2,2) — but the write dirtied it, so the fan-out must reach
	// the member and find the node.
	id, err := p.pruner.JoinOn(1, vector.Of(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	resp := p.askBoth(t, vector.Of(8, 8), 4)
	if len(resp.Candidates) != 1 || resp.Candidates[0].Node != id {
		t.Fatalf("dirtied summary hid the new node: %+v", resp.Candidates)
	}
}

// TestMuxConcurrentScatterSurvivesMemberKill stresses the pipelined
// multiplexer: many goroutines scatter queries and writes while one
// member's listener is killed mid-flight. The mux must not deadlock
// or mis-correlate; after the kill, queries keep answering through
// partial merges from the surviving member.
func TestMuxConcurrentScatterSurvivesMemberKill(t *testing.T) {
	a := startMember(t, testCfg(1))
	b := startMember(t, testCfg(2))
	r := newRouter(t, fed.Config{
		Members:        [][]string{{a.addr}, {b.addr}},
		ScatterTimeout: 500 * time.Millisecond,
		SummaryRefresh: 10 * time.Millisecond,
	})
	keep, err := r.JoinOn(0, vector.Of(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.JoinOn(1, vector.Of(8, 8)); err != nil {
		t.Fatal(err)
	}

	const workers = 16
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch {
				case w%4 == 0 && i%8 == 7:
					// Sprinkle writes through the same mux. Errors
					// against the killed member are expected.
					id, err := r.JoinOn(w%2, vector.Of(rng.Float64()*5, rng.Float64()*5))
					if err == nil {
						r.Leave(id)
					}
				default:
					_, err := r.Query(serve.QueryRequest{
						Demand:  vector.Of(rng.Float64()*6, rng.Float64()*6),
						K:       4,
						NoCache: true,
					})
					if err != nil && !errors.Is(err, serve.ErrClosed) {
						select {
						case errc <- fmt.Errorf("worker %d query: %w", w, err):
						default:
						}
					}
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	b.srv.Close() // kill member 1 under concurrent scatter
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		// Whole-gather failures are a bug: a downed member costs its
		// leg (partial merge), never the query.
		t.Fatal(err)
	default:
	}

	// The survivor still answers; its node is still found.
	resp, err := r.Query(serve.QueryRequest{Demand: vector.Of(7, 7), K: 4, NoCache: true})
	if err != nil {
		t.Fatalf("post-kill query: %v", err)
	}
	found := false
	for _, c := range resp.Candidates {
		found = found || c.Node == keep
	}
	if !found {
		t.Fatalf("surviving member's node missing post-kill: %+v", resp.Candidates)
	}
}
