package serve

import (
	"fmt"
	"time"

	"pidcan/internal/vector"
)

// PlacementLeg is one placement's contribution to a scatter-gather
// consistent query: its candidates, already scored against the
// request demand and named in the caller's id namespace, plus the
// hop accounting the caller folds into the response. Queried counts
// the shards that actually answered inside the placement (1 for an
// in-process shard; a remote primary reports its own gather count).
type PlacementLeg struct {
	Cands   []Candidate
	Hops    int
	HopsMax int
	Queried int
}

// Placement abstracts "a set of nodes I can query, update, join,
// leave, and migrate against". The engine speaks this interface for
// every placement-directed operation, so an in-process shard
// (shardPlacement) and a whole remote primary process reached over
// the wire protocol (fed.RemotePrimary) are interchangeable: shard
// count and primary count become the same axis, and the scatter,
// migration-chase and take/re-join machinery is written once.
//
// Each implementation owns the forwarding-table consequences of its
// operations: Leave drops the owner's forwarding state for the node,
// CompleteMigration repoints it. Ids crossing the interface are
// physical ids in the owner's namespace, already resolved through
// its forwarding table.
type Placement interface {
	// Ref is the placement's index in its owning set — the shard
	// index in an Engine, the member index in a federation map.
	Ref() int

	// QueryLeg runs one consistent protocol query against this
	// placement. cancel, when non-nil, abandons a leg whose gather
	// has already returned (scatter deadline fired); implementations
	// backed by a blocking transport may ignore it.
	QueryLeg(req QueryRequest, cancel <-chan struct{}) (PlacementLeg, error)

	// Update republishes a node's availability.
	Update(node GlobalID, avail vector.Vec, announce bool) error

	// Join adds a node and returns its id in the owner's namespace.
	Join(avail vector.Vec) (GlobalID, error)

	// Leave removes a node permanently, dropping the owner's
	// forwarding state for it once the removal is applied.
	Leave(node GlobalID) error

	// Take removes a node mid-migration and returns its last
	// published availability so the caller can re-join it
	// elsewhere. out marks a take whose re-join happens outside
	// this placement's process (a cross-process migration): the
	// removal is then logged as a plain leave, so a local crash
	// recovery cannot resurrect a node that now lives elsewhere.
	// An error wrapping ErrWAL means applied-but-not-durable; the
	// returned availability is still valid.
	Take(node GlobalID, out bool) (vector.Vec, error)

	// CompleteMigration re-joins a taken node here and repoints the
	// owner's forwarding state from the node's previous physical id
	// (old) to its new home, keeping the stable external id (ext)
	// routable. It returns the node's new physical id.
	CompleteMigration(avail vector.Vec, ext, old GlobalID) (GlobalID, error)
}

// shardPlacement adapts one in-process shard — plus its owning
// engine's forwarding table and config — to the Placement interface.
type shardPlacement struct {
	e *Engine
	s *shard
}

var _ Placement = (*shardPlacement)(nil)

func (p *shardPlacement) Ref() int { return p.s.idx }

// QueryLeg runs one protocol query through the shard's write queue.
// The demand is cloned per leg, so concurrent shard goroutines never
// share a vector.
func (p *shardPlacement) QueryLeg(req QueryRequest, cancel <-chan struct{}) (PlacementLeg, error) {
	res, err := p.s.submit(op{
		kind:   opQuery,
		node:   -1,
		demand: req.Demand.Clone(),
		k:      req.K,
		reply:  make(chan opResult, 1),
	}, cancel)
	if err == nil {
		err = res.err
	}
	if err != nil {
		return PlacementLeg{}, err
	}
	return PlacementLeg{
		Cands:   legCandidates(nil, p.s.idx, res.recs, req.Demand, p.e.cfg.CMax),
		Hops:    res.hops,
		HopsMax: res.hops,
		Queried: 1,
	}, nil
}

func (p *shardPlacement) Update(node GlobalID, avail vector.Vec, announce bool) error {
	res, err := p.s.submit(op{
		kind:     opUpdate,
		node:     node.Local(),
		avail:    avail.Clone(),
		announce: announce,
		reply:    make(chan opResult, 1),
	}, nil)
	if err == nil {
		err = res.err
	}
	return err
}

func (p *shardPlacement) Join(avail vector.Vec) (GlobalID, error) {
	res, err := p.s.submit(op{
		kind:  opJoin,
		avail: avail,
		reply: make(chan opResult, 1),
	}, nil)
	if err == nil {
		err = res.err
	}
	if err != nil {
		return 0, err
	}
	return Global(p.s.idx, res.node), nil
}

func (p *shardPlacement) Leave(node GlobalID) error {
	res, err := p.s.submit(op{
		kind:  opLeave,
		node:  node.Local(),
		reply: make(chan opResult, 1),
		// Forwarding state dies on the shard goroutine, before the
		// leave is acknowledged: a checkpoint captured later on that
		// goroutine then cannot serialize forwarding entries whose
		// leave record it no longer covers.
		onApplied: func(res opResult) {
			if res.err == nil {
				p.e.fwd.forget(node) // removed ids only matter to recovery
			}
		},
	}, nil)
	if err == nil {
		err = res.err
	}
	return err
}

func (p *shardPlacement) Take(node GlobalID, out bool) (vector.Vec, error) {
	res, err := p.s.submit(op{
		kind:    opTake,
		node:    node.Local(),
		fedTake: out,
		reply:   make(chan opResult, 1),
	}, nil)
	if err == nil {
		err = res.err
	}
	return res.avail, err
}

func (p *shardPlacement) CompleteMigration(avail vector.Vec, ext, old GlobalID) (GlobalID, error) {
	res, err := p.s.submit(op{
		kind:  opJoin,
		avail: avail,
		mig:   &migMeta{ext: ext, old: old},
		reply: make(chan opResult, 1),
		// Repoint on the destination shard goroutine, before the
		// join is acknowledged and before the shard publishes a
		// snapshot containing the new id: no reader can observe the
		// new physical id without the forwarding table already
		// translating it back to the stable external id.
		onApplied: func(res opResult) {
			if res.err == nil {
				p.e.fwd.repoint(ext, old, Global(p.s.idx, res.node))
			}
		},
	}, nil)
	if err == nil {
		err = res.err
	}
	if err != nil {
		return 0, err
	}
	return Global(p.s.idx, res.node), nil
}

// ScatterQuery fans req out to every placement concurrently and
// merges the gathered legs best-fit first — the PR 2 scatter-gather
// shape lifted off the shard type so an engine scatters across
// shards and a federation router scatters across primary processes
// through the same loop. The fan-in channel is buffered to the
// placement count, so abandoned legs never block their senders, and
// the abandon channel unwinds legs still waiting on a full write
// queue once the gather returns. timeout is one whole-gather
// deadline: when it fires, legs still outstanding are dropped and
// the merge proceeds over the legs already gathered. The query fails
// only when no leg succeeds; with zero legs at the deadline the
// error is ErrScatterTimeout. Candidates in the response are ranked
// (bestFit) but not externalized — the caller owns the forwarding
// table.
func ScatterQuery(places []Placement, req QueryRequest, timeout time.Duration) (QueryResponse, error) {
	type result struct {
		leg PlacementLeg
		err error
	}
	legs := make(chan result, len(places))
	abandon := make(chan struct{})
	defer close(abandon)
	for _, p := range places {
		go func(p Placement) {
			leg, err := p.QueryLeg(req, abandon)
			legs <- result{leg: leg, err: err}
		}(p)
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	var (
		cands    []Candidate
		resp     QueryResponse
		firstErr error
	)
gather:
	for pending := len(places); pending > 0; pending-- {
		select {
		case r := <-legs:
			if r.err != nil {
				if firstErr == nil {
					firstErr = r.err
				}
				continue
			}
			resp.ShardsQueried += r.leg.Queried
			resp.Hops += r.leg.Hops
			if r.leg.HopsMax > resp.HopsMax {
				resp.HopsMax = r.leg.HopsMax
			}
			cands = append(cands, r.leg.Cands...)
		case <-deadline.C:
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: after %v (%d of %d legs gathered)",
					ErrScatterTimeout, timeout, resp.ShardsQueried, len(places))
			}
			break gather
		}
	}
	if resp.ShardsQueried == 0 {
		return QueryResponse{}, firstErr
	}
	resp.Candidates = bestFit(cands, req.K)
	return resp, nil
}

// RankCandidates sorts candidates by descending best-fit quality
// (ascending surplus, ids breaking ties) and truncates to k when
// k > 0 — the merge step of a scatter-gather, exported for placement
// callers outside the package (the federation router ranks its
// single-leg consistent queries with it).
func RankCandidates(cands []Candidate, k int) []Candidate {
	return bestFit(cands, k)
}
