package serve

import (
	"fmt"

	"pidcan/internal/serve/wal"
)

// CaptureStats is the gauge set an attached CaptureSink feeds into
// Stats: records accepted into the trace, records the bounded ring
// dropped instead of blocking the serving path, and trace bytes
// written.
type CaptureStats struct {
	Records uint64
	Dropped uint64
	Bytes   uint64
}

// CaptureSink receives the engine's operation stream for trace
// recording. It is implemented by internal/serve/capture; serve
// cannot import that package (capture imports serve), so the engine
// talks to an interface — the same inversion ReplSink uses.
//
// Both capture methods are called on serving goroutines and must not
// block: a sink under backpressure drops (and counts) rather than
// stalling queries or the shard loops.
type CaptureSink interface {
	// CaptureQuery is called on the querying caller's goroutine after
	// the response is computed, before it is returned. req.Demand and
	// resp.Candidates alias caller-owned memory: the sink copies what
	// it keeps.
	CaptureQuery(req QueryRequest, resp *QueryResponse, err error)
	// CaptureMutations is called on a shard goroutine immediately
	// after a batch is applied, in exact application order — the same
	// canonical records the op-log appends (so a trace's mutation
	// stream and the WAL agree). recs aliases a reusable buffer: the
	// sink copies what it keeps.
	CaptureMutations(shard int, recs []wal.Record)
	// CaptureStats feeds the capture_* gauges in Stats.
	CaptureStats() CaptureStats
}

// SetCapture attaches a trace recorder to the engine (nil detaches).
// While attached, every answered query and every applied mutation is
// offered to the sink; an unattached engine pays one atomic load per
// operation. Safe to call on a serving engine: detach before closing
// the recorder, and in-flight operations that already loaded the
// sink pointer may still deliver one final event each.
func (e *Engine) SetCapture(s CaptureSink) {
	if s == nil {
		e.capture.Store(nil)
		return
	}
	e.capture.Store(&s)
}

// Capturing reports whether a capture sink is attached.
func (e *Engine) Capturing() bool { return e.capture.Load() != nil }

// HaltShard permanently stops shard i's goroutine — the fault
// surface replay drills and scenario traces use to model a shard (or
// the member it stands in for) dying. Writes routed to the halted
// shard fail with ErrClosed; snapshot reads keep serving its last
// published snapshot, exactly like a shard lost mid-scatter.
// Idempotent; there is no resurrection short of restarting the
// engine.
func (e *Engine) HaltShard(i int) error {
	if i < 0 || i >= len(e.shards) {
		return fmt.Errorf("%w: shard %d", ErrNoShard, i)
	}
	e.shards[i].halt()
	return nil
}
