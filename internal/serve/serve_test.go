package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

// fakeBackend is a minimal deterministic Backend for engine tests:
// a flat map of availabilities with a trivial scan query.
type fakeBackend struct {
	now   sim.Time
	next  overlay.NodeID
	live  map[overlay.NodeID]bool
	avail map[overlay.NodeID]vector.Vec
	dims  int

	// gate, when non-nil, blocks Query until the channel closes —
	// the hook scatter-timeout tests use to stall a shard goroutine.
	gate chan struct{}

	announced int
	queries   int
}

func newFake(nodes, dims int) *fakeBackend {
	f := &fakeBackend{
		live:  map[overlay.NodeID]bool{},
		avail: map[overlay.NodeID]vector.Vec{},
		dims:  dims,
	}
	for i := 0; i < nodes; i++ {
		f.live[overlay.NodeID(i)] = true
		f.avail[overlay.NodeID(i)] = vector.New(dims)
	}
	f.next = overlay.NodeID(nodes)
	return f
}

func (f *fakeBackend) Nodes() []overlay.NodeID {
	var out []overlay.NodeID
	for id := overlay.NodeID(0); id < f.next; id++ {
		if f.live[id] {
			out = append(out, id)
		}
	}
	return out
}

func (f *fakeBackend) Availability(id overlay.NodeID) vector.Vec { return f.avail[id].Clone() }

func (f *fakeBackend) SetAvailability(id overlay.NodeID, v vector.Vec) error {
	if !f.live[id] {
		return fmt.Errorf("fake: node %d not live", id)
	}
	f.avail[id] = v.Clone()
	return nil
}

func (f *fakeBackend) Announce(id overlay.NodeID) error {
	if !f.live[id] {
		return fmt.Errorf("fake: node %d not live", id)
	}
	f.announced++
	return nil
}

func (f *fakeBackend) Join() (overlay.NodeID, error) {
	id := f.next
	f.next++
	f.live[id] = true
	f.avail[id] = vector.New(f.dims)
	return id, nil
}

func (f *fakeBackend) Leave(id overlay.NodeID) error {
	if !f.live[id] {
		return fmt.Errorf("fake: node %d not live", id)
	}
	delete(f.live, id)
	delete(f.avail, id)
	return nil
}

func (f *fakeBackend) Query(from overlay.NodeID, demand vector.Vec, k int) ([]proto.Record, int, error) {
	if f.gate != nil {
		<-f.gate
	}
	f.queries++
	var recs []proto.Record
	for _, id := range f.Nodes() {
		if f.avail[id].Dominates(demand) {
			recs = append(recs, proto.Record{Node: id, Avail: f.avail[id].Clone(), Expires: f.now + sim.Minute})
			if len(recs) >= k {
				break
			}
		}
	}
	return recs, len(recs), nil
}

func (f *fakeBackend) Step(d sim.Time) { f.now += d }
func (f *fakeBackend) Now() sim.Time   { return f.now }
func (f *fakeBackend) Size() int       { return len(f.Nodes()) }

// SeedNextID implements IDSeeder (checkpoint restore in O(alive)).
func (f *fakeBackend) SeedNextID(next overlay.NodeID) error {
	if next < f.next {
		return fmt.Errorf("fake: seed id %d below next %d", next, f.next)
	}
	f.next = next
	return nil
}

// testConfig returns a fast small config over a 2-dim unit cmax.
func testConfig(shards int) Config {
	return Config{
		Shards:        shards,
		NodesPerShard: 4,
		CMax:          vector.Of(10, 10),
		FlushInterval: 5 * time.Millisecond,
		CacheTTL:      50 * time.Millisecond,
	}
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg, func(i int, rc Config) (Backend, error) {
		return newFake(rc.NodesPerShard, rc.CMax.Dim()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestGlobalIDRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		shard int
		local overlay.NodeID
	}{{0, 0}, {3, 17}, {255, 1 << 30}} {
		g := Global(tc.shard, tc.local)
		if g.Shard() != tc.shard || g.Local() != tc.local {
			t.Fatalf("Global(%d,%d) round-tripped to (%d,%d)",
				tc.shard, tc.local, g.Shard(), g.Local())
		}
	}
}

func TestQueryBestFitOrdering(t *testing.T) {
	e := newTestEngine(t, testConfig(1))
	// Three nodes qualify with different surpluses; best fit first.
	nodes := e.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes, want 4", len(nodes))
	}
	for i, a := range []vector.Vec{
		vector.Of(9, 9), // big surplus
		vector.Of(5, 5), // closest fit
		vector.Of(7, 6),
		vector.Of(1, 1), // does not qualify
	} {
		if err := e.Update(nodes[i], a, false); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := e.Query(QueryRequest{Demand: vector.Of(4, 4), K: 10, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 3 {
		t.Fatalf("got %d candidates, want 3: %+v", len(resp.Candidates), resp.Candidates)
	}
	want := []GlobalID{nodes[1], nodes[2], nodes[0]}
	for i, c := range resp.Candidates {
		if c.Node != want[i] {
			t.Fatalf("candidate %d = %v, want %v (resp %+v)", i, c.Node, want[i], resp)
		}
	}
	if resp.Candidates[0].Surplus >= resp.Candidates[1].Surplus {
		t.Fatalf("surpluses not ascending: %+v", resp.Candidates)
	}
}

func TestQueryKTruncation(t *testing.T) {
	e := newTestEngine(t, testConfig(2))
	for _, id := range e.Nodes() {
		if err := e.Update(id, vector.Of(8, 8), false); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := e.Query(QueryRequest{Demand: vector.Of(1, 1), K: 3, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 3 {
		t.Fatalf("got %d candidates, want 3", len(resp.Candidates))
	}
	// K defaults to 1.
	resp, err = e.Query(QueryRequest{Demand: vector.Of(1, 1), NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 {
		t.Fatalf("default K: got %d candidates, want 1", len(resp.Candidates))
	}
}

func TestQueryMergesAcrossShards(t *testing.T) {
	e := newTestEngine(t, testConfig(3))
	nodes := e.Nodes()
	if len(nodes) != 12 {
		t.Fatalf("got %d nodes, want 12", len(nodes))
	}
	// One qualifying node per shard.
	seen := map[int]bool{}
	for _, id := range nodes {
		if !seen[id.Shard()] {
			seen[id.Shard()] = true
			if err := e.Update(id, vector.Of(6, 6), false); err != nil {
				t.Fatal(err)
			}
		}
	}
	resp, err := e.Query(QueryRequest{Demand: vector.Of(2, 2), K: 10, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	shards := map[int]bool{}
	for _, c := range resp.Candidates {
		shards[c.Node.Shard()] = true
	}
	if len(shards) != 3 {
		t.Fatalf("candidates span %d shards, want 3: %+v", len(shards), resp.Candidates)
	}
}

func TestQueryCacheHitAndExpiry(t *testing.T) {
	cfg := testConfig(1)
	cfg.CacheTTL = 40 * time.Millisecond
	e := newTestEngine(t, cfg)
	if err := e.Update(e.Nodes()[0], vector.Of(5, 5), false); err != nil {
		t.Fatal(err)
	}
	demand := vector.Of(1.8, 1.8)
	first, err := e.Query(QueryRequest{Demand: demand, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first query reported cached")
	}
	second, err := e.Query(QueryRequest{Demand: demand, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second query not served from cache")
	}
	// Nearby demand in the same quantization cell (cell size is
	// CacheQuantum·cmax = 0.5 here) also hits.
	near := vector.Of(1.9, 1.9)
	third, err := e.Query(QueryRequest{Demand: near, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Fatal("quantization-equivalent demand missed the cache")
	}
	time.Sleep(cfg.CacheTTL + 20*time.Millisecond)
	fourth, err := e.Query(QueryRequest{Demand: demand, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Cached {
		t.Fatal("stale cache entry served after TTL")
	}
	if st := e.Stats(); st.CacheHits < 2 {
		t.Fatalf("stats report %d cache hits, want >= 2", st.CacheHits)
	}
}

func TestCachedResponsesNeverViolateDominance(t *testing.T) {
	e := newTestEngine(t, testConfig(1))
	nodes := e.Nodes()
	// One node strictly inside a cache cell (cell size 0.5 here),
	// one safely above the cell's upper bound.
	if err := e.Update(nodes[0], vector.Of(1.85, 1.85), false); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(nodes[1], vector.Of(3, 3), false); err != nil {
		t.Fatal(err)
	}
	// Two demands sharing the (1.5, 2.0] cell; the second is served
	// from the cache. Whatever comes back must dominate the demand
	// actually requested — the in-cell node (1.85 < 1.9) must never
	// be handed to the 1.9 query via the 1.8 query's cache entry.
	for _, demand := range []vector.Vec{vector.Of(1.8, 1.8), vector.Of(1.9, 1.9)} {
		resp, err := e.Query(QueryRequest{Demand: demand, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range resp.Candidates {
			if !c.Avail.Dominates(demand) {
				t.Fatalf("candidate %v (avail %v) does not dominate demand %v (cached=%v)",
					c.Node, c.Avail, demand, resp.Cached)
			}
		}
		// The clearly-sufficient node is always found.
		found := false
		for _, c := range resp.Candidates {
			found = found || c.Node == nodes[1]
		}
		if !found {
			t.Fatalf("node above the cell bound missing for demand %v: %+v", demand, resp.Candidates)
		}
	}
}

// TestCachedSurplusUsesTrueDemand pins the cache-path scoring fix:
// whether a response is computed fresh or served from the cache, the
// surpluses it carries are for the demand the caller actually sent,
// not the quantization cell's upper bound the candidate set was
// evaluated against.
func TestCachedSurplusUsesTrueDemand(t *testing.T) {
	e := newTestEngine(t, testConfig(1))
	avail := vector.Of(5, 5)
	if err := e.Update(e.Nodes()[0], avail, false); err != nil {
		t.Fatal(err)
	}
	cmax := e.Config().CMax
	// (1.8, 1.8) and (1.9, 1.9) share the (1.5, 2.0] cell; the cell
	// upper bound (2, 2) would yield surplus 0.60 for both.
	for i, demand := range []vector.Vec{vector.Of(1.8, 1.8), vector.Of(1.9, 1.9), vector.Of(1.8, 1.8)} {
		resp, err := e.Query(QueryRequest{Demand: demand, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && !resp.Cached {
			t.Fatalf("query %d not served from cache", i)
		}
		if len(resp.Candidates) != 1 {
			t.Fatalf("query %d: %+v", i, resp.Candidates)
		}
		want := avail.Surplus(demand, cmax)
		if got := resp.Candidates[0].Surplus; got != want {
			t.Fatalf("query %d (cached=%v): surplus %v, want %v (true demand %v)",
				i, resp.Cached, got, want, demand)
		}
	}
}

// TestCacheEntryNotAliased pins the aliasing fix: a caller mutating
// its response must not corrupt the cached entry behind it.
func TestCacheEntryNotAliased(t *testing.T) {
	e := newTestEngine(t, testConfig(1))
	if err := e.Update(e.Nodes()[0], vector.Of(5, 5), false); err != nil {
		t.Fatal(err)
	}
	demand := vector.Of(1.8, 1.8)
	first, err := e.Query(QueryRequest{Demand: demand, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Candidates) != 1 {
		t.Fatalf("first response: %+v", first.Candidates)
	}
	want := first.Candidates[0].Node
	first.Candidates[0] = Candidate{Node: Global(7, 7), Surplus: -1}
	second, err := e.Query(QueryRequest{Demand: demand, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second query not served from cache")
	}
	if len(second.Candidates) != 1 || second.Candidates[0].Node != want {
		t.Fatalf("cache corrupted by caller mutation: %+v", second.Candidates)
	}
	// And the same for mutations of a cache-hit response.
	second.Candidates[0] = Candidate{Node: Global(8, 8)}
	third, err := e.Query(QueryRequest{Demand: demand, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(third.Candidates) != 1 || third.Candidates[0].Node != want {
		t.Fatalf("cache corrupted by hit-path mutation: %+v", third.Candidates)
	}
}

// TestCacheExpiredEntryDeletedOnLookup exercises the queryCache
// directly: looking up an entry past its TTL removes it, so the
// entry count reported by Stats stops counting dead entries.
func TestCacheExpiredEntryDeletedOnLookup(t *testing.T) {
	cfg, err := testConfig(1).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	qc := newQueryCache(cfg)
	t0 := time.Now()
	qc.put("k1", QueryResponse{Candidates: []Candidate{{Node: 1}}}, t0, 0)
	qc.put("k2", QueryResponse{}, t0, 0)
	if n := qc.stats().entries; n != 2 {
		t.Fatalf("entries = %d after two puts, want 2", n)
	}
	if _, ok := qc.get("k1", t0.Add(cfg.CacheTTL/2), 0); !ok {
		t.Fatal("fresh entry missed")
	}
	if _, ok := qc.get("k1", t0.Add(cfg.CacheTTL+time.Second), 0); ok {
		t.Fatal("expired entry served")
	}
	if n := qc.stats().entries; n != 1 {
		t.Fatalf("entries = %d after expired lookup, want 1 (dead entry retained)", n)
	}
}

func TestUpdateVisibleInSnapshot(t *testing.T) {
	e := newTestEngine(t, testConfig(1))
	id := e.Nodes()[2]
	if err := e.Update(id, vector.Of(7, 3), false); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Query(QueryRequest{Demand: vector.Of(6, 2), K: 5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Node != id {
		t.Fatalf("update not visible: %+v", resp.Candidates)
	}
}

func TestJoinLeaveLifecycle(t *testing.T) {
	e := newTestEngine(t, testConfig(2))
	before := len(e.Nodes())
	id, err := e.Join(vector.Of(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Query(QueryRequest{Demand: vector.Of(8.5, 8.5), K: 5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Node != id {
		t.Fatalf("joined node not serving: %+v", resp.Candidates)
	}
	if got := len(e.Nodes()); got != before+1 {
		t.Fatalf("population %d after join, want %d", got, before+1)
	}
	if err := e.Leave(id); err != nil {
		t.Fatal(err)
	}
	resp, err = e.Query(QueryRequest{Demand: vector.Of(8.5, 8.5), K: 5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 0 {
		t.Fatalf("departed node still serving: %+v", resp.Candidates)
	}
	if err := e.Leave(id); err == nil {
		t.Fatal("double leave succeeded")
	}
}

// TestConsistentScatterSpansShards is the cross-shard acceptance
// case: with one uniquely-identifiable qualifying node per shard, a
// default-scope consistent query must merge candidates from every
// shard's protocol, not just one.
func TestConsistentScatterSpansShards(t *testing.T) {
	const shards = 4
	e := newTestEngine(t, testConfig(shards))
	// Shard i's first node gets the unique availability (6+i, 6+i).
	for _, id := range e.Nodes() {
		if id.Local() == 0 {
			f := 6 + float64(id.Shard())
			if err := e.Update(id, vector.Of(f, f), false); err != nil {
				t.Fatal(err)
			}
		}
	}
	resp, err := e.Query(QueryRequest{Demand: vector.Of(2, 2), K: 8, Consistent: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShardsQueried != shards {
		t.Fatalf("ShardsQueried = %d, want %d", resp.ShardsQueried, shards)
	}
	seen := map[int]bool{}
	for _, c := range resp.Candidates {
		seen[c.Node.Shard()] = true
		want := 6 + float64(c.Node.Shard())
		if c.Avail[0] != want {
			t.Fatalf("candidate %v avail %v does not carry its shard's unique availability %v",
				c.Node, c.Avail, want)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("candidates span %d shard(s), want >= 2: %+v", len(seen), resp.Candidates)
	}
	if len(seen) != shards {
		t.Fatalf("candidates span %d shards, want %d: %+v", len(seen), shards, resp.Candidates)
	}
	if resp.HopsMax > resp.Hops || (resp.Hops > 0 && resp.HopsMax == 0) {
		t.Fatalf("hops accounting inconsistent: total %d, max %d", resp.Hops, resp.HopsMax)
	}
	// Best-fit order: ascending surplus means ascending unique
	// availability here, so shard 0's node leads.
	if resp.Candidates[0].Node.Shard() != 0 {
		t.Fatalf("best fit is %v, want shard 0's node: %+v", resp.Candidates[0].Node, resp.Candidates)
	}
}

// TestConsistentScopeOneSingleShard pins the paper-faithful scope:
// one shard's index, one leg, per-shard hops equal to the total.
func TestConsistentScopeOneSingleShard(t *testing.T) {
	e := newTestEngine(t, testConfig(4))
	for _, id := range e.Nodes() {
		if err := e.Update(id, vector.Of(6, 6), false); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := e.Query(QueryRequest{Demand: vector.Of(1, 1), K: 16, Consistent: true, Scope: ScopeOne})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShardsQueried != 1 {
		t.Fatalf("ShardsQueried = %d, want 1", resp.ShardsQueried)
	}
	if resp.Hops != resp.HopsMax {
		t.Fatalf("single-shard query: hops %d != hops_max %d", resp.Hops, resp.HopsMax)
	}
	shards := map[int]bool{}
	for _, c := range resp.Candidates {
		shards[c.Node.Shard()] = true
	}
	if len(shards) != 1 {
		t.Fatalf("scope=one candidates span %d shards: %+v", len(shards), resp.Candidates)
	}
}

func TestConsistentScopeValidation(t *testing.T) {
	e := newTestEngine(t, testConfig(2))
	_, err := e.Query(QueryRequest{Demand: vector.Of(1, 1), Consistent: true, Scope: "bogus"})
	if !errors.Is(err, ErrBadScope) {
		t.Fatalf("bogus scope: got %v, want ErrBadScope", err)
	}
	// The explicit scopes and the empty default are all accepted.
	for _, scope := range []string{"", ScopeAll, ScopeOne} {
		if _, err := e.Query(QueryRequest{Demand: vector.Of(1, 1), Consistent: true, Scope: scope}); err != nil {
			t.Fatalf("scope %q rejected: %v", scope, err)
		}
	}
}

// TestConsistentScatterToleratesHaltedShard pins the shutdown
// semantics: a shard halting mid-scatter fails only its own leg; the
// merge proceeds over the survivors, and only a fully halted engine
// surfaces ErrClosed.
func TestConsistentScatterToleratesHaltedShard(t *testing.T) {
	e := newTestEngine(t, testConfig(4))
	for _, id := range e.Nodes() {
		if err := e.Update(id, vector.Of(6, 6), false); err != nil {
			t.Fatal(err)
		}
	}
	e.shards[2].halt()
	resp, err := e.Query(QueryRequest{Demand: vector.Of(1, 1), K: 16, Consistent: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShardsQueried != 3 {
		t.Fatalf("ShardsQueried = %d after one shard halted, want 3", resp.ShardsQueried)
	}
	for _, c := range resp.Candidates {
		if c.Node.Shard() == 2 {
			t.Fatalf("halted shard contributed candidate %v", c.Node)
		}
	}
	// With every shard halted (engine still nominally open), the
	// scatter has no surviving leg and reports ErrClosed.
	for _, s := range e.shards {
		s.halt()
	}
	if _, err := e.Query(QueryRequest{Demand: vector.Of(1, 1), Consistent: true}); !errors.Is(err, ErrClosed) {
		t.Fatalf("all shards halted: got %v, want ErrClosed", err)
	}
}

// TestJoinDistributionEvenUnderMixedTraffic pins the routing-counter
// split: interleaved consistent queries (both scopes) must not skew
// the join round-robin, so shard populations stay level.
func TestJoinDistributionEvenUnderMixedTraffic(t *testing.T) {
	const shards, joins = 4, 16
	e := newTestEngine(t, testConfig(shards))
	for i := 0; i < joins; i++ {
		if _, err := e.Join(nil); err != nil {
			t.Fatal(err)
		}
		// Consistent queries advance their own counter, never the
		// join one — an uneven number per join stresses exactly that.
		for j := 0; j <= i%3; j++ {
			scope := ScopeOne
			if j%2 == 0 {
				scope = ScopeAll
			}
			if _, err := e.Query(QueryRequest{Demand: vector.Of(1, 1), Consistent: true, Scope: scope}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := e.Stats()
	for _, ss := range st.Shards {
		want := testConfig(shards).NodesPerShard + joins/shards
		if ss.Nodes != want {
			t.Fatalf("shard %d holds %d nodes, want %d (join round-robin skewed): %+v",
				ss.Shard, ss.Nodes, want, st.Shards)
		}
	}
}

func TestConsistentQueryRoutesThroughShard(t *testing.T) {
	e := newTestEngine(t, testConfig(2))
	for _, id := range e.Nodes() {
		if err := e.Update(id, vector.Of(6, 6), false); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := e.Query(QueryRequest{Demand: vector.Of(1, 1), K: 2, Consistent: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) == 0 {
		t.Fatalf("consistent query found nothing: %+v", resp)
	}
	if st := e.Stats(); st.Consistent != 1 {
		t.Fatalf("stats report %d consistent queries, want 1", st.Consistent)
	}
}

func TestBadInputs(t *testing.T) {
	e := newTestEngine(t, testConfig(1))
	if _, err := e.Query(QueryRequest{Demand: vector.Of(1)}); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("wrong-dim demand: got %v", err)
	}
	if _, err := e.Query(QueryRequest{Demand: vector.Of(-1, 0)}); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("negative demand: got %v", err)
	}
	if err := e.Update(Global(9, 0), vector.Of(1, 1), false); !errors.Is(err, ErrNoShard) {
		t.Fatalf("update on unknown shard: got %v, want ErrNoShard", err)
	}
	if err := e.Leave(Global(9, 0)); !errors.Is(err, ErrNoShard) {
		t.Fatalf("leave on unknown shard: got %v, want ErrNoShard", err)
	}
	if err := e.Update(e.Nodes()[0], vector.Of(1, 2, 3), false); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("wrong-dim avail: got %v", err)
	}
}

func TestCloseRejectsOps(t *testing.T) {
	cfg := testConfig(2)
	e, err := New(cfg, func(i int, rc Config) (Backend, error) {
		return newFake(rc.NodesPerShard, rc.CMax.Dim()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	id := e.Nodes()[0]
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second close: got %v", err)
	}
	if _, err := e.Query(QueryRequest{Demand: vector.Of(1, 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close: got %v", err)
	}
	if err := e.Update(id, vector.Of(1, 1), false); !errors.Is(err, ErrClosed) {
		t.Fatalf("update after close: got %v", err)
	}
	if _, err := e.Join(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("join after close: got %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	e := newTestEngine(t, testConfig(2))
	nodes := e.Nodes()
	for i := 0; i < 3; i++ {
		if err := e.Update(nodes[i], vector.Of(5, 5), true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Join(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Query(QueryRequest{Demand: vector.Of(1, 1), K: 1}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Updates != 3 || st.Joins != 1 || st.Queries != 4 {
		t.Fatalf("counters: %+v", st)
	}
	if st.TotalNodes != 9 {
		t.Fatalf("total nodes %d, want 9", st.TotalNodes)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("shard stats: %+v", st.Shards)
	}
	if st.Shards[0].SnapshotVersion == 0 {
		t.Fatalf("snapshot never published: %+v", st.Shards[0])
	}
}

func TestRecordTTLExpiresStaleNodes(t *testing.T) {
	cfg := testConfig(1)
	cfg.RecordTTL = 15 * sim.Second
	cfg.StepQuantum = 10 * sim.Second
	// No idle ticks during the test: only write batches (one op
	// each, +10s apiece) advance the shard clock, so node ages are
	// deterministic.
	cfg.FlushInterval = time.Hour
	e := newTestEngine(t, cfg)
	nodes := e.Nodes()
	// t=0: nodes[0] written (fresh), clock steps to 10s.
	if err := e.Update(nodes[0], vector.Of(5, 5), false); err != nil {
		t.Fatal(err)
	}
	// t=10s: nodes[1] written, clock steps to 20s. nodes[0] is now
	// 20s old (> TTL), nodes[1] 10s old (fresh).
	if err := e.Update(nodes[1], vector.Of(6, 6), false); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Query(QueryRequest{Demand: vector.Of(4, 4), K: 5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Node != nodes[1] {
		t.Fatalf("want only fresh node %v, got %+v", nodes[1], resp.Candidates)
	}
	// A fresh write revives the stale node.
	if err := e.Update(nodes[0], vector.Of(5, 5), false); err != nil {
		t.Fatal(err)
	}
	resp, err = e.Query(QueryRequest{Demand: vector.Of(4, 4), K: 5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Node != nodes[0] {
		// nodes[1] is now 20s old and expired; nodes[0] just wrote.
		t.Fatalf("want only re-freshed node %v, got %+v", nodes[0], resp.Candidates)
	}
}

func TestRecordTTLZeroNeverExpires(t *testing.T) {
	cfg := testConfig(1) // RecordTTL 0: the default, no expiry
	cfg.StepQuantum = 30 * sim.Second
	e := newTestEngine(t, cfg)
	if err := e.Update(e.Nodes()[0], vector.Of(5, 5), false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // push the clock far past any plausible TTL
		if err := e.Update(e.Nodes()[1], vector.Of(1, 1), false); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := e.Query(QueryRequest{Demand: vector.Of(4, 4), K: 5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Node != e.Nodes()[0] {
		t.Fatalf("record expired with RecordTTL=0: %+v", resp.Candidates)
	}
}

// TestRoundRobinStartsAtShardZero pins the counter fix: the first
// join lands on shard 0 (not 1), subsequent joins walk the shards in
// order, and the first ScopeOne consistent query consults shard 0.
func TestRoundRobinStartsAtShardZero(t *testing.T) {
	e := newTestEngine(t, testConfig(3))
	for want := 0; want < 6; want++ {
		id, err := e.Join(nil)
		if err != nil {
			t.Fatal(err)
		}
		if id.Shard() != want%3 {
			t.Fatalf("join %d placed on shard %d, want %d", want, id.Shard(), want%3)
		}
	}
	if _, err := e.Query(QueryRequest{Demand: vector.Of(1, 1), Consistent: true, Scope: ScopeOne}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	// Each shard applied its two joins; only shard 0 also applied the
	// first ScopeOne query.
	for _, ss := range st.Shards {
		want := uint64(2)
		if ss.Shard == 0 {
			want = 3
		}
		if ss.OpsApplied != want {
			t.Fatalf("shard %d applied %d ops, want %d (first ScopeOne query mis-routed): %+v",
				ss.Shard, ss.OpsApplied, want, st.Shards)
		}
	}
}

// TestScatterWholeGatherTimeout pins the corrected ScatterTimeout
// semantics: one deadline covers the entire gather, and a query no
// leg answered fails with ErrScatterTimeout.
func TestScatterWholeGatherTimeout(t *testing.T) {
	cfg := testConfig(2)
	cfg.ScatterTimeout = 30 * time.Millisecond
	gate := make(chan struct{})
	e, err := New(cfg, func(i int, rc Config) (Backend, error) {
		f := newFake(rc.NodesPerShard, rc.CMax.Dim())
		f.gate = gate
		return f, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	t.Cleanup(func() { close(gate) }) // unblock the shard goroutines first

	start := time.Now()
	_, err = e.Query(QueryRequest{Demand: vector.Of(1, 1), Consistent: true})
	if !errors.Is(err, ErrScatterTimeout) {
		t.Fatalf("stalled scatter: got %v, want ErrScatterTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < cfg.ScatterTimeout || elapsed > 10*cfg.ScatterTimeout {
		t.Fatalf("scatter returned after %v, want ~%v (whole-gather deadline)", elapsed, cfg.ScatterTimeout)
	}
}

// TestSubmitCancelUnblocksAbandonedLeg pins the scatter-leg leak
// fix: a submit blocked on a full write queue unwinds when its
// cancel channel closes instead of outliving its query.
func TestSubmitCancelUnblocksAbandonedLeg(t *testing.T) {
	cfg, err := testConfig(1).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	cfg.QueueDepth = 1
	// The shard goroutine is never started, so the queue never
	// drains — the worst case an abandoned leg can hit.
	s := newShard(0, cfg, newFake(2, 2))
	if _, err := s.submit(op{kind: opUpdate, node: 0, avail: vector.Of(1, 1)}, nil); err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, err := s.submit(op{kind: opQuery, node: -1, reply: make(chan opResult, 1)}, cancel)
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("submit returned %v before cancel with a full queue", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(cancel)
	select {
	case err := <-errc:
		if !errors.Is(err, errLegAbandoned) {
			t.Fatalf("canceled submit returned %v, want errLegAbandoned", err)
		}
	case <-time.After(time.Second):
		t.Fatal("submit still blocked after cancel")
	}
}

// TestCacheConcurrentRefreshIsHit pins the recheck fix: a stale
// first read raced by a put that refreshes the key must return the
// refreshed entry as a hit, not force a rescan.
func TestCacheConcurrentRefreshIsHit(t *testing.T) {
	cfg, err := testConfig(1).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	qc := newQueryCache(cfg)
	t0 := time.Now()
	now := t0.Add(2 * cfg.CacheTTL) // t0 entry stale, refresh fresh
	qc.put("k", QueryResponse{Candidates: []Candidate{{Node: 1}}}, t0, 0)
	qc.recheckHook = func() {
		qc.put("k", QueryResponse{Candidates: []Candidate{{Node: 2}}}, now, 0)
	}
	resp, ok := qc.get("k", now, 0)
	if !ok {
		t.Fatal("concurrently refreshed entry reported as miss")
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Node != 2 {
		t.Fatalf("got %+v, want the refreshed entry", resp.Candidates)
	}
	cs := qc.stats()
	hits, misses, entries := cs.hits, cs.misses, cs.entries
	if hits != 1 || misses != 0 {
		t.Fatalf("hits %d misses %d, want 1/0", hits, misses)
	}
	if entries != 1 {
		t.Fatalf("refreshed entry deleted: %d entries", entries)
	}
}

// TestSnapshotOutOfRange pins the Snapshot index fix: unknown shard
// indexes return ErrNoShard instead of panicking.
func TestSnapshotOutOfRange(t *testing.T) {
	e := newTestEngine(t, testConfig(2))
	for _, i := range []int{-1, 2, 99} {
		if snap, err := e.Snapshot(i); snap != nil || !errors.Is(err, ErrNoShard) {
			t.Fatalf("Snapshot(%d) = %v, %v; want nil, ErrNoShard", i, snap, err)
		}
	}
	snap, err := e.Snapshot(1)
	if err != nil || snap == nil || snap.Shard != 1 {
		t.Fatalf("Snapshot(1) = %+v, %v", snap, err)
	}
}

// TestConsistentQueryEmptyShard pins the empty-shard error: the
// query names the shard instead of surfacing the backend's confusing
// "node -1 not in cluster".
func TestConsistentQueryEmptyShard(t *testing.T) {
	e := newTestEngine(t, testConfig(1))
	for _, id := range e.Nodes() {
		if err := e.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	_, err := e.Query(QueryRequest{Demand: vector.Of(1, 1), Consistent: true, Scope: ScopeOne})
	if !errors.Is(err, ErrNoNodes) {
		t.Fatalf("query against an empty shard: got %v, want ErrNoNodes", err)
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shards != 1 || cfg.NodesPerShard != 64 || cfg.CMax == nil ||
		cfg.QueueDepth <= 0 || cfg.CacheTTL <= 0 || cfg.RecordTTL != 0 ||
		cfg.RebalanceInterval != 0 || cfg.RebalanceThreshold != 1.25 ||
		cfg.RebalanceMaxMoves != 8 {
		t.Fatalf("defaults not resolved: %+v", cfg)
	}
	if _, err := (Config{Shards: -1}).withDefaults(); err == nil {
		t.Fatal("negative Shards accepted")
	}
	if _, err := (Config{RebalanceThreshold: 0.9}).withDefaults(); err == nil {
		t.Fatal("RebalanceThreshold <= 1 accepted")
	}
	if _, err := (Config{NodesPerShard: 1}).withDefaults(); err == nil {
		t.Fatal("NodesPerShard=1 accepted")
	}
	if _, err := (Config{CMax: vector.Of(0, 0)}).withDefaults(); err == nil {
		t.Fatal("zero CMax accepted")
	}
}
