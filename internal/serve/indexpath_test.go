package serve

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pidcan/internal/vector"
)

// TestIndexedQueryMatchesLinear is the engine-level half of the
// index-vs-linear property: two engines fed the identical write
// history — one ranking through the flat dominance index, one through
// the linear snapshot scan — must return byte-identical NoCache query
// responses for every demand, including through churn batches that
// exercise the incremental index rebuild.
func TestIndexedQueryMatchesLinear(t *testing.T) {
	cfg := testConfig(2)
	cfg.NodesPerShard = 25
	cfg.CMax = vector.Of(8, 12, 5)

	linCfg := cfg
	linCfg.IndexDisabled = true
	idx := newTestEngine(t, cfg)
	lin := newTestEngine(t, linCfg)
	engines := []*Engine{idx, lin}

	rng := rand.New(rand.NewSource(42))
	randAvail := func() vector.Vec {
		a := vector.New(cfg.CMax.Dim())
		for d := range a {
			a[d] = cfg.CMax[d] * rng.Float64()
			if rng.Intn(10) == 0 {
				a[d] = 0
			}
		}
		return a
	}

	compare := func(round int) {
		t.Helper()
		for q := 0; q < 40; q++ {
			demand := vector.New(cfg.CMax.Dim())
			for d := range demand {
				demand[d] = cfg.CMax[d] * rng.Float64() * 0.8
			}
			k := 1 + rng.Intn(6)
			req := QueryRequest{Demand: demand, K: k, NoCache: true}
			ri, err := idx.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			rl, err := lin.Query(req)
			if err != nil {
				t.Fatal(err)
			}
			if len(ri.Candidates) != len(rl.Candidates) {
				t.Fatalf("round %d q %d: indexed %d candidates, linear %d\n%+v\n%+v",
					round, q, len(ri.Candidates), len(rl.Candidates), ri.Candidates, rl.Candidates)
			}
			for i := range ri.Candidates {
				a, b := ri.Candidates[i], rl.Candidates[i]
				if a.Node != b.Node ||
					math.Float64bits(a.Surplus) != math.Float64bits(b.Surplus) ||
					!a.Avail.Equal(b.Avail) {
					t.Fatalf("round %d q %d cand %d: indexed %+v != linear %+v",
						round, q, i, a, b)
				}
			}
		}
	}

	// Seed both engines with the same availabilities, then interleave
	// churn rounds (updates, joins, leaves — the deltas the
	// incremental rebuild merges) with full response comparisons.
	for round := 0; round < 8; round++ {
		ni, nl := idx.Nodes(), lin.Nodes()
		if len(ni) != len(nl) {
			t.Fatalf("round %d: populations diverged: %d vs %d", round, len(ni), len(nl))
		}
		for op := 0; op < 30; op++ {
			switch {
			case len(ni) > 4 && rng.Intn(6) == 0: // leave
				p := rng.Intn(len(ni))
				for j, e := range engines {
					n := []GlobalID{ni[p], nl[p]}[j]
					if err := e.Leave(n); err != nil {
						t.Fatal(err)
					}
				}
				ni = append(ni[:p], ni[p+1:]...)
				nl = append(nl[:p], nl[p+1:]...)
			case rng.Intn(6) == 0: // join
				a := randAvail()
				gi, err := idx.Join(a)
				if err != nil {
					t.Fatal(err)
				}
				gl, err := lin.Join(a)
				if err != nil {
					t.Fatal(err)
				}
				ni, nl = append(ni, gi), append(nl, gl)
			default: // re-advertise
				p := rng.Intn(len(ni))
				a := randAvail()
				if err := idx.Update(ni[p], a, false); err != nil {
					t.Fatal(err)
				}
				if err := lin.Update(nl[p], a, false); err != nil {
					t.Fatal(err)
				}
			}
		}
		compare(round)
	}

	st := idx.Stats()
	if st.IndexSearches == 0 || st.IndexBuilds == 0 {
		t.Fatalf("indexed engine reported no index activity: %+v", st)
	}
	if st.IndexDeltaBuilds == 0 {
		t.Fatalf("churn rounds never took the incremental rebuild path: %+v", st)
	}
	if lin.Stats().IndexSearches == 0 {
		t.Fatal("linear engine searches not counted")
	}
}

// driftConfig is the demand-drift scenario: a fine quantization grid
// against a slowly wandering demand distribution, so nearly every
// lookup lands in a virgin cell and the fixed-knob cache can't
// amortize anything.
func driftConfig() Config {
	cfg := testConfig(1)
	cfg.NodesPerShard = 32
	cfg.CacheTTL = 5 * time.Second // wall-clock expiry off the table
	cfg.CacheQuantum = 0.002
	cfg.CacheSize = 4096
	return cfg
}

// driftHitRate drives n random-walk demands through the engine and
// returns the cache hit-rate.
func driftHitRate(t *testing.T, e *Engine, n int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	cmax := e.Config().CMax
	for i := 0; i < n; i++ {
		demand := vector.New(2)
		for d := range demand {
			// The distribution's center drifts across half the
			// capacity range over the run — hundreds of fine grid
			// cells — while per-query jitter spreads each batch of
			// demands over a ~40x40 cell neighborhood. Far more
			// virgin cells than repeat visits for a fixed fine grid;
			// a handful of live cells once the grid coarsens.
			base := (0.15 + 0.5*float64(i)/float64(n)) * cmax[d]
			demand[d] = base + 0.08*cmax[d]*rng.Float64()
		}
		if _, err := e.Query(QueryRequest{Demand: demand, K: 3}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		t.Fatal("no cache lookups recorded")
	}
	return float64(st.CacheHits) / float64(total)
}

// TestAdaptiveCacheRecoversFromDrift: under drifting demands the
// fixed-knob cache misses almost always, while the adaptive
// controller detects the compulsory-miss pattern, coarsens the grid,
// and recovers a useful hit-rate from the very same workload.
func TestAdaptiveCacheRecoversFromDrift(t *testing.T) {
	fixed := newTestEngine(t, driftConfig())
	adaptCfg := driftConfig()
	adaptCfg.CacheAdaptEvery = 64
	adaptCfg.CacheQuantumMax = 0.1
	adaptive := newTestEngine(t, adaptCfg)

	const n = 3000
	fixedRate := driftHitRate(t, fixed, n)
	adaptiveRate := driftHitRate(t, adaptive, n)
	t.Logf("hit-rate under drift: fixed %.3f, adaptive %.3f", fixedRate, adaptiveRate)

	if fixedRate > 0.25 {
		t.Fatalf("fixed-knob cache hit-rate %.3f — drift scenario not hostile enough", fixedRate)
	}
	if adaptiveRate < 0.35 {
		t.Fatalf("adaptive cache hit-rate %.3f, want >= 0.35 (fixed: %.3f)", adaptiveRate, fixedRate)
	}
	if adaptiveRate < 3*fixedRate {
		t.Fatalf("adaptive hit-rate %.3f not >= 3x fixed %.3f", adaptiveRate, fixedRate)
	}

	st := adaptive.Stats()
	if st.CacheAdaptions == 0 {
		t.Fatalf("controller never adapted: %+v", st)
	}
	if st.CacheQuantum <= adaptCfg.CacheQuantum {
		t.Fatalf("quantum %v never coarsened past %v", st.CacheQuantum, adaptCfg.CacheQuantum)
	}
	if fs := fixed.Stats(); fs.CacheAdaptions != 0 {
		t.Fatalf("fixed-knob engine adapted %d times", fs.CacheAdaptions)
	}
}

// TestCacheRotationKeepsHotHalf: filling past capacity must rotate
// generations (shedding the coldest half) rather than wiping the
// whole cache — a hot key stays served across the rotation.
func TestCacheRotationKeepsHotHalf(t *testing.T) {
	cfg := testConfig(1)
	cfg.CacheSize = 8 // halfMax = 4
	cfg.CacheTTL = 5 * time.Second
	cfg.CacheQuantum = 0.01
	e := newTestEngine(t, cfg)

	hot := QueryRequest{Demand: vector.Of(1, 1), K: 2}
	if _, err := e.Query(hot); err != nil { // fill the hot cell
		t.Fatal(err)
	}
	// Walk enough distinct cells to force several rotations, touching
	// the hot key between fills so promotion keeps it live.
	for i := 0; i < 40; i++ {
		d := vector.Of(2+float64(i)*0.15, 3)
		if _, err := e.Query(QueryRequest{Demand: d, K: 2}); err != nil {
			t.Fatal(err)
		}
		resp, err := e.Query(hot)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Cached {
			t.Fatalf("hot key evicted after %d cold fills (stats %+v)", i+1, e.Stats())
		}
	}
	st := e.Stats()
	if st.CacheResets == 0 {
		t.Fatalf("no generation rotation happened: %+v", st)
	}
	if st.CacheEntries > cfg.CacheSize {
		t.Fatalf("cache grew past its bound: %d > %d", st.CacheEntries, cfg.CacheSize)
	}
}
