package serve_test

// Stress test over the real thing: an Engine whose shards are
// genuine PID-CAN Clusters (wired by pidcan.NewEngine), hammered by
// concurrent clients issuing mixed Query/Update/Join/Leave traffic.
// Run it with -race; that is the whole point — it exercises the
// snapshot read path, the write queues and the query cache across
// shard goroutines at once.

import (
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pidcan"
	"pidcan/internal/vector"
)

func TestStressConcurrentMixedTraffic(t *testing.T) {
	const (
		shards  = 4
		clients = 32
		opsEach = 150
	)
	eng, err := pidcan.NewEngine(pidcan.EngineConfig{
		Shards:        shards,
		NodesPerShard: 12,
		Seed:          42,
		FlushInterval: 2 * time.Millisecond,
		CacheTTL:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	cmax := eng.Config().CMax
	baseNodes := eng.Nodes()
	if len(baseNodes) != shards*12 {
		t.Fatalf("population %d, want %d", len(baseNodes), shards*12)
	}
	for _, id := range baseNodes {
		if err := eng.Update(id, cmax.Scale(0.5), true); err != nil {
			t.Fatal(err)
		}
	}

	var (
		queries, hits, updates, joins, leaves atomic.Uint64
		wg                                    sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 0x57e55))
			var mine []pidcan.GlobalNodeID // nodes this client joined
			demand := func() vector.Vec {
				d := make(vector.Vec, cmax.Dim())
				for i := range d {
					d[i] = cmax[i] * rng.Float64() * 0.6
				}
				return d
			}
			for i := 0; i < opsEach; i++ {
				switch p := rng.Float64(); {
				case p < 0.55: // lock-free snapshot query
					resp, err := eng.Query(pidcan.QueryRequest{Demand: demand(), K: 3})
					if err != nil {
						t.Errorf("client %d query: %v", c, err)
						return
					}
					queries.Add(1)
					if resp.Cached {
						hits.Add(1)
					}
				case p < 0.65: // protocol-routed query
					if _, err := eng.Query(pidcan.QueryRequest{
						Demand: demand(), K: 2, Consistent: true,
					}); err != nil {
						t.Errorf("client %d consistent query: %v", c, err)
						return
					}
					queries.Add(1)
				case p < 0.85: // availability update
					id := baseNodes[rng.IntN(len(baseNodes))]
					// Base nodes are never removed (clients only
					// leave nodes they joined themselves), so every
					// update must succeed.
					if err := eng.Update(id, cmax.Scale(0.2+0.8*rng.Float64()), rng.IntN(4) == 0); err != nil {
						t.Errorf("client %d update %v: %v", c, id, err)
						return
					}
					updates.Add(1)
				case p < 0.95: // join
					id, err := eng.Join(cmax.Scale(0.3 + 0.7*rng.Float64()))
					if err != nil {
						t.Errorf("client %d join: %v", c, err)
						return
					}
					mine = append(mine, id)
					joins.Add(1)
				default: // leave (only nodes this client joined)
					if len(mine) == 0 {
						continue
					}
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := eng.Leave(id); err != nil {
						t.Errorf("client %d leave %v: %v", c, id, err)
						return
					}
					leaves.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	st := eng.Stats()
	t.Logf("stress: %d queries (%d cached), %d updates, %d joins, %d leaves; engine stats: %d queries, %d cache hits, %d errors",
		queries.Load(), hits.Load(), updates.Load(), joins.Load(), leaves.Load(),
		st.Queries, st.CacheHits, st.Errors)
	if st.Queries < queries.Load() {
		t.Fatalf("engine counted %d queries, clients issued %d", st.Queries, queries.Load())
	}
	// The engine must still be fully functional afterwards.
	resp, err := eng.Query(pidcan.QueryRequest{Demand: cmax.Scale(0.1), K: 5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) == 0 {
		t.Fatal("no candidates after stress run")
	}
	if got := st.TotalNodes; got != shards*12+int(st.Joins-st.Leaves) {
		// Snapshot totals may trail queued ops briefly; settle first.
		time.Sleep(50 * time.Millisecond)
		st = eng.Stats()
		if got = st.TotalNodes; got != shards*12+int(st.Joins-st.Leaves) {
			t.Fatalf("population %d, want %d (+%d joins -%d leaves)",
				got, shards*12, st.Joins, st.Leaves)
		}
	}
}

// TestStressCloseWhileBusy closes the engine under fire: in-flight
// operations must either complete or fail with ErrEngineClosed, and
// nothing may hang or race.
func TestStressCloseWhileBusy(t *testing.T) {
	eng, err := pidcan.NewEngine(pidcan.EngineConfig{
		Shards:        4,
		NodesPerShard: 8,
		Seed:          7,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cmax := eng.Config().CMax
	nodes := eng.Nodes()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 99))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if rng.IntN(2) == 0 {
					_, err = eng.Query(pidcan.QueryRequest{Demand: cmax.Scale(0.2), K: 2})
				} else {
					err = eng.Update(nodes[rng.IntN(len(nodes))], cmax.Scale(0.5), false)
				}
				if err != nil && !errors.Is(err, pidcan.ErrEngineClosed) {
					t.Errorf("client %d: unexpected error %v", c, err)
					return
				}
			}
		}(c)
	}
	time.Sleep(20 * time.Millisecond)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}

// TestStressScatterCloseUnderFire halts the shards while consistent
// scatter-gather queries are in flight: Close tears shards down one
// by one, so mid-scatter some legs land on halted shards and others
// on live ones. Every query must either return a (possibly partial)
// merge with at least one shard answering, or fail cleanly with
// ErrEngineClosed — never hang, never race (run with -race).
func TestStressScatterCloseUnderFire(t *testing.T) {
	const shards = 4
	eng, err := pidcan.NewEngine(pidcan.EngineConfig{
		Shards:        shards,
		NodesPerShard: 8,
		Seed:          19,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cmax := eng.Config().CMax
	for _, id := range eng.Nodes() {
		if err := eng.Update(id, cmax.Scale(0.6), true); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var partial, closedErrs atomic.Uint64
	stop := make(chan struct{})
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 0x5ca77e7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				scope := pidcan.ScopeAll
				if rng.IntN(4) == 0 {
					scope = pidcan.ScopeOne
				}
				resp, err := eng.Query(pidcan.QueryRequest{
					Demand:     cmax.Scale(0.2),
					K:          3,
					Consistent: true,
					Scope:      scope,
				})
				switch {
				case err == nil:
					if resp.ShardsQueried < 1 {
						t.Errorf("client %d: successful consistent query answered by %d shards", c, resp.ShardsQueried)
						return
					}
					if scope == pidcan.ScopeAll && resp.ShardsQueried < shards {
						partial.Add(1)
					}
				case errors.Is(err, pidcan.ErrEngineClosed):
					closedErrs.Add(1)
				default:
					t.Errorf("client %d: unexpected error %v", c, err)
					return
				}
			}
		}(c)
	}
	time.Sleep(20 * time.Millisecond)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	t.Logf("scatter close-under-fire: %d partial merges, %d ErrEngineClosed", partial.Load(), closedErrs.Load())
}
