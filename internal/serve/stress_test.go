package serve_test

// Stress test over the real thing: an Engine whose shards are
// genuine PID-CAN Clusters (wired by pidcan.NewEngine), hammered by
// concurrent clients issuing mixed Query/Update/Join/Leave traffic.
// Run it with -race; that is the whole point — it exercises the
// snapshot read path, the write queues and the query cache across
// shard goroutines at once.

import (
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pidcan"
	"pidcan/internal/vector"
)

func TestStressConcurrentMixedTraffic(t *testing.T) {
	const (
		shards  = 4
		clients = 32
		opsEach = 150
	)
	eng, err := pidcan.NewEngine(pidcan.EngineConfig{
		Shards:        shards,
		NodesPerShard: 12,
		Seed:          42,
		FlushInterval: 2 * time.Millisecond,
		CacheTTL:      5 * time.Millisecond,
		// The background rebalancer migrates nodes between shards
		// while clients hammer them — Update/Leave must chase moved
		// nodes through the forwarding table without ever failing.
		RebalanceInterval:  3 * time.Millisecond,
		RebalanceThreshold: 1.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	cmax := eng.Config().CMax
	baseNodes := eng.Nodes()
	if len(baseNodes) != shards*12 {
		t.Fatalf("population %d, want %d", len(baseNodes), shards*12)
	}
	for _, id := range baseNodes {
		if err := eng.Update(id, cmax.Scale(0.5), true); err != nil {
			t.Fatal(err)
		}
	}

	var (
		queries, hits, updates, joins, leaves atomic.Uint64
		wg                                    sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 0x57e55))
			var mine []pidcan.GlobalNodeID // nodes this client joined
			demand := func() vector.Vec {
				d := make(vector.Vec, cmax.Dim())
				for i := range d {
					d[i] = cmax[i] * rng.Float64() * 0.6
				}
				return d
			}
			for i := 0; i < opsEach; i++ {
				switch p := rng.Float64(); {
				case p < 0.55: // lock-free snapshot query
					resp, err := eng.Query(pidcan.QueryRequest{Demand: demand(), K: 3})
					if err != nil {
						t.Errorf("client %d query: %v", c, err)
						return
					}
					queries.Add(1)
					if resp.Cached {
						hits.Add(1)
					}
				case p < 0.65: // protocol-routed query
					if _, err := eng.Query(pidcan.QueryRequest{
						Demand: demand(), K: 2, Consistent: true,
					}); err != nil {
						t.Errorf("client %d consistent query: %v", c, err)
						return
					}
					queries.Add(1)
				case p < 0.85: // availability update
					id := baseNodes[rng.IntN(len(baseNodes))]
					// Base nodes are never removed (clients only
					// leave nodes they joined themselves), so every
					// update must succeed.
					if err := eng.Update(id, cmax.Scale(0.2+0.8*rng.Float64()), rng.IntN(4) == 0); err != nil {
						t.Errorf("client %d update %v: %v", c, id, err)
						return
					}
					updates.Add(1)
				case p < 0.95: // join
					id, err := eng.Join(cmax.Scale(0.3 + 0.7*rng.Float64()))
					if err != nil {
						t.Errorf("client %d join: %v", c, err)
						return
					}
					mine = append(mine, id)
					joins.Add(1)
				default: // leave (only nodes this client joined)
					if len(mine) == 0 {
						continue
					}
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := eng.Leave(id); err != nil {
						t.Errorf("client %d leave %v: %v", c, id, err)
						return
					}
					leaves.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	st := eng.Stats()
	t.Logf("stress: %d queries (%d cached), %d updates, %d joins, %d leaves; engine stats: %d queries, %d cache hits, %d migrations over %d rebalances, %d forwarded ids, %d errors",
		queries.Load(), hits.Load(), updates.Load(), joins.Load(), leaves.Load(),
		st.Queries, st.CacheHits, st.Migrations, st.Rebalances, st.ForwardedIDs, st.Errors)
	if st.Queries < queries.Load() {
		t.Fatalf("engine counted %d queries, clients issued %d", st.Queries, queries.Load())
	}
	// The engine must still be fully functional afterwards.
	resp, err := eng.Query(pidcan.QueryRequest{Demand: cmax.Scale(0.1), K: 5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) == 0 {
		t.Fatal("no candidates after stress run")
	}
	// Snapshot totals may trail queued ops briefly, and a node mid-
	// migration is visible on neither shard for a moment; poll until
	// the population settles.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st = eng.Stats()
		if st.TotalNodes == shards*12+int(st.Joins-st.Leaves) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("population %d, want %d (+%d joins -%d leaves)",
				st.TotalNodes, shards*12, st.Joins, st.Leaves)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStressCloseWhileBusy closes the engine under fire: in-flight
// operations must either complete or fail with ErrEngineClosed, and
// nothing may hang or race.
func TestStressCloseWhileBusy(t *testing.T) {
	eng, err := pidcan.NewEngine(pidcan.EngineConfig{
		Shards:        4,
		NodesPerShard: 8,
		Seed:          7,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cmax := eng.Config().CMax
	nodes := eng.Nodes()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 99))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch rng.IntN(5) {
				case 0, 1:
					_, err = eng.Query(pidcan.QueryRequest{Demand: cmax.Scale(0.2), K: 2})
				case 2, 3:
					err = eng.Update(nodes[rng.IntN(len(nodes))], cmax.Scale(0.5), false)
				default:
					// Migration leg: a two-shard write racing the
					// teardown must fail cleanly, never hang. Random
					// destinations can drain a shard toward empty;
					// refusing to move a last node (ErrLastNode) is
					// the correct outcome there.
					err = eng.Migrate(nodes[rng.IntN(len(nodes))], rng.IntN(4))
					if errors.Is(err, pidcan.ErrLastNode) {
						err = nil
					}
				}
				if err != nil && !errors.Is(err, pidcan.ErrEngineClosed) {
					t.Errorf("client %d: unexpected error %v", c, err)
					return
				}
			}
		}(c)
	}
	time.Sleep(20 * time.Millisecond)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}

// TestStressMigrateUnderWrites is the migrate-under-concurrent-
// writes race test: a migrator shuttles a set of hot nodes between
// shards while writers hammer exactly those nodes through their
// original ids and queriers read. Every update must land — writes
// racing a migration wait it out and retry against the node's new
// shard — and after the dust settles every hot node must still
// exist exactly once, reachable under its original identity. Run
// with -race; the forwarding table is the contended structure.
func TestStressMigrateUnderWrites(t *testing.T) {
	const (
		shards = 4
		hot    = 6
	)
	eng, err := pidcan.NewEngine(pidcan.EngineConfig{
		Shards:        shards,
		NodesPerShard: 8,
		Seed:          23,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cmax := eng.Config().CMax
	hotNodes := eng.Nodes()[:hot]
	for _, id := range eng.Nodes() {
		if err := eng.Update(id, cmax.Scale(0.5), true); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var moved, wrote atomic.Uint64
	// Migrator: every hot node keeps moving to the next shard. It is
	// the only mover, so it can track where each node lives and count
	// real moves (a same-shard Migrate is a no-op).
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur := make([]int, hot)
		for i, id := range hotNodes {
			cur[i] = id.Shard()
		}
		for round := 0; round < 12; round++ {
			for i, id := range hotNodes {
				target := (i + round) % shards
				if err := eng.Migrate(id, target); err != nil {
					t.Errorf("migrate %v round %d: %v", id, round, err)
					return
				}
				if target != cur[i] {
					moved.Add(1)
				}
				cur[i] = target
			}
		}
	}()
	// Writers: updates through the original ids must always land.
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 0x111a7e))
			for i := 0; i < 150; i++ {
				id := hotNodes[rng.IntN(hot)]
				if err := eng.Update(id, cmax.Scale(0.2+0.7*rng.Float64()), i%5 == 0); err != nil {
					t.Errorf("writer %d update %v: %v", c, id, err)
					return
				}
				wrote.Add(1)
			}
		}(c)
	}
	// Queriers keep the snapshot read path and cache in the mix.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := eng.Query(pidcan.QueryRequest{Demand: cmax.Scale(0.3), K: 3}); err != nil {
					t.Errorf("querier %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := eng.Stats()
	t.Logf("migrate stress: %d migrations, %d updates landed, %d forwarded ids, %d errors",
		moved.Load(), wrote.Load(), st.ForwardedIDs, st.Errors)
	if st.Migrations != moved.Load() {
		t.Fatalf("engine counted %d migrations, migrator did %d", st.Migrations, moved.Load())
	}
	if st.TotalNodes != shards*8 {
		t.Fatalf("population %d after migrations, want %d", st.TotalNodes, shards*8)
	}
	// Every hot node is still addressable by its original id, and
	// Nodes reports each exactly once under that id.
	counts := map[pidcan.GlobalNodeID]int{}
	for _, id := range eng.Nodes() {
		counts[id]++
	}
	for _, id := range hotNodes {
		if counts[id] != 1 {
			t.Fatalf("hot node %v appears %d times in Nodes()", id, counts[id])
		}
		if err := eng.Update(id, cmax.Scale(0.4), false); err != nil {
			t.Fatalf("hot node %v unreachable after the run: %v", id, err)
		}
	}
}

// TestStressScatterCloseUnderFire halts the shards while consistent
// scatter-gather queries are in flight: Close tears shards down one
// by one, so mid-scatter some legs land on halted shards and others
// on live ones. Every query must either return a (possibly partial)
// merge with at least one shard answering, or fail cleanly with
// ErrEngineClosed — never hang, never race (run with -race).
func TestStressScatterCloseUnderFire(t *testing.T) {
	const shards = 4
	eng, err := pidcan.NewEngine(pidcan.EngineConfig{
		Shards:        shards,
		NodesPerShard: 8,
		Seed:          19,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cmax := eng.Config().CMax
	for _, id := range eng.Nodes() {
		if err := eng.Update(id, cmax.Scale(0.6), true); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var partial, closedErrs atomic.Uint64
	stop := make(chan struct{})
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(c), 0x5ca77e7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				scope := pidcan.ScopeAll
				if rng.IntN(4) == 0 {
					scope = pidcan.ScopeOne
				}
				resp, err := eng.Query(pidcan.QueryRequest{
					Demand:     cmax.Scale(0.2),
					K:          3,
					Consistent: true,
					Scope:      scope,
				})
				switch {
				case err == nil:
					if resp.ShardsQueried < 1 {
						t.Errorf("client %d: successful consistent query answered by %d shards", c, resp.ShardsQueried)
						return
					}
					if scope == pidcan.ScopeAll && resp.ShardsQueried < shards {
						partial.Add(1)
					}
				case errors.Is(err, pidcan.ErrEngineClosed):
					closedErrs.Add(1)
				default:
					t.Errorf("client %d: unexpected error %v", c, err)
					return
				}
			}
		}(c)
	}
	time.Sleep(20 * time.Millisecond)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	t.Logf("scatter close-under-fire: %d partial merges, %d ErrEngineClosed", partial.Load(), closedErrs.Load())
}
