package wire_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"pidcan/internal/serve"
	"pidcan/internal/serve/wire"
)

// TestWireConcurrentConnections hammers one server from many
// concurrent connections — pipelined readers, synchronous writers and
// a connection-churn loop — while the engine keeps mutating. Run
// under -race in CI, it is the data-race net over the per-connection
// reuse discipline (every buffer is confined to its handler
// goroutine; only the counters are shared).
func TestWireConcurrentConnections(t *testing.T) {
	eng := newTestEngine(t, serve.Config{Shards: 2, NodesPerShard: 8, Seed: 23})
	srv, addr := startWire(t, eng)
	eng.SetWireStats(srv.Stats)

	dim := eng.Config().CMax.Dim()
	const (
		queriers = 6
		writers  = 2
		churners = 2
		perConn  = 300
		depth    = 32 // pipelined requests in flight per querier
	)
	var served atomic.Uint64
	var wg sync.WaitGroup

	// Pipelined queriers: split sender and reader across goroutines,
	// the deep-pipeline client pattern the protocol sanctions.
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			demand := make([]float64, dim)
			var rg sync.WaitGroup
			rg.Add(1)
			go func() {
				defer rg.Done()
				for i := 0; i < perConn; i++ {
					r, err := c.ReadResponse()
					if err != nil {
						t.Errorf("querier %d response %d: %v", g, i, err)
						return
					}
					if r.Errored {
						t.Errorf("querier %d response %d: %v", g, i, &r.Err)
						return
					}
					served.Add(1)
				}
			}()
			for i := 0; i < perConn; i++ {
				c.EnqueueQuery(&wire.Query{Demand: demand, K: 2})
				if i%depth == depth-1 || i == perConn-1 {
					if err := c.Flush(); err != nil {
						t.Errorf("querier %d flush: %v", g, err)
						break
					}
				}
			}
			rg.Wait()
		}(g)
	}

	// Synchronous writers churning node availability.
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			nodes := eng.Nodes()
			avail := make([]float64, dim)
			for i := 0; i < perConn; i++ {
				for k := range avail {
					avail[k] = float64(1 + (g+i+k)%5)
				}
				node := uint64(nodes[(g*perConn+i)%len(nodes)])
				if err := c.Update(node, avail, false); err != nil {
					t.Errorf("writer %d update %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}

	// Churners: join, query, leave on short-lived connections.
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			avail := make([]float64, dim)
			for k := range avail {
				avail[k] = 1
			}
			for i := 0; i < 20; i++ {
				c, err := wire.Dial(addr)
				if err != nil {
					t.Error(err)
					return
				}
				id, err := c.Join(g%2, avail)
				if err != nil {
					t.Errorf("churner %d join: %v", g, err)
					c.Close()
					return
				}
				var res wire.QueryResult
				if err := c.Query(&wire.Query{Demand: make([]float64, dim), K: 1}, &res); err != nil {
					t.Errorf("churner %d query: %v", g, err)
				}
				if err := c.Leave(id); err != nil {
					t.Errorf("churner %d leave: %v", g, err)
				}
				c.Close()
			}
		}(g)
	}

	wg.Wait()
	if got := served.Load(); got != queriers*perConn {
		t.Fatalf("served %d pipelined queries, want %d", got, queriers*perConn)
	}
	st := srv.Stats()
	if st.Requests < queriers*perConn {
		t.Fatalf("server request counter %d below the served floor", st.Requests)
	}
}
