package wire

import (
	"encoding/binary"
	"math"

	"pidcan/internal/serve"
)

// Query is a wire query request. Demand is reused across decodes:
// DecodeQuery truncates and appends in place, so a long-lived Query
// on the hot path settles at one backing array and zero allocations.
type Query struct {
	Demand     []float64
	K          int
	Consistent bool
	NoCache    bool
	// ScopeOne routes a consistent query through a single shard
	// (serve.ScopeOne); the default is the scatter-gather ScopeAll.
	ScopeOne bool
}

// AppendQuery appends a query-request frame.
func AppendQuery(dst []byte, reqID uint32, epoch uint64, q *Query) []byte {
	dst, off := beginFrame(dst, OpQuery, 0, reqID, epoch)
	dst = appendQueryPayload(dst, q)
	sealFrame(dst, off)
	return dst
}

// AppendFedQuery appends a fed-query-request frame: OpQuery's
// payload prefixed with the sender's federation-map version, so the
// answering primary can flag a router routing on a stale map.
func AppendFedQuery(dst []byte, reqID uint32, epoch, mapVer uint64, q *Query) []byte {
	dst, off := beginFrame(dst, OpFedQuery, 0, reqID, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, mapVer)
	dst = appendQueryPayload(dst, q)
	sealFrame(dst, off)
	return dst
}

func appendQueryPayload(dst []byte, q *Query) []byte {
	var f byte
	if q.Consistent {
		f |= qfConsistent
	}
	if q.NoCache {
		f |= qfNoCache
	}
	if q.ScopeOne {
		f |= qfScopeOne
	}
	dst = append(dst, f)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(q.K))
	dst = appendVec(dst, q.Demand)
	return dst
}

// DecodeQuery decodes a query-request payload into q, reusing
// q.Demand's backing array.
func DecodeQuery(payload []byte, q *Query) error {
	d := dec{buf: payload}
	return decodeQueryPayload(&d, q)
}

// DecodeFedQuery decodes a fed-query-request payload into q,
// returning the sender's federation-map version.
func DecodeFedQuery(payload []byte, q *Query) (uint64, error) {
	d := dec{buf: payload}
	mapVer := d.u64()
	if d.err != nil {
		return 0, d.err
	}
	return mapVer, decodeQueryPayload(&d, q)
}

func decodeQueryPayload(d *dec, q *Query) error {
	f := d.u8()
	q.Consistent = f&qfConsistent != 0
	q.NoCache = f&qfNoCache != 0
	q.ScopeOne = f&qfScopeOne != 0
	q.K = int(d.u16())
	var err error
	q.Demand, err = decodeVec(d, q.Demand)
	if err != nil {
		return err
	}
	if d.err != nil || len(d.buf) != 0 {
		return errTruncated
	}
	return nil
}

// Candidate is one qualified node of a decoded wire query response.
// Avail aliases the QueryResult's shared backing array.
type Candidate struct {
	Node    uint64
	Surplus float64
	Avail   []float64
}

// QueryResult is a decoded query response. Candidates and the
// availability backing array are reused across decodes.
type QueryResult struct {
	Cached        bool
	ShardsQueried int
	Hops          int
	HopsMax       int
	// MapStale (fed queries only): the answering primary holds a
	// newer federation map than the request was stamped with.
	MapStale   bool
	Candidates []Candidate

	avail []float64 // shared backing for the candidates' Avail
}

// AppendQueryResponse appends a query-response frame encoding the
// engine's response. Allocation-free: candidates are written
// straight from the engine's slice.
func AppendQueryResponse(dst []byte, reqID uint32, epoch uint64, resp *serve.QueryResponse) []byte {
	return appendQueryResponse(dst, OpQuery, 0, reqID, epoch, resp)
}

// AppendFedQueryResponse is AppendQueryResponse under OpFedQuery,
// optionally flagging that the sender's federation map is stale.
func AppendFedQueryResponse(dst []byte, reqID uint32, epoch uint64, resp *serve.QueryResponse, stale bool) []byte {
	var extra byte
	if stale {
		extra = rfMapStale
	}
	return appendQueryResponse(dst, OpFedQuery, extra, reqID, epoch, resp)
}

func appendQueryResponse(dst []byte, op, extra byte, reqID uint32, epoch uint64, resp *serve.QueryResponse) []byte {
	dst, off := beginFrame(dst, op, FlagResponse, reqID, epoch)
	f := extra
	if resp.Cached {
		f |= rfCached
	}
	dst = append(dst, f)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(resp.ShardsQueried))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(resp.Hops))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(resp.HopsMax))
	dim := 0
	if len(resp.Candidates) > 0 {
		dim = len(resp.Candidates[0].Avail)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(dim))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(resp.Candidates)))
	for i := range resp.Candidates {
		c := &resp.Candidates[i]
		dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Node))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Surplus))
		for _, v := range c.Avail {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	sealFrame(dst, off)
	return dst
}

// DecodeQueryResponse decodes a query-response payload into r,
// reusing r's candidate slice and availability backing array.
func DecodeQueryResponse(payload []byte, r *QueryResult) error {
	d := dec{buf: payload}
	f := d.u8()
	r.Cached = f&rfCached != 0
	r.MapStale = f&rfMapStale != 0
	r.ShardsQueried = int(d.u16())
	r.Hops = int(d.u32())
	r.HopsMax = int(d.u32())
	dim := int(d.u16())
	count := int(d.u16())
	if d.err != nil {
		return d.err
	}
	// Bound before allocating: the frame cap bounds the payload, and
	// the claimed geometry must fit in what remains.
	if len(d.buf) != count*(16+8*dim) {
		return errTruncated
	}
	r.Candidates = r.Candidates[:0]
	r.avail = r.avail[:0]
	for i := 0; i < count; i++ {
		node := d.u64()
		surplus := math.Float64frombits(d.u64())
		start := len(r.avail)
		for k := 0; k < dim; k++ {
			r.avail = append(r.avail, math.Float64frombits(d.u64()))
		}
		r.Candidates = append(r.Candidates, Candidate{
			Node:    node,
			Surplus: surplus,
			Avail:   r.avail[start : start+dim],
		})
	}
	if d.err != nil || len(d.buf) != 0 {
		return errTruncated
	}
	// An append that grew the backing array left earlier candidates
	// aliasing the old one; re-slice them all against the final
	// array. (Settles after the first decode at steady dim/count.)
	for i := range r.Candidates {
		r.Candidates[i].Avail = r.avail[i*dim : (i+1)*dim]
	}
	return nil
}

// Update is a wire update request; Avail is reused across decodes.
type Update struct {
	Node     uint64
	Announce bool
	Avail    []float64
}

// AppendUpdate appends an update-request frame.
func AppendUpdate(dst []byte, reqID uint32, epoch uint64, node uint64, avail []float64, announce bool) []byte {
	dst, off := beginFrame(dst, OpUpdate, 0, reqID, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, node)
	var a byte
	if announce {
		a = 1
	}
	dst = append(dst, a)
	dst = appendVec(dst, avail)
	sealFrame(dst, off)
	return dst
}

// DecodeUpdate decodes an update-request payload into u.
func DecodeUpdate(payload []byte, u *Update) error {
	d := dec{buf: payload}
	u.Node = d.u64()
	u.Announce = d.u8() == 1
	var err error
	u.Avail, err = decodeVec(&d, u.Avail)
	if err != nil {
		return err
	}
	if d.err != nil || len(d.buf) != 0 {
		return errTruncated
	}
	return nil
}

// Join is a wire join request. Shard < 0 leaves placement to the
// server's round-robin; Avail nil joins without an initial
// availability.
type Join struct {
	Shard int
	Avail []float64
}

// AppendJoin appends a join-request frame.
func AppendJoin(dst []byte, reqID uint32, epoch uint64, shard int, avail []float64) []byte {
	dst, off := beginFrame(dst, OpJoin, 0, reqID, epoch)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(shard)))
	dst = appendVec(dst, avail)
	sealFrame(dst, off)
	return dst
}

// DecodeJoin decodes a join-request payload into j. A zero-length
// vector decodes as nil Avail (resource dimensionality is always
// >= 1, so the encoding is unambiguous).
func DecodeJoin(payload []byte, j *Join) error {
	d := dec{buf: payload}
	j.Shard = int(int32(d.u32()))
	var err error
	j.Avail, err = decodeVec(&d, j.Avail)
	if err != nil {
		return err
	}
	if len(j.Avail) == 0 {
		j.Avail = nil
	}
	if d.err != nil || len(d.buf) != 0 {
		return errTruncated
	}
	return nil
}

// AppendJoinResponse appends a join response carrying the assigned
// global node id.
func AppendJoinResponse(dst []byte, reqID uint32, epoch uint64, node uint64) []byte {
	dst, off := beginFrame(dst, OpJoin, FlagResponse, reqID, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, node)
	sealFrame(dst, off)
	return dst
}

// DecodeJoinResponse decodes a join response's node id.
func DecodeJoinResponse(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, errTruncated
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// AppendLeave appends a leave-request frame.
func AppendLeave(dst []byte, reqID uint32, epoch uint64, node uint64) []byte {
	dst, off := beginFrame(dst, OpLeave, 0, reqID, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, node)
	sealFrame(dst, off)
	return dst
}

// DecodeLeave decodes a leave-request payload.
func DecodeLeave(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, errTruncated
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// AppendAck appends an empty-payload success response (update,
// leave).
func AppendAck(dst []byte, op byte, reqID uint32, epoch uint64) []byte {
	dst, off := beginFrame(dst, op, FlagResponse, reqID, epoch)
	sealFrame(dst, off)
	return dst
}

// AppendStatsRequest appends a stats request (empty payload).
func AppendStatsRequest(dst []byte, reqID uint32, epoch uint64) []byte {
	dst, off := beginFrame(dst, OpStats, 0, reqID, epoch)
	sealFrame(dst, off)
	return dst
}

// AppendStatsResponse appends a stats response; the payload is the
// engine's Stats as JSON (stats is the debug op — the one place the
// wire protocol carries JSON).
func AppendStatsResponse(dst []byte, reqID uint32, epoch uint64, statsJSON []byte) []byte {
	dst, off := beginFrame(dst, OpStats, FlagResponse, reqID, epoch)
	dst = append(dst, statsJSON...)
	sealFrame(dst, off)
	return dst
}

// AppendFedTake appends a fed-take request: remove the node,
// returning its availability so the caller can re-home it in another
// process. Node ids are in the server's namespace.
func AppendFedTake(dst []byte, reqID uint32, epoch uint64, node uint64) []byte {
	dst, off := beginFrame(dst, OpFedTake, 0, reqID, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, node)
	sealFrame(dst, off)
	return dst
}

// DecodeFedTake decodes a fed-take request payload.
func DecodeFedTake(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, errTruncated
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// AppendFedTakeResponse appends a fed-take response: a flag byte
// (tfDegraded: applied but not durable) plus the taken node's last
// published availability (zero-length for a node that never
// published one).
func AppendFedTakeResponse(dst []byte, reqID uint32, epoch uint64, avail []float64, degraded bool) []byte {
	dst, off := beginFrame(dst, OpFedTake, FlagResponse, reqID, epoch)
	var f byte
	if degraded {
		f = tfDegraded
	}
	dst = append(dst, f)
	dst = appendVec(dst, avail)
	sealFrame(dst, off)
	return dst
}

// DecodeFedTakeResponse decodes a fed-take response into prev's
// backing array, returning the availability (nil when the node never
// published one) and whether the take was durability-degraded.
func DecodeFedTakeResponse(payload []byte, prev []float64) ([]float64, bool, error) {
	d := dec{buf: payload}
	f := d.u8()
	avail, err := decodeVec(&d, prev)
	if err != nil {
		return nil, false, err
	}
	if d.err != nil || len(d.buf) != 0 {
		return nil, false, errTruncated
	}
	if len(avail) == 0 {
		avail = nil
	}
	return avail, f&tfDegraded != 0, nil
}

// Summary is a member's compact per-dimension availability summary,
// piggybacked on OpFedMap responses: the maximum availability the
// member holds in each dimension (computed over every record, expiry
// ignored — a safe upper bound that only over-states what the member
// can offer), the record count behind it, and the member's write
// epoch when it was computed. A router prunes a scatter leg when the
// summary proves the member cannot hold any record dominating the
// query's demand.
type Summary struct {
	Seq uint64
	Pop uint32
	Max []float64
}

// sfSummary flags a map-exchange payload carrying a Summary tail.
const sfSummary byte = 1 << 0

// AppendFedMapRequest appends a map-exchange request: u64 version +
// u32 blob length + an opaque encoded federation map, and a flag
// byte reserved for a summary tail (requests carry none — routers
// hold no population). Version 0 with an empty blob is a pure pull —
// the server returns the newest map it has seen without storing
// anything.
func AppendFedMapRequest(dst []byte, reqID uint32, epoch, ver uint64, blob []byte) []byte {
	return appendFedMap(dst, 0, reqID, epoch, ver, blob, nil)
}

// AppendFedMapResponse appends a map-exchange response: the newest
// version + blob the server holds (0 and empty when it has none),
// plus the answering member's availability summary when it has one.
func AppendFedMapResponse(dst []byte, reqID uint32, epoch, ver uint64, blob []byte, sum *Summary) []byte {
	return appendFedMap(dst, FlagResponse, reqID, epoch, ver, blob, sum)
}

func appendFedMap(dst []byte, flags byte, reqID uint32, epoch, ver uint64, blob []byte, sum *Summary) []byte {
	dst, off := beginFrame(dst, OpFedMap, flags, reqID, epoch)
	dst = binary.LittleEndian.AppendUint64(dst, ver)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blob)))
	dst = append(dst, blob...)
	if sum == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, sfSummary)
		dst = binary.LittleEndian.AppendUint64(dst, sum.Seq)
		dst = binary.LittleEndian.AppendUint32(dst, sum.Pop)
		dst = appendVec(dst, sum.Max)
	}
	sealFrame(dst, off)
	return dst
}

// DecodeFedMap decodes a map-exchange payload (request or response).
// The returned blob aliases the payload. When the payload carries a
// summary tail and sum is non-nil, sum receives it (reusing sum.Max's
// backing array) and the bool reports its presence; a nil sum skips
// the tail.
func DecodeFedMap(payload []byte, sum *Summary) (uint64, []byte, bool, error) {
	d := dec{buf: payload}
	ver := d.u64()
	blen := int(d.u32())
	if d.err != nil || len(d.buf) < blen {
		return 0, nil, false, errTruncated
	}
	blob := d.buf[:blen]
	d.buf = d.buf[blen:]
	f := d.u8()
	if d.err != nil {
		return 0, nil, false, errTruncated
	}
	if f&sfSummary == 0 {
		if len(d.buf) != 0 {
			return 0, nil, false, errTruncated
		}
		return ver, blob, false, nil
	}
	if sum == nil {
		sum = &Summary{}
	}
	sum.Seq = d.u64()
	sum.Pop = d.u32()
	var err error
	sum.Max, err = decodeVec(&d, sum.Max)
	if err != nil {
		return 0, nil, false, err
	}
	if d.err != nil || len(d.buf) != 0 {
		return 0, nil, false, errTruncated
	}
	return ver, blob, true, nil
}

// appendVec encodes a float vector as u16 dim + dim float64 bits.
func appendVec(dst []byte, v []float64) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v)))
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// decodeVec decodes a vector into dst's backing array.
func decodeVec(d *dec, dst []float64) ([]float64, error) {
	dim := int(d.u16())
	if d.err != nil {
		return dst[:0], d.err
	}
	if len(d.buf) < 8*dim {
		d.err = errTruncated
		return dst[:0], d.err
	}
	dst = dst[:0]
	for k := 0; k < dim; k++ {
		dst = append(dst, math.Float64frombits(d.u64()))
	}
	return dst, nil
}
