package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client speaks the wire protocol over one persistent TCP
// connection. It is deliberately not safe for arbitrary concurrent
// use — one Client per goroutine is the model — with exactly one
// sanctioned split: because the protocol answers strictly in request
// order, ONE goroutine may Enqueue*/Flush while ONE other goroutine
// runs ReadResponse, which is how the pipelined load generator keeps
// hundreds of requests in flight per connection. The sync wrappers
// (Query, Update, Join, Leave, Stats) are one-request-one-response
// and use both halves.
//
// All decode state is reused across responses: the hot query path
// allocates nothing after the first call.
type Client struct {
	c      net.Conn
	out    []byte
	nextID uint32

	// WriteEpoch, when non-zero, is stamped into every write frame
	// (update/join/leave) for server-side fencing: set it to the
	// epoch learned from responses to guarantee writes never land on
	// a primary from another timeline.
	WriteEpoch uint64

	// read half
	br      *reader
	hdr     [HeaderSize]byte
	payload []byte
	resp    Response
}

// Response is one decoded server response, reused across
// ReadResponse calls.
type Response struct {
	Op    byte
	ReqID uint32
	// Epoch is the server's replication epoch at response time.
	Epoch uint64
	// Errored reports a FlagError response; Err holds it. The Query,
	// Node and Stats fields are only meaningful when !Errored.
	Errored bool
	Err     Error
	// Query is the decoded result of an OpQuery response.
	Query QueryResult
	// Node is the id assigned by an OpJoin response.
	Node uint64
	// Stats is the raw JSON of an OpStats response (aliases an
	// internal buffer; valid until the next ReadResponse).
	Stats []byte
}

// Dial connects a wire client.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{
		c:       c,
		out:     make([]byte, 0, 16<<10),
		br:      newReader(c, 64<<10),
		payload: make([]byte, 0, 4096),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

func (c *Client) reqID() uint32 {
	c.nextID++
	return c.nextID
}

// EnqueueQuery appends a query request to the send buffer without
// flushing; returns its request id.
func (c *Client) EnqueueQuery(q *Query) uint32 {
	id := c.reqID()
	c.out = AppendQuery(c.out, id, 0, q)
	return id
}

// EnqueueUpdate appends an update request (stamped with WriteEpoch).
func (c *Client) EnqueueUpdate(node uint64, avail []float64, announce bool) uint32 {
	id := c.reqID()
	c.out = AppendUpdate(c.out, id, c.WriteEpoch, node, avail, announce)
	return id
}

// EnqueueJoin appends a join request; shard < 0 leaves placement to
// the server.
func (c *Client) EnqueueJoin(shard int, avail []float64) uint32 {
	id := c.reqID()
	c.out = AppendJoin(c.out, id, c.WriteEpoch, shard, avail)
	return id
}

// EnqueueLeave appends a leave request.
func (c *Client) EnqueueLeave(node uint64) uint32 {
	id := c.reqID()
	c.out = AppendLeave(c.out, id, c.WriteEpoch, node)
	return id
}

// EnqueueStats appends a stats request.
func (c *Client) EnqueueStats() uint32 {
	id := c.reqID()
	c.out = AppendStatsRequest(c.out, id, 0)
	return id
}

// Flush writes every enqueued request in one syscall.
func (c *Client) Flush() error {
	if len(c.out) == 0 {
		return nil
	}
	_, err := c.c.Write(c.out)
	c.out = c.out[:0]
	return err
}

// ReadResponse reads and decodes the next response into the
// returned *Response (owned by the client, valid until the next
// call). Responses arrive in request order; an Errored response is
// a server-side rejection, not a read error.
func (c *Client) ReadResponse() (*Response, error) {
	if _, err := c.br.readFull(c.hdr[:]); err != nil {
		return nil, err
	}
	h, err := ParseHeader(c.hdr[:])
	if err != nil {
		return nil, err
	}
	if h.Flags&FlagResponse == 0 {
		return nil, fmt.Errorf("wire: server sent a request frame")
	}
	if cap(c.payload) < int(h.PLen) {
		c.payload = make([]byte, h.PLen)
	}
	c.payload = c.payload[:h.PLen]
	if _, err := c.br.readFull(c.payload); err != nil {
		return nil, err
	}
	if !VerifyFrame(c.hdr[:], c.payload) {
		return nil, errBadCRC
	}
	r := &c.resp
	r.Op, r.ReqID, r.Epoch = h.Op, h.ReqID, h.Epoch
	r.Errored = h.Flags&FlagError != 0
	r.Stats = nil
	if r.Errored {
		return r, DecodeError(c.payload, &r.Err)
	}
	switch h.Op {
	case OpQuery:
		return r, DecodeQueryResponse(c.payload, &r.Query)
	case OpJoin:
		r.Node, err = DecodeJoinResponse(c.payload)
		return r, err
	case OpStats:
		r.Stats = c.payload
	}
	return r, nil
}

// errOf converts an errored response into an *Error (allocating —
// error path only).
func errOf(r *Response) error {
	if !r.Errored {
		return nil
	}
	e := r.Err
	return &e
}

// Query runs one synchronous query, decoding into res (reused by
// the caller across calls).
func (c *Client) Query(q *Query, res *QueryResult) error {
	c.EnqueueQuery(q)
	if err := c.Flush(); err != nil {
		return err
	}
	r, err := c.ReadResponse()
	if err != nil {
		return err
	}
	if err := errOf(r); err != nil {
		return err
	}
	*res, r.Query = r.Query, *res // hand the decoded buffers to the caller
	return nil
}

// Update publishes a node's availability synchronously.
func (c *Client) Update(node uint64, avail []float64, announce bool) error {
	c.EnqueueUpdate(node, avail, announce)
	if err := c.Flush(); err != nil {
		return err
	}
	r, err := c.ReadResponse()
	if err != nil {
		return err
	}
	return errOf(r)
}

// Join adds a node (shard < 0: server round-robin) and returns its
// global id.
func (c *Client) Join(shard int, avail []float64) (uint64, error) {
	c.EnqueueJoin(shard, avail)
	if err := c.Flush(); err != nil {
		return 0, err
	}
	r, err := c.ReadResponse()
	if err != nil {
		return 0, err
	}
	if err := errOf(r); err != nil {
		return 0, err
	}
	return r.Node, nil
}

// Leave removes a node.
func (c *Client) Leave(node uint64) error {
	c.EnqueueLeave(node)
	if err := c.Flush(); err != nil {
		return err
	}
	r, err := c.ReadResponse()
	if err != nil {
		return err
	}
	return errOf(r)
}

// Stats fetches the engine's Stats, decoded from the debug op's
// JSON payload into v (pass a *serve.Stats or any compatible
// struct), or returns the raw JSON when v is nil.
func (c *Client) Stats(v any) ([]byte, error) {
	c.EnqueueStats()
	if err := c.Flush(); err != nil {
		return nil, err
	}
	r, err := c.ReadResponse()
	if err != nil {
		return nil, err
	}
	if err := errOf(r); err != nil {
		return nil, err
	}
	if v != nil {
		if err := json.Unmarshal(r.Stats, v); err != nil {
			return nil, err
		}
	}
	return r.Stats, nil
}

// UDPClient is the single-packet counterpart of Client: one query
// per datagram against a Server.ServeUDP socket. Safe for one
// goroutine.
type UDPClient struct {
	c       *net.UDPConn
	out     []byte
	nextID  uint32
	buf     []byte
	res     QueryResult
	Timeout time.Duration // per-exchange deadline (default 1s)
}

// DialUDP connects a UDP query client.
func DialUDP(addr string) (*UDPClient, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	c, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	return &UDPClient{c: c, buf: make([]byte, maxUDPFrame), Timeout: time.Second}, nil
}

// Close closes the socket.
func (u *UDPClient) Close() error { return u.c.Close() }

// Query sends one query datagram and decodes the response into res.
// No retransmit: a lost packet surfaces as an i/o timeout, and the
// caller decides (queries are idempotent — resending is always
// safe).
func (u *UDPClient) Query(q *Query, res *QueryResult) error {
	u.nextID++
	u.out = AppendQuery(u.out[:0], u.nextID, 0, q)
	if _, err := u.c.Write(u.out); err != nil {
		return err
	}
	u.c.SetReadDeadline(time.Now().Add(u.Timeout))
	for {
		n, err := u.c.Read(u.buf)
		if err != nil {
			return err
		}
		if n < HeaderSize {
			continue
		}
		h, err := ParseHeader(u.buf[:HeaderSize])
		if err != nil || h.Flags&FlagResponse == 0 || int(h.PLen) != n-HeaderSize {
			continue
		}
		if h.ReqID != u.nextID {
			continue // stale response from an earlier timed-out exchange
		}
		payload := u.buf[HeaderSize:n]
		if !VerifyFrame(u.buf[:HeaderSize], payload) {
			return errBadCRC
		}
		if h.Flags&FlagError != 0 {
			e := &Error{}
			if err := DecodeError(payload, e); err != nil {
				return err
			}
			return e
		}
		if err := DecodeQueryResponse(payload, &u.res); err != nil {
			return err
		}
		*res, u.res = u.res, *res
		return nil
	}
}
