package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Client speaks the wire protocol over one persistent TCP
// connection. It is deliberately not safe for arbitrary concurrent
// use — one Client per goroutine is the model — with exactly one
// sanctioned split: because the protocol answers strictly in request
// order, ONE goroutine may Enqueue*/Flush while ONE other goroutine
// runs ReadResponse, which is how the pipelined load generator keeps
// hundreds of requests in flight per connection. The sync wrappers
// (Query, Update, Join, Leave, Stats) are one-request-one-response
// and use both halves.
//
// All decode state is reused across responses: the hot query path
// allocates nothing after the first call.
type Client struct {
	c      net.Conn
	out    []byte
	nextID uint32
	// pendingOut counts requests enqueued but not yet flushed
	// (sender-side only; folded into sent at Flush).
	pendingOut int

	// WriteEpoch, when non-zero, is stamped into every write frame
	// (update/join/leave) for server-side fencing: set it to the
	// epoch learned from responses to guarantee writes never land on
	// a primary from another timeline.
	WriteEpoch uint64

	// DrainTimeout bounds how long Close waits for the reader to
	// consume responses still owed to flushed requests (default
	// 500ms; <= 0 uses the default).
	DrainTimeout time.Duration

	// sent counts flushed requests, rcvd complete responses; their
	// difference is what Close must wait out so pipelined readers
	// are not cut off mid-stream. closed gates ReadResponse's error
	// translation to ErrClosed.
	sent   atomic.Uint64
	rcvd   atomic.Uint64
	closed atomic.Bool

	// read half
	br      *reader
	hdr     [HeaderSize]byte
	payload []byte
	resp    Response
}

// Response is one decoded server response, reused across
// ReadResponse calls.
type Response struct {
	Op    byte
	ReqID uint32
	// Epoch is the server's replication epoch at response time.
	Epoch uint64
	// Errored reports a FlagError response; Err holds it. The Query,
	// Node and Stats fields are only meaningful when !Errored.
	Errored bool
	Err     Error
	// Query is the decoded result of an OpQuery response.
	Query QueryResult
	// Node is the id assigned by an OpJoin response.
	Node uint64
	// Stats is the raw JSON of an OpStats response (aliases an
	// internal buffer; valid until the next ReadResponse).
	Stats []byte
	// TakeAvail and TakeDegraded are an OpFedTake response: the
	// taken node's availability (reused across decodes) and whether
	// the take applied without reaching the log (ErrWAL).
	TakeAvail    []float64
	TakeDegraded bool
	// MapVer and MapBlob are an OpFedMap response: the newest
	// federation map the server holds. MapBlob aliases an internal
	// buffer; valid until the next ReadResponse.
	MapVer  uint64
	MapBlob []byte
	// SumOK reports that an OpFedMap response carried the member's
	// availability summary; Summary holds it (Summary.Max reuses an
	// internal buffer; valid until the next ReadResponse).
	SumOK   bool
	Summary Summary
}

// Dial connects a wire client.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{
		c:       c,
		out:     make([]byte, 0, 16<<10),
		br:      newReader(c, 64<<10),
		payload: make([]byte, 0, 4096),
	}
}

// ErrClosed is returned by ReadResponse once Close has been called
// and every owed response has been consumed — a blocked pipelined
// reader unblocks with it instead of a raw connection error.
var ErrClosed = errors.New("wire: client closed")

// Close shuts the client down. With pipelined reads in flight (the
// one sanctioned concurrent split: one enqueuer, one reader), it
// first drains: responses already owed to flushed requests keep
// flowing to the reader goroutine until caught up or DrainTimeout
// expires, so queued responses are not dropped silently. Only then
// does the connection close, and any reader still blocked unblocks
// with ErrClosed. A second Close returns ErrClosed.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	deadline := time.Now().Add(c.drainTimeout())
	for c.rcvd.Load() < c.sent.Load() && time.Now().Before(deadline) {
		time.Sleep(500 * time.Microsecond)
	}
	return c.c.Close()
}

func (c *Client) drainTimeout() time.Duration {
	if c.DrainTimeout > 0 {
		return c.DrainTimeout
	}
	return 500 * time.Millisecond
}

func (c *Client) reqID() uint32 {
	c.nextID++
	c.pendingOut++
	return c.nextID
}

// EnqueueQuery appends a query request to the send buffer without
// flushing; returns its request id.
func (c *Client) EnqueueQuery(q *Query) uint32 {
	id := c.reqID()
	c.out = AppendQuery(c.out, id, 0, q)
	return id
}

// EnqueueUpdate appends an update request (stamped with WriteEpoch).
func (c *Client) EnqueueUpdate(node uint64, avail []float64, announce bool) uint32 {
	id := c.reqID()
	c.out = AppendUpdate(c.out, id, c.WriteEpoch, node, avail, announce)
	return id
}

// EnqueueJoin appends a join request; shard < 0 leaves placement to
// the server.
func (c *Client) EnqueueJoin(shard int, avail []float64) uint32 {
	id := c.reqID()
	c.out = AppendJoin(c.out, id, c.WriteEpoch, shard, avail)
	return id
}

// EnqueueLeave appends a leave request.
func (c *Client) EnqueueLeave(node uint64) uint32 {
	id := c.reqID()
	c.out = AppendLeave(c.out, id, c.WriteEpoch, node)
	return id
}

// EnqueueStats appends a stats request.
func (c *Client) EnqueueStats() uint32 {
	id := c.reqID()
	c.out = AppendStatsRequest(c.out, id, 0)
	return id
}

// Flush writes every enqueued request in one syscall.
func (c *Client) Flush() error {
	if len(c.out) == 0 {
		return nil
	}
	// Count before the write: a partially-written burst may still be
	// answered, and over-counting only makes Close wait out its
	// drain deadline — under-counting would cut a reader off.
	c.sent.Add(uint64(c.pendingOut))
	c.pendingOut = 0
	_, err := c.c.Write(c.out)
	c.out = c.out[:0]
	return err
}

// ReadResponse reads and decodes the next response into the
// returned *Response (owned by the client, valid until the next
// call). Responses arrive in request order; an Errored response is
// a server-side rejection, not a read error. After Close, owed
// responses remain readable until the drain deadline; once the
// stream is cut, ReadResponse returns ErrClosed instead of the raw
// connection error.
func (c *Client) ReadResponse() (*Response, error) {
	if c.closed.Load() && c.rcvd.Load() >= c.sent.Load() {
		return nil, ErrClosed
	}
	if _, err := c.br.readFull(c.hdr[:]); err != nil {
		return nil, c.readErr(err)
	}
	h, err := ParseHeader(c.hdr[:])
	if err != nil {
		return nil, err
	}
	if h.Flags&FlagResponse == 0 {
		return nil, fmt.Errorf("wire: server sent a request frame")
	}
	if cap(c.payload) < int(h.PLen) {
		c.payload = make([]byte, h.PLen)
	}
	c.payload = c.payload[:h.PLen]
	if _, err := c.br.readFull(c.payload); err != nil {
		return nil, c.readErr(err)
	}
	if !VerifyFrame(c.hdr[:], c.payload) {
		return nil, errBadCRC
	}
	c.rcvd.Add(1)
	r := &c.resp
	r.Op, r.ReqID, r.Epoch = h.Op, h.ReqID, h.Epoch
	r.Errored = h.Flags&FlagError != 0
	r.Stats, r.MapBlob = nil, nil
	if r.Errored {
		return r, DecodeError(c.payload, &r.Err)
	}
	switch h.Op {
	case OpQuery, OpFedQuery:
		return r, DecodeQueryResponse(c.payload, &r.Query)
	case OpJoin:
		r.Node, err = DecodeJoinResponse(c.payload)
		return r, err
	case OpStats:
		r.Stats = c.payload
	case OpFedTake:
		r.TakeAvail, r.TakeDegraded, err = DecodeFedTakeResponse(c.payload, r.TakeAvail)
		return r, err
	case OpFedMap:
		r.MapVer, r.MapBlob, r.SumOK, err = DecodeFedMap(c.payload, &r.Summary)
		return r, err
	}
	return r, nil
}

// readErr translates transport errors after Close into ErrClosed so
// a reader blocked in ReadResponse when the drain deadline cuts the
// connection sees a clean shutdown, not "use of closed connection".
func (c *Client) readErr(err error) error {
	if c.closed.Load() {
		return ErrClosed
	}
	return err
}

// LastEpoch returns the replication epoch stamped on the most
// recently read response (0 before the first response). Rejections
// carry it too, so a caller fenced by a promoted primary can learn
// the new epoch from the rejection itself.
func (c *Client) LastEpoch() uint64 { return c.resp.Epoch }

// errOf converts an errored response into an *Error (allocating —
// error path only).
func errOf(r *Response) error {
	if !r.Errored {
		return nil
	}
	e := r.Err
	return &e
}

// Query runs one synchronous query, decoding into res (reused by
// the caller across calls).
func (c *Client) Query(q *Query, res *QueryResult) error {
	c.EnqueueQuery(q)
	if err := c.Flush(); err != nil {
		return err
	}
	r, err := c.ReadResponse()
	if err != nil {
		return err
	}
	if err := errOf(r); err != nil {
		return err
	}
	*res, r.Query = r.Query, *res // hand the decoded buffers to the caller
	return nil
}

// redirectTarget reports the primary address named by a CodeReadOnly
// rejection, the one redirect the sync write wrappers auto-follow.
func redirectTarget(err error) (string, bool) {
	var we *Error
	if errors.As(err, &we) && we.Code == CodeReadOnly && we.Primary != "" {
		return we.Primary, true
	}
	return "", false
}

// followOnce retries op once against the primary a CodeReadOnly
// rejection names (a follower telling us who to write to). Bounded:
// one hop. The original connection is kept until the primary
// actually answers — a dead or unreachable primary restores it and
// surfaces the original rejection, so the client stays usable for
// reads against the follower.
func (c *Client) followOnce(err error, op func() error) error {
	addr, ok := redirectTarget(err)
	if !ok {
		return err
	}
	nc, derr := net.Dial("tcp", addr)
	if derr != nil {
		return err
	}
	// Sync-wrapper context: the old connection is response-drained
	// (one request, one response), so it can be parked and restored.
	oldC, oldBr := c.c, c.br
	c.c, c.br = nc, newReader(nc, 64<<10)
	c.out, c.pendingOut = c.out[:0], 0
	rerr := op()
	var we *Error
	if rerr != nil && !errors.As(rerr, &we) {
		// Transport failure before the primary answered: abandon the
		// redirect (its flushed request will never be answered —
		// settle the drain ledger) and keep the follower connection.
		nc.Close()
		c.c, c.br = oldC, oldBr
		c.out, c.pendingOut = c.out[:0], 0
		c.rcvd.Store(c.sent.Load())
		return err
	}
	oldC.Close()
	return rerr
}

// Update publishes a node's availability synchronously. A follower's
// read-only rejection naming its primary is auto-followed once.
func (c *Client) Update(node uint64, avail []float64, announce bool) error {
	op := func() error {
		c.EnqueueUpdate(node, avail, announce)
		if err := c.Flush(); err != nil {
			return err
		}
		r, err := c.ReadResponse()
		if err != nil {
			return err
		}
		return errOf(r)
	}
	if err := op(); err != nil {
		return c.followOnce(err, op)
	}
	return nil
}

// Join adds a node (shard < 0: server round-robin) and returns its
// global id, auto-following a read-only redirect once.
func (c *Client) Join(shard int, avail []float64) (uint64, error) {
	var node uint64
	op := func() error {
		c.EnqueueJoin(shard, avail)
		if err := c.Flush(); err != nil {
			return err
		}
		r, err := c.ReadResponse()
		if err != nil {
			return err
		}
		if err := errOf(r); err != nil {
			return err
		}
		node = r.Node
		return nil
	}
	err := op()
	if err != nil {
		err = c.followOnce(err, op)
	}
	return node, err
}

// Leave removes a node, auto-following a read-only redirect once.
func (c *Client) Leave(node uint64) error {
	op := func() error {
		c.EnqueueLeave(node)
		if err := c.Flush(); err != nil {
			return err
		}
		r, err := c.ReadResponse()
		if err != nil {
			return err
		}
		return errOf(r)
	}
	if err := op(); err != nil {
		return c.followOnce(err, op)
	}
	return nil
}

// EnqueueFedQuery appends a federation query stamped with the
// router's map version; the response's MapStale bit tells the router
// its map is behind this member's.
func (c *Client) EnqueueFedQuery(mapVer uint64, q *Query) uint32 {
	id := c.reqID()
	c.out = AppendFedQuery(c.out, id, 0, mapVer, q)
	return id
}

// EnqueueFedTake appends a fed-take request (stamped with
// WriteEpoch).
func (c *Client) EnqueueFedTake(node uint64) uint32 {
	id := c.reqID()
	c.out = AppendFedTake(c.out, id, c.WriteEpoch, node)
	return id
}

// EnqueueMapExchange appends a map-exchange request (blob may be nil
// to only pull).
func (c *Client) EnqueueMapExchange(ver uint64, blob []byte) uint32 {
	id := c.reqID()
	c.out = AppendFedMapRequest(c.out, id, 0, ver, blob)
	return id
}

// FedQuery runs one synchronous federation query, decoding into res.
// Returns the member's replication epoch (res.MapStale reports a
// newer federation map held server-side).
func (c *Client) FedQuery(mapVer uint64, q *Query, res *QueryResult) (uint64, error) {
	c.EnqueueFedQuery(mapVer, q)
	if err := c.Flush(); err != nil {
		return 0, err
	}
	r, err := c.ReadResponse()
	if err != nil {
		return 0, err
	}
	if err := errOf(r); err != nil {
		return r.Epoch, err
	}
	*res, r.Query = r.Query, *res
	return r.Epoch, nil
}

// TakeNode atomically removes a node for cross-process migration,
// returning its last availability and whether the removal applied
// without durable logging (degraded). Auto-follows a read-only
// redirect once, like the other write wrappers.
func (c *Client) TakeNode(node uint64) (avail []float64, degraded bool, err error) {
	op := func() error {
		c.EnqueueFedTake(node)
		if err := c.Flush(); err != nil {
			return err
		}
		r, err := c.ReadResponse()
		if err != nil {
			return err
		}
		if err := errOf(r); err != nil {
			return err
		}
		avail = append(avail[:0], r.TakeAvail...)
		degraded = r.TakeDegraded
		return nil
	}
	err = op()
	if err != nil {
		err = c.followOnce(err, op)
	}
	return avail, degraded, err
}

// MapExchange offers the server a federation map at version ver
// (blob may be nil to only pull) and returns the newest version and
// blob the server holds, plus its availability summary when it sent
// one. The returned blob and summary alias internal buffers — valid
// until the next ReadResponse.
func (c *Client) MapExchange(ver uint64, blob []byte) (uint64, []byte, *Summary, error) {
	c.EnqueueMapExchange(ver, blob)
	if err := c.Flush(); err != nil {
		return 0, nil, nil, err
	}
	r, err := c.ReadResponse()
	if err != nil {
		return 0, nil, nil, err
	}
	if err := errOf(r); err != nil {
		return 0, nil, nil, err
	}
	var sum *Summary
	if r.SumOK {
		sum = &r.Summary
	}
	return r.MapVer, r.MapBlob, sum, nil
}

// Stats fetches the engine's Stats, decoded from the debug op's
// JSON payload into v (pass a *serve.Stats or any compatible
// struct), or returns the raw JSON when v is nil.
func (c *Client) Stats(v any) ([]byte, error) {
	c.EnqueueStats()
	if err := c.Flush(); err != nil {
		return nil, err
	}
	r, err := c.ReadResponse()
	if err != nil {
		return nil, err
	}
	if err := errOf(r); err != nil {
		return nil, err
	}
	if v != nil {
		if err := json.Unmarshal(r.Stats, v); err != nil {
			return nil, err
		}
	}
	return r.Stats, nil
}

// UDPClient is the single-packet counterpart of Client: one query
// per datagram against a Server.ServeUDP socket. Safe for one
// goroutine.
type UDPClient struct {
	c       *net.UDPConn
	out     []byte
	nextID  uint32
	buf     []byte
	res     QueryResult
	Timeout time.Duration // per-exchange deadline (default 1s)
}

// DialUDP connects a UDP query client.
func DialUDP(addr string) (*UDPClient, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	c, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	return &UDPClient{c: c, buf: make([]byte, maxUDPFrame), Timeout: time.Second}, nil
}

// Close closes the socket.
func (u *UDPClient) Close() error { return u.c.Close() }

// Query sends one query datagram and decodes the response into res.
// No retransmit: a lost packet surfaces as an i/o timeout, and the
// caller decides (queries are idempotent — resending is always
// safe).
func (u *UDPClient) Query(q *Query, res *QueryResult) error {
	u.nextID++
	u.out = AppendQuery(u.out[:0], u.nextID, 0, q)
	if _, err := u.c.Write(u.out); err != nil {
		return err
	}
	u.c.SetReadDeadline(time.Now().Add(u.Timeout))
	for {
		n, err := u.c.Read(u.buf)
		if err != nil {
			return err
		}
		if n < HeaderSize {
			continue
		}
		h, err := ParseHeader(u.buf[:HeaderSize])
		if err != nil || h.Flags&FlagResponse == 0 || int(h.PLen) != n-HeaderSize {
			continue
		}
		if h.ReqID != u.nextID {
			continue // stale response from an earlier timed-out exchange
		}
		payload := u.buf[HeaderSize:n]
		if !VerifyFrame(u.buf[:HeaderSize], payload) {
			return errBadCRC
		}
		if h.Flags&FlagError != 0 {
			e := &Error{}
			if err := DecodeError(payload, e); err != nil {
				return err
			}
			return e
		}
		if err := DecodeQueryResponse(payload, &u.res); err != nil {
			return err
		}
		*res, u.res = u.res, *res
		return nil
	}
}
