package wire_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"pidcan"
	"pidcan/internal/serve"
	"pidcan/internal/serve/wire"
)

// serveFollower builds a read-only replication follower whose write
// rejections name primaryAddr.
func serveFollower(t *testing.T, primaryAddr string) (*serve.Engine, error) {
	t.Helper()
	eng, err := pidcan.NewEngine(serve.Config{
		Shards: 1, NodesPerShard: 4, Seed: 5,
		DataDir: t.TempDir(), Follower: true, PrimaryAddr: primaryAddr,
	})
	if err != nil {
		return nil, err
	}
	t.Cleanup(func() { eng.Close() })
	return eng, nil
}

// deadListener accepts connections and resets them immediately — a
// crashed-but-still-bound primary.
func deadListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	return ln.Addr().String()
}

// TestClientCloseDrainsPipelinedReads: Close during in-flight
// pipelined reads must not drop queued responses silently or leak
// the reader — every response owed to a flushed request stays
// readable through the drain, and the reader's next read after the
// stream is cut returns ErrClosed, not a raw connection error.
func TestClientCloseDrainsPipelinedReads(t *testing.T) {
	eng := newTestEngine(t, serve.Config{Shards: 2, NodesPerShard: 8, Seed: 3})
	_, addr := startWire(t, eng)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	const inflight = 64
	dim := eng.Config().CMax.Dim()
	q := wire.Query{Demand: make([]float64, dim), K: 1}
	for i := 0; i < inflight; i++ {
		c.EnqueueQuery(&q)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		got    int
		tail   error
		doneAt time.Time
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		for i := 0; i < inflight; i++ {
			if _, err := c.ReadResponse(); err != nil {
				o.tail = err
				break
			}
			o.got++
		}
		if o.tail == nil {
			// One more read past the owed responses: the blocked
			// waiter must unblock with ErrClosed.
			_, o.tail = c.ReadResponse()
		}
		o.doneAt = time.Now()
		done <- o
	}()

	// Close races the reader: the drain must hand it all 64 queued
	// responses before cutting the connection.
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	o := <-done
	if o.got != inflight {
		t.Fatalf("reader got %d of %d pipelined responses across Close (tail err: %v)",
			o.got, inflight, o.tail)
	}
	if !errors.Is(o.tail, wire.ErrClosed) {
		t.Fatalf("read past the drained stream: %v, want ErrClosed", o.tail)
	}
	if err := c.Close(); !errors.Is(err, wire.ErrClosed) {
		t.Fatalf("second close: %v, want ErrClosed", err)
	}
}

// TestClientCloseUnblocksIdleReader: a reader blocked on an empty
// stream (nothing owed) unblocks promptly with ErrClosed when Close
// cuts the connection — no drain wait applies with nothing to drain.
func TestClientCloseUnblocksIdleReader(t *testing.T) {
	eng := newTestEngine(t, serve.Config{Shards: 1, NodesPerShard: 4, Seed: 4})
	_, addr := startWire(t, eng)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.ReadResponse()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the reader block on the socket
	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, wire.ErrClosed) {
			t.Fatalf("blocked reader got %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader still blocked 2s after Close")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("close with nothing owed took %v", waited)
	}
}

// TestClientFollowsReadOnlyRedirect: a sync write rejected by a
// follower with CodeReadOnly naming its primary is retried once
// against that primary — and succeeds there.
func TestClientFollowsReadOnlyRedirect(t *testing.T) {
	// The primary serves writes on a real loopback listener...
	primary := newTestEngine(t, serve.Config{Shards: 1, NodesPerShard: 4, Seed: 5})
	_, primaryAddr := startWire(t, primary)

	// ...and the follower names that address in its rejections.
	follower, err := serveFollower(t, primaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	_, followerAddr := startWire(t, follower)

	c := dialWire(t, followerAddr)
	dim := primary.Config().CMax.Dim()
	avail := make([]float64, dim)
	for i := range avail {
		avail[i] = 1
	}
	node := uint64(primary.Nodes()[0])
	if err := c.Update(node, avail, false); err != nil {
		t.Fatalf("update through follower should follow the redirect: %v", err)
	}
	// The write landed on the primary, and the client now speaks to
	// it directly.
	var res wire.QueryResult
	if err := c.Query(&wire.Query{Demand: make([]float64, dim), K: 1}, &res); err != nil {
		t.Fatalf("query after redirect: %v", err)
	}
	if _, err := c.Join(-1, avail); err != nil {
		t.Fatalf("join after redirect: %v", err)
	}
}

// TestClientRedirectToDeadPrimaryKeepsFollower: when the primary a
// rejection names is unreachable, the original rejection surfaces
// and the client stays usable for reads against the follower.
func TestClientRedirectToDeadPrimaryKeepsFollower(t *testing.T) {
	// A listener that accepts and immediately resets stands in for a
	// crashed primary.
	deadAddr := deadListener(t)
	follower, err := serveFollower(t, deadAddr)
	if err != nil {
		t.Fatal(err)
	}
	_, followerAddr := startWire(t, follower)

	c := dialWire(t, followerAddr)
	dim := follower.Config().CMax.Dim()
	err = c.Update(0, make([]float64, dim), false)
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeReadOnly {
		t.Fatalf("update with dead primary: %v, want the original CodeReadOnly", err)
	}
	var res wire.QueryResult
	if err := c.Query(&wire.Query{Demand: make([]float64, dim), K: 1}, &res); err != nil {
		t.Fatalf("follower reads must survive a failed redirect: %v", err)
	}
}
