// Package wire is the binary serving edge of the engine: a compact
// framed request/response protocol served over persistent TCP
// connections (and optionally single-packet UDP for queries), built
// to close the gap between the engine's in-process throughput
// (~1.3M cached queries/sec) and what a JSON/HTTP front-end can
// push through a socket (~12k/sec).
//
// The frame discipline is the op-log's (internal/serve/wal) lifted
// onto the request path: fixed-width little-endian header carrying a
// magic byte, protocol version, op code, request id, replication
// epoch and an IEEE CRC32 that covers header and payload both, so a
// single flipped bit anywhere in a frame is rejected. The header is
// also a cheap stateless packet filter: magic, version, op range and
// payload bound are checked before a single byte of payload is read
// or allocated — garbage closes the connection without costing an
// allocation, the mas-bandwidth/udpx gateway discipline.
//
//	offset size field
//	0      1    magic (0xC9)
//	1      1    version (1)
//	2      1    op (query=1 update=2 join=3 leave=4 stats=5)
//	3      1    flags (1=response, 2=error)
//	4      4    request id (echoed verbatim in the response)
//	8      8    epoch (requests: expected epoch, 0 = don't care;
//	            responses: the server's current epoch)
//	16     4    payload length
//	20     4    CRC32-IEEE over bytes [0,20) + payload
//
// Concurrency model: the server runs one accept goroutine per core
// and one handler goroutine per connection. A handler decodes and
// serves requests strictly in order, appending responses to a
// per-connection buffer that is written in one syscall as soon as
// the read side would block — so pipelined clients amortize both the
// syscall and the flush across whole bursts, which is what carries
// a single core past the 200k queries/sec mark. Responses therefore
// come back in request order; the client's FIFO pipeline relies on
// it.
//
// Writes are epoch-fenced like replication: a request stamped with a
// newer epoch than the engine's seals a deposed primary on contact
// (Engine.Fence), a stale-epoch write is refused with CodeFenced,
// and a read-only follower refuses writes with CodeReadOnly naming
// its primary and a retry-after hint — the wire mirror of the HTTP
// 503 + Retry-After surface.
//
// The hot query path allocates nothing in encode or decode (asserted
// by test): requests decode into caller-owned reusable structs,
// responses are appended to caller-owned buffers. JSON stays the
// debug surface (OpStats returns the engine's Stats as JSON; the
// HTTP handler keeps serving next to the wire listener).
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"
)

// Frame header layout.
const (
	// Magic is the first byte of every frame; anything else is not
	// this protocol and closes the connection unread.
	Magic = 0xC9
	// Version is the protocol version; bumped on incompatible frame
	// or payload changes.
	Version = 1
	// HeaderSize is the fixed frame header length.
	HeaderSize = 24
	// crcOff is where the CRC field starts; the CRC covers
	// [0,crcOff) of the header plus the whole payload.
	crcOff = 20
)

// Op codes. The values are wire format; do not renumber.
const (
	OpQuery  byte = 1
	OpUpdate byte = 2
	OpJoin   byte = 3
	OpLeave  byte = 4
	OpStats  byte = 5
	// Federation ops (PR 7). OpFedQuery is OpQuery prefixed with the
	// sender's federation-map version, so the answering primary can
	// flag a stale router. OpFedTake removes a node and returns its
	// availability for re-homing in another process. OpFedMap
	// exchanges federation maps: the server keeps the newest version
	// it has seen and returns it.
	OpFedQuery byte = 6
	OpFedTake  byte = 7
	OpFedMap   byte = 8
	opMax      byte = 8
)

// Header flags.
const (
	// FlagResponse marks a frame traveling server -> client.
	FlagResponse byte = 1 << 0
	// FlagError marks a response whose payload is an Error, not the
	// op's result.
	FlagError byte = 1 << 1

	flagsMask = FlagResponse | FlagError
)

// MaxPayload bounds any frame's payload; a header claiming more is
// rejected by the stateless filter before allocation. Generous for
// stats JSON and large candidate sets, tiny next to the repl
// checkpoint cap.
const MaxPayload = 1 << 20

// Error codes carried by FlagError responses. They mirror the HTTP
// handler's status mapping so both edges speak the same rejection
// vocabulary.
const (
	// CodeBadRequest: malformed payload, bad demand vector or scope.
	CodeBadRequest uint16 = 1
	// CodeNoShard: the op addressed a shard the engine lacks.
	CodeNoShard uint16 = 2
	// CodeRejected: the backend refused the op (e.g. unknown node).
	CodeRejected uint16 = 3
	// CodeClosed: the engine is shut down.
	CodeClosed uint16 = 4
	// CodeReadOnly: write on a replication follower; Error.Primary
	// names where writes go and Error.RetryAfter when to retry.
	CodeReadOnly uint16 = 5
	// CodeFenced: write on a deposed primary, or a write frame whose
	// epoch does not match the engine's.
	CodeFenced uint16 = 6
	// CodeWAL: the write applied in memory but its op-log append
	// failed — acknowledged, not durable.
	CodeWAL uint16 = 7
	// CodeScatterTimeout: consistent scatter deadline expired with no
	// shard leg answered.
	CodeScatterTimeout uint16 = 8
	// CodeNotReady: no engine is mounted behind the listener yet (a
	// follower still bootstrapping its mirror).
	CodeNotReady uint16 = 9
)

// Query op flags (first payload byte of an OpQuery request).
const (
	qfConsistent byte = 1 << 0
	qfNoCache    byte = 1 << 1
	qfScopeOne   byte = 1 << 2
)

// Query response flags.
const (
	rfCached byte = 1 << 0
	// rfMapStale (OpFedQuery responses only): the answering primary
	// holds a newer federation map than the version stamped on the
	// request — the router should pull the map and re-plan.
	rfMapStale byte = 1 << 1
)

// Fed-take response flags.
const (
	// tfDegraded: the take applied but its log record did not make
	// it to disk (ErrWAL) — the availability is valid, the caller
	// decides whether to proceed.
	tfDegraded byte = 1 << 0
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// Header is a parsed frame header.
type Header struct {
	Op    byte
	Flags byte
	ReqID uint32
	Epoch uint64
	PLen  uint32
	crc   uint32
}

// FilterHeader is the stateless packet filter: it validates a raw
// header's magic, version, op code, flag bits and payload bound
// without touching anything beyond the 24 header bytes and without
// allocating. It is the first thing both the TCP read loop and the
// UDP fast path run; a frame failing it is dropped (TCP: the
// connection closes — after garbage the stream cannot be reframed).
func FilterHeader(hdr []byte) error {
	if len(hdr) < HeaderSize {
		return errShortHeader
	}
	if hdr[0] != Magic {
		return errBadMagic
	}
	if hdr[1] != Version {
		return errBadVersion
	}
	if op := hdr[2]; op == 0 || op > opMax {
		return errBadOp
	}
	if hdr[3]&^flagsMask != 0 {
		return errBadFlags
	}
	if plen := binary.LittleEndian.Uint32(hdr[16:]); plen > MaxPayload {
		return errOversize
	}
	return nil
}

// Filter errors (allocated once; the filter itself allocates
// nothing).
var (
	errShortHeader = fmt.Errorf("wire: short header")
	errBadMagic    = fmt.Errorf("wire: bad magic byte")
	errBadVersion  = fmt.Errorf("wire: unsupported protocol version")
	errBadOp       = fmt.Errorf("wire: unknown op code")
	errBadFlags    = fmt.Errorf("wire: invalid flag bits")
	errOversize    = fmt.Errorf("wire: payload exceeds cap")
	errBadCRC      = fmt.Errorf("wire: frame checksum mismatch")
	errTruncated   = fmt.Errorf("wire: truncated payload")
)

// ParseHeader filters and decodes a raw header.
func ParseHeader(hdr []byte) (Header, error) {
	if err := FilterHeader(hdr); err != nil {
		return Header{}, err
	}
	return Header{
		Op:    hdr[2],
		Flags: hdr[3],
		ReqID: binary.LittleEndian.Uint32(hdr[4:]),
		Epoch: binary.LittleEndian.Uint64(hdr[8:]),
		PLen:  binary.LittleEndian.Uint32(hdr[16:]),
		crc:   binary.LittleEndian.Uint32(hdr[20:]),
	}, nil
}

// VerifyFrame checks the frame CRC over the raw header's first 20
// bytes plus the payload. Allocation-free.
func VerifyFrame(hdr, payload []byte) bool {
	if len(hdr) < HeaderSize {
		return false
	}
	crc := crc32.Update(crc32.Checksum(hdr[:crcOff], crcTable), crcTable, payload)
	return crc == binary.LittleEndian.Uint32(hdr[crcOff:])
}

// beginFrame appends a frame header with plen and crc left zero;
// sealFrame fills them once the payload is appended. off is where
// the frame starts in the returned buffer.
func beginFrame(dst []byte, op, flags byte, reqID uint32, epoch uint64) ([]byte, int) {
	off := len(dst)
	dst = append(dst,
		Magic, Version, op, flags,
		0, 0, 0, 0, // reqID
		0, 0, 0, 0, 0, 0, 0, 0, // epoch
		0, 0, 0, 0, // plen
		0, 0, 0, 0, // crc
	)
	binary.LittleEndian.PutUint32(dst[off+4:], reqID)
	binary.LittleEndian.PutUint64(dst[off+8:], epoch)
	return dst, off
}

// sealFrame finalizes the frame beginning at off: everything past
// its header is the payload.
func sealFrame(buf []byte, off int) {
	payload := buf[off+HeaderSize:]
	binary.LittleEndian.PutUint32(buf[off+16:], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum(buf[off:off+crcOff], crcTable), crcTable, payload)
	binary.LittleEndian.PutUint32(buf[off+crcOff:], crc)
}

// Error is the decoded payload of a FlagError response.
type Error struct {
	// Code is one of the Code* constants.
	Code uint16
	// RetryAfter is the server's retry hint (read-only followers and
	// fenced primaries); zero means none.
	RetryAfter time.Duration
	// Primary is the address writes should go to (read-only
	// followers that know their primary).
	Primary string
	// Msg is the server's human-readable error string.
	Msg string
}

func (e *Error) Error() string {
	s := fmt.Sprintf("wire: server error %d: %s", e.Code, e.Msg)
	if e.Primary != "" {
		s += " (primary " + e.Primary + ")"
	}
	return s
}

// AppendError appends an error-response frame for request h.
func AppendError(dst []byte, op byte, reqID uint32, epoch uint64, code uint16, retryAfter time.Duration, primary, msg string) []byte {
	dst, off := beginFrame(dst, op, FlagResponse|FlagError, reqID, epoch)
	dst = binary.LittleEndian.AppendUint16(dst, code)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(retryAfter/time.Millisecond))
	dst = appendString(dst, primary)
	dst = appendString(dst, msg)
	sealFrame(dst, off)
	return dst
}

// DecodeError decodes an error payload into e (strings allocate;
// this is the cold path by definition).
func DecodeError(payload []byte, e *Error) error {
	d := dec{buf: payload}
	e.Code = d.u16()
	e.RetryAfter = time.Duration(d.u32()) * time.Millisecond
	e.Primary = string(d.str())
	e.Msg = string(d.str())
	if d.err != nil || len(d.buf) != 0 {
		return errTruncated
	}
	return nil
}

func appendString(dst []byte, s string) []byte {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// dec is a little-endian payload reader; failed reads poison it (the
// wal/repl decoding discipline).
type dec struct {
	buf []byte
	err error
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.err = errTruncated
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil || len(d.buf) < 2 {
		d.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.err = errTruncated
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *dec) str() []byte {
	n := int(d.u16())
	if d.err != nil || len(d.buf) < n {
		d.err = errTruncated
		return nil
	}
	v := d.buf[:n]
	d.buf = d.buf[n:]
	return v
}
