package wire_test

import (
	"testing"

	"pidcan/internal/serve"
	"pidcan/internal/serve/wire"
)

// BenchmarkQueryCodec measures the pure codec cost of one query
// exchange — encode request, filter+parse+verify, decode request,
// encode response, decode response — with no socket in the way. Run
// with -benchmem: the whole path reports 0 allocs/op steady-state
// (TestQueryCodecZeroAlloc asserts it hard).
func BenchmarkQueryCodec(b *testing.B) {
	q := wire.Query{Demand: []float64{300, 50, 500, 80, 2}, K: 3}
	resp := serve.QueryResponse{
		ShardsQueried: 4,
		Candidates: []serve.Candidate{
			{Node: 1, Surplus: 1.5, Avail: []float64{1, 2, 3, 4, 5}},
			{Node: 2, Surplus: 2.5, Avail: []float64{5, 4, 3, 2, 1}},
			{Node: 3, Surplus: 3.5, Avail: []float64{2, 2, 2, 2, 2}},
		},
	}
	buf := make([]byte, 0, 4096)
	var gotQ wire.Query
	var gotR wire.QueryResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendQuery(buf[:0], uint32(i), 1, &q)
		hdr, err := wire.ParseHeader(buf[:wire.HeaderSize])
		if err != nil {
			b.Fatal(err)
		}
		if !wire.VerifyFrame(buf[:wire.HeaderSize], buf[wire.HeaderSize:]) {
			b.Fatal("frame failed verification")
		}
		if err := wire.DecodeQuery(buf[wire.HeaderSize:], &gotQ); err != nil {
			b.Fatal(err)
		}
		_ = hdr
		buf = wire.AppendQueryResponse(buf[:0], uint32(i), 1, &resp)
		if err := wire.DecodeQueryResponse(buf[wire.HeaderSize:], &gotR); err != nil {
			b.Fatal(err)
		}
	}
}
