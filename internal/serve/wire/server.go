package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/vector"
)

// ServerConfig tunes a wire Server. Zero fields take the documented
// defaults.
type ServerConfig struct {
	// Acceptors is the number of concurrent accept goroutines on the
	// TCP listener — the connection-per-core edge (default
	// GOMAXPROCS). Each accepted connection is then owned by one
	// handler goroutine for its lifetime.
	Acceptors int
	// ReadBuffer sizes each connection's read buffer; deep pipelines
	// drain whole request bursts from it per syscall (default 64 KiB).
	ReadBuffer int
	// IdleTimeout closes a connection with no complete request for
	// this long (default 5m; <= 0 disables).
	IdleTimeout time.Duration
	// RetryAfter is the retry hint stamped into CodeReadOnly and
	// CodeFenced rejections (default 1s).
	RetryAfter time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Acceptors <= 0 {
		c.Acceptors = runtime.GOMAXPROCS(0)
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 64 << 10
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server serves the wire protocol over persistent TCP connections
// (Serve) and optionally single-packet UDP queries (ServeUDP). The
// service — an *serve.Engine or a federation router — is resolved
// through a getter on every request so a follower re-bootstrap can
// swap engines under a live listener (nil = not ready, requests fail
// with CodeNotReady).
type Server struct {
	cfg    ServerConfig
	engine func() serve.Service

	conns    atomic.Int64
	requests atomic.Uint64
	rejected atomic.Uint64
	udpReqs  atomic.Uint64

	// The newest federation map seen on this edge (OpFedMap). The
	// server stores it content-agnostically — version-compare and
	// echo — so a still-bootstrapping process can already take map
	// pushes and stale-version detection needs one atomic load on
	// the fed-query path.
	fedVer  atomic.Uint64
	fedMu   sync.Mutex
	fedBlob []byte

	closed atomic.Bool
	mu     sync.Mutex
	lns    []net.Listener
	ucs    []*net.UDPConn
	live   map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer builds a wire server over the service getter. Attach it
// to an engine's Stats with serve.Engine.SetWireStats(s.Stats).
func NewServer(engine func() serve.Service, cfg ServerConfig) *Server {
	return &Server{
		cfg:    cfg.withDefaults(),
		engine: engine,
		live:   map[net.Conn]struct{}{},
	}
}

// Stats returns the server's gauge set (the feed behind the
// engine's wire_* stats fields).
func (s *Server) Stats() serve.WireStats {
	return serve.WireStats{
		Conns:       int(s.conns.Load()),
		Requests:    s.requests.Load(),
		Rejected:    s.rejected.Load(),
		UDPRequests: s.udpReqs.Load(),
	}
}

// Serve accepts connections on ln until Close, running
// cfg.Acceptors concurrent accept loops. It blocks; run it on its
// own goroutine next to the HTTP listener.
func (s *Server) Serve(ln net.Listener) error {
	if s.closed.Load() {
		return errServerClosed
	}
	s.mu.Lock()
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	var wg sync.WaitGroup
	errc := make(chan error, s.cfg.Acceptors)
	for i := 0; i < s.cfg.Acceptors; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c, err := ln.Accept()
				if err != nil {
					if !s.closed.Load() {
						errc <- err
					}
					return
				}
				s.wg.Add(1)
				go s.handleConn(c)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

var errServerClosed = errors.New("wire: server closed")

// Close stops the listeners and closes every live connection.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return errServerClosed
	}
	s.mu.Lock()
	for _, ln := range s.lns {
		ln.Close()
	}
	for _, uc := range s.ucs {
		uc.Close()
	}
	for c := range s.live {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// track registers a live connection for Close teardown; the returned
// func unregisters it.
func (s *Server) track(c net.Conn) (ok bool, untrack func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return false, nil
	}
	s.live[c] = struct{}{}
	return true, func() {
		s.mu.Lock()
		delete(s.live, c)
		s.mu.Unlock()
	}
}

// connState is the per-connection scratch every request reuses: the
// hot path decodes into and encodes out of these buffers without
// allocating.
type connState struct {
	payload []byte
	out     []byte
	q       Query
	u       Update
	j       Join
	demand  vector.Vec // aliases q.Demand/u.Avail per request
}

// flushThreshold caps how much response data buffers before an
// early write, bounding memory under pathological pipelines.
const flushThreshold = 1 << 20

// handleConn owns one connection: it reads frames, serves them in
// order, and appends responses to an output buffer written in one
// syscall whenever the read side has no buffered request left — so a
// pipelined burst costs one read and one write syscall, not one per
// request.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	ok, untrack := s.track(c)
	if !ok {
		c.Close()
		return
	}
	defer untrack()
	defer c.Close()
	s.conns.Add(1)
	defer s.conns.Add(-1)

	br := newReader(c, s.cfg.ReadBuffer)
	st := &connState{
		payload: make([]byte, 0, 4096),
		out:     make([]byte, 0, 64<<10),
	}
	var hdr [HeaderSize]byte
	for {
		// Flush pending responses before blocking on the next read:
		// the client is owed everything we have finished.
		if br.buffered() == 0 && len(st.out) > 0 {
			if _, err := c.Write(st.out); err != nil {
				return
			}
			st.out = st.out[:0]
		}
		if s.cfg.IdleTimeout > 0 && br.buffered() == 0 {
			c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		if _, err := br.readFull(hdr[:]); err != nil {
			return // EOF, timeout or peer reset: the connection is done
		}
		// Stateless filter first: garbage is rejected before any
		// payload byte is read or allocated, and the connection is
		// closed — after unframed junk the stream cannot be trusted.
		h, err := ParseHeader(hdr[:])
		if err != nil || h.Flags != 0 {
			s.rejected.Add(1)
			return
		}
		if cap(st.payload) < int(h.PLen) {
			st.payload = make([]byte, h.PLen)
		}
		st.payload = st.payload[:h.PLen]
		if _, err := br.readFull(st.payload); err != nil {
			return
		}
		if !VerifyFrame(hdr[:], st.payload) {
			s.rejected.Add(1)
			return
		}
		s.requests.Add(1)
		st.out = s.handle(st.out, h, st.payload, st)
		if len(st.out) >= flushThreshold {
			if _, err := c.Write(st.out); err != nil {
				return
			}
			st.out = st.out[:0]
		}
	}
}

// handle serves one verified request frame, appending the response
// to out.
func (s *Server) handle(out []byte, h Header, payload []byte, st *connState) []byte {
	eng := s.engine()
	var epoch uint64
	if eng != nil {
		epoch = eng.Epoch()
	}
	if h.Op == OpFedMap {
		// Map exchange is engine-independent (a follower still
		// bootstrapping its mirror can already take map pushes):
		// store the sender's map if newer, echo the newest held —
		// with this member's availability summary piggybacked, so
		// the exchange that already propagates the map doubles as
		// the routers' demand-region-pruning feed.
		ver, blob, _, err := DecodeFedMap(payload, nil)
		if err != nil {
			return AppendError(out, h.Op, h.ReqID, epoch, CodeBadRequest, 0, "", err.Error())
		}
		var sum *Summary
		if az, ok := eng.(serve.AvailSummarizer); ok {
			if max, pop, seq, sok := az.AvailSummary(); sok {
				sum = &Summary{Seq: seq, Pop: uint32(pop), Max: max}
			}
		}
		s.fedMu.Lock()
		if ver > s.fedVer.Load() {
			s.fedBlob = append(s.fedBlob[:0], blob...)
			s.fedVer.Store(ver)
		}
		out = AppendFedMapResponse(out, h.ReqID, epoch, s.fedVer.Load(), s.fedBlob, sum)
		s.fedMu.Unlock()
		return out
	}
	if eng == nil {
		return AppendError(out, h.Op, h.ReqID, 0, CodeNotReady, s.cfg.RetryAfter, "",
			"engine not ready (follower still bootstrapping)")
	}
	switch h.Op {
	case OpQuery:
		if err := DecodeQuery(payload, &st.q); err != nil {
			return AppendError(out, h.Op, h.ReqID, epoch, CodeBadRequest, 0, "", err.Error())
		}
		scope := ""
		if st.q.ScopeOne {
			scope = serve.ScopeOne
		}
		resp, err := eng.Query(serve.QueryRequest{
			Demand:     vector.Vec(st.q.Demand),
			K:          st.q.K,
			Consistent: st.q.Consistent,
			NoCache:    st.q.NoCache,
			Scope:      scope,
		})
		if err != nil {
			return s.appendErr(out, h, epoch, eng, err)
		}
		return AppendQueryResponse(out, h.ReqID, epoch, &resp)

	case OpUpdate:
		if err := DecodeUpdate(payload, &st.u); err != nil {
			return AppendError(out, h.Op, h.ReqID, epoch, CodeBadRequest, 0, "", err.Error())
		}
		if out, ok := s.fence(out, h, eng, epoch); !ok {
			return out
		}
		if err := eng.Update(serve.GlobalID(st.u.Node), vector.Vec(st.u.Avail), st.u.Announce); err != nil {
			return s.appendErr(out, h, epoch, eng, err)
		}
		return AppendAck(out, OpUpdate, h.ReqID, epoch)

	case OpJoin:
		if err := DecodeJoin(payload, &st.j); err != nil {
			return AppendError(out, h.Op, h.ReqID, epoch, CodeBadRequest, 0, "", err.Error())
		}
		if out, ok := s.fence(out, h, eng, epoch); !ok {
			return out
		}
		var id serve.GlobalID
		var err error
		if st.j.Shard >= 0 {
			id, err = eng.JoinOn(st.j.Shard, vector.Vec(st.j.Avail))
		} else {
			id, err = eng.Join(vector.Vec(st.j.Avail))
		}
		if err != nil {
			return s.appendErr(out, h, epoch, eng, err)
		}
		return AppendJoinResponse(out, h.ReqID, epoch, uint64(id))

	case OpLeave:
		node, err := DecodeLeave(payload)
		if err != nil {
			return AppendError(out, h.Op, h.ReqID, epoch, CodeBadRequest, 0, "", err.Error())
		}
		if out, ok := s.fence(out, h, eng, epoch); !ok {
			return out
		}
		if err := eng.Leave(serve.GlobalID(node)); err != nil {
			return s.appendErr(out, h, epoch, eng, err)
		}
		return AppendAck(out, OpLeave, h.ReqID, epoch)

	case OpStats:
		data, err := json.Marshal(eng.StatsPayload())
		if err != nil {
			return s.appendErr(out, h, epoch, eng, err)
		}
		return AppendStatsResponse(out, h.ReqID, epoch, data)

	case OpFedQuery:
		mapVer, err := DecodeFedQuery(payload, &st.q)
		if err != nil {
			return AppendError(out, h.Op, h.ReqID, epoch, CodeBadRequest, 0, "", err.Error())
		}
		scope := ""
		if st.q.ScopeOne {
			scope = serve.ScopeOne
		}
		resp, err := eng.Query(serve.QueryRequest{
			Demand:     vector.Vec(st.q.Demand),
			K:          st.q.K,
			Consistent: st.q.Consistent,
			NoCache:    st.q.NoCache,
			Scope:      scope,
		})
		if err != nil {
			return s.appendErr(out, h, epoch, eng, err)
		}
		return AppendFedQueryResponse(out, h.ReqID, epoch, &resp, s.fedVer.Load() > mapVer)

	case OpFedTake:
		node, err := DecodeFedTake(payload)
		if err != nil {
			return AppendError(out, h.Op, h.ReqID, epoch, CodeBadRequest, 0, "", err.Error())
		}
		if out, ok := s.fence(out, h, eng, epoch); !ok {
			return out
		}
		avail, err := eng.Take(serve.GlobalID(node))
		degraded := err != nil && errors.Is(err, serve.ErrWAL)
		if err != nil && !degraded {
			return s.appendErr(out, h, epoch, eng, err)
		}
		return AppendFedTakeResponse(out, h.ReqID, epoch, avail, degraded)
	}
	// Unreachable: the filter bounds h.Op.
	return AppendError(out, h.Op, h.ReqID, epoch, CodeBadRequest, 0, "", "unknown op")
}

// fence applies replication-epoch fencing to a write frame, the
// repl stream's discipline mirrored onto the serving edge: a frame
// stamped with a NEWER epoch proves a promotion happened elsewhere
// and seals this deposed primary on contact; a frame stamped with an
// OLDER epoch is a stale client whose write must not apply to the
// new timeline. Epoch 0 opts out (the client does not care).
func (s *Server) fence(out []byte, h Header, eng serve.Service, epoch uint64) ([]byte, bool) {
	if h.Epoch == 0 || h.Epoch == epoch {
		return out, true
	}
	if h.Epoch > epoch {
		eng.Fence(h.Epoch)
	}
	return AppendError(out, h.Op, h.ReqID, epoch, CodeFenced, s.cfg.RetryAfter, "",
		fmt.Sprintf("epoch mismatch: frame %d, engine %d", h.Epoch, epoch)), false
}

// appendErr maps an engine error onto a wire error frame, mirroring
// the HTTP handler's status mapping. Read-only and fenced
// rejections carry the primary's address and a retry-after hint —
// the wire twin of HTTP 503 + Retry-After.
func (s *Server) appendErr(out []byte, h Header, epoch uint64, eng serve.Service, err error) []byte {
	code := CodeRejected
	retry := time.Duration(0)
	primary := ""
	switch {
	case errors.Is(err, serve.ErrClosed):
		code, retry = CodeClosed, s.cfg.RetryAfter
	case errors.Is(err, serve.ErrReadOnly):
		code, retry = CodeReadOnly, s.cfg.RetryAfter
		primary = eng.PrimaryAddr()
	case errors.Is(err, serve.ErrFenced):
		code, retry = CodeFenced, s.cfg.RetryAfter
	case errors.Is(err, serve.ErrWAL):
		code = CodeWAL
	case errors.Is(err, serve.ErrBadDemand), errors.Is(err, serve.ErrBadScope), errors.Is(err, serve.ErrNotDurable):
		code = CodeBadRequest
	case errors.Is(err, serve.ErrNoShard):
		code = CodeNoShard
	case errors.Is(err, serve.ErrScatterTimeout):
		code = CodeScatterTimeout
	}
	return AppendError(out, h.Op, h.ReqID, epoch, code, retry, primary, err.Error())
}

// reader is a minimal buffered reader tuned for the frame loop:
// readFull + buffered is all the handler needs, and keeping it local
// avoids bufio's per-Read interface indirection on the hot path.
type reader struct {
	c   net.Conn
	buf []byte
	r   int // next unread byte
	w   int // end of valid data
}

func newReader(c net.Conn, size int) *reader {
	return &reader{c: c, buf: make([]byte, size)}
}

// buffered reports the bytes already read from the socket but not
// yet consumed — the handler's "will the next read block?" signal.
func (b *reader) buffered() int { return b.w - b.r }

// readFull fills p entirely from the buffer, refilling from the
// socket as needed.
func (b *reader) readFull(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if b.r == b.w {
			b.r, b.w = 0, 0
			m, err := b.c.Read(b.buf)
			if err != nil {
				return n, err
			}
			b.w = m
		}
		m := copy(p[n:], b.buf[b.r:b.w])
		b.r += m
		n += m
	}
	return n, nil
}
