package wire_test

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"net"
	"testing"
	"time"

	"pidcan"
	"pidcan/internal/serve"
	"pidcan/internal/serve/wire"
)

// newTestEngine builds a small live engine with every node's
// availability seeded, the bench harness's setup in miniature.
func newTestEngine(t *testing.T, cfg serve.Config) *serve.Engine {
	t.Helper()
	eng, err := pidcan.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	cmax := eng.Config().CMax
	rng := rand.New(rand.NewPCG(7, 0x51ee7))
	for _, id := range eng.Nodes() {
		avail := make(pidcan.Vec, cmax.Dim())
		for k := range avail {
			avail[k] = cmax[k] * (0.2 + 0.8*rng.Float64())
		}
		if err := eng.Update(id, avail, false); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

// startWire serves eng on a loopback TCP listener and returns the
// server and its address.
func startWire(t *testing.T, eng *serve.Engine) (*wire.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(func() serve.Service { return eng }, wire.ServerConfig{})
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func dialWire(t *testing.T, addr string) *wire.Client {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFilterHeader: the stateless packet filter rejects every class
// of malformed header without reading past the fixed 24 bytes.
func TestFilterHeader(t *testing.T) {
	valid := wire.AppendQuery(nil, 1, 0, &wire.Query{Demand: []float64{1, 2}, K: 1})
	if err := wire.FilterHeader(valid); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	mutate := func(off int, b byte) []byte {
		h := bytes.Clone(valid[:wire.HeaderSize])
		h[off] = b
		return h
	}
	cases := []struct {
		name string
		hdr  []byte
	}{
		{"short", valid[:wire.HeaderSize-1]},
		{"bad magic", mutate(0, 0x00)},
		{"bad version", mutate(1, 99)},
		{"op zero", mutate(2, 0)},
		{"op out of range", mutate(2, 9)},
		{"bad flag bits", mutate(3, 0x80)},
		{"oversize payload", mutate(19, 0xFF)}, // plen high byte -> > MaxPayload
	}
	for _, tc := range cases {
		if err := wire.FilterHeader(tc.hdr); err == nil {
			t.Errorf("%s: filter accepted a malformed header", tc.name)
		}
	}
}

// TestCodecRoundTrips: every payload codec survives encode -> frame
// verify -> decode intact.
func TestCodecRoundTrips(t *testing.T) {
	checkFrame := func(t *testing.T, frame []byte, op byte, reqID uint32, epoch uint64) wire.Header {
		t.Helper()
		h, err := wire.ParseHeader(frame[:wire.HeaderSize])
		if err != nil {
			t.Fatal(err)
		}
		if h.Op != op || h.ReqID != reqID || h.Epoch != epoch {
			t.Fatalf("header %+v, want op=%d req=%d epoch=%d", h, op, reqID, epoch)
		}
		payload := frame[wire.HeaderSize:]
		if int(h.PLen) != len(payload) {
			t.Fatalf("plen %d, payload %d", h.PLen, len(payload))
		}
		if !wire.VerifyFrame(frame[:wire.HeaderSize], payload) {
			t.Fatal("frame CRC mismatch")
		}
		return h
	}

	t.Run("query", func(t *testing.T) {
		q := wire.Query{Demand: []float64{1.5, 0, 3.25}, K: 7, Consistent: true, NoCache: true, ScopeOne: true}
		frame := wire.AppendQuery(nil, 42, 9, &q)
		checkFrame(t, frame, wire.OpQuery, 42, 9)
		var got wire.Query
		if err := wire.DecodeQuery(frame[wire.HeaderSize:], &got); err != nil {
			t.Fatal(err)
		}
		if got.K != 7 || !got.Consistent || !got.NoCache || !got.ScopeOne ||
			!vecEq(got.Demand, q.Demand) {
			t.Fatalf("query round trip: %+v", got)
		}
	})

	t.Run("query response", func(t *testing.T) {
		resp := serve.QueryResponse{
			Cached:        true,
			ShardsQueried: 3,
			Hops:          17,
			HopsMax:       9,
			Candidates: []serve.Candidate{
				{Node: serve.GlobalID(1<<32 | 5), Surplus: 2.5, Avail: []float64{4, 5}},
				{Node: 7, Surplus: 0.25, Avail: []float64{1, 2}},
			},
		}
		frame := wire.AppendQueryResponse(nil, 3, 11, &resp)
		checkFrame(t, frame, wire.OpQuery, 3, 11)
		var res wire.QueryResult
		if err := wire.DecodeQueryResponse(frame[wire.HeaderSize:], &res); err != nil {
			t.Fatal(err)
		}
		if !res.Cached || res.ShardsQueried != 3 || res.Hops != 17 || res.HopsMax != 9 ||
			len(res.Candidates) != 2 {
			t.Fatalf("response round trip: %+v", res)
		}
		for i, c := range res.Candidates {
			want := resp.Candidates[i]
			if c.Node != uint64(want.Node) || c.Surplus != want.Surplus || !vecEq(c.Avail, want.Avail) {
				t.Fatalf("candidate %d: %+v, want %+v", i, c, want)
			}
		}
	})

	t.Run("update", func(t *testing.T) {
		frame := wire.AppendUpdate(nil, 8, 2, 1<<40|3, []float64{0.5, 9}, true)
		checkFrame(t, frame, wire.OpUpdate, 8, 2)
		var u wire.Update
		if err := wire.DecodeUpdate(frame[wire.HeaderSize:], &u); err != nil {
			t.Fatal(err)
		}
		if u.Node != 1<<40|3 || !u.Announce || !vecEq(u.Avail, []float64{0.5, 9}) {
			t.Fatalf("update round trip: %+v", u)
		}
	})

	t.Run("join", func(t *testing.T) {
		frame := wire.AppendJoin(nil, 9, 0, -1, nil)
		checkFrame(t, frame, wire.OpJoin, 9, 0)
		var j wire.Join
		if err := wire.DecodeJoin(frame[wire.HeaderSize:], &j); err != nil {
			t.Fatal(err)
		}
		if j.Shard != -1 || j.Avail != nil {
			t.Fatalf("join round trip: %+v", j)
		}
		frame = wire.AppendJoin(nil, 10, 0, 2, []float64{1, 2})
		var j2 wire.Join
		if err := wire.DecodeJoin(frame[wire.HeaderSize:], &j2); err != nil {
			t.Fatal(err)
		}
		if j2.Shard != 2 || !vecEq(j2.Avail, []float64{1, 2}) {
			t.Fatalf("join round trip: %+v", j2)
		}
	})

	t.Run("leave", func(t *testing.T) {
		frame := wire.AppendLeave(nil, 11, 1, 99)
		checkFrame(t, frame, wire.OpLeave, 11, 1)
		node, err := wire.DecodeLeave(frame[wire.HeaderSize:])
		if err != nil || node != 99 {
			t.Fatalf("leave round trip: %d %v", node, err)
		}
	})

	t.Run("error", func(t *testing.T) {
		frame := wire.AppendError(nil, wire.OpUpdate, 12, 4, wire.CodeReadOnly,
			1500*time.Millisecond, "10.0.0.1:7000", "read-only follower")
		h := checkFrame(t, frame, wire.OpUpdate, 12, 4)
		if h.Flags != wire.FlagResponse|wire.FlagError {
			t.Fatalf("error flags %x", h.Flags)
		}
		var e wire.Error
		if err := wire.DecodeError(frame[wire.HeaderSize:], &e); err != nil {
			t.Fatal(err)
		}
		if e.Code != wire.CodeReadOnly || e.RetryAfter != 1500*time.Millisecond ||
			e.Primary != "10.0.0.1:7000" || e.Msg != "read-only follower" {
			t.Fatalf("error round trip: %+v", e)
		}
	})
}

func vecEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueryCodecZeroAlloc pins the zero-allocation contract of the
// hot query path: steady-state encode and decode of requests and
// responses allocate nothing.
func TestQueryCodecZeroAlloc(t *testing.T) {
	q := wire.Query{Demand: []float64{1, 2, 3}, K: 3}
	resp := serve.QueryResponse{
		ShardsQueried: 1,
		Candidates: []serve.Candidate{
			{Node: 1, Surplus: 1, Avail: []float64{1, 2, 3}},
			{Node: 2, Surplus: 2, Avail: []float64{4, 5, 6}},
		},
	}
	buf := make([]byte, 0, 4096)
	var gotQ wire.Query
	var gotR wire.QueryResult
	// Warm the reusable decode targets so backing arrays settle.
	buf = wire.AppendQuery(buf[:0], 1, 0, &q)
	wire.DecodeQuery(buf[wire.HeaderSize:], &gotQ)
	buf = wire.AppendQueryResponse(buf[:0], 1, 0, &resp)
	wire.DecodeQueryResponse(buf[wire.HeaderSize:], &gotR)

	allocs := testing.AllocsPerRun(200, func() {
		buf = wire.AppendQuery(buf[:0], 2, 0, &q)
		if err := wire.DecodeQuery(buf[wire.HeaderSize:], &gotQ); err != nil {
			t.Fatal(err)
		}
		buf = wire.AppendQueryResponse(buf[:0], 2, 0, &resp)
		if err := wire.DecodeQueryResponse(buf[wire.HeaderSize:], &gotR); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("query encode/decode path allocates %.1f times per op, want 0", allocs)
	}
}

// TestWireE2E drives every op over a live TCP connection against a
// real engine, then checks the pipelined path returns responses in
// request order.
func TestWireE2E(t *testing.T) {
	eng := newTestEngine(t, serve.Config{Shards: 2, NodesPerShard: 8, Seed: 3})
	srv, addr := startWire(t, eng)
	eng.SetWireStats(srv.Stats)
	c := dialWire(t, addr)

	dim := eng.Config().CMax.Dim()
	demand := make([]float64, dim) // zero demand: everything qualifies

	// Query.
	var res wire.QueryResult
	if err := c.Query(&wire.Query{Demand: demand, K: 3}, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 || len(res.Candidates) > 3 {
		t.Fatalf("query returned %d candidates, want 1..3", len(res.Candidates))
	}
	for _, cand := range res.Candidates {
		if len(cand.Avail) != dim {
			t.Fatalf("candidate avail dim %d, want %d", len(cand.Avail), dim)
		}
	}

	// Join on a specific shard, update it, then leave.
	avail := make([]float64, dim)
	for k := range avail {
		avail[k] = 1
	}
	id, err := c.Join(1, avail)
	if err != nil {
		t.Fatal(err)
	}
	if id>>32 != 1 {
		t.Fatalf("join on shard 1 assigned id %#x", id)
	}
	if err := c.Update(id, avail, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(id); err != nil {
		t.Fatal(err)
	}
	// Round-robin join (shard < 0) also works.
	id2, err := c.Join(-1, avail)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Leave(id2); err != nil {
		t.Fatal(err)
	}

	// Bad requests come back as typed errors, connection stays up.
	err = c.Update(1<<40, avail, false) // no such shard
	var we *wire.Error
	if !errors.As(err, &we) || we.Code != wire.CodeNoShard {
		t.Fatalf("update on missing shard: %v, want CodeNoShard", err)
	}
	err = c.Query(&wire.Query{Demand: nil, K: 1}, &res)
	if !errors.As(err, &we) || we.Code != wire.CodeBadRequest {
		t.Fatalf("nil-demand query: %v, want CodeBadRequest", err)
	}

	// Pipeline: one flush, many responses, strictly in request order.
	const depth = 100
	first := c.EnqueueQuery(&wire.Query{Demand: demand, K: 1})
	for i := 1; i < depth; i++ {
		c.EnqueueQuery(&wire.Query{Demand: demand, K: 1})
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		r, err := c.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		if r.ReqID != first+uint32(i) {
			t.Fatalf("response %d has reqID %d, want %d (order violated)", i, r.ReqID, first+uint32(i))
		}
		if r.Errored {
			t.Fatalf("pipelined query %d failed: %v", i, r.Err)
		}
	}

	// Stats round trip: the engine's JSON includes the wire gauges the
	// server feeds it through SetWireStats.
	var st serve.Stats
	if _, err := c.Stats(&st); err != nil {
		t.Fatal(err)
	}
	if st.WireConns < 1 || st.WireRequests == 0 {
		t.Fatalf("stats wire gauges: conns=%d requests=%d", st.WireConns, st.WireRequests)
	}
}

// TestWireReadOnlyFollower: a write on a follower is refused with
// CodeReadOnly carrying the primary's address and a retry hint — the
// wire mirror of the HTTP 503 + Retry-After surface. Reads serve.
func TestWireReadOnlyFollower(t *testing.T) {
	cfg := serve.Config{
		Shards: 1, NodesPerShard: 4, Seed: 5,
		DataDir: t.TempDir(), Follower: true, PrimaryAddr: "10.0.0.9:7000",
	}
	eng, err := pidcan.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	_, addr := startWire(t, eng)
	c := dialWire(t, addr)

	dim := eng.Config().CMax.Dim()
	err = c.Update(0, make([]float64, dim), false)
	var we *wire.Error
	if !errors.As(err, &we) {
		t.Fatalf("follower update: %v, want *wire.Error", err)
	}
	if we.Code != wire.CodeReadOnly {
		t.Fatalf("follower update code %d, want CodeReadOnly", we.Code)
	}
	if we.Primary != cfg.PrimaryAddr {
		t.Fatalf("follower rejection names primary %q, want %q", we.Primary, cfg.PrimaryAddr)
	}
	if we.RetryAfter <= 0 {
		t.Fatalf("follower rejection retry-after %v, want > 0", we.RetryAfter)
	}

	// Reads still serve (zero candidates is fine: no availability yet).
	var res wire.QueryResult
	if err := c.Query(&wire.Query{Demand: make([]float64, dim), K: 1}, &res); err != nil {
		t.Fatalf("follower query: %v", err)
	}
}

// TestWireEpochFence covers both fence directions: a frame from a
// NEWER epoch seals the deposed primary on contact, a frame from an
// OLDER (stale, nonzero) epoch is refused without touching the
// engine.
func TestWireEpochFence(t *testing.T) {
	t.Run("newer epoch seals", func(t *testing.T) {
		eng := newTestEngine(t, serve.Config{Shards: 1, NodesPerShard: 4, Seed: 7})
		_, addr := startWire(t, eng)
		c := dialWire(t, addr)
		dim := eng.Config().CMax.Dim()
		avail := make([]float64, dim)

		// Matching epoch: write applies.
		c.WriteEpoch = eng.Epoch()
		if err := c.Update(0, avail, false); err != nil {
			t.Fatalf("same-epoch update: %v", err)
		}

		// A frame stamped from the future proves a promotion happened
		// elsewhere: the engine is fenced on contact.
		c.WriteEpoch = eng.Epoch() + 4
		err := c.Update(0, avail, false)
		var we *wire.Error
		if !errors.As(err, &we) || we.Code != wire.CodeFenced {
			t.Fatalf("future-epoch update: %v, want CodeFenced", err)
		}
		if eng.Role() != "fenced" {
			t.Fatalf("engine role %q after future-epoch frame, want fenced", eng.Role())
		}
		// Even don't-care writes now bounce off the sealed engine.
		c.WriteEpoch = 0
		err = c.Update(0, avail, false)
		if !errors.As(err, &we) || we.Code != wire.CodeFenced {
			t.Fatalf("update on fenced engine: %v, want CodeFenced", err)
		}
		// Reads still serve on a fenced engine.
		var res wire.QueryResult
		if err := c.Query(&wire.Query{Demand: make([]float64, dim), K: 1}, &res); err != nil {
			t.Fatalf("query on fenced engine: %v", err)
		}
	})

	t.Run("stale epoch refused", func(t *testing.T) {
		// Build an engine whose epoch is > 1: run a durable primary,
		// restart its data dir as a follower, promote. The promotion
		// seals epoch+1, so any frame stamped with the old epoch is a
		// stale client of the previous timeline.
		dir := t.TempDir()
		cfg := serve.Config{Shards: 1, NodesPerShard: 4, Seed: 9, DataDir: dir}
		eng1, err := pidcan.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		oldEpoch := eng1.Epoch()
		if err := eng1.Close(); err != nil {
			t.Fatal(err)
		}
		fcfg := cfg
		fcfg.Follower = true
		eng, err := pidcan.NewEngine(fcfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		newEpoch, err := eng.Promote()
		if err != nil {
			t.Fatal(err)
		}
		if newEpoch <= oldEpoch {
			t.Fatalf("promotion epoch %d not past %d", newEpoch, oldEpoch)
		}

		_, addr := startWire(t, eng)
		c := dialWire(t, addr)
		dim := eng.Config().CMax.Dim()
		avail := make([]float64, dim)

		c.WriteEpoch = oldEpoch // stale: the pre-promotion timeline
		err = c.Update(0, avail, false)
		var we *wire.Error
		if !errors.As(err, &we) || we.Code != wire.CodeFenced {
			t.Fatalf("stale-epoch update: %v, want CodeFenced", err)
		}
		if eng.Role() != "primary" {
			t.Fatalf("stale frame changed engine role to %q", eng.Role())
		}
		// The current timeline still writes.
		c.WriteEpoch = newEpoch
		if err := c.Update(0, avail, false); err != nil {
			t.Fatalf("current-epoch update after stale frame: %v", err)
		}
	})
}

// TestWireGarbageClosesConnection: unframed junk is dropped by the
// stateless filter and the connection closed without a response.
func TestWireGarbageClosesConnection(t *testing.T) {
	eng := newTestEngine(t, serve.Config{Shards: 1, NodesPerShard: 4, Seed: 11})
	srv, addr := startWire(t, eng)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	junk := bytes.Repeat([]byte{0xDE, 0xAD}, 32)
	if _, err := raw.Write(junk); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	// EOF or a reset both mean "closed without a response" (the server
	// may RST when it closes with our junk still unread).
	if n, err := raw.Read(make([]byte, 64)); err == nil || n > 0 {
		t.Fatalf("garbage got %d bytes, err %v; want closed connection", n, err)
	}
	if srv.Stats().Rejected == 0 {
		t.Fatal("rejected counter did not move")
	}
}

// TestWireCorruptEveryByte is the request-path twin of the wal
// torn-tail test: take one valid update frame, corrupt each byte in
// turn, and require the server to reject every mutation — no
// response frame, no state change — because the CRC covers header
// and payload both.
func TestWireCorruptEveryByte(t *testing.T) {
	eng := newTestEngine(t, serve.Config{Shards: 1, NodesPerShard: 4, Seed: 13})
	srv, addr := startWire(t, eng)

	dim := eng.Config().CMax.Dim()
	avail := make([]float64, dim)
	for k := range avail {
		avail[k] = 42 // a sentinel no seeded node carries
	}
	frame := wire.AppendUpdate(nil, 77, 0, 0, avail, false)

	for i := range frame {
		corrupt := bytes.Clone(frame)
		corrupt[i] ^= 0x5A
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(corrupt); err != nil {
			c.Close()
			t.Fatalf("byte %d: write: %v", i, err)
		}
		// Half-close so a filter-passing header whose claimed payload
		// length changed cannot block the server in a payload read.
		c.(*net.TCPConn).CloseWrite()
		c.SetReadDeadline(time.Now().Add(10 * time.Second))
		// Drain until close: any byte back is a response the server
		// must not have produced. EOF and reset both count as closed.
		var got int
		var rerr error
		for {
			var n int
			n, rerr = c.Read(make([]byte, 256))
			got += n
			if rerr != nil {
				break
			}
		}
		c.Close()
		if got > 0 || rerr == nil {
			t.Fatalf("byte %d: corrupted frame drew a response (%d bytes, err %v)", i, got, rerr)
		}
	}
	if got := srv.Stats().Rejected; got < uint64(len(frame))/2 {
		// Not every mutation reaches the CRC check (a corrupted header
		// can die in the filter, a shrunken length can starve the read),
		// but the bulk must be counted rejections.
		t.Fatalf("rejected counter %d after %d corruptions", got, len(frame))
	}

	// No corrupted update leaked into the engine: the sentinel vector
	// is nowhere in a full snapshot query.
	resp, err := eng.Query(serve.QueryRequest{Demand: make([]float64, dim), K: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range resp.Candidates {
		if cand.Avail[0] == 42 {
			t.Fatal("a corrupted update frame was applied")
		}
	}

	// The pristine frame still works end to end.
	c := dialWire(t, addr)
	if err := c.Update(0, avail, false); err != nil {
		t.Fatalf("pristine frame after corruption sweep: %v", err)
	}
}

// TestWireUDP: the single-packet fast path answers queries, refuses
// writes with a typed error, and drops garbage without a reply.
func TestWireUDP(t *testing.T) {
	eng := newTestEngine(t, serve.Config{Shards: 1, NodesPerShard: 8, Seed: 17})
	srv, _ := startWire(t, eng)
	uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeUDP(uc)
	addr := uc.LocalAddr().String()

	cl, err := wire.DialUDP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	dim := eng.Config().CMax.Dim()
	var res wire.QueryResult
	if err := cl.Query(&wire.Query{Demand: make([]float64, dim), K: 2}, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("udp query returned no candidates")
	}

	// Writes are refused on the unreliable path.
	raw, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	frame := wire.AppendUpdate(nil, 5, 0, 0, make([]float64, dim), false)
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := raw.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	h, err := wire.ParseHeader(buf[:wire.HeaderSize])
	if err != nil || h.Flags&wire.FlagError == 0 {
		t.Fatalf("udp update reply: header %+v err %v, want error frame", h, err)
	}
	var we wire.Error
	if err := wire.DecodeError(buf[wire.HeaderSize:n], &we); err != nil {
		t.Fatal(err)
	}
	if we.Code != wire.CodeBadRequest {
		t.Fatalf("udp update code %d, want CodeBadRequest", we.Code)
	}

	// Garbage datagrams are dropped silently (no amplification).
	before := srv.Stats().Rejected
	if _, err := raw.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if n, err := raw.Read(buf); err == nil {
		t.Fatalf("garbage datagram drew a %d-byte reply", n)
	}
	if srv.Stats().Rejected == before {
		t.Fatal("udp garbage not counted as rejected")
	}
}
