package wire

import (
	"net"
)

// maxUDPFrame bounds a single-datagram frame in either direction.
// Queries and their responses fit comfortably; anything larger
// belongs on TCP.
const maxUDPFrame = 60 << 10

// ServeUDP serves the single-packet fast path on pc until Close:
// one query request per datagram, one response datagram back, no
// connection state at all. Only idempotent ops are allowed (OpQuery
// and OpStats) — a lost update would be silently unacknowledged, a
// lost join would leak a node, so writes belong on TCP. It runs
// cfg.Acceptors reader goroutines on the shared socket and blocks
// until the socket closes.
//
// Datagrams failing the stateless filter or the frame CRC are
// dropped without a reply (an unverifiable header has no trustable
// reply address semantics, and answering garbage invites
// amplification); well-framed requests for non-UDP ops get a
// CodeBadRequest error frame back.
func (s *Server) ServeUDP(pc *net.UDPConn) error {
	if s.closed.Load() {
		return errServerClosed
	}
	s.mu.Lock()
	s.ucs = append(s.ucs, pc)
	s.mu.Unlock()
	done := make(chan struct{}, s.cfg.Acceptors)
	for i := 0; i < s.cfg.Acceptors; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			buf := make([]byte, maxUDPFrame)
			st := &connState{
				payload: nil, // payload aliases buf; no copy needed
				out:     make([]byte, 0, 16<<10),
			}
			for {
				n, addr, err := pc.ReadFromUDP(buf)
				if err != nil {
					return // socket closed
				}
				if n < HeaderSize {
					s.rejected.Add(1)
					continue
				}
				hdr := buf[:HeaderSize]
				h, err := ParseHeader(hdr)
				if err != nil || h.Flags != 0 || int(h.PLen) != n-HeaderSize {
					s.rejected.Add(1)
					continue
				}
				payload := buf[HeaderSize:n]
				if !VerifyFrame(hdr, payload) {
					s.rejected.Add(1)
					continue
				}
				s.udpReqs.Add(1)
				s.requests.Add(1)
				st.out = st.out[:0]
				if h.Op != OpQuery && h.Op != OpStats {
					st.out = AppendError(st.out, h.Op, h.ReqID, 0, CodeBadRequest, 0, "",
						"op not allowed over udp (single-packet path serves queries and stats)")
				} else {
					st.out = s.handle(st.out, h, payload, st)
				}
				if len(st.out) > maxUDPFrame {
					st.out = AppendError(st.out[:0], h.Op, h.ReqID, 0, CodeBadRequest, 0, "",
						"response exceeds a single datagram; use tcp")
				}
				pc.WriteToUDP(st.out, addr)
			}
		}()
	}
	for i := 0; i < s.cfg.Acceptors; i++ {
		<-done
	}
	return nil
}
