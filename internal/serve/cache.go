package serve

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/vector"
)

// queryCache memoizes recent query responses keyed by the quantized
// demand vector and k. An entry stays valid for one freshness window
// (TTL) and, when epoch invalidation is on (Config.CacheEpochBound),
// only while the engine's write epoch has not advanced more than the
// bound past the entry's fill — every applied batch that mutated a
// shard bumps the epoch, so a burst of joins/updates/leaves stops
// the cache from serving pre-write results even inside the TTL
// window. Under heavy read traffic this still collapses bursts of
// equivalent demands into one snapshot scan per window; residual
// staleness mirrors what the paper's index already tolerates between
// state-update cycles.
//
// Entries live in two generations: puts fill the new generation, and
// when it reaches half the configured capacity it rotates into the
// old one (whose previous content is dropped). A full cache therefore
// sheds its coldest half instead of wiping every hot entry at once,
// and an old-generation hit promotes its entry back into the new
// generation.
//
// With Config.CacheAdaptEvery set, the knobs stop being fixed: every
// adaptEvery lookups the controller compares the window's hit-rate
// and staleness-invalidation rate and adjusts TTL, quantization
// granularity and the epoch bound within the configured
// floors/ceilings — staleness-driven misses extend entry lifetime,
// compulsory misses (demand drift marching across grid cells) coarsen
// the grid so moving demands keep aliasing onto live cells, and
// sustained high hit-rates decay the knobs back toward the
// configured (freshest, most precise) baselines.
type queryCache struct {
	max  int // total entry bound; each generation holds up to max/2
	cmax vector.Vec

	// Live knobs. Fixed at their Config values unless the adaptive
	// controller (adaptEvery > 0) is steering them.
	ttl        atomic.Int64  // nanoseconds
	epochBound atomic.Uint64 // 0: TTL-only expiry
	grid       atomic.Pointer[cacheGrid]

	// Adaptive-controller configuration (constants after build).
	adaptEvery       uint64
	ttlMin, ttlMax   int64
	qMin, qMax       float64
	boundMin, bndMax uint64

	mu     sync.RWMutex
	newGen map[string]cacheEntry
	oldGen map[string]cacheEntry

	// recheckHook, when set (tests only), runs between the read-locked
	// lookup of a stale entry and the write-locked recheck — the
	// window a concurrent put can refresh the key in.
	recheckHook func()

	hits      atomic.Uint64
	misses    atomic.Uint64
	rotations atomic.Uint64 // generation rotations (cache_resets)
	stale     atomic.Uint64 // entries invalidated at lookup (TTL or epoch)
	adaptions atomic.Uint64 // controller knob adjustments

	// Per-window accounting for the adaptive controller.
	winLookups atomic.Uint64
	winHits    atomic.Uint64
	winStale   atomic.Uint64
}

// cacheGrid is one immutable quantization grid: the quantum (as a
// fraction of cmax) and the per-dimension inverse cell widths.
// Swapped atomically when the controller re-grids.
type cacheGrid struct {
	quantum float64
	inv     vector.Vec // 1/(quantum*cmax[k]), 0 for zero-capacity dims
}

func newGrid(quantum float64, cmax vector.Vec) *cacheGrid {
	inv := make(vector.Vec, cmax.Dim())
	for i, c := range cmax {
		if c > 0 {
			inv[i] = 1 / (quantum * c)
		}
	}
	return &cacheGrid{quantum: quantum, inv: inv}
}

// Adaptive-controller thresholds: grow knobs when a window's
// hit-rate falls below adaptHitLow, decay them back toward the
// configured baselines above adaptHitHigh; a window whose misses are
// more than adaptStaleShare invalidations is lifetime-bound (extend
// TTL/epoch headroom), otherwise compulsory (coarsen the grid).
const (
	adaptHitLow     = 0.70
	adaptHitHigh    = 0.90
	adaptStaleShare = 0.25
)

func newQueryCache(cfg Config) *queryCache {
	bound := uint64(0)
	if cfg.CacheEpochBound > 0 {
		bound = uint64(cfg.CacheEpochBound)
	}
	qc := &queryCache{
		max:      cfg.CacheSize,
		cmax:     cfg.CMax,
		ttlMin:   int64(cfg.CacheTTLMin),
		ttlMax:   int64(cfg.CacheTTLMax),
		qMin:     cfg.CacheQuantumMin,
		qMax:     cfg.CacheQuantumMax,
		boundMin: bound,
		newGen:   make(map[string]cacheEntry),
		oldGen:   make(map[string]cacheEntry),
	}
	if cfg.CacheAdaptEvery > 0 {
		qc.adaptEvery = uint64(cfg.CacheAdaptEvery)
		qc.bndMax = bound * 16
	}
	qc.ttl.Store(int64(cfg.CacheTTL))
	qc.epochBound.Store(bound)
	qc.grid.Store(newGrid(cfg.CacheQuantum, cfg.CMax))
	return qc
}

type cacheEntry struct {
	resp  QueryResponse
	at    time.Time
	epoch uint64 // engine write epoch at fill
}

// quantize maps demand onto the cache grid: it returns the cache key
// for (demand, k) and the cell's upper-bound demand. Responses
// shared through the cache are computed against that upper bound, so
// every demand landing in the cell receives candidates that dominate
// it — conservative (a candidate may be skipped near a cell edge),
// never the reverse.
func (qc *queryCache) quantize(demand vector.Vec, k int) (string, vector.Vec) {
	g := qc.grid.Load()
	buf := make([]byte, 0, 8+8*len(demand))
	ub := make(vector.Vec, len(demand))
	for i, d := range demand {
		if g.inv[i] == 0 {
			// Zero-capacity dimension: no grid; exact-match bucket.
			ub[i] = d
			buf = strconv.AppendUint(buf, math.Float64bits(d), 36)
			buf = append(buf, '|')
			continue
		}
		cell := int64(math.Ceil(d * g.inv[i]))
		ub[i] = float64(cell) / g.inv[i]
		buf = strconv.AppendInt(buf, cell, 36)
		buf = append(buf, '|')
	}
	buf = strconv.AppendInt(buf, int64(k), 36)
	return string(buf), ub
}

// fresh reports whether an entry may still be served: inside its TTL
// window and, with epoch invalidation on, filled no more than
// epochBound write batches before the reader's epoch. An entry
// filled at or after the reader's own epoch view is fresh by
// definition — a reader that loaded its epoch before being preempted
// must not treat a newer fill as stale (the unsigned subtraction
// would wrap and evict brand-new entries).
func (qc *queryCache) fresh(e cacheEntry, now time.Time, epoch uint64) bool {
	if now.Sub(e.at) > time.Duration(qc.ttl.Load()) {
		return false
	}
	bound := qc.epochBound.Load()
	return bound == 0 || e.epoch >= epoch || epoch-e.epoch <= bound
}

// lookup finds the key in either generation (new first). Read lock
// only.
func (qc *queryCache) lookup(key string) (cacheEntry, bool, bool) {
	qc.mu.RLock()
	e, ok := qc.newGen[key]
	old := false
	if !ok {
		e, ok = qc.oldGen[key]
		old = ok
	}
	qc.mu.RUnlock()
	return e, ok, old
}

// get returns the cached response for the key if it is still fresh
// at the given time and write epoch. The response's Candidates slice
// is a private copy — callers may re-rank or otherwise mutate it
// without corrupting the cache. A stale entry is deleted on lookup
// (and counted as an invalidation); a fresh hit in the old
// generation is promoted back into the new one so rotation cannot
// drop a still-hot key.
func (qc *queryCache) get(key string, now time.Time, epoch uint64) (QueryResponse, bool) {
	e, ok, old := qc.lookup(key)
	if ok && !qc.fresh(e, now, epoch) {
		if qc.recheckHook != nil {
			qc.recheckHook()
		}
		qc.mu.Lock()
		// Re-check under the write lock: a concurrent put may have
		// refreshed the key since the read above — then the live,
		// fresh entry is the hit, not a forced rescan.
		if cur, live := qc.newGen[key]; live && qc.fresh(cur, now, epoch) {
			e = cur
		} else if cur, live := qc.oldGen[key]; live && qc.fresh(cur, now, epoch) {
			e = cur
		} else {
			if _, live := qc.newGen[key]; live {
				delete(qc.newGen, key)
			}
			if _, live := qc.oldGen[key]; live {
				delete(qc.oldGen, key)
			}
			qc.stale.Add(1)
			qc.winStale.Add(1)
			ok = false
		}
		qc.mu.Unlock()
	} else if ok && old {
		// Fresh old-generation hit: promote, so the next rotation
		// keeps it.
		qc.mu.Lock()
		if cur, live := qc.oldGen[key]; live {
			qc.newGen[key] = cur
			delete(qc.oldGen, key)
		}
		qc.mu.Unlock()
	}
	if qc.adaptEvery > 0 {
		if ok {
			qc.winHits.Add(1)
		}
		if qc.winLookups.Add(1)%qc.adaptEvery == 0 {
			qc.adapt()
		}
	}
	if !ok {
		qc.misses.Add(1)
		return QueryResponse{}, false
	}
	qc.hits.Add(1)
	resp := e.resp
	resp.Candidates = append([]Candidate(nil), e.resp.Candidates...)
	return resp, true
}

// put stores a response filled at the given write epoch. When the new
// generation reaches half the configured capacity it rotates into
// the old generation (dropping the previous old one), so a full
// cache degrades gradually — the recently filled half survives —
// instead of losing every hot entry at once.
func (qc *queryCache) put(key string, resp QueryResponse, now time.Time, epoch uint64) {
	qc.mu.Lock()
	if len(qc.newGen) >= qc.halfMax() {
		qc.oldGen = qc.newGen
		qc.newGen = make(map[string]cacheEntry, qc.halfMax()/4+1)
		qc.rotations.Add(1)
	}
	// A slow reader must not clobber a fill made from a newer epoch
	// view — its entry would read as instantly stale to everyone
	// else and force rescans of a key that was just refreshed.
	if cur, ok := qc.newGen[key]; !ok || cur.epoch <= epoch {
		qc.newGen[key] = cacheEntry{resp: resp, at: now, epoch: epoch}
	}
	qc.mu.Unlock()
}

func (qc *queryCache) halfMax() int {
	h := qc.max / 2
	if h < 1 {
		h = 1
	}
	return h
}

// adapt is the controller step, run once per adaptEvery lookups by
// whichever reader crossed the window boundary. All knob updates are
// atomic; a re-grid additionally clears both generations (the old
// keys are unreachable under the new grid).
func (qc *queryCache) adapt() {
	hits := qc.winHits.Swap(0)
	stale := qc.winStale.Swap(0)
	total := qc.adaptEvery
	hitRate := float64(hits) / float64(total)
	staleShare := float64(stale) / float64(total)
	switch {
	case hitRate < adaptHitLow:
		if staleShare > adaptStaleShare {
			// Lifetime-bound misses: entries die before reuse.
			qc.bumpTTL(2)
			if b := qc.epochBound.Load(); b > 0 && b*2 <= qc.bndMax {
				qc.epochBound.Store(b * 2)
				qc.adaptions.Add(1)
			}
			return
		}
		// Compulsory misses: the demand distribution moved off the
		// grid. Coarsen so drifting demands alias onto live cells,
		// and give the bigger cells time to be revisited.
		qc.regrid(math.Min(qc.grid.Load().quantum*1.5, qc.qMax))
		qc.bumpTTL(1.25)
	case hitRate > adaptHitHigh && staleShare < 0.05:
		// Comfortable: decay toward the configured baseline for
		// freshness (TTL, epoch bound) and precision (grid).
		qc.decayTTL()
		if b := qc.epochBound.Load(); b > qc.boundMin {
			qc.epochBound.Store(maxU64(b/2, qc.boundMin))
			qc.adaptions.Add(1)
		}
		if hitRate > 0.97 {
			qc.regrid(math.Max(qc.grid.Load().quantum/1.25, qc.qMin))
		}
	}
}

func (qc *queryCache) bumpTTL(factor float64) {
	cur := qc.ttl.Load()
	next := int64(float64(cur) * factor)
	if next > qc.ttlMax {
		next = qc.ttlMax
	}
	if next != cur {
		qc.ttl.Store(next)
		qc.adaptions.Add(1)
	}
}

func (qc *queryCache) decayTTL() {
	cur := qc.ttl.Load()
	next := cur * 3 / 4
	if next < qc.ttlMin {
		next = qc.ttlMin
	}
	if next != cur {
		qc.ttl.Store(next)
		qc.adaptions.Add(1)
	}
}

// regrid swaps the quantization grid and clears both generations:
// keys minted under the old grid can never be looked up again.
func (qc *queryCache) regrid(quantum float64) {
	if quantum == qc.grid.Load().quantum {
		return
	}
	qc.mu.Lock()
	qc.grid.Store(newGrid(quantum, qc.cmax))
	qc.newGen = make(map[string]cacheEntry)
	qc.oldGen = make(map[string]cacheEntry)
	qc.mu.Unlock()
	qc.adaptions.Add(1)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// cacheStats is the point-in-time counter/knob view Stats reports.
type cacheStats struct {
	hits, misses, rotations uint64
	stale, adaptions        uint64
	entries                 int
	ttl                     time.Duration
	quantum                 float64
	epochBound              uint64
}

func (qc *queryCache) stats() cacheStats {
	qc.mu.RLock()
	n := len(qc.newGen) + len(qc.oldGen)
	qc.mu.RUnlock()
	return cacheStats{
		hits:       qc.hits.Load(),
		misses:     qc.misses.Load(),
		rotations:  qc.rotations.Load(),
		stale:      qc.stale.Load(),
		adaptions:  qc.adaptions.Load(),
		entries:    n,
		ttl:        time.Duration(qc.ttl.Load()),
		quantum:    qc.grid.Load().quantum,
		epochBound: qc.epochBound.Load(),
	}
}
