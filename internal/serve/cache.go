package serve

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/vector"
)

// queryCache memoizes recent query responses keyed by the quantized
// demand vector and k. Entries are valid for one freshness window
// (TTL); under heavy traffic this collapses bursts of equivalent
// demands into one snapshot scan per window. Staleness is bounded by
// the TTL — a freshly joined or updated node can be missing from (or
// over-represented in) cached responses for at most that long, which
// mirrors the staleness the paper's index already tolerates between
// state-update cycles.
type queryCache struct {
	ttl     time.Duration
	quantum float64
	inv     vector.Vec // 1/(quantum*cmax[k]), 0 for zero-capacity dims
	max     int

	mu sync.RWMutex
	m  map[string]cacheEntry

	// recheckHook, when set (tests only), runs between the read-locked
	// lookup of a stale entry and the write-locked recheck — the
	// window a concurrent put can refresh the key in.
	recheckHook func()

	hits   atomic.Uint64
	misses atomic.Uint64
	resets atomic.Uint64
}

type cacheEntry struct {
	resp QueryResponse
	at   time.Time
}

func newQueryCache(cfg Config) *queryCache {
	inv := make(vector.Vec, cfg.CMax.Dim())
	for i, c := range cfg.CMax {
		if c > 0 {
			inv[i] = 1 / (cfg.CacheQuantum * c)
		}
	}
	return &queryCache{
		ttl:     cfg.CacheTTL,
		quantum: cfg.CacheQuantum,
		inv:     inv,
		max:     cfg.CacheSize,
		m:       make(map[string]cacheEntry),
	}
}

// quantize maps demand onto the cache grid: it returns the cache key
// for (demand, k) and the cell's upper-bound demand. Responses
// shared through the cache are computed against that upper bound, so
// every demand landing in the cell receives candidates that dominate
// it — conservative (a candidate may be skipped near a cell edge),
// never the reverse.
func (qc *queryCache) quantize(demand vector.Vec, k int) (string, vector.Vec) {
	buf := make([]byte, 0, 8+8*len(demand))
	ub := make(vector.Vec, len(demand))
	for i, d := range demand {
		if qc.inv[i] == 0 {
			// Zero-capacity dimension: no grid; exact-match bucket.
			ub[i] = d
			buf = strconv.AppendUint(buf, math.Float64bits(d), 36)
			buf = append(buf, '|')
			continue
		}
		cell := int64(math.Ceil(d * qc.inv[i]))
		ub[i] = float64(cell) / qc.inv[i]
		buf = strconv.AppendInt(buf, cell, 36)
		buf = append(buf, '|')
	}
	buf = strconv.AppendInt(buf, int64(k), 36)
	return string(buf), ub
}

// get returns the cached response for the key if it is still fresh.
// The response's Candidates slice is a private copy — callers may
// re-rank or otherwise mutate it without corrupting the cache. An
// expired entry is deleted on lookup, so stats never count dead
// entries the next put would overwrite anyway.
func (qc *queryCache) get(key string, now time.Time) (QueryResponse, bool) {
	qc.mu.RLock()
	e, ok := qc.m[key]
	qc.mu.RUnlock()
	if ok && now.Sub(e.at) > qc.ttl {
		if qc.recheckHook != nil {
			qc.recheckHook()
		}
		qc.mu.Lock()
		// Re-check under the write lock: a concurrent put may have
		// refreshed the key since the read above — then the live,
		// fresh entry is the hit, not a forced rescan.
		if cur, live := qc.m[key]; live && now.Sub(cur.at) <= qc.ttl {
			e = cur
		} else {
			if live {
				delete(qc.m, key)
			}
			ok = false
		}
		qc.mu.Unlock()
	}
	if !ok {
		qc.misses.Add(1)
		return QueryResponse{}, false
	}
	qc.hits.Add(1)
	resp := e.resp
	resp.Candidates = append([]Candidate(nil), e.resp.Candidates...)
	return resp, true
}

// put stores a response. When the cache is full it is reset
// wholesale: entries all expire within one TTL anyway, so precise
// eviction buys nothing over the occasional cheap rebuild.
func (qc *queryCache) put(key string, resp QueryResponse, now time.Time) {
	qc.mu.Lock()
	if len(qc.m) >= qc.max {
		qc.m = make(map[string]cacheEntry, qc.max/4)
		qc.resets.Add(1)
	}
	qc.m[key] = cacheEntry{resp: resp, at: now}
	qc.mu.Unlock()
}

// stats returns (hits, misses, resets, live entries).
func (qc *queryCache) stats() (hits, misses, resets uint64, entries int) {
	qc.mu.RLock()
	n := len(qc.m)
	qc.mu.RUnlock()
	return qc.hits.Load(), qc.misses.Load(), qc.resets.Load(), n
}
