package serve

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/vector"
)

// queryCache memoizes recent query responses keyed by the quantized
// demand vector and k. An entry stays valid for one freshness window
// (TTL) and, when epoch invalidation is on (Config.CacheEpochBound),
// only while the engine's write epoch has not advanced more than the
// bound past the entry's fill — every applied batch that mutated a
// shard bumps the epoch, so a burst of joins/updates/leaves stops
// the cache from serving pre-write results even inside the TTL
// window. Under heavy read traffic this still collapses bursts of
// equivalent demands into one snapshot scan per window; residual
// staleness mirrors what the paper's index already tolerates between
// state-update cycles.
type queryCache struct {
	ttl        time.Duration
	epochBound uint64 // 0: TTL-only expiry
	quantum    float64
	inv        vector.Vec // 1/(quantum*cmax[k]), 0 for zero-capacity dims
	max        int

	mu sync.RWMutex
	m  map[string]cacheEntry

	// recheckHook, when set (tests only), runs between the read-locked
	// lookup of a stale entry and the write-locked recheck — the
	// window a concurrent put can refresh the key in.
	recheckHook func()

	hits   atomic.Uint64
	misses atomic.Uint64
	resets atomic.Uint64
}

type cacheEntry struct {
	resp  QueryResponse
	at    time.Time
	epoch uint64 // engine write epoch at fill
}

func newQueryCache(cfg Config) *queryCache {
	inv := make(vector.Vec, cfg.CMax.Dim())
	for i, c := range cfg.CMax {
		if c > 0 {
			inv[i] = 1 / (cfg.CacheQuantum * c)
		}
	}
	bound := uint64(0)
	if cfg.CacheEpochBound > 0 {
		bound = uint64(cfg.CacheEpochBound)
	}
	return &queryCache{
		ttl:        cfg.CacheTTL,
		epochBound: bound,
		quantum:    cfg.CacheQuantum,
		inv:        inv,
		max:        cfg.CacheSize,
		m:          make(map[string]cacheEntry),
	}
}

// quantize maps demand onto the cache grid: it returns the cache key
// for (demand, k) and the cell's upper-bound demand. Responses
// shared through the cache are computed against that upper bound, so
// every demand landing in the cell receives candidates that dominate
// it — conservative (a candidate may be skipped near a cell edge),
// never the reverse.
func (qc *queryCache) quantize(demand vector.Vec, k int) (string, vector.Vec) {
	buf := make([]byte, 0, 8+8*len(demand))
	ub := make(vector.Vec, len(demand))
	for i, d := range demand {
		if qc.inv[i] == 0 {
			// Zero-capacity dimension: no grid; exact-match bucket.
			ub[i] = d
			buf = strconv.AppendUint(buf, math.Float64bits(d), 36)
			buf = append(buf, '|')
			continue
		}
		cell := int64(math.Ceil(d * qc.inv[i]))
		ub[i] = float64(cell) / qc.inv[i]
		buf = strconv.AppendInt(buf, cell, 36)
		buf = append(buf, '|')
	}
	buf = strconv.AppendInt(buf, int64(k), 36)
	return string(buf), ub
}

// fresh reports whether an entry may still be served: inside its TTL
// window and, with epoch invalidation on, filled no more than
// epochBound write batches before the reader's epoch. An entry
// filled at or after the reader's own epoch view is fresh by
// definition — a reader that loaded its epoch before being preempted
// must not treat a newer fill as stale (the unsigned subtraction
// would wrap and evict brand-new entries).
func (qc *queryCache) fresh(e cacheEntry, now time.Time, epoch uint64) bool {
	if now.Sub(e.at) > qc.ttl {
		return false
	}
	return qc.epochBound == 0 || e.epoch >= epoch || epoch-e.epoch <= qc.epochBound
}

// get returns the cached response for the key if it is still fresh
// at the given time and write epoch. The response's Candidates slice
// is a private copy — callers may re-rank or otherwise mutate it
// without corrupting the cache. A stale entry is deleted on lookup,
// so stats never count dead entries the next put would overwrite
// anyway.
func (qc *queryCache) get(key string, now time.Time, epoch uint64) (QueryResponse, bool) {
	qc.mu.RLock()
	e, ok := qc.m[key]
	qc.mu.RUnlock()
	if ok && !qc.fresh(e, now, epoch) {
		if qc.recheckHook != nil {
			qc.recheckHook()
		}
		qc.mu.Lock()
		// Re-check under the write lock: a concurrent put may have
		// refreshed the key since the read above — then the live,
		// fresh entry is the hit, not a forced rescan.
		if cur, live := qc.m[key]; live && qc.fresh(cur, now, epoch) {
			e = cur
		} else {
			if live {
				delete(qc.m, key)
			}
			ok = false
		}
		qc.mu.Unlock()
	}
	if !ok {
		qc.misses.Add(1)
		return QueryResponse{}, false
	}
	qc.hits.Add(1)
	resp := e.resp
	resp.Candidates = append([]Candidate(nil), e.resp.Candidates...)
	return resp, true
}

// put stores a response filled at the given write epoch. When the
// cache is full it is reset wholesale: entries all expire within one
// TTL anyway, so precise eviction buys nothing over the occasional
// cheap rebuild.
func (qc *queryCache) put(key string, resp QueryResponse, now time.Time, epoch uint64) {
	qc.mu.Lock()
	if len(qc.m) >= qc.max {
		qc.m = make(map[string]cacheEntry, qc.max/4)
		qc.resets.Add(1)
	}
	// A slow reader must not clobber a fill made from a newer epoch
	// view — its entry would read as instantly stale to everyone
	// else and force rescans of a key that was just refreshed.
	if cur, ok := qc.m[key]; !ok || cur.epoch <= epoch {
		qc.m[key] = cacheEntry{resp: resp, at: now, epoch: epoch}
	}
	qc.mu.Unlock()
}

// stats returns (hits, misses, resets, live entries).
func (qc *queryCache) stats() (hits, misses, resets uint64, entries int) {
	qc.mu.RLock()
	n := len(qc.m)
	qc.mu.RUnlock()
	return qc.hits.Load(), qc.misses.Load(), qc.resets.Load(), n
}
