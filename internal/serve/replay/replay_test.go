package replay_test

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"pidcan"
	"pidcan/internal/serve"
	"pidcan/internal/serve/capture"
	"pidcan/internal/serve/replay"
	"pidcan/internal/task"
	"pidcan/internal/vector"
)

// TestRecordReplayProperty is the subsystem's end-to-end property:
// record a live mixed run — updates, joins, leaves, queries, one
// explicit migration — through the real file-backed Recorder, replay
// the trace into a fresh engine, and require (a) byte-identical
// ranked candidate lists for every captured query and (b) an
// identical final node set, with zero capture drops.
func TestRecordReplayProperty(t *testing.T) {
	hdr := capture.Header{
		Shards:        4,
		NodesPerShard: 12,
		Seed:          99,
		CMax:          []float64(task.CMax()),
	}
	live, err := pidcan.NewEngine(replay.EngineConfig(hdr))
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()

	path := filepath.Join(t.TempDir(), "trace.bin")
	rec, err := capture.NewRecorder(path, hdr, capture.RecorderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	live.SetCapture(rec)

	rng := rand.New(rand.NewSource(4242))
	cmax := vector.Vec(hdr.CMax)
	randVec := func(lo, hi float64) vector.Vec {
		v := vector.New(len(cmax))
		for i := range v {
			v[i] = (lo + (hi-lo)*rng.Float64()) * cmax[i]
		}
		return v
	}

	// The live mixed run, driven sequentially so the trace order is
	// the issue order and strict digest comparison is sound.
	var liveResponses []serve.QueryResponse
	query := func() {
		resp, err := live.Query(serve.QueryRequest{Demand: randVec(0.05, 0.4), K: 3, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		liveResponses = append(liveResponses, resp)
	}
	alive := live.Nodes()
	for _, id := range alive {
		if err := live.Update(id, randVec(0.3, 1.0), false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 150; i++ {
		switch rng.Intn(10) {
		case 0:
			if id, err := live.JoinOn(i%hdr.Shards, randVec(0.4, 0.9)); err == nil {
				alive = append(alive, id)
			}
		case 1:
			if len(alive) > 16 {
				victim := rng.Intn(len(alive))
				if live.Leave(alive[victim]) == nil {
					alive = append(alive[:victim], alive[victim+1:]...)
				}
			}
		case 2, 3, 4:
			if err := live.Update(alive[rng.Intn(len(alive))], randVec(0.2, 1.0), false); err != nil {
				t.Fatal(err)
			}
		default:
			query()
		}
		if i == 75 {
			// The one migration: move a node to the next shard and keep
			// writing to it under its stable external id.
			mover := alive[0]
			if err := live.Migrate(mover, (mover.Shard()+1)%hdr.Shards); err != nil {
				t.Fatal(err)
			}
			if err := live.Update(mover, randVec(0.5, 0.9), false); err != nil {
				t.Fatal(err)
			}
		}
	}

	live.SetCapture(nil)
	// Close drains the ring; the counters are complete only after it.
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	st := rec.Stats()
	if st.Dropped != 0 {
		t.Fatalf("capture dropped %d events on a sequential run", st.Dropped)
	}
	if st.Records == 0 {
		t.Fatal("capture recorded nothing")
	}

	rhdr, events, torn, err := capture.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("%d torn bytes in a cleanly closed trace", torn)
	}
	if uint64(len(events)) != st.Records {
		t.Fatalf("trace has %d events, recorder counted %d", len(events), st.Records)
	}

	// Replay into a fresh engine and collect every replayed response.
	fresh, err := pidcan.NewEngine(replay.EngineConfig(rhdr))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	var replayed []serve.QueryResponse
	res, err := replay.Run(fresh, rhdr, events, replay.Options{
		Strict: true,
		OnQuery: func(ev *capture.Event, resp serve.QueryResponse, err error) {
			if err != nil {
				t.Errorf("replayed query failed: %v", err)
			}
			replayed = append(replayed, resp)
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Check(replay.Invariants{ZeroAckedWriteLoss: true, DigestEquivalence: true}); len(v) > 0 {
		t.Fatalf("invariants violated: %v", v)
	}

	// (a) byte-identical ranked candidates, query by query.
	if len(replayed) != len(liveResponses) {
		t.Fatalf("replayed %d queries, recorded %d", len(replayed), len(liveResponses))
	}
	for i := range replayed {
		if !reflect.DeepEqual(replayed[i].Candidates, liveResponses[i].Candidates) {
			t.Fatalf("query %d: replayed candidates differ\nlive:   %+v\nreplay: %+v",
				i, liveResponses[i].Candidates, replayed[i].Candidates)
		}
	}

	// (b) identical final node set (Nodes() is deterministic order).
	if ln, fn := live.Nodes(), fresh.Nodes(); !reflect.DeepEqual(ln, fn) {
		t.Fatalf("final node sets differ: live %d nodes, fresh %d", len(ln), len(fn))
	}
}

// TestReplayFaultSkip replays a fault against a target that cannot
// express it and requires the replay to count a skip, not fail.
func TestReplayFaultSkip(t *testing.T) {
	hdr := capture.Header{Shards: 2, NodesPerShard: 4, Seed: 5, CMax: []float64(task.CMax())}
	events := []capture.Event{
		{Kind: capture.EvFault, Fault: capture.FaultPromote, Target: 0},
	}
	e, err := pidcan.NewEngine(replay.EngineConfig(hdr))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// An engine has Promote, so this is applied (not skipped) even if
	// it errors on a primary; wrap in a Service-only facade to hide it.
	res, err := replay.Run(serviceOnly{e}, hdr, events, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsSkipped != 1 {
		t.Fatalf("expected 1 skipped fault, got %+v", res)
	}
}

// serviceOnly hides every optional capability of an engine.
type serviceOnly struct{ e *serve.Engine }

func (s serviceOnly) Query(q serve.QueryRequest) (serve.QueryResponse, error) { return s.e.Query(q) }
func (s serviceOnly) Update(id serve.GlobalID, v vector.Vec, a bool) error {
	return s.e.Update(id, v, a)
}
func (s serviceOnly) Join(v vector.Vec) (serve.GlobalID, error)           { return s.e.Join(v) }
func (s serviceOnly) JoinOn(sh int, v vector.Vec) (serve.GlobalID, error) { return s.e.JoinOn(sh, v) }
func (s serviceOnly) Leave(id serve.GlobalID) error                       { return s.e.Leave(id) }
func (s serviceOnly) Take(id serve.GlobalID) (vector.Vec, error)          { return s.e.Take(id) }
func (s serviceOnly) Nodes() []serve.GlobalID                             { return s.e.Nodes() }
func (s serviceOnly) Epoch() uint64                                       { return s.e.Epoch() }
func (s serviceOnly) Fence(epoch uint64)                                  { s.e.Fence(epoch) }
func (s serviceOnly) PrimaryAddr() string                                 { return s.e.PrimaryAddr() }
func (s serviceOnly) StatsPayload() any                                   { return s.e.StatsPayload() }
