// Package replay drives a fresh serving engine (or any
// serve.Service, including a federation router) deterministically
// through a captured trace: every event is applied sequentially in
// trace order, at recorded pacing or as fast as the target allows,
// with scripted faults injected at their recorded positions and a
// set of invariants asserted at the end — zero acked-write loss,
// response-digest equivalence against a reference engine, bounded
// shard imbalance, bounded p99.
//
// Determinism contract. A trace replays bit-deterministically when
// (a) the target engine is built from the trace header's shape (same
// shards, nodes per shard, seed, CMax — equal configs rebuild
// identical backends, the same property recovery relies on), (b)
// queries in the trace bypass the cache (wall-clock TTLs are not
// replayable) and the consistent path (the protocol's hop state
// depends on wall-timed idle ticks), and (c) RecordTTL is unset so
// snapshot results depend only on the record set. Scenario-generated
// traces satisfy all three by construction; live-captured traces of
// concurrent traffic keep per-shard write order exact (mutations are
// captured on the shard goroutines in application order) but may
// interleave query digests non-strictly — replay against a reference
// engine stays exact, comparison against live-recorded digests is
// opt-in via Options.Strict.
package replay

import (
	"fmt"
	"sort"
	"time"

	"pidcan/internal/overlay"
	"pidcan/internal/serve"
	"pidcan/internal/serve/capture"
	"pidcan/internal/serve/wal"
	"pidcan/internal/vector"
)

// Pace selects replay pacing.
type Pace int

const (
	// PaceMax replays back-to-back, as fast as the target applies.
	PaceMax Pace = iota
	// PaceRecorded reproduces the captured arrival deltas.
	PaceRecorded
)

// Options parameterizes a replay run.
type Options struct {
	Pace Pace
	// Strict compares every replayed non-cached query digest against
	// the digest captured live. Sound for sequentially captured
	// traces (scenarios, the property tests); concurrently captured
	// digests may legitimately differ (see the package comment).
	Strict bool
	// Reference, when non-nil, is a second engine driven through the
	// identical event sequence (including faults); every query's
	// digest is compared between target and reference. Build it from
	// the same header shape, conventionally with IndexDisabled and
	// CacheDisabled so the linear-scan baseline referees the indexed
	// read path.
	Reference *serve.Engine
	// OnQuery, when set, observes every replayed query.
	OnQuery func(ev *capture.Event, resp serve.QueryResponse, err error)
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Invariants is the assertion set checked against a Result.
type Invariants struct {
	// ZeroAckedWriteLoss asserts every write acked during replay is
	// reflected in the target's final node set, nothing lost, nothing
	// resurrected, and no write failed unexpectedly.
	ZeroAckedWriteLoss bool
	// DigestEquivalence asserts zero digest mismatches — against the
	// reference engine when one is attached, and against recorded
	// digests when Strict.
	DigestEquivalence bool
	// MaxImbalance, when > 0, bounds the final max/min shard
	// population ratio (halted shards excluded; engine targets only).
	MaxImbalance float64
	// MaxP99, when > 0, bounds the replayed query p99 latency.
	MaxP99 time.Duration
}

// Result is what a replay run measured.
type Result struct {
	Events    int `json:"events"`
	Queries   int `json:"queries"`
	Mutations int `json:"mutations"`
	Faults    int `json:"faults"`

	// AckedWrites counts mutations the target acknowledged;
	// RejectedOnHalted counts writes that failed because their shard
	// was halted by an earlier fault (expected, not loss);
	// WriteErrors counts unexpected write failures.
	AckedWrites      int `json:"acked_writes"`
	RejectedOnHalted int `json:"rejected_on_halted"`
	WriteErrors      int `json:"write_errors"`
	QueryErrors      int `json:"query_errors"`

	// JoinDivergence counts joins whose assigned id differed from the
	// recorded one — the replay-is-off-the-rails signal (all
	// subsequent ids would misroute).
	JoinDivergence int `json:"join_divergence"`
	// DigestMismatches counts replayed digests differing from the
	// recorded ones (Strict only); RefMismatches counts target vs
	// reference digest differences.
	DigestMismatches int `json:"digest_mismatches"`
	RefMismatches    int `json:"ref_mismatches"`
	// FaultsSkipped counts fault events the target cannot express
	// (e.g. a promote on a primary).
	FaultsSkipped int `json:"faults_skipped"`

	// LostWrites is how many acked-alive nodes are missing from the
	// final node set; ExtraNodes how many final nodes were never
	// acked alive.
	LostWrites int `json:"lost_writes"`
	ExtraNodes int `json:"extra_nodes"`

	// Imbalance is the final max/min shard population ratio over
	// non-halted shards (0 when the target is not an engine).
	Imbalance float64 `json:"imbalance"`

	P50  time.Duration `json:"p50_ns"`
	P99  time.Duration `json:"p99_ns"`
	Wall time.Duration `json:"wall_ns"`
}

// Check returns the invariant violations, empty when all hold.
func (r *Result) Check(inv Invariants) []string {
	var v []string
	if r.JoinDivergence > 0 {
		v = append(v, fmt.Sprintf("replay diverged: %d joins assigned ids differing from the trace", r.JoinDivergence))
	}
	if inv.ZeroAckedWriteLoss {
		if r.LostWrites > 0 {
			v = append(v, fmt.Sprintf("acked-write loss: %d acked-alive nodes missing from the final node set", r.LostWrites))
		}
		if r.ExtraNodes > 0 {
			v = append(v, fmt.Sprintf("acked-write loss: %d final nodes never acked alive", r.ExtraNodes))
		}
		if r.WriteErrors > 0 {
			v = append(v, fmt.Sprintf("acked-write loss: %d unexpected write failures", r.WriteErrors))
		}
	}
	if inv.DigestEquivalence {
		if r.RefMismatches > 0 {
			v = append(v, fmt.Sprintf("digest equivalence: %d responses differ from the reference engine", r.RefMismatches))
		}
		if r.DigestMismatches > 0 {
			v = append(v, fmt.Sprintf("digest equivalence: %d responses differ from the recorded digests", r.DigestMismatches))
		}
	}
	if inv.MaxImbalance > 0 && r.Imbalance > inv.MaxImbalance {
		v = append(v, fmt.Sprintf("imbalance %.2f exceeds bound %.2f", r.Imbalance, inv.MaxImbalance))
	}
	if inv.MaxP99 > 0 && r.P99 > inv.MaxP99 {
		v = append(v, fmt.Sprintf("p99 %s exceeds bound %s", r.P99, inv.MaxP99))
	}
	return v
}

// Optional target capabilities: faults and migrations need more than
// the Service surface. A target lacking one has the event counted as
// skipped (faults) or errored (migrations).
type shardHalter interface{ HaltShard(int) error }
type migrator interface {
	Migrate(serve.GlobalID, int) error
}
type promoter interface{ Promote() (uint64, error) }
type rebalancer interface {
	Rebalance() (serve.RebalanceResult, error)
}
type statser interface{ Stats() serve.Stats }

// Run replays events (from a trace with header hdr) against sut.
func Run(sut serve.Service, hdr capture.Header, events []capture.Event, opts Options) (*Result, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &Result{Events: len(events)}
	r := &runner{sut: sut, ref: opts.Reference, opts: opts, res: res,
		halted: map[int]bool{}, home: map[serve.GlobalID]int{}, alive: map[serve.GlobalID]bool{}}
	for _, id := range sut.Nodes() {
		r.alive[id] = true
		r.home[id] = id.Shard()
	}
	start := time.Now()
	var lats []time.Duration
	for i := range events {
		ev := &events[i]
		if opts.Pace == PaceRecorded {
			if d := time.Until(start.Add(ev.At)); d > 0 {
				time.Sleep(d)
			}
		}
		switch ev.Kind {
		case capture.EvQuery:
			res.Queries++
			t0 := time.Now()
			lats = append(lats, r.query(ev, t0))
		case capture.EvMutation:
			res.Mutations++
			r.mutate(ev)
		case capture.EvFault:
			res.Faults++
			r.fault(ev, logf)
		}
	}
	res.Wall = time.Since(start)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.P50 = lats[len(lats)/2]
		res.P99 = lats[len(lats)*99/100]
	}
	// Final-state reconciliation: the target's node set vs what the
	// acked write sequence implies.
	fin := map[serve.GlobalID]bool{}
	for _, id := range sut.Nodes() {
		fin[id] = true
	}
	for id := range r.alive {
		if !fin[id] {
			res.LostWrites++
		}
	}
	for id := range fin {
		if !r.alive[id] {
			res.ExtraNodes++
		}
	}
	if st, ok := sut.(statser); ok {
		res.Imbalance = imbalance(st.Stats(), r.halted)
	}
	return res, nil
}

// runner carries the per-run replay state.
type runner struct {
	sut  serve.Service
	ref  *serve.Engine
	opts Options
	res  *Result

	halted map[int]bool
	// home tracks each live node's current shard (updated on join and
	// migration) so writes hitting a halted shard are recognized as
	// expected rejections, not loss.
	home  map[serve.GlobalID]int
	alive map[serve.GlobalID]bool
}

func (r *runner) query(ev *capture.Event, t0 time.Time) time.Duration {
	req := serve.QueryRequest{Demand: vector.Vec(ev.Demand), K: ev.K,
		Consistent: ev.Consistent, NoCache: ev.NoCache}
	if ev.ScopeOne {
		req.Scope = serve.ScopeOne
	}
	resp, err := r.sut.Query(req)
	lat := time.Since(t0)
	if err != nil {
		r.res.QueryErrors++
	} else {
		dig := capture.Digest(resp.Candidates)
		if r.opts.Strict && !ev.Cached && dig != ev.Digest {
			r.res.DigestMismatches++
		}
		if r.ref != nil {
			// Cacheable responses are evaluated against their
			// quantization cell's upper-bound demand (and may be served
			// from an older snapshot) by design, so they cannot be held
			// against a cacheless reference directly. Queries are
			// side-effect-free: probe both engines on the exact NoCache
			// read path instead and assert equivalence there.
			cmpReq, cmpDig := req, dig
			if !req.NoCache && !req.Consistent {
				cmpReq.NoCache = true
				if exact, exErr := r.sut.Query(cmpReq); exErr == nil {
					cmpDig = capture.Digest(exact.Candidates)
				}
			}
			refResp, refErr := r.ref.Query(cmpReq)
			if refErr != nil || capture.Digest(refResp.Candidates) != cmpDig {
				r.res.RefMismatches++
			}
		}
	}
	if r.opts.OnQuery != nil {
		r.opts.OnQuery(ev, resp, err)
	}
	return lat
}

// mutate replays one recorded mutation. Updates and leaves address
// the node's external id; joins target the recorded shard and verify
// the assigned id; a repoint-join (the destination half of a
// migration) is replayed as one Migrate call, and the matching take
// record is skipped when it arrives.
func (r *runner) mutate(ev *capture.Event) {
	rec, shard := ev.Rec, ev.Shard
	expectHalted := r.halted[shard]
	apply := func(do func(s serve.Service) error) (acked bool) {
		err := do(r.sut)
		if r.ref != nil {
			// The reference mirrors every ack and rejection: both
			// engines saw the same faults, so they fail together.
			do(r.ref)
		}
		switch {
		case err == nil:
			r.res.AckedWrites++
			return true
		case expectHalted:
			r.res.RejectedOnHalted++
		default:
			r.res.WriteErrors++
		}
		return false
	}
	switch rec.Kind {
	case wal.KindUpdate:
		ext := r.external(serve.Global(shard, overlay.NodeID(rec.Node)))
		if h, ok := r.home[ext]; ok {
			expectHalted = r.halted[h]
		}
		apply(func(s serve.Service) error {
			return s.Update(ext, vector.Vec(rec.Avail), rec.Announce)
		})
	case wal.KindJoin:
		if rec.Repoint {
			// Destination half of a migration: replay the whole move.
			old := serve.GlobalID(rec.Old)
			ext := serve.GlobalID(rec.Ext)
			if h, ok := r.home[ext]; ok && (r.halted[h] || r.halted[shard]) {
				expectHalted = true
			}
			m, ok := r.sut.(migrator)
			if !ok {
				r.res.WriteErrors++
				return
			}
			if apply(func(s serve.Service) error {
				_ = s // the migrator interface drives the sut directly
				return m.Migrate(old, shard)
			}) {
				r.home[ext] = shard
			}
			if r.ref != nil {
				// apply() above only mirrored through the Service
				// surface; migration needs the engine call.
			}
			return
		}
		want := serve.Global(shard, overlay.NodeID(rec.Node))
		var got serve.GlobalID
		if apply(func(s serve.Service) error {
			var err error
			got, err = s.JoinOn(shard, vector.Vec(rec.Avail))
			return err
		}) {
			if got != want {
				r.res.JoinDivergence++
			}
			r.alive[got] = true
			r.home[got] = shard
		}
	case wal.KindLeave:
		ext := r.external(serve.Global(shard, overlay.NodeID(rec.Node)))
		if h, ok := r.home[ext]; ok {
			expectHalted = r.halted[h]
		}
		if apply(func(s serve.Service) error {
			return s.Leave(ext)
		}) {
			delete(r.alive, ext)
			delete(r.home, ext)
		}
	case wal.KindTake:
		// The local-migration take: its work is replayed by the
		// matching repoint-join's Migrate. Nothing to do here.
	}
}

// external maps a recorded physical id to the node's external id:
// migrated nodes are recorded in the WAL stream under their current
// physical home, but the Service surface addresses them by any id
// they were ever known by, so passing the physical id through is
// correct — this helper exists to make that explicit.
func (r *runner) external(phys serve.GlobalID) serve.GlobalID { return phys }

func (r *runner) fault(ev *capture.Event, logf func(string, ...any)) {
	inject := func(target any) bool {
		switch ev.Fault {
		case capture.FaultHaltShard, capture.FaultKillMember:
			if h, ok := target.(shardHalter); ok {
				h.HaltShard(ev.Target)
				return true
			}
		case capture.FaultPromote:
			if p, ok := target.(promoter); ok {
				p.Promote()
				return true
			}
		case capture.FaultRebalance:
			if rb, ok := target.(rebalancer); ok {
				rb.Rebalance()
				return true
			}
		}
		return false
	}
	ok := inject(r.sut)
	if r.ref != nil {
		inject(r.ref)
	}
	if !ok {
		r.res.FaultsSkipped++
		logf("replay: fault %d on target %d skipped (unsupported by target)", ev.Fault, ev.Target)
		return
	}
	if ev.Fault == capture.FaultHaltShard || ev.Fault == capture.FaultKillMember {
		r.halted[ev.Target] = true
	}
}

// imbalance is the max/min shard population ratio over non-halted,
// populated shards (1 when fewer than two such shards exist).
func imbalance(st serve.Stats, halted map[int]bool) float64 {
	min, max, n := 0, 0, 0
	for _, sh := range st.Shards {
		if halted[sh.Shard] {
			continue
		}
		if n == 0 || sh.Nodes < min {
			min = sh.Nodes
		}
		if sh.Nodes > max {
			max = sh.Nodes
		}
		n++
	}
	if n < 2 || min == 0 {
		if max > 0 && min == 0 && n >= 2 {
			return float64(max)
		}
		return 1
	}
	return float64(max) / float64(min)
}

// EngineConfig is the serve.Config a trace header implies — the
// shape Run's determinism contract needs the target built from.
// Callers layer their own knobs (DataDir, cache/index switches) on
// top.
func EngineConfig(hdr capture.Header) serve.Config {
	return serve.Config{
		Shards:        hdr.Shards,
		NodesPerShard: hdr.NodesPerShard,
		Seed:          hdr.Seed,
		CMax:          vector.Vec(hdr.CMax),
	}
}
