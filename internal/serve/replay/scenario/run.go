package scenario

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/serve/capture"
	"pidcan/internal/serve/repl"
	"pidcan/internal/serve/replay"
	"pidcan/internal/vector"

	pidcan "pidcan"
)

// Run replays a compiled scenario against a fresh engine (built from
// the scenario header, so it starts bit-identical to the recording
// engine) with a linear-scan, cache-off reference engine refereeing
// every response, and returns the measured result plus the invariant
// violations (empty = scenario passed).
//
// A Replicated scenario runs the target as a durable primary with a
// live follower tailing it over the replication protocol for the
// whole replay; afterwards the harness waits for convergence and
// asserts the follower holds the exact node set the primary acked,
// then promotes the follower and requires it to serve. dir hosts the
// durable state (unused otherwise).
func Run(sc *Scenario, dir string, logf func(string, ...any)) (*replay.Result, []string, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	refCfg := replay.EngineConfig(sc.Header)
	refCfg.IndexDisabled = true
	refCfg.CacheDisabled = true
	ref, err := newEngine(refCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: reference engine: %w", err)
	}
	defer ref.Close()

	sutCfg := replay.EngineConfig(sc.Header)
	var follower *followerRig
	if sc.Replicated {
		sutCfg.DataDir = filepath.Join(dir, "primary")
	}
	sut, err := newEngine(sutCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: target engine: %w", err)
	}
	defer sut.Close()
	if sc.Replicated {
		follower, err = startFollower(sut, sutCfg, dir, logf)
		if err != nil {
			return nil, nil, err
		}
		defer follower.close()
	}

	res, err := replay.Run(sut, sc.Header, sc.Events, replay.Options{
		Pace:      sc.Pace,
		Strict:    true,
		Reference: ref,
		Logf:      logf,
	})
	if err != nil {
		return nil, nil, err
	}
	viol := res.Check(sc.Invariants)
	if follower != nil {
		viol = append(viol, follower.verify(sut, sc)...)
	}
	return res, viol, nil
}

// followerRig is the replication leg of a Replicated scenario: the
// primary's repl server plus an in-process follower tailing it.
type followerRig struct {
	srv  *repl.Server
	ln   net.Listener
	cl   *repl.Client
	logf func(string, ...any)
}

func startFollower(primary *serve.Engine, primaryCfg serve.Config, dir string, logf func(string, ...any)) (*followerRig, error) {
	srv, err := repl.NewServer(primary, repl.ServerConfig{Heartbeat: 20 * time.Millisecond})
	if err != nil {
		return nil, fmt.Errorf("scenario: repl server: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("scenario: repl listen: %w", err)
	}
	go srv.Serve(ln)
	fcfg := primaryCfg
	fcfg.DataDir = filepath.Join(dir, "follower")
	fcfg.Follower = true
	fcfg.PrimaryAddr = ln.Addr().String()
	cl, err := repl.NewClient(repl.ClientConfig{
		Primary:      fcfg.PrimaryAddr,
		DataDir:      fcfg.DataDir,
		Shards:       fcfg.Shards,
		Mount:        func() (*serve.Engine, error) { return newEngine(fcfg) },
		RetryMin:     20 * time.Millisecond,
		RetryMax:     200 * time.Millisecond,
		DrainTimeout: time.Second,
		Logf:         logf,
	})
	if err != nil {
		srv.Close()
		ln.Close()
		return nil, fmt.Errorf("scenario: repl client: %w", err)
	}
	go cl.Run()
	return &followerRig{srv: srv, ln: ln, cl: cl, logf: logf}, nil
}

// verify waits for the follower to converge onto the primary's
// mirror positions, then checks node-set equality and that a
// promoted follower serves queries.
func (f *followerRig) verify(primary *serve.Engine, sc *Scenario) []string {
	var viol []string
	deadline := time.Now().Add(15 * time.Second)
	for {
		pp, perr := positionsOf(primary)
		fp, ferr := positionsOf(f.cl.Engine())
		if perr == nil && ferr == nil && fp != nil && reflect.DeepEqual(pp, fp) {
			break
		}
		if time.Now().After(deadline) {
			viol = append(viol, fmt.Sprintf("follower never caught up: primary %v follower %v (%v/%v)", pp, fp, perr, ferr))
			return viol
		}
		time.Sleep(5 * time.Millisecond)
	}
	fe := f.cl.Engine()
	pn, fn := primary.Nodes(), fe.Nodes()
	if !reflect.DeepEqual(pn, fn) {
		viol = append(viol, fmt.Sprintf("follower node set diverged: primary has %d nodes, follower %d", len(pn), len(fn)))
	}
	// The promote leg: a caught-up follower must take over serving.
	if _, err := fe.Promote(); err != nil {
		viol = append(viol, fmt.Sprintf("follower promote failed: %v", err))
		return viol
	}
	ev := queryEvent(sc)
	if ev == nil {
		return viol
	}
	resp, err := fe.Query(serve.QueryRequest{Demand: vector.Vec(ev.Demand), K: ev.K, NoCache: true})
	if err != nil {
		viol = append(viol, fmt.Sprintf("promoted follower query failed: %v", err))
	} else if len(resp.Candidates) == 0 && ev.NCand > 0 {
		viol = append(viol, "promoted follower returned no candidates for a query the primary answered")
	}
	return viol
}

func (f *followerRig) close() {
	f.cl.Close()
	if e := f.cl.Engine(); e != nil {
		e.Close()
	}
	f.srv.Close()
	f.ln.Close()
}

func positionsOf(e *serve.Engine) ([]serve.ReplPos, error) {
	if e == nil {
		return nil, nil
	}
	out := make([]serve.ReplPos, e.Shards())
	for i := range out {
		p, err := e.ReplSyncPosition(i)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// queryEvent returns some query event of the scenario (nil if none).
func queryEvent(sc *Scenario) *capturedQuery {
	for i := range sc.Events {
		if ev := &sc.Events[i]; ev.Kind == capture.EvQuery {
			return &capturedQuery{Demand: ev.Demand, K: ev.K, NCand: ev.NCand}
		}
	}
	return nil
}

type capturedQuery struct {
	Demand []float64
	K      int
	NCand  int
}

// newEngine builds a cluster-backed engine (the real backend, so
// scenario replays exercise the same stack production serves).
func newEngine(cfg serve.Config) (*serve.Engine, error) { return pidcan.NewEngine(cfg) }

// WriteTraceFile persists a compiled scenario as a standard trace
// file (the format capture.ReadTraceFile reads and pidcan-replay
// replays), with the synthetic event clock intact.
func WriteTraceFile(path string, sc *Scenario) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w, err := capture.NewWriter(f, sc.Header)
	if err != nil {
		f.Close()
		return err
	}
	for i := range sc.Events {
		if err := w.WriteEvent(&sc.Events[i]); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
