package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pidcan/internal/serve/capture"
)

// TestCorpusReplays runs every scenario of the corpus end to end:
// compile at a fixed seed, replay against a fresh engine with a
// linear-scan reference attached, assert the invariant set holds.
func TestCorpusReplays(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := Build(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(sc.Events) < 100 {
				t.Fatalf("scenario %s compiled to only %d events", name, len(sc.Events))
			}
			res, viol, err := Run(sc, t.TempDir(), t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range viol {
				t.Errorf("invariant violated: %s", v)
			}
			if res.Queries == 0 || res.Mutations == 0 {
				t.Fatalf("degenerate scenario: %+v", res)
			}
			t.Logf("%s: %d events (%d queries, %d mutations, %d faults), p99 %s, imbalance %.2f",
				name, res.Events, res.Queries, res.Mutations, res.Faults, res.P99, res.Imbalance)
		})
	}
}

// TestCorpusDeterministic compiles every scenario twice at the same
// seed and requires bit-identical traces — the property replay's
// digest assertions stand on.
func TestCorpusDeterministic(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			a := compileBytes(t, name, 7)
			b := compileBytes(t, name, 7)
			if !bytes.Equal(a, b) {
				t.Fatalf("scenario %s is not deterministic: traces differ (%d vs %d bytes)", name, len(a), len(b))
			}
			c := compileBytes(t, name, 8)
			if bytes.Equal(a, c) {
				t.Fatalf("scenario %s ignores its seed", name)
			}
		})
	}
}

// TestTraceFileRoundTrip writes a compiled scenario through the real
// trace encoder and reads it back whole.
func TestTraceFileRoundTrip(t *testing.T) {
	sc, err := Build("flash-crowd", 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := WriteTraceFile(path, sc); err != nil {
		t.Fatal(err)
	}
	hdr, events, torn, err := capture.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("%d torn bytes in a cleanly written trace", torn)
	}
	if hdr.Shards != sc.Header.Shards || hdr.Seed != sc.Header.Seed ||
		len(hdr.CMax) != len(sc.Header.CMax) || len(events) != len(sc.Events) {
		t.Fatalf("round trip mismatch: %d events in, %d out", len(sc.Events), len(events))
	}
	for i := range events {
		if events[i].Kind != sc.Events[i].Kind || events[i].Digest != sc.Events[i].Digest {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, events[i], sc.Events[i])
		}
	}
	// A truncated copy must decode as a torn tail, not an error.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, shortEvents, torn2, err := capture.DecodeTrace(data[:len(data)-5])
	if err != nil {
		t.Fatal(err)
	}
	if torn2 == 0 || len(shortEvents) != len(events)-1 {
		t.Fatalf("torn tail not tolerated: %d events, %d torn", len(shortEvents), torn2)
	}
}

func compileBytes(t *testing.T, name string, seed uint64) []byte {
	t.Helper()
	sc, err := Build(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := capture.NewWriter(&buf, sc.Header)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sc.Events {
		ev := sc.Events[i]
		ev.At = 0 // normalize: only the logical stream must match
		if err := w.WriteEvent(&ev); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}
