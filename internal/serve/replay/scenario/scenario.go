// Package scenario is the CI corpus of named replay scenarios. Each
// generator scripts a traffic pattern the serving stack must survive
// — a flash crowd, correlated shard/member death, demand-vector
// drift, a read-write phase shift, follower lag under a write burst —
// and compiles it into a capture trace plus the invariant set the
// replay must satisfy. Compilation is recording: the script drives a
// fresh engine sequentially with a synchronous capture sink attached,
// so the emitted trace is a real engine's answer to the pattern and
// replays bit-deterministically (same header ⇒ same initial state ⇒
// same join ids and digests).
package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/serve/capture"
	"pidcan/internal/serve/replay"
	"pidcan/internal/serve/wal"
	"pidcan/internal/task"
	"pidcan/internal/vector"

	pidcan "pidcan"
)

// Scenario is one compiled corpus entry: a trace plus its contract.
type Scenario struct {
	Name        string
	Description string
	Header      capture.Header
	Events      []capture.Event
	Invariants  replay.Invariants
	Pace        replay.Pace
	// Replicated scenarios replay against a durable primary with a
	// live follower tailing it; the harness additionally asserts the
	// follower converges to the primary's exact node set and can be
	// promoted to serve afterwards.
	Replicated bool
}

// spec is a registered generator.
type spec struct {
	desc       string
	invariants replay.Invariants
	replicated bool
	script     func(d *driver)
}

var specs = map[string]spec{
	"flash-crowd": {
		desc: "steady mixed traffic, then a query burst concentrated on one hot demand region while capacity joins to absorb it",
		invariants: replay.Invariants{
			ZeroAckedWriteLoss: true,
			DigestEquivalence:  true,
			MaxImbalance:       4,
			MaxP99:             2 * time.Second,
		},
		script: flashCrowd,
	},
	"correlated-death": {
		desc: "two of four shards die mid-run (shard halt + member kill); surviving shards absorb the traffic with zero acked-write loss",
		invariants: replay.Invariants{
			ZeroAckedWriteLoss: true,
			DigestEquivalence:  true,
			MaxImbalance:       6,
		},
		script: correlatedDeath,
	},
	"demand-drift": {
		desc: "the query demand centroid drifts from light to near-saturation across three phases while availability shifts under it",
		invariants: replay.Invariants{
			ZeroAckedWriteLoss: true,
			DigestEquivalence:  true,
		},
		script: demandDrift,
	},
	"phase-shift": {
		desc: "read-heavy, then write-heavy (joins/leaves/updates), then read-heavy again — the cache/index rebuild whiplash pattern",
		invariants: replay.Invariants{
			ZeroAckedWriteLoss: true,
			DigestEquivalence:  true,
			MaxImbalance:       4,
		},
		script: phaseShift,
	},
	"follower-lag": {
		desc: "write bursts against a replicated primary while a follower tails it; the follower must converge to the exact node set and be promotable",
		invariants: replay.Invariants{
			ZeroAckedWriteLoss: true,
			DigestEquivalence:  true,
		},
		replicated: true,
		script:     followerLag,
	},
}

// Names lists the corpus, sorted.
func Names() []string {
	out := make([]string, 0, len(specs))
	for n := range specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build compiles the named scenario at the given seed. The same
// (name, seed) always compiles to the identical event stream.
func Build(name string, seed uint64) (*Scenario, error) {
	sp, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	hdr := capture.Header{
		Shards:        4,
		NodesPerShard: 16,
		Seed:          seed ^ 0x5eed,
		CMax:          []float64(task.CMax()),
	}
	e, err := pidcan.NewEngine(replay.EngineConfig(hdr))
	if err != nil {
		return nil, fmt.Errorf("scenario: recording engine: %w", err)
	}
	defer e.Close()
	sink := &memSink{}
	e.SetCapture(sink)
	d := &driver{
		e:    e,
		sink: sink,
		rng:  rand.New(rand.NewSource(int64(seed) ^ 0x7061747465726e)),
		cmax: vector.Vec(hdr.CMax),
		dead: map[int]bool{},
	}
	d.alive = e.Nodes()
	sp.script(d)
	e.SetCapture(nil)
	return &Scenario{
		Name:        name,
		Description: sp.desc,
		Header:      hdr,
		Events:      sink.take(),
		Invariants:  sp.invariants,
		Pace:        replay.PaceMax,
		Replicated:  sp.replicated,
	}, nil
}

// memSink is the compile-time capture sink: it collects events
// synchronously, in the exact order the sequentially driven engine
// emits them, with a synthetic monotone clock (scripts have no real
// arrival process to preserve).
type memSink struct {
	mu     sync.Mutex
	events []capture.Event
	tick   time.Duration
}

func (m *memSink) CaptureQuery(req serve.QueryRequest, resp *serve.QueryResponse, err error) {
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick += time.Millisecond
	m.events = append(m.events, capture.Event{
		Kind:       capture.EvQuery,
		At:         m.tick,
		Demand:     append([]float64(nil), req.Demand...),
		K:          req.K,
		Consistent: req.Consistent,
		ScopeOne:   req.Scope == serve.ScopeOne,
		NoCache:    req.NoCache,
		Cached:     resp.Cached,
		Digest:     capture.Digest(resp.Candidates),
		NCand:      len(resp.Candidates),
	})
}

func (m *memSink) CaptureMutations(shard int, recs []wal.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range recs {
		m.tick += time.Millisecond
		rec := recs[i]
		rec.Avail = append(rec.Avail[:0:0], rec.Avail...)
		m.events = append(m.events, capture.Event{
			Kind:  capture.EvMutation,
			At:    m.tick,
			Shard: shard,
			Rec:   rec,
		})
	}
}

func (m *memSink) CaptureStats() serve.CaptureStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return serve.CaptureStats{Records: uint64(len(m.events))}
}

// appendFault splices a scripted fault into the stream at the
// current position.
func (m *memSink) appendFault(k capture.FaultKind, target int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick += time.Millisecond
	m.events = append(m.events, capture.Event{
		Kind:   capture.EvFault,
		At:     m.tick,
		Fault:  k,
		Target: target,
	})
}

func (m *memSink) take() []capture.Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events
}

// driver is the script vocabulary: every call drives the recording
// engine (capture emits the event) and tracks the expected world.
type driver struct {
	e     *serve.Engine
	sink  *memSink
	rng   *rand.Rand
	cmax  vector.Vec
	alive []serve.GlobalID
	dead  map[int]bool
}

// vec draws a vector with each dimension uniform in [lo,hi]·cmax.
func (d *driver) vec(lo, hi float64) vector.Vec {
	v := vector.New(len(d.cmax))
	for i := range v {
		v[i] = (lo + (hi-lo)*d.rng.Float64()) * d.cmax[i]
	}
	return v
}

// vecAround draws a vector jittered ±jit·cmax around frac·cmax,
// clamped to [0, cmax] — the "hot region" shape flash crowds query.
func (d *driver) vecAround(frac, jit float64) vector.Vec {
	v := vector.New(len(d.cmax))
	for i := range v {
		f := frac + jit*(2*d.rng.Float64()-1)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		v[i] = f * d.cmax[i]
	}
	return v
}

func (d *driver) query(demand vector.Vec, k int) {
	// NoCache keeps the trace replay-deterministic: cached responses
	// depend on wall-clock TTLs a fresh engine cannot reproduce.
	d.e.Query(serve.QueryRequest{Demand: demand, K: k, NoCache: true})
}

// pick returns a live node on a non-halted shard (false when none).
func (d *driver) pick() (serve.GlobalID, bool) {
	for try := 0; try < 8; try++ {
		id := d.alive[d.rng.Intn(len(d.alive))]
		if !d.dead[id.Shard()] {
			return id, true
		}
	}
	return 0, false
}

func (d *driver) update(lo, hi float64) {
	if id, ok := d.pick(); ok {
		d.e.Update(id, d.vec(lo, hi), false)
	}
}

func (d *driver) join(shard int) {
	if d.dead[shard] {
		return
	}
	if id, err := d.e.JoinOn(shard, d.vec(0.4, 0.9)); err == nil {
		d.alive = append(d.alive, id)
	}
}

func (d *driver) leave() {
	if len(d.alive) <= 8 {
		return
	}
	if id, ok := d.pick(); ok {
		if d.e.Leave(id) == nil {
			for i, a := range d.alive {
				if a == id {
					d.alive = append(d.alive[:i], d.alive[i+1:]...)
					break
				}
			}
		}
	}
}

func (d *driver) fault(k capture.FaultKind, target int) {
	switch k {
	case capture.FaultHaltShard, capture.FaultKillMember:
		d.e.HaltShard(target)
		d.dead[target] = true
	}
	d.sink.appendFault(k, target)
}

// populate gives every initial node a fresh availability so queries
// have candidates (and the trace exercises the update path shard by
// shard).
func (d *driver) populate() {
	for _, id := range d.e.Nodes() {
		d.e.Update(id, d.vec(0.3, 1.0), false)
	}
}

func (d *driver) shards() int { return d.e.Shards() }

// --- the corpus ---------------------------------------------------------------

func flashCrowd(d *driver) {
	d.populate()
	for i := 0; i < 40; i++ { // steady state
		if d.rng.Float64() < 0.8 {
			d.query(d.vec(0.05, 0.3), 3)
		} else {
			d.update(0.3, 1.0)
		}
	}
	for i := 0; i < 120; i++ { // the crowd arrives on one hot region
		d.query(d.vecAround(0.45, 0.05), 5)
		if i%10 == 9 { // capacity joins to absorb it, round-robin
			d.join(i / 10 % d.shards())
		}
	}
	for i := 0; i < 30; i++ { // cool-down
		d.query(d.vec(0.05, 0.3), 3)
	}
}

func correlatedDeath(d *driver) {
	d.populate()
	for i := 0; i < 40; i++ {
		switch {
		case d.rng.Float64() < 0.6:
			d.query(d.vec(0.1, 0.4), 3)
		case d.rng.Float64() < 0.5:
			d.update(0.3, 1.0)
		default:
			d.join(i % d.shards())
		}
	}
	// The correlated failure: one shard halts, a second member dies.
	d.fault(capture.FaultHaltShard, 1)
	d.fault(capture.FaultKillMember, 2)
	for i := 0; i < 80; i++ { // survivors carry the load
		switch {
		case d.rng.Float64() < 0.7:
			d.query(d.vec(0.1, 0.4), 4)
		case d.rng.Float64() < 0.5:
			d.update(0.3, 1.0)
		case d.rng.Float64() < 0.5:
			d.join(i % 2 * 3) // shards 0 and 3 survive
		default:
			d.leave()
		}
	}
}

func demandDrift(d *driver) {
	d.populate()
	for _, center := range []float64{0.15, 0.45, 0.75} {
		for i := 0; i < 60; i++ {
			d.query(d.vecAround(center, 0.1), 3)
			if i%4 == 3 { // availability shifts under the drift
				d.update(center*0.8, 1.0)
			}
		}
	}
}

func phaseShift(d *driver) {
	d.populate()
	for i := 0; i < 80; i++ { // read-heavy
		d.query(d.vec(0.1, 0.5), 3)
		if i%10 == 9 {
			d.update(0.3, 1.0)
		}
	}
	for i := 0; i < 60; i++ { // write-heavy: churn
		switch d.rng.Intn(10) {
		case 0, 1:
			d.join(i % d.shards())
		case 2:
			d.leave()
		case 3, 4, 5, 6:
			d.update(0.2, 1.0)
		default:
			d.query(d.vec(0.1, 0.5), 3)
		}
	}
	for i := 0; i < 80; i++ { // read-heavy again
		d.query(d.vec(0.1, 0.5), 3)
	}
}

func followerLag(d *driver) {
	d.populate()
	for i := 0; i < 100; i++ { // first burst: the follower falls behind
		if i%5 == 4 {
			d.join(i % d.shards())
		} else {
			d.update(0.2, 1.0)
		}
	}
	for i := 0; i < 40; i++ {
		d.query(d.vec(0.1, 0.4), 3)
	}
	for i := 0; i < 60; i++ { // second burst with churn
		switch d.rng.Intn(6) {
		case 0:
			d.join(i % d.shards())
		case 1:
			d.leave()
		default:
			d.update(0.2, 1.0)
		}
	}
}
