package serve

import (
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"pidcan/internal/vector"
)

func shardPopulations(t *testing.T, e *Engine) []int {
	t.Helper()
	st := e.Stats()
	pops := make([]int, len(st.Shards))
	for _, sh := range st.Shards {
		pops[sh.Shard] = sh.Nodes
	}
	return pops
}

func TestMigratePreservesExternalIdentity(t *testing.T) {
	e := newTestEngine(t, testConfig(2))
	ext := Global(0, 1)
	if err := e.Update(ext, vector.Of(7, 7), false); err != nil {
		t.Fatal(err)
	}
	if err := e.Migrate(ext, 1); err != nil {
		t.Fatal(err)
	}
	if pops := shardPopulations(t, e); pops[0] != 3 || pops[1] != 5 {
		t.Fatalf("populations after migrate = %v, want [3 5]", pops)
	}
	st := e.Stats()
	if st.Migrations != 1 || st.ForwardedIDs == 0 {
		t.Fatalf("stats after migrate: migrations %d, forwarded %d", st.Migrations, st.ForwardedIDs)
	}

	// Nodes reports the stable external id, not the physical one.
	found := false
	for _, id := range e.Nodes() {
		if id == ext {
			found = true
		}
		if id.Shard() == 1 && id.Local() >= 4 {
			t.Fatalf("Nodes leaked a physical id: %v", id)
		}
	}
	if !found {
		t.Fatalf("external id %v missing from Nodes: %v", ext, e.Nodes())
	}

	// The node physically lives on shard 1 now, but queries report
	// it under the same stable external id Nodes uses, with its
	// availability intact.
	phys := e.fwd.resolve(ext)
	if phys.Shard() != 1 {
		t.Fatalf("migrated node resolves to %v, want shard 1", phys)
	}
	resp, err := e.Query(QueryRequest{Demand: vector.Of(6.5, 6.5), K: 5, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Node != ext {
		t.Fatalf("migrated node should answer under its external id %v: %+v", ext, resp.Candidates)
	}
	if resp.Candidates[0].Avail[0] != 7 {
		t.Fatalf("availability lost in transit: %+v", resp.Candidates[0])
	}

	// Writes through the pre-migration id land on the new shard; so
	// does a second hop, and a stale physical id stays routable too.
	if err := e.Update(ext, vector.Of(9, 9), false); err != nil {
		t.Fatalf("update via external id after migrate: %v", err)
	}
	if err := e.Migrate(ext, 0); err != nil {
		t.Fatalf("second migrate: %v", err)
	}
	if err := e.Update(phys, vector.Of(8, 8), false); err != nil {
		t.Fatalf("update via stale physical id after second migrate: %v", err)
	}

	// Leave through the original id cleans the forwarding table.
	if err := e.Leave(ext); err != nil {
		t.Fatalf("leave via external id: %v", err)
	}
	if st := e.Stats(); st.ForwardedIDs != 0 {
		t.Fatalf("forwarding state survives leave: %+v", st)
	}
	if pops := shardPopulations(t, e); pops[0] != 3 || pops[1] != 4 {
		t.Fatalf("populations after leave = %v, want [3 4]", pops)
	}
}

func TestMigrateValidation(t *testing.T) {
	e := newTestEngine(t, testConfig(2))
	if err := e.Migrate(Global(0, 0), 9); !errors.Is(err, ErrNoShard) {
		t.Fatalf("migrate to unknown shard: got %v, want ErrNoShard", err)
	}
	if err := e.Migrate(Global(9, 0), 1); !errors.Is(err, ErrNoShard) {
		t.Fatalf("migrate from unknown shard: got %v, want ErrNoShard", err)
	}
	if err := e.Migrate(Global(0, 99), 1); err == nil {
		t.Fatal("migrating a nonexistent node succeeded")
	}
	// Same-shard migration is a no-op, not a churn event.
	if err := e.Migrate(Global(0, 0), 0); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Migrations != 0 || st.ForwardedIDs != 0 {
		t.Fatalf("no-op migrate left state: %+v", st)
	}
	// A shard never drains below one node: the CAN overlay cannot
	// lose its last owner.
	for _, id := range []GlobalID{Global(0, 0), Global(0, 1), Global(0, 2)} {
		if err := e.Migrate(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Migrate(Global(0, 3), 1); !errors.Is(err, ErrLastNode) {
		t.Fatalf("migrating the last node: got %v, want ErrLastNode", err)
	}
}

// TestRebalanceManualPasses pins the pass mechanics without timers:
// skewed joins, then manual Rebalance calls must converge the
// populations under the threshold and cap moves per pass.
func TestRebalanceManualPasses(t *testing.T) {
	cfg := testConfig(4)
	cfg.RebalanceThreshold = 1.25
	cfg.RebalanceMaxMoves = 4
	e := newTestEngine(t, cfg)
	for i := 0; i < 24; i++ {
		if _, err := e.JoinOn(0, nil); err != nil {
			t.Fatal(err)
		}
	}
	// 28/4/4/4. First pass must report the imbalance and respect the
	// move cap.
	res, err := e.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if res.From != 0 || res.Imbalance != 7 {
		t.Fatalf("first pass: %+v, want From=0 Imbalance=7", res)
	}
	if res.Moved != 4 {
		t.Fatalf("first pass moved %d, want the cap 4", res.Moved)
	}
	for i := 0; i < 32; i++ {
		res, err = e.Rebalance()
		if err != nil {
			t.Fatal(err)
		}
		if res.Moved == 0 {
			break
		}
	}
	pops := shardPopulations(t, e)
	min, max := pops[0], pops[0]
	for _, p := range pops {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if ratio := float64(max) / float64(min); ratio > cfg.RebalanceThreshold {
		t.Fatalf("populations %v (ratio %.2f) did not converge under %.2f",
			pops, ratio, cfg.RebalanceThreshold)
	}
	total := 0
	for _, p := range pops {
		total += p
	}
	if total != 4*4+24 {
		t.Fatalf("rebalancing changed the population: %v", pops)
	}
}

// TestRebalanceConvergesUnderZipfSkew is the acceptance case: with
// the background rebalancer on and joins zipf-concentrated onto low
// shards, the max/min shard-population ratio must fall to <= 1.25
// within two rebalance intervals of the last join.
func TestRebalanceConvergesUnderZipfSkew(t *testing.T) {
	cfg := testConfig(4)
	cfg.RebalanceInterval = 20 * time.Millisecond
	cfg.RebalanceThreshold = 1.2
	cfg.RebalanceMaxMoves = 16
	e := newTestEngine(t, cfg)

	rng := rand.New(rand.NewPCG(7, 0x51e))
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(len(e.shards)-1))
	for i := 0; i < 48; i++ {
		if _, err := e.JoinOn(int(zipf.Uint64()), nil); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(2 * cfg.RebalanceInterval)
	var pops []int
	for {
		pops = shardPopulations(t, e)
		min, max := pops[0], pops[0]
		for _, p := range pops {
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		if min > 0 && float64(max)/float64(min) <= 1.25 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("populations %v still skewed two intervals after the last join (stats %+v)",
				pops, e.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := e.Stats()
	if st.Migrations == 0 || st.Rebalances == 0 {
		t.Fatalf("converged without the rebalancer? %+v", st)
	}
	if st.LastImbalance == 0 {
		t.Fatalf("LastImbalance never sampled: %+v", st)
	}
}

// TestRebalanceNoPingPongOnOneNodeGap pins the convergence guard:
// small populations can hold a ratio above the threshold with only a
// one-node gap, where any move merely swaps which shard is largest.
// The pass must stop instead of burning its move cap shuttling one
// node back and forth forever.
func TestRebalanceNoPingPongOnOneNodeGap(t *testing.T) {
	cfg := testConfig(2)
	cfg.NodesPerShard = 2
	e := newTestEngine(t, cfg) // 2 + 2 nodes
	if _, err := e.JoinOn(0, nil); err != nil {
		t.Fatal(err)
	}
	// Populations {3, 2}: ratio 1.5 > threshold 1.25, gap 1.
	for pass := 0; pass < 3; pass++ {
		res, err := e.Rebalance()
		if err != nil {
			t.Fatal(err)
		}
		if res.Moved != 0 {
			t.Fatalf("pass %d moved %d node(s) across a one-node gap: %+v", pass, res.Moved, res)
		}
		if res.Imbalance != 1.5 {
			t.Fatalf("pass %d reported imbalance %v, want 1.5", pass, res.Imbalance)
		}
	}
	if st := e.Stats(); st.Migrations != 0 || st.ForwardedIDs != 0 {
		t.Fatalf("ping-pong migrations happened: %+v", st)
	}
}

// TestRebalanceNoMovesWhenBalanced pins the do-no-harm property: a
// level engine must never migrate.
func TestRebalanceNoMovesWhenBalanced(t *testing.T) {
	e := newTestEngine(t, testConfig(3))
	res, err := e.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved != 0 || res.Imbalance != 1 {
		t.Fatalf("balanced engine rebalanced: %+v", res)
	}
	if st := e.Stats(); st.Migrations != 0 || st.Rebalances != 1 {
		t.Fatalf("stats after no-op pass: %+v", st)
	}
}

func TestJoinOnValidation(t *testing.T) {
	e := newTestEngine(t, testConfig(2))
	if _, err := e.JoinOn(2, nil); !errors.Is(err, ErrNoShard) {
		t.Fatalf("JoinOn(2) on a 2-shard engine: got %v, want ErrNoShard", err)
	}
	id, err := e.JoinOn(1, vector.Of(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if id.Shard() != 1 {
		t.Fatalf("JoinOn(1) placed the node on shard %d", id.Shard())
	}
}
