package serve

import (
	"errors"
	"fmt"

	"pidcan/internal/vector"
)

// Service is the node-serving surface both edges (HTTP and the wire
// protocol) are written against: an *Engine satisfies it directly,
// and the federation router (internal/serve/fed) satisfies it by
// scatter-gathering over remote primaries — so one process and a
// whole federation are served by the same handlers.
type Service interface {
	Query(req QueryRequest) (QueryResponse, error)
	Update(node GlobalID, avail vector.Vec, announce bool) error
	Join(avail vector.Vec) (GlobalID, error)
	// JoinOn targets one placement by index — a shard on an engine,
	// a federation member on a router.
	JoinOn(place int, avail vector.Vec) (GlobalID, error)
	Leave(node GlobalID) error
	// Take removes a node and returns its last published
	// availability, for callers re-homing it in another process
	// (the fed-take half of a cross-process migration). An error
	// wrapping ErrWAL means applied-but-not-durable; the
	// availability is still valid.
	Take(node GlobalID) (vector.Vec, error)
	Nodes() []GlobalID
	// Epoch and Fence carry the write-fencing discipline: Epoch is
	// the current promotion epoch (a router reports its federation
	// map version), Fence reacts to evidence of a newer one.
	Epoch() uint64
	Fence(epoch uint64)
	// PrimaryAddr is the address redirected writes should retry
	// against, or "" when this service accepts writes itself.
	PrimaryAddr() string
	// StatsPayload is the /stats (and wire OpStats) JSON document.
	StatsPayload() any
}

var _ Service = (*Engine)(nil)

// AvailSummarizer is implemented by services able to publish a
// compact availability summary for federation demand-region pruning:
// max is the per-dimension maximum availability over every record
// held (expiry ignored — a safe upper bound), pop the record count
// behind it, and seq the write epoch the summary reflects. ok is
// false when the service holds no summarizable population of its own
// (a federation router, say); callers then omit the summary rather
// than fabricate one.
type AvailSummarizer interface {
	AvailSummary() (max vector.Vec, pop int, seq uint64, ok bool)
}

var _ AvailSummarizer = (*Engine)(nil)

// availSummary is the Engine's cached AvailSummary result.
type availSummary struct {
	max vector.Vec
	pop int
	seq uint64
}

// AvailSummary computes the engine's availability summary over every
// shard's published snapshot. The write epoch is read BEFORE the
// scan: records applied mid-scan can only push the maxima higher, so
// the result is always a valid upper bound for the returned seq.
// Expired records are included — expiry only shrinks the true
// maxima, so ignoring it keeps the bound safe while making the
// summary insensitive to clock skew between members and routers.
// The result is cached until the next mutating batch; the returned
// vector is shared and must not be mutated.
func (e *Engine) AvailSummary() (vector.Vec, int, uint64, bool) {
	seq := e.epoch.Load()
	if s := e.availSum.Load(); s != nil && s.seq == seq {
		return s.max, s.pop, s.seq, true
	}
	max := make(vector.Vec, e.cfg.CMax.Dim())
	pop := 0
	for _, sh := range e.shards {
		snap := sh.snapshot()
		pop += len(snap.Records)
		for i := range snap.Records {
			for d, v := range snap.Records[i].Avail {
				if d < len(max) && v > max[d] {
					max[d] = v
				}
			}
		}
	}
	s := &availSummary{max: max, pop: pop, seq: seq}
	e.availSum.Store(s)
	return s.max, s.pop, s.seq, true
}

// PrimaryAddr returns the configured primary address followers
// redirect writes to ("" on a primary).
func (e *Engine) PrimaryAddr() string { return e.cfg.PrimaryAddr }

// StatsPayload returns the Stats snapshot as the serving edges'
// opaque stats document.
func (e *Engine) StatsPayload() any { return e.Stats() }

// Take removes a node from the engine — any id it was ever known by
// — and returns its last published availability, so a federation
// router can re-join it in another primary process. Unlike a local
// Migrate's take, the removal is logged as a plain leave: if this
// process crashes afterwards, recovery must not resurrect a node
// whose new home is another process's WAL. Forwarding state for the
// node is dropped once the take is applied. An error wrapping ErrWAL
// reports applied-but-not-durable, with the availability still
// valid.
func (e *Engine) Take(node GlobalID) (vector.Vec, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := e.writable(); err != nil {
		e.errors.Add(1)
		return nil, err
	}
	// Claim the id against concurrent migrations, exactly like
	// Migrate: the take must hit the node's settled home.
	phys, _, release, err := e.fwd.begin(node, e.stop)
	if err != nil {
		e.errors.Add(1)
		return nil, err
	}
	defer release()
	si := phys.Shard()
	if si >= len(e.places) {
		e.errors.Add(1)
		return nil, fmt.Errorf("%w: shard %d (node %v)", ErrNoShard, si, node)
	}
	avail, err := e.places[si].Take(phys, true)
	if err != nil && !errors.Is(err, ErrWAL) {
		if e.closed.Load() {
			return nil, ErrClosed
		}
		e.errors.Add(1)
		return nil, fmt.Errorf("serve: take %v: %w", node, err)
	}
	e.fwd.forget(phys)
	e.leaves.Add(1)
	return avail, err
}
