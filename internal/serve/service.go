package serve

import (
	"errors"
	"fmt"

	"pidcan/internal/vector"
)

// Service is the node-serving surface both edges (HTTP and the wire
// protocol) are written against: an *Engine satisfies it directly,
// and the federation router (internal/serve/fed) satisfies it by
// scatter-gathering over remote primaries — so one process and a
// whole federation are served by the same handlers.
type Service interface {
	Query(req QueryRequest) (QueryResponse, error)
	Update(node GlobalID, avail vector.Vec, announce bool) error
	Join(avail vector.Vec) (GlobalID, error)
	// JoinOn targets one placement by index — a shard on an engine,
	// a federation member on a router.
	JoinOn(place int, avail vector.Vec) (GlobalID, error)
	Leave(node GlobalID) error
	// Take removes a node and returns its last published
	// availability, for callers re-homing it in another process
	// (the fed-take half of a cross-process migration). An error
	// wrapping ErrWAL means applied-but-not-durable; the
	// availability is still valid.
	Take(node GlobalID) (vector.Vec, error)
	Nodes() []GlobalID
	// Epoch and Fence carry the write-fencing discipline: Epoch is
	// the current promotion epoch (a router reports its federation
	// map version), Fence reacts to evidence of a newer one.
	Epoch() uint64
	Fence(epoch uint64)
	// PrimaryAddr is the address redirected writes should retry
	// against, or "" when this service accepts writes itself.
	PrimaryAddr() string
	// StatsPayload is the /stats (and wire OpStats) JSON document.
	StatsPayload() any
}

var _ Service = (*Engine)(nil)

// PrimaryAddr returns the configured primary address followers
// redirect writes to ("" on a primary).
func (e *Engine) PrimaryAddr() string { return e.cfg.PrimaryAddr }

// StatsPayload returns the Stats snapshot as the serving edges'
// opaque stats document.
func (e *Engine) StatsPayload() any { return e.Stats() }

// Take removes a node from the engine — any id it was ever known by
// — and returns its last published availability, so a federation
// router can re-join it in another primary process. Unlike a local
// Migrate's take, the removal is logged as a plain leave: if this
// process crashes afterwards, recovery must not resurrect a node
// whose new home is another process's WAL. Forwarding state for the
// node is dropped once the take is applied. An error wrapping ErrWAL
// reports applied-but-not-durable, with the availability still
// valid.
func (e *Engine) Take(node GlobalID) (vector.Vec, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if err := e.writable(); err != nil {
		e.errors.Add(1)
		return nil, err
	}
	// Claim the id against concurrent migrations, exactly like
	// Migrate: the take must hit the node's settled home.
	phys, _, release, err := e.fwd.begin(node, e.stop)
	if err != nil {
		e.errors.Add(1)
		return nil, err
	}
	defer release()
	si := phys.Shard()
	if si >= len(e.places) {
		e.errors.Add(1)
		return nil, fmt.Errorf("%w: shard %d (node %v)", ErrNoShard, si, node)
	}
	avail, err := e.places[si].Take(phys, true)
	if err != nil && !errors.Is(err, ErrWAL) {
		if e.closed.Load() {
			return nil, ErrClosed
		}
		e.errors.Add(1)
		return nil, fmt.Errorf("serve: take %v: %w", node, err)
	}
	e.fwd.forget(phys)
	e.leaves.Add(1)
	return avail, err
}
