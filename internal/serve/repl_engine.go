package serve

import (
	"fmt"

	"pidcan/internal/overlay"
	"pidcan/internal/serve/wal"
)

// This file is the engine side of op-log replication — the surface
// internal/serve/repl builds its wire protocol, primary server and
// follower client on. The division of labor: repl owns transport,
// framing, sessions and reconnects; the engine owns every touch of
// shard state and the mirrored DataDir, all funneled through the
// shard goroutines so replication obeys the same single-writer
// discipline as serving.
//
// A follower's DataDir is a byte-level mirror of its primary's:
// checkpoints are shipped verbatim (SaveRaw), and log segments are
// rebuilt record by record through the same applyBatch + logBatch
// path live writes take — the encoding is deterministic, so the
// rebuilt segments are byte-identical to the primary's. The mirror
// is what makes a follower crash/restart cheap: it recovers from its
// own disk like any durable engine, then resumes the stream from the
// exact (segment, record) position its log ends at.

// ReplSink receives a primary's replication feed: every logged
// record batch and every completed checkpoint, in order (per shard;
// a checkpoint event follows all record events of the segments it
// covers). The repl server's fan-out hub implements it. Calls come
// from shard goroutines and the checkpoint path and must not block.
type ReplSink interface {
	// ReplRecords delivers records appended to shard's segment seg
	// starting at record ordinal pos, under the given epoch. recs
	// aliases the shard's reusable batch buffer and is valid only
	// for the duration of the call: a sink that retains it must
	// copy.
	ReplRecords(shard int, seg, pos, epoch uint64, recs []wal.Record)
	// ReplCheckpoint delivers a completed checkpoint: its sequence
	// number, epoch, per-shard first post-rotation segments, and the
	// raw checkpoint file image.
	ReplCheckpoint(seq, epoch uint64, firstSegs []uint64, data []byte)
}

// SetReplSink attaches (or, with nil, detaches) the engine's
// replication sink. One sink at a time; the repl server multiplexes
// its follower sessions behind it.
func (e *Engine) SetReplSink(s ReplSink) {
	if s == nil {
		e.replSink.Store(nil)
		return
	}
	e.replSink.Store(&s)
}

// Role reports the engine's replication role: "primary", "follower",
// or "fenced" (a deposed primary that learned of a newer epoch).
func (e *Engine) Role() string {
	if e.fencedBy.Load() != 0 {
		return "fenced"
	}
	if e.follower.Load() {
		return "follower"
	}
	return "primary"
}

// Epoch returns the current replication epoch.
func (e *Engine) Epoch() uint64 { return e.replEpoch.Load() }

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// ReplPos is one shard's op-log position: the current segment and
// how many records it holds.
type ReplPos struct {
	Seg, Pos uint64
}

// ReplSyncPosition flushes and fsyncs one shard's op-log on its own
// goroutine and returns the exact position — everything at or before
// it is readable from the segment file, which is what lets the repl
// server stream a catching-up follower from disk without gaps
// against the live feed.
func (e *Engine) ReplSyncPosition(shard int) (ReplPos, error) {
	if shard < 0 || shard >= len(e.shards) {
		return ReplPos{}, fmt.Errorf("%w: shard %d", ErrNoShard, shard)
	}
	res, err := e.shards[shard].controlReq(ctlSync, 0)
	if err == nil {
		err = res.err
	}
	if err != nil {
		return ReplPos{}, err
	}
	return ReplPos{Seg: res.seg, Pos: res.pos}, nil
}

// ReplPositions returns every shard's live position from lock-free
// gauges — approximate across shards (no cross-shard barrier), which
// is all the heartbeat lag report needs.
func (e *Engine) ReplPositions() []ReplPos {
	out := make([]ReplPos, len(e.shards))
	for i, s := range e.shards {
		out[i] = ReplPos{Seg: s.segNum.Load(), Pos: s.segRecs.Load()}
	}
	return out
}

// ReplLogPath returns the path of one shard's segment file — the
// repl server's disk read for follower catch-up.
func (e *Engine) ReplLogPath(shard int, seg uint64) string {
	return wal.SegmentPath(e.shardDir(shard), seg)
}

// ReplApply applies one replicated record batch to a follower shard
// through the write queue — the same applyBatch path recovery and
// live serving use — and verifies it the way recovery does: every
// join must re-assign the id the primary logged, or the backends
// have diverged and the error aborts the stream rather than serve
// unverifiable state. The records are re-logged to the follower's
// mirror by the shard's own logBatch (deterministic encoding: the
// mirror stays byte-identical). The epoch must match the engine's —
// the per-frame fencing that keeps a deposed primary's stream from
// leaking writes into a sealed follower.
func (e *Engine) ReplApply(shard int, epoch uint64, recs []wal.Record) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if !e.follower.Load() {
		return ErrNotFollower
	}
	if ours := e.replEpoch.Load(); epoch != ours {
		return fmt.Errorf("%w (frame epoch %d, ours %d)", ErrFenced, epoch, ours)
	}
	if shard < 0 || shard >= len(e.shards) {
		return fmt.Errorf("%w: shard %d", ErrNoShard, shard)
	}
	s := e.shards[shard]
	notes := &recoveryNotes{repointed: map[GlobalID]bool{}, forgotten: map[GlobalID]bool{}}
	type pending struct {
		reply   chan opResult
		expect  overlay.NodeID
		kind    wal.Kind
		repoint bool
	}
	pends := make([]pending, 0, len(recs))
	// Enqueue the whole frame, then collect: the queue is FIFO, so
	// order is preserved and the shard drains the frame in big
	// batches instead of one op per batch.
	for i := range recs {
		o, expect := s.opFromRecord(e, recs[i], notes)
		o.reply = make(chan opResult, 1)
		if err := s.enqueue(o); err != nil {
			return err
		}
		pends = append(pends, pending{o.reply, expect, recs[i].Kind, recs[i].Repoint})
	}
	for i, p := range pends {
		var res opResult
		select {
		case res = <-p.reply:
		case <-s.done:
			select {
			case res = <-p.reply:
			default:
				return ErrClosed
			}
		}
		if res.err != nil {
			return fmt.Errorf("replicated record %d (kind %d): %w", i, p.kind, res.err)
		}
		if p.expect >= 0 && res.node != p.expect {
			return fmt.Errorf("replicated join assigned node %d, primary logged %d (divergent backend)",
				res.node, p.expect)
		}
		switch {
		case p.kind == wal.KindUpdate:
			e.updates.Add(1)
		case p.kind == wal.KindJoin && p.repoint:
			e.migrations.Add(1)
		case p.kind == wal.KindJoin:
			e.joins.Add(1)
		case p.kind == wal.KindLeave:
			e.leaves.Add(1)
		}
	}
	return nil
}

// ReplRotate rotates a follower shard's mirror log onto segment seg
// — the follower-side half of its primary's rotation, at the same
// record boundary (the stream is in order, so every record of the
// closed segment has been applied). No-op when the shard is already
// at or past seg.
func (e *Engine) ReplRotate(shard int, seg uint64) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if !e.follower.Load() {
		return ErrNotFollower
	}
	if shard < 0 || shard >= len(e.shards) {
		return fmt.Errorf("%w: shard %d", ErrNoShard, shard)
	}
	res, err := e.shards[shard].controlReq(ctlRotate, seg)
	if err == nil {
		err = res.err
	}
	return err
}

// checkCkptCompat guards against state written under an incompatible
// engine shape (shared by recovery and checkpoint installation).
func (e *Engine) checkCkptCompat(ck *wal.Checkpoint) error {
	if ck.Shards != e.cfg.Shards || ck.NodesPerShard != e.cfg.NodesPerShard ||
		ck.Seed != e.cfg.Seed || ck.Dims != e.cfg.CMax.Dim() {
		return fmt.Errorf("checkpoint from an incompatible engine "+
			"(shards/nodes/seed/dims %d/%d/%d/%d, this engine %d/%d/%d/%d)",
			ck.Shards, ck.NodesPerShard, ck.Seed, ck.Dims,
			e.cfg.Shards, e.cfg.NodesPerShard, e.cfg.Seed, e.cfg.CMax.Dim())
	}
	if len(ck.ShardStates) != e.cfg.Shards {
		return fmt.Errorf("checkpoint %d has %d shard states, want %d",
			ck.Seq, len(ck.ShardStates), e.cfg.Shards)
	}
	return nil
}

// ReplInstallCheckpoint installs a shipped checkpoint image on a
// follower: every shard's mirror rotates onto the checkpoint's
// post-rotation segment (a no-op where the stream already moved it),
// the image is written verbatim into the DataDir, and superseded
// checkpoints and segments are pruned — exactly the pruning the
// primary did, so the mirror tracks its disk footprint too. The
// follower's live state is untouched: it already applied everything
// the checkpoint covers; the install only bounds ITS OWN next
// recovery.
func (e *Engine) ReplInstallCheckpoint(epoch uint64, data []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if !e.follower.Load() {
		return ErrNotFollower
	}
	if ours := e.replEpoch.Load(); epoch != ours {
		return fmt.Errorf("%w (checkpoint epoch %d, ours %d)", ErrFenced, epoch, ours)
	}
	ck, err := wal.Decode(data)
	if err != nil {
		return err
	}
	if err := e.checkCkptCompat(ck); err != nil {
		return err
	}
	for i, st := range ck.ShardStates {
		if err := e.ReplRotate(i, st.FirstSeg); err != nil {
			return fmt.Errorf("shard %d: rotate to %d: %w", i, st.FirstSeg, err)
		}
	}
	if _, err := wal.SaveRaw(e.cfg.DataDir, ck.Seq, data); err != nil {
		return err
	}
	wal.RemoveCheckpointsBelow(e.cfg.DataDir, ck.Seq)
	for i, st := range ck.ShardStates {
		wal.RemoveSegmentsBelow(e.shardDir(i), st.FirstSeg)
		e.shards[i].logBytes.Store(0)
	}
	e.ckptSeq.Store(ck.Seq)
	e.checkpoints.Add(1)
	return nil
}

// ReplReport records the follower's stream health for Stats: whether
// the stream is live and how many records the primary holds beyond
// this follower (from the last heartbeat).
func (e *Engine) ReplReport(connected bool, lagRecords int64) {
	e.replConnected.Store(connected)
	e.replLag.Store(lagRecords)
}

// ReplFollowerDelta adjusts the attached-follower gauge (repl server
// sessions).
func (e *Engine) ReplFollowerDelta(d int64) { e.replFollowers.Add(d) }

// Fence seals a primary that learned of a newer epoch — a follower
// it once fed was promoted, and this engine's timeline is dead.
// Writes fail with ErrFenced from here on (reads keep working);
// the operator restarts the process as a follower of the new
// primary, which re-bootstraps its divergent tail away. No-op for
// epochs at or below the engine's own, and on followers.
func (e *Engine) Fence(epoch uint64) {
	if epoch <= e.replEpoch.Load() || e.follower.Load() {
		return
	}
	e.fencedBy.Store(epoch)
}

// SetPromoter installs the function Promote delegates to — the repl
// client's drain-then-seal sequence. Without one, Promote seals
// locally (a follower whose primary is already gone has nothing to
// drain beyond what the client applied).
func (e *Engine) SetPromoter(f func() (uint64, error)) {
	e.promoterMu.Lock()
	e.promoter = f
	e.promoterMu.Unlock()
}

// Promote turns a follower into a primary: the replication stream is
// drained and stopped (via the installed promoter, when one is
// attached), a new epoch is sealed, and writes open up. Returns the
// new epoch. Fails with ErrNotFollower on an engine that is not a
// follower.
func (e *Engine) Promote() (uint64, error) {
	e.promoterMu.Lock()
	f := e.promoter
	e.promoterMu.Unlock()
	if f != nil {
		return f()
	}
	return e.PromoteLocal()
}

// PromoteLocal is the engine half of promotion, called after the
// replication stream has been drained and stopped: bump the epoch,
// seal it durably (a checkpoint under the new epoch — every shard
// rotates onto epoch-stamped segments), then accept writes and start
// the deferred background loops. Any stale primary frame that
// arrives after this is rejected by ReplApply's epoch check.
func (e *Engine) PromoteLocal() (uint64, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if !e.follower.Load() {
		return 0, ErrNotFollower
	}
	epoch := e.replEpoch.Add(1)
	// Seal before opening writes: the epoch is durable (segment
	// headers + checkpoint) before the first write of the new
	// timeline can be acknowledged.
	if _, err := e.checkpoint(); err != nil {
		// The epoch advanced in memory but is not sealed on disk; a
		// crash now rejoins the old timeline. Refuse the promotion
		// rather than serve writes on an unsealed epoch.
		return 0, fmt.Errorf("serve: promotion seal: %w", err)
	}
	e.follower.Store(false)
	e.replConnected.Store(false)
	e.replLag.Store(0)
	e.startLoops()
	return epoch, nil
}
