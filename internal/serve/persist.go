package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pidcan/internal/overlay"
	"pidcan/internal/serve/wal"
	"pidcan/internal/vector"
)

// shardDir returns shard i's op-log directory under DataDir.
func (e *Engine) shardDir(i int) string {
	return filepath.Join(e.cfg.DataDir, fmt.Sprintf("shard-%d", i))
}

// CheckpointResult describes one completed checkpoint pass.
type CheckpointResult struct {
	// Seq is the checkpoint's sequence number (monotonic per
	// DataDir).
	Seq uint64 `json:"seq"`
	// Nodes is the total population the checkpoint serialized.
	Nodes int `json:"nodes"`
	// Bytes is the checkpoint file's size on disk.
	Bytes int64 `json:"bytes"`
	// ElapsedMS is the wall time of the pass, including every
	// shard's log rotation and the durable file write.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Checkpoint captures the engine's durable state now: every shard
// rotates its op-log onto a fresh segment and serializes its logical
// state at exactly that boundary, the forwarding table and engine
// counters are added, and the whole checkpoint is written atomically
// (temp file + rename). Log segments and checkpoints the new one
// supersedes are deleted, bounding disk growth and recovery time.
// Serving continues throughout — each shard pauses only for its own
// capture. Fails with ErrNotDurable on an engine built without a
// DataDir, and with ErrClosed after Close (Close itself writes one
// final checkpoint).
func (e *Engine) Checkpoint() (CheckpointResult, error) {
	if e.closed.Load() {
		return CheckpointResult{}, ErrClosed
	}
	// A follower's checkpoints arrive over the replication stream;
	// rotating its segments locally would fork them off the mirror.
	if err := e.writable(); err != nil {
		return CheckpointResult{}, err
	}
	return e.checkpoint()
}

// checkpoint implements Checkpoint (Close calls it after the closed
// flag is already set).
func (e *Engine) checkpoint() (CheckpointResult, error) {
	if e.cfg.DataDir == "" {
		return CheckpointResult{}, ErrNotDurable
	}
	// One pass at a time: concurrent passes would interleave their
	// segment rotations and write checkpoints out of sequence.
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	start := time.Now()
	ck := &wal.Checkpoint{
		Seq:           e.ckptSeq.Load() + 1,
		Epoch:         e.replEpoch.Load(),
		Shards:        e.cfg.Shards,
		NodesPerShard: e.cfg.NodesPerShard,
		Seed:          e.cfg.Seed,
		Dims:          e.cfg.CMax.Dim(),
		NextShard:     e.nextShard.Load(),
		NextQuery:     e.nextQuery.Load(),
	}
	res := CheckpointResult{Seq: ck.Seq}
	// The shard captures happen under the migration barrier: no
	// take+join pair may straddle the rotation boundary with only
	// its take inside, or a crash before the join is logged would
	// lose the node with its take record already pruned.
	e.migMu.Lock()
	for _, s := range e.shards {
		st, err := s.checkpoint()
		if err != nil {
			e.migMu.Unlock()
			e.errors.Add(1)
			return CheckpointResult{}, err
		}
		res.Nodes += len(st.Nodes)
		ck.ShardStates = append(ck.ShardStates, st)
	}
	e.migMu.Unlock()
	// The forwarding table and counters are captured after every
	// shard's rotation: anything they miss (an op applied after a
	// shard's capture) lives in a post-rotation segment and replays
	// on top — repoint and forget are idempotent for exactly this.
	ck.Fwd = e.fwd.export()
	ck.Counters = map[string]uint64{
		"queries":    e.queries.Load(),
		"consistent": e.consistent.Load(),
		"updates":    e.updates.Load(),
		"joins":      e.joins.Load(),
		"leaves":     e.leaves.Load(),
		"migrations": e.migrations.Load(),
		"rebalances": e.rebalances.Load(),
		"errors":     e.errors.Load(),
	}
	image, err := ck.Image()
	if err != nil {
		e.errors.Add(1)
		return CheckpointResult{}, err
	}
	if _, err := wal.SaveRaw(e.cfg.DataDir, ck.Seq, image); err != nil {
		e.errors.Add(1)
		return CheckpointResult{}, err
	}
	res.Bytes = int64(len(image))
	// Ship the checkpoint to any attached followers before pruning:
	// the sink event (in order after every record frame of the
	// segments it covers) is how a follower mirrors the rotation
	// boundary, the checkpoint file and the pruning below. The image
	// shipped is the exact bytes just written, so a bootstrap
	// session waiting on this checkpoint can never be stranded by a
	// re-read failure.
	if p := e.replSink.Load(); p != nil {
		firstSegs := make([]uint64, len(ck.ShardStates))
		for i, st := range ck.ShardStates {
			firstSegs[i] = st.FirstSeg
		}
		(*p).ReplCheckpoint(ck.Seq, ck.Epoch, firstSegs, image)
	}
	// Prune what the new checkpoint supersedes. Best-effort: a
	// leftover file is re-pruned by the next pass and never consulted
	// by recovery.
	wal.RemoveCheckpointsBelow(e.cfg.DataDir, ck.Seq)
	for i, st := range ck.ShardStates {
		wal.RemoveSegmentsBelow(e.shardDir(i), st.FirstSeg)
	}
	e.ckptSeq.Store(ck.Seq)
	e.checkpoints.Add(1)
	res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return res, nil
}

// checkpointLoop is the background checkpointer goroutine, started
// by New when Config.CheckpointEvery > 0 and stopped by Close.
func (e *Engine) checkpointLoop(interval time.Duration) {
	defer close(e.ckptDone)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-tick.C:
			e.checkpoint() // errors surface through Stats.Errors
		}
	}
}

// replayTally counts what one shard's recovery re-applied, so the
// engine counters cover the log tail as well as the checkpoint, and
// collects the migration takes for orphan reconciliation.
type replayTally struct {
	records    uint64
	updates    uint64
	joins      uint64
	leaves     uint64
	migrations uint64
	takes      []takenNode
}

// takenNode is one replayed migration take: the physical id the node
// left and the availability it carried.
type takenNode struct {
	phys  GlobalID
	avail []float64
}

// recoveryNotes is shared across the parallel shard replays: which
// former physical ids a replayed migration join moved away from, and
// which ids a replayed leave removed for good. Reconciliation uses
// both to tell an orphaned mid-flight take from a completed (or
// properly ended) migration.
type recoveryNotes struct {
	mu        sync.Mutex
	repointed map[GlobalID]bool
	forgotten map[GlobalID]bool
}

func (rn *recoveryNotes) noteRepointed(old GlobalID) {
	rn.mu.Lock()
	rn.repointed[old] = true
	rn.mu.Unlock()
}

func (rn *recoveryNotes) noteForgotten(ids []GlobalID) {
	rn.mu.Lock()
	for _, id := range ids {
		rn.forgotten[id] = true
	}
	rn.mu.Unlock()
}

// recover rebuilds the engine's state from DataDir before serving
// starts: the latest valid checkpoint is restored — forwarding
// table, round-robin counters, cumulative stats, and every shard's
// logical state, the latter re-applied through applyBatch — and all
// newer op-log segments are replayed through the same path, shards
// in parallel. A torn final record (crash mid-append) truncates
// cleanly; any other divergence (wrong configuration, a join
// replaying to a different id than the log recorded) aborts startup.
// A migration whose take is durable but whose destination join never
// was (the crash landed between the two halves) is rolled back: the
// node re-joins its source shard with the availability the take
// carried, exactly like a live failed migration.
func (e *Engine) recover() error {
	start := time.Now()
	if err := os.MkdirAll(e.cfg.DataDir, 0o755); err != nil {
		return err
	}
	ck, err := wal.LoadLatest(e.cfg.DataDir)
	if err != nil {
		return err
	}
	// The replication epoch is recovered before any shard opens a
	// segment: the maximum of the checkpoint's sealed epoch and every
	// on-disk segment header (a promotion's rotation can be durable
	// before its checkpoint), floored at 1 (legacy dirs read as 0).
	epoch := uint64(1)
	if ck != nil && ck.Epoch > epoch {
		epoch = ck.Epoch
	}
	for i := range e.shards {
		dir := e.shardDir(i)
		segs, err := wal.Segments(dir)
		if err != nil {
			return err
		}
		for _, seg := range segs {
			meta, err := wal.ReadSegmentMeta(wal.SegmentPath(dir, seg))
			if err != nil {
				return err
			}
			if meta.Epoch > epoch {
				epoch = meta.Epoch
			}
		}
	}
	e.replEpoch.Store(epoch)
	if ck != nil {
		if err := e.checkCkptCompat(ck); err != nil {
			return fmt.Errorf("data dir %q: %w", e.cfg.DataDir, err)
		}
		// Forwarding state restores before replay so the log tail's
		// repoints overlay it, not the reverse.
		e.fwd.restore(ck.Fwd)
		e.nextShard.Store(ck.NextShard)
		e.nextQuery.Store(ck.NextQuery)
		e.queries.Store(ck.Counters["queries"])
		e.consistent.Store(ck.Counters["consistent"])
		e.updates.Store(ck.Counters["updates"])
		e.joins.Store(ck.Counters["joins"])
		e.leaves.Store(ck.Counters["leaves"])
		e.migrations.Store(ck.Counters["migrations"])
		e.rebalances.Store(ck.Counters["rebalances"])
		e.errors.Store(ck.Counters["errors"])
		e.ckptSeq.Store(ck.Seq)
	}
	notes := &recoveryNotes{
		repointed: map[GlobalID]bool{},
		forgotten: map[GlobalID]bool{},
	}
	tallies := make([]replayTally, len(e.shards))
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i, s := range e.shards {
		var st *wal.ShardState
		if ck != nil {
			st = &ck.ShardStates[i]
		}
		wg.Add(1)
		go func(i int, s *shard, st *wal.ShardState) {
			defer wg.Done()
			tallies[i], errs[i] = e.recoverShard(s, st, notes)
		}(i, s, st)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	var total uint64
	for _, t := range tallies {
		total += t.records
		e.updates.Add(t.updates)
		e.joins.Add(t.joins)
		e.leaves.Add(t.leaves)
		e.migrations.Add(t.migrations)
	}
	if err := e.reconcileTakes(tallies, notes); err != nil {
		return err
	}
	e.recoveredRecs.Store(total)
	e.warmStart = ck != nil || total > 0
	e.recoveryNanos.Store(time.Since(start).Nanoseconds())
	return nil
}

// reconcileTakes resolves migration takes whose destination join
// never became durable. A take is orphaned when, after every shard
// has replayed, nothing moved the node onward from the taken
// physical id: no replayed join repoints away from it, the restored
// forwarding table does not route it (a pre-checkpoint join would),
// and no replayed leave removed the node for good. Each orphan rolls
// back like a live failed migration: the node re-joins its source
// shard with the availability its take captured, the forwarding
// table repoints, and the rollback join is logged so the next
// recovery replays it instead of reconciling again.
func (e *Engine) reconcileTakes(tallies []replayTally, notes *recoveryNotes) error {
	for i, t := range tallies {
		for _, tk := range t.takes {
			if notes.repointed[tk.phys] || notes.forgotten[tk.phys] || e.fwd.hasRoute(tk.phys) {
				continue
			}
			s := e.shards[i]
			x := e.fwd.externalOf(tk.phys)
			phys := tk.phys
			o := op{
				kind:  opJoin,
				avail: vector.Vec(tk.avail),
				mig:   &migMeta{ext: x, old: phys},
				onApplied: func(res opResult) {
					if res.err == nil {
						e.fwd.repoint(x, phys, Global(s.idx, res.node))
					}
				},
			}
			batch := []op{o}
			results, _ := s.applyBatch(batch)
			if results[0].err != nil {
				return fmt.Errorf("shard %d: rolling back orphaned take of %v: %w", i, phys, results[0].err)
			}
			// Durable, so the next recovery replays it instead of
			// reconciling again; a log failure here fails recovery.
			if err := s.logBatch(batch, results); err != nil {
				return fmt.Errorf("shard %d: logging rollback of %v: %w", i, phys, err)
			}
			s.be.Step(s.cfg.StepQuantum)
			s.publish()
		}
	}
	return nil
}

// recoverShard rebuilds one shard: the checkpointed logical state is
// re-applied as synthesized ops, then every post-checkpoint log
// segment replays in order — all through shard.applyBatch, the same
// code live batches run. It finishes by opening a fresh segment for
// the shard's own appends.
func (e *Engine) recoverShard(s *shard, st *wal.ShardState, notes *recoveryNotes) (replayTally, error) {
	var tally replayTally
	dir := e.shardDir(s.idx)
	segs, err := wal.Segments(dir)
	if err != nil {
		return tally, err
	}
	if st != nil {
		if err := s.restoreCheckpoint(st); err != nil {
			return tally, fmt.Errorf("checkpoint %s: %w",
				wal.CheckpointPath(e.cfg.DataDir, e.ckptSeq.Load()), err)
		}
	}
	first := uint64(0)
	if st != nil {
		first = st.FirstSeg
	}
	nextSeg := uint64(1)
	if first >= nextSeg {
		nextSeg = first + 1
	}
	// The follower mirror resumes its LAST segment in place (the
	// primary is still on it); lastValid/lastCount track where.
	var lastSeg uint64
	var lastValid int64
	var lastCount uint64
	for _, seg := range segs {
		if seg >= nextSeg {
			nextSeg = seg + 1
		}
		if seg < first {
			continue // superseded by the checkpoint; pruning raced a crash
		}
		path := wal.SegmentPath(dir, seg)
		_, recs, validSize, _, err := wal.ReadSegmentInfo(path)
		if err != nil {
			return tally, err
		}
		lastSeg, lastValid, lastCount = seg, validSize, uint64(len(recs))
		ops := make([]op, 0, len(recs))
		expect := make([]overlay.NodeID, 0, len(recs))
		for _, r := range recs {
			o, exp := s.opFromRecord(e, r, notes)
			ops = append(ops, o)
			expect = append(expect, exp)
			switch {
			case r.Kind == wal.KindUpdate:
				tally.updates++
			case r.Kind == wal.KindJoin && r.Repoint:
				tally.migrations++
				notes.noteRepointed(GlobalID(r.Old))
			case r.Kind == wal.KindJoin:
				tally.joins++
			case r.Kind == wal.KindLeave:
				tally.leaves++
			case r.Kind == wal.KindTake:
				tally.takes = append(tally.takes, takenNode{
					phys:  Global(s.idx, overlay.NodeID(r.Node)),
					avail: r.Avail,
				})
			}
		}
		tally.records += uint64(len(recs))
		if err := s.replay(ops, expect); err != nil {
			return tally, fmt.Errorf("%s: %w", path, err)
		}
	}
	var log *wal.Log
	if e.cfg.Follower {
		// Mirror continuation: reopen the last segment for appending
		// at its valid prefix (shedding any torn tail) instead of
		// rotating onto a number the primary never had — the resumed
		// stream continues exactly where this follower's log ends.
		target := lastSeg
		if target < first {
			target, lastValid, lastCount = first, 0, 0
		}
		if target == 0 {
			target, lastValid, lastCount = 1, 0, 0
		}
		log, err = wal.OpenAppend(dir, target, lastValid, e.replEpoch.Load())
		if err != nil {
			return tally, err
		}
		s.segNum.Store(target)
		s.segRecs.Store(lastCount)
	} else {
		log, err = wal.Create(dir, nextSeg, e.replEpoch.Load())
		if err != nil {
			return tally, err
		}
		s.segNum.Store(nextSeg)
		s.segRecs.Store(0)
	}
	s.log = log
	s.publish()
	return tally, nil
}

// restoreCheckpoint re-applies a shard's checkpointed logical state
// through applyBatch. With a Backend implementing IDSeeder (real
// clusters and the test fakes do), the id sequence is advanced over
// dead ids directly and only alive nodes are joined — O(alive
// nodes); generic backends get the full synthesized history (every
// id joined, dead ones left) — O(lifetime joins).
func (s *shard) restoreCheckpoint(st *wal.ShardState) error {
	if st.Shard != s.idx {
		return fmt.Errorf("shard state %d out of order", st.Shard)
	}
	if uint32(s.nextLocal) > st.NextID {
		return fmt.Errorf("next id %d below initial population %d", st.NextID, s.nextLocal)
	}
	initial := s.nextLocal
	next := overlay.NodeID(st.NextID)
	alive := make(map[overlay.NodeID]bool, len(st.Nodes))
	for _, n := range st.Nodes {
		alive[overlay.NodeID(n.Node)] = true
	}
	var ops []op
	var expect []overlay.NodeID
	if seeder, ok := s.be.(IDSeeder); ok {
		for _, n := range st.Nodes {
			id := overlay.NodeID(n.Node)
			if id < initial {
				continue
			}
			if err := seeder.SeedNextID(id); err != nil {
				return err
			}
			if err := s.replay([]op{{kind: opJoin}}, []overlay.NodeID{id}); err != nil {
				return err
			}
		}
		if err := seeder.SeedNextID(next); err != nil {
			return err
		}
		s.nextLocal = next
		// Dead initial-population nodes were materialized by the
		// factory and must still leave; dead later ids never existed.
		for id := overlay.NodeID(0); id < initial; id++ {
			if !alive[id] {
				ops = append(ops, op{kind: opLeave, node: id})
				expect = append(expect, -1)
			}
		}
	} else {
		for id := initial; id < next; id++ {
			ops = append(ops, op{kind: opJoin})
			expect = append(expect, id)
		}
		for id := overlay.NodeID(0); id < next; id++ {
			if !alive[id] {
				ops = append(ops, op{kind: opLeave, node: id})
				expect = append(expect, -1)
			}
		}
	}
	for _, n := range st.Nodes {
		ops = append(ops, op{
			kind:     opUpdate,
			node:     overlay.NodeID(n.Node),
			avail:    vector.Vec(n.Avail),
			announce: true,
		})
		expect = append(expect, -1)
	}
	return s.replay(ops, expect)
}

// opFromRecord rebuilds the live op a log record was written from,
// including the forwarding side effects that ride onApplied hooks —
// so replay exercises exactly the mechanism the live write did.
// expect is the local id a join must re-assign (-1: no expectation).
func (s *shard) opFromRecord(e *Engine, r wal.Record, notes *recoveryNotes) (op, overlay.NodeID) {
	switch r.Kind {
	case wal.KindUpdate:
		return op{
			kind:     opUpdate,
			node:     overlay.NodeID(r.Node),
			avail:    vector.Vec(r.Avail),
			announce: r.Announce,
		}, -1
	case wal.KindJoin:
		o := op{kind: opJoin, avail: vector.Vec(r.Avail)}
		if r.Repoint {
			ext, old := GlobalID(r.Ext), GlobalID(r.Old)
			o.mig = &migMeta{ext: ext, old: old}
			idx := s.idx
			o.onApplied = func(res opResult) {
				if res.err == nil {
					e.fwd.repoint(ext, old, Global(idx, res.node))
				}
			}
		}
		return o, overlay.NodeID(r.Node)
	case wal.KindLeave:
		phys := Global(s.idx, overlay.NodeID(r.Node))
		return op{
			kind: opLeave,
			node: overlay.NodeID(r.Node),
			onApplied: func(res opResult) {
				if res.err == nil {
					notes.noteForgotten(e.fwd.forget(phys))
				}
			},
		}, -1
	default: // wal.KindTake
		return op{kind: opTake, node: overlay.NodeID(r.Node)}, -1
	}
}

// replay drives ops through applyBatch in MaxBatch-sized batches —
// the live write path minus the queue — verifying every join
// re-assigns the id the log recorded. Any op failing where the live
// engine succeeded means the log and this engine's deterministic
// backend have diverged, and recovery aborts rather than serve a
// state it cannot vouch for.
func (s *shard) replay(ops []op, expect []overlay.NodeID) error {
	for len(ops) > 0 {
		n := len(ops)
		if n > s.cfg.MaxBatch {
			n = s.cfg.MaxBatch
		}
		results, _ := s.applyBatch(ops[:n])
		for i := 0; i < n; i++ {
			if err := results[i].err; err != nil {
				return fmt.Errorf("replay op %d (kind %d, node %d): %w", i, ops[i].kind, ops[i].node, err)
			}
			if exp := expect[i]; exp >= 0 && results[i].node != exp {
				return fmt.Errorf("replay join assigned node %d, log recorded %d (divergent backend)",
					results[i].node, exp)
			}
		}
		s.be.Step(s.cfg.StepQuantum)
		ops, expect = ops[n:], expect[n:]
	}
	return nil
}
