package serve

import (
	"pidcan/internal/serve/index"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

// QueryIndex is the pluggable ranking structure behind the snapshot
// read path: every layer that answers best-fit queries from published
// records — the engine's one-shot Query, the cache fill, scatter
// merges, the federation router's legs — obtains candidates through
// one of these instead of an ad-hoc scan. An implementation is built
// at snapshot publication, immutable afterwards, and shared by
// lock-free concurrent readers.
type QueryIndex interface {
	// Search appends to dst the candidates needed to rank the k
	// smallest-surplus unexpired records dominating demand at
	// simulation time now — at least the true top k (it may return a
	// few more near score ties; callers rank the merged set with
	// RankCandidates, which is what guarantees the final order).
	// k <= 0 returns every match. The second result is how many
	// records the search visited, the engine's sub-linearity gauge.
	Search(dst []Candidate, demand vector.Vec, now sim.Time, k int) ([]Candidate, int)
	// Len is the number of indexed records.
	Len() int
}

// flatIndex adapts index.Flat — the sorted-by-score columnar
// dominance index — to QueryIndex for one shard's snapshot,
// translating node ids into the engine's global namespace and
// scoring surpluses with the exact arithmetic the linear scan uses
// (so index and scan produce byte-identical candidates).
type flatIndex struct {
	shard int
	scale vector.Vec
	flat  *index.Flat
}

func (fi *flatIndex) Search(dst []Candidate, demand vector.Vec, now sim.Time, k int) ([]Candidate, int) {
	var buf [8]int32
	entries, visited := fi.flat.Search(buf[:0], demand, now, k)
	for _, e := range entries {
		avail := fi.flat.Row(e)
		dst = append(dst, Candidate{
			Node:    Global(fi.shard, fi.flat.NodeAt(e)),
			Avail:   avail,
			Surplus: avail.Surplus(demand, fi.scale),
		})
	}
	return dst, visited
}

func (fi *flatIndex) Len() int { return fi.flat.Len() }

// linearIndex is the fallback QueryIndex (Config.IndexDisabled): the
// original full linear scan over the snapshot's records. It exists so
// the indexed and scanning read paths stay interchangeable behind the
// same interface — for comparison benchmarks and as the reference the
// equivalence property tests pin the flat index against.
type linearIndex struct {
	snap  *Snapshot
	scale vector.Vec
}

func (li *linearIndex) Search(dst []Candidate, demand vector.Vec, now sim.Time, k int) ([]Candidate, int) {
	return li.snap.collect(dst, demand, li.scale, now), len(li.snap.Records)
}

func (li *linearIndex) Len() int { return len(li.snap.Records) }
