package repl

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/serve"
	"pidcan/internal/serve/wal"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

// fakeBackend is the deterministic test backend (a flat availability
// map): equal configs rebuild identical backends, the property both
// recovery and replication rely on for real clusters.
type fakeBackend struct {
	now   sim.Time
	next  overlay.NodeID
	live  map[overlay.NodeID]bool
	avail map[overlay.NodeID]vector.Vec
	dims  int
}

func newFake(nodes, dims int) *fakeBackend {
	f := &fakeBackend{
		live:  map[overlay.NodeID]bool{},
		avail: map[overlay.NodeID]vector.Vec{},
		dims:  dims,
	}
	for i := 0; i < nodes; i++ {
		f.live[overlay.NodeID(i)] = true
		f.avail[overlay.NodeID(i)] = vector.New(dims)
	}
	f.next = overlay.NodeID(nodes)
	return f
}

func (f *fakeBackend) Nodes() []overlay.NodeID {
	var out []overlay.NodeID
	for id := overlay.NodeID(0); id < f.next; id++ {
		if f.live[id] {
			out = append(out, id)
		}
	}
	return out
}

func (f *fakeBackend) Availability(id overlay.NodeID) vector.Vec { return f.avail[id].Clone() }

func (f *fakeBackend) SetAvailability(id overlay.NodeID, v vector.Vec) error {
	if !f.live[id] {
		return fmt.Errorf("fake: node %d not live", id)
	}
	f.avail[id] = v.Clone()
	return nil
}

func (f *fakeBackend) Announce(id overlay.NodeID) error {
	if !f.live[id] {
		return fmt.Errorf("fake: node %d not live", id)
	}
	return nil
}

func (f *fakeBackend) Join() (overlay.NodeID, error) {
	id := f.next
	f.next++
	f.live[id] = true
	f.avail[id] = vector.New(f.dims)
	return id, nil
}

func (f *fakeBackend) Leave(id overlay.NodeID) error {
	if !f.live[id] {
		return fmt.Errorf("fake: node %d not live", id)
	}
	delete(f.live, id)
	delete(f.avail, id)
	return nil
}

func (f *fakeBackend) Query(from overlay.NodeID, demand vector.Vec, k int) ([]proto.Record, int, error) {
	var recs []proto.Record
	for _, id := range f.Nodes() {
		if f.avail[id].Dominates(demand) {
			recs = append(recs, proto.Record{Node: id, Avail: f.avail[id].Clone(), Expires: f.now + sim.Minute})
			if len(recs) >= k {
				break
			}
		}
	}
	return recs, len(recs), nil
}

func (f *fakeBackend) Step(d sim.Time) { f.now += d }
func (f *fakeBackend) Now() sim.Time   { return f.now }
func (f *fakeBackend) Size() int       { return len(f.Nodes()) }

func (f *fakeBackend) SeedNextID(next overlay.NodeID) error {
	if next < f.next {
		return fmt.Errorf("fake: seed id %d below next %d", next, f.next)
	}
	f.next = next
	return nil
}

func fakeFactory(i int, rc serve.Config) (serve.Backend, error) {
	return newFake(rc.NodesPerShard, rc.CMax.Dim()), nil
}

// testConfig is the shared engine shape: fast intervals, 2-dim cmax.
func testConfig(shards int) serve.Config {
	return serve.Config{
		Shards:        shards,
		NodesPerShard: 4,
		CMax:          vector.Of(10, 10),
		FlushInterval: 5 * time.Millisecond,
		CacheTTL:      10 * time.Millisecond,
	}
}

// newPrimary builds a durable primary engine plus its replication
// server listening on a loopback port.
func newPrimary(t *testing.T, cfg serve.Config, dir string) (*serve.Engine, *Server, string) {
	t.Helper()
	cfg.DataDir = dir
	e, err := serve.New(cfg, fakeFactory)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	srv, err := NewServer(e, ServerConfig{Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return e, srv, ln.Addr().String()
}

// newFollowerClient builds (but does not run) a follower client over
// its own mirror directory.
func newFollowerClient(t *testing.T, cfg serve.Config, dir, primary string) *Client {
	t.Helper()
	fcfg := cfg
	fcfg.DataDir = dir
	fcfg.Follower = true
	fcfg.PrimaryAddr = primary
	cl, err := NewClient(ClientConfig{
		Primary: primary,
		DataDir: dir,
		Shards:  cfg.Shards,
		Mount: func() (*serve.Engine, error) {
			return serve.New(fcfg, fakeFactory)
		},
		RetryMin:     20 * time.Millisecond,
		RetryMax:     100 * time.Millisecond,
		DrainTimeout: 300 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		if e := cl.Engine(); e != nil {
			e.Close()
		}
	})
	return cl
}

// runFollower starts the client loop and waits for its first mount.
func runFollower(t *testing.T, cl *Client) *serve.Engine {
	t.Helper()
	go cl.Run()
	deadline := time.Now().Add(10 * time.Second)
	for cl.Engine() == nil {
		if time.Now().After(deadline) {
			t.Fatal("follower never mounted an engine")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cl.Engine()
}

// waitCaughtUp polls until the follower's per-shard mirror positions
// equal the primary's (equal positions on byte-identical mirrors =
// identical applied prefix). Call it with the write load stopped. A
// follower mid-swap (re-bootstrap closes the old engine before the
// new one mounts) reads as not-caught-up, not as a failure.
func waitCaughtUp(t *testing.T, p *serve.Engine, cl *Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		pp, perr := positionsOf(p)
		fp, ferr := positionsOf(cl.Engine())
		if perr == nil && ferr == nil && fp != nil && reflect.DeepEqual(pp, fp) {
			return
		}
		if perr != nil {
			t.Fatalf("primary positions: %v", perr)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: primary %v, follower %v (%v)", pp, fp, ferr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func positionsOf(e *serve.Engine) ([]serve.ReplPos, error) {
	if e == nil {
		return nil, nil
	}
	out := make([]serve.ReplPos, e.Shards())
	for i := range out {
		p, err := e.ReplSyncPosition(i)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// stateOf captures what replication promises to preserve: the node
// set, per-shard records (ids + availability), and best-fit query
// results over a demand sweep.
type state struct {
	Nodes   []serve.GlobalID
	Records map[int][]proto.Record
	Queries [][]serve.Candidate
}

func stateOf(t *testing.T, e *serve.Engine) state {
	t.Helper()
	st := state{Nodes: e.Nodes(), Records: map[int][]proto.Record{}}
	for i := 0; i < e.Shards(); i++ {
		snap, err := e.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range snap.Records {
			st.Records[i] = append(st.Records[i], proto.Record{Node: r.Node, Avail: r.Avail})
		}
	}
	for _, d := range []vector.Vec{vector.Of(1, 1), vector.Of(4, 2), vector.Of(8, 8)} {
		resp, err := e.Query(serve.QueryRequest{Demand: d, K: 16, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		st.Queries = append(st.Queries, resp.Candidates)
	}
	return st
}

func assertSameState(t *testing.T, want, got state, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Nodes, got.Nodes) {
		t.Fatalf("%s: nodes %v, want %v", label, got.Nodes, want.Nodes)
	}
	if !reflect.DeepEqual(want.Records, got.Records) {
		t.Fatalf("%s: shard records diverged:\n got %+v\nwant %+v", label, got.Records, want.Records)
	}
	if !reflect.DeepEqual(want.Queries, got.Queries) {
		t.Fatalf("%s: query results diverged:\n got %+v\nwant %+v", label, got.Queries, want.Queries)
	}
}

// assertMirrorIdentical compares the two data dirs' current segment
// files byte for byte — the mirror contract behind cheap follower
// restarts.
func assertMirrorIdentical(t *testing.T, primaryDir, followerDir string, shards int) {
	t.Helper()
	for i := 0; i < shards; i++ {
		pdir := filepath.Join(primaryDir, fmt.Sprintf("shard-%d", i))
		fdir := filepath.Join(followerDir, fmt.Sprintf("shard-%d", i))
		psegs, err := wal.Segments(pdir)
		if err != nil {
			t.Fatal(err)
		}
		fsegs, err := wal.Segments(fdir)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(psegs, fsegs) {
			t.Fatalf("shard %d: segment sets differ: primary %v, follower %v", i, psegs, fsegs)
		}
		for _, seg := range psegs {
			pb, err := os.ReadFile(wal.SegmentPath(pdir, seg))
			if err != nil {
				t.Fatal(err)
			}
			fb, err := os.ReadFile(wal.SegmentPath(fdir, seg))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pb, fb) {
				t.Fatalf("shard %d segment %d: mirror diverges from primary (%d vs %d bytes)",
					i, seg, len(fb), len(pb))
			}
		}
	}
}

// drive applies a deterministic mixed write load against the primary
// and returns the ids it joined.
func drive(t *testing.T, e *serve.Engine, n int) []serve.GlobalID {
	t.Helper()
	var joined []serve.GlobalID
	nodes := e.Nodes()
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			id, err := e.Join(vector.Of(float64(i%9+1), float64(i%7+1)))
			if err != nil {
				t.Fatalf("drive %d join: %v", i, err)
			}
			joined = append(joined, id)
		case 3:
			if len(joined) > 1 {
				if err := e.Leave(joined[0]); err != nil {
					t.Fatalf("drive %d leave: %v", i, err)
				}
				joined = joined[1:]
			}
		default:
			id := nodes[i%len(nodes)]
			if err := e.Update(id, vector.Of(float64(i%10), float64(9-i%10)), i%2 == 0); err != nil {
				t.Fatalf("drive %d update: %v", i, err)
			}
		}
	}
	return joined
}

// TestReplFollowerMirrorsLiveStream is the basic contract: a cold
// follower bootstraps, tails the live write stream, and converges to
// the primary's exact node ids, availability vectors and query
// results, with a byte-identical log mirror.
func TestReplFollowerMirrorsLiveStream(t *testing.T) {
	cfg := testConfig(2)
	pdir, fdir := t.TempDir(), t.TempDir()
	p, _, addr := newPrimary(t, cfg, pdir)
	cl := newFollowerClient(t, cfg, fdir, addr)
	f := runFollower(t, cl)

	joined := drive(t, p, 60)
	// A migration mid-stream: the take+join pair must replicate in
	// order and rebuild the forwarding table on the follower.
	if err := p.Migrate(joined[len(joined)-1], (joined[len(joined)-1].Shard()+1)%2); err != nil {
		t.Fatal(err)
	}
	drive(t, p, 20)

	waitCaughtUp(t, p, cl)
	f = cl.Engine()
	assertSameState(t, stateOf(t, p), stateOf(t, f), "live stream")
	assertMirrorIdentical(t, pdir, fdir, 2)

	// The migrated node's external id routes on the follower too
	// (read path: it appears under its external id).
	ids := f.Nodes()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	found := false
	for _, id := range ids {
		if id == joined[len(joined)-1] {
			found = true
		}
	}
	if !found {
		t.Fatalf("migrated node's external id %v missing from follower Nodes %v", joined[len(joined)-1], ids)
	}

	// Writes on the follower are refused with the primary's address.
	if err := f.Update(ids[0], vector.Of(1, 1), false); err == nil {
		t.Fatal("follower accepted a write")
	} else if got := err.Error(); !contains(got, addr) {
		t.Fatalf("follower write error %q does not name the primary %s", got, addr)
	}
	st := f.Stats()
	if st.Role != "follower" || !st.ReplConnected {
		t.Fatalf("follower stats role=%q connected=%v", st.Role, st.ReplConnected)
	}
	if ps := p.Stats(); ps.Role != "primary" || ps.ReplFollowers != 1 {
		t.Fatalf("primary stats role=%q followers=%d", ps.Role, ps.ReplFollowers)
	}
}

func contains(s, sub string) bool {
	return len(sub) > 0 && len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// TestReplFollowerCrashRestartCatchUp kills the follower (client and
// engine, crash-style) mid-stream and restarts it on the same
// mirror: it must warm-restart from its own disk, RESUME the stream
// from its exact mirror position (no re-bootstrap — the primary's
// checkpoint counter must not move), and converge.
func TestReplFollowerCrashRestartCatchUp(t *testing.T) {
	cfg := testConfig(2)
	pdir, fdir := t.TempDir(), t.TempDir()
	p, _, addr := newPrimary(t, cfg, pdir)
	cl := newFollowerClient(t, cfg, fdir, addr)
	f := runFollower(t, cl)

	drive(t, p, 40)
	waitCaughtUp(t, p, cl)

	// Crash the follower: stop the stream, drop the engine without a
	// clean shutdown's final fsync beyond what the mirror already
	// holds (Close flushes; the mirror is per-batch identical anyway).
	cl.Close()
	f.Close()

	// The primary keeps writing while the follower is down — the gap
	// the resumed stream must splice from the primary's disk.
	drive(t, p, 30)

	ckptsBefore := p.Stats().Checkpoints
	cl2 := newFollowerClient(t, cfg, fdir, addr)
	f2 := runFollower(t, cl2)
	if !f2.Stats().WarmStart {
		t.Fatal("restarted follower did not warm-start from its mirror")
	}
	waitCaughtUp(t, p, cl2)
	if got := p.Stats().Checkpoints; got != ckptsBefore {
		t.Fatalf("reconnect forced a bootstrap checkpoint (%d -> %d), want a mid-segment resume",
			ckptsBefore, got)
	}
	assertSameState(t, stateOf(t, p), stateOf(t, cl2.Engine()), "after crash/restart catch-up")
	assertMirrorIdentical(t, pdir, fdir, 2)
}

// TestReplRebootstrapAfterCheckpoint: a follower that was down
// across a primary checkpoint (segments rotated and pruned under it)
// cannot resume mid-segment and must re-bootstrap by checkpoint
// shipping — and end up with the primary's pruned disk footprint.
func TestReplRebootstrapAfterCheckpoint(t *testing.T) {
	cfg := testConfig(2)
	pdir, fdir := t.TempDir(), t.TempDir()
	p, _, addr := newPrimary(t, cfg, pdir)
	cl := newFollowerClient(t, cfg, fdir, addr)
	f := runFollower(t, cl)

	drive(t, p, 30)
	waitCaughtUp(t, p, cl)
	cl.Close()
	f.Close()

	drive(t, p, 20)
	if _, err := p.Checkpoint(); err != nil { // rotates + prunes
		t.Fatal(err)
	}
	drive(t, p, 10)

	ckptsBefore := p.Stats().Checkpoints
	cl2 := newFollowerClient(t, cfg, fdir, addr)
	runFollower(t, cl2)
	waitCaughtUp(t, p, cl2)
	if got := p.Stats().Checkpoints; got != ckptsBefore+1 {
		t.Fatalf("stale follower reconnect: checkpoints %d -> %d, want a forced bootstrap checkpoint",
			ckptsBefore, got)
	}
	assertSameState(t, stateOf(t, p), stateOf(t, cl2.Engine()), "after re-bootstrap")
	assertMirrorIdentical(t, pdir, fdir, 2)
}

// TestReplPromotionServesEveryAckedWrite is the fail-over contract:
// the primary dies hard, the follower is promoted, and every write
// the primary acknowledged (and replicated — the stream was drained
// before the kill) is served by the new primary, which accepts
// writes under a sealed higher epoch that survives its own restart.
func TestReplPromotionServesEveryAckedWrite(t *testing.T) {
	cfg := testConfig(2)
	pdir, fdir := t.TempDir(), t.TempDir()
	p, srv, addr := newPrimary(t, cfg, pdir)
	cl := newFollowerClient(t, cfg, fdir, addr)
	runFollower(t, cl)

	joined := drive(t, p, 50)
	if err := p.Migrate(joined[len(joined)-1], (joined[len(joined)-1].Shard()+1)%2); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, p, cl)
	acked := stateOf(t, p)

	// Kill the primary hard: sessions drop, nothing more streams.
	srv.Close()
	p.Close()

	epoch, err := cl.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promotion sealed epoch %d, want 2", epoch)
	}
	np := cl.Engine()
	if np.Role() != "primary" {
		t.Fatalf("promoted engine role %q", np.Role())
	}
	assertSameState(t, acked, stateOf(t, np), "promoted follower vs acked primary state")

	// The new primary accepts writes...
	id, err := np.Join(vector.Of(3, 3))
	if err != nil {
		t.Fatalf("write on promoted follower: %v", err)
	}
	if err := np.Update(id, vector.Of(4, 4), true); err != nil {
		t.Fatal(err)
	}
	// ...its stale-epoch stream is fenced per frame...
	if err := np.ReplApply(0, 1, []wal.Record{{Kind: wal.KindLeave, Node: 0}}); err == nil {
		t.Fatal("promoted engine applied a stale-epoch frame")
	}
	// ...and the sealed epoch survives a restart of the new primary.
	pre := stateOf(t, np)
	if err := np.Close(); err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.DataDir = fdir // the follower's mirror is now the primary's data dir
	re, err := serve.New(rcfg, fakeFactory)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	if got := re.Epoch(); got != 2 {
		t.Fatalf("restarted new primary at epoch %d, want 2", got)
	}
	if re.Role() != "primary" {
		t.Fatalf("restarted new primary role %q", re.Role())
	}
	assertSameState(t, pre, stateOf(t, re), "new primary after restart")
}

// TestReplStalePrimaryFenced: after a promotion, the deposed primary
// is fenced the moment anything from the new timeline handshakes it
// — it seals read-only — and a follower refuses to stream from it.
func TestReplStalePrimaryFenced(t *testing.T) {
	cfg := testConfig(2)
	pdir, fdir := t.TempDir(), t.TempDir()
	p, _, addr := newPrimary(t, cfg, pdir)
	cl := newFollowerClient(t, cfg, fdir, addr)
	runFollower(t, cl)
	drive(t, p, 20)
	waitCaughtUp(t, p, cl)

	// Promote the follower while the old primary stays alive (a
	// partition, from its point of view). Stop the stream first.
	if _, err := cl.Promote(); err != nil {
		t.Fatal(err)
	}
	np := cl.Engine()
	if got := np.Epoch(); got != 2 {
		t.Fatalf("new epoch %d, want 2", got)
	}

	// A client of the new timeline handshakes the stale primary: it
	// must be refused with StFenced — and the stale primary seals.
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := newPconn(conn)
	if err := pc.writeFrame(encodeHello(hello{Epoch: np.Epoch(), Shards: 2, Bootstrap: true})); err != nil {
		t.Fatal(err)
	}
	if err := pc.flush(); err != nil {
		t.Fatal(err)
	}
	pc.setReadDeadline(2 * time.Second)
	payload, err := pc.readFrame(maxCtrlFrame)
	if err != nil {
		t.Fatal(err)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	if w.Status != StFenced {
		t.Fatalf("stale primary answered status %d, want StFenced", w.Status)
	}
	if got := p.Role(); got != "fenced" {
		t.Fatalf("stale primary role %q after fencing handshake, want fenced", got)
	}
	if err := p.Update(p.Nodes()[0], vector.Of(1, 1), false); err == nil {
		t.Fatal("fenced primary accepted a write")
	}
	// Reads on the fenced primary still serve.
	if _, err := p.Query(serve.QueryRequest{Demand: vector.Of(1, 1), K: 1, NoCache: true}); err != nil {
		t.Fatalf("fenced primary refused a read: %v", err)
	}
}

// TestReplConvergesWithReferenceAcrossReconnects is the divergence
// property test: a deterministic script runs against the primary in
// chunks; between chunks the follower is bounced (stream cut and
// resumed). After every chunk the follower must hold exactly the
// state of a reference engine that applied the same prefix live —
// node ids, availability vectors and query results.
func TestReplConvergesWithReferenceAcrossReconnects(t *testing.T) {
	cfg := testConfig(1)
	pdir, fdir := t.TempDir(), t.TempDir()
	p, _, addr := newPrimary(t, cfg, pdir)

	ref, err := serve.New(cfg, fakeFactory) // in-memory reference
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })

	cl := newFollowerClient(t, cfg, fdir, addr)
	runFollower(t, cl)

	const chunks, per = 5, 16
	for chunk := 0; chunk < chunks; chunk++ {
		// Identical deterministic load on primary and reference.
		script := func(e *serve.Engine) {
			t.Helper()
			nodes := e.Nodes()
			for i := 0; i < per; i++ {
				k := chunk*per + i
				switch k % 4 {
				case 0:
					if _, err := e.Join(vector.Of(float64(k%9+1), 2)); err != nil {
						t.Fatal(err)
					}
				default:
					if err := e.Update(nodes[k%len(nodes)], vector.Of(float64(k%10), float64(9-k%10)), k%2 == 0); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		script(p)
		script(ref)
		waitCaughtUp(t, p, cl)
		assertSameState(t, stateOf(t, ref), stateOf(t, cl.Engine()), fmt.Sprintf("chunk %d", chunk))
		// Bounce the stream: cut the TCP; the client reconnects and
		// resumes from its mirror position.
		cl.closeConn()
	}
	assertMirrorIdentical(t, pdir, fdir, 1)
}

// TestReplUnderMigrationTraffic streams a follower while concurrent
// writers and a migrator hammer the primary — the race-enabled
// satellite. After quiescing, the follower must hold the primary's
// exact state, forwarding table included (every migrated external id
// resolves identically).
func TestReplUnderMigrationTraffic(t *testing.T) {
	cfg := testConfig(4)
	cfg.NodesPerShard = 6
	pdir, fdir := t.TempDir(), t.TempDir()
	p, _, addr := newPrimary(t, cfg, pdir)
	cl := newFollowerClient(t, cfg, fdir, addr)
	runFollower(t, cl)

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	// Two writers over the stable initial population.
	base := p.Nodes()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				id := base[(i*3+w)%len(base)]
				if err := p.Update(id, vector.Of(float64(i%10), float64(w+1)), i%2 == 0); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	// A joiner/migrator: joins nodes and bounces them across shards.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var mine []serve.GlobalID
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			switch {
			case i%3 != 0 || len(mine) == 0:
				id, err := p.Join(vector.Of(5, 5))
				if err != nil {
					errs <- fmt.Errorf("joiner: %w", err)
					return
				}
				mine = append(mine, id)
			default:
				id := mine[i%len(mine)]
				if err := p.Migrate(id, i%cfg.Shards); err != nil && !contains(err.Error(), "last node") {
					errs <- fmt.Errorf("migrate %v: %w", id, err)
					return
				}
			}
			if len(mine) > 12 {
				if err := p.Leave(mine[0]); err != nil {
					errs <- fmt.Errorf("leave: %w", err)
					return
				}
				mine = mine[1:]
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	waitCaughtUp(t, p, cl)
	f := cl.Engine()
	assertSameState(t, stateOf(t, p), stateOf(t, f), "after migration traffic")
	assertMirrorIdentical(t, pdir, fdir, cfg.Shards)
	if pf, ff := p.Stats().ForwardedIDs, f.Stats().ForwardedIDs; pf != ff {
		t.Fatalf("forwarding table size diverged: primary %d, follower %d", pf, ff)
	}
}
