// Package repl replicates a serving engine's op-log to streaming
// followers — read replicas that can be promoted when the primary
// dies.
//
// Topology and roles:
//
//	writers ──► primary (serve.Engine, DataDir) ──► op-log
//	                │  repl.Server: per-shard record stream +
//	                │  checkpoint shipping over one TCP conn
//	                ▼
//	readers ──► follower (serve.Engine, Follower) ──► mirrored DataDir
//
// The primary streams every logged record batch, framed and
// CRC-checked, over a length-prefixed TCP protocol; checkpoints ship
// as verbatim file images at their exact rotation boundaries. The
// follower applies records through the engine's own batch path (the
// same machinery crash recovery uses, join ids verified against the
// log) and rebuilds a byte-identical mirror of the primary's
// DataDir, so a follower crash/restart is just a warm restart plus a
// resumed stream from wherever its mirror ends.
//
// The handshake negotiates shard shape and position: a follower
// whose mirror still matches the primary's current segments resumes
// mid-segment (the primary reads the already-durable gap from disk
// and splices it with the live feed); anything else — fresh
// follower, stale epoch, positions the primary has rotated away —
// bootstraps by checkpoint shipping and tails the log from the
// rotation point.
//
// Fail-over is explicit: Client.Promote (POST /promote over HTTP)
// drains the stream, seals epoch+1 durably, and opens the follower
// for writes. The epoch rides the handshake and every frame, so a
// deposed primary is fenced wherever it reappears: a follower
// rejects its stale frames, and a primary that hears a newer epoch
// in a handshake seals itself read-only.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/serve/wal"
)

// Protocol magic + version, first frame on the wire in each
// direction (inside hello/welcome).
const protoMagic = "PIDREPL1"

// Message types.
const (
	msgHello      byte = 1 // follower -> primary: epoch + positions
	msgWelcome    byte = 2 // primary -> follower: verdict + shape
	msgRecords    byte = 3 // primary -> follower: one record batch
	msgCheckpoint byte = 4 // primary -> follower: checkpoint image
	msgHeartbeat  byte = 5 // primary -> follower: liveness + positions
)

// Welcome statuses.
const (
	// StResume: the follower's positions are live; the stream starts
	// where its mirror ends.
	StResume byte = 1
	// StBootstrap: full state transfer — a checkpoint image frame
	// follows, then the stream tails from its rotation point.
	StBootstrap byte = 2
	// StFenced: the follower presented a NEWER epoch; this primary
	// is deposed and has sealed itself.
	StFenced byte = 3
	// StNotPrimary: the target is itself a follower or fenced.
	StNotPrimary byte = 4
	// StIncompatible: shard shape mismatch; replication refused.
	StIncompatible byte = 5
)

// hello is the follower's opening frame.
type hello struct {
	Epoch     uint64
	Shards    int
	Bootstrap bool
	Pos       []serve.ReplPos // per shard; ignored when Bootstrap
}

// welcome is the primary's handshake verdict.
type welcome struct {
	Status        byte
	Epoch         uint64
	Shards        int
	CkptSeq       uint64
	Seed          uint64
	NodesPerShard int
	Dims          int
}

// recordsFrame is one replicated record batch: shard's segment seg,
// first record ordinal pos.
type recordsFrame struct {
	Shard int
	Seg   uint64
	Pos   uint64
	Epoch uint64
	Recs  []wal.Record
}

// ckptFrame ships one checkpoint: the verbatim file image plus the
// per-shard post-rotation segments (redundant with the image, but
// the follower rotates before decoding).
type ckptFrame struct {
	Seq       uint64
	Epoch     uint64
	FirstSegs []uint64
	Data      []byte
}

// heartbeat carries the primary's live positions for lag reporting.
type heartbeat struct {
	Epoch uint64
	Pos   []serve.ReplPos
}

// Frame caps. The handshake reads with the control cap; mid-stream
// the follower cannot know a frame's type before reading it, so
// every stream read allows up to the checkpoint-image cap (the
// largest legitimate frame, scaling with the population).
const (
	maxCtrlFrame = 1 << 20   // hello/welcome
	maxCkptFrame = 256 << 20 // any stream frame (records/checkpoint/heartbeat)
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// pconn is one framed protocol connection: u32 payload length, u32
// IEEE CRC, payload — the op-log's own frame discipline lifted onto
// the wire.
type pconn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func newPconn(c net.Conn) *pconn {
	return &pconn{c: c, r: bufio.NewReaderSize(c, 1<<16), w: bufio.NewWriterSize(c, 1<<16)}
}

func (p *pconn) writeFrame(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := p.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := p.w.Write(payload)
	return err
}

func (p *pconn) flush() error { return p.w.Flush() }

func (p *pconn) readFrame(max int) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(p.r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	if n > max {
		return nil, fmt.Errorf("repl: frame of %d bytes exceeds cap %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(p.r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("repl: frame checksum mismatch")
	}
	return payload, nil
}

func (p *pconn) setReadDeadline(d time.Duration) {
	if d <= 0 {
		p.c.SetReadDeadline(time.Time{})
		return
	}
	p.c.SetReadDeadline(time.Now().Add(d))
}

func (p *pconn) setWriteDeadline(d time.Duration) {
	if d <= 0 {
		p.c.SetWriteDeadline(time.Time{})
		return
	}
	p.c.SetWriteDeadline(time.Now().Add(d))
}

// --- payload codecs ----------------------------------------------------------

// b is a little-endian append-style writer.
type b struct{ buf []byte }

func (x *b) u8(v byte)    { x.buf = append(x.buf, v) }
func (x *b) u32(v uint32) { x.buf = binary.LittleEndian.AppendUint32(x.buf, v) }
func (x *b) u64(v uint64) { x.buf = binary.LittleEndian.AppendUint64(x.buf, v) }
func (x *b) bytes(v []byte) {
	x.u32(uint32(len(v)))
	x.buf = append(x.buf, v...)
}

// r is the matching reader; failed reads poison it.
type r struct {
	buf []byte
	err error
}

func (x *r) u8() byte {
	if x.err != nil || len(x.buf) < 1 {
		x.err = errShort
		return 0
	}
	v := x.buf[0]
	x.buf = x.buf[1:]
	return v
}

func (x *r) u32() uint32 {
	if x.err != nil || len(x.buf) < 4 {
		x.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint32(x.buf)
	x.buf = x.buf[4:]
	return v
}

func (x *r) u64() uint64 {
	if x.err != nil || len(x.buf) < 8 {
		x.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint64(x.buf)
	x.buf = x.buf[8:]
	return v
}

func (x *r) bytes() []byte {
	n := int(x.u32())
	if x.err != nil || len(x.buf) < n {
		x.err = errShort
		return nil
	}
	v := x.buf[:n]
	x.buf = x.buf[n:]
	return v
}

var errShort = fmt.Errorf("repl: truncated payload")

func encodeHello(h hello) []byte {
	x := &b{}
	x.buf = append(x.buf, protoMagic...)
	x.u8(msgHello)
	x.u64(h.Epoch)
	x.u32(uint32(h.Shards))
	if h.Bootstrap {
		x.u8(1)
	} else {
		x.u8(0)
	}
	for _, p := range h.Pos {
		x.u64(p.Seg)
		x.u64(p.Pos)
	}
	return x.buf
}

func decodeHello(data []byte) (hello, error) {
	if len(data) < len(protoMagic) || string(data[:len(protoMagic)]) != protoMagic {
		return hello{}, fmt.Errorf("repl: not a replication handshake")
	}
	x := &r{buf: data[len(protoMagic):]}
	if t := x.u8(); t != msgHello {
		return hello{}, fmt.Errorf("repl: expected hello, got message %d", t)
	}
	h := hello{Epoch: x.u64(), Shards: int(x.u32()), Bootstrap: x.u8() == 1}
	// The count is untrusted wire input: bound it before allocating
	// (the frame cap bounds the payload, not the claimed count).
	if h.Shards < 0 || h.Shards > 1<<16 {
		return hello{}, fmt.Errorf("repl: hello claims %d shards", h.Shards)
	}
	if !h.Bootstrap {
		h.Pos = make([]serve.ReplPos, h.Shards)
		for i := range h.Pos {
			h.Pos[i] = serve.ReplPos{Seg: x.u64(), Pos: x.u64()}
		}
	}
	return h, x.err
}

func encodeWelcome(w welcome) []byte {
	x := &b{}
	x.buf = append(x.buf, protoMagic...)
	x.u8(msgWelcome)
	x.u8(w.Status)
	x.u64(w.Epoch)
	x.u32(uint32(w.Shards))
	x.u64(w.CkptSeq)
	x.u64(w.Seed)
	x.u32(uint32(w.NodesPerShard))
	x.u32(uint32(w.Dims))
	return x.buf
}

func decodeWelcome(data []byte) (welcome, error) {
	if len(data) < len(protoMagic) || string(data[:len(protoMagic)]) != protoMagic {
		return welcome{}, fmt.Errorf("repl: not a replication handshake")
	}
	x := &r{buf: data[len(protoMagic):]}
	if t := x.u8(); t != msgWelcome {
		return welcome{}, fmt.Errorf("repl: expected welcome, got message %d", t)
	}
	w := welcome{
		Status: x.u8(), Epoch: x.u64(), Shards: int(x.u32()),
		CkptSeq: x.u64(), Seed: x.u64(),
		NodesPerShard: int(x.u32()), Dims: int(x.u32()),
	}
	return w, x.err
}

func encodeRecordsFrame(f recordsFrame) ([]byte, error) {
	x := &b{}
	x.u8(msgRecords)
	x.u32(uint32(f.Shard))
	x.u64(f.Seg)
	x.u64(f.Pos)
	x.u64(f.Epoch)
	x.u32(uint32(len(f.Recs)))
	w := &sliceWriter{}
	if _, err := wal.EncodeRecords(w, f.Recs); err != nil {
		return nil, err
	}
	x.bytes(w.buf)
	return x.buf, nil
}

type sliceWriter struct{ buf []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

func decodeRecordsFrame(x *r) (recordsFrame, error) {
	f := recordsFrame{
		Shard: int(x.u32()), Seg: x.u64(), Pos: x.u64(), Epoch: x.u64(),
	}
	count := int(x.u32())
	blob := x.bytes()
	if x.err != nil {
		return f, x.err
	}
	recs, err := wal.DecodeRecords(blob)
	if err != nil {
		return f, err
	}
	if len(recs) != count {
		return f, fmt.Errorf("repl: frame carries %d records, header says %d", len(recs), count)
	}
	f.Recs = recs
	return f, nil
}

func encodeCkptFrame(f ckptFrame) []byte {
	x := &b{}
	x.u8(msgCheckpoint)
	x.u64(f.Seq)
	x.u64(f.Epoch)
	x.u32(uint32(len(f.FirstSegs)))
	for _, s := range f.FirstSegs {
		x.u64(s)
	}
	x.bytes(f.Data)
	return x.buf
}

func decodeCkptFrame(x *r) (ckptFrame, error) {
	f := ckptFrame{Seq: x.u64(), Epoch: x.u64()}
	n := int(x.u32())
	if n > 1<<16 {
		return f, fmt.Errorf("repl: checkpoint frame claims %d shards", n)
	}
	if x.err == nil {
		f.FirstSegs = make([]uint64, n)
		for i := range f.FirstSegs {
			f.FirstSegs[i] = x.u64()
		}
	}
	f.Data = append([]byte(nil), x.bytes()...)
	return f, x.err
}

func encodeHeartbeat(h heartbeat) []byte {
	x := &b{}
	x.u8(msgHeartbeat)
	x.u64(h.Epoch)
	x.u32(uint32(len(h.Pos)))
	for _, p := range h.Pos {
		x.u64(p.Seg)
		x.u64(p.Pos)
	}
	return x.buf
}

func decodeHeartbeat(x *r) (heartbeat, error) {
	h := heartbeat{Epoch: x.u64()}
	n := int(x.u32())
	if n > 1<<16 {
		return h, fmt.Errorf("repl: heartbeat claims %d shards", n)
	}
	if x.err == nil {
		h.Pos = make([]serve.ReplPos, n)
		for i := range h.Pos {
			h.Pos[i] = serve.ReplPos{Seg: x.u64(), Pos: x.u64()}
		}
	}
	return h, x.err
}
