package repl

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/serve/wal"
)

// ClientConfig parameterizes a follower's replication client.
type ClientConfig struct {
	// Primary is the primary's replication address (host:port).
	Primary string
	// DataDir is the follower's mirror directory — the same
	// directory its engine runs on.
	DataDir string
	// Shards is the engine's shard count (needed for the handshake
	// before an engine exists).
	Shards int
	// Mount builds (or rebuilds) the follower engine from DataDir —
	// a serve.Config with Follower set and the same shape as the
	// primary. Called on first connect after any bootstrap, and
	// again whenever the client must resynchronize its in-memory
	// state from the mirror.
	Mount func() (*serve.Engine, error)
	// Unmount tears an engine down before a re-bootstrap wipes the
	// mirror (default: Engine.Close).
	Unmount func(*serve.Engine)
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff (default
	// 100ms/3s).
	RetryMin, RetryMax time.Duration
	// DrainTimeout bounds how long Promote waits for in-flight
	// frames after the stream goes quiet (default 1s).
	DrainTimeout time.Duration
	// HeartbeatTimeout is how long a silent stream is trusted before
	// the client reconnects (default 5s; the primary heartbeats
	// every 500ms by default).
	HeartbeatTimeout time.Duration
	// Logf, when set, receives connection lifecycle lines.
	Logf func(format string, args ...any)
}

func (c ClientConfig) withDefaults() (ClientConfig, error) {
	if c.Primary == "" || c.DataDir == "" || c.Shards <= 0 || c.Mount == nil {
		return c, fmt.Errorf("repl: client needs Primary, DataDir, Shards and Mount")
	}
	if c.Unmount == nil {
		c.Unmount = func(e *serve.Engine) { e.Close() }
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 3 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// Client is a follower's replication client: it keeps a stream open
// to the primary, applies every record through the engine's batch
// path, mirrors segment rotations and shipped checkpoints, and
// reports lag. Run drives it; Promote turns the follower into a
// primary.
type Client struct {
	cfg ClientConfig

	eng atomic.Pointer[serve.Engine]
	pos []serve.ReplPos // per shard, what the engine+mirror hold

	stopped   atomic.Bool
	promoting atomic.Bool
	promoteCh chan struct{}
	promOnce  sync.Once
	drained   chan struct{}
	done      chan struct{}

	connMu sync.Mutex
	conn   net.Conn
}

// errResync marks stream errors after which the client's in-memory
// engine may be ahead of its mirror (an apply half-landed): the
// client remounts from disk before reconnecting, so position and
// state agree again.
type errResync struct{ err error }

func (e errResync) Error() string { return e.err.Error() }
func (e errResync) Unwrap() error { return e.err }

// NewClient validates the configuration.
func NewClient(cfg ClientConfig) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Client{
		cfg:       cfg,
		promoteCh: make(chan struct{}),
		drained:   make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

// Engine returns the currently mounted follower engine (nil until
// the first successful mount — a cold follower with an empty mirror
// has no engine before its bootstrap).
func (c *Client) Engine() *serve.Engine { return c.eng.Load() }

// Run connects, streams and reconnects until Close or Promote.
// Blocking; run it on its own goroutine.
func (c *Client) Run() {
	defer close(c.done)
	defer func() {
		if e := c.eng.Load(); e != nil {
			e.ReplReport(false, 0)
		}
	}()
	backoff := c.cfg.RetryMin
	for !c.stopped.Load() {
		if c.promoting.Load() {
			break
		}
		streamed, err := c.runOnce()
		if streamed {
			// A healthy stream resets the backoff: the next blip
			// reconnects at RetryMin, not at a stale saturated wait.
			backoff = c.cfg.RetryMin
		}
		if c.stopped.Load() || c.promoting.Load() {
			break
		}
		if err != nil {
			c.cfg.Logf("repl: stream to %s: %v (retry in %v)", c.cfg.Primary, err, backoff)
			var rs errResync
			if errors.As(err, &rs) {
				if merr := c.remount(); merr != nil {
					c.cfg.Logf("repl: remount after stream error: %v", merr)
				}
			}
		}
		select {
		case <-c.promoteCh:
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > c.cfg.RetryMax {
			backoff = c.cfg.RetryMax
		}
	}
	close(c.drained)
}

// Close stops the client (the engine, if mounted, stays up serving
// reads).
func (c *Client) Close() {
	if !c.stopped.CompareAndSwap(false, true) {
		return
	}
	c.closeConn()
	c.promOnce.Do(func() { close(c.promoteCh) }) // wake the backoff sleep
	<-c.done
}

// Promote drains the replication stream and promotes the follower:
// buffered frames get DrainTimeout to apply (a dead primary's
// stream drains instantly), the stream stops for good, and the
// engine seals epoch+1 and opens for writes. Wire it to the engine
// with Engine.SetPromoter so POST /promote lands here.
func (c *Client) Promote() (uint64, error) {
	if c.stopped.Load() {
		return 0, fmt.Errorf("repl: client closed")
	}
	c.promoting.Store(true)
	c.promOnce.Do(func() { close(c.promoteCh) })
	<-c.drained
	eng := c.eng.Load()
	if eng == nil {
		return 0, fmt.Errorf("repl: nothing to promote: no local state yet (bootstrap never completed)")
	}
	epoch, err := eng.PromoteLocal()
	if err != nil {
		return 0, err
	}
	c.cfg.Logf("repl: promoted to primary, epoch %d", epoch)
	return epoch, nil
}

func (c *Client) setConn(conn net.Conn) {
	c.connMu.Lock()
	c.conn = conn
	c.connMu.Unlock()
}

func (c *Client) closeConn() {
	c.connMu.Lock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.connMu.Unlock()
}

// hasLocalState reports whether the mirror holds a checkpoint — the
// signal that a Mount can recover something.
func (c *Client) hasLocalState() bool {
	ck, err := wal.LoadLatest(c.cfg.DataDir)
	return err == nil && ck != nil
}

// remount resynchronizes the in-memory engine with the mirror: close
// and recover. Used after apply errors and bootstrap.
func (c *Client) remount() error {
	if e := c.eng.Swap(nil); e != nil {
		c.cfg.Unmount(e)
	}
	e, err := c.cfg.Mount()
	if err != nil {
		return err
	}
	c.eng.Store(e)
	return nil
}

// wipeMirror removes the replication-owned state from DataDir ahead
// of a fresh bootstrap: checkpoints (and temp files) plus the
// per-shard segment directories. Nothing else in the directory is
// touched.
func (c *Client) wipeMirror() error {
	ents, err := os.ReadDir(c.cfg.DataDir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, ent := range ents {
		name := ent.Name()
		switch {
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".ckpt"),
			strings.HasSuffix(name, ".ckpt.tmp"),
			ent.IsDir() && strings.HasPrefix(name, "shard-"):
			if err := os.RemoveAll(filepath.Join(c.cfg.DataDir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// runOnce is one connection lifetime: mount if possible, handshake,
// bootstrap if told to, then stream until error/stop/promote.
// streamed reports whether the live stream was reached (handshake
// accepted) — the signal that resets the reconnect backoff.
func (c *Client) runOnce() (streamed bool, err error) {
	// A mirror with state serves (stale) reads even while the
	// primary is unreachable.
	if c.eng.Load() == nil && c.hasLocalState() {
		if err := c.remount(); err != nil {
			return false, fmt.Errorf("mount local mirror: %w", err)
		}
	}

	conn, err := net.DialTimeout("tcp", c.cfg.Primary, c.cfg.DialTimeout)
	if err != nil {
		return false, err
	}
	c.setConn(conn)
	defer func() {
		c.closeConn()
		if e := c.eng.Load(); e != nil {
			e.ReplReport(false, c.lag(nil))
		}
	}()
	pc := newPconn(conn)

	h := hello{Shards: c.cfg.Shards, Bootstrap: true}
	if eng := c.eng.Load(); eng != nil {
		h.Bootstrap = false
		h.Epoch = eng.Epoch()
		h.Pos = make([]serve.ReplPos, c.cfg.Shards)
		for i := range h.Pos {
			p, err := eng.ReplSyncPosition(i)
			if err != nil {
				return false, fmt.Errorf("local position: %w", err)
			}
			h.Pos[i] = p
		}
		c.pos = append(c.pos[:0], h.Pos...)
	}
	pc.setWriteDeadline(c.cfg.DialTimeout)
	if err := pc.writeFrame(encodeHello(h)); err != nil {
		return false, err
	}
	if err := pc.flush(); err != nil {
		return false, err
	}
	pc.setReadDeadline(c.cfg.DialTimeout)
	payload, err := pc.readFrame(maxCtrlFrame)
	if err != nil {
		return false, err
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		return false, err
	}
	switch w.Status {
	case StResume:
		// Stream continues at our positions.
	case StBootstrap:
		if err := c.bootstrap(pc, w); err != nil {
			return false, err
		}
	case StFenced:
		return false, fmt.Errorf("primary at %s is deposed (its epoch %d is behind ours %d)",
			c.cfg.Primary, w.Epoch, h.Epoch)
	case StNotPrimary:
		return false, fmt.Errorf("%s is not serving as a primary", c.cfg.Primary)
	default:
		return false, fmt.Errorf("primary refused replication (status %d; shards %d vs %d)",
			w.Status, c.cfg.Shards, w.Shards)
	}

	eng := c.eng.Load()
	if eng == nil {
		return false, fmt.Errorf("no engine after handshake")
	}
	if got := eng.Epoch(); got != w.Epoch {
		return false, errResync{fmt.Errorf("mirror epoch %d, primary %d", got, w.Epoch)}
	}
	eng.ReplReport(true, 0)
	c.cfg.Logf("repl: streaming from %s (epoch %d, %s)", c.cfg.Primary, w.Epoch,
		map[byte]string{StResume: "resumed", StBootstrap: "bootstrapped"}[w.Status])
	return true, c.stream(pc, eng, w.Epoch)
}

// bootstrap wipes the mirror, installs the shipped checkpoint image
// and mounts the engine from it. The first frame after a bootstrap
// welcome must be the checkpoint.
func (c *Client) bootstrap(pc *pconn, w welcome) error {
	pc.setReadDeadline(c.cfg.HeartbeatTimeout * 4) // checkpoint capture can take a moment
	payload, err := pc.readFrame(maxCkptFrame)
	if err != nil {
		return err
	}
	x := &r{buf: payload}
	if t := x.u8(); t != msgCheckpoint {
		return fmt.Errorf("expected checkpoint image after bootstrap welcome, got message %d", t)
	}
	f, err := decodeCkptFrame(x)
	if err != nil {
		return err
	}
	ck, err := wal.Decode(f.Data)
	if err != nil {
		return fmt.Errorf("shipped checkpoint: %w", err)
	}
	// Detach before closing, so Engine() readers see "not ready"
	// rather than a closed engine during the swap.
	if e := c.eng.Swap(nil); e != nil {
		c.cfg.Unmount(e)
	}
	if err := c.wipeMirror(); err != nil {
		return err
	}
	if _, err := wal.SaveRaw(c.cfg.DataDir, ck.Seq, f.Data); err != nil {
		return err
	}
	if err := c.remount(); err != nil {
		return fmt.Errorf("mount bootstrapped mirror: %w", err)
	}
	c.pos = c.pos[:0]
	for _, st := range ck.ShardStates {
		c.pos = append(c.pos, serve.ReplPos{Seg: st.FirstSeg})
	}
	c.cfg.Logf("repl: bootstrapped from checkpoint %d (%d bytes, epoch %d)", ck.Seq, len(f.Data), ck.Epoch)
	return nil
}

// lag sums how far the primary's positions (from the last heartbeat)
// run ahead of ours; nil reuses nothing and reports 0.
func (c *Client) lag(primary []serve.ReplPos) int64 {
	var lag int64
	for i := range primary {
		if i >= len(c.pos) {
			break
		}
		p, l := primary[i], c.pos[i]
		switch {
		case p.Seg == l.Seg && p.Pos > l.Pos:
			lag += int64(p.Pos - l.Pos)
		case p.Seg > l.Seg:
			// Rotations ahead of us: count the visible tail; the
			// intermediate segments' counts are unknown here.
			lag += int64(p.Pos)
		}
	}
	return lag
}

// stream applies frames until the connection dies, the client stops,
// or a promotion drains it.
func (c *Client) stream(pc *pconn, eng *serve.Engine, epoch uint64) error {
	drainDeadline := time.Time{}
	for {
		if c.stopped.Load() {
			return nil
		}
		if c.promoting.Load() {
			// Drain: give in-flight frames a short idle window, then
			// stop for good.
			if drainDeadline.IsZero() {
				drainDeadline = time.Now().Add(c.cfg.DrainTimeout)
			}
			if time.Now().After(drainDeadline) {
				return nil
			}
			pc.setReadDeadline(200 * time.Millisecond)
		} else {
			pc.setReadDeadline(c.cfg.HeartbeatTimeout)
		}
		payload, err := pc.readFrame(maxCkptFrame)
		if err != nil {
			if c.promoting.Load() {
				return nil // drained: nothing readable within the window
			}
			return err
		}
		x := &r{buf: payload}
		switch t := x.u8(); t {
		case msgRecords:
			f, err := decodeRecordsFrame(x)
			if err != nil {
				return err
			}
			if err := c.applyRecords(eng, epoch, f); err != nil {
				return err
			}
		case msgCheckpoint:
			f, err := decodeCkptFrame(x)
			if err != nil {
				return err
			}
			if f.Epoch != epoch {
				return errResync{fmt.Errorf("checkpoint epoch %d on an epoch-%d stream", f.Epoch, epoch)}
			}
			if err := eng.ReplInstallCheckpoint(f.Epoch, f.Data); err != nil {
				return errResync{err}
			}
			for i, fs := range f.FirstSegs {
				if i < len(c.pos) && c.pos[i].Seg < fs {
					c.pos[i] = serve.ReplPos{Seg: fs}
				}
			}
		case msgHeartbeat:
			hb, err := decodeHeartbeat(x)
			if err != nil {
				return err
			}
			if hb.Epoch != epoch {
				return errResync{fmt.Errorf("heartbeat epoch %d on an epoch-%d stream", hb.Epoch, epoch)}
			}
			eng.ReplReport(true, c.lag(hb.Pos))
		default:
			return fmt.Errorf("unexpected message %d mid-stream", t)
		}
	}
}

// applyRecords verifies frame continuity, mirrors rotations, and
// applies one record batch through the engine.
func (c *Client) applyRecords(eng *serve.Engine, epoch uint64, f recordsFrame) error {
	if f.Epoch != epoch {
		// The fencing belt: a deposed primary's frames never apply.
		return errResync{fmt.Errorf("record frame epoch %d on an epoch-%d stream", f.Epoch, epoch)}
	}
	if f.Shard < 0 || f.Shard >= len(c.pos) {
		return fmt.Errorf("record frame for shard %d of %d", f.Shard, len(c.pos))
	}
	cur := c.pos[f.Shard]
	if f.Seg > cur.Seg {
		if f.Pos != 0 {
			return errResync{fmt.Errorf("shard %d jumped to segment %d at pos %d", f.Shard, f.Seg, f.Pos)}
		}
		if err := eng.ReplRotate(f.Shard, f.Seg); err != nil {
			return errResync{err}
		}
		cur = serve.ReplPos{Seg: f.Seg}
	}
	if f.Seg < cur.Seg || f.Pos != cur.Pos {
		return errResync{fmt.Errorf("shard %d stream at seg %d pos %d, mirror at seg %d pos %d",
			f.Shard, f.Seg, f.Pos, cur.Seg, cur.Pos)}
	}
	if err := eng.ReplApply(f.Shard, f.Epoch, f.Recs); err != nil {
		return errResync{err}
	}
	c.pos[f.Shard] = serve.ReplPos{Seg: f.Seg, Pos: f.Pos + uint64(len(f.Recs))}
	return nil
}
