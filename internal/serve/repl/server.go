package repl

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/serve"
	"pidcan/internal/serve/wal"
)

// ServerConfig tunes the primary's replication server. Zero fields
// take the documented defaults.
type ServerConfig struct {
	// Heartbeat is the cadence of liveness/position frames to
	// followers (default 500ms). The follower treats several missed
	// heartbeats as a dead primary and reconnects.
	Heartbeat time.Duration
	// SessionBuffer bounds each follower session's event queue; a
	// follower too slow to drain it is disconnected (it reconnects
	// and catches up from disk). Default 4096 events.
	SessionBuffer int
	// WriteTimeout bounds each frame write (default 10s).
	WriteTimeout time.Duration
	// ChunkRecords caps records per stream frame (default 512).
	ChunkRecords int
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.SessionBuffer <= 0 {
		c.SessionBuffer = 4096
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.ChunkRecords <= 0 {
		c.ChunkRecords = 512
	}
	return c
}

// Server streams a primary engine's op-log to follower sessions. It
// implements serve.ReplSink: the engine hands it every logged record
// batch and checkpoint, and the server fans them out to per-session
// bounded queues (the hub's single lock gives every session the same
// total order, preserving the take-before-join causality of
// cross-shard migrations).
type Server struct {
	e   *serve.Engine
	cfg ServerConfig

	mu       sync.Mutex
	sessions map[*session]struct{}
	ln       net.Listener

	closed atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewServer builds a replication server for a durable primary engine
// and attaches itself as the engine's replication sink.
func NewServer(e *serve.Engine, cfg ServerConfig) (*Server, error) {
	if e.Config().DataDir == "" {
		return nil, fmt.Errorf("repl: replication needs a durable engine (DataDir)")
	}
	s := &Server{
		e:        e,
		cfg:      cfg.withDefaults(),
		sessions: map[*session]struct{}{},
		stop:     make(chan struct{}),
	}
	e.SetReplSink(s)
	return s, nil
}

// Serve accepts follower connections on ln until Close. Blocking.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close detaches the sink, stops accepting, and tears down every
// session.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.e.SetReplSink(nil)
	close(s.stop)
	s.mu.Lock()
	ln := s.ln
	for ss := range s.sessions {
		ss.kill()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// --- sink fan-out ------------------------------------------------------------

// event kinds in session queues.
const (
	evRecords byte = iota
	evCkpt
)

type event struct {
	kind      byte
	shard     int
	seg, pos  uint64
	epoch     uint64
	recs      []wal.Record
	seq       uint64
	firstSegs []uint64
	data      []byte
}

// ReplRecords implements serve.ReplSink (called from shard
// goroutines; must not block). recs aliases the shard's reusable
// buffer, so it is copied here — but only when a session exists to
// receive it: an idle primary with no followers pays nothing.
func (s *Server) ReplRecords(shard int, seg, pos, epoch uint64, recs []wal.Record) {
	s.mu.Lock()
	if len(s.sessions) > 0 {
		s.deliverLocked(event{
			kind: evRecords, shard: shard, seg: seg, pos: pos, epoch: epoch,
			recs: append([]wal.Record(nil), recs...),
		})
	}
	s.mu.Unlock()
}

// ReplCheckpoint implements serve.ReplSink (data is the engine's own
// freshly-read file image, never reused — no copy needed).
func (s *Server) ReplCheckpoint(seq, epoch uint64, firstSegs []uint64, data []byte) {
	s.mu.Lock()
	s.deliverLocked(event{kind: evCkpt, seq: seq, epoch: epoch, firstSegs: firstSegs, data: data})
	s.mu.Unlock()
}

func (s *Server) deliverLocked(ev event) {
	for ss := range s.sessions {
		select {
		case ss.ch <- ev:
		default:
			// The follower can't keep up; cut it loose — it
			// reconnects and resumes (or re-bootstraps) from disk.
			ss.kill()
		}
	}
}

func (s *Server) add(ss *session) {
	s.mu.Lock()
	s.sessions[ss] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) remove(ss *session) {
	s.mu.Lock()
	delete(s.sessions, ss)
	s.mu.Unlock()
}

// --- one follower session ----------------------------------------------------

type session struct {
	pc   *pconn
	ch   chan event
	dead chan struct{}
	once sync.Once
	// next is, per shard, the position the follower holds: every
	// outgoing frame is trimmed against it, which is what splices
	// the disk catch-up and the live feed without gaps or overlaps.
	next []serve.ReplPos
}

func (ss *session) kill() { ss.once.Do(func() { close(ss.dead) }) }

// handle runs one follower connection: handshake, catch-up, live
// stream.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	e := s.e
	pc := newPconn(conn)
	pc.setReadDeadline(10 * time.Second)
	payload, err := pc.readFrame(maxCtrlFrame)
	if err != nil {
		return
	}
	h, err := decodeHello(payload)
	if err != nil {
		return
	}
	pc.setReadDeadline(0)

	cfg := e.Config()
	w := welcome{
		Epoch: e.Epoch(), Shards: e.Shards(), CkptSeq: e.Stats().CheckpointSeq,
		Seed: cfg.Seed, NodesPerShard: cfg.NodesPerShard, Dims: cfg.CMax.Dim(),
	}
	refuse := func(status byte) {
		w.Status = status
		pc.setWriteDeadline(s.cfg.WriteTimeout)
		pc.writeFrame(encodeWelcome(w))
		pc.flush()
	}
	if h.Epoch > e.Epoch() {
		// The follower lived into a newer epoch than ours: we are the
		// deposed primary. Seal and say so.
		e.Fence(h.Epoch)
		refuse(StFenced)
		return
	}
	if e.Role() != "primary" {
		refuse(StNotPrimary)
		return
	}
	if h.Shards != e.Shards() || (!h.Bootstrap && len(h.Pos) != e.Shards()) {
		refuse(StIncompatible)
		return
	}

	// Register before probing positions: from here every logged
	// batch lands in this session's queue, so whatever the disk
	// read below misses is already buffered.
	ss := &session{pc: pc, ch: make(chan event, s.cfg.SessionBuffer), dead: make(chan struct{})}
	s.add(ss)
	defer s.remove(ss)
	e.ReplFollowerDelta(1)
	defer e.ReplFollowerDelta(-1)

	// Resume is possible only when the follower's mirror ends inside
	// every shard's CURRENT segment under the current epoch; closed
	// segments may have been compacted or pruned, so anything older
	// re-bootstraps (checkpoint shipping makes that cheap).
	resume := !h.Bootstrap && h.Epoch == e.Epoch()
	syncPos := make([]serve.ReplPos, e.Shards())
	if resume {
		for i := range syncPos {
			sp, err := e.ReplSyncPosition(i)
			if err != nil {
				return
			}
			syncPos[i] = sp
			if h.Pos[i].Seg != sp.Seg || h.Pos[i].Pos > sp.Pos {
				resume = false
			}
		}
	}

	if resume {
		w.Status = StResume
		pc.setWriteDeadline(s.cfg.WriteTimeout)
		if err := pc.writeFrame(encodeWelcome(w)); err != nil {
			return
		}
		ss.next = append([]serve.ReplPos(nil), h.Pos...)
		// Splice the durable gap from disk: everything between the
		// follower's position and the sync point is flushed and
		// readable; everything after the sync point is in the queue.
		// If the segment was rotated AND compacted between the sync
		// and this read, its record ordinals no longer match the
		// live sequence — the compacted flag in the header (the
		// rewrite is atomic, so we see one version or the other)
		// aborts the splice and the follower re-handshakes.
		for i := range syncPos {
			from, to := h.Pos[i].Pos, syncPos[i].Pos
			if from >= to {
				continue
			}
			meta, recs, _, _, err := wal.ReadSegmentInfo(e.ReplLogPath(i, syncPos[i].Seg))
			if err != nil || meta.Compacted || uint64(len(recs)) < to {
				return // the segment moved under us; follower retries
			}
			if err := ss.sendRecords(s.cfg, i, syncPos[i].Seg, from, e.Epoch(), recs[from:to]); err != nil {
				return
			}
			ss.next[i] = syncPos[i]
		}
		if err := pc.flush(); err != nil {
			return
		}
	} else {
		w.Status = StBootstrap
		pc.setWriteDeadline(s.cfg.WriteTimeout)
		if err := pc.writeFrame(encodeWelcome(w)); err != nil {
			return
		}
		if err := pc.flush(); err != nil {
			return
		}
		// Force a checkpoint: its image lands in OUR queue (we are
		// registered), in order behind every record frame of the
		// segments it covers — exactly the boundary the follower
		// needs. Records arriving before it are held back and
		// re-filtered once the boundary is known.
		ck, err := e.Checkpoint()
		if err != nil {
			return
		}
		var held []event
	waitCkpt:
		for {
			select {
			case ev := <-ss.ch:
				switch {
				case ev.kind == evCkpt && ev.seq >= ck.Seq:
					if err := ss.sendCkpt(s.cfg, ev); err != nil {
						return
					}
					break waitCkpt
				case ev.kind == evRecords:
					held = append(held, ev)
				}
			case <-ss.dead:
				return
			case <-s.stop:
				return
			}
		}
		for _, ev := range held {
			if err := ss.send(s.cfg, ev); err != nil {
				return
			}
		}
	}

	// Watchdog: the follower sends nothing after its hello, so any
	// read completion means EOF or error — the signal to tear down.
	go func() {
		io.Copy(io.Discard, conn)
		ss.kill()
	}()

	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case ev := <-ss.ch:
			if err := ss.send(s.cfg, ev); err != nil {
				return
			}
		case <-hb.C:
			pc.setWriteDeadline(s.cfg.WriteTimeout)
			if err := pc.writeFrame(encodeHeartbeat(heartbeat{Epoch: e.Epoch(), Pos: e.ReplPositions()})); err != nil {
				return
			}
			if err := pc.flush(); err != nil {
				return
			}
		case <-ss.dead:
			return
		case <-s.stop:
			return
		}
	}
}

// send writes one queued event, trimmed against what the follower
// already holds; a gap means the splice logic broke and the session
// dies (the follower re-handshakes from its durable position).
func (ss *session) send(cfg ServerConfig, ev event) error {
	switch ev.kind {
	case evRecords:
		cur := ss.next[ev.shard]
		if ev.seg < cur.Seg {
			return nil // superseded by a shipped checkpoint's rotation
		}
		if ev.seg > cur.Seg {
			if ev.pos != 0 {
				return fmt.Errorf("repl: shard %d jumped to segment %d at pos %d", ev.shard, ev.seg, ev.pos)
			}
			cur = serve.ReplPos{Seg: ev.seg}
		}
		end := ev.pos + uint64(len(ev.recs))
		if end <= cur.Pos {
			return nil // already sent (disk splice overlap)
		}
		if ev.pos > cur.Pos {
			return fmt.Errorf("repl: shard %d gap: have %d, frame starts at %d", ev.shard, cur.Pos, ev.pos)
		}
		recs := ev.recs[cur.Pos-ev.pos:]
		if err := ss.sendRecords(cfg, ev.shard, ev.seg, cur.Pos, ev.epoch, recs); err != nil {
			return err
		}
		ss.next[ev.shard] = serve.ReplPos{Seg: ev.seg, Pos: end}
		return ss.pc.flush()
	case evCkpt:
		return ss.sendCkpt(cfg, ev)
	}
	return nil
}

// sendRecords writes records in bounded chunks (buffered; callers
// flush).
func (ss *session) sendRecords(cfg ServerConfig, shard int, seg, pos, epoch uint64, recs []wal.Record) error {
	for len(recs) > 0 {
		n := len(recs)
		if n > cfg.ChunkRecords {
			n = cfg.ChunkRecords
		}
		payload, err := encodeRecordsFrame(recordsFrame{
			Shard: shard, Seg: seg, Pos: pos, Epoch: epoch, Recs: recs[:n],
		})
		if err != nil {
			return err
		}
		ss.pc.setWriteDeadline(cfg.WriteTimeout)
		if err := ss.pc.writeFrame(payload); err != nil {
			return err
		}
		recs, pos = recs[n:], pos+uint64(n)
	}
	return nil
}

// sendCkpt ships a checkpoint image and advances the trim cursor to
// its rotation boundary.
func (ss *session) sendCkpt(cfg ServerConfig, ev event) error {
	ss.pc.setWriteDeadline(cfg.WriteTimeout)
	if err := ss.pc.writeFrame(encodeCkptFrame(ckptFrame{
		Seq: ev.seq, Epoch: ev.epoch, FirstSegs: ev.firstSegs, Data: ev.data,
	})); err != nil {
		return err
	}
	if ss.next == nil {
		ss.next = make([]serve.ReplPos, len(ev.firstSegs))
	}
	for i, fs := range ev.firstSegs {
		if ss.next[i].Seg < fs {
			ss.next[i] = serve.ReplPos{Seg: fs}
		}
	}
	return ss.pc.flush()
}
