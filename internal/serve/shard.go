package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

// opKind enumerates the write-queue operations.
type opKind int

const (
	opUpdate opKind = iota // SetAvailability (+ optional Announce)
	opJoin                 // Join (+ optional initial availability)
	opLeave                // Leave
	opQuery                // protocol-routed ("consistent") query
	opTake                 // migration source half: Leave + hand back the availability
)

// op is one queued shard operation. reply, when non-nil, receives
// exactly one opResult (the channel must have capacity 1).
// onApplied, when non-nil, runs on the shard goroutine right after
// the op is applied and BEFORE the batch's snapshot publishes — the
// hook migration uses to install forwarding for a joined node
// before any snapshot can expose its new physical id.
type op struct {
	kind      opKind
	node      overlay.NodeID
	avail     vector.Vec
	announce  bool
	demand    vector.Vec
	k         int
	reply     chan opResult
	onApplied func(opResult)
}

type opResult struct {
	node  overlay.NodeID
	avail vector.Vec // opTake: the departing node's availability
	recs  []proto.Record
	hops  int
	err   error
}

// shard owns one Backend. All Backend access happens on the shard's
// goroutine (loop); the rest of the engine communicates through the
// ops queue and reads the published snapshot.
type shard struct {
	idx  int
	cfg  Config
	be   Backend
	ops  chan op
	stop chan struct{}
	done chan struct{}

	// fresh records the shard-local time of each node's last
	// explicit availability write; it backs RecordTTL expiry.
	// Owned by the shard goroutine (initialized before start).
	fresh map[overlay.NodeID]sim.Time

	halted  atomic.Bool
	snap    atomic.Pointer[Snapshot]
	version atomic.Uint64
	applied atomic.Uint64
	batches atomic.Uint64
}

func newShard(idx int, cfg Config, be Backend) *shard {
	s := &shard{
		idx:   idx,
		cfg:   cfg,
		be:    be,
		ops:   make(chan op, cfg.QueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		fresh: make(map[overlay.NodeID]sim.Time),
	}
	if cfg.Warmup > 0 {
		be.Step(cfg.Warmup)
	}
	for _, id := range be.Nodes() {
		s.fresh[id] = be.Now()
	}
	s.publish() // initial snapshot, before the goroutine starts
	return s
}

// start launches the shard goroutine. The Backend is handed over
// here: the constructor goroutine must not touch it afterwards.
func (s *shard) start() { go s.loop() }

// halt asks the loop to exit and waits for it. It is idempotent, so
// a shard already halted individually (e.g. mid-scatter in tests)
// survives the engine-wide Close.
func (s *shard) halt() {
	if s.halted.CompareAndSwap(false, true) {
		close(s.stop)
	}
	<-s.done
}

// loop is the shard goroutine: batch writes, advance the shard-local
// simulation, republish the snapshot. The idle ticker keeps the
// simulation clock (and therefore record freshness and the
// protocol's periodic machinery) moving under read-only traffic.
func (s *shard) loop() {
	defer close(s.done)
	idle := time.NewTicker(s.cfg.FlushInterval)
	defer idle.Stop()
	for {
		select {
		case <-s.stop:
			return
		case o := <-s.ops:
			batch := s.drain(o)
			results := s.applyBatch(batch)
			s.be.Step(s.cfg.StepQuantum)
			s.publish()
			// Replies go out only after the new snapshot is live, so
			// a caller whose write returned reads its own write.
			for i, o := range batch {
				if o.reply != nil {
					o.reply <- results[i]
				}
			}
		case <-idle.C:
			s.be.Step(s.cfg.StepQuantum)
			s.publish()
		}
	}
}

// drain gathers up to MaxBatch queued ops without blocking.
func (s *shard) drain(first op) []op {
	batch := make([]op, 1, 16)
	batch[0] = first
	for len(batch) < s.cfg.MaxBatch {
		select {
		case o := <-s.ops:
			batch = append(batch, o)
		default:
			return batch
		}
	}
	return batch
}

func (s *shard) applyBatch(batch []op) []opResult {
	results := make([]opResult, len(batch))
	for i, o := range batch {
		var res opResult
		switch o.kind {
		case opUpdate:
			res.err = s.be.SetAvailability(o.node, o.avail)
			if res.err == nil && o.announce {
				res.err = s.be.Announce(o.node)
			}
			if res.err == nil {
				s.fresh[o.node] = s.be.Now()
			}
		case opJoin:
			res.node, res.err = s.be.Join()
			if res.err == nil && o.avail != nil {
				res.err = s.be.SetAvailability(res.node, o.avail)
				if res.err == nil {
					res.err = s.be.Announce(res.node)
				}
			}
			if res.err == nil {
				s.fresh[res.node] = s.be.Now()
			}
		case opLeave:
			res.err = s.be.Leave(o.node)
			if res.err == nil {
				delete(s.fresh, o.node)
			}
		case opQuery:
			from := o.node
			if from < 0 {
				// Caller left the entry point open: use the
				// lowest-id alive node as the querying agent.
				nodes := s.be.Nodes()
				if len(nodes) == 0 {
					res.err = fmt.Errorf("%w: shard %d", ErrNoNodes, s.idx)
					break
				}
				from = nodes[0]
			}
			res.recs, res.hops, res.err = s.be.Query(from, o.demand, o.k)
		case opTake:
			// Migration source half: capture the availability, then
			// remove the node — one op, so no write can interleave.
			alive := false
			for _, id := range s.be.Nodes() {
				if id == o.node {
					alive = true
					break
				}
			}
			if !alive {
				res.err = fmt.Errorf("serve: node %d not on shard %d", o.node, s.idx)
				break
			}
			// The last node of a shard stays put: the CAN overlay
			// cannot lose its last owner (and a failed overlay leave
			// would strand the node half-dead).
			if s.be.Size() <= 1 {
				res.err = fmt.Errorf("%w: shard %d", ErrLastNode, s.idx)
				break
			}
			res.avail = s.be.Availability(o.node)
			if res.avail != nil && res.avail.Sum() == 0 {
				// Never-published availability reads back as a zero
				// vector; don't turn that into an explicit zero
				// announcement on the destination.
				res.avail = nil
			}
			res.err = s.be.Leave(o.node)
			if res.err != nil {
				res.avail = nil
			} else {
				delete(s.fresh, o.node)
			}
		}
		if o.onApplied != nil {
			o.onApplied(res)
		}
		results[i] = res
	}
	s.applied.Add(uint64(len(batch)))
	s.batches.Add(1)
	return results
}

// publish builds and atomically installs a fresh immutable snapshot
// of the shard's record index.
func (s *shard) publish() {
	now := s.be.Now()
	nodes := s.be.Nodes()
	recs := make([]proto.Record, 0, len(nodes))
	for _, id := range nodes {
		stored, ok := s.fresh[id]
		if !ok {
			stored = now
		}
		expires := sim.Time(1<<63 - 1) // RecordTTL 0: never expires
		if s.cfg.RecordTTL > 0 {
			expires = stored + s.cfg.RecordTTL
		}
		recs = append(recs, proto.Record{
			Node:    id,
			Avail:   s.be.Availability(id), // already a copy
			Stored:  stored,
			Expires: expires,
		})
	}
	s.snap.Store(&Snapshot{
		Shard:   s.idx,
		Version: s.version.Add(1),
		Taken:   now,
		Records: recs,
	})
}

// snapshot returns the current published snapshot (never nil after
// newShard).
func (s *shard) snapshot() *Snapshot { return s.snap.Load() }

// submit enqueues o and, when o.reply is set, waits for the result.
// It fails with ErrClosed once the shard goroutine has exited, and
// with errLegAbandoned when cancel closes first — the cancellation
// path that lets an abandoned scatter leg unwind instead of blocking
// forever on a full ops queue. cancel may be nil (never fires).
func (s *shard) submit(o op, cancel <-chan struct{}) (opResult, error) {
	select {
	case s.ops <- o:
	case <-s.done:
		return opResult{}, ErrClosed
	case <-cancel:
		return opResult{}, errLegAbandoned
	}
	if o.reply == nil {
		return opResult{}, nil
	}
	select {
	case r := <-o.reply:
		return r, nil
	case <-s.done:
		// The loop may have applied the op right before exiting;
		// prefer the real result if it is already buffered.
		select {
		case r := <-o.reply:
			return r, nil
		default:
			return opResult{}, ErrClosed
		}
	case <-cancel:
		// The op is enqueued and will be applied; the buffered reply
		// channel absorbs its result, so abandoning here leaks
		// nothing. Prefer the real result if it already landed.
		select {
		case r := <-o.reply:
			return r, nil
		default:
			return opResult{}, errLegAbandoned
		}
	}
}
