package serve

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"pidcan/internal/overlay"
	"pidcan/internal/proto"
	"pidcan/internal/serve/index"
	"pidcan/internal/serve/wal"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

// opKind enumerates the write-queue operations.
type opKind int

const (
	opUpdate opKind = iota // SetAvailability (+ optional Announce)
	opJoin                 // Join (+ optional initial availability)
	opLeave                // Leave
	opQuery                // protocol-routed ("consistent") query
	opTake                 // migration source half: Leave + hand back the availability
)

// migMeta is the serializable migration metadata of a join op that
// completes a migration: the node's external id and the physical id
// it is leaving behind. The live forwarding repoint happens in the
// op's onApplied hook; migMeta is what the op-log records so
// recovery can re-install the same repoint when it replays the join.
type migMeta struct {
	ext, old GlobalID
}

// op is one queued shard operation. reply, when non-nil, receives
// exactly one opResult (the channel must have capacity 1).
// onApplied, when non-nil, runs on the shard goroutine right after
// the op is applied and BEFORE the batch's snapshot publishes — the
// hook migration uses to install forwarding for a joined node
// before any snapshot can expose its new physical id, and Leave uses
// to drop forwarding state ahead of any later checkpoint capture.
// pendingReply is an applied, logged op whose ack is parked until
// the snapshot publication covering its batch goes live.
type pendingReply struct {
	reply chan opResult
	res   opResult
}

type op struct {
	kind      opKind
	node      overlay.NodeID
	avail     vector.Vec
	announce  bool
	demand    vector.Vec
	k         int
	mig       *migMeta
	fedTake   bool // take whose re-join happens in another process
	reply     chan opResult
	onApplied func(opResult)
}

type opResult struct {
	node  overlay.NodeID
	avail vector.Vec // opTake: the departing node's availability
	recs  []proto.Record
	hops  int
	err   error
}

// ckptReq asks the shard goroutine to rotate its log onto a fresh
// segment and capture its logical state at that exact boundary.
type ckptReq struct {
	reply chan ckptRes // capacity 1
}

type ckptRes struct {
	state wal.ShardState
	err   error
}

// ctlKind enumerates the replication control requests a shard
// goroutine serves besides checkpoints.
type ctlKind int

const (
	// ctlSync flushes and fsyncs the op-log and reports the exact
	// (segment, record) position — the handshake read point a
	// catching-up follower's disk stream starts from.
	ctlSync ctlKind = iota
	// ctlRotate rotates the log onto segment seg (no-op when the log
	// is already there or past), compacting the closed segment — how
	// a follower mirrors its primary's rotation points.
	ctlRotate
)

// ctlReq is one control request; reply (capacity 1) receives the
// result.
type ctlReq struct {
	kind  ctlKind
	seg   uint64 // ctlRotate target
	reply chan ctlRes
}

type ctlRes struct {
	seg uint64
	pos uint64
	err error
}

// shard owns one Backend. All Backend access happens on the shard's
// goroutine (loop); the rest of the engine communicates through the
// ops queue and reads the published snapshot.
type shard struct {
	idx  int
	cfg  Config
	be   Backend
	ops  chan op
	ckpt chan ckptReq
	ctl  chan ctlReq
	stop chan struct{}
	done chan struct{}

	// fresh records the shard-local time of each node's last
	// explicit availability write; it backs RecordTTL expiry.
	// Owned by the shard goroutine (initialized before start).
	fresh map[overlay.NodeID]sim.Time

	// dirty collects the nodes the current batch mutated (true:
	// alive, re-read from the backend at publication; false:
	// removed), so publishDelta can merge the previous snapshot's
	// records instead of rebuilding all of them. Owned by the shard
	// goroutine; cleared at every publication.
	dirty map[overlay.NodeID]bool

	// flat is the dominance index of the latest published snapshot
	// (nil with Config.IndexDisabled) — the predecessor incremental
	// rebuilds derive from. Owned by the shard goroutine; readers see
	// it only through the published Snapshot.
	flat *index.Flat

	// nextLocal tracks the next local id the backend will assign —
	// what a checkpoint records so recovery can re-create the same id
	// sequence. Owned by the shard goroutine.
	nextLocal overlay.NodeID

	// log, when non-nil, is the shard's append-only op-log. Owned by
	// the shard goroutine after start (the recovery path uses it
	// before). unsynced counts applied batches since the last fsync.
	log      *wal.Log
	unsynced int

	// epoch, when non-nil, is the engine-wide write epoch, bumped
	// once per applied batch that contained at least one mutation;
	// the query cache uses it to invalidate entries filled before
	// recent writes.
	epoch *atomic.Uint64

	// Replication state (engine-owned, shared across shards):
	// replEpoch is the current replication epoch (stamped into
	// segment headers and every streamed frame); sink, when set,
	// receives every logged record batch; readOnly marks follower
	// mode (size-based rotation then follows the stream, not local
	// size).
	replEpoch *atomic.Uint64
	sink      *atomic.Pointer[ReplSink]
	readOnly  *atomic.Bool

	// capture, when the engine-owned pointer is set, receives the
	// batch's canonical wal records in application order — the trace
	// recorder's mutation stream (works on in-memory engines too,
	// where log is nil).
	capture *atomic.Pointer[CaptureSink]

	// Reusable batch buffers (shard goroutine only): drain and
	// applyBatch run once per batch, so one MaxBatch-sized allocation
	// each serves the shard's lifetime (satellite fix: the old code
	// allocated a 16-cap slice per batch and regrew it past 16).
	batchBuf []op
	resBuf   []opResult
	recBuf   []wal.Record
	// pend holds replies whose batches were applied and logged but
	// whose snapshot publication is still being coalesced with a
	// queued backlog — no caller is acked before the snapshot
	// containing its write is live.
	pend []pendingReply

	halted     atomic.Bool
	snap       atomic.Pointer[Snapshot]
	version    atomic.Uint64
	applied    atomic.Uint64
	batches    atomic.Uint64
	logBytes   atomic.Int64  // bytes in segments since the last checkpoint
	logRecords atomic.Uint64 // records appended over the shard's lifetime
	logErrors  atomic.Uint64 // append/sync failures (durability degraded)
	segNum     atomic.Uint64 // current segment number (replication lag reads)
	segRecs    atomic.Uint64 // records in the current segment

	// Index maintenance counters (Stats): full builds, incremental
	// (delta-merged) rebuilds, and publications that reused the
	// previous records + index wholesale because nothing changed.
	idxBuilds atomic.Uint64
	idxDeltas atomic.Uint64
	idxReuses atomic.Uint64
}

func newShard(idx int, cfg Config, be Backend) *shard {
	s := &shard{
		idx:      idx,
		cfg:      cfg,
		be:       be,
		ops:      make(chan op, cfg.QueueDepth),
		ckpt:     make(chan ckptReq),
		ctl:      make(chan ctlReq),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		fresh:    make(map[overlay.NodeID]sim.Time),
		dirty:    make(map[overlay.NodeID]bool),
		batchBuf: make([]op, 0, cfg.MaxBatch),
		resBuf:   make([]opResult, cfg.MaxBatch),
		recBuf:   make([]wal.Record, 0, cfg.MaxBatch),
	}
	if cfg.Warmup > 0 {
		be.Step(cfg.Warmup)
	}
	for _, id := range be.Nodes() {
		s.fresh[id] = be.Now()
		if id >= s.nextLocal {
			s.nextLocal = id + 1
		}
	}
	s.publish() // initial snapshot, before the goroutine starts
	return s
}

// start launches the shard goroutine. The Backend is handed over
// here: the constructor goroutine must not touch it afterwards.
func (s *shard) start() { go s.loop() }

// halt asks the loop to exit and waits for it. It is idempotent, so
// a shard already halted individually (e.g. mid-scatter in tests)
// survives the engine-wide Close.
func (s *shard) halt() {
	if s.halted.CompareAndSwap(false, true) {
		close(s.stop)
	}
	<-s.done
}

// loop is the shard goroutine: batch writes, log them, advance the
// shard-local simulation, republish the snapshot. The idle ticker
// keeps the simulation clock (and therefore record freshness and the
// protocol's periodic machinery) moving under read-only traffic.
// Reads never enter here: queries on the snapshot path touch neither
// the ops queue nor the log.
func (s *shard) loop() {
	defer close(s.done)
	if s.log != nil {
		defer s.log.Close() // final flush + fsync on halt
	}
	idle := time.NewTicker(s.cfg.FlushInterval)
	defer idle.Stop()
	for {
		select {
		case <-s.stop:
			return
		case o := <-s.ops:
			for {
				batch := s.drain(o)
				results, muts := s.applyBatch(batch)
				// WAL discipline: the batch is durable (per the fsync
				// policy) before any caller learns its write was
				// applied.
				s.logBatch(batch, results)
				if muts > 0 && s.epoch != nil {
					s.epoch.Add(1)
				}
				s.be.Step(s.cfg.StepQuantum)
				// The buffers persist across batches: park the
				// replies, then drop op/result references (reply
				// channels, vectors, hooks) so they do not outlive
				// their batch.
				for i := range batch {
					if batch[i].reply != nil {
						s.pend = append(s.pend, pendingReply{batch[i].reply, results[i]})
					}
					batch[i] = op{}
					results[i] = opResult{}
				}
				// Coalesce publications under backlog: ops already
				// queued join this round, so one snapshot/index
				// rebuild — an O(records) affair — amortizes over
				// every batch of a write burst instead of running
				// per batch. MaxBatch pending acks bound the added
				// latency (and the dirty-set growth).
				if len(s.pend) >= s.cfg.MaxBatch || len(s.ops) == 0 {
					break
				}
				o = <-s.ops
			}
			s.publishDelta()
			// Replies go out only after the new snapshot is live, so
			// a caller whose write returned reads its own write.
			for i := range s.pend {
				s.pend[i].reply <- s.pend[i].res
				s.pend[i] = pendingReply{}
			}
			s.pend = s.pend[:0]
		case req := <-s.ckpt:
			req.reply <- s.checkpointNow()
		case req := <-s.ctl:
			req.reply <- s.control(req)
		case <-idle.C:
			s.be.Step(s.cfg.StepQuantum)
			s.publishDelta()
		}
	}
}

// drain gathers up to MaxBatch queued ops without blocking, reusing
// the shard's batch buffer (cap MaxBatch, allocated once).
func (s *shard) drain(first op) []op {
	batch := append(s.batchBuf[:0], first)
	for len(batch) < s.cfg.MaxBatch {
		select {
		case o := <-s.ops:
			batch = append(batch, o)
		default:
			return batch
		}
	}
	return batch
}

// applyBatch applies every op of the batch to the backend and
// returns the per-op results (backed by the shard's reusable result
// buffer) plus how many ops mutated state. It is the single
// application path: live batches, checkpoint restores and log
// replays all flow through here, so recovery is the same code as
// serving.
func (s *shard) applyBatch(batch []op) ([]opResult, int) {
	results := s.resBuf[:len(batch)]
	muts := 0
	for i := range batch {
		o := &batch[i]
		var res opResult
		switch o.kind {
		case opUpdate:
			res.err = s.be.SetAvailability(o.node, o.avail)
			if res.err == nil && o.announce {
				res.err = s.be.Announce(o.node)
			}
			if res.err == nil {
				s.fresh[o.node] = s.be.Now()
				s.dirty[o.node] = true
				muts++
			}
		case opJoin:
			res.node, res.err = s.be.Join()
			if res.err == nil && o.avail != nil {
				res.err = s.be.SetAvailability(res.node, o.avail)
				if res.err == nil {
					res.err = s.be.Announce(res.node)
				}
			}
			if res.err == nil {
				s.fresh[res.node] = s.be.Now()
				s.dirty[res.node] = true
				s.nextLocal = res.node + 1
				muts++
			}
		case opLeave:
			res.err = s.be.Leave(o.node)
			if res.err == nil {
				delete(s.fresh, o.node)
				s.dirty[o.node] = false
				muts++
			}
		case opQuery:
			from := o.node
			if from < 0 {
				// Caller left the entry point open: use the
				// lowest-id alive node as the querying agent.
				nodes := s.be.Nodes()
				if len(nodes) == 0 {
					res.err = fmt.Errorf("%w: shard %d", ErrNoNodes, s.idx)
					break
				}
				from = nodes[0]
			}
			res.recs, res.hops, res.err = s.be.Query(from, o.demand, o.k)
		case opTake:
			// Migration source half: capture the availability, then
			// remove the node — one op, so no write can interleave.
			alive := false
			for _, id := range s.be.Nodes() {
				if id == o.node {
					alive = true
					break
				}
			}
			if !alive {
				res.err = fmt.Errorf("serve: node %d not on shard %d", o.node, s.idx)
				break
			}
			// The last node of a shard stays put: the CAN overlay
			// cannot lose its last owner (and a failed overlay leave
			// would strand the node half-dead).
			if s.be.Size() <= 1 {
				res.err = fmt.Errorf("%w: shard %d", ErrLastNode, s.idx)
				break
			}
			res.avail = s.be.Availability(o.node)
			if res.avail != nil && res.avail.Sum() == 0 {
				// Never-published availability reads back as a zero
				// vector; don't turn that into an explicit zero
				// announcement on the destination.
				res.avail = nil
			}
			res.err = s.be.Leave(o.node)
			if res.err != nil {
				res.avail = nil
			} else {
				delete(s.fresh, o.node)
				s.dirty[o.node] = false
				muts++
			}
		}
		if o.onApplied != nil {
			o.onApplied(res)
		}
		results[i] = res
	}
	s.applied.Add(uint64(len(batch)))
	s.batches.Add(1)
	return results, muts
}

// logBatch appends every successfully applied mutation of the batch
// to the shard's op-log, forwards it to the replication sink, and
// applies the fsync policy: one Sync per FsyncEvery applied batches
// (default every batch), aligned with the MaxBatch drain so a burst
// of writes costs one fsync, not one per record. A log failure
// degrades durability, not serving — the shard keeps running on its
// in-memory state — but it is no longer silent: every mutating op of
// the failed batch has its result overridden with ErrWAL, so the
// blocked writers learn their write is not durable instead of being
// acked as if it were (Stats.LogErrors still counts the failures).
// When the current segment outgrows Config.SegmentMaxBytes the log
// rotates and the closed segment is compacted (followers rotate on
// their primary's stream positions instead).
func (s *shard) logBatch(batch []op, results []opResult) error {
	snk := s.captureSink()
	if s.log == nil && snk == nil {
		return nil
	}
	recs := s.batchRecords(batch, results)
	s.recBuf = recs[:0]
	if len(recs) == 0 {
		return nil
	}
	// The capture stream sees the batch whether or not a log exists
	// (in-memory engines record traces too) and regardless of the
	// append outcome below: the records describe state that IS applied
	// in memory, which is what a replay reproduces. recs aliases the
	// shard's reusable buffer; the sink copies what it keeps.
	if snk != nil {
		snk.CaptureMutations(s.idx, recs)
	}
	if s.log == nil {
		return nil
	}
	before := s.log.Size()
	if err := s.log.Append(recs...); err != nil {
		s.logErrors.Add(1)
		s.failBatch(batch, results, err)
		return err
	}
	s.logRecords.Add(uint64(len(recs)))
	s.logBytes.Add(s.log.Size() - before)
	// The sink sees the batch only after it is in the log (buffered;
	// the fsync policy below bounds its durability), at the position
	// the records landed — a follower can never hold records its
	// primary's log does not. recs aliases the shard's reusable
	// buffer: the sink copies what it keeps (and only when a
	// follower is attached), so a sink with no sessions costs no
	// allocation here.
	if p := s.sink.Load(); p != nil {
		(*p).ReplRecords(s.idx, s.log.Seg(), s.segRecs.Load(), s.replEpoch.Load(), recs)
	}
	s.segRecs.Add(uint64(len(recs)))
	s.unsynced++
	if s.cfg.FsyncEvery > 0 && s.unsynced >= s.cfg.FsyncEvery {
		if err := s.log.Sync(); err != nil {
			s.logErrors.Add(1)
			s.failBatch(batch, results, err)
			return err
		}
		s.unsynced = 0
	}
	if s.cfg.SegmentMaxBytes > 0 && s.log.Size() >= s.cfg.SegmentMaxBytes &&
		(s.readOnly == nil || !s.readOnly.Load()) {
		s.rotate(s.log.Seg()+1, true)
	}
	return nil
}

// captureSink returns the attached capture sink, or nil.
func (s *shard) captureSink() CaptureSink {
	if s.capture == nil {
		return nil
	}
	if p := s.capture.Load(); p != nil {
		return *p
	}
	return nil
}

// batchRecords builds the canonical wal records of every
// successfully applied mutation of the batch, into the shard's
// reusable record buffer — the one op→Record mapping shared by the
// op-log append, the replication sink and the capture stream.
func (s *shard) batchRecords(batch []op, results []opResult) []wal.Record {
	recs := s.recBuf[:0]
	for i := range batch {
		if results[i].err != nil {
			continue
		}
		o := &batch[i]
		switch o.kind {
		case opUpdate:
			recs = append(recs, wal.Record{
				Kind: wal.KindUpdate, Node: uint32(o.node),
				Announce: o.announce, Avail: o.avail,
			})
		case opJoin:
			r := wal.Record{Kind: wal.KindJoin, Node: uint32(results[i].node), Avail: o.avail}
			if o.mig != nil {
				r.Repoint, r.Ext, r.Old = true, uint64(o.mig.ext), uint64(o.mig.old)
			}
			recs = append(recs, r)
		case opLeave:
			recs = append(recs, wal.Record{Kind: wal.KindLeave, Node: uint32(o.node)})
		case opTake:
			if o.fedTake {
				// The matching re-join lives in another process's
				// WAL, so recovery here must never roll the node
				// back: log the removal as a plain leave.
				recs = append(recs, wal.Record{Kind: wal.KindLeave, Node: uint32(o.node)})
				break
			}
			// The captured availability rides the take record so a
			// recovery that finds the take durable but the matching
			// join lost can roll the node back onto this shard.
			recs = append(recs, wal.Record{Kind: wal.KindTake, Node: uint32(o.node), Avail: results[i].avail})
		}
	}
	return recs
}

// failBatch overrides every applied mutation's result with ErrWAL:
// the write is live in memory but did not reach the log, and its
// writer must not mistake it for a durable acknowledgment.
func (s *shard) failBatch(batch []op, results []opResult, cause error) {
	for i := range batch {
		if results[i].err == nil && batch[i].kind != opQuery {
			results[i].err = fmt.Errorf("%w: %v", ErrWAL, cause)
		}
	}
}

// rotate moves the log onto segment seg and, when compact is set,
// compacts the closed segment (superseded same-node updates dropped
// — deterministic, so a follower compacting at the same record
// boundary produces identical bytes). Checkpoint rotations skip the
// compaction: the segments they close are pruned moments later, and
// a full rewrite+fsync of a doomed file would be pure waste. A
// compaction failure is counted, not fatal; a rotation failure
// leaves the shard logging on the old segment.
func (s *shard) rotate(seg uint64, compact bool) error {
	closed := wal.SegmentPath(s.log.Dir(), s.log.Seg())
	if err := s.log.Rotate(seg, s.replEpoch.Load()); err != nil {
		s.logErrors.Add(1)
		return err
	}
	s.segNum.Store(seg)
	s.segRecs.Store(0)
	s.unsynced = 0
	if compact {
		if saved, err := wal.CompactSegment(closed); err != nil {
			s.logErrors.Add(1)
		} else {
			s.logBytes.Add(-saved)
		}
	}
	return nil
}

// control serves the replication control requests on the shard
// goroutine — the only goroutine allowed near the log.
func (s *shard) control(req ctlReq) ctlRes {
	if s.log == nil {
		return ctlRes{err: ErrNotDurable}
	}
	switch req.kind {
	case ctlSync:
		if err := s.log.Sync(); err != nil {
			s.logErrors.Add(1)
			return ctlRes{err: err}
		}
		s.unsynced = 0
		return ctlRes{seg: s.log.Seg(), pos: s.segRecs.Load()}
	case ctlRotate:
		if s.log.Seg() < req.seg {
			if err := s.rotate(req.seg, true); err != nil {
				return ctlRes{err: err}
			}
		}
		return ctlRes{seg: s.log.Seg(), pos: s.segRecs.Load()}
	}
	return ctlRes{err: fmt.Errorf("serve: unknown control request %d", req.kind)}
}

// controlReq submits one control request to the shard goroutine and
// waits; ErrClosed once the goroutine has exited.
func (s *shard) controlReq(kind ctlKind, seg uint64) (ctlRes, error) {
	req := ctlReq{kind: kind, seg: seg, reply: make(chan ctlRes, 1)}
	select {
	case s.ctl <- req:
	case <-s.done:
		return ctlRes{}, ErrClosed
	}
	select {
	case res := <-req.reply:
		return res, nil
	case <-s.done:
		select {
		case res := <-req.reply:
			return res, nil
		default:
			return ctlRes{}, ErrClosed
		}
	}
}

// checkpointNow runs on the shard goroutine: it rotates the log onto
// a fresh segment and captures the shard's logical state at exactly
// that boundary — the old segments plus the captured state are two
// encodings of the same history, so recovery may substitute one for
// the other.
func (s *shard) checkpointNow() ckptRes {
	if s.log == nil {
		return ckptRes{err: ErrNotDurable}
	}
	if err := s.rotate(s.log.Seg()+1, false); err != nil {
		return ckptRes{err: err}
	}
	s.logBytes.Store(0)
	st := wal.ShardState{
		Shard:    s.idx,
		NextID:   uint32(s.nextLocal),
		FirstSeg: s.log.Seg(),
	}
	for _, id := range s.be.Nodes() {
		st.Nodes = append(st.Nodes, wal.NodeState{
			Node:  uint32(id),
			Avail: s.be.Availability(id),
		})
	}
	return ckptRes{state: st}
}

// checkpoint asks the shard goroutine for a state capture and waits
// for it; it fails with ErrClosed once the goroutine has exited.
func (s *shard) checkpoint() (wal.ShardState, error) {
	req := ckptReq{reply: make(chan ckptRes, 1)}
	select {
	case s.ckpt <- req:
	case <-s.done:
		return wal.ShardState{}, ErrClosed
	}
	select {
	case res := <-req.reply:
		return res.state, res.err
	case <-s.done:
		select {
		case res := <-req.reply:
			return res.state, res.err
		default:
			return wal.ShardState{}, ErrClosed
		}
	}
}

// record builds one node's published record.
func (s *shard) record(id overlay.NodeID, now sim.Time) proto.Record {
	stored, ok := s.fresh[id]
	if !ok {
		stored = now
	}
	expires := sim.Time(1<<63 - 1) // RecordTTL 0: never expires
	if s.cfg.RecordTTL > 0 {
		expires = stored + s.cfg.RecordTTL
	}
	return proto.Record{
		Node:    id,
		Avail:   s.be.Availability(id), // already a copy
		Stored:  stored,
		Expires: expires,
	}
}

// publish builds and atomically installs a fresh immutable snapshot
// of the shard's full record index — the from-scratch path used at
// startup, after recovery replay, and whenever a batch dirtied too
// large a fraction of the population for a delta merge to win.
func (s *shard) publish() {
	now := s.be.Now()
	nodes := s.be.Nodes()
	recs := make([]proto.Record, 0, len(nodes))
	for _, id := range nodes {
		recs = append(recs, s.record(id, now))
	}
	if !s.cfg.IndexDisabled {
		s.flat = index.Build(recs, s.cfg.CMax)
		s.idxBuilds.Add(1)
	}
	s.installSnap(now, recs)
	clear(s.dirty)
}

// publishDelta publishes the post-batch snapshot incrementally,
// amortizing against the batched write drain: with nothing dirty
// (idle ticks, query-only batches) the previous records and index
// are republished wholesale under a fresh clock; with a small dirty
// set the previous records are merged with the re-read dirty nodes
// (both orders ascending by node id) and the dominance index rebuilt
// by sorted-order merge instead of a full re-sort. A batch that
// dirtied a large fraction of the population falls back to publish.
func (s *shard) publishDelta() {
	prev := s.snap.Load()
	if prev == nil || len(s.dirty)*4 > len(prev.Records)+16 {
		s.publish()
		return
	}
	now := s.be.Now()
	if len(s.dirty) == 0 {
		s.idxReuses.Add(1)
		s.installSnap(now, prev.Records)
		return
	}
	add := make([]proto.Record, 0, len(s.dirty))
	for id, alive := range s.dirty {
		if alive {
			add = append(add, s.record(id, now))
		}
	}
	sort.Slice(add, func(i, j int) bool { return add[i].Node < add[j].Node })
	old := prev.Records
	recs := make([]proto.Record, 0, len(old)+len(add))
	j := 0
	for i := range old {
		if _, touched := s.dirty[old[i].Node]; touched {
			continue // superseded by its dirty re-read (or removed)
		}
		for j < len(add) && add[j].Node < old[i].Node {
			recs = append(recs, add[j])
			j++
		}
		recs = append(recs, old[i])
	}
	recs = append(recs, add[j:]...)
	if !s.cfg.IndexDisabled {
		s.flat = s.flat.Update(recs, s.dirty)
		s.idxDeltas.Add(1)
	}
	s.installSnap(now, recs)
	clear(s.dirty)
}

// installSnap publishes recs under the shard's current index (the
// flat dominance index, or the linear-scan fallback with
// Config.IndexDisabled).
func (s *shard) installSnap(now sim.Time, recs []proto.Record) {
	snap := &Snapshot{
		Shard:   s.idx,
		Version: s.version.Add(1),
		Taken:   now,
		Records: recs,
	}
	if s.flat != nil {
		snap.idx = &flatIndex{shard: s.idx, scale: s.cfg.CMax, flat: s.flat}
	} else {
		snap.idx = &linearIndex{snap: snap, scale: s.cfg.CMax}
	}
	s.snap.Store(snap)
}

// snapshot returns the current published snapshot (never nil after
// newShard).
func (s *shard) snapshot() *Snapshot { return s.snap.Load() }

// enqueue inserts o into the write queue without waiting for its
// result — the replication applier's pipelining primitive: a frame's
// ops are all enqueued (order preserved, the queue is FIFO) before
// their replies are collected. Fails with ErrClosed once the shard
// goroutine has exited.
func (s *shard) enqueue(o op) error {
	select {
	case s.ops <- o:
		return nil
	case <-s.done:
		return ErrClosed
	}
}

// submit enqueues o and, when o.reply is set, waits for the result.
// It fails with ErrClosed once the shard goroutine has exited, and
// with errLegAbandoned when cancel closes first — the cancellation
// path that lets an abandoned scatter leg unwind instead of blocking
// forever on a full ops queue. cancel may be nil (never fires).
func (s *shard) submit(o op, cancel <-chan struct{}) (opResult, error) {
	select {
	case s.ops <- o:
	case <-s.done:
		return opResult{}, ErrClosed
	case <-cancel:
		return opResult{}, errLegAbandoned
	}
	if o.reply == nil {
		return opResult{}, nil
	}
	select {
	case r := <-o.reply:
		return r, nil
	case <-s.done:
		// The loop may have applied the op right before exiting;
		// prefer the real result if it is already buffered.
		select {
		case r := <-o.reply:
			return r, nil
		default:
			return opResult{}, ErrClosed
		}
	case <-cancel:
		// The op is enqueued and will be applied; the buffered reply
		// channel absorbs its result, so abandoning here leaks
		// nothing. Prefer the real result if it already landed.
		select {
		case r := <-o.reply:
			return r, nil
		default:
			return opResult{}, errLegAbandoned
		}
	}
}
