package serve

import (
	"sync/atomic"
	"testing"
	"time"

	"pidcan/internal/vector"
)

// migrateChain moves one shard-0 node around the engine's shards
// n times and returns (external id, physical id after each move).
func migrateChain(t *testing.T, e *Engine, n int) (GlobalID, []GlobalID) {
	t.Helper()
	var ext GlobalID
	for _, id := range e.Nodes() {
		if id.Shard() == 0 {
			ext = id
			break
		}
	}
	if err := e.Update(ext, vector.Of(3, 3), true); err != nil {
		t.Fatal(err)
	}
	var phys []GlobalID
	shards := len(e.shards)
	cur := 0
	for i := 0; i < n; i++ {
		cur = (cur + 1) % shards
		if err := e.Migrate(ext, cur); err != nil {
			t.Fatal(err)
		}
		phys = append(phys, e.fwd.resolve(ext))
	}
	return ext, phys
}

// TestFwdPathCompression pins the O(1)-repoint design: former
// physical ids link one step at a time (old -> next home), forming a
// chain, and a lookup through the chain flattens it union-find
// style.
func TestFwdPathCompression(t *testing.T) {
	e := newTestEngine(t, testConfig(3))
	_, phys := migrateChain(t, e, 3)
	p1, p2, cur := phys[0], phys[1], phys[2]

	e.fwd.mu.RLock()
	hop := e.fwd.next[p1]
	e.fwd.mu.RUnlock()
	if hop != p2 {
		t.Fatalf("next[%v] = %v before lookup, want the one-step link %v", p1, hop, p2)
	}
	if got := e.fwd.resolve(p1); got != cur {
		t.Fatalf("resolve(%v) = %v, want %v", p1, got, cur)
	}
	e.fwd.mu.RLock()
	hop = e.fwd.next[p1]
	e.fwd.mu.RUnlock()
	if hop != cur {
		t.Fatalf("next[%v] = %v after lookup, want path-compressed %v", p1, hop, cur)
	}
}

// TestFwdAliasExpiry pins the compaction satellite: former physical
// ids are reclaimed once no holder (cache entry, stale snapshot,
// in-flight scatter leg) can still present them, so the table is
// bounded by live migrated nodes, not lifetime migrations. The
// external id keeps routing forever.
func TestFwdAliasExpiry(t *testing.T) {
	e := newTestEngine(t, testConfig(3))
	base := time.Now()
	var offset atomic.Int64
	e.fwd.nowFn = func() time.Time { return base.Add(time.Duration(offset.Load())) }

	const moves = 5
	ext, phys := migrateChain(t, e, moves)
	cur := phys[len(phys)-1]
	grown := e.fwd.count()
	// next holds the external id plus one entry per former physical
	// id (the external id's first home counts once).
	if grown != moves {
		t.Fatalf("forwarded ids after %d moves: %d, want %d", moves, grown, moves)
	}

	offset.Store(int64(e.fwd.grace) + int64(time.Second))
	if got := e.fwd.count(); got != 1 {
		t.Fatalf("forwarded ids after grace expiry: %d, want 1 (external id only)", got)
	}
	// The external id still routes...
	if got := e.fwd.resolve(ext); got != cur {
		t.Fatalf("resolve(ext) = %v after reclaim, want %v", got, cur)
	}
	if err := e.Update(ext, vector.Of(4, 4), false); err != nil {
		t.Fatalf("update via external id after reclaim: %v", err)
	}
	// ...and the reclaimed intermediate id no longer does.
	if got := e.fwd.resolve(phys[0]); got != phys[0] {
		t.Fatalf("reclaimed alias %v still resolves to %v", phys[0], got)
	}
	// Externalization of the current physical id survives reclaim
	// (Nodes must keep reporting the stable external identity).
	nodes := e.Nodes()
	found := false
	for _, id := range nodes {
		if id == ext {
			found = true
		}
		if id == cur {
			t.Fatalf("Nodes reports the physical id %v instead of the external %v", cur, ext)
		}
	}
	if !found {
		t.Fatalf("external id %v missing from Nodes %v", ext, nodes)
	}
	// Leave drops the remaining entries entirely.
	if err := e.Leave(ext); err != nil {
		t.Fatal(err)
	}
	if got := e.fwd.count(); got != 0 {
		t.Fatalf("forwarded ids after leave: %d, want 0", got)
	}
}

// TestFwdRepointIdempotent pins what recovery relies on: replaying a
// repoint that the restored checkpoint already contains must not
// duplicate aliases.
func TestFwdRepointIdempotent(t *testing.T) {
	cfg, err := testConfig(1).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	ft := newFwdTable(cfg)
	x := Global(0, 1)
	p1, p2 := Global(1, 7), Global(2, 9)
	ft.repoint(x, x, p1)
	ft.repoint(x, p1, p2)
	ft.repoint(x, p1, p2) // replayed duplicate
	ft.mu.RLock()
	aliases := len(ft.aliases[x])
	ft.mu.RUnlock()
	if aliases != 1 {
		t.Fatalf("%d aliases after duplicate repoint, want 1", aliases)
	}
	if got := ft.resolve(x); got != p2 {
		t.Fatalf("resolve(x) = %v, want %v", got, p2)
	}
	if got := ft.resolve(p1); got != p2 {
		t.Fatalf("resolve(p1) = %v, want %v", got, p2)
	}
}

// TestCacheEpochInvalidation pins the write-invalidation satellite:
// inside a long TTL window, writes advancing the engine's epoch past
// the bound must force a rescan — which then observes the writes.
func TestCacheEpochInvalidation(t *testing.T) {
	cfg := testConfig(1)
	cfg.CacheTTL = time.Hour // TTL out of the picture
	cfg.CacheEpochBound = 1
	e := newTestEngine(t, cfg)
	nodes := e.Nodes()
	if err := e.Update(nodes[0], vector.Of(5, 5), false); err != nil {
		t.Fatal(err)
	}

	q := QueryRequest{Demand: vector.Of(4, 4), K: 8}
	if resp, err := e.Query(q); err != nil || resp.Cached {
		t.Fatalf("first query: cached=%v err=%v, want a miss", resp.Cached, err)
	}
	if resp, err := e.Query(q); err != nil || !resp.Cached {
		t.Fatalf("second query: cached=%v err=%v, want a hit", resp.Cached, err)
	}
	if len(mustQuery(t, e, q).Candidates) != 1 {
		t.Fatal("precondition: exactly one qualifying node expected")
	}

	// Two sequential updates -> two mutating batches -> the epoch
	// advances 2 past the entry's fill, beyond the bound of 1.
	if err := e.Update(nodes[1], vector.Of(6, 6), false); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(nodes[2], vector.Of(7, 7), false); err != nil {
		t.Fatal(err)
	}
	resp, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("entry survived the epoch bound: writes did not invalidate")
	}
	if len(resp.Candidates) != 3 {
		t.Fatalf("rescan found %d candidates, want 3 (the writes must be visible)", len(resp.Candidates))
	}
}

// TestCacheEpochDisabled: a negative bound restores pure TTL expiry.
func TestCacheEpochDisabled(t *testing.T) {
	cfg := testConfig(1)
	cfg.CacheTTL = time.Hour
	cfg.CacheEpochBound = -1
	e := newTestEngine(t, cfg)
	nodes := e.Nodes()
	if err := e.Update(nodes[0], vector.Of(5, 5), false); err != nil {
		t.Fatal(err)
	}
	q := QueryRequest{Demand: vector.Of(4, 4), K: 8}
	mustQuery(t, e, q)
	for i := 1; i < 4; i++ {
		if err := e.Update(nodes[i%len(nodes)], vector.Of(6, 6), false); err != nil {
			t.Fatal(err)
		}
	}
	if resp := mustQuery(t, e, q); !resp.Cached {
		t.Fatal("TTL-only mode: writes must not invalidate inside the TTL window")
	}
}

func mustQuery(t *testing.T, e *Engine, q QueryRequest) QueryResponse {
	t.Helper()
	resp, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
