package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"pidcan/internal/vector"
)

// NewHandler exposes an Engine over HTTP with a JSON API:
//
//	POST /query  {"demand":[...],"k":3,"consistent":false,"no_cache":false}
//	             -> QueryResponse
//	POST /update {"node":N,"avail":[...],"announce":true} -> {"ok":true}
//	POST /join   {"avail":[...]}                          -> {"node":N}
//	POST /leave  {"node":N}                               -> {"ok":true}
//	GET  /nodes  -> {"nodes":[N,...]}
//	GET  /stats  -> Stats
//	GET  /healthz -> {"ok":true}
//
// Node ids on the wire are GlobalIDs (shard in the high 32 bits).
// Errors come back as {"error":"..."} with status 400 (bad input),
// 409 (rejected operation) or 503 (engine closed).
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := e.Query(req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Node     GlobalID   `json:"node"`
			Avail    vector.Vec `json:"avail"`
			Announce bool       `json:"announce"`
		}
		if !decode(w, r, &req) {
			return
		}
		if err := e.Update(req.Node, req.Avail, req.Announce); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Avail vector.Vec `json:"avail"`
		}
		if !decode(w, r, &req) {
			return
		}
		id, err := e.Join(req.Avail)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]GlobalID{"node": id})
	})
	mux.HandleFunc("POST /leave", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Node GlobalID `json:"node"`
		}
		if !decode(w, r, &req) {
			return
		}
		if err := e.Leave(req.Node); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /nodes", func(w http.ResponseWriter, r *http.Request) {
		nodes := e.Nodes()
		if nodes == nil {
			nodes = []GlobalID{}
		}
		writeJSON(w, http.StatusOK, map[string][]GlobalID{"nodes": nodes})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	return mux
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request: " + err.Error()})
		return false
	}
	return true
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusConflict
	switch {
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrBadDemand):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
