package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pidcan/internal/vector"
)

// NewHandler exposes an Engine over HTTP with a JSON API:
//
//	POST /query  {"demand":[...],"k":3,"consistent":false,
//	              "scope":"all|one","no_cache":false}
//	             -> QueryResponse
//	POST /update {"node":N,"avail":[...],"announce":true} -> {"ok":true}
//	POST /join   {"avail":[...],"shard":S}                -> {"node":N}
//	POST /leave  {"node":N}                               -> {"ok":true}
//	POST /take   {"node":N}                               -> {"avail":[...]}
//	POST /rebalance -> RebalanceResult
//	POST /checkpoint -> CheckpointResult
//	POST /promote -> {"role":"primary","epoch":E}
//	GET  /nodes  -> {"nodes":[N,...]}
//	GET  /stats  -> Stats
//	GET  /healthz -> {"ok":true}
//
// Node ids on the wire are GlobalIDs (shard in the high 32 bits); a
// migrated node keeps answering to every id it was ever known by.
// /join's optional "shard" targets a specific placement instead of
// the round-robin pick; /rebalance triggers one adaptive rebalance
// pass on demand; /checkpoint snapshots a durable (DataDir) engine's
// state and truncates its op-logs. On a replication follower, writes
// return 503 with the primary's address in the error message (reads
// — /query, /nodes, /stats — serve normally) and POST /promote turns
// the follower into the primary under a fresh epoch. Request bodies
// are capped at 1
// MiB. Errors come
// back as {"error":"..."} with status 400 (bad input, including
// oversized bodies), 404 (no such shard), 409 (rejected operation),
// 500 (write applied but not durable: op-log failure), 503 (engine
// closed, or a write on a read-only follower or fenced primary) or
// 504 (scatter-gather deadline expired with no leg answered).
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	addServiceRoutes(mux, e)
	// Engine-only operator surface: these drive machinery a generic
	// Service does not expose.
	mux.HandleFunc("POST /rebalance", func(w http.ResponseWriter, r *http.Request) {
		res, err := e.Rebalance()
		if err != nil {
			writeErr(w, e.PrimaryAddr(), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		res, err := e.Checkpoint()
		if err != nil {
			writeErr(w, e.PrimaryAddr(), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /promote", func(w http.ResponseWriter, r *http.Request) {
		epoch, err := e.Promote()
		if err != nil {
			writeErr(w, e.PrimaryAddr(), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"role": e.Role(), "epoch": epoch})
	})
	return mux
}

// NewServiceHandler exposes any Service — an *Engine or a federation
// router — over the same JSON API as NewHandler, minus the
// engine-only operator routes (/rebalance, /checkpoint, /promote)
// and plus POST /take (remove a node, returning its availability for
// re-homing elsewhere).
func NewServiceHandler(s Service) http.Handler {
	mux := http.NewServeMux()
	addServiceRoutes(mux, s)
	return mux
}

// addServiceRoutes registers the Service-generic routes on mux.
func addServiceRoutes(mux *http.ServeMux, s Service) {
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Query(req)
		if err != nil {
			writeErr(w, s.PrimaryAddr(), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Node     GlobalID   `json:"node"`
			Avail    vector.Vec `json:"avail"`
			Announce bool       `json:"announce"`
		}
		if !decode(w, r, &req) {
			return
		}
		if err := s.Update(req.Node, req.Avail, req.Announce); err != nil {
			writeErr(w, s.PrimaryAddr(), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Avail vector.Vec `json:"avail"`
			Shard *int       `json:"shard"`
		}
		if !decode(w, r, &req) {
			return
		}
		var id GlobalID
		var err error
		if req.Shard != nil {
			id, err = s.JoinOn(*req.Shard, req.Avail)
		} else {
			id, err = s.Join(req.Avail)
		}
		if err != nil {
			writeErr(w, s.PrimaryAddr(), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]GlobalID{"node": id})
	})
	mux.HandleFunc("POST /leave", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Node GlobalID `json:"node"`
		}
		if !decode(w, r, &req) {
			return
		}
		if err := s.Leave(req.Node); err != nil {
			writeErr(w, s.PrimaryAddr(), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /take", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Node GlobalID `json:"node"`
		}
		if !decode(w, r, &req) {
			return
		}
		avail, err := s.Take(req.Node)
		if err != nil {
			writeErr(w, s.PrimaryAddr(), err)
			return
		}
		if avail == nil {
			avail = vector.Vec{}
		}
		writeJSON(w, http.StatusOK, map[string]vector.Vec{"avail": avail})
	})
	mux.HandleFunc("GET /nodes", func(w http.ResponseWriter, r *http.Request) {
		nodes := s.Nodes()
		if nodes == nil {
			nodes = []GlobalID{}
		}
		writeJSON(w, http.StatusOK, map[string][]GlobalID{"nodes": nodes})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.StatsPayload())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
}

// maxRequestBody caps decoded request bodies; anything larger is
// rejected with 400 before it can balloon the decoder's allocations.
const maxRequestBody = 1 << 20 // 1 MiB

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		msg := "bad request: " + err.Error()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			msg = fmt.Sprintf("bad request: body exceeds %d bytes", mbe.Limit)
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": msg})
		return false
	}
	return true
}

// retryAfterSeconds is the Retry-After hint on 503 rejections from a
// read-only follower or fenced primary: long enough for a fail-over
// promotion to complete, short enough that clients re-resolve the
// primary promptly.
const retryAfterSeconds = 1

func writeErr(w http.ResponseWriter, primary string, err error) {
	status := http.StatusConflict
	switch {
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrReadOnly), errors.Is(err, ErrFenced):
		// 503 + a structured redirect: Retry-After header plus the
		// primary's address in the body, the client's cue to re-point
		// writes (a follower serves only reads).
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":          err.Error(),
			"primary":        primary,
			"retry_after_ms": retryAfterSeconds * 1000,
		})
		return
	case errors.Is(err, ErrWAL):
		// Applied in memory, not durable — a server-side storage
		// fault, not a client error.
		status = http.StatusInternalServerError
	case errors.Is(err, ErrBadDemand), errors.Is(err, ErrBadScope), errors.Is(err, ErrNotDurable):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNoShard):
		status = http.StatusNotFound
	case errors.Is(err, ErrScatterTimeout):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
