package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pidcan/internal/proto"
	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

// Engine is the concurrent query-serving front of a sharded PID-CAN
// deployment. All methods are safe for concurrent use; see the
// package comment for the threading model.
type Engine struct {
	cfg    Config
	shards []*shard
	places []Placement // shards behind the Placement interface, same order
	cache  *queryCache
	fwd    *fwdTable // migrated-node id forwarding

	nextShard atomic.Uint64 // round-robin join target
	nextQuery atomic.Uint64 // round-robin ScopeOne consistent-query target

	// epoch is the engine-wide write epoch: each shard bumps it once
	// per applied batch that mutated state. The query cache uses it
	// to expire entries filled before recent writes.
	epoch atomic.Uint64

	// availSum caches the availability summary AvailSummary computes
	// for federation pruning, keyed on epoch: read-mostly workloads
	// answer repeated summary exchanges without rescanning snapshots.
	availSum atomic.Pointer[availSummary]

	queries       atomic.Uint64
	idxSearches   atomic.Uint64 // snapshot-path index searches (uncached + cache fills)
	idxScanned    atomic.Uint64 // records those searches visited
	consistent    atomic.Uint64
	updates       atomic.Uint64
	joins         atomic.Uint64
	leaves        atomic.Uint64
	migrations    atomic.Uint64
	rebalances    atomic.Uint64
	lastImbalance atomic.Uint64 // Float64bits of the last sampled max/min ratio
	errors        atomic.Uint64

	// Durability state (DataDir engines only).
	ckptMu sync.Mutex // serializes checkpoint passes
	// migMu is the migration/checkpoint barrier: Migrate holds the
	// read side across its take+join pair; a checkpoint pass holds
	// the write side while rotating the shard logs, so no migration
	// straddles a checkpoint boundary with only its take covered.
	migMu         sync.RWMutex
	ckptSeq       atomic.Uint64
	checkpoints   atomic.Uint64
	recoveryNanos atomic.Int64 // duration of the last startup recovery
	recoveredRecs atomic.Uint64
	warmStart     bool          // set before serving starts
	ckptDone      chan struct{} // non-nil iff the background checkpointer runs

	// Replication state. follower marks the read-only role (writes
	// fail with ErrReadOnly until promotion lifts it); fencedBy is
	// the newer epoch a deposed primary learned of (0: not fenced);
	// replEpoch is this engine's replication epoch, stamped into
	// segment headers, checkpoints and every streamed frame. The
	// sink, when set, receives every logged batch (the repl server's
	// fan-out hub); the lag/connected/follower-count gauges are fed
	// by the repl client and server for Stats.
	follower      atomic.Bool
	fencedBy      atomic.Uint64
	replEpoch     atomic.Uint64
	replSink      atomic.Pointer[ReplSink]
	replFollowers atomic.Int64
	replConnected atomic.Bool
	replLag       atomic.Int64
	promoterMu    sync.Mutex
	promoter      func() (uint64, error)
	// wireStats, when set, feeds the wire serving edge's gauges into
	// Stats (the wire server's counters; see SetWireStats).
	wireStats atomic.Pointer[func() WireStats]
	// capture, when set, receives every answered query and applied
	// mutation for trace recording (see SetCapture).
	capture atomic.Pointer[CaptureSink]
	// loopMu orders background-loop starts (deferred to promotion on
	// followers) against Close's teardown waits.
	loopMu sync.Mutex

	closed      atomic.Bool
	stop        chan struct{} // closed by Close; aborts waits and the rebalancer
	rebalDone   chan struct{} // non-nil iff the background rebalancer runs
	rebalanceMu sync.Mutex    // serializes rebalance passes (manual vs background)
}

// QueryRequest is one best-fit multi-dimensional range query: find
// up to K nodes whose advertised availability dominates Demand,
// ranked closest-fit first.
type QueryRequest struct {
	// Demand is the requested resource vector (cfg.CMax layout).
	Demand vector.Vec `json:"demand"`
	// K bounds the candidate count (default 1; <= 0 after default
	// resolution means 1).
	K int `json:"k,omitempty"`
	// Consistent routes the query through the shards' write queues
	// and the paper's three-phase protocol instead of the lock-free
	// snapshot path. Slower, but observes every write applied before
	// it on the queried shard(s).
	Consistent bool `json:"consistent,omitempty"`
	// Scope selects how many shards a consistent query consults:
	// ScopeAll (the default, also "") scatter-gathers through every
	// shard's protocol and merges the partial views; ScopeOne keeps
	// the paper-faithful single-shard behavior. Ignored on the
	// snapshot path, which always merges every shard's snapshot.
	Scope string `json:"scope,omitempty"`
	// NoCache bypasses the query cache (snapshot path only).
	NoCache bool `json:"no_cache,omitempty"`
}

// QueryResponse is the outcome of one query.
type QueryResponse struct {
	// Candidates are the qualified nodes, best fit first.
	Candidates []Candidate `json:"candidates"`
	// Cached reports whether the response was served from the query
	// cache.
	Cached bool `json:"cached,omitempty"`
	// Hops is the total protocol message count summed across every
	// shard leg (consistent path only; the snapshot path spends no
	// protocol messages).
	Hops int `json:"hops,omitempty"`
	// HopsMax is the largest single-shard protocol message count of
	// the legs behind this response — the scatter's critical path
	// (consistent path only).
	HopsMax int `json:"hops_max,omitempty"`
	// ShardsQueried counts the shards whose protocol answered this
	// query: Config.Shards (minus halted or timed-out legs) under
	// ScopeAll, 1 under ScopeOne (consistent path only).
	ShardsQueried int `json:"shards_queried,omitempty"`
}

// ShardStats describes one shard in Stats.
type ShardStats struct {
	Shard           int      `json:"shard"`
	Nodes           int      `json:"nodes"`
	SnapshotVersion uint64   `json:"snapshot_version"`
	SimNow          sim.Time `json:"sim_now_us"`
	QueueDepth      int      `json:"queue_depth"`
	OpsApplied      uint64   `json:"ops_applied"`
	Batches         uint64   `json:"batches"`
	// LogBytes is the shard's op-log volume since its last
	// checkpoint rotation (0 on in-memory engines). Sums to the
	// engine-wide wal_bytes.
	LogBytes int64 `json:"wal_bytes,omitempty"`
}

// Stats is a point-in-time view of engine counters.
type Stats struct {
	Shards      []ShardStats `json:"shards"`
	TotalNodes  int          `json:"total_nodes"`
	Dims        int          `json:"dims"`
	CMax        vector.Vec   `json:"cmax"`
	Queries     uint64       `json:"queries"`
	CacheHits   uint64       `json:"cache_hits"`
	CacheMisses uint64       `json:"cache_misses"`
	// CacheResets counts cache generation rotations: the cache keeps
	// two generations and, when full, drops only the older one (the
	// historical name survives for stats continuity).
	CacheResets  uint64 `json:"cache_resets"`
	CacheEntries int    `json:"cache_entries"`
	// CacheStale counts entries invalidated at lookup (TTL or epoch
	// expiry) and CacheAdaptions the knob adjustments the adaptive
	// controller has made (0 with fixed knobs). CacheTTLMS,
	// CacheQuantum and CacheEpochBound are the live knob values —
	// the configured constants unless the controller is steering.
	CacheStale      uint64  `json:"cache_stale"`
	CacheAdaptions  uint64  `json:"cache_adaptions"`
	CacheTTLMS      float64 `json:"cache_ttl_ms"`
	CacheQuantum    float64 `json:"cache_quantum"`
	CacheEpochBound uint64  `json:"cache_epoch_bound"`
	// IndexSearches counts snapshot-path index searches (uncached
	// queries + cache fills); IndexScannedRecords the records those
	// searches visited — scanned/searches vs total_nodes is the
	// sub-linearity gauge of the read path. IndexBuilds counts full
	// per-shard index builds, IndexDeltaBuilds incremental
	// (merge-with-dirty-nodes) rebuilds, and IndexReuses
	// publications that reused the previous records + index
	// wholesale because the batch changed nothing.
	IndexSearches       uint64 `json:"index_searches"`
	IndexScannedRecords uint64 `json:"index_scanned_records"`
	IndexBuilds         uint64 `json:"index_builds"`
	IndexDeltaBuilds    uint64 `json:"index_delta_builds"`
	IndexReuses         uint64 `json:"index_reuses"`
	Consistent          uint64 `json:"consistent_queries"`
	Updates             uint64 `json:"updates"`
	Joins               uint64 `json:"joins"`
	Leaves              uint64 `json:"leaves"`
	// Migrations counts completed cross-shard node migrations;
	// Rebalances counts rebalance passes run (background or manual).
	Migrations uint64 `json:"migrations"`
	Rebalances uint64 `json:"rebalances"`
	// ForwardedIDs is the number of stale node ids the forwarding
	// table keeps routable for migrated nodes.
	ForwardedIDs int `json:"forwarded_ids"`
	// LastImbalance is the max/min shard-population ratio sampled by
	// the most recent rebalance pass (0 until one runs).
	LastImbalance float64 `json:"last_imbalance"`
	Errors        uint64  `json:"errors"`

	// Durable reports whether the engine runs with a DataDir (an
	// op-log behind the write path); the fields below are zero
	// without one.
	Durable bool `json:"durable,omitempty"`
	// WriteEpoch counts applied batches that mutated shard state —
	// the clock behind write-triggered cache invalidation.
	WriteEpoch uint64 `json:"write_epoch,omitempty"`
	// LogBytes/LogRecords aggregate the shards' op-logs: bytes since
	// the last checkpoint, records over the engine's lifetime.
	// LogErrors counts append/fsync failures (durability degraded,
	// serving unaffected).
	LogBytes   int64  `json:"wal_bytes,omitempty"`
	LogRecords uint64 `json:"wal_records,omitempty"`
	LogErrors  uint64 `json:"wal_errors,omitempty"`
	// Checkpoints counts completed checkpoint passes (periodic,
	// explicit and on Close); CheckpointSeq is the latest sequence
	// number on disk.
	Checkpoints   uint64 `json:"checkpoints,omitempty"`
	CheckpointSeq uint64 `json:"checkpoint_seq,omitempty"`
	// WarmStart reports that this engine recovered prior state at
	// startup; LastRecoveryMS is how long that took and
	// RecoveredRecords how many log records it replayed beyond the
	// checkpoint.
	WarmStart        bool    `json:"warm_start,omitempty"`
	LastRecoveryMS   float64 `json:"last_recovery_ms,omitempty"`
	RecoveredRecords uint64  `json:"recovered_records,omitempty"`

	// Replication. Role is "primary", "follower", or "fenced" (a
	// deposed primary that learned of a newer epoch); Epoch is the
	// current replication epoch. On a primary, ReplFollowers counts
	// attached follower sessions. On a follower, ReplConnected
	// reports a live stream to the primary (PrimaryAddr), and
	// ReplLagRecords how many records the primary's current segments
	// hold beyond what this follower has applied (from the last
	// heartbeat; approximate).
	Role           string `json:"role,omitempty"`
	Epoch          uint64 `json:"epoch,omitempty"`
	ReplFollowers  int    `json:"repl_followers,omitempty"`
	ReplConnected  bool   `json:"repl_connected,omitempty"`
	ReplLagRecords int64  `json:"repl_lag_records,omitempty"`
	PrimaryAddr    string `json:"primary_addr,omitempty"`

	// Wire serving edge (internal/serve/wire), populated when a wire
	// server is attached via SetWireStats. WireConns is the live
	// persistent-connection count; WireRequests counts frames served
	// (TCP + UDP), WireUDPRequests the single-packet subset, and
	// WireRejected the frames the stateless filter or CRC refused.
	WireConns       int    `json:"wire_conns,omitempty"`
	WireRequests    uint64 `json:"wire_requests,omitempty"`
	WireRejected    uint64 `json:"wire_rejected,omitempty"`
	WireUDPRequests uint64 `json:"wire_udp_requests,omitempty"`

	// Trace capture (internal/serve/capture), fed by a recorder
	// attached via SetCapture: records captured, records dropped by
	// the bounded ring (the drop-not-block backpressure policy), and
	// trace bytes written. Deliberately not omitempty: operators and
	// smoke checks can always see the gauges, zero or not.
	CaptureRecords uint64 `json:"capture_records"`
	CaptureDropped uint64 `json:"capture_dropped"`
	CaptureBytes   uint64 `json:"capture_bytes"`
}

// WireStats is the gauge set a wire front-end feeds into Stats.
type WireStats struct {
	Conns       int
	Requests    uint64
	Rejected    uint64
	UDPRequests uint64
}

// New builds an engine: the factory is invoked once per shard, each
// backend is warmed up and snapshotted, then the shard goroutines
// start. With a DataDir configured, New first recovers: it loads the
// latest valid checkpoint and replays every newer op-log segment
// through the same batch-application path live writes use, so a
// restarted engine serves the identical node populations,
// availability vectors, forwarding state and query results its
// predecessor acknowledged (ErrRecovery wraps any failure). On a
// factory error New returns without teardown: no shard goroutine
// has started yet, so the already-built backends hold no resources
// beyond memory and are left to the garbage collector.
func New(cfg Config, factory BackendFactory) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:   cfg,
		cache: newQueryCache(cfg),
		fwd:   newFwdTable(cfg),
		stop:  make(chan struct{}),
	}
	e.replEpoch.Store(1) // cold start; recovery overrides from disk
	e.follower.Store(cfg.Follower)
	for i := 0; i < cfg.Shards; i++ {
		be, err := factory(i, cfg)
		if err != nil {
			// No goroutine has started yet; nothing to tear down.
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		s := newShard(i, cfg, be)
		s.epoch = &e.epoch
		s.replEpoch = &e.replEpoch
		s.sink = &e.replSink
		s.readOnly = &e.follower
		s.capture = &e.capture
		e.shards = append(e.shards, s)
		e.places = append(e.places, &shardPlacement{e: e, s: s})
	}
	if cfg.DataDir != "" {
		if err := e.recover(); err != nil {
			// No goroutine has started; release any log handles the
			// partial recovery opened.
			for _, s := range e.shards {
				if s.log != nil {
					s.log.Close()
				}
			}
			return nil, fmt.Errorf("%w: %v", ErrRecovery, err)
		}
	}
	for _, s := range e.shards {
		s.start()
	}
	// Followers defer the write-driving background loops (the
	// rebalancer migrates, the checkpointer rotates segments the
	// primary's stream did not) until promotion starts them.
	if !cfg.Follower {
		e.startLoops()
	}
	return e, nil
}

// startLoops launches the configured background loops that are
// deferred on followers: the adaptive rebalancer and the periodic
// checkpointer. Idempotent; ordered against Close via loopMu.
func (e *Engine) startLoops() {
	e.loopMu.Lock()
	defer e.loopMu.Unlock()
	if e.closed.Load() {
		return
	}
	if e.cfg.RebalanceInterval > 0 && e.cfg.Shards > 1 && e.rebalDone == nil {
		e.rebalDone = make(chan struct{})
		go e.rebalanceLoop(e.cfg.RebalanceInterval)
	}
	if e.cfg.DataDir != "" && e.cfg.CheckpointEvery > 0 && e.ckptDone == nil {
		e.ckptDone = make(chan struct{})
		go e.checkpointLoop(e.cfg.CheckpointEvery)
	}
}

// Config returns the resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetWireStats attaches a wire serving edge's gauge feed (typically
// a wire Server's Stats method) so Stats reports the wire_* fields.
// nil detaches. Safe to call on a serving engine.
func (e *Engine) SetWireStats(f func() WireStats) {
	if f == nil {
		e.wireStats.Store(nil)
		return
	}
	e.wireStats.Store(&f)
}

// Close stops the background loops, writes a final clean checkpoint
// (durable engines), and halts every shard goroutine — which flushes
// and fsyncs each op-log, so the next New warm-restarts without
// replay. Queued but unapplied writes are dropped; concurrent and
// subsequent calls fail with ErrClosed.
func (e *Engine) Close() error {
	return e.close(true)
}

// close implements Close. Skipping the final checkpoint (crash-style
// shutdown) is how crash-recovery tests exercise log replay.
func (e *Engine) close(checkpoint bool) error {
	if !e.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	close(e.stop)
	e.loopMu.Lock() // a concurrent promotion may have just started them
	rebalDone, ckptDone := e.rebalDone, e.ckptDone
	e.loopMu.Unlock()
	if rebalDone != nil {
		<-rebalDone
	}
	if ckptDone != nil {
		<-ckptDone
	}
	var ckptErr error
	if checkpoint && e.cfg.DataDir != "" && !e.follower.Load() {
		// The shards are still running: the final capture drains
		// whatever the write queues already accepted. A follower
		// skips this: its checkpoints and rotations come from the
		// primary's stream, and a local rotation would fork the
		// mirror (its log is already flushed and fsynced when each
		// shard halts, so a restart replays nothing extra anyway).
		_, ckptErr = e.checkpoint()
	}
	for _, s := range e.shards {
		s.halt()
	}
	return ckptErr
}

// writable gates the write path by role: a fenced deposed primary
// rejects everything, a follower rejects with a redirect to its
// primary. Queries never come through here — reads work in every
// role — and neither does the replication applier, whose writes ARE
// the primary's.
func (e *Engine) writable() error {
	if by := e.fencedBy.Load(); by != 0 {
		return fmt.Errorf("%w (saw epoch %d, ours %d)", ErrFenced, by, e.replEpoch.Load())
	}
	if e.follower.Load() {
		if e.cfg.PrimaryAddr != "" {
			return fmt.Errorf("%w (writes go to the primary at %s)", ErrReadOnly, e.cfg.PrimaryAddr)
		}
		return ErrReadOnly
	}
	return nil
}

func (e *Engine) checkDemand(demand vector.Vec) error {
	if demand.Dim() != e.cfg.CMax.Dim() || !demand.IsFinite() || !demand.IsNonNegative() {
		return fmt.Errorf("%w: %v (want %d non-negative finite dims)",
			ErrBadDemand, demand, e.cfg.CMax.Dim())
	}
	return nil
}

// Query answers one best-fit range query. The default path reads
// every shard's published snapshot lock-free, merges the qualified
// records and ranks them by surplus; it consults the query cache
// first unless the request opts out.
func (e *Engine) Query(req QueryRequest) (QueryResponse, error) {
	resp, err := e.query(req)
	if p := e.capture.Load(); p != nil {
		(*p).CaptureQuery(req, &resp, err)
	}
	return resp, err
}

// query implements Query; the wrapper adds capture emission.
func (e *Engine) query(req QueryRequest) (QueryResponse, error) {
	if e.closed.Load() {
		return QueryResponse{}, ErrClosed
	}
	if err := e.checkDemand(req.Demand); err != nil {
		e.errors.Add(1)
		return QueryResponse{}, err
	}
	switch req.Scope {
	case "", ScopeAll, ScopeOne:
	default:
		e.errors.Add(1)
		return QueryResponse{}, fmt.Errorf("%w: %q (want %q or %q)",
			ErrBadScope, req.Scope, ScopeAll, ScopeOne)
	}
	if req.K <= 0 {
		req.K = 1
	}
	e.queries.Add(1)
	if req.Consistent {
		return e.consistentQuery(req)
	}

	// Cacheable queries are evaluated against their quantization
	// cell's upper-bound demand, so the cached candidate set is valid
	// for every demand sharing the cell (dominance is preserved; near
	// a cell edge a borderline candidate may be conservatively
	// skipped). The surpluses handed back, however, are always
	// recomputed against the caller's true demand — the cache holds
	// only the cell-evaluated candidate set.
	useCache := !e.cfg.CacheDisabled && !req.NoCache
	if !useCache {
		cands := e.searchShards(req.Demand, req.K)
		return QueryResponse{Candidates: e.externalize(bestFit(cands, req.K))}, nil
	}
	key, cellDemand := e.cache.quantize(req.Demand, req.K)
	// The fill epoch is read before the snapshot scan: a write racing
	// the scan may or may not be visible in it, and the earlier epoch
	// ages the entry conservatively either way.
	epoch := e.epoch.Load()
	resp, hit := e.cache.get(key, time.Now(), epoch) // Candidates already a private copy
	if !hit {
		cands := e.searchShards(cellDemand, req.K)
		cached := QueryResponse{Candidates: bestFit(cands, req.K)}
		e.cache.put(key, cached, time.Now(), epoch)
		resp = QueryResponse{Candidates: append([]Candidate(nil), cached.Candidates...)}
	}
	resp.Cached = hit
	resp.Candidates = e.externalize(rescore(resp.Candidates, req.Demand, e.cfg.CMax, req.K))
	return resp, nil
}

// searchShards merges every shard snapshot's QueryIndex search for
// the k best-fit candidates dominating demand — the one read-path
// ranking entry the uncached and cache-fill queries both go through.
// The returned candidates still need bestFit: per-shard searches
// return their own top k (plus near ties), not a global order.
func (e *Engine) searchShards(demand vector.Vec, k int) []Candidate {
	var cands []Candidate
	visited := 0
	for _, s := range e.shards {
		var n int
		cands, n = s.snapshot().Search(cands, demand, e.cfg.CMax, k)
		visited += n
	}
	e.idxSearches.Add(1)
	e.idxScanned.Add(uint64(visited))
	return cands
}

// externalize rewrites candidate ids to their nodes' stable
// external ids (in place; every candidate slice here is private), so
// query responses and Nodes agree on identity for migrated nodes.
// Cached entries keep physical-at-snapshot-time ids and are mapped
// per hit, so the ids stay current however the node moves between
// hits; any id handed out remains routable either way.
func (e *Engine) externalize(cands []Candidate) []Candidate {
	t := e.fwd
	if t.entries.Load() == 0 { // no migrated node: nothing to map
		return cands
	}
	t.mu.RLock()
	for i := range cands {
		cands[i].Node = t.externalLocked(cands[i].Node)
	}
	t.mu.RUnlock()
	return cands
}

// rescore recomputes every candidate's surplus against demand and
// re-ranks. Candidates entering here were qualified against a demand
// their avail dominates (the quantization cell's upper bound, which
// itself dominates the caller's demand), so none is disqualified —
// only its reported slack changes.
func rescore(cands []Candidate, demand, scale vector.Vec, k int) []Candidate {
	for i := range cands {
		cands[i].Surplus = cands[i].Avail.Surplus(demand, scale)
	}
	return bestFit(cands, k)
}

// consistentQuery routes the query through the PID-CAN protocol
// itself. Under ScopeOne it consults a single placement's index
// chosen round-robin, like any one querying node of the paper would.
// Under ScopeAll (the default) it scatters one protocol query to
// every placement concurrently through ScatterQuery — the
// decentralized merge-partial-views shape of ART/DEPAS lifted above
// the shards. A shard halting mid-scatter fails only its own leg
// (ErrClosed). Config.ScatterTimeout is the whole-gather deadline;
// see ScatterQuery for the partial-merge semantics.
func (e *Engine) consistentQuery(req QueryRequest) (QueryResponse, error) {
	e.consistent.Add(1)
	if req.Scope == ScopeOne {
		p := e.places[(e.nextQuery.Add(1)-1)%uint64(len(e.places))]
		leg, err := p.QueryLeg(req, nil)
		if err != nil {
			e.errors.Add(1)
			return QueryResponse{}, err
		}
		return QueryResponse{
			Candidates:    e.externalize(bestFit(leg.Cands, req.K)),
			Hops:          leg.Hops,
			HopsMax:       leg.HopsMax,
			ShardsQueried: leg.Queried,
		}, nil
	}

	resp, err := ScatterQuery(e.places, req, e.cfg.ScatterTimeout)
	if err != nil {
		e.errors.Add(1)
		return QueryResponse{}, err
	}
	resp.Candidates = e.externalize(resp.Candidates)
	return resp, nil
}

// legCandidates converts one shard leg's protocol records into
// global candidates scored against the caller's demand.
func legCandidates(dst []Candidate, shard int, recs []proto.Record, demand, scale vector.Vec) []Candidate {
	for _, r := range recs {
		dst = append(dst, Candidate{
			Node:    Global(shard, r.Node),
			Avail:   r.Avail,
			Surplus: r.Avail.Surplus(demand, scale),
		})
	}
	return dst
}

// migrateRetries bounds how often a write chases a node across
// migrations before giving up. Each retry follows the freshest
// forwarding state, so exhausting it takes as many back-to-back
// migrations of the same node interleaved exactly with the write.
const migrateRetries = 8

// applyResolved is the migration-chase protocol shared by Update and
// Leave: resolve the id through the forwarding table, apply the
// operation against the resolved placement, and on a backend
// rejection wait out a racing migration and retry against the node's
// new home. It returns the physical id the successful apply used.
func (e *Engine) applyResolved(node GlobalID, do func(p Placement, phys GlobalID) error) (GlobalID, error) {
	for attempt := 0; ; attempt++ {
		phys := e.fwd.resolve(node)
		si := phys.Shard()
		if si >= len(e.places) {
			e.errors.Add(1)
			return 0, fmt.Errorf("%w: shard %d (node %v)", ErrNoShard, si, node)
		}
		err := do(e.places[si], phys)
		if err == nil {
			return phys, nil
		}
		if !errors.Is(err, ErrClosed) {
			// The backend rejected the op — possibly because the node
			// migrated out from under us between resolve and apply.
			if attempt < migrateRetries && e.fwd.waitSettled(node, phys, e.stop) {
				continue
			}
			if e.closed.Load() {
				// Shutdown aborted the migration chase; the honest
				// outcome is ErrClosed, not the transient backend
				// state mid-teardown.
				return 0, ErrClosed
			}
			// Backend errors name the shard-local id; callers know
			// the global one.
			err = fmt.Errorf("serve: node %v: %w", node, err)
		}
		e.errors.Add(1)
		return 0, err
	}
}

// Update publishes a node's availability vector through its shard's
// write queue and waits for it to be applied. When announce is set
// the node also pushes an out-of-cycle state update into the index.
// Any id the node was ever known by (its original id or a former
// physical id, see Migrate) is accepted; an update racing a
// migration waits the move out and retries against the new shard.
func (e *Engine) Update(node GlobalID, avail vector.Vec, announce bool) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if err := e.writable(); err != nil {
		e.errors.Add(1)
		return err
	}
	if err := e.checkDemand(avail); err != nil {
		e.errors.Add(1)
		return err
	}
	if _, err := e.applyResolved(node, func(p Placement, phys GlobalID) error {
		return p.Update(phys, avail, announce)
	}); err != nil {
		return err
	}
	e.updates.Add(1)
	return nil
}

// Join adds a node to the least-recently-joined shard (round-robin
// starting at shard 0, on a counter joins alone advance, so
// interleaved consistent queries cannot skew shard populations) and
// returns its global id. A non-nil avail is published and announced
// as the node's initial availability.
func (e *Engine) Join(avail vector.Vec) (GlobalID, error) {
	return e.join(-1, avail)
}

// JoinOn is Join targeted at one shard, bypassing the round-robin
// placement — the knob skewed deployments (and the rebalancing
// tests/loadgen) use to pile population onto specific shards.
func (e *Engine) JoinOn(shard int, avail vector.Vec) (GlobalID, error) {
	if shard < 0 || shard >= len(e.shards) {
		e.errors.Add(1)
		return 0, fmt.Errorf("%w: shard %d (join target)", ErrNoShard, shard)
	}
	return e.join(shard, avail)
}

// join implements Join (si < 0: round-robin pick) and JoinOn.
func (e *Engine) join(si int, avail vector.Vec) (GlobalID, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if err := e.writable(); err != nil {
		e.errors.Add(1)
		return 0, err
	}
	if avail != nil {
		if err := e.checkDemand(avail); err != nil {
			e.errors.Add(1)
			return 0, err
		}
		avail = avail.Clone()
	}
	if si < 0 {
		si = int((e.nextShard.Add(1) - 1) % uint64(len(e.places)))
	}
	id, err := e.places[si].Join(avail)
	if err != nil {
		e.errors.Add(1)
		return 0, err
	}
	e.joins.Add(1)
	return id, nil
}

// Leave removes a node; its records, indexes and any forwarding
// state die with it. Like Update, it accepts any id the node was
// ever known by and retries across a racing migration.
func (e *Engine) Leave(node GlobalID) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if err := e.writable(); err != nil {
		e.errors.Add(1)
		return err
	}
	if _, err := e.applyResolved(node, func(p Placement, phys GlobalID) error {
		return p.Leave(phys)
	}); err != nil {
		return err
	}
	e.leaves.Add(1)
	return nil
}

// Nodes returns the global ids of every node visible in the current
// snapshots, ascending. Migrated nodes report their stable external
// id (the id Join returned), not the physical id of their current
// shard; a node caught mid-move by the per-shard snapshot reads is
// deduplicated (it maps to the same external id from either home),
// though it may transiently be absent, like any write not yet
// reflected in a snapshot.
func (e *Engine) Nodes() []GlobalID {
	var out []GlobalID
	for _, s := range e.shards {
		for _, r := range s.snapshot().Records {
			out = append(out, Global(s.idx, r.Node))
		}
	}
	if t := e.fwd; t.entries.Load() > 0 {
		t.mu.RLock()
		for i := range out {
			out[i] = t.externalLocked(out[i])
		}
		t.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, id := range out {
		if i == 0 || id != out[i-1] {
			dedup = append(dedup, id)
		}
	}
	return dedup
}

// Snapshot returns shard i's current published snapshot, or
// ErrNoShard for an index the engine was not built with.
func (e *Engine) Snapshot(i int) (*Snapshot, error) {
	if i < 0 || i >= len(e.shards) {
		return nil, fmt.Errorf("%w: shard %d", ErrNoShard, i)
	}
	return e.shards[i].snapshot(), nil
}

// Stats assembles a point-in-time view of all counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Dims:          e.cfg.CMax.Dim(),
		CMax:          e.cfg.CMax,
		Queries:       e.queries.Load(),
		Consistent:    e.consistent.Load(),
		Updates:       e.updates.Load(),
		Joins:         e.joins.Load(),
		Leaves:        e.leaves.Load(),
		Migrations:    e.migrations.Load(),
		Rebalances:    e.rebalances.Load(),
		ForwardedIDs:  e.fwd.count(),
		LastImbalance: math.Float64frombits(e.lastImbalance.Load()),
		Errors:        e.errors.Load(),

		Durable:          e.cfg.DataDir != "",
		WriteEpoch:       e.epoch.Load(),
		Checkpoints:      e.checkpoints.Load(),
		CheckpointSeq:    e.ckptSeq.Load(),
		WarmStart:        e.warmStart,
		LastRecoveryMS:   float64(e.recoveryNanos.Load()) / 1e6,
		RecoveredRecords: e.recoveredRecs.Load(),

		Role:           e.Role(),
		Epoch:          e.replEpoch.Load(),
		ReplFollowers:  int(e.replFollowers.Load()),
		ReplConnected:  e.replConnected.Load(),
		ReplLagRecords: e.replLag.Load(),
		PrimaryAddr:    e.cfg.PrimaryAddr,
	}
	if f := e.wireStats.Load(); f != nil {
		ws := (*f)()
		st.WireConns = ws.Conns
		st.WireRequests = ws.Requests
		st.WireRejected = ws.Rejected
		st.WireUDPRequests = ws.UDPRequests
	}
	if p := e.capture.Load(); p != nil {
		cs := (*p).CaptureStats()
		st.CaptureRecords = cs.Records
		st.CaptureDropped = cs.Dropped
		st.CaptureBytes = cs.Bytes
	}
	cs := e.cache.stats()
	st.CacheHits, st.CacheMisses = cs.hits, cs.misses
	st.CacheResets, st.CacheEntries = cs.rotations, cs.entries
	st.CacheStale, st.CacheAdaptions = cs.stale, cs.adaptions
	st.CacheTTLMS = float64(cs.ttl) / float64(time.Millisecond)
	st.CacheQuantum = cs.quantum
	st.CacheEpochBound = cs.epochBound
	st.IndexSearches = e.idxSearches.Load()
	st.IndexScannedRecords = e.idxScanned.Load()
	for _, s := range e.shards {
		snap := s.snapshot()
		st.Shards = append(st.Shards, ShardStats{
			Shard:           s.idx,
			Nodes:           len(snap.Records),
			SnapshotVersion: snap.Version,
			SimNow:          snap.Taken,
			QueueDepth:      len(s.ops),
			OpsApplied:      s.applied.Load(),
			Batches:         s.batches.Load(),
			LogBytes:        s.logBytes.Load(),
		})
		st.TotalNodes += len(snap.Records)
		st.LogBytes += s.logBytes.Load()
		st.LogRecords += s.logRecords.Load()
		st.LogErrors += s.logErrors.Load()
		st.IndexBuilds += s.idxBuilds.Load()
		st.IndexDeltaBuilds += s.idxDeltas.Load()
		st.IndexReuses += s.idxReuses.Load()
	}
	return st
}
