package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"pidcan/internal/sim"
	"pidcan/internal/vector"
)

// Engine is the concurrent query-serving front of a sharded PID-CAN
// deployment. All methods are safe for concurrent use; see the
// package comment for the threading model.
type Engine struct {
	cfg    Config
	shards []*shard
	cache  *queryCache

	nextShard atomic.Uint64 // round-robin join target

	queries    atomic.Uint64
	consistent atomic.Uint64
	updates    atomic.Uint64
	joins      atomic.Uint64
	leaves     atomic.Uint64
	errors     atomic.Uint64

	closed atomic.Bool
}

// QueryRequest is one best-fit multi-dimensional range query: find
// up to K nodes whose advertised availability dominates Demand,
// ranked closest-fit first.
type QueryRequest struct {
	// Demand is the requested resource vector (cfg.CMax layout).
	Demand vector.Vec `json:"demand"`
	// K bounds the candidate count (default 1; <= 0 after default
	// resolution means 1).
	K int `json:"k,omitempty"`
	// Consistent routes the query through a shard's write queue and
	// the paper's three-phase protocol instead of the lock-free
	// snapshot path. Slower, but observes every write applied before
	// it on that shard.
	Consistent bool `json:"consistent,omitempty"`
	// NoCache bypasses the query cache (snapshot path only).
	NoCache bool `json:"no_cache,omitempty"`
}

// QueryResponse is the outcome of one query.
type QueryResponse struct {
	// Candidates are the qualified nodes, best fit first.
	Candidates []Candidate `json:"candidates"`
	// Cached reports whether the response was served from the query
	// cache.
	Cached bool `json:"cached,omitempty"`
	// Hops is the protocol message count (consistent path only; the
	// snapshot path spends no protocol messages).
	Hops int `json:"hops,omitempty"`
}

// ShardStats describes one shard in Stats.
type ShardStats struct {
	Shard           int      `json:"shard"`
	Nodes           int      `json:"nodes"`
	SnapshotVersion uint64   `json:"snapshot_version"`
	SimNow          sim.Time `json:"sim_now_us"`
	QueueDepth      int      `json:"queue_depth"`
	OpsApplied      uint64   `json:"ops_applied"`
	Batches         uint64   `json:"batches"`
}

// Stats is a point-in-time view of engine counters.
type Stats struct {
	Shards       []ShardStats `json:"shards"`
	TotalNodes   int          `json:"total_nodes"`
	Dims         int          `json:"dims"`
	CMax         vector.Vec   `json:"cmax"`
	Queries      uint64       `json:"queries"`
	CacheHits    uint64       `json:"cache_hits"`
	CacheMisses  uint64       `json:"cache_misses"`
	CacheResets  uint64       `json:"cache_resets"`
	CacheEntries int          `json:"cache_entries"`
	Consistent   uint64       `json:"consistent_queries"`
	Updates      uint64       `json:"updates"`
	Joins        uint64       `json:"joins"`
	Leaves       uint64       `json:"leaves"`
	Errors       uint64       `json:"errors"`
}

// New builds an engine: the factory is invoked once per shard, each
// backend is warmed up and snapshotted, then the shard goroutines
// start. On any factory error the already-built shards are torn
// down.
func New(cfg Config, factory BackendFactory) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, cache: newQueryCache(cfg)}
	for i := 0; i < cfg.Shards; i++ {
		be, err := factory(i, cfg)
		if err != nil {
			// No goroutine has started yet; nothing to tear down.
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		e.shards = append(e.shards, newShard(i, cfg, be))
	}
	for _, s := range e.shards {
		s.start()
	}
	return e, nil
}

// Config returns the resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// Close stops every shard goroutine. Queued but unapplied writes are
// dropped; concurrent and subsequent calls fail with ErrClosed.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	for _, s := range e.shards {
		s.halt()
	}
	return nil
}

func (e *Engine) checkDemand(demand vector.Vec) error {
	if demand.Dim() != e.cfg.CMax.Dim() || !demand.IsFinite() || !demand.IsNonNegative() {
		return fmt.Errorf("%w: %v (want %d non-negative finite dims)",
			ErrBadDemand, demand, e.cfg.CMax.Dim())
	}
	return nil
}

// Query answers one best-fit range query. The default path reads
// every shard's published snapshot lock-free, merges the qualified
// records and ranks them by surplus; it consults the query cache
// first unless the request opts out.
func (e *Engine) Query(req QueryRequest) (QueryResponse, error) {
	if e.closed.Load() {
		return QueryResponse{}, ErrClosed
	}
	if err := e.checkDemand(req.Demand); err != nil {
		e.errors.Add(1)
		return QueryResponse{}, err
	}
	if req.K <= 0 {
		req.K = 1
	}
	e.queries.Add(1)
	if req.Consistent {
		return e.consistentQuery(req)
	}

	// Cacheable queries are evaluated against their quantization
	// cell's upper-bound demand, so the response is valid for every
	// demand sharing the cell (dominance is preserved; near a cell
	// edge a borderline candidate may be conservatively skipped).
	useCache := !e.cfg.CacheDisabled && !req.NoCache
	demand := req.Demand
	var key string
	if useCache {
		key, demand = e.cache.quantize(req.Demand, req.K)
		if resp, ok := e.cache.get(key, time.Now()); ok {
			resp.Cached = true
			return resp, nil
		}
	}

	var cands []Candidate
	for _, s := range e.shards {
		snap := s.snapshot()
		cands = snap.collect(cands, demand, e.cfg.CMax, snap.Taken)
	}
	resp := QueryResponse{Candidates: bestFit(cands, req.K)}
	if useCache {
		e.cache.put(key, resp, time.Now())
	}
	return resp, nil
}

// consistentQuery routes the query through one shard's write queue
// and the PID-CAN protocol itself. The shard is chosen round-robin;
// a consistent query therefore sees one shard's index, like any
// single querying node of the paper would.
func (e *Engine) consistentQuery(req QueryRequest) (QueryResponse, error) {
	e.consistent.Add(1)
	s := e.shards[e.nextShard.Add(1)%uint64(len(e.shards))]
	res, err := s.submit(op{
		kind:   opQuery,
		node:   -1,
		demand: req.Demand.Clone(),
		k:      req.K,
		reply:  make(chan opResult, 1),
	})
	if err != nil {
		return QueryResponse{}, err
	}
	if res.err != nil {
		e.errors.Add(1)
		return QueryResponse{}, res.err
	}
	cands := make([]Candidate, 0, len(res.recs))
	for _, r := range res.recs {
		cands = append(cands, Candidate{
			Node:    Global(s.idx, r.Node),
			Avail:   r.Avail,
			Surplus: r.Avail.Surplus(req.Demand, e.cfg.CMax),
		})
	}
	return QueryResponse{Candidates: bestFit(cands, req.K), Hops: res.hops}, nil
}

// Update publishes a node's availability vector through its shard's
// write queue and waits for it to be applied. When announce is set
// the node also pushes an out-of-cycle state update into the index.
func (e *Engine) Update(node GlobalID, avail vector.Vec, announce bool) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if err := e.checkDemand(avail); err != nil {
		e.errors.Add(1)
		return err
	}
	si := node.Shard()
	if si >= len(e.shards) {
		e.errors.Add(1)
		return fmt.Errorf("serve: no shard %d (node %v)", si, node)
	}
	res, err := e.shards[si].submit(op{
		kind:     opUpdate,
		node:     node.Local(),
		avail:    avail.Clone(),
		announce: announce,
		reply:    make(chan opResult, 1),
	})
	if err == nil && res.err != nil {
		// Backend errors name the shard-local id; callers know the
		// global one.
		err = fmt.Errorf("serve: node %v: %w", node, res.err)
	}
	if err != nil {
		e.errors.Add(1)
		return err
	}
	e.updates.Add(1)
	return nil
}

// Join adds a node to the least-recently-targeted shard
// (round-robin) and returns its global id. A non-nil avail is
// published and announced as the node's initial availability.
func (e *Engine) Join(avail vector.Vec) (GlobalID, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	if avail != nil {
		if err := e.checkDemand(avail); err != nil {
			e.errors.Add(1)
			return 0, err
		}
		avail = avail.Clone()
	}
	si := int(e.nextShard.Add(1) % uint64(len(e.shards)))
	res, err := e.shards[si].submit(op{
		kind:  opJoin,
		avail: avail,
		reply: make(chan opResult, 1),
	})
	if err == nil {
		err = res.err
	}
	if err != nil {
		e.errors.Add(1)
		return 0, err
	}
	e.joins.Add(1)
	return Global(si, res.node), nil
}

// Leave removes a node; its records and indexes die with it.
func (e *Engine) Leave(node GlobalID) error {
	if e.closed.Load() {
		return ErrClosed
	}
	si := node.Shard()
	if si >= len(e.shards) {
		e.errors.Add(1)
		return fmt.Errorf("serve: no shard %d (node %v)", si, node)
	}
	res, err := e.shards[si].submit(op{
		kind:  opLeave,
		node:  node.Local(),
		reply: make(chan opResult, 1),
	})
	if err == nil && res.err != nil {
		err = fmt.Errorf("serve: node %v: %w", node, res.err)
	}
	if err != nil {
		e.errors.Add(1)
		return err
	}
	e.leaves.Add(1)
	return nil
}

// Nodes returns the global ids of every node visible in the current
// snapshots, ascending.
func (e *Engine) Nodes() []GlobalID {
	var out []GlobalID
	for _, s := range e.shards {
		for _, r := range s.snapshot().Records {
			out = append(out, Global(s.idx, r.Node))
		}
	}
	return out
}

// Snapshot returns shard i's current published snapshot.
func (e *Engine) Snapshot(i int) *Snapshot { return e.shards[i].snapshot() }

// Stats assembles a point-in-time view of all counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Dims:       e.cfg.CMax.Dim(),
		CMax:       e.cfg.CMax,
		Queries:    e.queries.Load(),
		Consistent: e.consistent.Load(),
		Updates:    e.updates.Load(),
		Joins:      e.joins.Load(),
		Leaves:     e.leaves.Load(),
		Errors:     e.errors.Load(),
	}
	st.CacheHits, st.CacheMisses, st.CacheResets, st.CacheEntries = e.cache.stats()
	for _, s := range e.shards {
		snap := s.snapshot()
		st.Shards = append(st.Shards, ShardStats{
			Shard:           s.idx,
			Nodes:           len(snap.Records),
			SnapshotVersion: snap.Version,
			SimNow:          snap.Taken,
			QueueDepth:      len(s.ops),
			OpsApplied:      s.applied.Load(),
			Batches:         s.batches.Load(),
		})
		st.TotalNodes += len(snap.Records)
	}
	return st
}
