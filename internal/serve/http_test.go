package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pidcan/internal/vector"
)

func newTestServer(t *testing.T, shards int) (*Engine, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, testConfig(shards))
	ts := httptest.NewServer(NewHandler(e))
	t.Cleanup(ts.Close)
	return e, ts
}

func postJSON(t *testing.T, url string, req any) (*http.Response, map[string]any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decoding response: %v", url, err)
	}
	return resp, out
}

func TestHTTPQueryUpdateRoundTrip(t *testing.T) {
	e, ts := newTestServer(t, 2)
	id := e.Nodes()[0]

	resp, out := postJSON(t, ts.URL+"/update",
		map[string]any{"node": id, "avail": []float64{6, 6}, "announce": true})
	if resp.StatusCode != http.StatusOK || out["ok"] != true {
		t.Fatalf("update: %d %v", resp.StatusCode, out)
	}

	resp, out = postJSON(t, ts.URL+"/query",
		map[string]any{"demand": []float64{2, 2}, "k": 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %v", resp.StatusCode, out)
	}
	cands, ok := out["candidates"].([]any)
	if !ok || len(cands) != 1 {
		t.Fatalf("query response: %v", out)
	}
	c := cands[0].(map[string]any)
	if GlobalID(c["node"].(float64)) != id {
		t.Fatalf("candidate: %v, want node %v", c, id)
	}
}

func TestHTTPJoinLeaveNodesStats(t *testing.T) {
	_, ts := newTestServer(t, 2)

	resp, out := postJSON(t, ts.URL+"/join", map[string]any{"avail": []float64{9, 9}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d %v", resp.StatusCode, out)
	}
	id := uint64(out["node"].(float64))

	r, err := http.Get(ts.URL + "/nodes")
	if err != nil {
		t.Fatal(err)
	}
	var nodes struct {
		Nodes []uint64 `json:"nodes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(nodes.Nodes) != 9 {
		t.Fatalf("/nodes: got %d, want 9 (%v)", len(nodes.Nodes), nodes.Nodes)
	}

	resp, out = postJSON(t, ts.URL+"/leave", map[string]any{"node": id})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: %d %v", resp.StatusCode, out)
	}
	// Leaving again must be a 409, not a 500.
	resp, out = postJSON(t, ts.URL+"/leave", map[string]any{"node": id})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double leave: %d %v", resp.StatusCode, out)
	}

	r, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Joins != 1 || st.Leaves != 1 || len(st.Shards) != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.CMax) != 2 {
		t.Fatalf("stats cmax: %+v", st.CMax)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t, 1)
	for _, tc := range []struct {
		path string
		body map[string]any
		want int
	}{
		{"/query", map[string]any{"demand": []float64{1}}, http.StatusBadRequest},
		{"/query", map[string]any{"demand": []float64{-1, 1}}, http.StatusBadRequest},
		{"/query", map[string]any{"unknown_field": 1}, http.StatusBadRequest},
		{"/query", map[string]any{"demand": []float64{1, 1}, "consistent": true, "scope": "bogus"}, http.StatusBadRequest},
		// Unknown shard indexes are 404s, not generic conflicts.
		{"/update", map[string]any{"node": 1 << 40, "avail": []float64{1, 1}}, http.StatusNotFound},
		{"/leave", map[string]any{"node": 5 << 32}, http.StatusNotFound},
		// A known shard rejecting the node stays a 409.
		{"/leave", map[string]any{"node": 99}, http.StatusConflict},
	} {
		resp, out := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s %v: got %d %v, want %d", tc.path, tc.body, resp.StatusCode, out, tc.want)
		}
		if _, ok := out["error"]; !ok {
			t.Errorf("%s %v: no error field in %v", tc.path, tc.body, out)
		}
	}
	// GET on a POST route is a 405.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: %d", resp.StatusCode)
	}
}

// TestHTTPOversizedBodyRejected pins the request-body cap: a body
// larger than 1 MiB is cut off mid-decode and answered with 400.
func TestHTTPOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, 1)
	// A syntactically valid but enormous demand array: the decoder
	// hits the MaxBytesReader limit while still reading elements.
	body := "{\"demand\":[0" + strings.Repeat(",0", 1<<19) + "]}"
	if len(body) <= maxRequestBody {
		t.Fatalf("test body only %d bytes", len(body))
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: got %d %v, want 400", resp.StatusCode, out)
	}
	if !strings.Contains(out["error"], "exceeds") {
		t.Fatalf("oversized body error %q does not name the cap", out["error"])
	}
	// The server survives and still answers within-limit requests.
	r, out2 := postJSON(t, ts.URL+"/query", map[string]any{"demand": []float64{1, 1}})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("follow-up query: %d %v", r.StatusCode, out2)
	}
}

// TestHTTPConsistentScatterQuery drives the scatter-gather path over
// the wire and checks the extended response fields.
func TestHTTPConsistentScatterQuery(t *testing.T) {
	e, ts := newTestServer(t, 3)
	for _, id := range e.Nodes() {
		if id.Local() == 0 {
			if err := e.Update(id, vector.Of(6, 6), false); err != nil {
				t.Fatal(err)
			}
		}
	}
	resp, out := postJSON(t, ts.URL+"/query",
		map[string]any{"demand": []float64{2, 2}, "k": 8, "consistent": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("consistent query: %d %v", resp.StatusCode, out)
	}
	if got := out["shards_queried"].(float64); got != 3 {
		t.Fatalf("shards_queried = %v, want 3 (%v)", got, out)
	}
	cands := out["candidates"].([]any)
	shards := map[int]bool{}
	for _, c := range cands {
		shards[GlobalID(c.(map[string]any)["node"].(float64)).Shard()] = true
	}
	if len(shards) != 3 {
		t.Fatalf("candidates span %d shards, want 3: %v", len(shards), out)
	}
	resp, out = postJSON(t, ts.URL+"/query",
		map[string]any{"demand": []float64{2, 2}, "k": 8, "consistent": true, "scope": "one"})
	if resp.StatusCode != http.StatusOK || out["shards_queried"].(float64) != 1 {
		t.Fatalf("scope=one: %d %v", resp.StatusCode, out)
	}
}

// TestHTTPJoinTargetedAndRebalance drives the skew-then-rebalance
// cycle over the wire: {"shard":S} joins pile onto shard 0, POST
// /rebalance levels the populations, and /stats reports the
// migration counters.
func TestHTTPJoinTargetedAndRebalance(t *testing.T) {
	_, ts := newTestServer(t, 2)
	for i := 0; i < 8; i++ {
		resp, out := postJSON(t, ts.URL+"/join", map[string]any{"avail": []float64{5, 5}, "shard": 0})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("targeted join: %d %v", resp.StatusCode, out)
		}
		if id := GlobalID(out["node"].(float64)); id.Shard() != 0 {
			t.Fatalf("targeted join landed on shard %d", id.Shard())
		}
	}
	resp, out := postJSON(t, ts.URL+"/join", map[string]any{"avail": []float64{5, 5}, "shard": 7})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("join on unknown shard: %d %v, want 404", resp.StatusCode, out)
	}

	// 12 vs 4 nodes: a rebalance pass must move some across.
	r, err := http.Post(ts.URL+"/rebalance", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var res RebalanceResult
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("rebalance: %d %+v", r.StatusCode, res)
	}
	if res.From != 0 || res.To != 1 || res.Moved == 0 || res.Imbalance != 3 {
		t.Fatalf("rebalance result: %+v", res)
	}

	r, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Migrations != uint64(res.Moved) || st.Rebalances != 1 || st.LastImbalance != 3 {
		t.Fatalf("stats after rebalance: %+v", st)
	}
}

// TestHTTPScatterTimeoutIs504 pins the writeErr mapping: a query no
// scatter leg answered by the deadline comes back as 504, not the
// default 409.
func TestHTTPScatterTimeoutIs504(t *testing.T) {
	cfg := testConfig(1)
	cfg.ScatterTimeout = 20 * time.Millisecond
	gate := make(chan struct{})
	e, err := New(cfg, func(i int, rc Config) (Backend, error) {
		f := newFake(rc.NodesPerShard, rc.CMax.Dim())
		f.gate = gate
		return f, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	t.Cleanup(func() { close(gate) })
	ts := httptest.NewServer(NewHandler(e))
	t.Cleanup(ts.Close)

	resp, out := postJSON(t, ts.URL+"/query", map[string]any{"demand": []float64{1, 1}, "consistent": true})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled scatter over HTTP: %d %v, want 504", resp.StatusCode, out)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := newTestServer(t, 1)
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", r.StatusCode)
	}
}

// TestHTTPCheckpoint: POST /checkpoint snapshots a durable engine
// (200 with a sequence number) and is a clean 400 on an in-memory
// one.
func TestHTTPCheckpoint(t *testing.T) {
	cfg := testConfig(2)
	cfg.DataDir = t.TempDir()
	e, err := New(cfg, func(i int, rc Config) (Backend, error) {
		return newFake(rc.NodesPerShard, rc.CMax.Dim()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	ts := httptest.NewServer(NewHandler(e))
	t.Cleanup(ts.Close)

	if err := e.Update(e.Nodes()[0], vector.Of(5, 5), false); err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, ts.URL+"/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %v", resp.StatusCode, out)
	}
	if seq, ok := out["seq"].(float64); !ok || seq != 1 {
		t.Fatalf("checkpoint seq: %v, want 1", out)
	}

	// Durability fields surface in /stats.
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if !st.Durable || st.Checkpoints != 1 || st.LogRecords == 0 {
		t.Fatalf("stats durability fields: durable=%v checkpoints=%d wal_records=%d",
			st.Durable, st.Checkpoints, st.LogRecords)
	}

	// In-memory engine: 400.
	_, ts2 := newTestServer(t, 1)
	resp, out = postJSON(t, ts2.URL+"/checkpoint", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("checkpoint on in-memory engine: %d %v, want 400", resp.StatusCode, out)
	}
}

// TestHTTPFollowerRouting: on a follower, writes are 503 naming the
// primary, reads serve, /stats reports the role, and POST /promote
// flips the engine to a writable primary under a new epoch.
func TestHTTPFollowerRouting(t *testing.T) {
	cfg := testConfig(2)
	cfg.DataDir = t.TempDir()
	cfg.Follower = true
	cfg.PrimaryAddr = "10.0.0.1:7000"
	e, err := New(cfg, func(i int, rc Config) (Backend, error) {
		return newFake(rc.NodesPerShard, rc.CMax.Dim()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	ts := httptest.NewServer(NewHandler(e))
	t.Cleanup(ts.Close)

	// Writes: 503 + primary address.
	resp, out := postJSON(t, ts.URL+"/update",
		map[string]any{"node": 0, "avail": []float64{1, 1}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower /update: %d %v, want 503", resp.StatusCode, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, cfg.PrimaryAddr) {
		t.Fatalf("follower 503 %q does not name the primary", msg)
	}
	// Structured redirect: Retry-After header + primary address and
	// retry hint in the body, so clients re-point without parsing the
	// error string.
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("follower 503 Retry-After = %q, want \"1\"", ra)
	}
	if p, _ := out["primary"].(string); p != cfg.PrimaryAddr {
		t.Fatalf("follower 503 primary = %v, want %q", out["primary"], cfg.PrimaryAddr)
	}
	if ms, _ := out["retry_after_ms"].(float64); ms != 1000 {
		t.Fatalf("follower 503 retry_after_ms = %v, want 1000", out["retry_after_ms"])
	}
	resp, _ = postJSON(t, ts.URL+"/join", map[string]any{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower /join: %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/rebalance", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower /rebalance: %d, want 503", resp.StatusCode)
	}

	// Reads serve; /stats names the role.
	resp, _ = postJSON(t, ts.URL+"/query", map[string]any{"demand": []float64{0, 0}, "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower /query: %d, want 200", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Role != "follower" || st.PrimaryAddr != cfg.PrimaryAddr {
		t.Fatalf("follower stats role=%q primary=%q", st.Role, st.PrimaryAddr)
	}

	// Promote: 200 with the new epoch, then writes pass.
	resp, out = postJSON(t, ts.URL+"/promote", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/promote: %d %v", resp.StatusCode, out)
	}
	if role, _ := out["role"].(string); role != "primary" {
		t.Fatalf("/promote role %v", out)
	}
	if epoch, _ := out["epoch"].(float64); epoch != 2 {
		t.Fatalf("/promote epoch %v, want 2", out)
	}
	resp, out = postJSON(t, ts.URL+"/update",
		map[string]any{"node": 0, "avail": []float64{1, 1}, "announce": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-promotion /update: %d %v", resp.StatusCode, out)
	}
	// A second promote is a clean 409.
	resp, _ = postJSON(t, ts.URL+"/promote", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double /promote: %d, want 409", resp.StatusCode)
	}
}
