package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pidcan/internal/overlay"
	"pidcan/internal/serve/wal"
	"pidcan/internal/vector"
)

// fakeFactory is the deterministic test backend factory: equal
// configs rebuild identical backends, which is exactly the property
// recovery relies on for real clusters (same seed, same id
// sequence).
func fakeFactory(i int, rc Config) (Backend, error) {
	return newFake(rc.NodesPerShard, rc.CMax.Dim()), nil
}

func newDurableEngine(t *testing.T, cfg Config, dir string) *Engine {
	t.Helper()
	cfg.DataDir = dir
	e, err := New(cfg, fakeFactory)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// engineFingerprint captures everything the durability contract
// promises survives a restart: the node set, each shard's records
// (ids + availability vectors), and best-fit query results for a
// demand sweep.
type engineFingerprint struct {
	nodes   []GlobalID
	records map[int][]struct {
		node  overlay.NodeID
		avail vector.Vec
	}
	queries [][]Candidate
}

func fingerprint(t *testing.T, e *Engine, shards int) engineFingerprint {
	t.Helper()
	fp := engineFingerprint{nodes: e.Nodes()}
	fp.records = map[int][]struct {
		node  overlay.NodeID
		avail vector.Vec
	}{}
	for i := 0; i < shards; i++ {
		snap, err := e.Snapshot(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range snap.Records {
			fp.records[i] = append(fp.records[i], struct {
				node  overlay.NodeID
				avail vector.Vec
			}{r.Node, r.Avail})
		}
	}
	for _, d := range []vector.Vec{vector.Of(1, 1), vector.Of(4, 2), vector.Of(8, 8)} {
		resp, err := e.Query(QueryRequest{Demand: d, K: 16, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		fp.queries = append(fp.queries, resp.Candidates)
	}
	return fp
}

func assertSameState(t *testing.T, want, got engineFingerprint, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.nodes, got.nodes) {
		t.Fatalf("%s: nodes %v, want %v", label, got.nodes, want.nodes)
	}
	if !reflect.DeepEqual(want.records, got.records) {
		t.Fatalf("%s: shard records diverged:\n got %+v\nwant %+v", label, got.records, want.records)
	}
	if !reflect.DeepEqual(want.queries, got.queries) {
		t.Fatalf("%s: query results diverged:\n got %+v\nwant %+v", label, got.queries, want.queries)
	}
}

// TestDurableWarmRestart is the end-to-end durability contract: an
// engine loaded with joins, updates, leaves and a migration, closed
// cleanly, must come back serving the identical node set,
// availability vectors, forwarding state and query results.
func TestDurableWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2)
	e := newDurableEngine(t, cfg, dir)

	nodes := e.Nodes()
	for i, id := range nodes {
		if err := e.Update(id, vector.Of(float64(i+1), float64(8-i)), true); err != nil {
			t.Fatal(err)
		}
	}
	joined, err := e.Join(vector.Of(6, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Leave(nodes[0]); err != nil {
		t.Fatal(err)
	}
	// Migrate the joined node to the other shard so the restart must
	// restore forwarding.
	target := 1 - joined.Shard()
	if err := e.Migrate(joined, target); err != nil {
		t.Fatal(err)
	}
	preStats := e.Stats()
	pre := fingerprint(t, e, 2)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re := newDurableEngine(t, cfg, dir)
	st := re.Stats()
	if !st.WarmStart {
		t.Fatal("restarted engine did not report a warm start")
	}
	if st.TotalNodes != preStats.TotalNodes {
		t.Fatalf("restarted population %d, want %d", st.TotalNodes, preStats.TotalNodes)
	}
	if st.Joins != preStats.Joins || st.Leaves != preStats.Leaves ||
		st.Updates != preStats.Updates || st.Migrations != preStats.Migrations {
		t.Fatalf("counters not restored: got joins/leaves/updates/migrations %d/%d/%d/%d, want %d/%d/%d/%d",
			st.Joins, st.Leaves, st.Updates, st.Migrations,
			preStats.Joins, preStats.Leaves, preStats.Updates, preStats.Migrations)
	}
	assertSameState(t, pre, fingerprint(t, re, 2), "clean restart")
	// The pre-migration external id must still route: forwarding
	// state survived the restart.
	if err := re.Update(joined, vector.Of(7, 7), true); err != nil {
		t.Fatalf("update via pre-migration id after restart: %v", err)
	}
	if got := re.fwd.resolve(joined); got.Shard() != target {
		t.Fatalf("external id resolves to shard %d after restart, want %d", got.Shard(), target)
	}
}

// TestDurableCrashReplay restarts from the op-log alone (no clean
// checkpoint): the log tail replays from genesis through applyBatch.
func TestDurableCrashReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2)
	e := newDurableEngine(t, cfg, dir)
	nodes := e.Nodes()
	for i, id := range nodes {
		if err := e.Update(id, vector.Of(float64(i%5+1), 3), i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	joined, err := e.Join(vector.Of(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Leave(nodes[1]); err != nil {
		t.Fatal(err)
	}
	if err := e.Migrate(joined, 1-joined.Shard()); err != nil {
		t.Fatal(err)
	}
	pre := fingerprint(t, e, 2)
	e.close(false) // crash: no final checkpoint

	re := newDurableEngine(t, cfg, dir)
	st := re.Stats()
	if st.RecoveredRecords == 0 {
		t.Fatal("crash restart replayed no records")
	}
	if !st.WarmStart {
		t.Fatal("crash restart did not report a warm start")
	}
	assertSameState(t, pre, fingerprint(t, re, 2), "crash replay")
	if err := re.Update(joined, vector.Of(4, 4), false); err != nil {
		t.Fatalf("update via pre-migration id after crash replay: %v", err)
	}
}

// TestDurableCheckpointThenCrash checkpoints mid-stream, keeps
// writing, then crashes: recovery must compose checkpoint restore
// with log-tail replay, and the checkpoint must have truncated the
// pre-checkpoint log.
func TestDurableCheckpointThenCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2)
	e := newDurableEngine(t, cfg, dir)
	nodes := e.Nodes()
	for i, id := range nodes {
		if err := e.Update(id, vector.Of(float64(i+1), 2), false); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq != 1 || res.Nodes != len(nodes) {
		t.Fatalf("checkpoint result %+v, want seq 1 covering %d nodes", res, len(nodes))
	}
	st := e.Stats()
	if st.LogBytes != 0 {
		t.Fatalf("log bytes %d after checkpoint, want 0 (rotated)", st.LogBytes)
	}
	if st.Checkpoints != 1 || st.CheckpointSeq != 1 {
		t.Fatalf("checkpoint counters %d/%d, want 1/1", st.Checkpoints, st.CheckpointSeq)
	}
	// Pre-checkpoint segments are gone.
	segs, err := wal.Segments(filepath.Join(dir, "shard-0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != 2 {
		t.Fatalf("shard 0 segments after checkpoint: %v, want [2]", segs)
	}
	// Post-checkpoint tail.
	joined, err := e.Join(vector.Of(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Leave(nodes[2]); err != nil {
		t.Fatal(err)
	}
	_ = joined
	pre := fingerprint(t, e, 2)
	e.close(false)

	re := newDurableEngine(t, cfg, dir)
	if got := re.Stats().RecoveredRecords; got != 2 {
		t.Fatalf("replayed %d records beyond the checkpoint, want 2", got)
	}
	assertSameState(t, pre, fingerprint(t, re, 2), "checkpoint+tail")
}

// scriptOp is one step of the crash-recovery determinism script.
type scriptOp struct {
	kind  wal.Kind
	node  GlobalID   // update/leave target (index into live set resolved at run time)
	avail vector.Vec // update/join payload
}

// runScript drives calls against an engine, tracking live ids the
// same way on every engine it runs against. Each call is synchronous,
// so on a single-shard engine each one appends exactly one log
// record, in call order.
func runScript(t *testing.T, e *Engine, script []scriptOp, upto int) {
	t.Helper()
	var live []GlobalID
	live = append(live, e.Nodes()...)
	for i := 0; i < upto; i++ {
		op := script[i]
		switch op.kind {
		case wal.KindJoin:
			id, err := e.Join(op.avail)
			if err != nil {
				t.Fatalf("script %d join: %v", i, err)
			}
			live = append(live, id)
		case wal.KindUpdate:
			target := live[int(op.node)%len(live)]
			if err := e.Update(target, op.avail, true); err != nil {
				t.Fatalf("script %d update: %v", i, err)
			}
		case wal.KindLeave:
			j := int(op.node) % len(live)
			if err := e.Leave(live[j]); err != nil {
				t.Fatalf("script %d leave: %v", i, err)
			}
			live = append(live[:j], live[j+1:]...)
		}
	}
}

// makeScript builds a deterministic mixed script. Leaves never drop
// the population below 2 (a single-shard engine must keep its
// backend alive).
func makeScript(n int) []scriptOp {
	rng := rand.New(rand.NewPCG(42, 7))
	script := make([]scriptOp, n)
	pop := 4
	for i := range script {
		r := rng.IntN(10)
		switch {
		case r < 3: // 30% joins
			script[i] = scriptOp{kind: wal.KindJoin,
				avail: vector.Of(float64(rng.IntN(9)+1), float64(rng.IntN(9)+1))}
			pop++
		case r < 5 && pop > 3: // leaves, population permitting
			script[i] = scriptOp{kind: wal.KindLeave, node: GlobalID(rng.IntN(64))}
			pop--
		default:
			script[i] = scriptOp{kind: wal.KindUpdate, node: GlobalID(rng.IntN(64)),
				avail: vector.Of(float64(rng.IntN(9)+1), float64(rng.IntN(9)+1))}
		}
	}
	return script
}

// recordEnds returns the byte offset after each record of a log
// segment, walking the frame headers directly.
func recordEnds(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	off := int64(wal.SegHeaderLen) // segments lead with the epoch header
	for off+8 <= int64(len(data)) {
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		off += 8 + plen
		if off > int64(len(data)) {
			t.Fatalf("truncated frame in %s", path)
		}
		ends = append(ends, off)
	}
	return ends
}

// TestDurableCrashRecoveryDeterminism is the crash-recovery property
// test: a scripted engine's op-log is killed at EVERY record
// boundary — plus a torn half-record past each boundary — and each
// truncation must recover to exactly the state of a reference engine
// that applied the same call prefix live. One log record per script
// call (calls are synchronous on one shard) makes the prefix
// correspondence exact.
func TestDurableCrashRecoveryDeterminism(t *testing.T) {
	const steps = 24
	script := makeScript(steps)
	cfg := testConfig(1)

	// The recorded run: every call logged and fsynced.
	srcDir := t.TempDir()
	e := newDurableEngine(t, cfg, srcDir)
	runScript(t, e, script, steps)
	e.close(false)

	segPath := wal.SegmentPath(filepath.Join(srcDir, "shard-0"), 1)
	ends := recordEnds(t, segPath)
	if len(ends) != steps {
		t.Fatalf("log has %d records for %d script calls (want 1:1)", len(ends), steps)
	}
	whole, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	for k := 0; k <= steps; k++ {
		cuts := []int64{0}
		if k > 0 {
			cuts[0] = ends[k-1]
		}
		if k < steps {
			// A torn final record: half of record k+1 must be dropped
			// and recover to the same prefix.
			cuts = append(cuts, cuts[0]+(ends[k]-cuts[0])/2)
		}
		for ci, cut := range cuts {
			label := fmt.Sprintf("prefix %d cut %d", k, ci)
			crashDir := t.TempDir()
			if err := os.MkdirAll(filepath.Join(crashDir, "shard-0"), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(wal.SegmentPath(filepath.Join(crashDir, "shard-0"), 1),
				whole[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			recovered := newDurableEngine(t, cfg, crashDir)
			if got := recovered.Stats().RecoveredRecords; got != uint64(k) {
				t.Fatalf("%s: recovered %d records, want %d", label, got, k)
			}

			ref, err := New(cfg, fakeFactory) // in-memory reference
			if err != nil {
				t.Fatal(err)
			}
			runScript(t, ref, script, k)
			assertSameState(t, fingerprint(t, ref, 1), fingerprint(t, recovered, 1), label)
			ref.Close()
			recovered.Close()
		}
	}
}

// TestDurableMidMigrationCrash crashes between the two halves of a
// migration (take durable on the source, join lost on the
// destination): recovery must detect the orphaned take and roll the
// node back onto its source shard with the availability the take
// captured — the same outcome as a live failed migration — keeping
// every acknowledged write recovered.
func TestDurableMidMigrationCrash(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2)
	e := newDurableEngine(t, cfg, dir)
	nodes := e.Nodes()
	var victim GlobalID
	for _, id := range nodes {
		if id.Shard() == 0 {
			victim = id
			break
		}
	}
	if err := e.Update(victim, vector.Of(5, 5), true); err != nil {
		t.Fatal(err)
	}
	before := len(e.Nodes())
	if err := e.Migrate(victim, 1); err != nil {
		t.Fatal(err)
	}
	e.close(false)

	// Drop shard 1's log entirely: the re-join never became durable.
	shard1 := filepath.Join(dir, "shard-1")
	if err := os.WriteFile(wal.SegmentPath(shard1, 1), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	re := newDurableEngine(t, cfg, dir)
	if got := len(re.Nodes()); got != before {
		t.Fatalf("population %d after mid-migration crash recovery, want %d (rolled back, not lost)", got, before)
	}
	// The node is home on shard 0 with its availability, and its
	// original id routes to it.
	if got := re.fwd.resolve(victim); got.Shard() != 0 {
		t.Fatalf("rolled-back node resolves to shard %d, want 0", got.Shard())
	}
	if err := re.Update(victim, vector.Of(6, 6), false); err != nil {
		t.Fatalf("update through the rolled-back node's id: %v", err)
	}
	resp, err := re.Query(QueryRequest{Demand: vector.Of(5.5, 5.5), K: 8, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 1 || resp.Candidates[0].Node != victim {
		t.Fatalf("rolled-back node not serving its updated availability: %+v", resp.Candidates)
	}
	// The rollback was logged: one more crash-style restart must
	// converge to the same state without re-reconciling.
	pre := fingerprint(t, re, 2)
	re.close(false)
	re2 := newDurableEngine(t, cfg, dir)
	assertSameState(t, pre, fingerprint(t, re2, 2), "post-rollback restart")
}

// TestDurableConfigGuard: recovering a data dir under a different
// engine shape must fail loudly, not serve garbage.
func TestDurableConfigGuard(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2)
	e := newDurableEngine(t, cfg, dir)
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.NodesPerShard = 8
	bad.DataDir = dir
	if _, err := New(bad, fakeFactory); !errors.Is(err, ErrRecovery) {
		t.Fatalf("incompatible recovery error = %v, want ErrRecovery", err)
	}
}

// TestCheckpointNotDurable: Checkpoint without a DataDir fails with
// ErrNotDurable.
func TestCheckpointNotDurable(t *testing.T) {
	e := newTestEngine(t, testConfig(1))
	if _, err := e.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint on in-memory engine = %v, want ErrNotDurable", err)
	}
}

// TestDurablePeriodicCheckpoint: the background checkpointer runs on
// its cadence and bounds the log.
func TestDurablePeriodicCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.CheckpointEvery = 10 * time.Millisecond
	e := newDurableEngine(t, cfg, dir)
	nodes := e.Nodes()
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no background checkpoint within 5s")
		}
		if err := e.Update(nodes[0], vector.Of(2, 2), false); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Clean close adds its own final checkpoint.
	ck, err := wal.LoadLatest(dir)
	if err != nil || ck == nil {
		t.Fatalf("no checkpoint after close: %v", err)
	}
	if ck.Seq < 2 {
		t.Fatalf("checkpoint seq %d, want >= 2 (periodic + close)", ck.Seq)
	}
}

// TestDrainBatchesBeyondSixteen pins the drain capacity fix: a
// backlog larger than the old hardcoded 16-op buffer must still land
// in one batch (up to MaxBatch).
func TestDrainBatchesBeyondSixteen(t *testing.T) {
	cfg := testConfig(1)
	cfg.FlushInterval = time.Hour // no idle interference
	gate := make(chan struct{})
	var fb *fakeBackend
	e, err := New(cfg, func(i int, rc Config) (Backend, error) {
		fb = newFake(rc.NodesPerShard, rc.CMax.Dim())
		fb.gate = gate
		return fb, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	s := e.shards[0]

	// Stall the shard goroutine inside a protocol query's batch: the
	// op is submitted directly, so once the queue is empty the loop
	// is provably blocked on the gate.
	qreply := make(chan opResult, 1)
	s.ops <- op{kind: opQuery, node: -1, demand: vector.Of(0, 0), k: 1, reply: qreply}
	for len(s.ops) > 0 {
		time.Sleep(time.Millisecond)
	}
	batchesBefore := s.batches.Load()

	// Pile 40 updates into the queue while the loop is blocked.
	const writes = 40
	replies := make([]chan opResult, writes)
	for i := 0; i < writes; i++ {
		replies[i] = make(chan opResult, 1)
		s.ops <- op{kind: opUpdate, node: 0, avail: vector.Of(1, 1), reply: replies[i]}
	}
	close(gate)
	if res := <-qreply; res.err != nil {
		t.Fatal(res.err)
	}
	for i := 0; i < writes; i++ {
		if res := <-replies[i]; res.err != nil {
			t.Fatal(res.err)
		}
	}
	if got := s.batches.Load() - batchesBefore; got > 2 {
		t.Fatalf("%d writes drained in %d batches, want <= 2 (one drain picks up the whole backlog)", writes, got)
	}
}

// noSeedBackend hides the fake's SeedNextID, forcing checkpoint
// restore down the generic O(lifetime-joins) path.
type noSeedBackend struct{ Backend }

// TestDurableCheckpointRestoreGenericBackend: backends without the
// IDSeeder extension recover from a checkpoint by synthesizing the
// full id history (every id joined, dead ones left) and must land on
// the same state.
func TestDurableCheckpointRestoreGenericBackend(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2)
	cfg.DataDir = dir
	factory := func(i int, rc Config) (Backend, error) {
		return noSeedBackend{newFake(rc.NodesPerShard, rc.CMax.Dim())}, nil
	}
	e, err := New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	nodes := e.Nodes()
	for i, id := range nodes {
		if err := e.Update(id, vector.Of(float64(i+1), 3), false); err != nil {
			t.Fatal(err)
		}
	}
	joined, err := e.Join(vector.Of(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Leave(nodes[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail on top of the generic restore.
	if err := e.Update(joined, vector.Of(9, 9), true); err != nil {
		t.Fatal(err)
	}
	pre := fingerprint(t, e, 2)
	e.close(false)

	re, err := New(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	assertSameState(t, pre, fingerprint(t, re, 2), "generic-backend restore")
}
