// Package wal is the durability layer of the serving engine: an
// append-only per-shard operation log plus engine-wide checkpoints.
//
// Every mutation a shard applies (update, join, leave, migration
// take) becomes one typed, CRC-framed binary Record appended to the
// shard's current log segment before the write is acknowledged.
// Periodically — and always on a clean Close — the engine captures a
// Checkpoint: each shard's logical state (alive nodes with their
// availability vectors and the next local id), the GlobalID
// forwarding table, and the engine counters. A checkpoint rotates
// every shard onto a fresh log segment, so recovery is
//
//	latest valid checkpoint  +  replay of all newer segments
//
// through the exact same batch-application path live writes use.
// Torn tails are expected (a crash can land mid-record): the reader
// stops at the first record whose frame or CRC does not verify and
// reports how many bytes it dropped, and the recovered engine simply
// does not contain the never-acknowledged suffix.
//
// On-disk layout under the engine's DataDir:
//
//	checkpoint-<seq>.ckpt       engine-wide checkpoint (gob + CRC)
//	shard-<i>/wal-<seg>.log     per-shard log segments
//
// The package knows nothing about the serve package's types beyond
// the flat Record fields; the mapping op <-> Record lives in serve.
package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Log is one shard's append-only operation log. It is single-writer:
// only the owning shard goroutine (or, before the goroutine starts,
// the recovery path) may call its methods.
type Log struct {
	dir  string
	seg  uint64
	f    *os.File
	w    *bufio.Writer
	size int64 // bytes appended to the current segment
}

// SegmentPath returns the path of segment seg under dir.
func SegmentPath(dir string, seg uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", seg))
}

// Segments lists the segment numbers present in dir, ascending. A
// missing directory is an empty log, not an error.
func Segments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// createSegment opens a fresh segment file and fsyncs the directory
// so the new entry itself survives a host crash — without that, a
// power failure could drop a whole acked segment even though every
// record in it was fsynced.
func createSegment(dir string, seg uint64) (*os.File, error) {
	f, err := os.OpenFile(SegmentPath(dir, seg), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return f, nil
}

// Create opens a fresh segment seg under dir for appending,
// truncating any leftover file of the same number (a crash between
// segment creation and the checkpoint that references it can leave
// one behind).
func Create(dir string, seg uint64) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := createSegment(dir, seg)
	if err != nil {
		return nil, err
	}
	return &Log{dir: dir, seg: seg, f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// Seg returns the current segment number.
func (l *Log) Seg() uint64 { return l.seg }

// Size returns the bytes appended to the current segment (buffered
// or flushed).
func (l *Log) Size() int64 { return l.size }

// Append encodes and buffers the records. Call Sync to make them
// durable; the engine batches one Sync per applied write batch.
func (l *Log) Append(recs ...Record) error {
	for i := range recs {
		n, err := encodeRecord(l.w, &recs[i])
		if err != nil {
			return err
		}
		l.size += int64(n)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the segment.
func (l *Log) Sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Rotate syncs and closes the current segment and opens a fresh one
// numbered seg. Rotation is the checkpoint boundary: a checkpoint
// captured immediately after covers exactly the segments before seg.
func (l *Log) Rotate(seg uint64) error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := createSegment(l.dir, seg)
	if err != nil {
		return err
	}
	l.f, l.seg, l.size = f, seg, 0
	l.w.Reset(f)
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ReadSegment decodes every valid record of a segment file. It stops
// cleanly at the first torn or corrupt record — a crash mid-append
// is a normal way for a segment to end — returning the records of
// the intact prefix and how many trailing bytes were dropped. A
// missing file reads as an empty segment. The error is non-nil only
// for real I/O failures.
func ReadSegment(path string) (recs []Record, dropped int64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	off := 0
	for off < len(data) {
		rec, n, ok := decodeRecord(data[off:])
		if !ok {
			return recs, int64(len(data) - off), nil
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, 0, nil
}

// RemoveSegmentsBelow deletes segments of dir numbered < seg —
// everything a new checkpoint has made redundant.
func RemoveSegmentsBelow(dir string, seg uint64) error {
	segs, err := Segments(dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s < seg {
			if err := os.Remove(SegmentPath(dir, s)); err != nil {
				return err
			}
		}
	}
	return nil
}
