// Package wal is the durability layer of the serving engine: an
// append-only per-shard operation log plus engine-wide checkpoints.
//
// Every mutation a shard applies (update, join, leave, migration
// take) becomes one typed, CRC-framed binary Record appended to the
// shard's current log segment before the write is acknowledged.
// Periodically — and always on a clean Close — the engine captures a
// Checkpoint: each shard's logical state (alive nodes with their
// availability vectors and the next local id), the GlobalID
// forwarding table, and the engine counters. A checkpoint rotates
// every shard onto a fresh log segment, so recovery is
//
//	latest valid checkpoint  +  replay of all newer segments
//
// through the exact same batch-application path live writes use.
// Torn tails are expected (a crash can land mid-record): the reader
// stops at the first record whose frame or CRC does not verify and
// reports how many bytes it dropped, and the recovered engine simply
// does not contain the never-acknowledged suffix.
//
// On-disk layout under the engine's DataDir:
//
//	checkpoint-<seq>.ckpt       engine-wide checkpoint (gob + CRC)
//	shard-<i>/wal-<seg>.log     per-shard log segments
//
// The package knows nothing about the serve package's types beyond
// the flat Record fields; the mapping op <-> Record lives in serve.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Log is one shard's append-only operation log. It is single-writer:
// only the owning shard goroutine (or, before the goroutine starts,
// the recovery path) may call its methods.
type Log struct {
	dir  string
	seg  uint64
	f    *os.File
	w    *bufio.Writer
	size int64 // record bytes appended to the current segment
}

// Segment header (on-disk, since the replication PR): a magic, a
// flags byte and the replication epoch the segment was opened under.
// Legacy segments (records starting at byte 0) read as epoch 0,
// uncompacted.
const segMagic = "PIDWSEG1"

// Segment header flags.
const (
	// SegCompacted marks a segment rewritten by CompactSegment:
	// superseded same-node updates were dropped, so record ordinals
	// in it no longer match the sequence a live tail of the segment
	// observed.
	SegCompacted = 1 << 0
)

// SegHeaderLen is the encoded segment-header size (magic + flags +
// epoch): the offset records start at in segments this package
// writes. Exported for tests that walk record frames directly.
const SegHeaderLen = len(segMagic) + 1 + 8

// segHeaderLen is the internal alias.
const segHeaderLen = SegHeaderLen

// SegmentMeta describes a segment file's header.
type SegmentMeta struct {
	// Epoch is the replication epoch the segment was opened under
	// (0 for legacy headerless segments).
	Epoch uint64
	// Compacted reports the SegCompacted flag.
	Compacted bool
	// header is the decoded header length (0 for legacy segments).
	header int
}

func encodeSegHeader(flags byte, epoch uint64) []byte {
	buf := make([]byte, segHeaderLen)
	copy(buf, segMagic)
	buf[len(segMagic)] = flags
	binary.LittleEndian.PutUint64(buf[len(segMagic)+1:], epoch)
	return buf
}

// decodeSegMeta parses a segment header from the head of data. A
// file without the magic — legacy, empty, or torn mid-header — reads
// as a headerless segment.
func decodeSegMeta(data []byte) SegmentMeta {
	if len(data) < segHeaderLen || string(data[:len(segMagic)]) != segMagic {
		return SegmentMeta{}
	}
	return SegmentMeta{
		Epoch:     binary.LittleEndian.Uint64(data[len(segMagic)+1:]),
		Compacted: data[len(segMagic)]&SegCompacted != 0,
		header:    segHeaderLen,
	}
}

// ReadSegmentMeta reads just a segment's header. A missing file
// reads as an empty headerless segment.
func ReadSegmentMeta(path string) (SegmentMeta, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return SegmentMeta{}, nil
	}
	if err != nil {
		return SegmentMeta{}, err
	}
	defer f.Close()
	buf := make([]byte, segHeaderLen)
	n, _ := io.ReadFull(f, buf)
	return decodeSegMeta(buf[:n]), nil
}

// SegmentPath returns the path of segment seg under dir.
func SegmentPath(dir string, seg uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", seg))
}

// Segments lists the segment numbers present in dir, ascending. A
// missing directory is an empty log, not an error.
func Segments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		n, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// createSegment opens a fresh segment file and fsyncs the directory
// so the new entry itself survives a host crash — without that, a
// power failure could drop a whole acked segment even though every
// record in it was fsynced.
func createSegment(dir string, seg uint64) (*os.File, error) {
	f, err := os.OpenFile(SegmentPath(dir, seg), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return f, nil
}

// Create opens a fresh segment seg under dir for appending,
// truncating any leftover file of the same number (a crash between
// segment creation and the checkpoint that references it can leave
// one behind). The header — carrying the replication epoch — is
// written and fsynced immediately, so the epoch a promotion sealed
// is durable the moment its first segment exists, checkpoint or not.
func Create(dir string, seg, epoch uint64) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := createSegment(dir, seg)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(encodeSegHeader(0, epoch)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{dir: dir, seg: seg, f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// OpenAppend reopens an existing segment for appending at size —
// the byte offset of its valid record prefix (header included), as
// recovery established it — truncating any torn tail past it. It is
// how a restarted replication follower continues its mirrored
// segment in place instead of rotating onto a number its primary
// never had. A missing file is created fresh under epoch.
func OpenAppend(dir string, seg uint64, size int64, epoch uint64) (*Log, error) {
	path := SegmentPath(dir, seg)
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if os.IsNotExist(err) {
		return Create(dir, seg, epoch)
	}
	if err != nil {
		return nil, err
	}
	if size < int64(segHeaderLen) {
		// The crash landed inside the header itself (Create/Rotate
		// died mid-write): rewrite it whole, or the segment would
		// grow headerless and fork off the primary's bytes.
		f.Close()
		return Create(dir, seg, epoch)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	meta, err := ReadSegmentMeta(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Log{
		dir: dir, seg: seg, f: f,
		w:    bufio.NewWriterSize(f, 1<<16),
		size: size - int64(meta.header),
	}, nil
}

// Seg returns the current segment number.
func (l *Log) Seg() uint64 { return l.seg }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Size returns the bytes appended to the current segment (buffered
// or flushed).
func (l *Log) Size() int64 { return l.size }

// Append encodes and buffers the records. Call Sync to make them
// durable; the engine batches one Sync per applied write batch.
func (l *Log) Append(recs ...Record) error {
	for i := range recs {
		n, err := encodeRecord(l.w, &recs[i])
		if err != nil {
			return err
		}
		l.size += int64(n)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the segment.
func (l *Log) Sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Rotate syncs and closes the current segment and opens a fresh one
// numbered seg under epoch. Rotation is the checkpoint boundary: a
// checkpoint captured immediately after covers exactly the segments
// before seg.
func (l *Log) Rotate(seg, epoch uint64) error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := createSegment(l.dir, seg)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSegHeader(0, epoch)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.f, l.seg, l.size = f, seg, 0
	l.w.Reset(f)
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ReadSegmentInfo decodes a segment file in full: its header meta,
// every valid record, the byte length of the valid prefix (header
// included — the offset OpenAppend resumes at), and how many torn
// trailing bytes were dropped. It stops cleanly at the first torn or
// corrupt record — a crash mid-append is a normal way for a segment
// to end. A missing file reads as an empty segment. The error is
// non-nil only for real I/O failures.
func ReadSegmentInfo(path string) (meta SegmentMeta, recs []Record, validSize, dropped int64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return SegmentMeta{}, nil, 0, 0, nil
	}
	if err != nil {
		return SegmentMeta{}, nil, 0, 0, err
	}
	meta = decodeSegMeta(data)
	it := IterRecords(data, meta.header)
	for it.Next() {
		recs = append(recs, it.Record())
	}
	return meta, recs, it.Offset(), it.Dropped(), nil
}

// ReadSegment decodes every valid record of a segment file,
// returning the intact prefix and how many trailing bytes were
// dropped (see ReadSegmentInfo).
func ReadSegment(path string) (recs []Record, dropped int64, err error) {
	_, recs, _, dropped, err = ReadSegmentInfo(path)
	return recs, dropped, err
}

// ReadSegmentFrom decodes a segment's valid records starting at
// record ordinal from — the replication server's streaming read over
// a live segment: the shard goroutine keeps appending past the flush
// point while a catching-up follower reads the durable prefix. The
// skipped prefix is iterated, not materialized, so a long-lived
// segment streamed in many rounds does not re-decode old records
// into fresh allocations every round.
func ReadSegmentFrom(path string, from int) ([]Record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	it := IterRecords(data, decodeSegMeta(data).header)
	for i := 0; i < from; i++ {
		if !it.Next() {
			return nil, nil
		}
	}
	var recs []Record
	for it.Next() {
		recs = append(recs, it.Record())
	}
	return recs, nil
}

// RemoveSegmentsBelow deletes segments of dir numbered < seg —
// everything a new checkpoint has made redundant.
func RemoveSegmentsBelow(dir string, seg uint64) error {
	segs, err := Segments(dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s < seg {
			if err := os.Remove(SegmentPath(dir, s)); err != nil {
				return err
			}
		}
	}
	return nil
}
