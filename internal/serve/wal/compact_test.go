package wal

import (
	"os"
	"reflect"
	"testing"
)

func TestSegmentHeaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := l.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := SegmentPath(dir, 4)
	meta, err := ReadSegmentMeta(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 7 || meta.Compacted {
		t.Fatalf("meta %+v, want epoch 7, uncompacted", meta)
	}
	got, dropped, err := ReadSegment(path)
	if err != nil || dropped != 0 {
		t.Fatalf("read: %v (dropped %d)", err, dropped)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("records did not survive the header: %+v", got)
	}
}

func TestLegacyHeaderlessSegmentReads(t *testing.T) {
	// Pre-replication segments have records at byte 0; they must
	// still read, as epoch 0.
	dir := t.TempDir()
	path := SegmentPath(dir, 1)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if _, err := EncodeRecords(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	meta, got, _, dropped, err := ReadSegmentInfo(path)
	if err != nil || dropped != 0 {
		t.Fatalf("read: %v (dropped %d)", err, dropped)
	}
	if meta.Epoch != 0 {
		t.Fatalf("legacy segment read epoch %d, want 0", meta.Epoch)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("legacy records %+v, want %+v", got, recs)
	}
}

func TestOpenAppendContinuesSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := l.Append(recs[:3]...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := SegmentPath(dir, 2)
	// A torn tail past the valid prefix, as a crash leaves it.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.Write([]byte{1, 2, 3, 4, 5})
	f.Close()
	_, got, validSize, dropped, err := ReadSegmentInfo(path)
	if err != nil || len(got) != 3 || dropped != 5 {
		t.Fatalf("after torn tail: %d recs, %d dropped, %v", len(got), dropped, err)
	}

	l2, err := OpenAppend(dir, 2, validSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Seg() != 2 {
		t.Fatalf("reopened segment %d, want 2", l2.Seg())
	}
	if err := l2.Append(recs[3:]...); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	meta, all, _, dropped, err := ReadSegmentInfo(path)
	if err != nil || dropped != 0 {
		t.Fatalf("after reopen+append: %v (dropped %d)", err, dropped)
	}
	if meta.Epoch != 3 {
		t.Fatalf("epoch %d after reopen, want 3 (header preserved)", meta.Epoch)
	}
	if !reflect.DeepEqual(all, recs) {
		t.Fatalf("continued segment reads %+v, want %+v", all, recs)
	}
	// A missing segment is created fresh.
	l3, err := OpenAppend(dir, 9, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	l3.Close()
	meta, err = ReadSegmentMeta(SegmentPath(dir, 9))
	if err != nil || meta.Epoch != 5 {
		t.Fatalf("fresh OpenAppend segment meta %+v (%v), want epoch 5", meta, err)
	}
}

func TestCompactRecordsDropsSupersededUpdates(t *testing.T) {
	in := []Record{
		{Kind: KindUpdate, Node: 1, Avail: []float64{1, 1}},                 // superseded
		{Kind: KindUpdate, Node: 2, Avail: []float64{2, 2}},                 // survives
		{Kind: KindJoin, Node: 10, Avail: []float64{3, 3}},                  // survives
		{Kind: KindUpdate, Node: 1, Avail: []float64{4, 4}},                 // superseded
		{Kind: KindUpdate, Node: 1, Announce: true, Avail: []float64{5, 5}}, // survives (last)
		{Kind: KindLeave, Node: 3},                                          // survives
		{Kind: KindTake, Node: 4, Avail: []float64{6, 6}},                   // survives
	}
	want := []Record{in[1], in[2], in[4], in[5], in[6]}
	got := CompactRecords(in)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("compacted to %+v\nwant %+v", got, want)
	}
	// Idempotent: compacting the compacted list changes nothing —
	// the property that lets primary and follower compact a segment
	// independently and converge.
	if again := CompactRecords(got); !reflect.DeepEqual(again, got) {
		t.Fatalf("compaction not idempotent: %+v", again)
	}
	// No superseded updates: input returned as-is.
	stable := []Record{in[1], in[2]}
	if got := CompactRecords(stable); !reflect.DeepEqual(got, stable) {
		t.Fatalf("stable input rewritten: %+v", got)
	}
}

func TestCompactSegmentRewritesFile(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{Kind: KindUpdate, Node: uint32(i % 3), Avail: []float64{float64(i), 1}})
	}
	recs = append(recs, Record{Kind: KindJoin, Node: 50})
	if err := l.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := SegmentPath(dir, 1)
	before, _ := os.Stat(path)
	saved, err := CompactSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if saved <= 0 {
		t.Fatalf("compaction saved %d bytes, want > 0", saved)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("file grew: %d -> %d", before.Size(), after.Size())
	}
	meta, got, _, dropped, err := ReadSegmentInfo(path)
	if err != nil || dropped != 0 {
		t.Fatalf("compacted segment read: %v (dropped %d)", err, dropped)
	}
	if !meta.Compacted || meta.Epoch != 2 {
		t.Fatalf("compacted meta %+v, want compacted under epoch 2", meta)
	}
	if want := CompactRecords(recs); !reflect.DeepEqual(got, want) {
		t.Fatalf("compacted records %+v\nwant %+v", got, want)
	}
	// Second pass is a no-op (already marked).
	if saved, err := CompactSegment(path); err != nil || saved != 0 {
		t.Fatalf("re-compaction: saved %d, %v; want 0, nil", saved, err)
	}
}

func TestReadSegmentFrom(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := l.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := SegmentPath(dir, 1)
	for from := 0; from <= len(recs)+1; from++ {
		got, err := ReadSegmentFrom(path, from)
		if err != nil {
			t.Fatal(err)
		}
		want := recs[min(from, len(recs)):]
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("from %d: got %+v, want %+v", from, got, want)
		}
	}
}

func TestRecordBlobRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf []byte
	sink := sliceSink{&buf}
	if _, err := EncodeRecords(sink, recs); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("blob round-trip %+v, want %+v", got, recs)
	}
	// A truncated blob is a protocol error, not a silent prefix.
	if _, err := DecodeRecords(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated blob decoded")
	}
}

type sliceSink struct{ buf *[]byte }

func (s sliceSink) Write(p []byte) (int, error) {
	*s.buf = append(*s.buf, p...)
	return len(p), nil
}
