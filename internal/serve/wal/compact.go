package wal

import (
	"bufio"
	"os"
	"path/filepath"
)

// CompactRecords drops superseded records from one segment's record
// sequence: an update is dead weight once a later update of the same
// node sits in the same segment — replaying both lands on the same
// availability as replaying the last alone. Only the final update
// per node survives (joins, leaves and takes always do), and record
// order is otherwise preserved. Local node ids are never reused, so
// two updates of one id in one segment can have no join/leave/take
// between them, which is what makes the drop safe; what compaction
// does shift is index-diffusion timing (dropped announces never
// re-announce at replay), the same slack recovery's re-batched
// replay already has. The function is pure and deterministic —
// a primary and its followers compact a segment to identical bytes
// — and idempotent.
func CompactRecords(recs []Record) []Record {
	last := make(map[uint32]int, len(recs))
	dropped := 0
	for i, r := range recs {
		if r.Kind != KindUpdate {
			continue
		}
		if _, ok := last[r.Node]; ok {
			dropped++
		}
		last[r.Node] = i
	}
	if dropped == 0 {
		return recs
	}
	out := make([]Record, 0, len(recs)-dropped)
	for i, r := range recs {
		if r.Kind == KindUpdate && last[r.Node] != i {
			continue
		}
		out = append(out, r)
	}
	return out
}

// CompactSegment rewrites a closed segment file with its superseded
// updates dropped, marking the header SegCompacted. The rewrite is
// atomic (temp file + rename + dir sync); a crash leaves either the
// old or the new file, both valid. Torn trailing bytes are shed with
// the rewrite. A segment that would not shrink — or is already
// compacted — is left untouched. Returns the bytes saved.
func CompactSegment(path string) (int64, error) {
	meta, recs, validSize, dropped, err := ReadSegmentInfo(path)
	if err != nil || meta.Compacted {
		return 0, err
	}
	if validSize == 0 && dropped == 0 { // missing or empty: nothing to do
		return 0, nil
	}
	kept := CompactRecords(recs)
	if len(kept) == len(recs) && dropped == 0 {
		return 0, nil
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	size := int64(segHeaderLen)
	if _, err := w.Write(encodeSegHeader(SegCompacted, meta.Epoch)); err != nil {
		f.Close()
		return 0, err
	}
	for i := range kept {
		n, err := encodeRecord(w, &kept[i])
		if err != nil {
			f.Close()
			return 0, err
		}
		size += int64(n)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	saved := validSize + dropped - size
	if saved < 0 {
		saved = 0
	}
	return saved, nil
}
