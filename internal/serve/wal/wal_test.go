package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: KindUpdate, Node: 3, Announce: true, Avail: []float64{1.5, 0, 2.25}},
		{Kind: KindJoin, Node: 64, Avail: []float64{0.5, 0.5, 0.5}},
		{Kind: KindJoin, Node: 65},
		{Kind: KindJoin, Node: 66, Repoint: true, Ext: 7, Old: 1<<32 | 9, Avail: []float64{4, 4, 4}},
		{Kind: KindLeave, Node: 12},
		{Kind: KindTake, Node: 9},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleRecords()
	for i := range recs {
		if _, err := encodeRecord(&buf, &recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	for i := range recs {
		got, n, ok := decodeRecord(data)
		if !ok {
			t.Fatalf("record %d did not decode", i)
		}
		if !reflect.DeepEqual(got, recs[i]) {
			t.Fatalf("record %d round-tripped to %+v, want %+v", i, got, recs[i])
		}
		data = data[n:]
	}
	if len(data) != 0 {
		t.Fatalf("%d trailing bytes after decoding all records", len(data))
	}
}

func TestLogAppendReadSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := l.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := ReadSegment(SegmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped %d bytes from an intact segment", dropped)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("read %+v, want %+v", got, recs)
	}
}

// TestTornTail truncates a segment at every byte offset and checks
// the reader always returns the longest intact record prefix.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	var ends []int64 // byte offset after each record
	for i := range recs {
		if err := l.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, l.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := SegmentPath(dir, 1)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(whole); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, dropped, err := ReadSegment(path)
		if err != nil {
			t.Fatal(err)
		}
		// ends are record-relative; the file leads with the segment
		// header, and a cut inside the header reads as an empty
		// headerless segment that drops every byte.
		recCut := int64(cut) - int64(segHeaderLen)
		want := 0
		if recCut >= 0 {
			for want < len(ends) && ends[want] <= recCut {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		wantDrop := int64(cut)
		if recCut >= 0 {
			intact := int64(0)
			if want > 0 {
				intact = ends[want-1]
			}
			wantDrop = recCut - intact
		}
		if dropped != wantDrop {
			t.Fatalf("cut %d: dropped %d bytes, want %d", cut, dropped, wantDrop)
		}
	}
}

func TestCorruptRecordTruncates(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := l.Append(recs...); err != nil {
		t.Fatal(err)
	}
	var mid int64
	{
		l2, _ := Create(t.TempDir(), 1, 1)
		l2.Append(recs[0], recs[1])
		mid = l2.Size()
		l2.Close()
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := SegmentPath(dir, 1)
	data, _ := os.ReadFile(path)
	data[int64(segHeaderLen)+mid+frameHeader+2] ^= 0xff // flip a payload byte of record 2
	os.WriteFile(path, data, 0o644)
	got, dropped, err := ReadSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || dropped == 0 {
		t.Fatalf("corrupt third record: recovered %d records (dropped %d), want 2", len(got), dropped)
	}
}

func TestRotateAndSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: KindLeave, Node: 1})
	if err := l.Rotate(2, 1); err != nil {
		t.Fatal(err)
	}
	if l.Seg() != 2 || l.Size() != 0 {
		t.Fatalf("after rotate: seg %d size %d", l.Seg(), l.Size())
	}
	l.Append(Record{Kind: KindLeave, Node: 2})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(segs, []uint64{1, 2}) {
		t.Fatalf("segments %v, want [1 2]", segs)
	}
	if err := RemoveSegmentsBelow(dir, 2); err != nil {
		t.Fatal(err)
	}
	segs, _ = Segments(dir)
	if !reflect.DeepEqual(segs, []uint64{2}) {
		t.Fatalf("after prune: segments %v, want [2]", segs)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := &Checkpoint{
		Seq: 3, Shards: 2, NodesPerShard: 4, Seed: 11, Dims: 2,
		ShardStates: []ShardState{
			{Shard: 0, NextID: 6, FirstSeg: 4, Nodes: []NodeState{{Node: 0, Avail: []float64{1, 2}}, {Node: 5, Avail: []float64{0, 0}}}},
			{Shard: 1, NextID: 4, FirstSeg: 4, Nodes: []NodeState{{Node: 2, Avail: []float64{3, 4}}}},
		},
		Fwd: ForwardState{
			Next:    map[uint64]uint64{7: 1<<32 | 5},
			Ext:     map[uint64]uint64{1<<32 | 5: 7},
			Aliases: map[uint64][]uint64{7: {9}},
		},
		NextShard: 5, NextQuery: 2,
		Counters: map[string]uint64{"joins": 6, "leaves": 1},
	}
	if _, err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("loaded %+v, want %+v", got, c)
	}
}

func TestLoadLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	c1 := &Checkpoint{Seq: 1, Shards: 1, NodesPerShard: 2, Dims: 2}
	c2 := &Checkpoint{Seq: 2, Shards: 1, NodesPerShard: 2, Dims: 2}
	if _, err := c1.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest; LoadLatest must fall back to seq 1.
	path := CheckpointPath(dir, 2)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)
	got, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Seq != 1 {
		t.Fatalf("got %+v, want checkpoint seq 1", got)
	}
	if err := RemoveCheckpointsBelow(dir, 3); err != nil {
		t.Fatal(err)
	}
	if got, _ := LoadLatest(dir); got != nil {
		t.Fatalf("after prune: got %+v, want none", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint-1.ckpt")); !os.IsNotExist(err) {
		t.Fatal("checkpoint 1 not removed")
	}
}

func TestLoadLatestEmpty(t *testing.T) {
	got, err := LoadLatest(t.TempDir())
	if err != nil || got != nil {
		t.Fatalf("empty dir: got %+v, %v", got, err)
	}
	segs, err := Segments(filepath.Join(t.TempDir(), "missing"))
	if err != nil || segs != nil {
		t.Fatalf("missing dir: got %v, %v", segs, err)
	}
}
