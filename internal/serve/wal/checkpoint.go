package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// NodeState is one alive node in a shard checkpoint.
type NodeState struct {
	Node  uint32
	Avail []float64
}

// ShardState is one shard's logical state at a checkpoint boundary:
// everything recovery needs to rebuild the shard's backend through
// the live apply path (joins up to NextID, leaves of the dead ids,
// availability updates for the alive ones).
type ShardState struct {
	Shard int
	// NextID is the next local id the backend would assign — the
	// initial population plus every join ever applied.
	NextID uint32
	// Nodes is the alive set with availability, ascending by id.
	Nodes []NodeState
	// FirstSeg is the first log segment to replay on top of this
	// state: the segment the shard rotated onto at capture time.
	FirstSeg uint64
}

// ForwardState is the flattened GlobalID forwarding table.
type ForwardState struct {
	// Next is the single-step forwarding map (chains allowed).
	Next map[uint64]uint64
	// Ext maps physical ids back to external ids.
	Ext map[uint64]uint64
	// Aliases lists the reclaimable former physical ids per external
	// id. Expiry clocks restart on recovery.
	Aliases map[uint64][]uint64
}

// Checkpoint is the engine-wide durable state between log segments.
type Checkpoint struct {
	Seq uint64
	// Epoch is the replication epoch the checkpoint was captured
	// under (0 on pre-replication checkpoints; serving starts at 1).
	// Promotion seals a new epoch by checkpointing under it.
	Epoch uint64
	// Configuration guard: recovery refuses a checkpoint taken under
	// an incompatible engine shape.
	Shards        int
	NodesPerShard int
	Seed          uint64
	Dims          int

	ShardStates []ShardState
	Fwd         ForwardState
	// Round-robin counters (join placement, ScopeOne routing).
	NextShard, NextQuery uint64
	// Counters carries the cumulative Stats counters by name.
	Counters map[string]uint64
}

const ckptMagic = "PIDCKPT1"

// CheckpointPath returns the path of checkpoint seq under dir.
func CheckpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%d.ckpt", seq))
}

// checkpointSeqs lists the checkpoint sequence numbers in dir,
// ascending.
func checkpointSeqs(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		n, err := strconv.ParseUint(name[11:len(name)-5], 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Image encodes the checkpoint as its framed file bytes (magic +
// CRC + gob payload) — what Save writes and replication ships, from
// one encoding.
func (c *Checkpoint) Image() ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(c); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString(ckptMagic)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload.Bytes(), crcTable))
	buf.Write(crc[:])
	buf.Write(payload.Bytes())
	return buf.Bytes(), nil
}

// Save writes the checkpoint durably: the framed image written to a
// temp file, fsynced, and renamed into place so a crash never leaves
// a half-written checkpoint under the final name.
func (c *Checkpoint) Save(dir string) (string, error) {
	img, err := c.Image()
	if err != nil {
		return "", err
	}
	return SaveRaw(dir, c.Seq, img)
}

// Decode verifies and decodes a checkpoint image (the framed file
// bytes, as Save writes them and replication ships them).
func Decode(data []byte) (*Checkpoint, error) {
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("wal: not a checkpoint image")
	}
	crc := binary.LittleEndian.Uint32(data[len(ckptMagic):])
	payload := data[len(ckptMagic)+4:]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	var c Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&c); err != nil {
		return nil, err
	}
	return &c, nil
}

// SaveRaw writes an already-framed checkpoint image durably under
// dir as checkpoint seq — the follower side of checkpoint shipping,
// mirroring the primary's file byte for byte (temp file, fsync,
// rename, dir sync — the same crash discipline as Save).
func SaveRaw(dir string, seq uint64, data []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := CheckpointPath(dir, seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return path, nil
}

// loadCheckpoint reads and verifies one checkpoint file.
func loadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	return c, nil
}

// LoadLatest returns the newest checkpoint in dir that decodes and
// verifies, or (nil, nil) when none exists. Invalid files (a crash
// mid-save under a stale temp name cannot produce one, but disk
// corruption can) are skipped in favor of the next-newest.
func LoadLatest(dir string) (*Checkpoint, error) {
	seqs, err := checkpointSeqs(dir)
	if err != nil {
		return nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		c, err := loadCheckpoint(CheckpointPath(dir, seqs[i]))
		if err == nil {
			return c, nil
		}
	}
	return nil, nil
}

// RemoveCheckpointsBelow deletes checkpoints numbered < seq, plus
// any leftover temp files.
func RemoveCheckpointsBelow(dir string, seq uint64) error {
	seqs, err := checkpointSeqs(dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s < seq {
			if err := os.Remove(CheckpointPath(dir, s)); err != nil {
				return err
			}
		}
	}
	ents, _ := os.ReadDir(dir)
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".ckpt.tmp") {
			os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
	return nil
}
